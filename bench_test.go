package mac3d_test

// One testing.B benchmark per table/figure of the paper, as required
// by the reproduction harness: each bench regenerates its experiment
// (at tiny scale, so `go test -bench=. -benchmem` completes in
// minutes) and reports the headline metric via b.ReportMetric so the
// paper-vs-measured comparison appears directly in bench output.
//
// The full-scale (small/ref) numbers behind EXPERIMENTS.md come from
// `go run ./cmd/experiments -scale small`.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"mac3d"
	"mac3d/internal/experiments"
	"mac3d/internal/service"
	"mac3d/internal/workloads"
)

func benchSuite(b *testing.B) *experiments.Suite {
	b.Helper()
	return experiments.NewSuite(experiments.Options{
		Scale: workloads.Tiny,
		Seed:  1,
		// The four-kernel diverse subset keeps bench iterations
		// fast; cmd/experiments runs all twelve.
		Benchmarks: []string{"sg", "bfs", "mg", "is"},
	})
}

// lastCell extracts the last row's metric column as a float where the
// table stores it as formatted text; benches recompute instead, so
// this helper stays unused — kept deliberately absent.

func BenchmarkFig01MissRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite(b)
		tab, err := s.Fig01MissRate()
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig01SizeSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite(b)
		if tab := s.Fig01SizeSweep(); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig03BandwidthEfficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.Fig03BandwidthEfficiency(); len(tab.Rows) != 5 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkTable1Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.Table1(); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig09RequestRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite(b)
		if _, err := s.Fig09RequestRate(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10CoalescingEfficiency(b *testing.B) {
	var eff float64
	for i := 0; i < b.N; i++ {
		s := benchSuite(b)
		if _, err := s.Fig10CoalescingEfficiency(); err != nil {
			b.Fatal(err)
		}
		// Recompute the 8-thread average for the report metric.
		var sum float64
		for _, name := range s.Options().Benchmarks {
			res, err := s.MAC(name, 8)
			if err != nil {
				b.Fatal(err)
			}
			sum += res.Coalescer.CoalescingEfficiency()
		}
		eff = 100 * sum / float64(len(s.Options().Benchmarks))
	}
	b.ReportMetric(eff, "avg_coalesce_%") // paper: 52.86
}

func BenchmarkFig11ARQSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite(b)
		if _, err := s.Fig11ARQSweep(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12BankConflicts(b *testing.B) {
	var removed float64
	for i := 0; i < b.N; i++ {
		s := benchSuite(b)
		if _, err := s.Fig12BankConflicts(); err != nil {
			b.Fatal(err)
		}
		var total int64
		for _, name := range s.Options().Benchmarks {
			w, err := s.MAC(name, 8)
			if err != nil {
				b.Fatal(err)
			}
			wo, err := s.Raw(name, 8)
			if err != nil {
				b.Fatal(err)
			}
			total += int64(wo.Device.BankConflicts) - int64(w.Device.BankConflicts)
		}
		removed = float64(total)
	}
	b.ReportMetric(removed, "conflicts_removed") // paper: 644M avg/bench at full scale
}

func BenchmarkFig13BandwidthEfficiency(b *testing.B) {
	var eff float64
	for i := 0; i < b.N; i++ {
		s := benchSuite(b)
		if _, err := s.Fig13BandwidthEfficiency(); err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, name := range s.Options().Benchmarks {
			w, err := s.MAC(name, 8)
			if err != nil {
				b.Fatal(err)
			}
			sum += 100 * w.Device.BandwidthEfficiency()
		}
		eff = sum / float64(len(s.Options().Benchmarks))
	}
	b.ReportMetric(eff, "bandwidth_eff_%") // paper: 70.35 vs 33.33 raw
}

func BenchmarkFig14BandwidthSaving(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite(b)
		if _, err := s.Fig14BandwidthSaving(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig15TargetsPerEntry(b *testing.B) {
	var avg float64
	for i := 0; i < b.N; i++ {
		s := benchSuite(b)
		if _, err := s.Fig15TargetsPerEntry(); err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, name := range s.Options().Benchmarks {
			res, err := s.MAC(name, 8)
			if err != nil {
				b.Fatal(err)
			}
			sum += res.Coalescer.AvgTargetsPerTx()
		}
		avg = sum / float64(len(s.Options().Benchmarks))
	}
	b.ReportMetric(avg, "targets/entry") // paper: 2.13 avg
}

func BenchmarkFig16SpaceOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.Fig16SpaceOverhead(); len(tab.Rows) != 6 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkFig17Speedup(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		s := benchSuite(b)
		if _, err := s.Fig17Speedup(); err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, name := range s.Options().Benchmarks {
			w, err := s.MAC(name, 8)
			if err != nil {
				b.Fatal(err)
			}
			wo, err := s.Raw(name, 8)
			if err != nil {
				b.Fatal(err)
			}
			if m := wo.RequestLatency.Mean(); m > 0 {
				sum += 100 * (1 - w.RequestLatency.Mean()/m)
			}
		}
		speedup = sum / float64(len(s.Options().Benchmarks))
	}
	b.ReportMetric(speedup, "mem_speedup_%") // paper: 60.73 avg
}

// Ablation benches (beyond the paper).

func BenchmarkAblationFillMode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite(b)
		if _, err := s.AblationFillMode(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationLSQDepth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite(b)
		if _, err := s.AblationLSQDepth(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationMSHR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite(b)
		if _, err := s.AblationMSHR(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationHBM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite(b)
		if _, err := s.AblationHBM(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationWindow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite(b)
		if _, err := s.AblationWindow(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationGrain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite(b)
		if _, err := s.AblationGrain(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationEnergy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite(b)
		if _, err := s.AblationEnergy(); err != nil {
			b.Fatal(err)
		}
	}
}

// Component micro-benchmarks: the hot paths of the simulator itself.

func BenchmarkPipelineSG(b *testing.B) {
	tr, err := workloads.Generate("sg", workloads.Config{Threads: 8, Seed: 1, Scale: workloads.Tiny})
	if err != nil {
		b.Fatal(err)
	}
	_ = tr
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mac3d.Run(mac3d.RunOptions{Workload: "sg"}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineSGObserved is BenchmarkPipelineSG with the full
// observability layer on (metrics + timeseries + transaction tracing);
// the delta against BenchmarkPipelineSG is the enabled-path overhead.
// The disabled path's overhead is BenchmarkPipelineSG itself versus a
// pre-observability baseline: nil-check-only, required <5%.
func BenchmarkPipelineSGObserved(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := mac3d.Run(mac3d.RunOptions{
			Workload: "sg",
			Observe:  mac3d.ObserveOptions{Enabled: true, SampleInterval: 64, Trace: true},
		})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Observability == nil || rep.Observability.TraceEvents == 0 {
			b.Fatal("observability not captured")
		}
	}
}

// BenchmarkPipelineSGAudited is BenchmarkPipelineSG with the
// request-lifecycle audit ledger on; the delta against
// BenchmarkPipelineSG is the enabled-path audit overhead. The disabled
// path (nil-ledger checks only) rides the same <5% guard as
// observability: BenchmarkPipelineSG versus its pre-audit baseline.
func BenchmarkPipelineSGAudited(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := mac3d.Run(mac3d.RunOptions{Workload: "sg", Audit: true})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Audit == nil || !rep.Audit.Ok() {
			b.Fatal("audit report missing or violated")
		}
	}
}

// BenchmarkWarpCoalesce runs the same sg pipeline through the SIMT
// warp-lane frontend; the delta against BenchmarkPipelineSG is the
// cost of warp gathering and mask-group formation.
func BenchmarkWarpCoalesce(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := mac3d.Run(mac3d.RunOptions{Workload: "sg", Design: mac3d.DesignWarp})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Warp == nil || rep.Warp.WarpsFormed == 0 {
			b.Fatal("warp frontend not exercised")
		}
	}
}

// BenchmarkMemCache runs sg through the die-stacked MemCache frontend;
// the delta against BenchmarkPipelineSG is the cost of tag lookups,
// fill tracking and hit-under-miss merging.
func BenchmarkMemCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := mac3d.Run(mac3d.RunOptions{Workload: "sg", Design: mac3d.DesignMemCache})
		if err != nil {
			b.Fatal(err)
		}
		if rep.MemCache == nil || rep.MemCache.Hits+rep.MemCache.Misses == 0 {
			b.Fatal("memcache frontend not exercised")
		}
	}
}

// BenchmarkNUMANoC measures the multi-node system under the ideal
// crossbar against the routed mesh at the same node count: the delta
// is the cost of cycle-stepping the routers, buffers and credits.
func BenchmarkNUMANoC(b *testing.B) {
	for _, topo := range []string{"ideal", "mesh"} {
		b.Run(topo, func(b *testing.B) {
			opts := mac3d.NUMAOptions{
				Workload: "sg", Threads: 8, Nodes: 8, CoresPerNode: 1,
				NoC: &mac3d.NoCOptions{Topology: topo, LinkLatencyNs: 25},
			}
			for i := 0; i < b.N; i++ {
				rep, err := mac3d.RunNUMA(opts)
				if err != nil {
					b.Fatal(err)
				}
				if rep.NoC == nil || rep.NoC.MessagesSent == 0 {
					b.Fatal("no interconnect traffic")
				}
			}
		})
	}
}

// benchmarkCubeFabric runs the sg pipeline with the cube-internal
// vault fabric in one topology × page-policy configuration; the delta
// against the ideal/closed cell is the cost of cycle-stepping the
// intra-cube routers plus the open-row bookkeeping.
func benchmarkCubeFabric(b *testing.B, cube string) {
	for i := 0; i < b.N; i++ {
		rep, err := mac3d.Run(mac3d.RunOptions{Workload: "sg", Cube: cube})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Cube == nil || rep.Cube.Topology == "" {
			b.Fatal("cube report missing")
		}
	}
}

func BenchmarkCubeFabric(b *testing.B) {
	for _, cube := range []string{
		"ideal", "ideal,page=open", "ring", "ring,page=open", "mesh,page=open",
	} {
		b.Run(cube, func(b *testing.B) { benchmarkCubeFabric(b, cube) })
	}
}

func BenchmarkTraceGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := workloads.Generate("bfs", workloads.Config{Threads: 8, Seed: 1, Scale: workloads.Tiny}); err != nil {
			b.Fatal(err)
		}
	}
}

// Service benches: the macd job layer rather than the simulator. A
// no-op runner is substituted via Config.WrapRunner so the numbers
// isolate the queue/journal/result-store machinery; the journal=on
// delta over journal=off is the crash-safety tax per job (two to
// three WAL appends plus one content-addressed result write, no
// fsync). Journal parse/fold micro-benches live in
// internal/service/bench_test.go beside the unexported frame codec.

// benchmarkNUMAParallel runs the 8-node NUMA system over the routed
// mesh at a given worker count and reports simulated cycles per
// wall-clock second — the tentpole metric for the parallel core. The
// spec is identical at every worker count and the results are
// bit-identical (see internal/numa parity tests), so the only thing
// that moves is throughput.
func benchmarkNUMAParallel(b *testing.B, workers int) {
	opts := mac3d.NUMAOptions{
		Workload:     "sg",
		Threads:      32,
		Seed:         1,
		Nodes:        8,
		CoresPerNode: 4,
		Parallel:     workers,
		NoC:          &mac3d.NoCOptions{Topology: "mesh"},
	}
	var cycles uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := mac3d.RunNUMA(opts)
		if err != nil {
			b.Fatal(err)
		}
		cycles += rep.Cycles
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(cycles)/secs, "cycles/sec")
	}
}

func BenchmarkNUMAParallel(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			benchmarkNUMAParallel(b, w)
		})
	}
}

func benchService(b *testing.B, journalDir string) *service.Service {
	b.Helper()
	s, err := service.New(service.Config{
		Workers:    4,
		QueueDepth: 256,
		JournalDir: journalDir,
		WrapRunner: func(service.RunFunc) service.RunFunc {
			return func(service.Spec) ([]byte, error) { return []byte(`{"report":"bench"}`), nil }
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		s.Drain(ctx)
	})
	return s
}

func benchmarkServiceSubmit(b *testing.B, journal bool) {
	dir := ""
	if journal {
		dir = b.TempDir()
	}
	s := benchService(b, dir)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Unique seeds defeat the content-addressed cache so every
		// iteration takes the full path.
		st, err := s.SubmitJSON([]byte(fmt.Sprintf(
			`{"kind":"run","run":{"workload":"sg","seed":%d}}`, i+1)))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.AwaitResult(ctx, st.ID); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServiceSubmit(b *testing.B) {
	b.Run("journal=off", func(b *testing.B) { benchmarkServiceSubmit(b, false) })
	b.Run("journal=on", func(b *testing.B) { benchmarkServiceSubmit(b, true) })
}

// TestWriteBenchSnapshot writes the BENCH_N.json perf-trajectory
// snapshot the ROADMAP calls for: a curated subset of the benchmarks
// above, re-run via testing.Benchmark and serialized as JSON so later
// PRs can diff machine-readable numbers instead of bench logs.
// Gated on BENCH_OUT because it re-runs each bench for a full
// benchtime; regenerate with:
//
//	BENCH_OUT=BENCH_7.json go test -run TestWriteBenchSnapshot .
//
// The writer refuses to overwrite an existing snapshot of a different
// number: BENCH_N files are append-only history, and a stale BENCH_OUT
// in the environment once silently clobbered an earlier PR's numbers.
// Each snapshot records its own name, the git commit and the host CPU
// budget, so a diff between two snapshots is interpretable. All JSON
// keys come from struct fields (fixed order) — two runs on the same
// host differ only in the measured numbers.
func TestWriteBenchSnapshot(t *testing.T) {
	out := os.Getenv("BENCH_OUT")
	if out == "" {
		t.Skip("set BENCH_OUT=path to write a benchmark snapshot")
	}
	name := filepath.Base(out)
	if prev, err := os.ReadFile(out); err == nil {
		var old struct {
			Snapshot string `json:"snapshot"`
		}
		if json.Unmarshal(prev, &old) != nil || (old.Snapshot != "" && old.Snapshot != name) {
			t.Fatalf("refusing to overwrite %s: it holds snapshot %q, not %q (BENCH_N files are append-only history; bump N)",
				out, old.Snapshot, name)
		}
	}
	benches := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"BenchmarkPipelineSG", BenchmarkPipelineSG},
		{"BenchmarkWarpCoalesce", BenchmarkWarpCoalesce},
		{"BenchmarkMemCache", BenchmarkMemCache},
		{"BenchmarkTraceGeneration", BenchmarkTraceGeneration},
		{"BenchmarkCubeFabric/ideal", func(b *testing.B) { benchmarkCubeFabric(b, "ideal") }},
		{"BenchmarkCubeFabric/ring", func(b *testing.B) { benchmarkCubeFabric(b, "ring") }},
		{"BenchmarkCubeFabric/ring,page=open", func(b *testing.B) { benchmarkCubeFabric(b, "ring,page=open") }},
		{"BenchmarkServiceSubmit/journal=off", func(b *testing.B) { benchmarkServiceSubmit(b, false) }},
		{"BenchmarkServiceSubmit/journal=on", func(b *testing.B) { benchmarkServiceSubmit(b, true) }},
		{"BenchmarkNUMAParallel/workers=1", func(b *testing.B) { benchmarkNUMAParallel(b, 1) }},
		{"BenchmarkNUMAParallel/workers=2", func(b *testing.B) { benchmarkNUMAParallel(b, 2) }},
		{"BenchmarkNUMAParallel/workers=4", func(b *testing.B) { benchmarkNUMAParallel(b, 4) }},
		{"BenchmarkNUMAParallel/workers=8", func(b *testing.B) { benchmarkNUMAParallel(b, 8) }},
	}
	type entry struct {
		Name        string             `json:"name"`
		Iterations  int                `json:"iterations"`
		NsPerOp     float64            `json:"ns_per_op"`
		BytesPerOp  int64              `json:"bytes_per_op"`
		AllocsPerOp int64              `json:"allocs_per_op"`
		Metrics     map[string]float64 `json:"metrics,omitempty"`
	}
	snap := struct {
		Snapshot   string  `json:"snapshot"`
		Commit     string  `json:"commit,omitempty"`
		Package    string  `json:"package"`
		Goos       string  `json:"goos"`
		Goarch     string  `json:"goarch"`
		GoVersion  string  `json:"go_version"`
		NumCPU     int     `json:"num_cpu"`
		GoMaxProcs int     `json:"gomaxprocs"`
		Benchmarks []entry `json:"benchmarks"`
	}{
		Snapshot:   name,
		Commit:     gitCommit(),
		Package:    "mac3d",
		Goos:       runtime.GOOS,
		Goarch:     runtime.GOARCH,
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, bench := range benches {
		r := testing.Benchmark(bench.fn)
		if r.N == 0 {
			t.Fatalf("%s did not run", bench.name)
		}
		e := entry{
			Name:        bench.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		// Extra ReportMetric values (e.g. cycles/sec); encoding/json
		// renders map keys sorted, keeping the file deterministic.
		for k, v := range r.Extra {
			if e.Metrics == nil {
				e.Metrics = map[string]float64{}
			}
			e.Metrics[k] = v
		}
		snap.Benchmarks = append(snap.Benchmarks, e)
		t.Logf("%-40s %d iters  %.0f ns/op", bench.name, r.N, float64(r.T.Nanoseconds())/float64(r.N))
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// gitCommit best-effort resolves the working tree's HEAD commit; the
// snapshot omits the field when git is unavailable.
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
