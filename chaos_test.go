package mac3d

import (
	"reflect"
	"strings"
	"testing"
)

// TestAuditedRunReportsCleanLedger: an audited fault-free run must
// hold every invariant and account for every request.
func TestAuditedRunReportsCleanLedger(t *testing.T) {
	rep, err := Run(RunOptions{Workload: "sg", Audit: true})
	if err != nil {
		t.Fatal(err)
	}
	a := rep.Audit
	if a == nil {
		t.Fatal("Audit requested but report missing")
	}
	if !a.Ok() {
		t.Fatalf("violations on a clean run: %v", a.Violations)
	}
	if a.Issued != rep.MemRequests || a.Delivered != a.Issued || a.Open != 0 {
		t.Fatalf("ledger counters: %+v (MemRequests=%d)", a, rep.MemRequests)
	}
	// Audit off keeps the report field nil.
	plain, err := Run(RunOptions{Workload: "sg"})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Audit != nil {
		t.Fatal("Audit report present without RunOptions.Audit")
	}
}

// TestChaosProfileSurfacesInReport: a chaos run carries its canonical
// profile and injected-adversity counters; the same seed replays the
// identical report.
func TestChaosProfileSurfacesInReport(t *testing.T) {
	opts := RunOptions{
		Workload: "sg",
		Audit:    true,
		Chaos:    ChaosOptions{Profile: "storm", Seed: 7},
	}
	a, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Chaos == nil {
		t.Fatal("chaos profile configured but report missing")
	}
	if a.Chaos.DelayedResponses == 0 && a.Chaos.FencesInjected == 0 &&
		a.Chaos.VaultStalls == 0 && a.Chaos.FreezeCycles == 0 {
		t.Fatalf("storm injected nothing: %+v", a.Chaos)
	}
	if !strings.Contains(a.Chaos.Profile, "seed=7") {
		t.Fatalf("profile rendering lacks the seed override: %q", a.Chaos.Profile)
	}
	if !a.Audit.Ok() {
		t.Fatalf("storm broke invariants: %v", a.Audit.Violations)
	}
	b, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("chaos with a fixed seed is not deterministic")
	}
}

// TestRetryOptionsRecoverPoisonedRuns: under a survivable poison rate
// the retry policy converges — no failed requests, re-issues counted.
func TestRetryOptionsRecoverPoisonedRuns(t *testing.T) {
	opts := RunOptions{
		Workload: "sg",
		Audit:    true,
		Faults:   FaultOptions{CRCErrorRate: 0.3, RetryLimit: 1, Seed: 9},
		Retry:    RetryOptions{MaxRetries: 8, BackoffCycles: 16},
	}
	rep, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faults.PoisonedResponses == 0 {
		t.Fatal("setup: no poisoned responses to recover from")
	}
	if rep.Faults.RetriedRequests == 0 || rep.Audit.Reissued == 0 {
		t.Fatalf("no re-issues recorded: %+v / %+v", rep.Faults, rep.Audit)
	}
	if rep.Faults.FailedRequests != 0 {
		t.Fatalf("%d requests failed despite the retry budget", rep.Faults.FailedRequests)
	}
	if !rep.Audit.Ok() {
		t.Fatalf("retries broke invariants: %v", rep.Audit.Violations)
	}
}

// TestChaosAndRetryOptionsValidated: malformed chaos profiles and
// negative retry knobs surface as configuration errors.
func TestChaosAndRetryOptionsValidated(t *testing.T) {
	for _, opts := range []RunOptions{
		{Workload: "sg", Chaos: ChaosOptions{Profile: "warp=0.1"}},
		{Workload: "sg", Chaos: ChaosOptions{Profile: "delay=1.5"}},
		{Workload: "sg", Retry: RetryOptions{MaxRetries: -1}},
		{Workload: "sg", Retry: RetryOptions{MaxRetries: 1, BackoffCycles: -5}},
	} {
		if _, err := Run(opts); err == nil {
			t.Fatalf("invalid options accepted: %+v", opts)
		}
	}
	if _, err := RunNUMA(NUMAOptions{
		Workload: "sg", Retry: RetryOptions{MaxRetries: 1, BackoffCycles: -5},
	}); err == nil {
		t.Fatal("RunNUMA accepted a negative retry backoff")
	}
}
