// Command experiments regenerates every table and figure of the MAC
// paper's evaluation from the simulator stack.
//
// Usage:
//
//	experiments [-scale tiny|small|ref] [-seed N] [-exp fig10,...]
//	            [-bench sg,bfs,...] [-csv] [-quiet]
//	experiments -macd http://127.0.0.1:8080 [-scale ...] [-bench ...]
//
// By default it runs every experiment at small scale over the paper's
// twelve benchmarks and prints aligned tables, one per figure, with
// the paper's headline numbers for comparison. With -macd, the Fig. 10
// coalescing sweep is submitted to a running macd daemon as job specs
// instead of simulating in process — repeated sweeps hit the daemon's
// result cache.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"mac3d/internal/experiments"
	"mac3d/internal/service"
	"mac3d/internal/workloads"
)

func main() {
	scaleFlag := flag.String("scale", "small", "workload scale: tiny, small or ref")
	seed := flag.Uint64("seed", 1, "deterministic seed for synthetic inputs")
	expFlag := flag.String("exp", "", "comma-separated experiment ids (default: all); see -list")
	benchFlag := flag.String("bench", "", "comma-separated benchmark subset (default: the paper's 12)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	parallel := flag.Int("parallel", runtime.NumCPU(), "concurrent simulations")
	outdir := flag.String("outdir", "", "also write one CSV file per experiment to this directory")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	list := flag.Bool("list", false, "list experiment ids and exit")
	macd := flag.String("macd", "", "run the coalescing sweep through a macd daemon at this base URL instead of in process")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-9s %s\n          paper: %s\n", e.ID, e.Title, e.Paper)
		}
		return
	}

	var scale workloads.Scale
	switch *scaleFlag {
	case "tiny":
		scale = workloads.Tiny
	case "small":
		scale = workloads.Small
	case "ref":
		scale = workloads.Ref
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	opts := experiments.Options{Scale: scale, Seed: *seed, Parallel: *parallel}
	if *benchFlag != "" {
		opts.Benchmarks = strings.Split(*benchFlag, ",")
	}
	if !*quiet {
		opts.Progress = func(msg string) { fmt.Fprintf(os.Stderr, "  .. %s\n", msg) }
	}

	if *macd != "" {
		client := &service.Client{BaseURL: *macd}
		t0 := time.Now()
		tab, err := experiments.ServiceSweep(context.Background(), client, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *csv {
			fmt.Print(tab.CSV())
		} else {
			fmt.Print(tab.Render())
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "  [sweep via %s done in %s]\n", *macd, time.Since(t0).Round(time.Millisecond))
		}
		return
	}

	suite := experiments.NewSuite(opts)
	if *parallel > 1 {
		// Warm the shared with/without-MAC runs concurrently.
		if err := suite.Prefetch(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	selected := experiments.All()
	if *expFlag != "" {
		selected = selected[:0]
		for _, id := range strings.Split(*expFlag, ",") {
			e, err := experiments.Find(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	start := time.Now()
	for _, e := range selected {
		t0 := time.Now()
		tab, err := e.Run(suite)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("\n=== %s: %s ===\n", e.ID, e.Title)
		fmt.Printf("paper: %s\n\n", e.Paper)
		if *csv {
			fmt.Print(tab.CSV())
		} else {
			fmt.Print(tab.Render())
		}
		if *outdir != "" {
			if err := os.MkdirAll(*outdir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			path := filepath.Join(*outdir, e.ID+".csv")
			if err := os.WriteFile(path, []byte(tab.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "  [%s done in %s]\n", e.ID, time.Since(t0).Round(time.Millisecond))
		}
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "\nall experiments done in %s\n", time.Since(start).Round(time.Millisecond))
	}
}
