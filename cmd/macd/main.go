// Command macd serves the MAC simulator as a daemon: a bounded job
// queue and worker pool behind an HTTP API, with single-flight
// coalescing and a content-addressed result cache so identical
// spec+seed submissions re-use one deterministic report.
//
// Usage:
//
//	macd [-addr :8080] [-workers 4] [-queue 64]
//	     [-cache-bytes 67108864] [-job-timeout 10m] [-retain 4096]
//	     [-journal DIR] [-journal-sync] [-svcchaos PROFILE]
//	     [-peers URL,URL] [-cluster-router CONFIG]
//
// With -journal, every job lifecycle transition is logged to an
// append-only CRC-checked journal in DIR and done results are stored
// content-addressed beside it; a daemon restarted on the same DIR
// replays the log, restores completed results, re-queues interrupted
// jobs and keeps serving the same job IDs (see DESIGN.md "Crash
// safety"). -svcchaos injects seeded service-layer faults (worker
// kills, stalls, request delays, dropped connections, partitions) for
// testing; see internal/svcchaos.
//
// Cluster mode (see DESIGN.md "Sharded cluster"):
//
//   - -peers URL,URL makes this daemon a cluster shard: before
//     executing a job, it consults each peer's content-addressed
//     result store and serves any hit byte-identically.
//   - -cluster-router CONFIG starts a router instead of a daemon: a
//     coordinator that owns a consistent-hash ring over shard daemons,
//     health-checks them, fails jobs over on shard death and applies
//     per-tenant admission quotas. CONFIG is
//     "shards=URL|URL,vnodes=N,hb=DUR,jitter=F,fail=N,readmit=N,
//     quota=RATE:BURST,tenant=NAME:RATE:BURST,seed=N" (see
//     internal/cluster). The router serves the same /v1 API as a
//     daemon, plus GET /v1/cluster for topology.
//
// Endpoints (see DESIGN.md "Serving layer"):
//
//	POST   /v1/jobs             submit a JSON job spec
//	GET    /v1/jobs             list retained jobs
//	GET    /v1/jobs/{id}        job status
//	GET    /v1/jobs/{id}/result finished report JSON
//	DELETE /v1/jobs/{id}        cancel
//	GET    /v1/results/{hash}   stored result by spec hash
//	GET    /v1/healthz          liveness + drain state
//	GET    /v1/metrics          obs registry as "name value" lines
//
// SIGINT/SIGTERM stops accepting jobs (503), drains queued and
// running work, then exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mac3d/internal/cluster"
	"mac3d/internal/service"
	"mac3d/internal/svcchaos"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		workers     = flag.Int("workers", 0, "worker pool size (0 = default 4)")
		queue       = flag.Int("queue", 0, "job queue depth before 429s (0 = default 64)")
		cacheBytes  = flag.Int64("cache-bytes", 0, "result cache budget in bytes (0 = default 64 MiB, negative disables)")
		jobTimeout  = flag.Duration("job-timeout", 0, "per-job execution timeout (0 = default 10m, negative disables)")
		retain      = flag.Int("retain", 0, "terminal job records to keep (0 = default 4096)")
		drainWait   = flag.Duration("drain-timeout", 2*time.Minute, "max time to wait for in-flight jobs on shutdown")
		journalDir  = flag.String("journal", "", "crash-safe job journal directory (empty disables journaling)")
		journalSync = flag.Bool("journal-sync", false, "fsync every journal append (power-loss durability)")
		chaosSpec   = flag.String("svcchaos", "", "service chaos profile for testing: off, mild, split, storm, or kill=RATE,stall=RATE:MS,delay=RATE:MS,drop=RATE,partition=RATE:MS,seed=N")
		peers       = flag.String("peers", "", "comma-separated peer daemon URLs for cluster result read-through")
		routerSpec  = flag.String("cluster-router", "", "run as a cluster router over shard daemons (see internal/cluster for the config syntax); most daemon flags are ignored")
	)
	flag.Parse()
	if *routerSpec != "" {
		if err := runRouter(*addr, *routerSpec); err != nil {
			log.Fatalf("macd: %v", err)
		}
		return
	}
	profile, err := svcchaos.ParseProfile(*chaosSpec)
	if err != nil {
		log.Fatalf("macd: %v", err)
	}
	cfg := service.Config{
		Workers:     *workers,
		QueueDepth:  *queue,
		CacheBytes:  *cacheBytes,
		JobTimeout:  *jobTimeout,
		RetainJobs:  *retain,
		JournalDir:  *journalDir,
		JournalSync: *journalSync,
	}
	if *peers != "" {
		var urls []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				urls = append(urls, p)
			}
		}
		cfg.ResultLookup = cluster.PeerReadThrough(urls)
	}
	if err := run(*addr, cfg, profile, *drainWait); err != nil {
		log.Fatalf("macd: %v", err)
	}
}

func run(addr string, cfg service.Config, profile svcchaos.Profile, drainWait time.Duration) error {
	var injector *svcchaos.Injector
	if profile.Enabled() {
		var err error
		injector, err = svcchaos.New(profile)
		if err != nil {
			return err
		}
		cfg.WrapRunner = injector.WrapRunner
	}
	svc, err := service.New(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	handler := service.Handler(svc)
	if injector != nil {
		handler = injector.Middleware(handler)
		ln = injector.Listener(ln)
	}
	srv := &http.Server{Handler: handler}

	// The parseable start lines: tests and scripts read the bound
	// address (port 0 resolves to a real port) and, when journaling,
	// the replay outcome from here. The listen line always comes first.
	fmt.Printf("macd: listening on %s\n", ln.Addr())
	if rec := svc.Recovery(); rec != nil {
		fmt.Printf("macd: recovered: %s\n", rec)
	}
	if profile.Enabled() {
		fmt.Printf("macd: svcchaos enabled: %s\n", profile)
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		log.Printf("macd: %v: draining", s)
	}

	ctx, cancel := context.WithTimeout(context.Background(), drainWait)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		// Jobs still running at the deadline keep draining in the
		// background; report and shut the listener down anyway.
		log.Printf("macd: %v", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		srv.Close()
	}
	log.Printf("macd: drained, bye")
	return nil
}

// runRouter serves the cluster coordinator: same signal handling and
// parseable start line as a daemon, but requests are routed to shards
// instead of executed.
func runRouter(addr, spec string) error {
	cfg, err := cluster.ParseConfig(spec)
	if err != nil {
		return err
	}
	r, err := cluster.NewRouter(cfg)
	if err != nil {
		return err
	}
	defer r.Close()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: cluster.Handler(r)}

	fmt.Printf("macd: listening on %s\n", ln.Addr())
	fmt.Printf("macd: cluster router over %d shards\n", len(cfg.Shards))

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		log.Printf("macd: %v: stopping router", s)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		srv.Close()
	}
	log.Printf("macd: router stopped, bye")
	return nil
}
