package main

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"mac3d/internal/service"
)

// buildMacd compiles the daemon binary into a test temp dir.
func buildMacd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "macd")
	if runtime.GOOS == "windows" {
		bin += ".exe"
	}
	build := exec.Command("go", "build", "-o", bin, "mac3d/cmd/macd")
	build.Dir = "../.."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// startDaemon builds macd, starts it on an ephemeral port and returns
// a client plus a stop function that SIGTERMs the daemon and asserts a
// clean exit.
func startDaemon(t *testing.T, extraArgs ...string) (*service.Client, func()) {
	t.Helper()
	bin := buildMacd(t)

	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// The first stdout line announces the bound address.
	lines := bufio.NewScanner(stdout)
	addrc := make(chan string, 1)
	go func() {
		if lines.Scan() {
			addrc <- strings.TrimPrefix(lines.Text(), "macd: listening on ")
		}
		close(addrc)
		for lines.Scan() {
		}
	}()
	var addr string
	select {
	case a, ok := <-addrc:
		if !ok || a == "" {
			cmd.Process.Kill()
			t.Fatalf("macd printed no listen line; stderr:\n%s", stderr.String())
		}
		addr = a
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("macd did not start; stderr:\n%s", stderr.String())
	}

	stopped := false
	stop := func() {
		if stopped {
			return
		}
		stopped = true
		if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatalf("SIGTERM: %v", err)
		}
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("macd exited uncleanly after SIGTERM: %v\nstderr:\n%s", err, stderr.String())
			}
		case <-time.After(60 * time.Second):
			cmd.Process.Kill()
			t.Fatalf("macd did not drain within 60s of SIGTERM; stderr:\n%s", stderr.String())
		}
	}
	t.Cleanup(func() {
		if !stopped {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	return &service.Client{
		BaseURL:      "http://" + addr,
		PollInterval: 10 * time.Millisecond,
	}, stop
}

// TestDaemonEndToEnd is the acceptance scenario: start macd, submit
// two identical jobs concurrently plus a mixed load, verify the
// duplicate work deduplicates (coalesce or cache hit) with
// byte-identical results, then verify a later identical submission is
// a pure cache hit, and finally SIGTERM drains cleanly.
func TestDaemonEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the daemon and runs real simulations")
	}
	c, stop := startDaemon(t, "-workers", "4", "-queue", "64")
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()

	if ok, draining, err := c.Healthz(ctx); err != nil || !ok || draining {
		t.Fatalf("healthz: ok=%v draining=%v err=%v", ok, draining, err)
	}

	spec := []byte(`{"kind":"run","run":{"workload":"sg","scale":"tiny","seed":1}}`)

	// Two identical jobs, submitted concurrently.
	type res struct {
		st   service.JobStatus
		data []byte
		err  error
	}
	results := make([]res, 2)
	var wg sync.WaitGroup
	for i := range results {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			st, err := c.SubmitJSON(ctx, spec)
			if err != nil {
				results[i].err = err
				return
			}
			data, err := c.AwaitResult(ctx, st.ID)
			results[i] = res{st: st, data: data, err: err}
		}()
	}
	// A mixed background load alongside them.
	mixed := []string{
		`{"kind":"run","run":{"workload":"bfs","scale":"tiny","seed":2}}`,
		`{"kind":"numa","numa":{"workload":"is","threads":4,"nodes":2,"cores_per_node":2}}`,
	}
	mixedErrs := make(chan error, len(mixed))
	for _, m := range mixed {
		m := m
		wg.Add(1)
		go func() {
			defer wg.Done()
			st, err := c.SubmitJSON(ctx, []byte(m))
			if err == nil {
				_, err = c.AwaitResult(ctx, st.ID)
			}
			if err != nil {
				mixedErrs <- fmt.Errorf("mixed job %s: %w", m, err)
			}
		}()
	}
	wg.Wait()
	close(mixedErrs)
	for err := range mixedErrs {
		t.Error(err)
	}
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("identical job %d: %v", i, r.err)
		}
	}
	if !bytes.Equal(results[0].data, results[1].data) {
		t.Fatal("identical spec+seed jobs returned different bytes")
	}
	if results[0].st.Hash != results[1].st.Hash {
		t.Fatal("identical specs were assigned different hashes")
	}
	// One of the pair deduplicated against the other: either it
	// coalesced onto the in-flight run or it hit the cache.
	deduped := results[0].st.Cached || results[0].st.Coalesced ||
		results[1].st.Cached || results[1].st.Coalesced
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !deduped && m["macd.jobs.coalesced"]+m["macd.cache.hits"] < 1 {
		t.Fatalf("duplicate submission executed twice: metrics %v", m)
	}

	// A third identical submission now must be a pure cache hit.
	st3, err := c.SubmitJSON(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !st3.Cached {
		t.Fatalf("post-completion duplicate should be cached, got %+v", st3)
	}
	data3, err := c.Result(ctx, st3.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data3, results[0].data) {
		t.Fatal("cached result differs from original")
	}
	m2, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m2["macd.cache.hits"] < 1 {
		t.Fatalf("macd.cache.hits = %g, want >= 1", m2["macd.cache.hits"])
	}

	// SIGTERM drains and exits 0 (asserted inside stop).
	stop()
}

// TestDaemonRejectsInvalidSpec starts the daemon and checks the
// HTTP-visible validation path.
func TestDaemonRejectsInvalidSpec(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the daemon")
	}
	c, stop := startDaemon(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	for _, bad := range []string{
		`{"kind":"run"}`,
		`{"kind":"run","run":{"workload":"sg","threads":-1}}`,
		`not json`,
	} {
		if _, err := c.SubmitJSON(ctx, []byte(bad)); err == nil {
			t.Errorf("daemon accepted invalid spec %q", bad)
		}
	}
	stop()
}

// rawDaemon starts a pre-built macd binary and returns its process,
// the parsed listen address, and a channel of subsequent stdout lines.
func rawDaemon(t *testing.T, bin string, args ...string) (*exec.Cmd, string, <-chan string) {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})

	lines := bufio.NewScanner(stdout)
	if !lines.Scan() {
		t.Fatalf("macd printed no listen line; stderr:\n%s", stderr.String())
	}
	addr := strings.TrimPrefix(lines.Text(), "macd: listening on ")
	rest := make(chan string, 64)
	go func() {
		defer close(rest)
		for lines.Scan() {
			select {
			case rest <- lines.Text():
			default:
			}
		}
	}()
	return cmd, addr, rest
}

// TestDaemonCrashRecovery is the acceptance drill for the crash-safe
// journal: start macd with -journal and a stall profile that pins the
// job in-flight, submit, SIGKILL the daemon mid-job, restart it on the
// same journal directory without chaos, and require the original job
// ID to finish with bytes identical to an uninterrupted daemon's
// result for the same spec.
func TestDaemonCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the daemon")
	}
	bin := buildMacd(t)
	dir := t.TempDir()
	spec := []byte(`{"kind":"run","run":{"workload":"sg","seed":7,"scale":"tiny"}}`)
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	// Reference run: an uninterrupted daemon's bytes for the spec.
	ref, stopRef := startDaemon(t)
	refSt, err := ref.SubmitJSON(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.AwaitResult(ctx, refSt.ID)
	if err != nil {
		t.Fatal(err)
	}
	stopRef()

	// Chaotic incarnation: every run stalls 30s, so the job is still
	// in-flight — started, not finalized — when the SIGKILL lands.
	cmdA, addrA, _ := rawDaemon(t, bin,
		"-journal", dir, "-workers", "1", "-svcchaos", "stall=1:30000,seed=1")
	cA := &service.Client{BaseURL: "http://" + addrA, PollInterval: 10 * time.Millisecond}
	st, err := cA.SubmitJSON(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}

	// Wait until the worker has picked the job up, then kill -9.
	deadline := time.Now().Add(30 * time.Second)
	for {
		js, err := cA.Job(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if js.State == service.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s before crash", js.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := cmdA.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmdA.Wait()

	// Restart on the same journal, chaos-free. The recovered line is
	// parseable from stdout after the listen line.
	_, addrB, restB := rawDaemon(t, bin, "-journal", dir, "-workers", "1")
	select {
	case line := <-restB:
		if !strings.HasPrefix(line, "macd: recovered: ") {
			t.Fatalf("second line %q, want recovery report", line)
		}
		if !strings.Contains(line, "1 requeued") {
			t.Fatalf("recovery line %q, want 1 requeued", line)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("no recovery line after restart")
	}

	// The resilient client resumes the original job ID and the result
	// is byte-identical to the uninterrupted run.
	cB := &service.Client{
		BaseURL:      "http://" + addrB,
		PollInterval: 10 * time.Millisecond,
		Retry:        service.DefaultRetryPolicy(),
	}
	got, err := cB.AwaitResult(ctx, st.ID)
	if err != nil {
		t.Fatalf("awaiting original job %s after restart: %v", st.ID, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("recovered result differs from uninterrupted run (%d vs %d bytes)", len(got), len(want))
	}

	// The journal on disk must verify clean: exactly one terminal per
	// admission epoch, with the requeue explaining the recovery.
	recs, _, err := service.ReadJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if v := service.VerifyJournal(recs); len(v) != 0 {
		t.Fatalf("journal violations: %v", v)
	}
	final := service.FoldFinalStates(recs)
	if fs := final[st.ID]; fs.State != service.StateDone {
		t.Fatalf("job %s final state %s, want done", st.ID, fs.State)
	}
}
