package main

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"mac3d/internal/service"
)

// startDaemon builds macd, starts it on an ephemeral port and returns
// a client plus a stop function that SIGTERMs the daemon and asserts a
// clean exit.
func startDaemon(t *testing.T, extraArgs ...string) (*service.Client, func()) {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "macd")
	if runtime.GOOS == "windows" {
		bin += ".exe"
	}
	build := exec.Command("go", "build", "-o", bin, "mac3d/cmd/macd")
	build.Dir = "../.."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// The first stdout line announces the bound address.
	lines := bufio.NewScanner(stdout)
	addrc := make(chan string, 1)
	go func() {
		if lines.Scan() {
			addrc <- strings.TrimPrefix(lines.Text(), "macd: listening on ")
		}
		close(addrc)
		for lines.Scan() {
		}
	}()
	var addr string
	select {
	case a, ok := <-addrc:
		if !ok || a == "" {
			cmd.Process.Kill()
			t.Fatalf("macd printed no listen line; stderr:\n%s", stderr.String())
		}
		addr = a
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("macd did not start; stderr:\n%s", stderr.String())
	}

	stopped := false
	stop := func() {
		if stopped {
			return
		}
		stopped = true
		if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatalf("SIGTERM: %v", err)
		}
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("macd exited uncleanly after SIGTERM: %v\nstderr:\n%s", err, stderr.String())
			}
		case <-time.After(60 * time.Second):
			cmd.Process.Kill()
			t.Fatalf("macd did not drain within 60s of SIGTERM; stderr:\n%s", stderr.String())
		}
	}
	t.Cleanup(func() {
		if !stopped {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	return &service.Client{
		BaseURL:      "http://" + addr,
		PollInterval: 10 * time.Millisecond,
	}, stop
}

// TestDaemonEndToEnd is the acceptance scenario: start macd, submit
// two identical jobs concurrently plus a mixed load, verify the
// duplicate work deduplicates (coalesce or cache hit) with
// byte-identical results, then verify a later identical submission is
// a pure cache hit, and finally SIGTERM drains cleanly.
func TestDaemonEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the daemon and runs real simulations")
	}
	c, stop := startDaemon(t, "-workers", "4", "-queue", "64")
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()

	if ok, draining, err := c.Healthz(ctx); err != nil || !ok || draining {
		t.Fatalf("healthz: ok=%v draining=%v err=%v", ok, draining, err)
	}

	spec := []byte(`{"kind":"run","run":{"workload":"sg","scale":"tiny","seed":1}}`)

	// Two identical jobs, submitted concurrently.
	type res struct {
		st   service.JobStatus
		data []byte
		err  error
	}
	results := make([]res, 2)
	var wg sync.WaitGroup
	for i := range results {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			st, err := c.SubmitJSON(ctx, spec)
			if err != nil {
				results[i].err = err
				return
			}
			data, err := c.AwaitResult(ctx, st.ID)
			results[i] = res{st: st, data: data, err: err}
		}()
	}
	// A mixed background load alongside them.
	mixed := []string{
		`{"kind":"run","run":{"workload":"bfs","scale":"tiny","seed":2}}`,
		`{"kind":"numa","numa":{"workload":"is","threads":4,"nodes":2,"cores_per_node":2}}`,
	}
	mixedErrs := make(chan error, len(mixed))
	for _, m := range mixed {
		m := m
		wg.Add(1)
		go func() {
			defer wg.Done()
			st, err := c.SubmitJSON(ctx, []byte(m))
			if err == nil {
				_, err = c.AwaitResult(ctx, st.ID)
			}
			if err != nil {
				mixedErrs <- fmt.Errorf("mixed job %s: %w", m, err)
			}
		}()
	}
	wg.Wait()
	close(mixedErrs)
	for err := range mixedErrs {
		t.Error(err)
	}
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("identical job %d: %v", i, r.err)
		}
	}
	if !bytes.Equal(results[0].data, results[1].data) {
		t.Fatal("identical spec+seed jobs returned different bytes")
	}
	if results[0].st.Hash != results[1].st.Hash {
		t.Fatal("identical specs were assigned different hashes")
	}
	// One of the pair deduplicated against the other: either it
	// coalesced onto the in-flight run or it hit the cache.
	deduped := results[0].st.Cached || results[0].st.Coalesced ||
		results[1].st.Cached || results[1].st.Coalesced
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !deduped && m["macd.jobs.coalesced"]+m["macd.cache.hits"] < 1 {
		t.Fatalf("duplicate submission executed twice: metrics %v", m)
	}

	// A third identical submission now must be a pure cache hit.
	st3, err := c.SubmitJSON(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !st3.Cached {
		t.Fatalf("post-completion duplicate should be cached, got %+v", st3)
	}
	data3, err := c.Result(ctx, st3.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data3, results[0].data) {
		t.Fatal("cached result differs from original")
	}
	m2, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m2["macd.cache.hits"] < 1 {
		t.Fatalf("macd.cache.hits = %g, want >= 1", m2["macd.cache.hits"])
	}

	// SIGTERM drains and exits 0 (asserted inside stop).
	stop()
}

// TestDaemonRejectsInvalidSpec starts the daemon and checks the
// HTTP-visible validation path.
func TestDaemonRejectsInvalidSpec(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the daemon")
	}
	c, stop := startDaemon(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	for _, bad := range []string{
		`{"kind":"run"}`,
		`{"kind":"run","run":{"workload":"sg","threads":-1}}`,
		`not json`,
	} {
		if _, err := c.SubmitJSON(ctx, []byte(bad)); err == nil {
			t.Errorf("daemon accepted invalid spec %q", bad)
		}
	}
	stop()
}
