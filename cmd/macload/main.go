// Command macload is a seeded load generator for a macd daemon or
// cluster router: it drives a reproducible job mix through concurrent
// clients, measures submit→result latency and reports p50/p99, cache
// behavior and the client resilience counters. With SLO flags it
// becomes a gate: breach the latency, error-rate or cache-hit floor
// and it exits 1 — CI-friendly canarying for serving-layer changes.
//
// Usage:
//
//	macload -target http://127.0.0.1:8080
//	        [-clients 8] [-jobs 64] [-unique 16] [-seed 1]
//	        [-workload sg] [-scale tiny] [-tenant NAME]
//	        [-timeout 2m] [-csv]
//	        [-slo-p99 DUR] [-slo-errors F] [-slo-cache-hits F]
//
// The job mix is deterministic: -jobs submissions cycle through
// -unique distinct specs (workload × scale × spec seed derived from
// -seed), so the expected cache/coalesce hit fraction is
// (jobs-unique)/jobs and a rerun against a warm daemon is comparable
// to the previous one. Clients retry under the shared seeded policy
// and honor server Retry-After hints, so macload is also a live
// exerciser of the backpressure path.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"sync"
	"time"

	"mac3d/internal/service"
	"mac3d/internal/stats"
)

type loadOptions struct {
	target   string
	clients  int
	jobs     int
	unique   int
	seed     uint64
	workload string
	scale    string
	tenant   string
	timeout  time.Duration

	sloP99       time.Duration
	sloErrors    float64 // max error fraction, negative disables
	sloCacheHits float64 // min cache-hit fraction, negative disables
}

// loadSummary is one run's measured outcome.
type loadSummary struct {
	jobs      int
	errors    int
	cached    int
	coalesced int
	latency   stats.Histogram // submit→result, microseconds
	clients   service.ClientStats
	elapsed   time.Duration
}

func (s *loadSummary) errorRate() float64 {
	if s.jobs == 0 {
		return 0
	}
	return float64(s.errors) / float64(s.jobs)
}

func (s *loadSummary) cacheHitRate() float64 {
	if s.jobs == 0 {
		return 0
	}
	return float64(s.cached+s.coalesced) / float64(s.jobs)
}

func (s *loadSummary) p50() time.Duration {
	return time.Duration(s.latency.Quantile(0.5)) * time.Microsecond
}

func (s *loadSummary) p99() time.Duration {
	return time.Duration(s.latency.Quantile(0.99)) * time.Microsecond
}

func main() {
	var opts loadOptions
	flag.StringVar(&opts.target, "target", "", "daemon or router base URL (required)")
	flag.IntVar(&opts.clients, "clients", 8, "concurrent client goroutines")
	flag.IntVar(&opts.jobs, "jobs", 64, "total submissions")
	flag.IntVar(&opts.unique, "unique", 16, "distinct specs in the mix (jobs beyond this repeat and should cache-hit)")
	flag.Uint64Var(&opts.seed, "seed", 1, "base seed for the deterministic job mix and client jitter")
	flag.StringVar(&opts.workload, "workload", "sg", "workload for generated specs")
	flag.StringVar(&opts.scale, "scale", "tiny", "scale for generated specs")
	flag.StringVar(&opts.tenant, "tenant", "", "X-Macd-Tenant header for cluster admission control")
	flag.DurationVar(&opts.timeout, "timeout", 2*time.Minute, "overall run deadline")
	flag.DurationVar(&opts.sloP99, "slo-p99", 0, "fail (exit 1) if p99 latency exceeds this (0 disables)")
	errRate := flag.Float64("slo-errors", -1, "fail (exit 1) if the error fraction exceeds this (negative disables)")
	hitRate := flag.Float64("slo-cache-hits", -1, "fail (exit 1) if the cache-hit fraction is below this (negative disables)")
	csv := flag.Bool("csv", false, "emit the summary as CSV instead of aligned text")
	flag.Parse()
	opts.sloErrors = *errRate
	opts.sloCacheHits = *hitRate
	if opts.target == "" {
		log.Fatal("macload: -target is required")
	}

	sum, err := runLoad(opts)
	if err != nil {
		log.Fatalf("macload: %v", err)
	}
	fmt.Print(formatSummary(&opts, sum, *csv))
	if breaches := checkSLOs(&opts, sum); len(breaches) > 0 {
		for _, b := range breaches {
			fmt.Printf("macload: SLO breach: %s\n", b)
		}
		os.Exit(1)
	}
}

// specMix builds the deterministic job list: opts.jobs submissions
// cycling through opts.unique distinct specs.
func specMix(opts *loadOptions) [][]byte {
	unique := opts.unique
	if unique < 1 {
		unique = 1
	}
	mix := make([][]byte, opts.jobs)
	for i := range mix {
		specSeed := opts.seed + uint64(i%unique)
		mix[i] = []byte(fmt.Sprintf(`{"kind":"run","run":{"workload":%q,"scale":%q,"seed":%d}}`,
			opts.workload, opts.scale, specSeed))
	}
	return mix
}

// runLoad drives the mix through opts.clients concurrent clients and
// aggregates latency and outcome counters.
func runLoad(opts loadOptions) (*loadSummary, error) {
	if opts.jobs < 1 || opts.clients < 1 {
		return nil, fmt.Errorf("need at least 1 job and 1 client (got %d, %d)", opts.jobs, opts.clients)
	}
	mix := specMix(&opts)
	ctx, cancel := context.WithTimeout(context.Background(), opts.timeout)
	defer cancel()

	sum := &loadSummary{jobs: opts.jobs}
	var mu sync.Mutex
	work := make(chan []byte)
	var wg sync.WaitGroup
	start := time.Now()
	clients := make([]*service.Client, opts.clients)
	for i := 0; i < opts.clients; i++ {
		policy := service.DefaultRetryPolicy()
		policy.Seed = opts.seed + uint64(i) + 1
		c := &service.Client{
			BaseURL: opts.target,
			Retry:   policy,
			Breaker: &service.Breaker{},
			Tenant:  opts.tenant,
		}
		clients[i] = c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for data := range work {
				t0 := time.Now()
				st, err := c.SubmitJSON(ctx, data)
				var out []byte
				if err == nil {
					out, err = c.AwaitResult(ctx, st.ID)
				}
				lat := time.Since(t0)
				mu.Lock()
				if err != nil || len(out) == 0 {
					sum.errors++
				} else {
					sum.latency.Observe(uint64(lat.Microseconds()))
				}
				if st.Cached {
					sum.cached++
				}
				if st.Coalesced {
					sum.coalesced++
				}
				mu.Unlock()
			}
		}()
	}
	for _, data := range mix {
		select {
		case work <- data:
		case <-ctx.Done():
			close(work)
			wg.Wait()
			return nil, fmt.Errorf("deadline exceeded after %v", opts.timeout)
		}
	}
	close(work)
	wg.Wait()
	sum.elapsed = time.Since(start)
	for _, c := range clients {
		cs := c.Stats()
		sum.clients.Attempts += cs.Attempts
		sum.clients.Retries += cs.Retries
		sum.clients.BreakerRejects += cs.BreakerRejects
		sum.clients.RetryAfterWaits += cs.RetryAfterWaits
	}
	return sum, nil
}

func formatSummary(opts *loadOptions, s *loadSummary, csv bool) string {
	t := stats.NewTable(
		fmt.Sprintf("macload: %d jobs x %d clients against %s", s.jobs, opts.clients, opts.target),
		"metric", "value")
	t.AddRow("elapsed", s.elapsed.Round(time.Millisecond).String())
	t.AddRow("errors", s.errors)
	t.AddRow("p50_latency", s.p50().Round(time.Microsecond).String())
	t.AddRow("p99_latency", s.p99().Round(time.Microsecond).String())
	t.AddRow("cache_hit_rate", stats.FormatFloat(s.cacheHitRate()))
	t.AddRow("cached", s.cached)
	t.AddRow("coalesced", s.coalesced)
	t.AddRow("attempts", s.clients.Attempts)
	t.AddRow("retries", s.clients.Retries)
	t.AddRow("breaker_rejects", s.clients.BreakerRejects)
	t.AddRow("retry_after_waits", s.clients.RetryAfterWaits)
	if csv {
		return t.CSV()
	}
	return t.Render()
}

// checkSLOs returns a description of every breached objective.
func checkSLOs(opts *loadOptions, s *loadSummary) []string {
	var out []string
	if opts.sloP99 > 0 && s.p99() > opts.sloP99 {
		out = append(out, fmt.Sprintf("p99 %v > %v", s.p99().Round(time.Microsecond), opts.sloP99))
	}
	if opts.sloErrors >= 0 && s.errorRate() > opts.sloErrors {
		out = append(out, fmt.Sprintf("error rate %s > %s",
			strings.TrimSpace(stats.FormatFloat(s.errorRate())), strings.TrimSpace(stats.FormatFloat(opts.sloErrors))))
	}
	if opts.sloCacheHits >= 0 && s.cacheHitRate() < opts.sloCacheHits {
		out = append(out, fmt.Sprintf("cache-hit rate %s < %s",
			strings.TrimSpace(stats.FormatFloat(s.cacheHitRate())), strings.TrimSpace(stats.FormatFloat(opts.sloCacheHits))))
	}
	return out
}
