package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mac3d/internal/service"
)

func startDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	svc, err := service.New(service.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Kill)
	srv := httptest.NewServer(service.Handler(svc))
	t.Cleanup(srv.Close)
	return srv
}

func TestSpecMixDeterministic(t *testing.T) {
	opts := &loadOptions{jobs: 12, unique: 4, seed: 9, workload: "sg", scale: "tiny"}
	a, b := specMix(opts), specMix(opts)
	if len(a) != 12 {
		t.Fatalf("mix length %d", len(a))
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("mix[%d] differs between identically seeded builds", i)
		}
	}
	// Jobs cycle: entry 0 and entry unique are the same spec.
	if !bytes.Equal(a[0], a[4]) {
		t.Fatal("mix does not cycle through unique specs")
	}
	if bytes.Equal(a[0], a[1]) {
		t.Fatal("distinct mix entries are identical")
	}
	// Every spec in the mix must be valid.
	for i, data := range a {
		if _, err := service.ParseSpec(data); err != nil {
			t.Fatalf("mix[%d] is invalid: %v", i, err)
		}
	}
}

func TestRunLoadAgainstDaemon(t *testing.T) {
	srv := startDaemon(t)
	sum, err := runLoad(loadOptions{
		target:   srv.URL,
		clients:  4,
		jobs:     16,
		unique:   4,
		seed:     3,
		workload: "sg",
		scale:    "tiny",
		timeout:  2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.errors != 0 {
		t.Fatalf("errors = %d, want 0", sum.errors)
	}
	if got := int(sum.latency.Count()); got != 16 {
		t.Fatalf("latency samples = %d, want 16", got)
	}
	// 16 jobs over 4 unique specs: at least the 12 repeats must be
	// served by the cache or coalesced onto an in-flight twin.
	if sum.cached+sum.coalesced < 12 {
		t.Fatalf("cached %d + coalesced %d < 12 repeats", sum.cached, sum.coalesced)
	}
	if sum.p99() < sum.p50() {
		t.Fatalf("p99 %v < p50 %v", sum.p99(), sum.p50())
	}
	out := formatSummary(&loadOptions{target: srv.URL, clients: 4}, sum, false)
	for _, want := range []string{"p50_latency", "p99_latency", "cache_hit_rate", "errors"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestCheckSLOs(t *testing.T) {
	sum := &loadSummary{jobs: 10, errors: 2, cached: 1}
	sum.latency.Observe(50_000) // 50ms
	opts := &loadOptions{sloP99: 10 * time.Millisecond, sloErrors: 0.1, sloCacheHits: 0.5}
	breaches := checkSLOs(opts, sum)
	if len(breaches) != 3 {
		t.Fatalf("breaches = %v, want 3", breaches)
	}
	// Disabled SLOs never breach.
	opts = &loadOptions{sloP99: 0, sloErrors: -1, sloCacheHits: -1}
	if breaches := checkSLOs(opts, sum); len(breaches) != 0 {
		t.Fatalf("disabled SLOs breached: %v", breaches)
	}
	// Met SLOs pass.
	opts = &loadOptions{sloP99: time.Second, sloErrors: 0.5, sloCacheHits: 0.05}
	if breaches := checkSLOs(opts, sum); len(breaches) != 0 {
		t.Fatalf("met SLOs breached: %v", breaches)
	}
}
