// Command macsim runs one benchmark through the node/MAC/HMC pipeline
// and prints the full measurement report, optionally comparing the
// designs.
//
// Usage:
//
//	macsim -workload sg [-threads 8] [-scale tiny|small|ref]
//	       [-design mac|raw|mshr|warp|memcache] [-frontend lanes=8,...]
//	       [-compare] [-arq 32] [-seed 1] [-cube ring,page=open,...]
//	       [-metrics-out m.txt] [-timeseries-out ts.csv]
//	       [-trace-out trace.json] [-obs-interval 64]
//	       [-audit] [-chaos-profile mild|storm|delay=0.01:16:32,...]
//	       [-chaos-seed 1] [-retry 3] [-retry-backoff 32]
//	macsim -workload sg -numa 8 [-numa-topology ideal|ring|mesh]
//	       [-parallel 4] [-threads 8] [-scale ...] [-seed ...]
//	       [-chaos-profile ...] [-retry ...]
//	macsim -list
//
// -numa switches to the multi-node system: one MAC and HMC device per
// node behind the selected interconnect. -parallel runs the node
// phases on that many worker goroutines; the report is bit-identical
// to a sequential run of the same spec (the printed report is
// deterministic, so two invocations can be compared byte-for-byte).
//
// A run with -audit prints the request-lifecycle conservation report
// and exits non-zero if any invariant was violated. -chaos-profile
// composes deterministic stressors (response delay/reorder storms,
// fence storms, submit freezes, transient vault stalls) on top of any
// fault injection; -chaos-seed replays a specific adversarial
// schedule. -retry re-issues poisoned completions at the requester.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"mac3d"
)

func main() {
	workload := flag.String("workload", "", "benchmark to run (see -list)")
	traceFile := flag.String("in", "", "replay a binary trace file (from tracegen) instead of a benchmark")
	threads := flag.Int("threads", 8, "hardware threads")
	scaleFlag := flag.String("scale", "tiny", "input scale: tiny, small or ref")
	designFlag := flag.String("design", "mac", "memory path: mac, raw, mshr, warp or memcache")
	frontendFlag := flag.String("frontend", "", "frontend tuning key=value list (lanes, warps, split, cache, line, ways)")
	compare := flag.Bool("compare", false, "run with and without MAC and report the deltas")
	arq := flag.Int("arq", 0, "override ARQ entries (default 32)")
	seed := flag.Uint64("seed", 1, "deterministic seed")
	list := flag.Bool("list", false, "list available workloads and exit")
	metricsOut := flag.String("metrics-out", "", "write the end-of-run metric registry to this file")
	timeseriesOut := flag.String("timeseries-out", "", "write cycle-sampled timeseries CSV to this file")
	traceOut := flag.String("trace-out", "", "write Chrome trace-event JSON (chrome://tracing, Perfetto) to this file")
	obsInterval := flag.Int("obs-interval", 64, "timeseries sampling interval in cycles")
	auditFlag := flag.Bool("audit", false, "enable the request-lifecycle conservation ledger; exit 1 on violations")
	cubeFlag := flag.String("cube", "", "cube-internal fabric config: TOPOLOGY[,key=value...] (ideal, ring or mesh; page=closed|open, quad=N, hop/bw/buf/inject/cols)")
	chaosProfile := flag.String("chaos-profile", "", "chaos profile: preset (mild, storm) or stressor list (delay=0.01:16:32,reorder=0.1,...)")
	chaosSeed := flag.Uint64("chaos-seed", 0, "override the chaos RNG seed (0 keeps the profile's seed)")
	retryFlag := flag.Int("retry", 0, "re-issue poisoned completions up to this many times per request")
	retryBackoff := flag.Int64("retry-backoff", 0, "cycles to wait before each re-issue")
	numaNodes := flag.Int("numa", 0, "run the multi-node system with this many nodes (0: single node)")
	numaTopo := flag.String("numa-topology", "", "NUMA interconnect: ideal, ring or mesh (default ideal)")
	parallel := flag.Int("parallel", 0, "NUMA simulation worker goroutines (0 or 1: sequential; results are identical)")
	flag.Parse()

	if *list {
		infos := mac3d.Workloads()
		sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
		for _, w := range infos {
			fmt.Printf("%-10s %s\n", w.Name, w.Description)
		}
		return
	}
	if *workload == "" && *traceFile == "" {
		fmt.Fprintln(os.Stderr, "macsim: -workload or -in is required (try -list)")
		os.Exit(2)
	}

	if *numaNodes > 0 {
		if *traceFile != "" || *compare {
			fmt.Fprintln(os.Stderr, "macsim: -numa runs a workload on the multi-node system; drop -in/-compare")
			os.Exit(2)
		}
		scale, err := mac3d.ParseScale(*scaleFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "macsim:", err)
			os.Exit(2)
		}
		design, err := mac3d.ParseDesign(*designFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "macsim:", err)
			os.Exit(2)
		}
		nopts := mac3d.NUMAOptions{
			Workload: *workload,
			Threads:  *threads,
			Seed:     *seed,
			Scale:    scale,
			Design:   design,
			Frontend: *frontendFlag,
			Nodes:    *numaNodes,
			Parallel: *parallel,
			Cube:     *cubeFlag,
			Chaos:    mac3d.ChaosOptions{Profile: *chaosProfile, Seed: *chaosSeed},
			Retry:    mac3d.RetryOptions{MaxRetries: *retryFlag, BackoffCycles: *retryBackoff},
		}
		if *numaTopo != "" {
			nopts.NoC = &mac3d.NoCOptions{Topology: *numaTopo}
		}
		rep, err := mac3d.RunNUMA(nopts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "macsim:", err)
			os.Exit(1)
		}
		printNUMA(rep)
		return
	}

	opts := mac3d.RunOptions{
		Workload:   *workload,
		Threads:    *threads,
		Seed:       *seed,
		Frontend:   *frontendFlag,
		ARQEntries: *arq,
		Cube:       *cubeFlag,
		Audit:      *auditFlag,
		Chaos:      mac3d.ChaosOptions{Profile: *chaosProfile, Seed: *chaosSeed},
		Retry:      mac3d.RetryOptions{MaxRetries: *retryFlag, BackoffCycles: *retryBackoff},
	}
	if *metricsOut != "" || *timeseriesOut != "" || *traceOut != "" {
		if *compare {
			fmt.Fprintln(os.Stderr, "macsim: observability flags need a single run; drop -compare")
			os.Exit(2)
		}
		opts.Observe = mac3d.ObserveOptions{
			Enabled:        true,
			SampleInterval: *obsInterval,
			Trace:          *traceOut != "",
		}
	}
	writeObs := func(r *mac3d.RunReport) {
		if r.Observability == nil {
			return
		}
		if *metricsOut != "" {
			writeFile(*metricsOut, func(f *os.File) error {
				for _, m := range r.Observability.Metrics {
					if _, err := fmt.Fprintf(f, "%s %g\n", m.Name, m.Value); err != nil {
						return err
					}
				}
				return nil
			})
		}
		if *timeseriesOut != "" {
			writeFile(*timeseriesOut, func(f *os.File) error {
				return r.Observability.WriteTimeseriesCSV(f)
			})
		}
		if *traceOut != "" {
			writeFile(*traceOut, func(f *os.File) error {
				return r.Observability.WriteTrace(f)
			})
		}
	}
	var err error
	if opts.Scale, err = mac3d.ParseScale(*scaleFlag); err != nil {
		fmt.Fprintln(os.Stderr, "macsim:", err)
		os.Exit(2)
	}
	if opts.Design, err = mac3d.ParseDesign(*designFlag); err != nil {
		fmt.Fprintln(os.Stderr, "macsim:", err)
		os.Exit(2)
	}

	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "macsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		if *compare {
			rep, err := mac3d.CompareTraceFile(opts, f)
			if err != nil {
				fmt.Fprintln(os.Stderr, "macsim:", err)
				os.Exit(1)
			}
			printRun("with MAC", &rep.With)
			printRun("without MAC (raw 16B)", &rep.Without)
			fmt.Printf("coalescing efficiency   %.2f%%\n", 100*rep.CoalescingEfficiency)
			fmt.Printf("memory system speedup   %.2f%%\n", 100*rep.MemorySpeedup)
			exitOnViolations(&rep.With, &rep.Without)
			return
		}
		rep, err := mac3d.RunTraceFile(opts, f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "macsim:", err)
			os.Exit(1)
		}
		printRun(*traceFile, rep)
		writeObs(rep)
		exitOnViolations(rep)
		return
	}

	if *compare {
		rep, err := mac3d.Compare(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "macsim:", err)
			os.Exit(1)
		}
		printRun("with MAC", &rep.With)
		printRun("without MAC (raw 16B)", &rep.Without)
		fmt.Println("comparison")
		fmt.Printf("  coalescing efficiency   %.2f%%\n", 100*rep.CoalescingEfficiency)
		fmt.Printf("  memory system speedup   %.2f%%\n", 100*rep.MemorySpeedup)
		fmt.Printf("  makespan speedup        %.2fx\n", rep.MakespanSpeedup)
		fmt.Printf("  bank conflicts removed  %d\n", rep.BankConflictReduction)
		fmt.Printf("  control bytes saved     %d\n", rep.BandwidthSavingBytes)
		exitOnViolations(&rep.With, &rep.Without)
		return
	}

	rep, err := mac3d.Run(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "macsim:", err)
		os.Exit(1)
	}
	printRun(fmt.Sprintf("%s (%s)", *workload, rep.Design), rep)
	writeObs(rep)
	exitOnViolations(rep)
}

// writeFile creates path, hands it to fn, and dies on any error.
func writeFile(path string, fn func(*os.File) error) {
	f, err := os.Create(path)
	if err == nil {
		err = fn(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "macsim:", err)
		os.Exit(1)
	}
}

func printRun(title string, r *mac3d.RunReport) {
	fmt.Printf("%s\n", title)
	fmt.Printf("  cycles                  %d\n", r.Cycles)
	fmt.Printf("  instructions            %d (IPC %.3f, RPI %.3f)\n", r.Instructions, r.IPC, r.RPI)
	fmt.Printf("  memory requests         %d (+%d SPM hits, access rate %.3f)\n",
		r.MemRequests, r.SPMAccesses, r.MemAccessRate)
	fmt.Printf("  transactions            %d (%d bypassed)\n", r.Transactions, r.Bypassed)
	fmt.Printf("  coalescing efficiency   %.2f%% (avg targets/tx %.2f)\n",
		100*r.CoalescingEfficiency, r.AvgTargetsPerTx)
	sizes := make([]int, 0, len(r.TxBySize))
	for s := range r.TxBySize {
		sizes = append(sizes, int(s))
	}
	sort.Ints(sizes)
	for _, s := range sizes {
		fmt.Printf("    %4dB transactions     %d\n", s, r.TxBySize[uint32(s)])
	}
	fmt.Printf("  bank conflicts          %d\n", r.BankConflicts)
	fmt.Printf("  data / control bytes    %d / %d (bandwidth efficiency %.2f%%)\n",
		r.DataBytes, r.ControlBytes, 100*r.BandwidthEfficiency)
	fmt.Printf("  avg request latency     %.1f cycles (%.1f ns), p99 %d, max %d\n",
		r.AvgLatencyCycles, r.AvgLatencyNs, r.P99LatencyCycles, r.MaxLatencyCycles)
	fmt.Printf("  achieved bandwidth      %.2f GB/s data, %.2f GB/s link\n", r.DataGBps, r.LinkGBps)
	fmt.Printf("  issue stalls            %d LSQ, %d router, %d fence\n",
		r.StallLSQ, r.StallRouter, r.StallFence)
	if r.ARQOccupancy > 0 {
		fmt.Printf("  avg ARQ occupancy       %.2f entries\n", r.ARQOccupancy)
	}
	if w := r.Warp; w != nil {
		fmt.Printf("  warps                   %d formed, %d suspended\n", w.WarpsFormed, w.WarpsSuspended)
		fmt.Printf("    mask groups           %d same-addr, %d same-block (avg %.2f/warp, max %d)\n",
			w.SameAddrTx, w.SameBlockTx, w.AvgMasksPerWarp, w.MaxMasksPerWarp)
	}
	if m := r.MemCache; m != nil {
		fmt.Printf("  stacked cache           %.2f%% hit rate (%d hits, %d misses, %d merged)\n",
			100*m.HitRate, m.Hits, m.Misses, m.MergedMisses)
		fmt.Printf("    writebacks / direct   %d / %d\n", m.Writebacks, m.DirectAccesses)
	}
	if r.Faults.PoisonedResponses > 0 || r.Faults.RetriedRequests > 0 || r.Faults.FailedRequests > 0 {
		fmt.Printf("  poisoned responses      %d (%d re-issued, %d failed)\n",
			r.Faults.PoisonedResponses, r.Faults.RetriedRequests, r.Faults.FailedRequests)
	}
	if c := r.Chaos; c != nil {
		fmt.Printf("  chaos (%s)\n", c.Profile)
		fmt.Printf("    delay storms          %d (%d responses held)\n", c.DelayStorms, c.DelayedResponses)
		fmt.Printf("    reordered batches     %d\n", c.ReorderedBatches)
		fmt.Printf("    fences injected       %d\n", c.FencesInjected)
		fmt.Printf("    submit freeze cycles  %d\n", c.FreezeCycles)
		fmt.Printf("    vault stalls          %d\n", c.VaultStalls)
	}
	if a := r.Audit; a != nil {
		fmt.Printf("  audit                   issued %d, delivered %d, failed %d, re-issued %d, open %d\n",
			a.Issued, a.Delivered, a.Failed, a.Reissued, a.Open)
		if a.Ok() {
			fmt.Printf("    invariants            all held\n")
		} else {
			fmt.Printf("    VIOLATIONS            %d\n", len(a.Violations)+int(a.OmittedViolations))
			for _, v := range a.Violations {
				fmt.Printf("      %s\n", v)
			}
			if a.OmittedViolations > 0 {
				fmt.Printf("      ... and %d more\n", a.OmittedViolations)
			}
		}
	}
	fmt.Println()
}

// printNUMA renders a NUMA report. Every line derives from report
// fields in a fixed order, so the rendering is deterministic: two runs
// of the same spec — at any worker count — print identical bytes.
func printNUMA(r *mac3d.NUMAReport) {
	fmt.Printf("%s on %d nodes, %d threads\n", r.Workload, r.Nodes, r.Threads)
	fmt.Printf("  cycles                  %d\n", r.Cycles)
	fmt.Printf("  memory requests         %d (+%d SPM hits)\n", r.MemRequests, r.SPMAccesses)
	fmt.Printf("  remote requests         %d (%.2f%%)\n", r.RemoteRequests, 100*r.RemoteFraction)
	fmt.Printf("  avg request latency     %.1f cycles (%.1f ns)\n", r.AvgLatencyCycles, r.AvgLatencyNs)
	if r.RetriedRequests > 0 {
		fmt.Printf("  retried requests        %d\n", r.RetriedRequests)
	}
	if n := r.NoC; n != nil {
		fmt.Printf("  noc (%s, %d links)\n", n.Topology, n.Links)
		fmt.Printf("    messages / flits      %d / %d\n", n.MessagesSent, n.FlitsSent)
		fmt.Printf("    avg hops / latency    %.2f / %.1f cycles\n", n.AvgHops, n.AvgNetLatencyCycles)
		fmt.Printf("    inject rejects        %d (%d deliver retries)\n", n.InjectRejects, n.DeliverRetries)
		fmt.Printf("    stall cycles          %d credit, %d chaos\n", n.CreditStallCycles, n.ChaosStallCycles)
	}
	if c := r.Chaos; c != nil {
		fmt.Printf("  chaos (%s)\n", c.Profile)
		fmt.Printf("    link stalls           %d\n", c.LinkStalls)
	}
	for _, n := range r.PerNode {
		fmt.Printf("  node %-2d tx %-8d eff %6.2f%%  conflicts %-6d bw-eff %6.2f%%  remote served/sent %d/%d\n",
			n.Node, n.Transactions, 100*n.CoalescingEfficiency, n.BankConflicts,
			100*n.BandwidthEfficiency, n.RemoteServed, n.RemoteSent)
	}
	fmt.Println()
}

// exitOnViolations terminates with status 1 when an audited report
// carries invariant violations, after everything has been printed.
func exitOnViolations(reports ...*mac3d.RunReport) {
	for _, r := range reports {
		if r.Audit != nil && !r.Audit.Ok() {
			fmt.Fprintln(os.Stderr, "macsim: audit invariant violations detected")
			os.Exit(1)
		}
	}
}
