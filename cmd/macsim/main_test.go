package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// buildMacsim compiles the binary once per test binary invocation.
func buildMacsim(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "macsim")
	if runtime.GOOS == "windows" {
		bin += ".exe"
	}
	cmd := exec.Command("go", "build", "-o", bin, "mac3d/cmd/macsim")
	cmd.Dir = "../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func TestMacsimSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	bin := buildMacsim(t)

	t.Run("list", func(t *testing.T) {
		out, err := exec.Command(bin, "-list").CombinedOutput()
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		for _, w := range []string{"sg", "bfs", "is", "mg"} {
			if !strings.Contains(string(out), w) {
				t.Errorf("-list output missing workload %q:\n%s", w, out)
			}
		}
	})

	t.Run("run", func(t *testing.T) {
		out, err := exec.Command(bin, "-workload", "sg", "-scale", "tiny", "-threads", "4").CombinedOutput()
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		for _, want := range []string{"cycles", "coalescing efficiency", "bank conflicts"} {
			if !strings.Contains(string(out), want) {
				t.Errorf("report missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("compare", func(t *testing.T) {
		out, err := exec.Command(bin, "-workload", "is", "-scale", "tiny", "-compare").CombinedOutput()
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		if !strings.Contains(string(out), "memory system speedup") {
			t.Errorf("compare output missing speedup line:\n%s", out)
		}
	})

	t.Run("observability outputs", func(t *testing.T) {
		dir := t.TempDir()
		metrics := filepath.Join(dir, "m.txt")
		series := filepath.Join(dir, "ts.csv")
		out, err := exec.Command(bin, "-workload", "sg", "-scale", "tiny",
			"-metrics-out", metrics, "-timeseries-out", series).CombinedOutput()
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		m, err := os.ReadFile(metrics)
		if err != nil || len(m) == 0 {
			t.Fatalf("metrics file: err=%v len=%d", err, len(m))
		}
		ts, err := os.ReadFile(series)
		if err != nil || !strings.HasPrefix(string(ts), "cycle,") {
			t.Fatalf("timeseries file: err=%v head=%.40s", err, ts)
		}
	})

	t.Run("bad flags exit nonzero", func(t *testing.T) {
		for _, args := range [][]string{
			{"-workload", "sg", "-scale", "galactic"},
			{"-workload", "sg", "-design", "quantum"},
			{"-workload", "nope"},
			{},
		} {
			if err := exec.Command(bin, args...).Run(); err == nil {
				t.Errorf("macsim %v succeeded, want failure", args)
			}
		}
	})
}
