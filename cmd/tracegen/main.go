// Command tracegen generates, inspects and converts memory traces.
//
// Usage:
//
//	tracegen -workload sg -o sg.trace          # write binary trace
//	tracegen -i sg.trace -stats               # summarize a trace
//	tracegen -i sg.trace -text | head          # dump as text
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"mac3d/internal/trace"
	"mac3d/internal/workloads"
)

func main() {
	workload := flag.String("workload", "", "benchmark to trace")
	threads := flag.Int("threads", 8, "hardware threads")
	scaleFlag := flag.String("scale", "tiny", "input scale: tiny, small or ref")
	seed := flag.Uint64("seed", 1, "deterministic seed")
	out := flag.String("o", "", "output file for the binary trace")
	in := flag.String("i", "", "input binary trace to inspect")
	showStats := flag.Bool("stats", false, "print trace statistics")
	analyze := flag.Bool("analyze", false, "print the locality/mix analysis")
	text := flag.Bool("text", false, "dump events as text")
	flag.Parse()

	switch {
	case *workload != "":
		var scale workloads.Scale
		switch *scaleFlag {
		case "tiny":
			scale = workloads.Tiny
		case "small":
			scale = workloads.Small
		case "ref":
			scale = workloads.Ref
		default:
			fatal(fmt.Errorf("unknown scale %q", *scaleFlag))
		}
		tr, err := workloads.Generate(*workload, workloads.Config{
			Threads: *threads, Seed: *seed, Scale: scale,
		})
		if err != nil {
			fatal(err)
		}
		if *out == "" {
			if *analyze {
				fmt.Print(trace.Analyze(tr))
			} else {
				printStats(tr)
			}
			return
		}
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		w := trace.NewWriter(f)
		if err := w.WriteTrace(tr); err != nil {
			fatal(err)
		}
		if err := w.Flush(); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d events to %s\n", tr.Len(), *out)

	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		tr, err := trace.NewReader(f).ReadTrace()
		if err != nil {
			fatal(err)
		}
		if *text {
			w := bufio.NewWriter(os.Stdout)
			defer w.Flush()
			for _, th := range tr.Threads {
				for _, e := range th {
					fmt.Fprintln(w, trace.FormatText(e))
				}
			}
			return
		}
		_ = *showStats // -stats is the default inspection mode
		if *analyze {
			fmt.Print(trace.Analyze(tr))
			return
		}
		printStats(tr)

	default:
		fmt.Fprintln(os.Stderr, "tracegen: need -workload (generate) or -i (inspect)")
		flag.Usage()
		os.Exit(2)
	}
}

func printStats(tr *trace.Trace) {
	st := trace.ComputeStats(tr)
	fmt.Printf("events        %d\n", st.Events)
	fmt.Printf("loads         %d\n", st.Loads)
	fmt.Printf("stores        %d\n", st.Stores)
	fmt.Printf("atomics       %d\n", st.Atomics)
	fmt.Printf("fences        %d\n", st.Fences)
	fmt.Printf("instructions  %d (RPI %.3f)\n", st.Instructions, st.RPI)
	fmt.Printf("unique rows   %d\n", st.UniqueRows)
	fmt.Printf("footprint     %d bytes\n", st.Footprint)
	fmt.Printf("threads       %d\n", tr.NumThreads())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
