package main

import (
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

func buildTool(t *testing.T, pkg, name string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), name)
	if runtime.GOOS == "windows" {
		bin += ".exe"
	}
	cmd := exec.Command("go", "build", "-o", bin, pkg)
	cmd.Dir = "../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

func TestTracegenSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binaries")
	}
	bin := buildTool(t, "mac3d/cmd/tracegen", "tracegen")
	trace := filepath.Join(t.TempDir(), "sg.trace")

	t.Run("generate", func(t *testing.T) {
		out, err := exec.Command(bin, "-workload", "sg", "-scale", "tiny", "-threads", "4", "-o", trace).CombinedOutput()
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		if !strings.Contains(string(out), "wrote ") {
			t.Fatalf("unexpected generate output: %s", out)
		}
	})

	t.Run("stats", func(t *testing.T) {
		out, err := exec.Command(bin, "-i", trace, "-stats").CombinedOutput()
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		for _, want := range []string{"events", "loads", "threads"} {
			if !strings.Contains(string(out), want) {
				t.Errorf("stats output missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("text dump", func(t *testing.T) {
		out, err := exec.Command(bin, "-i", trace, "-text").CombinedOutput()
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		if len(strings.TrimSpace(string(out))) == 0 {
			t.Fatal("text dump produced no output")
		}
	})

	t.Run("analyze", func(t *testing.T) {
		out, err := exec.Command(bin, "-i", trace, "-analyze").CombinedOutput()
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		if len(strings.TrimSpace(string(out))) == 0 {
			t.Fatal("analysis produced no output")
		}
	})

	// The generated trace replays through macsim: the two tools agree
	// on the binary trace format end to end.
	t.Run("replay through macsim", func(t *testing.T) {
		macsim := buildTool(t, "mac3d/cmd/macsim", "macsim")
		out, err := exec.Command(macsim, "-in", trace, "-threads", "4").CombinedOutput()
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		if !strings.Contains(string(out), "coalescing efficiency") {
			t.Errorf("replay report missing coalescing line:\n%s", out)
		}
	})

	t.Run("bad invocations exit nonzero", func(t *testing.T) {
		for _, args := range [][]string{
			{},
			{"-workload", "nope", "-o", filepath.Join(t.TempDir(), "x.trace")},
			{"-i", filepath.Join(t.TempDir(), "missing.trace")},
			{"-workload", "sg", "-scale", "galactic"},
		} {
			if err := exec.Command(bin, args...).Run(); err == nil {
				t.Errorf("tracegen %v succeeded, want failure", args)
			}
		}
	})
}
