package mac3d

import "testing"

// cubeGoldenRow pins one pre-fabric reference run: the exact counters
// the simulator produced before the cube-internal vault fabric,
// open-page policy and quadrant model existed. The default cube
// configuration (ideal crossbar, closed page, no quadrant penalty)
// must reproduce every row cycle-for-cycle — the fabric is additive,
// never a silent change to the baseline model.
type cubeGoldenRow struct {
	workload      string
	chaos         string // chaos preset; "" = no chaos (seed 7 when set)
	cycles        uint64
	memRequests   uint64
	transactions  uint64
	bankConflicts uint64
	dataBytes     uint64
	controlBytes  uint64
	p99Latency    uint64
	maxLatency    uint64
	delayed       uint64
	reordered     uint64
	fences        uint64
	freezes       uint64
	vaultStalls   uint64
}

// cubeGolden was captured from the pre-fabric tree at tiny scale:
// every paper workload plain, plus the mild and storm chaos presets on
// the lightest and heaviest benchmarks.
var cubeGolden = []cubeGoldenRow{
	{workload: "sg", chaos: "", cycles: 10284, memRequests: 6144, transactions: 2862, bankConflicts: 1223, dataBytes: 192928, controlBytes: 91584, p99Latency: 950, maxLatency: 950},
	{workload: "hpcg", chaos: "", cycles: 121114, memRequests: 80272, transactions: 18196, bankConflicts: 9054, dataBytes: 1506400, controlBytes: 582272, p99Latency: 4095, maxLatency: 5761},
	{workload: "ssca2", chaos: "", cycles: 15025, memRequests: 3150, transactions: 664, bankConflicts: 471, dataBytes: 39168, controlBytes: 21248, p99Latency: 4095, maxLatency: 7260},
	{workload: "grappolo", chaos: "", cycles: 34466, memRequests: 7728, transactions: 2450, bankConflicts: 1457, dataBytes: 191424, controlBytes: 78400, p99Latency: 6516, maxLatency: 6516},
	{workload: "bfs", chaos: "", cycles: 36057, memRequests: 3862, transactions: 1210, bankConflicts: 878, dataBytes: 81264, controlBytes: 38720, p99Latency: 5596, maxLatency: 5596},
	{workload: "pr", chaos: "", cycles: 55679, memRequests: 9208, transactions: 2542, bankConflicts: 1830, dataBytes: 189840, controlBytes: 81344, p99Latency: 8191, maxLatency: 8608},
	{workload: "cc", chaos: "", cycles: 100343, memRequests: 12276, transactions: 3040, bankConflicts: 2266, dataBytes: 225936, controlBytes: 97280, p99Latency: 8191, maxLatency: 8295},
	{workload: "nqueens", chaos: "", cycles: 31278, memRequests: 13792, transactions: 2007, bankConflicts: 1771, dataBytes: 156688, controlBytes: 64224, p99Latency: 5573, maxLatency: 5573},
	{workload: "sparselu", chaos: "", cycles: 55257, memRequests: 6216, transactions: 1355, bankConflicts: 1151, dataBytes: 113632, controlBytes: 43360, p99Latency: 14085, maxLatency: 14085},
	{workload: "mg", chaos: "", cycles: 365310, memRequests: 186888, transactions: 44693, bankConflicts: 17153, dataBytes: 5445008, controlBytes: 1430176, p99Latency: 4095, maxLatency: 6563},
	{workload: "sp", chaos: "", cycles: 66671, memRequests: 33264, transactions: 12826, bankConflicts: 7496, dataBytes: 1222944, controlBytes: 410432, p99Latency: 4095, maxLatency: 4486},
	{workload: "is", chaos: "", cycles: 359997, memRequests: 21776, transactions: 14912, bankConflicts: 6994, dataBytes: 495376, controlBytes: 477184, p99Latency: 9301, maxLatency: 9301},
	{workload: "sg", chaos: "mild", cycles: 14531, memRequests: 6144, transactions: 3073, bankConflicts: 1357, dataBytes: 191952, controlBytes: 98336, p99Latency: 1564, maxLatency: 1564, delayed: 80, reordered: 11, fences: 11, freezes: 0, vaultStalls: 15},
	{workload: "mg", chaos: "mild", cycles: 495826, memRequests: 186888, transactions: 51836, bankConflicts: 23882, dataBytes: 5561360, controlBytes: 1658752, p99Latency: 4095, maxLatency: 7057, delayed: 1241, reordered: 48, fences: 280, freezes: 0, vaultStalls: 517},
	{workload: "sg", chaos: "storm", cycles: 29617, memRequests: 6144, transactions: 3488, bankConflicts: 1301, dataBytes: 183488, controlBytes: 111616, p99Latency: 2574, maxLatency: 2574, delayed: 1227, reordered: 44, fences: 624, freezes: 3480, vaultStalls: 307},
	{workload: "mg", chaos: "storm", cycles: 1489648, memRequests: 186888, transactions: 86343, bankConflicts: 51077, dataBytes: 5762912, controlBytes: 2762976, p99Latency: 4095, maxLatency: 8814, delayed: 34027, reordered: 391, fences: 30496, freezes: 161544, vaultStalls: 14855},
}

// runGoldenRow executes one golden row under the given cube spelling
// and diffs every pinned counter.
func runGoldenRow(t *testing.T, g cubeGoldenRow, cube string) {
	t.Helper()
	opts := RunOptions{Workload: g.workload, Scale: ScaleTiny, Cube: cube}
	if g.chaos != "" {
		opts.Chaos = ChaosOptions{Profile: g.chaos, Seed: 7}
	}
	rep, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	got := cubeGoldenRow{
		workload:      g.workload,
		chaos:         g.chaos,
		cycles:        rep.Cycles,
		memRequests:   rep.MemRequests,
		transactions:  rep.Transactions,
		bankConflicts: rep.BankConflicts,
		dataBytes:     rep.DataBytes,
		controlBytes:  rep.ControlBytes,
		p99Latency:    rep.P99LatencyCycles,
		maxLatency:    rep.MaxLatencyCycles,
	}
	if g.chaos != "" {
		if rep.Chaos == nil {
			t.Fatalf("%s/%s: chaos run missing chaos report", g.workload, g.chaos)
		}
		got.delayed = rep.Chaos.DelayedResponses
		got.reordered = rep.Chaos.ReorderedBatches
		got.fences = rep.Chaos.FencesInjected
		got.freezes = rep.Chaos.FreezeCycles
		got.vaultStalls = rep.Chaos.VaultStalls
	}
	if got != g {
		t.Errorf("%s/%s cube %q diverged from the pre-fabric golden:\n got %+v\nwant %+v",
			g.workload, g.chaos, cube, got, g)
	}
}

// TestCubeDefaultMatchesPreFabricGolden holds the default cube
// configuration bit-identical to the model as it was before the vault
// fabric landed, across every paper workload and the chaos presets.
func TestCubeDefaultMatchesPreFabricGolden(t *testing.T) {
	for _, g := range cubeGolden {
		runGoldenRow(t, g, "")
	}
}

// TestCubeExplicitIdealMatchesGolden: spelling the default out as an
// explicit ideal crossbar with closed-page rows is the same machine.
// The chaos presets ride along on the two bracketing benchmarks (the
// cubelink RNG roll is gated off when the fabric is ideal, so the
// chaos replay stream must be unchanged too).
func TestCubeExplicitIdealMatchesGolden(t *testing.T) {
	for _, g := range cubeGolden {
		if g.workload != "sg" && g.workload != "mg" {
			continue
		}
		runGoldenRow(t, g, "crossbar,page=closed")
	}
}
