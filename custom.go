package mac3d

import (
	"fmt"
	"io"

	"mac3d/internal/trace"
	"mac3d/internal/workloads"
)

// TraceBuilder lets applications drive the simulator with their own
// memory-access streams instead of the built-in benchmarks: allocate
// simulated arrays, record loads/stores/fences per thread, then hand
// the builder to RunTrace or CompareTrace.
//
// The builder mirrors the instrumentation surface used by the twelve
// built-in kernels, so custom workloads are measured identically.
type TraceBuilder struct {
	ctx *workloads.Context
}

// NewTraceBuilder returns a builder for the given thread count. Seed
// feeds the deterministic allocator layout; it does not need to match
// the RunOptions seed.
func NewTraceBuilder(threads int, seed uint64) (*TraceBuilder, error) {
	cfg := workloads.Config{Threads: threads, Seed: seed, Scale: workloads.Tiny}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &TraceBuilder{ctx: workloads.NewContext(cfg)}, nil
}

// Threads returns the builder's hardware thread count.
func (b *TraceBuilder) Threads() int { return b.ctx.Threads() }

// Alloc reserves n bytes of simulated global (HMC-resident) memory and
// returns its base address. Alignment is 64B.
func (b *TraceBuilder) Alloc(n uint64) uint64 { return b.ctx.Alloc(n, 64) }

// AllocSPM reserves n bytes in thread tid's 1MB scratchpad window.
// Accesses there retire locally and never reach the coalescer.
func (b *TraceBuilder) AllocSPM(tid int, n uint64) uint64 { return b.ctx.AllocSPM(tid, n) }

// Load records a read of size bytes at address a by thread tid.
func (b *TraceBuilder) Load(tid int, a uint64, size int) error {
	return b.emit(tid, a, size, b.ctx.Load)
}

// Store records a write of size bytes at address a by thread tid.
func (b *TraceBuilder) Store(tid int, a uint64, size int) error {
	return b.emit(tid, a, size, b.ctx.Store)
}

// Atomic records a read-modify-write at address a by thread tid.
// Atomics are never coalesced.
func (b *TraceBuilder) Atomic(tid int, a uint64, size int) error {
	return b.emit(tid, a, size, b.ctx.Atomic)
}

func (b *TraceBuilder) emit(tid int, a uint64, size int, f func(int, uint64, uint8)) error {
	if tid < 0 || tid >= b.ctx.Threads() {
		return fmt.Errorf("mac3d: thread %d out of range [0,%d)", tid, b.ctx.Threads())
	}
	if size <= 0 || size > 16 {
		return fmt.Errorf("mac3d: access size %d outside 1..16 bytes", size)
	}
	f(tid, a, uint8(size))
	return nil
}

// Fence records a memory fence by thread tid: the coalescer stops
// merging until every earlier request of the node has completed.
func (b *TraceBuilder) Fence(tid int) error {
	if tid < 0 || tid >= b.ctx.Threads() {
		return fmt.Errorf("mac3d: thread %d out of range [0,%d)", tid, b.ctx.Threads())
	}
	b.ctx.Fence(tid)
	return nil
}

// Work records n non-memory instructions by thread tid, pacing its
// issue rate in the timed model.
func (b *TraceBuilder) Work(tid int, n int) {
	if tid >= 0 && tid < b.ctx.Threads() {
		b.ctx.Work(tid, n)
	}
}

// Events returns the number of recorded trace events.
func (b *TraceBuilder) Events() int { return b.ctx.Trace().Len() }

func (b *TraceBuilder) trace() *trace.Trace { return b.ctx.Trace() }

// RunTrace executes a custom trace under the selected design. The
// Workload and Scale fields of opts are ignored; Threads must be able
// to hold the builder's threads (it defaults to the builder's count).
func RunTrace(opts RunOptions, b *TraceBuilder) (*RunReport, error) {
	if b == nil {
		return nil, fmt.Errorf("mac3d: nil TraceBuilder")
	}
	opts = opts.withDefaults()
	if opts.Workload == "" {
		opts.Workload = "custom"
	}
	if opts.Threads < b.Threads() {
		opts.Threads = b.Threads()
	}
	return runTrace(opts, b.trace())
}

// CompareTrace executes a custom trace with and without the MAC.
func CompareTrace(opts RunOptions, b *TraceBuilder) (*CompareReport, error) {
	if b == nil {
		return nil, fmt.Errorf("mac3d: nil TraceBuilder")
	}
	opts = opts.withDefaults()
	if opts.Workload == "" {
		opts.Workload = "custom"
	}
	if opts.Threads < b.Threads() {
		opts.Threads = b.Threads()
	}
	return compareTrace(opts, b.trace())
}

// RunTraceFile replays a binary trace file (written by cmd/tracegen or
// trace.Writer) through the simulator.
func RunTraceFile(opts RunOptions, r io.Reader) (*RunReport, error) {
	tr, err := trace.NewReader(r).ReadTrace()
	if err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	if opts.Workload == "" {
		opts.Workload = "tracefile"
	}
	active := 0
	for _, th := range tr.Threads {
		if len(th) > 0 {
			active++
		}
	}
	if opts.Threads < active {
		opts.Threads = active
	}
	return runTrace(opts, tr)
}

// CompareTraceFile replays a binary trace file with and without MAC.
func CompareTraceFile(opts RunOptions, r io.Reader) (*CompareReport, error) {
	tr, err := trace.NewReader(r).ReadTrace()
	if err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	if opts.Workload == "" {
		opts.Workload = "tracefile"
	}
	active := 0
	for _, th := range tr.Threads {
		if len(th) > 0 {
			active++
		}
	}
	if opts.Threads < active {
		opts.Threads = active
	}
	return compareTrace(opts, tr)
}
