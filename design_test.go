package mac3d

import (
	"encoding/json"
	"testing"

	"mac3d/internal/cpu"
)

func TestDesignKindRoundTrip(t *testing.T) {
	// The facade enum and the internal kind enum must stay one single
	// mapping: every Design resolves to a distinct kind, every
	// registered kind is reachable from a Design, and name parsing
	// round-trips through both layers.
	if got, want := len(Designs()), len(cpu.Kinds()); got != want {
		t.Fatalf("%d designs vs %d internal kinds", got, want)
	}
	seen := map[cpu.CoalescerKind]Design{}
	for _, d := range Designs() {
		k, err := d.kind()
		if err != nil {
			t.Fatalf("%v.kind(): %v", d, err)
		}
		if prev, dup := seen[k]; dup {
			t.Fatalf("designs %v and %v map to the same kind %v", prev, d, k)
		}
		seen[k] = d
		if d.String() != k.String() {
			t.Fatalf("design name %q != kind name %q", d.String(), k.String())
		}
		back, err := ParseDesign(d.String())
		if err != nil {
			t.Fatalf("ParseDesign(%q): %v", d.String(), err)
		}
		if back != d {
			t.Fatalf("ParseDesign(%q) = %v, want %v", d.String(), back, d)
		}
		pk, err := cpu.ParseKind(k.String())
		if err != nil {
			t.Fatalf("cpu.ParseKind(%q): %v", k.String(), err)
		}
		if pk != k {
			t.Fatalf("cpu.ParseKind(%q) = %v, want %v", k.String(), pk, k)
		}
	}
	for _, k := range cpu.Kinds() {
		if _, ok := seen[k]; !ok {
			t.Fatalf("internal kind %v has no facade design", k)
		}
	}
	if _, err := ParseDesign("quantum"); err == nil {
		t.Fatal("unknown design name accepted")
	}
}

func TestDesignJSONRoundTrip(t *testing.T) {
	for _, d := range Designs() {
		b, err := json.Marshal(d)
		if err != nil {
			t.Fatalf("marshal %v: %v", d, err)
		}
		var back Design
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if back != d {
			t.Fatalf("JSON round trip of %v: got %v", d, back)
		}
	}
	var bad Design
	if err := json.Unmarshal([]byte(`"quantum"`), &bad); err == nil {
		t.Fatal("unknown design JSON accepted")
	}
}

func TestRunSelectsNewFrontends(t *testing.T) {
	// End-to-end: the facade runs both new designs and reports their
	// frontend-specific metrics.
	warp, err := Run(RunOptions{Workload: "sg", Threads: 4, Design: DesignWarp})
	if err != nil {
		t.Fatal(err)
	}
	if warp.Warp == nil || warp.Warp.WarpsFormed == 0 {
		t.Fatalf("warp report = %+v, want warp stats", warp.Warp)
	}
	if warp.MemCache != nil {
		t.Fatal("warp run carries memcache stats")
	}
	mcr, err := Run(RunOptions{Workload: "sg", Threads: 4, Design: DesignMemCache,
		Frontend: "split=0.25,cache=65536"})
	if err != nil {
		t.Fatal(err)
	}
	if mcr.MemCache == nil || mcr.MemCache.Hits+mcr.MemCache.Misses == 0 {
		t.Fatalf("memcache report = %+v, want cache demand", mcr.MemCache)
	}
	if mcr.Warp != nil {
		t.Fatal("memcache run carries warp stats")
	}
}

func TestRunRejectsBadFrontendTuning(t *testing.T) {
	if _, err := Run(RunOptions{Workload: "sg", Threads: 2, Design: DesignWarp,
		Frontend: "lanes=3"}); err == nil {
		t.Fatal("non-power-of-two lane count accepted")
	}
	if _, err := Run(RunOptions{Workload: "sg", Threads: 2,
		Frontend: "bogus=1"}); err == nil {
		t.Fatal("unknown tuning key accepted")
	}
}
