package mac3d_test

import (
	"fmt"

	"mac3d"
)

// ExampleRun demonstrates a single simulated execution of a built-in
// benchmark through the MAC pipeline.
func ExampleRun() {
	rep, err := mac3d.Run(mac3d.RunOptions{
		Workload: "stream", // STREAM triad: the coalescing ceiling
		Threads:  2,
		Seed:     1,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("design:", rep.Design)
	fmt.Println("raw requests:", rep.MemRequests)
	fmt.Println("coalesced more than half:", rep.CoalescingEfficiency > 0.5)
	// Output:
	// design: mac
	// raw requests: 12288
	// coalesced more than half: true
}

// ExampleCompare demonstrates the paper's with/without-MAC comparison.
func ExampleCompare() {
	rep, err := mac3d.Compare(mac3d.RunOptions{Workload: "stream", Threads: 2})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("raw path bandwidth efficiency: 33.3%:",
		rep.Without.BandwidthEfficiency > 0.333 && rep.Without.BandwidthEfficiency < 0.334)
	fmt.Println("MAC improves bandwidth:", rep.With.BandwidthEfficiency > rep.Without.BandwidthEfficiency)
	fmt.Println("MAC removes bank conflicts:", rep.BankConflictReduction > 0)
	// Output:
	// raw path bandwidth efficiency: 33.3%: true
	// MAC improves bandwidth: true
	// MAC removes bank conflicts: true
}

// ExampleTraceBuilder demonstrates driving the simulator with a custom
// access pattern instead of a built-in benchmark.
func ExampleTraceBuilder() {
	b, err := mac3d.NewTraceBuilder(1, 7)
	if err != nil {
		fmt.Println(err)
		return
	}
	base := b.Alloc(4096)
	for i := 0; i < 256; i++ {
		if err := b.Load(0, base+uint64(i)*16, 16); err != nil {
			fmt.Println(err)
			return
		}
	}
	rep, err := mac3d.RunTrace(mac3d.RunOptions{Workload: "sweep"}, b)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("events:", b.Events())
	fmt.Println("transactions under 256:", rep.Transactions < 256)
	// Output:
	// events: 256
	// transactions under 256: true
}
