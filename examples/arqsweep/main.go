// ARQ design study: the Figure 11 experiment as a library program.
// Sweeps the Aggregated Request Queue depth and shows the diminishing
// returns that justify the paper's 32-entry choice, over a workload
// mix the user can edit.
package main

import (
	"fmt"
	"log"

	"mac3d"
)

func main() {
	workloads := []string{"sg", "bfs", "mg", "is"}
	entries := []int{8, 16, 32, 64, 128}

	fmt.Println("coalescing efficiency (%) vs ARQ entries")
	fmt.Printf("%-10s", "workload")
	for _, e := range entries {
		fmt.Printf("%8d", e)
	}
	fmt.Println()

	avg := make([]float64, len(entries))
	for _, wl := range workloads {
		fmt.Printf("%-10s", wl)
		for i, e := range entries {
			rep, err := mac3d.Run(mac3d.RunOptions{
				Workload:   wl,
				Scale:      mac3d.ScaleTiny,
				ARQEntries: e,
			})
			if err != nil {
				log.Fatal(err)
			}
			eff := 100 * rep.CoalescingEfficiency
			avg[i] += eff / float64(len(workloads))
			fmt.Printf("%8.1f", eff)
		}
		fmt.Println()
	}
	fmt.Printf("%-10s", "average")
	for _, a := range avg {
		fmt.Printf("%8.1f", a)
	}
	fmt.Println()

	fmt.Println("\nPaper (Fig. 11): 37.6% at 8 entries rising to 56.0%, with the")
	fmt.Println("marginal gain collapsing past 32 entries — the evaluated default.")
}
