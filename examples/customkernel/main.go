// Custom kernel: drive the simulator with your own memory-access
// pattern through the public TraceBuilder API instead of the built-in
// benchmarks. This example models a hash-join probe phase: a
// sequential scan of the probe relation with random lookups into a
// hash table, a pattern common in in-memory databases.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mac3d"
)

func main() {
	const (
		threads   = 8
		probeRows = 1 << 13 // tuples per thread
		tableSize = 1 << 22 // 4MB hash table
	)

	b, err := mac3d.NewTraceBuilder(threads, 42)
	if err != nil {
		log.Fatal(err)
	}

	probe := b.Alloc(uint64(threads) * probeRows * 16) // 16B tuples
	table := b.Alloc(tableSize)
	out := b.Alloc(uint64(threads) * probeRows * 8)

	rng := rand.New(rand.NewSource(42))
	for tid := 0; tid < threads; tid++ {
		base := uint64(tid) * probeRows
		for i := uint64(0); i < probeRows; i++ {
			// Sequential scan of the probe tuple (16B).
			must(b.Load(tid, probe+(base+i)*16, 16))
			b.Work(tid, 2) // hash the key
			// Random probe into the hash table bucket (8B header).
			bucket := uint64(rng.Intn(tableSize/64)) * 64
			must(b.Load(tid, table+bucket, 8))
			b.Work(tid, 3) // compare keys
			// Sequential append of the match.
			must(b.Store(tid, out+(base+i)*8, 8))
			b.Work(tid, 1)
		}
	}

	rep, err := mac3d.CompareTrace(mac3d.RunOptions{Workload: "hashjoin"}, b)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("hash-join probe phase through MAC")
	fmt.Printf("  traced events           %d\n", b.Events())
	fmt.Printf("  coalescing efficiency   %.1f%%\n", 100*rep.CoalescingEfficiency)
	fmt.Printf("  avg targets per tx      %.2f\n", rep.With.AvgTargetsPerTx)
	fmt.Printf("  bandwidth efficiency    %.1f%% (raw: %.1f%%)\n",
		100*rep.With.BandwidthEfficiency, 100*rep.Without.BandwidthEfficiency)
	fmt.Printf("  memory system speedup   %.1f%%\n", 100*rep.MemorySpeedup)
	fmt.Println("\nThe sequential scan and output streams coalesce into 64-256B")
	fmt.Println("transactions while the random hash probes bypass as single FLITs —")
	fmt.Println("exactly the adaptive behaviour §4.2 designs for.")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
