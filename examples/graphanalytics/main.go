// Graph analytics: the workload class the paper's introduction
// motivates. Runs the three GAP kernels (BFS, PageRank, connected
// components) on R-MAT scale-free graphs under all three memory-path
// designs — MAC, the conventional 64B MSHR coalescer, and the raw
// FLIT path — and prints a side-by-side comparison.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"mac3d"
)

func main() {
	kernels := []string{"bfs", "pr", "cc"}
	designs := []mac3d.Design{mac3d.DesignMAC, mac3d.DesignMSHR, mac3d.DesignRaw}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "kernel\tdesign\ttransactions\tcoalesce%\tbandwidth%\tavg latency (cycles)\tbank conflicts")
	for _, k := range kernels {
		for _, d := range designs {
			rep, err := mac3d.Run(mac3d.RunOptions{
				Workload: k,
				Design:   d,
				Scale:    mac3d.ScaleTiny,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(w, "%s\t%s\t%d\t%.1f\t%.1f\t%.0f\t%d\n",
				k, rep.Design, rep.Transactions,
				100*rep.CoalescingEfficiency, 100*rep.BandwidthEfficiency,
				rep.AvgLatencyCycles, rep.BankConflicts)
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nThe MAC sits between the fixed-size MSHR design and the raw path:")
	fmt.Println("it adapts transaction sizes (64-256B) to the requested FLITs, so it")
	fmt.Println("keeps the MSHR's transaction reduction while beating its bandwidth")
	fmt.Println("efficiency — the §2.3.2 argument, measured.")
}
