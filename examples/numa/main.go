// NUMA scaling: the paper's §3 architecture sketches a multi-node
// system where each node pairs a cache-less processor with its own
// 3D-stacked device, and remote memory is reached through the owning
// node's MAC. This example runs PageRank across 1, 2 and 4 nodes and
// shows how the request router splits traffic between the Local and
// Global access queues, and what the interconnect hop costs.
package main

import (
	"fmt"
	"log"
)

import "mac3d"

func main() {
	fmt.Println("PageRank on the multi-node MAC architecture")
	fmt.Printf("%-6s %-8s %-8s %-10s %-12s %s\n",
		"nodes", "remote%", "coalesce%", "latency(ns)", "conflicts", "per-node tx")
	for _, nodes := range []int{1, 2, 4} {
		rep, err := mac3d.RunNUMA(mac3d.NUMAOptions{
			Workload:      "pr",
			Threads:       8,
			Nodes:         nodes,
			CoresPerNode:  8,
			LinkLatencyNs: 100,
		})
		if err != nil {
			log.Fatal(err)
		}
		var conflicts, tx uint64
		var eff float64
		for _, n := range rep.PerNode {
			conflicts += n.BankConflicts
			tx += n.Transactions
			eff += n.CoalescingEfficiency / float64(len(rep.PerNode))
		}
		fmt.Printf("%-6d %-8.1f %-8.1f %-10.1f %-12d %d\n",
			nodes, 100*rep.RemoteFraction, 100*eff, rep.AvgLatencyNs, conflicts, tx)
	}
	fmt.Println("\nWith row-granularity interleaving, (N-1)/N of requests cross the")
	fmt.Println("interconnect. Each node's MAC coalesces its local and remote queues")
	fmt.Println("identically, but splitting every thread's stream across N devices")
	fmt.Println("dilutes per-row request density, so per-node coalescing efficiency")
	fmt.Println("falls with node count — a real cost of fine-grained interleaving")
	fmt.Println("that coarser blocks (try InterleaveBytes: 1<<20) largely recover.")

	fmt.Println("\nInterconnect topology at 8 nodes (options.NoC):")
	fmt.Printf("%-9s %-8s %-10s %-12s %-10s %s\n",
		"topology", "hops", "net lat", "latency(ns)", "cycles", "links")
	for _, topo := range []string{"ideal", "ring", "mesh"} {
		rep, err := mac3d.RunNUMA(mac3d.NUMAOptions{
			Workload: "pr", Threads: 8, Nodes: 8, CoresPerNode: 1,
			NoC: &mac3d.NoCOptions{Topology: topo, LinkLatencyNs: 25},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s %-8.2f %-10.1f %-12.1f %-10d %d\n",
			topo, rep.NoC.AvgHops, rep.NoC.AvgNetLatencyCycles,
			rep.AvgLatencyNs, rep.Cycles, rep.NoC.Links)
	}
	fmt.Println("\nThe ideal crossbar charges every message one flat latency; ring and")
	fmt.Println("mesh pay per hop and serialize messages into 16-byte flits over")
	fmt.Println("credit-flow-controlled links, so distance and contention both show.")
}
