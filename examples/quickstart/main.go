// Quickstart: run the paper's headline experiment on one benchmark —
// the Scatter/Gather kernel with and without the Memory Access
// Coalescer — and print the key metrics (coalescing efficiency,
// bandwidth efficiency, memory-system speedup).
package main

import (
	"fmt"
	"log"

	"mac3d"
)

func main() {
	rep, err := mac3d.Compare(mac3d.RunOptions{
		Workload: "sg",            // A[i] = B[C[i]] with random indices
		Threads:  8,               // Table 1: 8 cores, one thread each
		Scale:    mac3d.ScaleTiny, // milliseconds; use ScaleSmall for real runs
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Scatter/Gather through the MAC pipeline")
	fmt.Printf("  raw requests            %d\n", rep.Without.MemRequests)
	fmt.Printf("  HMC transactions (MAC)  %d\n", rep.With.Transactions)
	fmt.Printf("  coalescing efficiency   %.1f%%   (paper avg: 52.9%%)\n", 100*rep.CoalescingEfficiency)
	fmt.Printf("  bandwidth efficiency    %.1f%% vs %.1f%% raw (paper: 70.4%% vs 33.3%%)\n",
		100*rep.With.BandwidthEfficiency, 100*rep.Without.BandwidthEfficiency)
	fmt.Printf("  bank conflicts removed  %d\n", rep.BankConflictReduction)
	fmt.Printf("  memory system speedup   %.1f%%   (paper avg: 60.7%%)\n", 100*rep.MemorySpeedup)
}
