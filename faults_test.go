package mac3d

import (
	"reflect"
	"testing"
)

// TestZeroFaultOptionsAreStrictNoop: a report produced with an
// explicit all-zero FaultOptions must be byte-identical to the
// default-options report — the fault machinery must not perturb a
// healthy simulation in any way.
func TestZeroFaultOptionsAreStrictNoop(t *testing.T) {
	base, err := Run(RunOptions{Workload: "sg"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(RunOptions{Workload: "sg", Faults: FaultOptions{}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, got) {
		t.Fatalf("zero FaultOptions changed the report:\nbase: %+v\ngot:  %+v", base, got)
	}
	if got.Faults != (FaultReport{}) {
		t.Fatalf("fault counters nonzero without injection: %+v", got.Faults)
	}
}

// TestFaultInjectionCompareCompletes: a full with/without-MAC
// comparison under CRC injection completes, counts retries, and
// replays identically for a fixed seed.
func TestFaultInjectionCompareCompletes(t *testing.T) {
	opts := RunOptions{
		Workload: "sg",
		Faults:   FaultOptions{CRCErrorRate: 0.02, Seed: 11},
	}
	a, err := Compare(opts)
	if err != nil {
		t.Fatalf("Compare under fault injection: %v", err)
	}
	if a.With.Faults.CRCErrors == 0 && a.Without.Faults.CRCErrors == 0 {
		t.Fatal("no CRC errors injected in either run")
	}
	if a.With.Faults.LinkRetries == 0 && a.Without.Faults.LinkRetries == 0 {
		t.Fatal("no link retries recorded")
	}
	b, err := Compare(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("fault injection with a fixed seed is not deterministic")
	}
}

// TestFaultRetryExhaustionSurfacesFailures: certain CRC failure
// poisons every transaction; the run completes and reports failed
// requests rather than hanging or panicking.
func TestFaultRetryExhaustionSurfacesFailures(t *testing.T) {
	rep, err := Run(RunOptions{
		Workload: "sg",
		Faults:   FaultOptions{CRCErrorRate: 1, RetryLimit: 1},
	})
	if err != nil {
		t.Fatalf("run under certain CRC failure: %v", err)
	}
	if rep.Faults.PoisonedResponses == 0 || rep.Faults.FailedRequests == 0 {
		t.Fatalf("failures not surfaced: %+v", rep.Faults)
	}
	if rep.Faults.FailedRequests != rep.MemRequests {
		t.Fatalf("FailedRequests = %d, want all %d", rep.Faults.FailedRequests, rep.MemRequests)
	}
}

// TestWatchdogOptionSurfacesStall: the façade's WatchdogCycles knob
// converts a deliberately starved run into a prompt diagnostic error.
func TestWatchdogOptionSurfacesStall(t *testing.T) {
	_, err := Run(RunOptions{
		Workload:       "sg",
		Faults:         FaultOptions{DropResponseEvery: 1},
		WatchdogCycles: 2_000,
	})
	if err == nil {
		t.Fatal("starved run completed")
	}
}

// TestFaultOptionsValidated: out-of-range fault rates surface as
// configuration errors, not panics.
func TestFaultOptionsValidated(t *testing.T) {
	for _, opts := range []RunOptions{
		{Workload: "sg", Faults: FaultOptions{CRCErrorRate: 1.5}},
		{Workload: "sg", Faults: FaultOptions{LinkFailRate: -0.2}},
		{Workload: "sg", Faults: FaultOptions{RetryLimit: -1}},
		{Workload: "sg", Faults: FaultOptions{LinkTokens: -4}},
	} {
		if _, err := Run(opts); err == nil {
			t.Fatalf("invalid %+v accepted", opts.Faults)
		}
	}
}
