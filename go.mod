module mac3d

go 1.22
