package mac3d

// Integration tests across the whole stack: workload generation ->
// node model -> router -> coalescer -> device -> response routing.
// These assert cross-module invariants that no single package can
// check alone.

import (
	"bytes"
	"testing"
	"testing/quick"

	"mac3d/internal/cpu"
	"mac3d/internal/trace"
	"mac3d/internal/workloads"
)

// TestEveryWorkloadEveryDesignDrains runs the full 12-benchmark suite
// through all three memory-path designs and asserts the core
// conservation law: every issued request retires exactly once.
func TestEveryWorkloadEveryDesignDrains(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix is slow")
	}
	for _, name := range PaperWorkloads() {
		for _, design := range []Design{DesignMAC, DesignRaw, DesignMSHR} {
			name, design := name, design
			t.Run(name+"/"+design.String(), func(t *testing.T) {
				t.Parallel()
				rep, err := Run(RunOptions{Workload: name, Design: design, Threads: 4})
				if err != nil {
					t.Fatal(err)
				}
				if rep.MemRequests == 0 {
					t.Fatal("no memory requests")
				}
				// Transactions can't exceed requests (coalescers
				// never split requests).
				if rep.Transactions > rep.MemRequests {
					t.Fatalf("%d transactions for %d requests",
						rep.Transactions, rep.MemRequests)
				}
				if rep.BandwidthEfficiency <= 0.3 || rep.BandwidthEfficiency > 0.95 {
					t.Fatalf("bandwidth efficiency %v out of plausible range",
						rep.BandwidthEfficiency)
				}
			})
		}
	}
}

// TestMACParetoImprovement asserts the paper's central claim across
// the whole benchmark suite: versus the raw path, MAC reduces
// transactions, control traffic, bank conflicts and mean latency.
func TestMACParetoImprovement(t *testing.T) {
	for _, name := range PaperWorkloads() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			rep, err := Compare(RunOptions{Workload: name})
			if err != nil {
				t.Fatal(err)
			}
			if rep.With.Transactions >= rep.Without.Transactions {
				t.Fatalf("transactions: %d !< %d",
					rep.With.Transactions, rep.Without.Transactions)
			}
			if rep.BandwidthSavingBytes <= 0 {
				t.Fatalf("control saving %d", rep.BandwidthSavingBytes)
			}
			if rep.BankConflictReduction <= 0 {
				t.Fatalf("conflict reduction %d", rep.BankConflictReduction)
			}
			if rep.With.BandwidthEfficiency <= rep.Without.BandwidthEfficiency {
				t.Fatal("bandwidth efficiency did not improve")
			}
		})
	}
}

// TestDataConservationProperty drives random raw request streams
// through the full timed pipeline and checks that the device's data
// traffic always covers the requested bytes (coalescing may fetch
// more, never less) and that all requests retire.
func TestDataConservationProperty(t *testing.T) {
	f := func(seed uint64, pattern uint8) bool {
		tr := trace.NewTrace(4)
		x := seed
		next := func() uint64 {
			x = x*6364136223846793005 + 1442695040888963407
			return x
		}
		var requested uint64
		const n = 200
		for i := 0; i < n; i++ {
			th := uint16(next() % 4)
			var a uint64
			switch pattern % 3 {
			case 0: // sequential per thread
				a = uint64(th)<<20 + uint64(i)*8
			case 1: // random within 1MB
				a = next() % (1 << 20)
			default: // strided
				a = uint64(th)<<20 + uint64(i)*192
			}
			op := trace.Load
			if next()%4 == 0 {
				op = trace.Store
			}
			tr.Append(trace.Event{Addr: a, Thread: th, Op: op, Size: 8, Gap: uint8(next() % 4)})
			requested += 8
		}
		res, err := cpu.Run(cpu.DefaultRunConfig(), tr)
		if err != nil {
			return false
		}
		if res.RequestLatency.Count() != n {
			return false
		}
		// The device moved at least the requested bytes.
		return res.Device.DataBytes >= requested
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestThreadCountInvariance: the same workload at different thread
// counts performs the same total work through the pipeline.
func TestThreadCountInvariance(t *testing.T) {
	var refs [3]uint64
	for i, threads := range []int{2, 4, 8} {
		rep, err := Run(RunOptions{Workload: "hpcg", Threads: threads})
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = rep.MemRequests
	}
	for i := 1; i < len(refs); i++ {
		ratio := float64(refs[i]) / float64(refs[0])
		if ratio < 0.95 || ratio > 1.05 {
			t.Fatalf("work volume varies with threads: %v", refs)
		}
	}
}

// TestTraceFileRoundTripThroughPipeline: a trace written to the binary
// format and read back produces identical simulation results.
func TestTraceFileRoundTripThroughPipeline(t *testing.T) {
	orig, err := workloads.Generate("sg", workloads.Config{Threads: 4, Seed: 9, Scale: workloads.Tiny})
	if err != nil {
		t.Fatal(err)
	}
	resA, err := cpu.Run(cpu.DefaultRunConfig(), orig)
	if err != nil {
		t.Fatal(err)
	}

	var roundTripped *trace.Trace
	{
		var buf bytes.Buffer
		w := trace.NewWriter(&buf)
		if err := w.WriteTrace(orig); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		roundTripped, err = trace.NewReader(&buf).ReadTrace()
		if err != nil {
			t.Fatal(err)
		}
	}
	resB, err := cpu.Run(cpu.DefaultRunConfig(), roundTripped)
	if err != nil {
		t.Fatal(err)
	}
	if resA.Cycles != resB.Cycles ||
		resA.Device.BankConflicts != resB.Device.BankConflicts ||
		resA.Coalescer.Transactions != resB.Coalescer.Transactions {
		t.Fatal("round-tripped trace simulates differently")
	}
}

// TestBandwidthEfficiencyIdentity cross-checks the device's measured
// efficiency against Eq. 1 applied to its own size histogram — two
// independent code paths that must agree.
func TestBandwidthEfficiencyIdentity(t *testing.T) {
	rep, err := Run(RunOptions{Workload: "mg", Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	var data, control uint64
	for size, count := range rep.TxBySize {
		data += uint64(size) * count
		control += 32 * count
	}
	if data != rep.DataBytes || control != rep.ControlBytes {
		t.Fatalf("traffic accounting mismatch: %d/%d vs %d/%d",
			data, control, rep.DataBytes, rep.ControlBytes)
	}
}
