// Package addr implements the physical address layout used by the MAC
// design (paper §4.1, Figure 5) and the HMC-side vault/bank mapping.
//
// The coalescer views a 52-bit physical address as:
//
//	bits  0–3   FLIT offset (byte within one 16B FLIT; ignored by MAC)
//	bits  4–7   FLIT id (which of the 16 FLITs inside a 256B row)
//	bits  8–51  row number (DRAM + bank + vault bits combined)
//
// The aggregator compares extended row tags that append a T (type) bit
// at bit position 52 — the bit directly above the highest physical
// address bit — so that loads and stores to the same row land in
// different ARQ entries with a single comparison. For multi-node (NUMA)
// systems, the topmost row-number bits select the owning node.
package addr

// Layout constants for the 256B-row HMC configuration the paper targets.
const (
	// FlitBytes is the size of one HMC FLow-control unIT.
	FlitBytes = 16
	// RowBytes is the DRAM row (and maximum request) size.
	RowBytes = 256
	// FlitsPerRow is the number of FLITs in one row.
	FlitsPerRow = RowBytes / FlitBytes // 16

	// FlitShift is the number of FLIT-offset bits (bits 0–3).
	FlitShift = 4
	// RowShift is the number of row-offset bits (bits 0–7).
	RowShift = 8
	// PhysBits is the number of physical address bits (bits 0–51).
	PhysBits = 52
	// TBit is the bit position of the type (load/store) tag bit that
	// extends the row number inside the ARQ.
	TBit = PhysBits

	// RowMask isolates the row-offset bits of an address.
	RowMask = RowBytes - 1
	// FlitMask isolates the FLIT-offset bits of an address.
	FlitMask = FlitBytes - 1
)

// PhysMask isolates the architectural physical address bits.
const PhysMask = (uint64(1) << PhysBits) - 1

// RowNumber returns the row number of a physical address: everything
// above the 8 row-offset bits, within the 52 architectural bits.
func RowNumber(a uint64) uint64 { return (a & PhysMask) >> RowShift }

// RowBase returns the address of the first byte of the row containing a.
func RowBase(a uint64) uint64 { return a & PhysMask &^ uint64(RowMask) }

// RowOffset returns the byte offset of a within its row (0–255).
func RowOffset(a uint64) uint32 { return uint32(a & RowMask) }

// FlitID returns which FLIT of its row the address a falls in (0–15).
func FlitID(a uint64) uint8 { return uint8((a >> FlitShift) & (FlitsPerRow - 1)) }

// FlitOffset returns the byte offset of a within its FLIT (0–15).
func FlitOffset(a uint64) uint8 { return uint8(a & FlitMask) }

// Tag builds the extended comparator tag for the ARQ: the row number
// with the T bit (1 for stores) placed just above the physical bits.
// A single equality comparison of two tags therefore checks both
// "same row" and "same request type" (paper §4.1.2).
func Tag(a uint64, store bool) uint64 {
	t := RowNumber(a)
	if store {
		t |= 1 << (TBit - RowShift)
	}
	return t
}

// TagIsStore reports whether the tag carries the store T bit.
func TagIsStore(tag uint64) bool { return tag>>(TBit-RowShift)&1 == 1 }

// TagRow returns the row number carried by an extended tag.
func TagRow(tag uint64) uint64 { return tag &^ (1 << (TBit - RowShift)) }

// FlitSpan returns the ids of the first and last FLIT touched by an
// access of size bytes starting at address a, clipped to the row
// containing a. size 0 is treated as 1 byte.
func FlitSpan(a uint64, size uint32) (first, last uint8) {
	if size == 0 {
		size = 1
	}
	first = FlitID(a)
	end := (a & RowMask) + uint64(size) - 1
	if end > RowMask {
		end = RowMask
	}
	last = uint8(end >> FlitShift)
	return first, last
}

// Mapping describes how row numbers spread across the HMC device's
// vaults and banks. The paper's device (Table 1: 8GB cube, 256B rows,
// 512 total banks) interleaves consecutive rows across vaults first —
// the HMC specification's low-interleave ordering — then across banks
// within the vault.
type Mapping struct {
	Vaults        int // number of vaults (HMC: 32)
	BanksPerVault int // banks per vault   (HMC: 16)
}

// DefaultMapping is the 8GB HMC organization used in the evaluation:
// 32 vaults × 16 banks = 512 banks.
var DefaultMapping = Mapping{Vaults: 32, BanksPerVault: 16}

// Vault returns the vault index owning the given row number.
func (m Mapping) Vault(row uint64) int {
	return int(row % uint64(m.Vaults))
}

// Bank returns the bank index, within its vault, owning the row.
func (m Mapping) Bank(row uint64) int {
	return int(row / uint64(m.Vaults) % uint64(m.BanksPerVault))
}

// FlatBank returns a device-global bank index in [0, Vaults*BanksPerVault).
func (m Mapping) FlatBank(row uint64) int {
	return m.Vault(row)*m.BanksPerVault + m.Bank(row)
}

// NodeOf returns the node index owning address a when the address space
// is block-interleaved across nodes with the given block size in bytes.
// nodes must be a power of two for the fast path; any positive count is
// accepted.
func NodeOf(a uint64, nodes int, blockBytes uint64) int {
	if nodes <= 1 {
		return 0
	}
	if blockBytes == 0 {
		blockBytes = RowBytes
	}
	return int((a & PhysMask) / blockBytes % uint64(nodes))
}
