package addr

import (
	"testing"
	"testing/quick"
)

func TestLayoutConstantsConsistent(t *testing.T) {
	if FlitsPerRow != 16 {
		t.Fatalf("FlitsPerRow = %d, want 16", FlitsPerRow)
	}
	if RowBytes != 256 || FlitBytes != 16 {
		t.Fatalf("RowBytes=%d FlitBytes=%d", RowBytes, FlitBytes)
	}
	if 1<<RowShift != RowBytes || 1<<FlitShift != FlitBytes {
		t.Fatal("shift constants disagree with byte sizes")
	}
}

func TestFieldExtractionWorkedExample(t *testing.T) {
	// Figure 6 example: FLIT number 5 of some row => byte offset 80.
	a := uint64(0x1234)<<RowShift | 5*FlitBytes | 3
	if got := RowNumber(a); got != 0x1234 {
		t.Fatalf("RowNumber = %#x, want 0x1234", got)
	}
	if got := FlitID(a); got != 5 {
		t.Fatalf("FlitID = %d, want 5", got)
	}
	if got := FlitOffset(a); got != 3 {
		t.Fatalf("FlitOffset = %d, want 3", got)
	}
	if got := RowOffset(a); got != 5*FlitBytes+3 {
		t.Fatalf("RowOffset = %d, want %d", got, 5*FlitBytes+3)
	}
	if got := RowBase(a); got != uint64(0x1234)<<RowShift {
		t.Fatalf("RowBase = %#x", got)
	}
}

func TestAddressDecomposition(t *testing.T) {
	// Property: every address is exactly rebuilt from its fields.
	f := func(a uint64) bool {
		a &= PhysMask
		rebuilt := RowNumber(a)<<RowShift | uint64(FlitID(a))<<FlitShift | uint64(FlitOffset(a))
		return rebuilt == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBitsAbovePhysIgnored(t *testing.T) {
	a := uint64(0xABCD_1234_5678)
	high := a | 0xF<<PhysBits
	if RowNumber(a) != RowNumber(high) || FlitID(a) != FlitID(high) {
		t.Fatal("bits above PhysBits must not affect decoding")
	}
}

func TestTagEncodesTypeAndRow(t *testing.T) {
	a := uint64(0x42) << RowShift
	lt, st := Tag(a, false), Tag(a, true)
	if lt == st {
		t.Fatal("load and store tags must differ")
	}
	if TagIsStore(lt) || !TagIsStore(st) {
		t.Fatal("T bit decoding wrong")
	}
	if TagRow(lt) != 0x42 || TagRow(st) != 0x42 {
		t.Fatalf("TagRow: load %#x store %#x, want 0x42", TagRow(lt), TagRow(st))
	}
}

func TestTagSingleComparisonProperty(t *testing.T) {
	// Property (§4.1.2): tags are equal iff same row AND same type.
	f := func(a, b uint64, sa, sb bool) bool {
		ta, tb := Tag(a, sa), Tag(b, sb)
		same := RowNumber(a) == RowNumber(b) && sa == sb
		return (ta == tb) == same
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFlitSpanSingleWord(t *testing.T) {
	first, last := FlitSpan(0x100+32, 8) // 8B access in FLIT 2
	if first != 2 || last != 2 {
		t.Fatalf("span = [%d,%d], want [2,2]", first, last)
	}
}

func TestFlitSpanCrossingFlits(t *testing.T) {
	// A 16B access starting mid-FLIT touches two FLITs.
	first, last := FlitSpan(8, 16)
	if first != 0 || last != 1 {
		t.Fatalf("span = [%d,%d], want [0,1]", first, last)
	}
}

func TestFlitSpanClippedToRow(t *testing.T) {
	// An access near the end of a row never reports a FLIT beyond 15.
	first, last := FlitSpan(RowBytes-8, 16)
	if first != 15 || last != 15 {
		t.Fatalf("span = [%d,%d], want [15,15]", first, last)
	}
}

func TestFlitSpanZeroSize(t *testing.T) {
	first, last := FlitSpan(33, 0)
	if first != last || first != 2 {
		t.Fatalf("span = [%d,%d], want [2,2]", first, last)
	}
}

func TestFlitSpanProperty(t *testing.T) {
	f := func(a uint64, size uint16) bool {
		s := uint32(size%16) + 1
		first, last := FlitSpan(a, s)
		return first <= last && last < FlitsPerRow
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultMappingShape(t *testing.T) {
	m := DefaultMapping
	if m.Vaults*m.BanksPerVault != 512 {
		t.Fatalf("default mapping has %d banks, want 512 (8GB HMC)", m.Vaults*m.BanksPerVault)
	}
}

func TestMappingInterleavesConsecutiveRowsAcrossVaults(t *testing.T) {
	m := DefaultMapping
	seen := make(map[int]bool)
	for row := uint64(0); row < uint64(m.Vaults); row++ {
		v := m.Vault(row)
		if seen[v] {
			t.Fatalf("vault %d reused within one stride", v)
		}
		seen[v] = true
	}
}

func TestMappingRanges(t *testing.T) {
	m := Mapping{Vaults: 8, BanksPerVault: 4}
	f := func(row uint64) bool {
		v, b := m.Vault(row), m.Bank(row)
		fb := m.FlatBank(row)
		return v >= 0 && v < 8 && b >= 0 && b < 4 && fb == v*4+b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMappingSameRowSameBank(t *testing.T) {
	m := DefaultMapping
	// All 16 FLIT addresses of one row map to the same bank.
	base := uint64(0x7777) << RowShift
	want := m.FlatBank(RowNumber(base))
	for off := uint64(0); off < RowBytes; off += FlitBytes {
		if got := m.FlatBank(RowNumber(base + off)); got != want {
			t.Fatalf("offset %d mapped to bank %d, want %d", off, got, want)
		}
	}
}

func TestNodeOf(t *testing.T) {
	if NodeOf(0x12345, 1, 256) != 0 {
		t.Fatal("single node must own everything")
	}
	// 4-node interleave at 256B: block k belongs to node k%4.
	for k := uint64(0); k < 16; k++ {
		want := int(k % 4)
		if got := NodeOf(k*256+17, 4, 256); got != want {
			t.Fatalf("block %d: node %d, want %d", k, got, want)
		}
	}
}

func TestNodeOfDefaultsBlockSize(t *testing.T) {
	if got := NodeOf(256, 2, 0); got != 1 {
		t.Fatalf("NodeOf with default block = %d, want 1", got)
	}
}
