package addr

// Scratchpad memory (SPM) address conventions.
//
// The node architecture (paper §3) gives every core a directly
// addressable 1MB scratchpad instead of a data cache. We carve the SPM
// windows out of the top of the 52-bit physical space: accesses there
// are serviced locally in ~1ns and never reach the MAC or the HMC.
const (
	// SPMBase is the first SPM address.
	SPMBase = uint64(1) << 48
	// SPMWindowBytes is the per-core scratchpad size (Table 1: 1MB).
	SPMWindowBytes = uint64(1) << 20
)

// IsSPM reports whether address a falls in any scratchpad window.
func IsSPM(a uint64) bool { return a&PhysMask >= SPMBase }

// SPMOwner returns the core index owning SPM address a. The result is
// meaningless when IsSPM(a) is false.
func SPMOwner(a uint64) int { return int((a&PhysMask - SPMBase) / SPMWindowBytes) }

// SPMWindow returns the base address of core's scratchpad window.
func SPMWindow(core int) uint64 { return SPMBase + uint64(core)*SPMWindowBytes }
