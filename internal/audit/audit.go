// Package audit implements the end-to-end request-lifecycle auditor:
// a ledger that registers every raw memory request at issue time and
// follows it through the request router, the coalescer, the HMC
// submission and the response match, asserting conservation invariants
// that the simulator's correctness contract promises (paper §3.3:
// every FLIT a thread requests is delivered back to that thread by the
// response router).
//
// The invariants machine-checked per request:
//
//   - exactly one terminal outcome — delivered, failed (poisoned with
//     the retry budget exhausted), or explicitly re-issued and then
//     terminal — and nothing left in flight at end of run;
//   - no duplicate delivery: a request whose LSQ slot already retired
//     must never retire again;
//   - byte conservation: the FLIT-aligned span a request asked for is
//     fully covered by the transactions delivered for it (including
//     both halves of a window-split request);
//   - no tag reuse while a (thread, tag) pair is still in flight.
//
// The ledger is driver-facing: the node model calls one hook per
// lifecycle edge. A nil *Ledger disables everything — every method is
// nil-safe, so the audit-off hot path pays only pointer checks,
// mirroring the internal/obs design.
package audit

import (
	"fmt"
	"sort"
	"strings"

	"mac3d/internal/addr"
	"mac3d/internal/memreq"
	"mac3d/internal/sim"
)

// State locates a live request within the memory pipeline — the
// "holder" a stall diagnostic names when the watchdog fires.
type State uint8

const (
	// StateRouted: accepted by the request router, waiting to drain
	// into the coalescer.
	StateRouted State = iota
	// StateCoalescing: inside the coalescer (ARQ entry or builder
	// pipeline), not yet part of a submitted transaction.
	StateCoalescing
	// StateInflight: carried by a submitted device transaction,
	// awaiting its response.
	StateInflight
	// StateAwaitRetry: its transaction came back poisoned and the
	// requester scheduled a re-issue (bounded cycle backoff).
	StateAwaitRetry
)

// String names the component holding a request in this state.
func (s State) String() string {
	switch s {
	case StateRouted:
		return "request-router"
	case StateCoalescing:
		return "coalescer"
	case StateInflight:
		return "device/response-path"
	case StateAwaitRetry:
		return "retry-backoff"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Violation is one broken invariant, tied to the request that broke it.
type Violation struct {
	// Reason is the invariant class: "tag-reuse", "duplicate-delivery",
	// "unknown-delivery", "unknown-drain", "unknown-bind",
	// "under-delivered", "no-terminal-outcome".
	Reason string
	// ID is the ledger's unique request id (issue order, from 1).
	ID uint64
	// Thread and Tag identify the raw request.
	Thread, Tag uint16
	// Addr is the request's physical address (0 when unknown).
	Addr uint64
	// Cycle is when the violation was detected.
	Cycle sim.Cycle
	// Detail is the human-readable per-request diagnostic.
	Detail string
}

// String renders the violation as one diagnostic line.
func (v Violation) String() string {
	return fmt.Sprintf("%s: req#%d thread=%d tag=%d addr=0x%x cycle=%d: %s",
		v.Reason, v.ID, v.Thread, v.Tag, v.Addr, v.Cycle, v.Detail)
}

// key identifies an in-flight raw request. Per-thread tags are unique
// among in-flight requests (the LSQ recycles a tag only after retire).
type key struct {
	thread, tag uint16
}

// entry is the ledger's record of one live request.
type entry struct {
	id     uint64
	addr   uint64
	size   uint8
	state  State
	issued sim.Cycle // first issue cycle (survives retries)
	moved  sim.Cycle // cycle of the last state transition
	// requested/credited track byte conservation over the request's
	// FLIT-aligned span; a window-split request is credited by both
	// halves' transactions.
	requested uint32
	credited  uint32
	// headDone marks the head target retired (terminal reached);
	// the entry lingers only while continuation bytes are pending.
	headDone bool
	// lossy waives byte conservation: the continuation half's
	// transaction was poisoned, so part of the data is legitimately
	// lost (degraded completion, not an invariant break).
	lossy   bool
	retries int
	// deviceTag is the device tag of the last transaction carrying
	// this request.
	deviceTag uint64
}

// tombstone remembers a recently retired request so a late duplicate
// delivery gets a precise diagnostic instead of "unknown".
type tombstone struct {
	id      uint64
	retired sim.Cycle
}

// tombstoneCap bounds the retired-request memory.
const tombstoneCap = 1024

// maxViolations bounds the per-run violation list; beyond it only the
// count grows.
const maxViolations = 64

// Ledger is the request-lifecycle auditor for one run. Not safe for
// concurrent use; one ledger belongs to exactly one node/run.
type Ledger struct {
	active map[key]*entry
	nextID uint64

	tombs     map[key]tombstone
	tombOrder []key

	violations []Violation
	dropped    uint64 // violations beyond maxViolations

	// Aggregate counters.
	issued       uint64
	delivered    uint64
	failed       uint64
	reissued     uint64
	forgiven     uint64
	strayCredits uint64
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{
		active: make(map[key]*entry),
		tombs:  make(map[key]tombstone),
	}
}

// Enabled reports whether auditing is on (the ledger is non-nil).
func (l *Ledger) Enabled() bool { return l != nil }

// violate records one invariant violation, bounding the list.
func (l *Ledger) violate(v Violation) {
	if len(l.violations) >= maxViolations {
		l.dropped++
		return
	}
	l.violations = append(l.violations, v)
}

// flitSpan returns the FLIT-aligned byte span of [a, a+size).
func flitSpan(a uint64, size uint8) (base uint64, span uint32) {
	if size == 0 {
		size = 1
	}
	base = a &^ uint64(addr.FlitMask)
	span = uint32(a-base) + uint32(size)
	if rem := span % addr.FlitBytes; rem != 0 {
		span += addr.FlitBytes - rem
	}
	return base, span
}

// Issue registers a raw request accepted by the request router at
// cycle now. Fences are control operations with no response and are
// not tracked.
func (l *Ledger) Issue(r memreq.RawRequest, now sim.Cycle) {
	if l == nil || r.Fence {
		return
	}
	k := key{r.Thread, r.Tag}
	delete(l.tombs, k) // the tag is legitimately recycled
	if old, ok := l.active[k]; ok {
		l.violate(Violation{
			Reason: "tag-reuse", ID: old.id, Thread: r.Thread, Tag: r.Tag,
			Addr: r.Addr, Cycle: now,
			Detail: fmt.Sprintf("re-issued while req#%d (addr 0x%x, state %s) is still in flight",
				old.id, old.addr, old.state),
		})
		return
	}
	l.nextID++
	l.issued++
	_, span := flitSpan(r.Addr, r.Size)
	l.active[k] = &entry{
		id:        l.nextID,
		addr:      r.Addr,
		size:      r.Size,
		state:     StateRouted,
		issued:    now,
		moved:     now,
		requested: span,
	}
}

// Drain marks a request leaving the request router for the coalescer.
func (l *Ledger) Drain(r memreq.RawRequest, now sim.Cycle) {
	if l == nil || r.Fence {
		return
	}
	e, ok := l.active[key{r.Thread, r.Tag}]
	if !ok {
		l.violate(Violation{
			Reason: "unknown-drain", Thread: r.Thread, Tag: r.Tag,
			Addr: r.Addr, Cycle: now,
			Detail: "request entered the coalescer without being issued",
		})
		return
	}
	e.state = StateCoalescing
	e.moved = now
}

// Bind marks a request carried by a transaction submitted to the
// device under deviceTag. A window-split request binds twice (head and
// continuation ride different transactions); coalescers that merge
// late (MSHR-style) may deliver targets that were never bound, which
// is legal — Bind refines the holder diagnostics, Credit/Retire carry
// the invariants.
func (l *Ledger) Bind(t memreq.Target, deviceTag uint64, now sim.Cycle) {
	if l == nil {
		return
	}
	e, ok := l.active[key{t.Thread, t.Tag}]
	if !ok {
		l.violate(Violation{
			Reason: "unknown-bind", Thread: t.Thread, Tag: t.Tag, Cycle: now,
			Detail: fmt.Sprintf("submitted under device tag %d without being issued", deviceTag),
		})
		return
	}
	e.state = StateInflight
	e.moved = now
	e.deviceTag = deviceTag
}

// Credit records delivered bytes for a request: the overlap of the
// delivered transaction's range with the request's FLIT-aligned span.
// Called for every delivered (non-poisoned) target, head and
// continuation halves alike.
func (l *Ledger) Credit(t memreq.Target, txAddr uint64, txBytes uint32, now sim.Cycle) {
	if l == nil {
		return
	}
	k := key{t.Thread, t.Tag}
	e, ok := l.active[k]
	if !ok {
		// A continuation landing after its head fully retired the
		// entry (or a stale pre-retry half): counted, not a violation.
		l.strayCredits++
		return
	}
	base, span := flitSpan(e.addr, e.size)
	lo := max64(base, txAddr)
	hi := min64(base+uint64(span), txAddr+uint64(txBytes))
	if hi > lo {
		e.credited += uint32(hi - lo)
	}
	if e.headDone && e.credited >= e.requested {
		l.retire(k, e, now)
	}
}

// Retire marks a head target's normal completion — the request's one
// terminal outcome. A second Retire (or a Retire after Fail) for the
// same in-flight request is the double-delivery invariant breaking.
func (l *Ledger) Retire(t memreq.Target, now sim.Cycle) {
	if l == nil {
		return
	}
	k := key{t.Thread, t.Tag}
	e, ok := l.active[k]
	if !ok {
		if ts, dup := l.tombs[k]; dup {
			l.violate(Violation{
				Reason: "duplicate-delivery", ID: ts.id, Thread: t.Thread, Tag: t.Tag, Cycle: now,
				Detail: fmt.Sprintf("delivered again after retiring at cycle %d", ts.retired),
			})
		} else {
			l.violate(Violation{
				Reason: "unknown-delivery", Thread: t.Thread, Tag: t.Tag, Cycle: now,
				Detail: "delivery for a request the ledger never saw issued",
			})
		}
		return
	}
	if e.headDone {
		l.violate(Violation{
			Reason: "duplicate-delivery", ID: e.id, Thread: t.Thread, Tag: t.Tag,
			Addr: e.addr, Cycle: now,
			Detail: "head target delivered twice while awaiting continuation bytes",
		})
		return
	}
	e.headDone = true
	e.moved = now
	l.delivered++
	if e.credited >= e.requested || e.lossy {
		l.retire(k, e, now)
	}
	// Otherwise the entry lingers until the continuation credits the
	// remaining bytes; Finish flags it if they never arrive.
}

// Forgive waives byte conservation for a request whose continuation
// half came back poisoned: the head's terminal outcome stands, the
// missing continuation bytes are recorded as degraded data loss
// rather than an invariant violation. (Re-issuing the whole request
// while its head transaction is still live would double-deliver.)
func (l *Ledger) Forgive(t memreq.Target, now sim.Cycle) {
	if l == nil {
		return
	}
	k := key{t.Thread, t.Tag}
	e, ok := l.active[k]
	if !ok {
		// Head and continuation both already resolved (e.g. the head
		// was poisoned too and the entry failed): nothing to waive.
		return
	}
	e.lossy = true
	e.moved = now
	l.forgiven++
	if e.headDone {
		l.retire(k, e, now)
	}
}

// Fail marks a head target's poisoned completion with no retry left —
// the request's terminal outcome with an error status.
func (l *Ledger) Fail(t memreq.Target, now sim.Cycle) {
	if l == nil {
		return
	}
	k := key{t.Thread, t.Tag}
	e, ok := l.active[k]
	if !ok {
		if ts, dup := l.tombs[k]; dup {
			l.violate(Violation{
				Reason: "duplicate-delivery", ID: ts.id, Thread: t.Thread, Tag: t.Tag, Cycle: now,
				Detail: fmt.Sprintf("poisoned completion after retiring at cycle %d", ts.retired),
			})
		} else {
			l.violate(Violation{
				Reason: "unknown-delivery", Thread: t.Thread, Tag: t.Tag, Cycle: now,
				Detail: "poisoned completion for a request the ledger never saw issued",
			})
		}
		return
	}
	if e.headDone {
		l.violate(Violation{
			Reason: "duplicate-delivery", ID: e.id, Thread: t.Thread, Tag: t.Tag,
			Addr: e.addr, Cycle: now,
			Detail: "poisoned completion after the head target already retired",
		})
		return
	}
	e.headDone = true
	l.failed++
	// A failed request owes no bytes: poison is its terminal outcome.
	l.retire(k, e, now)
}

// Retry marks a poisoned completion the requester will re-issue: not a
// terminal outcome, the request returns to the retry-backoff holder.
func (l *Ledger) Retry(t memreq.Target, now sim.Cycle) {
	if l == nil {
		return
	}
	e, ok := l.active[key{t.Thread, t.Tag}]
	if !ok {
		l.violate(Violation{
			Reason: "unknown-delivery", Thread: t.Thread, Tag: t.Tag, Cycle: now,
			Detail: "retry scheduled for a request the ledger never saw issued",
		})
		return
	}
	e.state = StateAwaitRetry
	e.moved = now
	e.retries++
	// The re-issue refetches everything; stale credits from the failed
	// incarnation do not count toward conservation, and a previously
	// waived continuation loss is healed by the refetch.
	e.credited = 0
	e.lossy = false
}

// Reissue marks a retried request re-accepted by the request router.
func (l *Ledger) Reissue(r memreq.RawRequest, now sim.Cycle) {
	if l == nil || r.Fence {
		return
	}
	e, ok := l.active[key{r.Thread, r.Tag}]
	if !ok {
		l.violate(Violation{
			Reason: "unknown-delivery", Thread: r.Thread, Tag: r.Tag, Addr: r.Addr, Cycle: now,
			Detail: "re-issue for a request the ledger never saw issued",
		})
		return
	}
	e.state = StateRouted
	e.moved = now
	l.reissued++
}

// retire removes a finished entry, leaving a tombstone for duplicate
// detection.
func (l *Ledger) retire(k key, e *entry, now sim.Cycle) {
	delete(l.active, k)
	if len(l.tombOrder) >= tombstoneCap {
		old := l.tombOrder[0]
		l.tombOrder = l.tombOrder[1:]
		delete(l.tombs, old)
	}
	l.tombs[k] = tombstone{id: e.id, retired: now}
	l.tombOrder = append(l.tombOrder, k)
}

// InFlight returns the number of requests without a terminal outcome.
func (l *Ledger) InFlight() int {
	if l == nil {
		return 0
	}
	return len(l.active)
}

// Oldest describes the longest-in-flight request — the prime suspect
// when the watchdog fires.
type Oldest struct {
	ID          uint64
	Thread, Tag uint16
	Addr        uint64
	State       State
	Issued      sim.Cycle
	Moved       sim.Cycle
	Retries     int
}

// String renders the oldest-request diagnostic line.
func (o Oldest) String() string {
	return fmt.Sprintf("req#%d thread=%d tag=%d addr=0x%x held-by=%s issued=%d last-moved=%d retries=%d",
		o.ID, o.Thread, o.Tag, o.Addr, o.State, o.Issued, o.Moved, o.Retries)
}

// Oldest returns the oldest in-flight request, or ok=false when the
// ledger has nothing in flight.
func (l *Ledger) Oldest() (Oldest, bool) {
	if l == nil || len(l.active) == 0 {
		return Oldest{}, false
	}
	var best *entry
	var bk key
	for k, e := range l.active {
		if best == nil || e.issued < best.issued ||
			(e.issued == best.issued && e.id < best.id) {
			best, bk = e, k
		}
	}
	return Oldest{
		ID: best.id, Thread: bk.thread, Tag: bk.tag, Addr: best.addr,
		State: best.state, Issued: best.issued, Moved: best.moved,
		Retries: best.retries,
	}, true
}

// HolderCounts returns how many in-flight requests each component
// holds, for causal stall diagnostics (oldest-first ordering is the
// caller's concern via Oldest).
func (l *Ledger) HolderCounts() map[State]int {
	out := make(map[State]int)
	if l == nil {
		return out
	}
	for _, e := range l.active {
		out[e.state]++
	}
	return out
}

// Summary renders a one-line stall diagnostic: per-holder counts and
// the oldest in-flight request.
func (l *Ledger) Summary() string {
	if l == nil {
		return "audit disabled"
	}
	counts := l.HolderCounts()
	var b strings.Builder
	fmt.Fprintf(&b, "in-flight=%d", len(l.active))
	for _, s := range []State{StateRouted, StateCoalescing, StateInflight, StateAwaitRetry} {
		if counts[s] > 0 {
			fmt.Fprintf(&b, " %s=%d", s, counts[s])
		}
	}
	if o, ok := l.Oldest(); ok {
		fmt.Fprintf(&b, "; oldest: %s", o)
	}
	return b.String()
}

// Report is the end-of-run audit result.
type Report struct {
	// Issued counts raw requests registered (fences excluded).
	Issued uint64
	// Delivered and Failed count terminal outcomes.
	Delivered uint64
	Failed    uint64
	// Reissued counts poisoned completions re-issued by the requester.
	Reissued uint64
	// Forgiven counts requests whose continuation bytes were waived
	// after a poisoned continuation transaction (degraded data loss).
	Forgiven uint64
	// StrayCredits counts byte credits for already-retired requests
	// (late continuations); informational, not violations.
	StrayCredits uint64
	// Open counts requests left without a terminal outcome at Finish —
	// each also appears as a "no-terminal-outcome" violation.
	Open int
	// Violations lists broken invariants, OmittedViolations how many
	// were dropped past the reporting cap.
	Violations        []Violation
	OmittedViolations uint64
}

// Ok reports whether every invariant held.
func (r *Report) Ok() bool { return r != nil && len(r.Violations) == 0 }

// Diff renders the per-request diagnostics, one violation per line —
// what the chaos harness prints alongside the offending seed.
func (r *Report) Diff() string {
	if r == nil || len(r.Violations) == 0 {
		return "(no invariant violations)"
	}
	lines := make([]string, 0, len(r.Violations)+1)
	for _, v := range r.Violations {
		lines = append(lines, v.String())
	}
	if r.OmittedViolations > 0 {
		lines = append(lines, fmt.Sprintf("... and %d more violations", r.OmittedViolations))
	}
	return strings.Join(lines, "\n")
}

// String renders the summary counters.
func (r *Report) String() string {
	if r == nil {
		return "audit disabled"
	}
	return fmt.Sprintf("audit: issued=%d delivered=%d failed=%d reissued=%d open=%d violations=%d",
		r.Issued, r.Delivered, r.Failed, r.Reissued, r.Open,
		len(r.Violations)+int(r.OmittedViolations))
}

// Finish closes the ledger at end of run: every remaining in-flight
// request violates the exactly-one-terminal-outcome invariant, and
// requests that retired with missing continuation bytes violate byte
// conservation. It returns the report; the ledger must not be used
// afterwards.
func (l *Ledger) Finish(now sim.Cycle) *Report {
	if l == nil {
		return nil
	}
	// Deterministic violation order: oldest first.
	rest := make([]*entry, 0, len(l.active))
	byEntry := make(map[*entry]key, len(l.active))
	for k, e := range l.active {
		rest = append(rest, e)
		byEntry[e] = k
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i].id < rest[j].id })
	for _, e := range rest {
		k := byEntry[e]
		switch {
		case e.headDone && !e.lossy && e.credited < e.requested:
			l.violate(Violation{
				Reason: "under-delivered", ID: e.id, Thread: k.thread, Tag: k.tag,
				Addr: e.addr, Cycle: now,
				Detail: fmt.Sprintf("retired with %d of %d requested bytes delivered (continuation lost?)",
					e.credited, e.requested),
			})
		default:
			l.violate(Violation{
				Reason: "no-terminal-outcome", ID: e.id, Thread: k.thread, Tag: k.tag,
				Addr: e.addr, Cycle: now,
				Detail: fmt.Sprintf("still held by %s since cycle %d (issued %d, %d/%d bytes, %d retries)",
					e.state, e.moved, e.issued, e.credited, e.requested, e.retries),
			})
		}
	}
	return &Report{
		Issued:            l.issued,
		Delivered:         l.delivered,
		Failed:            l.failed,
		Reissued:          l.reissued,
		Forgiven:          l.forgiven,
		StrayCredits:      l.strayCredits,
		Open:              len(rest),
		Violations:        l.violations,
		OmittedViolations: l.dropped,
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
