package audit

import (
	"strings"
	"testing"

	"mac3d/internal/memreq"
)

func req(thread, tag uint16, a uint64, size uint8) memreq.RawRequest {
	return memreq.RawRequest{Thread: thread, Tag: tag, Addr: a, Size: size}
}

func tgt(thread, tag uint16) memreq.Target {
	return memreq.Target{Thread: thread, Tag: tag}
}

// deliver walks one request through the full happy path.
func deliver(l *Ledger, thread, tag uint16, a uint64, size uint8) {
	l.Issue(req(thread, tag, a, size), 1)
	l.Drain(req(thread, tag, a, size), 2)
	l.Bind(tgt(thread, tag), 100, 3)
	l.Credit(tgt(thread, tag), a&^0xf, 256, 4)
	l.Retire(tgt(thread, tag), 4)
}

func TestNilLedgerIsSafe(t *testing.T) {
	var l *Ledger
	if l.Enabled() {
		t.Fatal("nil ledger claims enabled")
	}
	l.Issue(req(0, 0, 0, 8), 0)
	l.Drain(req(0, 0, 0, 8), 0)
	l.Bind(tgt(0, 0), 0, 0)
	l.Credit(tgt(0, 0), 0, 16, 0)
	l.Retire(tgt(0, 0), 0)
	l.Fail(tgt(0, 0), 0)
	l.Retry(tgt(0, 0), 0)
	l.Reissue(req(0, 0, 0, 8), 0)
	l.Forgive(tgt(0, 0), 0)
	if l.InFlight() != 0 {
		t.Fatal("nil ledger has in-flight requests")
	}
	if _, ok := l.Oldest(); ok {
		t.Fatal("nil ledger has an oldest request")
	}
	if got := l.Summary(); got != "audit disabled" {
		t.Fatalf("Summary() = %q", got)
	}
	if l.Finish(0) != nil {
		t.Fatal("nil ledger produced a report")
	}
}

func TestHappyPathConserves(t *testing.T) {
	l := NewLedger()
	for i := 0; i < 4; i++ {
		deliver(l, uint16(i), 7, uint64(i)*256, 8)
	}
	rep := l.Finish(10)
	if !rep.Ok() {
		t.Fatalf("violations on the happy path:\n%s", rep.Diff())
	}
	if rep.Issued != 4 || rep.Delivered != 4 || rep.Failed != 0 || rep.Open != 0 {
		t.Fatalf("report = %s", rep)
	}
}

func TestFencesNotTracked(t *testing.T) {
	l := NewLedger()
	l.Issue(memreq.RawRequest{Fence: true, Thread: 1, Tag: 2}, 1)
	if l.InFlight() != 0 {
		t.Fatal("fence was registered")
	}
	if rep := l.Finish(2); !rep.Ok() || rep.Issued != 0 {
		t.Fatalf("fence leaked into the report: %s", rep)
	}
}

func TestDuplicateDeliveryCaught(t *testing.T) {
	l := NewLedger()
	deliver(l, 3, 9, 0x40, 8)
	// The entry retired; a second delivery must hit the tombstone.
	l.Retire(tgt(3, 9), 5)
	rep := l.Finish(6)
	if rep.Ok() {
		t.Fatal("duplicate delivery not caught")
	}
	v := rep.Violations[0]
	if v.Reason != "duplicate-delivery" || v.Thread != 3 || v.Tag != 9 {
		t.Fatalf("violation = %+v", v)
	}
	if !strings.Contains(v.String(), "req#1") {
		t.Fatalf("diagnostic lacks the request id: %s", v)
	}
}

func TestDoubleHeadDeliveryCaught(t *testing.T) {
	// Window-split request: head retires while continuation bytes are
	// pending, then the head arrives again.
	l := NewLedger()
	l.Issue(req(1, 4, 248, 16), 1) // spans a 256B window boundary
	l.Retire(tgt(1, 4), 3)         // head done, bytes outstanding
	l.Retire(tgt(1, 4), 4)         // duplicate while lingering
	rep := l.Finish(5)
	found := false
	for _, v := range rep.Violations {
		if v.Reason == "duplicate-delivery" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no duplicate-delivery violation:\n%s", rep.Diff())
	}
}

func TestTagReuseCaught(t *testing.T) {
	l := NewLedger()
	l.Issue(req(2, 5, 0x100, 8), 1)
	l.Issue(req(2, 5, 0x200, 8), 2)
	rep := l.Finish(3)
	if rep.Ok() {
		t.Fatal("tag reuse not caught")
	}
	if rep.Violations[0].Reason != "tag-reuse" {
		t.Fatalf("violation = %+v", rep.Violations[0])
	}
}

func TestUnderDeliveryCaught(t *testing.T) {
	// Head retires but the continuation bytes never arrive.
	l := NewLedger()
	l.Issue(req(1, 1, 248, 16), 1) // FLIT span 240..272 = 32 bytes
	l.Credit(tgt(1, 1), 240, 16, 2)
	l.Retire(tgt(1, 1), 2)
	rep := l.Finish(10)
	if rep.Ok() {
		t.Fatal("under-delivery not caught")
	}
	if rep.Violations[0].Reason != "under-delivered" {
		t.Fatalf("violation = %+v", rep.Violations[0])
	}
}

func TestNoTerminalOutcomeCaught(t *testing.T) {
	l := NewLedger()
	l.Issue(req(0, 3, 0x80, 8), 1)
	rep := l.Finish(100)
	if rep.Ok() || rep.Open != 1 {
		t.Fatalf("open request not reported: %s", rep)
	}
	if rep.Violations[0].Reason != "no-terminal-outcome" {
		t.Fatalf("violation = %+v", rep.Violations[0])
	}
}

func TestFailIsTerminal(t *testing.T) {
	l := NewLedger()
	l.Issue(req(0, 1, 0x10, 8), 1)
	l.Fail(tgt(0, 1), 2)
	rep := l.Finish(3)
	if !rep.Ok() || rep.Failed != 1 || rep.Delivered != 0 {
		t.Fatalf("report = %s\n%s", rep, rep.Diff())
	}
}

func TestForgiveWaivesContinuationBytes(t *testing.T) {
	// Continuation poisoned: Forgive waives its bytes; the head's
	// delivery still retires the request without violations.
	l := NewLedger()
	l.Issue(req(1, 2, 248, 16), 1)
	l.Forgive(tgt(1, 2), 3)
	l.Credit(tgt(1, 2), 240, 16, 4)
	l.Retire(tgt(1, 2), 4)
	rep := l.Finish(5)
	if !rep.Ok() {
		t.Fatalf("forgiven loss flagged:\n%s", rep.Diff())
	}
	if rep.Forgiven != 1 || rep.Delivered != 1 {
		t.Fatalf("report = %s", rep)
	}
}

func TestRetryHealsAndConverges(t *testing.T) {
	l := NewLedger()
	l.Issue(req(4, 8, 0x300, 8), 1)
	l.Bind(tgt(4, 8), 1, 2)
	l.Credit(tgt(4, 8), 0x300, 8, 3) // partial credit from the poisoned incarnation
	l.Retry(tgt(4, 8), 3)
	l.Reissue(req(4, 8, 0x300, 8), 20)
	l.Bind(tgt(4, 8), 2, 21)
	l.Credit(tgt(4, 8), 0x300&^0xf, 256, 25)
	l.Retire(tgt(4, 8), 25)
	rep := l.Finish(30)
	if !rep.Ok() {
		t.Fatalf("retried request flagged:\n%s", rep.Diff())
	}
	if rep.Reissued != 1 || rep.Delivered != 1 || rep.Failed != 0 {
		t.Fatalf("report = %s", rep)
	}
}

func TestStrayCreditNotViolation(t *testing.T) {
	l := NewLedger()
	deliver(l, 0, 1, 0x40, 8)
	l.Credit(tgt(0, 1), 0x40, 16, 9) // late continuation after retire
	rep := l.Finish(10)
	if !rep.Ok() || rep.StrayCredits != 1 {
		t.Fatalf("report = %s\n%s", rep, rep.Diff())
	}
}

func TestUnknownDeliveryCaught(t *testing.T) {
	l := NewLedger()
	l.Retire(tgt(9, 9), 1)
	rep := l.Finish(2)
	if rep.Ok() || rep.Violations[0].Reason != "unknown-delivery" {
		t.Fatalf("report = %s", rep)
	}
}

func TestOldestAndHolderCounts(t *testing.T) {
	l := NewLedger()
	l.Issue(req(0, 1, 0x10, 8), 5)
	l.Issue(req(1, 1, 0x20, 8), 7)
	l.Drain(req(1, 1, 0x20, 8), 8)
	o, ok := l.Oldest()
	if !ok || o.Thread != 0 || o.Issued != 5 || o.State != StateRouted {
		t.Fatalf("Oldest() = %+v, %v", o, ok)
	}
	counts := l.HolderCounts()
	if counts[StateRouted] != 1 || counts[StateCoalescing] != 1 {
		t.Fatalf("HolderCounts() = %v", counts)
	}
	sum := l.Summary()
	for _, want := range []string{"in-flight=2", "request-router=1", "coalescer=1", "req#1"} {
		if !strings.Contains(sum, want) {
			t.Fatalf("Summary() = %q missing %q", sum, want)
		}
	}
}

func TestViolationCapBounds(t *testing.T) {
	l := NewLedger()
	for i := 0; i < maxViolations+10; i++ {
		l.Retire(tgt(uint16(i), 0), 1) // unknown deliveries
	}
	rep := l.Finish(2)
	if len(rep.Violations) != maxViolations || rep.OmittedViolations != 10 {
		t.Fatalf("got %d violations, %d omitted", len(rep.Violations), rep.OmittedViolations)
	}
	if !strings.Contains(rep.Diff(), "10 more violations") {
		t.Fatalf("Diff() lacks the omitted count:\n%s", rep.Diff())
	}
}

func TestFlitSpan(t *testing.T) {
	cases := []struct {
		a    uint64
		size uint8
		base uint64
		span uint32
	}{
		{0x40, 8, 0x40, 16},
		{0x48, 8, 0x40, 16},
		{0x48, 16, 0x40, 32}, // straddles a FLIT boundary
		{0x40, 0, 0x40, 16},  // size 0 treated as 1
		{248, 16, 240, 32},   // window-split head span
	}
	for _, c := range cases {
		base, span := flitSpan(c.a, c.size)
		if base != c.base || span != c.span {
			t.Errorf("flitSpan(0x%x, %d) = (0x%x, %d), want (0x%x, %d)",
				c.a, c.size, base, span, c.base, c.span)
		}
	}
}

func TestTombstoneRingBounded(t *testing.T) {
	l := NewLedger()
	for i := 0; i < tombstoneCap+50; i++ {
		th, tag := uint16(i%8), uint16(i/8)
		deliver(l, th, tag, uint64(i)*16, 8)
	}
	if len(l.tombs) != tombstoneCap || len(l.tombOrder) != tombstoneCap {
		t.Fatalf("tombstones = %d/%d, want %d", len(l.tombs), len(l.tombOrder), tombstoneCap)
	}
}
