// Package cache is a set-associative LRU cache simulator used for the
// paper's Figure 1 motivation study: the miss-rate analysis that
// justifies the cache-less node architecture. It models a single-level
// write-allocate cache with configurable geometry and reports miss
// rates for arbitrary address streams.
package cache

import "fmt"

// Config describes the cache geometry.
type Config struct {
	// SizeBytes is the total capacity.
	SizeBytes uint64
	// LineBytes is the block size (typically 64).
	LineBytes uint32
	// Ways is the associativity; Ways <= 0 means fully associative.
	Ways int
	// Prefetch enables a tagged next-line prefetcher: a miss inserts
	// the following line marked "prefetched"; the first hit on a
	// prefetched line chains the prefetch forward. This gives
	// sequential streams the near-zero miss rates of Figure 1's
	// left-hand bars while leaving random streams unaffected.
	Prefetch bool
}

// DefaultConfig models the last-level-cache-like configuration used in
// the Figure 1 study: 8MB, 16-way, 64B lines.
func DefaultConfig() Config {
	return Config{SizeBytes: 8 << 20, LineBytes: 64, Ways: 16}
}

// Validate reports the first configuration error, or nil.
func (c Config) Validate() error {
	switch {
	case c.LineBytes == 0 || c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("cache: LineBytes must be a power of two, got %d", c.LineBytes)
	case c.SizeBytes == 0 || c.SizeBytes%uint64(c.LineBytes) != 0:
		return fmt.Errorf("cache: SizeBytes %d not a multiple of LineBytes %d", c.SizeBytes, c.LineBytes)
	}
	lines := c.SizeBytes / uint64(c.LineBytes)
	ways := uint64(c.Ways)
	if c.Ways <= 0 {
		ways = lines
	}
	if lines%ways != 0 {
		return fmt.Errorf("cache: %d lines not divisible into %d ways", lines, ways)
	}
	return nil
}

// Cache is a set-associative LRU cache. It tracks tags only (no data),
// which is all a miss-rate study needs.
type Cache struct {
	cfg        Config
	sets       int
	ways       int
	lineShift  uint
	tags       []uint64 // sets*ways entries; 0 means empty (tag+1 stored)
	lastUse    []uint64 // LRU clock values, parallel to tags
	prefetched []bool   // tagged-prefetch bits, parallel to tags
	dirty      []bool   // written-line bits, parallel to tags
	clock      uint64
	accesses   uint64
	misses     uint64
	evictions  uint64
	coldMisses uint64
	prefetches uint64
}

// New builds a cache, returning an error for invalid geometry.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("cache: invalid config: %w", err)
	}
	lines := int(cfg.SizeBytes / uint64(cfg.LineBytes))
	ways := cfg.Ways
	if ways <= 0 || ways > lines {
		ways = lines
	}
	sets := lines / ways
	shift := uint(0)
	for 1<<shift != cfg.LineBytes {
		shift++
	}
	return &Cache{
		cfg:        cfg,
		sets:       sets,
		ways:       ways,
		lineShift:  shift,
		tags:       make([]uint64, lines),
		lastUse:    make([]uint64, lines),
		prefetched: make([]bool, lines),
		dirty:      make([]bool, lines),
	}, nil
}

// MustNew builds a cache, panicking on invalid geometry — for tests
// and package-level examples with known-good configurations.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// Access looks up the line containing address a, allocating it on a
// miss (write-allocate for both loads and stores). It reports whether
// the access hit.
func (c *Cache) Access(a uint64) bool {
	c.clock++
	c.accesses++
	line := a >> c.lineShift
	set := int(line % uint64(c.sets))
	stored := line + 1 // avoid 0 = empty ambiguity
	base := set * c.ways

	victim := base
	empty := -1
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == stored {
			c.lastUse[i] = c.clock
			if c.prefetched[i] {
				// Tagged prefetch: first demand hit on a
				// prefetched line chains the stream forward.
				c.prefetched[i] = false
				c.insert(line+1, true)
			}
			return true
		}
		if c.tags[i] == 0 && empty < 0 {
			empty = i
		}
		if c.lastUse[i] < c.lastUse[victim] {
			victim = i
		}
	}
	c.misses++
	if empty >= 0 {
		c.coldMisses++
		c.fill(empty, stored, false)
	} else {
		c.evictions++
		c.fill(victim, stored, false)
	}
	if c.cfg.Prefetch {
		c.insert(line+1, true)
	}
	return false
}

// AccessDirty is Access with writeback bookkeeping for callers that
// model a dirty-line cache (the MemCache coalescer frontend): store
// marks the line dirty, and on an eviction the victim's line-aligned
// address and dirty bit are returned so the caller can synthesize the
// writeback traffic. It never runs the tagged prefetcher — fill
// traffic is the caller's concern, not the tag array's.
func (c *Cache) AccessDirty(a uint64, store bool) (hit bool, evicted uint64, evictedDirty bool) {
	c.clock++
	c.accesses++
	line := a >> c.lineShift
	set := int(line % uint64(c.sets))
	stored := line + 1 // avoid 0 = empty ambiguity
	base := set * c.ways

	victim := base
	empty := -1
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == stored {
			c.lastUse[i] = c.clock
			if store {
				c.dirty[i] = true
			}
			return true, 0, false
		}
		if c.tags[i] == 0 && empty < 0 {
			empty = i
		}
		if c.lastUse[i] < c.lastUse[victim] {
			victim = i
		}
	}
	c.misses++
	if empty >= 0 {
		c.coldMisses++
		victim = empty
	} else {
		c.evictions++
		evicted = (c.tags[victim] - 1) << c.lineShift
		evictedDirty = c.dirty[victim]
	}
	c.fill(victim, stored, false)
	c.dirty[victim] = store
	return false, evicted, evictedDirty
}

// Contains reports whether the line holding address a is resident,
// without touching LRU state or counters.
func (c *Cache) Contains(a uint64) bool {
	line := a >> c.lineShift
	set := int(line % uint64(c.sets))
	stored := line + 1
	base := set * c.ways
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == stored {
			return true
		}
	}
	return false
}

// MarkDirty sets the dirty bit on the resident line holding address a,
// reporting whether the line was found. Used when a store merges onto
// an in-flight fill whose line is already installed in the tag array.
func (c *Cache) MarkDirty(a uint64) bool {
	line := a >> c.lineShift
	set := int(line % uint64(c.sets))
	stored := line + 1
	base := set * c.ways
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == stored {
			c.dirty[i] = true
			return true
		}
	}
	return false
}

// insert allocates line into the cache (if absent) without counting an
// access; prefetch marks it for tagged-prefetch chaining.
func (c *Cache) insert(line uint64, prefetch bool) {
	if prefetch && !c.cfg.Prefetch {
		return
	}
	set := int(line % uint64(c.sets))
	stored := line + 1
	base := set * c.ways
	victim := base
	empty := -1
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == stored {
			return // already resident
		}
		if c.tags[i] == 0 && empty < 0 {
			empty = i
		}
		if c.lastUse[i] < c.lastUse[victim] {
			victim = i
		}
	}
	c.prefetches++
	if empty >= 0 {
		c.fill(empty, stored, prefetch)
		return
	}
	c.fill(victim, stored, prefetch)
}

func (c *Cache) fill(slot int, stored uint64, prefetch bool) {
	c.tags[slot] = stored
	c.lastUse[slot] = c.clock
	c.prefetched[slot] = prefetch
	c.dirty[slot] = false
}

// Stats reports the accumulated access statistics.
type Stats struct {
	Accesses   uint64
	Misses     uint64
	ColdMisses uint64
	Evictions  uint64
	Prefetches uint64
}

// MissRate returns misses/accesses, or 0 with no accesses.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Accesses: c.accesses, Misses: c.misses, ColdMisses: c.coldMisses,
		Evictions: c.evictions, Prefetches: c.prefetches,
	}
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i], c.lastUse[i], c.prefetched[i], c.dirty[i] = 0, 0, false, false
	}
	c.clock, c.accesses, c.misses, c.evictions, c.coldMisses, c.prefetches = 0, 0, 0, 0, 0, 0
}

// MissRateOf replays an address stream through a fresh cache with the
// given geometry and returns the miss rate. It panics on invalid
// geometry (use Config.Validate or New to check first).
func MissRateOf(cfg Config, addrs func(yield func(uint64) bool)) float64 {
	c := MustNew(cfg)
	addrs(func(a uint64) bool {
		c.Access(a)
		return true
	})
	return c.Stats().MissRate()
}
