package cache

import (
	"testing"
	"testing/quick"
)

func tiny() Config { return Config{SizeBytes: 1024, LineBytes: 64, Ways: 2} } // 8 sets x 2 ways

func TestValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{SizeBytes: 1024, LineBytes: 0, Ways: 2},
		{SizeBytes: 1024, LineBytes: 48, Ways: 2},
		{SizeBytes: 1000, LineBytes: 64, Ways: 2},
		{SizeBytes: 0, LineBytes: 64, Ways: 2},
		{SizeBytes: 1024, LineBytes: 64, Ways: 3}, // 16 lines / 3 ways
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestGeometry(t *testing.T) {
	c := MustNew(tiny())
	if c.Sets() != 8 || c.Ways() != 2 {
		t.Fatalf("geometry = %dx%d", c.Sets(), c.Ways())
	}
	fa := MustNew(Config{SizeBytes: 512, LineBytes: 64, Ways: 0})
	if fa.Sets() != 1 || fa.Ways() != 8 {
		t.Fatalf("fully associative = %dx%d", fa.Sets(), fa.Ways())
	}
}

func TestHitAfterMiss(t *testing.T) {
	c := MustNew(tiny())
	if c.Access(0x100) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0x100) {
		t.Fatal("second access missed")
	}
	if !c.Access(0x13F) {
		t.Fatal("same line, different offset missed")
	}
	if c.Access(0x140) {
		t.Fatal("next line hit")
	}
	s := c.Stats()
	if s.Accesses != 4 || s.Misses != 2 || s.ColdMisses != 2 || s.Evictions != 0 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MissRate() != 0.5 {
		t.Fatalf("miss rate = %v", s.MissRate())
	}
}

func TestLRUEviction(t *testing.T) {
	c := MustNew(tiny()) // 2 ways per set; set stride = 8 lines = 512B
	a := uint64(0x0000)
	b := a + 512  // same set
	d := a + 1024 // same set
	c.Access(a)
	c.Access(b)
	c.Access(a) // a is now MRU, b LRU
	c.Access(d) // evicts b
	if !c.Access(a) {
		t.Fatal("a evicted despite MRU")
	}
	if c.Access(b) {
		t.Fatal("b still resident after eviction")
	}
	if c.Stats().Evictions < 1 {
		t.Fatal("no eviction recorded")
	}
}

func TestSequentialStreamLowMissRate(t *testing.T) {
	// Sequential 8B accesses: one miss per 64B line = 12.5%.
	c := MustNew(DefaultConfig())
	for a := uint64(0); a < 1<<20; a += 8 {
		c.Access(a)
	}
	mr := c.Stats().MissRate()
	if mr < 0.12 || mr > 0.13 {
		t.Fatalf("sequential miss rate = %v, want 0.125", mr)
	}
}

func TestWorkingSetFitsAllHitsAfterWarmup(t *testing.T) {
	c := MustNew(tiny())
	warm := func() {
		for a := uint64(0); a < 1024; a += 64 {
			c.Access(a)
		}
	}
	warm()
	before := c.Stats().Misses
	warm()
	if c.Stats().Misses != before {
		t.Fatal("resident working set missed")
	}
}

func TestThrashingWorkingSet(t *testing.T) {
	// A working set 4x the cache with LRU round-robin access
	// thrashes: ~100% miss rate after warmup.
	c := MustNew(tiny())
	for round := 0; round < 8; round++ {
		for a := uint64(0); a < 4096; a += 64 {
			c.Access(a)
		}
	}
	if mr := c.Stats().MissRate(); mr < 0.95 {
		t.Fatalf("thrash miss rate = %v, want ~1", mr)
	}
}

func TestMissRateOfHelper(t *testing.T) {
	mr := MissRateOf(tiny(), func(yield func(uint64) bool) {
		yield(0)
		yield(0)
	})
	if mr != 0.5 {
		t.Fatalf("MissRateOf = %v", mr)
	}
}

func TestResetRestoresCold(t *testing.T) {
	c := MustNew(tiny())
	c.Access(0x40)
	c.Reset()
	if c.Stats().Accesses != 0 {
		t.Fatal("stats survived reset")
	}
	if c.Access(0x40) {
		t.Fatal("contents survived reset")
	}
}

func TestMissRateBoundsProperty(t *testing.T) {
	f := func(addrs []uint32) bool {
		c := MustNew(tiny())
		for _, a := range addrs {
			c.Access(uint64(a))
		}
		s := c.Stats()
		if s.Accesses != uint64(len(addrs)) {
			return false
		}
		mr := s.MissRate()
		return mr >= 0 && mr <= 1 && s.ColdMisses+s.Evictions == s.Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRepeatedSingleLineProperty(t *testing.T) {
	// Property: accessing one line n times yields exactly 1 miss.
	f := func(a uint64, n uint8) bool {
		c := MustNew(tiny())
		reps := int(n%50) + 1
		for i := 0; i < reps; i++ {
			c.Access(a)
		}
		return c.Stats().Misses == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
