package cache

import "testing"

func pfConfig() Config {
	c := DefaultConfig()
	c.Prefetch = true
	return c
}

func TestPrefetchSequentialNearZeroMissRate(t *testing.T) {
	c := MustNew(pfConfig())
	for a := uint64(0); a < 1<<20; a += 8 {
		c.Access(a)
	}
	if mr := c.Stats().MissRate(); mr > 0.02 {
		t.Fatalf("sequential miss rate with prefetch = %v, want < 2%%", mr)
	}
	if c.Stats().Prefetches == 0 {
		t.Fatal("no prefetches issued")
	}
}

func TestPrefetchDoesNotHelpRandom(t *testing.T) {
	// A working set far beyond capacity, random accesses: prefetch
	// must leave the miss rate near 100% of the no-prefetch rate.
	runAt := func(pf bool) float64 {
		cfg := Config{SizeBytes: 64 << 10, LineBytes: 64, Ways: 8, Prefetch: pf}
		c := MustNew(cfg)
		x := uint64(12345)
		for i := 0; i < 200000; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			c.Access(x % (64 << 20))
		}
		return c.Stats().MissRate()
	}
	with, without := runAt(true), runAt(false)
	if with < without*0.9 {
		t.Fatalf("prefetch 'helped' random: %v vs %v", with, without)
	}
}

func TestPrefetchOffByDefault(t *testing.T) {
	c := MustNew(DefaultConfig())
	for a := uint64(0); a < 1<<16; a += 8 {
		c.Access(a)
	}
	if c.Stats().Prefetches != 0 {
		t.Fatal("prefetches issued with Prefetch=false")
	}
}

func TestPrefetchedLineCountsAsHit(t *testing.T) {
	c := MustNew(pfConfig())
	c.Access(0) // miss, prefetches line 1
	if !c.Access(64) {
		t.Fatal("prefetched line missed")
	}
}

func TestPrefetchResetClearsBits(t *testing.T) {
	c := MustNew(pfConfig())
	c.Access(0)
	c.Reset()
	if c.Stats().Prefetches != 0 {
		t.Fatal("prefetch stats survived reset")
	}
	if c.Access(64) {
		t.Fatal("prefetched line survived reset")
	}
}
