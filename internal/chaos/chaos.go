package chaos

import (
	"fmt"

	"mac3d/internal/hmc"
	"mac3d/internal/sim"
)

// Stats counts the adversity the engine actually injected.
type Stats struct {
	// DelayStorms counts storm windows started; DelayedResponses the
	// responses held back inside them.
	DelayStorms      uint64
	DelayedResponses uint64
	// ReorderedBatches counts same-cycle response batches delivered
	// in reversed order.
	ReorderedBatches uint64
	// FencesInjected counts synthetic fences offered to the router.
	FencesInjected uint64
	// FreezeCycles counts cycles the submit stage spent frozen.
	FreezeCycles uint64
	// VaultStalls counts transient vault-unavailability events.
	VaultStalls uint64
	// LinkStalls counts transient NoC link-stall events.
	LinkStalls uint64
	// CubeLinkStalls counts transient intra-cube fabric link-stall
	// events.
	CubeLinkStalls uint64
}

// String renders a one-line summary.
func (s *Stats) String() string {
	if s == nil {
		return "chaos disabled"
	}
	return fmt.Sprintf("chaos: delay-storms=%d delayed=%d reordered=%d fences=%d freeze-cycles=%d vault-stalls=%d link-stalls=%d cube-link-stalls=%d",
		s.DelayStorms, s.DelayedResponses, s.ReorderedBatches,
		s.FencesInjected, s.FreezeCycles, s.VaultStalls, s.LinkStalls,
		s.CubeLinkStalls)
}

// heldResp is one response parked by a delay storm.
type heldResp struct {
	due  sim.Cycle
	resp hmc.Response
}

// Engine executes a Profile against one node's pipeline. The node
// driver calls Tick once per cycle (all RNG rolls happen there, in a
// fixed order, so the schedule is a pure function of profile+seed),
// then consults the stressor accessors. A nil *Engine disables
// everything; every method is nil-safe.
type Engine struct {
	p      Profile
	rng    *sim.RNG
	vaults int
	links  int

	delayUntil  sim.Cycle
	freezeUntil sim.Cycle
	fenceDebt   int
	stallVault  int
	stallUntil  sim.Cycle
	stallReady  bool
	held        []heldResp

	linkStall      int
	linkStallUntil sim.Cycle
	linkStallReady bool

	cubeLinks          int
	cubeLinkStall      int
	cubeLinkStallUntil sim.Cycle
	cubeLinkStallReady bool

	stats Stats
}

// NewEngine returns an engine for p, or nil when p disables every
// stressor. vaults is the device's vault count (targets for transient
// unavailability); pass 0 to disable the vault stressor.
func NewEngine(p Profile, vaults int) (*Engine, error) {
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if !p.Enabled() {
		return nil, nil
	}
	if vaults <= 0 {
		p.VaultRate = 0
	}
	return &Engine{p: p, rng: sim.NewRNG(p.Seed), vaults: vaults}, nil
}

// Enabled reports whether the engine injects anything (non-nil).
func (e *Engine) Enabled() bool { return e != nil }

// SetLinks tells the engine how many directed NoC links exist (targets
// for transient link stalls); pass 0 to disable the link stressor.
// Call before the first Tick — the link roll is gated on it, so a
// linkless driver (or one that never calls SetLinks) sees exactly the
// RNG stream it saw before the stressor existed.
func (e *Engine) SetLinks(n int) {
	if e == nil || n < 0 {
		return
	}
	e.links = n
}

// SetCubeLinks tells the engine how many directed intra-cube fabric
// links exist (targets for the cubelink stressor); pass 0 (or never
// call it, as drivers with an ideal cube do) to disable it. Like
// SetLinks, the roll is gated on it so pre-cube RNG schedules replay
// bit-for-bit.
func (e *Engine) SetCubeLinks(n int) {
	if e == nil || n < 0 {
		return
	}
	e.cubeLinks = n
}

// Tick rolls every stressor for cycle now. Call exactly once per
// cycle, before the stressor accessors.
func (e *Engine) Tick(now sim.Cycle) {
	if e == nil {
		return
	}
	// Fixed roll order keeps the schedule deterministic regardless of
	// which accessors the driver consults afterwards.
	if e.p.DelayRate > 0 && now >= e.delayUntil && e.rng.Float64() < e.p.DelayRate {
		e.delayUntil = now + e.p.DelayDuration
		e.stats.DelayStorms++
	}
	if e.p.FenceRate > 0 && e.rng.Float64() < e.p.FenceRate {
		e.fenceDebt += e.p.FenceBurst
	}
	if e.p.FreezeRate > 0 && now >= e.freezeUntil && e.rng.Float64() < e.p.FreezeRate {
		e.freezeUntil = now + e.p.FreezeDuration
	}
	if e.p.VaultRate > 0 && e.rng.Float64() < e.p.VaultRate {
		e.stallVault = e.rng.Intn(e.vaults)
		e.stallUntil = now + e.p.VaultStall
		e.stallReady = true
		e.stats.VaultStalls++
	}
	// The link roll comes last and only exists when the driver declared
	// links (SetLinks), so pre-NoC schedules replay bit-for-bit.
	if e.p.LinkRate > 0 && e.links > 0 && e.rng.Float64() < e.p.LinkRate {
		e.linkStall = e.rng.Intn(e.links)
		e.linkStallUntil = now + e.p.LinkStall
		e.linkStallReady = true
		e.stats.LinkStalls++
	}
	// The cubelink roll is appended after the link roll and gated on
	// SetCubeLinks, for the same replay reason.
	if e.p.CubeLinkRate > 0 && e.cubeLinks > 0 && e.rng.Float64() < e.p.CubeLinkRate {
		e.cubeLinkStall = e.rng.Intn(e.cubeLinks)
		e.cubeLinkStallUntil = now + e.p.CubeLinkStall
		e.cubeLinkStallReady = true
		e.stats.CubeLinkStalls++
	}
	if now < e.freezeUntil {
		e.stats.FreezeCycles++
	}
}

// SubmitFrozen reports whether an ARQ backpressure burst freezes the
// node's submit stage this cycle.
func (e *Engine) SubmitFrozen(now sim.Cycle) bool {
	return e != nil && now < e.freezeUntil
}

// TakeFence returns true while the node should inject one synthetic
// fence this cycle; each call consumes one fence of the pending burst.
func (e *Engine) TakeFence() bool {
	if e == nil || e.fenceDebt <= 0 {
		return false
	}
	e.fenceDebt--
	e.stats.FencesInjected++
	return true
}

// TakeVaultStall returns a pending transient vault-unavailability
// event: vault v is busy until the returned cycle. Consumed on read.
func (e *Engine) TakeVaultStall() (v int, until sim.Cycle, ok bool) {
	if e == nil || !e.stallReady {
		return 0, 0, false
	}
	e.stallReady = false
	return e.stallVault, e.stallUntil, true
}

// TakeLinkStall returns a pending transient link-stall event: directed
// NoC link l is frozen until the returned cycle (the driver forwards
// it to Fabric.StallLink). Consumed on read.
func (e *Engine) TakeLinkStall() (l int, until sim.Cycle, ok bool) {
	if e == nil || !e.linkStallReady {
		return 0, 0, false
	}
	e.linkStallReady = false
	return e.linkStall, e.linkStallUntil, true
}

// TakeCubeLinkStall returns a pending transient intra-cube link-stall
// event: directed cube-fabric link l is frozen until the returned cycle
// (the driver forwards it to Device.StallCubeLink). Consumed on read.
func (e *Engine) TakeCubeLinkStall() (l int, until sim.Cycle, ok bool) {
	if e == nil || !e.cubeLinkStallReady {
		return 0, 0, false
	}
	e.cubeLinkStallReady = false
	return e.cubeLinkStall, e.cubeLinkStallUntil, true
}

// Filter perturbs the device's response batch for cycle now: during a
// delay storm every incoming response is parked for 1..DelayMax extra
// cycles; previously parked responses whose hold expired are released
// (in park order); outside storms a batch may be delivered reversed.
// The returned slice replaces the device batch.
func (e *Engine) Filter(now sim.Cycle, in []hmc.Response) []hmc.Response {
	if e == nil {
		return in
	}
	var out []hmc.Response
	// Release parked responses that have served their hold.
	if len(e.held) > 0 {
		keep := e.held[:0]
		for _, h := range e.held {
			if h.due <= now {
				out = append(out, h.resp)
			} else {
				keep = append(keep, h)
			}
		}
		e.held = keep
	}
	if now < e.delayUntil {
		for _, r := range in {
			due := now + 1 + sim.Cycle(e.rng.Uint64n(uint64(e.p.DelayMax)))
			e.held = append(e.held, heldResp{due: due, resp: r})
			e.stats.DelayedResponses++
		}
		return out
	}
	if e.p.ReorderRate > 0 && len(in) > 1 && e.rng.Float64() < e.p.ReorderRate {
		for i, j := 0, len(in)-1; i < j; i, j = i+1, j-1 {
			in[i], in[j] = in[j], in[i]
		}
		e.stats.ReorderedBatches++
	}
	return append(out, in...)
}

// HeldResponses returns the number of responses parked by delay
// storms; the node's drained check must wait for it to reach zero.
func (e *Engine) HeldResponses() int {
	if e == nil {
		return 0
	}
	return len(e.held)
}

// Stats returns the injected-adversity counters, or nil when the
// engine is disabled.
func (e *Engine) Stats() *Stats {
	if e == nil {
		return nil
	}
	return &e.stats
}
