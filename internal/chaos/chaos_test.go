package chaos

import (
	"reflect"
	"strings"
	"testing"

	"mac3d/internal/hmc"
	"mac3d/internal/sim"
)

func TestParseProfileDisabled(t *testing.T) {
	for _, s := range []string{"", "off", "none", "  off  "} {
		p, err := ParseProfile(s)
		if err != nil {
			t.Fatalf("ParseProfile(%q): %v", s, err)
		}
		if p.Enabled() {
			t.Fatalf("ParseProfile(%q) enabled: %+v", s, p)
		}
		if p.String() != "off" {
			t.Fatalf("String() = %q, want off", p.String())
		}
	}
}

func TestParseProfilePresets(t *testing.T) {
	names := Presets()
	if !reflect.DeepEqual(names, []string{"mild", "storm"}) {
		t.Fatalf("Presets() = %v", names)
	}
	for _, name := range names {
		p, err := ParseProfile(name)
		if err != nil {
			t.Fatalf("ParseProfile(%q): %v", name, err)
		}
		if !p.Enabled() {
			t.Fatalf("preset %q is disabled", name)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("preset %q invalid: %v", name, err)
		}
	}
}

func TestParseProfileStressors(t *testing.T) {
	p, err := ParseProfile("delay=0.01:20:40,reorder=0.1,fence=0.002:3,freeze=0.005:6,vault=0.01:24,link=0.003:128,seed=42")
	if err != nil {
		t.Fatal(err)
	}
	want := Profile{
		DelayRate: 0.01, DelayDuration: 20, DelayMax: 40,
		ReorderRate: 0.1,
		FenceRate:   0.002, FenceBurst: 3,
		FreezeRate: 0.005, FreezeDuration: 6,
		VaultRate: 0.01, VaultStall: 24,
		LinkRate: 0.003, LinkStall: 128,
		Seed: 42,
	}
	if p != want {
		t.Fatalf("got %+v, want %+v", p, want)
	}
}

func TestParseProfileDefaults(t *testing.T) {
	p, err := ParseProfile("delay=0.01,fence=0.001,freeze=0.01,vault=0.01,link=0.01")
	if err != nil {
		t.Fatal(err)
	}
	if p.DelayDuration != 16 || p.DelayMax != 32 || p.FenceBurst != 2 ||
		p.FreezeDuration != 8 || p.VaultStall != 32 || p.LinkStall != 64 {
		t.Fatalf("defaults not filled: %+v", p)
	}
}

func TestParseProfileErrors(t *testing.T) {
	for _, s := range []string{
		"bogus",           // unknown preset and not key=value
		"delay",           // not key=value
		"warp=0.1",        // unknown stressor
		"delay=x",         // bad rate
		"delay=0.1:a",     // bad duration
		"delay=0.1:1:2:3", // too many fields
		"reorder=0.1:5",   // reorder takes only a rate
		"fence=0.1:1:2",   // too many fence fields
		"freeze=0.1:1:2",  // too many freeze fields
		"vault=0.1:1:2",   // too many vault fields
		"link=0.1:1:2",    // too many link fields
		"link=2",          // rate out of range
		"link=0.1:-4",     // negative stall
		"seed=abc",        // bad seed
		"seed=1:2",        // seed takes one value
		"delay=1.5",       // rate out of range
		"delay=-0.1",      // negative rate
		"delay=0.1:-5",    // negative duration
		"fence=0.1:-1",    // negative burst
	} {
		if _, err := ParseProfile(s); err == nil {
			t.Errorf("ParseProfile(%q) accepted", s)
		}
	}
}

func TestProfileStringRoundTrip(t *testing.T) {
	for _, s := range []string{
		"mild", "storm",
		"delay=0.01:20:40,reorder=0.1,fence=0.002:3,freeze=0.005:6,vault=0.01:24,link=0.003:128,seed=42",
		"reorder=0.5",
		"vault=1:1",
		"link=0.05:200",
	} {
		p, err := ParseProfile(s)
		if err != nil {
			t.Fatalf("ParseProfile(%q): %v", s, err)
		}
		q, err := ParseProfile(p.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", p.String(), err)
		}
		if p != q {
			t.Fatalf("round trip %q: %+v != %+v", s, p, q)
		}
	}
}

func TestNewEngineDisabled(t *testing.T) {
	e, err := NewEngine(Profile{}, 32)
	if err != nil || e != nil {
		t.Fatalf("NewEngine(zero) = %v, %v", e, err)
	}
	if e.Enabled() {
		t.Fatal("nil engine claims enabled")
	}
}

func TestNewEngineInvalid(t *testing.T) {
	if _, err := NewEngine(Profile{DelayRate: 2}, 32); err == nil {
		t.Fatal("out-of-range rate accepted")
	}
}

func TestNewEngineNoVaults(t *testing.T) {
	e, err := NewEngine(Profile{VaultRate: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// VaultRate was the only stressor and it was zeroed, but the
	// profile was enabled at the call, so the engine exists and must
	// simply never emit a stall.
	if e == nil {
		t.Fatal("engine nil")
	}
	for now := sim.Cycle(0); now < 1000; now++ {
		e.Tick(now)
		if _, _, ok := e.TakeVaultStall(); ok {
			t.Fatal("vault stall with zero vaults")
		}
	}
}

func TestNilEngineSafe(t *testing.T) {
	var e *Engine
	e.Tick(0)
	if e.SubmitFrozen(0) || e.TakeFence() {
		t.Fatal("nil engine injected")
	}
	if _, _, ok := e.TakeVaultStall(); ok {
		t.Fatal("nil engine stalled a vault")
	}
	in := []hmc.Response{{Tag: 1}}
	if out := e.Filter(0, in); len(out) != 1 || out[0].Tag != 1 {
		t.Fatal("nil engine perturbed responses")
	}
	if e.HeldResponses() != 0 || e.Stats() != nil {
		t.Fatal("nil engine has state")
	}
}

// schedule runs an engine for cycles ticks against a synthetic
// response stream and serializes everything observable.
func schedule(e *Engine, cycles int) string {
	var b strings.Builder
	for now := sim.Cycle(0); now < sim.Cycle(cycles); now++ {
		e.Tick(now)
		if e.SubmitFrozen(now) {
			b.WriteString("F")
		}
		for e.TakeFence() {
			b.WriteString("f")
		}
		if v, until, ok := e.TakeVaultStall(); ok {
			b.WriteString("v")
			b.WriteString(strings.Repeat("-", v%3))
			_ = until
		}
		in := []hmc.Response{{Tag: uint64(2 * now)}, {Tag: uint64(2*now + 1)}}
		for _, r := range e.Filter(now, in) {
			b.WriteByte(byte('0' + r.Tag%10))
		}
	}
	return b.String()
}

// TestLinkStallRolls checks the link stressor fires only once links
// are declared, hands out in-range targets, and is consumed on read.
func TestLinkStallRolls(t *testing.T) {
	p := Profile{LinkRate: 0.2, LinkStall: 50, Seed: 7}
	e, err := NewEngine(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	// No SetLinks: the roll is gated off and nothing ever fires.
	for now := sim.Cycle(0); now < 100; now++ {
		e.Tick(now)
		if _, _, ok := e.TakeLinkStall(); ok {
			t.Fatal("link stall without declared links")
		}
	}
	if e.Stats().LinkStalls != 0 {
		t.Fatalf("stats counted %d stalls on a linkless engine", e.Stats().LinkStalls)
	}

	e, err = NewEngine(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	e.SetLinks(16)
	var taken uint64
	for now := sim.Cycle(0); now < 500; now++ {
		e.Tick(now)
		l, until, ok := e.TakeLinkStall()
		if !ok {
			continue
		}
		taken++
		if l < 0 || l >= 16 {
			t.Fatalf("stall target %d outside [0, 16)", l)
		}
		if until != now+50 {
			t.Fatalf("stall until %d, want %d", until, now+50)
		}
		// Consumed on read: a second Take in the same cycle is empty.
		if _, _, ok := e.TakeLinkStall(); ok {
			t.Fatal("link stall event not consumed on read")
		}
	}
	if taken == 0 {
		t.Fatal("rate 0.2 over 500 cycles never fired")
	}
	if got := e.Stats().LinkStalls; got != taken {
		t.Fatalf("stats count %d stalls, driver took %d", got, taken)
	}
}

func TestEngineDeterministic(t *testing.T) {
	p, err := ParseProfile("storm")
	if err != nil {
		t.Fatal(err)
	}
	p.Seed = 99
	a, err := NewEngine(p, 32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewEngine(p, 32)
	if err != nil {
		t.Fatal(err)
	}
	sa, sb := schedule(a, 2000), schedule(b, 2000)
	if sa != sb {
		t.Fatal("same profile+seed produced different schedules")
	}
	if *a.Stats() != *b.Stats() {
		t.Fatalf("stats diverged: %s vs %s", a.Stats(), b.Stats())
	}
	// A different seed must produce a different schedule.
	p.Seed = 100
	c, err := NewEngine(p, 32)
	if err != nil {
		t.Fatal(err)
	}
	if schedule(c, 2000) == sa {
		t.Fatal("different seed reproduced the schedule")
	}
}

func TestFilterDelayStormConserves(t *testing.T) {
	e, err := NewEngine(Profile{DelayRate: 1, DelayDuration: 4, DelayMax: 8, Seed: 7}, 0)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]bool)
	var sent int
	for now := sim.Cycle(0); now < 200; now++ {
		e.Tick(now)
		var in []hmc.Response
		if now < 50 {
			in = []hmc.Response{{Tag: uint64(now)}}
			sent++
		}
		for _, r := range e.Filter(now, in) {
			if seen[r.Tag] {
				t.Fatalf("response %d delivered twice", r.Tag)
			}
			seen[r.Tag] = true
		}
	}
	if e.HeldResponses() != 0 {
		t.Fatalf("%d responses still parked", e.HeldResponses())
	}
	if len(seen) != sent {
		t.Fatalf("delivered %d of %d responses", len(seen), sent)
	}
	if e.Stats().DelayedResponses == 0 || e.Stats().DelayStorms == 0 {
		t.Fatalf("storm never engaged: %s", e.Stats())
	}
}

func TestFilterReorderReverses(t *testing.T) {
	e, err := NewEngine(Profile{ReorderRate: 1, Seed: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	e.Tick(0)
	in := []hmc.Response{{Tag: 1}, {Tag: 2}, {Tag: 3}}
	out := e.Filter(0, in)
	if len(out) != 3 || out[0].Tag != 3 || out[2].Tag != 1 {
		t.Fatalf("batch not reversed: %v", out)
	}
	if e.Stats().ReorderedBatches != 1 {
		t.Fatalf("stats = %s", e.Stats())
	}
	// Single-response batches are never "reordered".
	e.Tick(1)
	if out := e.Filter(1, []hmc.Response{{Tag: 9}}); len(out) != 1 {
		t.Fatalf("singleton mangled: %v", out)
	}
	if e.Stats().ReorderedBatches != 1 {
		t.Fatalf("singleton counted as reordered: %s", e.Stats())
	}
}

func TestFenceBurstDebt(t *testing.T) {
	e, err := NewEngine(Profile{FenceRate: 1, FenceBurst: 3, Seed: 5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	e.Tick(0)
	n := 0
	for e.TakeFence() {
		n++
	}
	if n != 3 {
		t.Fatalf("burst drained %d fences, want 3", n)
	}
	if e.Stats().FencesInjected != 3 {
		t.Fatalf("stats = %s", e.Stats())
	}
}

func TestFreezeWindow(t *testing.T) {
	e, err := NewEngine(Profile{FreezeRate: 1, FreezeDuration: 5, Seed: 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	e.Tick(0)
	if !e.SubmitFrozen(0) {
		t.Fatal("freeze did not engage at rate 1")
	}
	frozen := 0
	for now := sim.Cycle(0); now < 100; now++ {
		if now > 0 {
			e.Tick(now)
		}
		if e.SubmitFrozen(now) {
			frozen++
		}
	}
	// Rate 1 re-arms the freeze as soon as the previous window ends, so
	// the submit stage is frozen essentially always.
	if frozen < 95 {
		t.Fatalf("frozen %d/100 cycles at rate 1", frozen)
	}
	if e.Stats().FreezeCycles == 0 {
		t.Fatalf("stats = %s", e.Stats())
	}
}

// TestCubeLinkStallRolls checks the intra-cube link stressor fires
// only once cube links are declared, hands out in-range targets, and
// is consumed on read.
func TestCubeLinkStallRolls(t *testing.T) {
	p := Profile{CubeLinkRate: 0.2, CubeLinkStall: 50, Seed: 7}
	e, err := NewEngine(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	// No SetCubeLinks (an ideal-cube driver): gated off.
	for now := sim.Cycle(0); now < 100; now++ {
		e.Tick(now)
		if _, _, ok := e.TakeCubeLinkStall(); ok {
			t.Fatal("cube link stall without declared cube links")
		}
	}
	if e.Stats().CubeLinkStalls != 0 {
		t.Fatalf("stats counted %d stalls on a cube-linkless engine", e.Stats().CubeLinkStalls)
	}

	e, err = NewEngine(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	e.SetCubeLinks(72)
	var taken uint64
	for now := sim.Cycle(0); now < 500; now++ {
		e.Tick(now)
		l, until, ok := e.TakeCubeLinkStall()
		if !ok {
			continue
		}
		taken++
		if l < 0 || l >= 72 {
			t.Fatalf("stall target %d outside [0, 72)", l)
		}
		if until != now+50 {
			t.Fatalf("stall until %d, want %d", until, now+50)
		}
		if _, _, ok := e.TakeCubeLinkStall(); ok {
			t.Fatal("cube link stall event not consumed on read")
		}
	}
	if taken == 0 {
		t.Fatal("rate 0.2 over 500 cycles never fired")
	}
	if got := e.Stats().CubeLinkStalls; got != taken {
		t.Fatalf("stats count %d stalls, driver took %d", got, taken)
	}
}

// TestCubeLinkReplayGating pins the RNG-stream compatibility argument:
// adding cubelink=... to a profile must not perturb the other
// stressors' schedule on a driver that never declares cube links
// (ideal cube), because the roll is gated off entirely.
func TestCubeLinkReplayGating(t *testing.T) {
	base, err := ParseProfile("storm")
	if err != nil {
		t.Fatal(err)
	}
	base.Seed = 11
	withCube := base
	withCube.CubeLinkRate = 0.5
	withCube.CubeLinkStall = 40

	a, err := NewEngine(base, 32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewEngine(withCube, 32)
	if err != nil {
		t.Fatal(err)
	}
	a.SetLinks(8)
	b.SetLinks(8)
	if sa, sb := schedule(a, 2000), schedule(b, 2000); sa != sb {
		t.Fatal("cubelink stressor perturbed the gated-off schedule")
	}
	if b.Stats().CubeLinkStalls != 0 {
		t.Fatalf("gated-off cubelink fired %d times", b.Stats().CubeLinkStalls)
	}
}
