package chaos

import (
	"testing"
)

// FuzzParseProfile asserts the parser's contract on arbitrary input:
// it never panics, accepted profiles always validate, and the
// canonical rendering round-trips to the identical profile (so cached
// experiment runs keyed by the rendering can reconstruct it).
func FuzzParseProfile(f *testing.F) {
	seeds := []string{
		"", "off", "none", "mild", "storm",
		"delay=0.01", "delay=0.01:20", "delay=0.01:20:40",
		"reorder=0.1", "fence=0.002:3", "freeze=0.005:6",
		"vault=0.01:24", "seed=42",
		"link=0.003:128", "cubelink=0.01:64", "cubelink=0.01",
		"link=0.003:128,cubelink=0.01:64,seed=9",
		"delay=0.01:20:40,reorder=0.1,fence=0.002:3,freeze=0.005:6,vault=0.01:24,seed=42",
		"delay=1.5", "delay=-1", "delay=0.1:a", "warp=0.1",
		"delay", "reorder=0.1:5", "seed=1:2", ",,,", "delay=NaN",
		"delay=1e-3", "vault=1:0",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParseProfile(s)
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("ParseProfile(%q) accepted an invalid profile %+v: %v", s, p, err)
		}
		rendered := p.String()
		q, err := ParseProfile(rendered)
		if err != nil {
			t.Fatalf("canonical rendering %q of %q does not parse: %v", rendered, s, err)
		}
		if p != q {
			t.Fatalf("round trip of %q: %+v != %+v", s, p, q)
		}
		if q.String() != rendered {
			t.Fatalf("rendering not a fixed point: %q -> %q", rendered, q.String())
		}
	})
}
