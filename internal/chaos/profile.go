// Package chaos implements a deterministic chaos scheduler for the MAC
// simulator: a composition of cross-layer stressors — response
// delay/reorder storms on the device return path, fence storms on the
// request path, ARQ backpressure bursts that freeze the submit stage,
// transient vault unavailability inside the HMC model, and transient
// link stalls on the inter-node NoC fabric — all driven
// by a sim.RNG stream so the same profile and seed reproduce the same
// adversarial schedule bit-for-bit. It composes with the link-level
// fault injectors from internal/hmc (CRC errors, link failures,
// poisoned responses): the chaos engine perturbs timing and ordering,
// the fault injectors corrupt packets, and the audit ledger
// (internal/audit) checks that the pipeline's conservation invariants
// survive both at once.
package chaos

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"mac3d/internal/sim"
)

// Profile configures the chaos engine. The zero value disables every
// stressor. Rates are per-cycle Bernoulli probabilities in [0, 1];
// durations and stalls are in cycles.
type Profile struct {
	// DelayRate starts a response delay storm: while it lasts, every
	// device response is held back 1..DelayMax extra cycles.
	DelayRate float64
	// DelayDuration is the length of one delay storm.
	DelayDuration sim.Cycle
	// DelayMax bounds the per-response extra hold time.
	DelayMax sim.Cycle
	// ReorderRate reverses the delivery order of a same-cycle
	// response batch.
	ReorderRate float64
	// FenceRate injects a burst of FenceBurst memory fences into the
	// request router, forcing the aggregator to drain mid-stream.
	FenceRate  float64
	FenceBurst int
	// FreezeRate starts an ARQ backpressure burst: the node's submit
	// stage is frozen for FreezeDuration cycles, backing transactions
	// up inside the coalescer.
	FreezeRate     float64
	FreezeDuration sim.Cycle
	// VaultRate makes one random vault transiently unavailable for
	// VaultStall cycles (models refresh overruns / repair cycles).
	VaultRate  float64
	VaultStall sim.Cycle
	// LinkRate freezes one random NoC link for LinkStall cycles
	// (models SerDes retraining / lane degradation on the inter-node
	// fabric). Only drivers with a routed NoC have links to stall; the
	// stressor is inert elsewhere.
	LinkRate  float64
	LinkStall sim.Cycle
	// CubeLinkRate freezes one random intra-cube fabric link for
	// CubeLinkStall cycles (models TSV/partial-lane faults inside the
	// stacked device). Only devices with a routed cube fabric have
	// intra-cube links; the stressor is inert elsewhere.
	CubeLinkRate  float64
	CubeLinkStall sim.Cycle
	// Seed seeds the engine's private RNG stream. Two runs with the
	// same workload seed but different chaos seeds see different
	// adversarial schedules.
	Seed uint64
}

// Enabled reports whether any stressor is active.
func (p Profile) Enabled() bool {
	return p.DelayRate > 0 || p.ReorderRate > 0 || p.FenceRate > 0 ||
		p.FreezeRate > 0 || p.VaultRate > 0 || p.LinkRate > 0 ||
		p.CubeLinkRate > 0
}

// withDefaults fills the durations a rate implies but the profile
// omitted, so `delay=0.01` alone is usable.
func (p Profile) withDefaults() Profile {
	if p.DelayRate > 0 {
		if p.DelayDuration <= 0 {
			p.DelayDuration = 16
		}
		if p.DelayMax <= 0 {
			p.DelayMax = 32
		}
	}
	if p.FenceRate > 0 && p.FenceBurst <= 0 {
		p.FenceBurst = 2
	}
	if p.FreezeRate > 0 && p.FreezeDuration <= 0 {
		p.FreezeDuration = 8
	}
	if p.VaultRate > 0 && p.VaultStall <= 0 {
		p.VaultStall = 32
	}
	if p.LinkRate > 0 && p.LinkStall <= 0 {
		p.LinkStall = 64
	}
	if p.CubeLinkRate > 0 && p.CubeLinkStall <= 0 {
		p.CubeLinkStall = 64
	}
	return p
}

// Validate rejects out-of-range configurations.
func (p Profile) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"delay", p.DelayRate}, {"reorder", p.ReorderRate},
		{"fence", p.FenceRate}, {"freeze", p.FreezeRate},
		{"vault", p.VaultRate}, {"link", p.LinkRate},
		{"cubelink", p.CubeLinkRate},
	} {
		// The inverted comparison also rejects NaN rates.
		if !(r.v >= 0 && r.v <= 1) {
			return fmt.Errorf("chaos: %s rate %g outside [0, 1]", r.name, r.v)
		}
	}
	for _, d := range []struct {
		name string
		v    sim.Cycle
	}{
		{"delay duration", p.DelayDuration}, {"delay max", p.DelayMax},
		{"freeze duration", p.FreezeDuration}, {"vault stall", p.VaultStall},
		{"link stall", p.LinkStall}, {"cube link stall", p.CubeLinkStall},
	} {
		if d.v < 0 {
			return fmt.Errorf("chaos: %s %d is negative", d.name, d.v)
		}
	}
	if p.FenceBurst < 0 {
		return fmt.Errorf("chaos: fence burst %d is negative", p.FenceBurst)
	}
	return nil
}

// String renders the profile in the canonical ParseProfile syntax;
// ParseProfile(p.String()) reproduces p exactly (after withDefaults).
func (p Profile) String() string {
	if !p.Enabled() {
		return "off"
	}
	var parts []string
	if p.DelayRate > 0 {
		parts = append(parts, fmt.Sprintf("delay=%g:%d:%d", p.DelayRate, p.DelayDuration, p.DelayMax))
	}
	if p.ReorderRate > 0 {
		parts = append(parts, fmt.Sprintf("reorder=%g", p.ReorderRate))
	}
	if p.FenceRate > 0 {
		parts = append(parts, fmt.Sprintf("fence=%g:%d", p.FenceRate, p.FenceBurst))
	}
	if p.FreezeRate > 0 {
		parts = append(parts, fmt.Sprintf("freeze=%g:%d", p.FreezeRate, p.FreezeDuration))
	}
	if p.VaultRate > 0 {
		parts = append(parts, fmt.Sprintf("vault=%g:%d", p.VaultRate, p.VaultStall))
	}
	if p.LinkRate > 0 {
		parts = append(parts, fmt.Sprintf("link=%g:%d", p.LinkRate, p.LinkStall))
	}
	if p.CubeLinkRate > 0 {
		parts = append(parts, fmt.Sprintf("cubelink=%g:%d", p.CubeLinkRate, p.CubeLinkStall))
	}
	if p.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", p.Seed))
	}
	return strings.Join(parts, ",")
}

// Presets returns the named built-in profiles, sorted by name.
func Presets() []string {
	names := make([]string, 0, len(presets))
	for n := range presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

var presets = map[string]Profile{
	"mild": {
		DelayRate: 0.002, DelayDuration: 12, DelayMax: 16,
		ReorderRate: 0.02,
		FenceRate:   0.0005, FenceBurst: 1,
		VaultRate: 0.001, VaultStall: 16,
	},
	"storm": {
		DelayRate: 0.02, DelayDuration: 32, DelayMax: 64,
		ReorderRate: 0.2,
		FenceRate:   0.005, FenceBurst: 4,
		FreezeRate: 0.01, FreezeDuration: 12,
		VaultRate: 0.01, VaultStall: 48,
	},
}

// ParseProfile parses the -chaos-profile syntax: either a preset name
// ("off", "mild", "storm") or a comma-separated stressor list
//
//	delay=RATE[:DURATION[:MAX]],reorder=RATE,fence=RATE[:BURST],
//	freeze=RATE[:DURATION],vault=RATE[:STALL],link=RATE[:STALL],
//	cubelink=RATE[:STALL],seed=N
//
// Omitted duration fields take per-stressor defaults. The empty string
// parses as the disabled profile.
func ParseProfile(s string) (Profile, error) {
	var p Profile
	s = strings.TrimSpace(s)
	switch s {
	case "", "off", "none":
		return p, nil
	}
	if preset, ok := presets[s]; ok {
		return preset.withDefaults(), nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return Profile{}, fmt.Errorf("chaos: %q is not key=value", part)
		}
		fields := strings.Split(v, ":")
		rate, err := strconv.ParseFloat(fields[0], 64)
		if err != nil && k != "seed" {
			return Profile{}, fmt.Errorf("chaos: bad %s rate %q: %w", k, fields[0], err)
		}
		cyc := func(i int) (sim.Cycle, error) {
			if i >= len(fields) {
				return 0, nil
			}
			n, err := strconv.ParseInt(fields[i], 10, 64)
			if err != nil {
				return 0, fmt.Errorf("chaos: bad %s field %q: %w", k, fields[i], err)
			}
			if n < 0 {
				return 0, fmt.Errorf("chaos: %s field %q is negative", k, fields[i])
			}
			return sim.Cycle(n), nil
		}
		switch k {
		case "delay":
			if len(fields) > 3 {
				return Profile{}, fmt.Errorf("chaos: delay takes at most rate:duration:max, got %q", v)
			}
			p.DelayRate = rate
			if p.DelayDuration, err = cyc(1); err != nil {
				return Profile{}, err
			}
			if p.DelayMax, err = cyc(2); err != nil {
				return Profile{}, err
			}
		case "reorder":
			if len(fields) > 1 {
				return Profile{}, fmt.Errorf("chaos: reorder takes only a rate, got %q", v)
			}
			p.ReorderRate = rate
		case "fence":
			if len(fields) > 2 {
				return Profile{}, fmt.Errorf("chaos: fence takes at most rate:burst, got %q", v)
			}
			p.FenceRate = rate
			if len(fields) > 1 {
				n, err := strconv.Atoi(fields[1])
				if err != nil {
					return Profile{}, fmt.Errorf("chaos: bad fence burst %q: %w", fields[1], err)
				}
				if n < 0 {
					return Profile{}, fmt.Errorf("chaos: fence burst %q is negative", fields[1])
				}
				p.FenceBurst = n
			}
		case "freeze":
			if len(fields) > 2 {
				return Profile{}, fmt.Errorf("chaos: freeze takes at most rate:duration, got %q", v)
			}
			p.FreezeRate = rate
			if p.FreezeDuration, err = cyc(1); err != nil {
				return Profile{}, err
			}
		case "vault":
			if len(fields) > 2 {
				return Profile{}, fmt.Errorf("chaos: vault takes at most rate:stall, got %q", v)
			}
			p.VaultRate = rate
			if p.VaultStall, err = cyc(1); err != nil {
				return Profile{}, err
			}
		case "link":
			if len(fields) > 2 {
				return Profile{}, fmt.Errorf("chaos: link takes at most rate:stall, got %q", v)
			}
			p.LinkRate = rate
			if p.LinkStall, err = cyc(1); err != nil {
				return Profile{}, err
			}
		case "cubelink":
			if len(fields) > 2 {
				return Profile{}, fmt.Errorf("chaos: cubelink takes at most rate:stall, got %q", v)
			}
			p.CubeLinkRate = rate
			if p.CubeLinkStall, err = cyc(1); err != nil {
				return Profile{}, err
			}
		case "seed":
			if len(fields) > 1 {
				return Profile{}, fmt.Errorf("chaos: seed takes one value, got %q", v)
			}
			n, err := strconv.ParseUint(fields[0], 10, 64)
			if err != nil {
				return Profile{}, fmt.Errorf("chaos: bad seed %q: %w", fields[0], err)
			}
			p.Seed = n
		default:
			return Profile{}, fmt.Errorf("chaos: unknown stressor %q (want delay, reorder, fence, freeze, vault, link, cubelink, seed)", k)
		}
	}
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return Profile{}, err
	}
	if !p.Enabled() {
		// Normalize: a profile with no active stressor (e.g. a dangling
		// seed, or all rates zero) is the disabled profile.
		return Profile{}, nil
	}
	return p, nil
}
