package cluster

import (
	"math"
	"time"
)

// Admission control. Each tenant (the X-Macd-Tenant request header;
// empty means the anonymous tenant) gets a token bucket refilled at
// its quota rate; a submission takes one token or is shed with 429 and
// a Retry-After telling the client when a token will exist. Admission
// happens before routing, so an over-quota tenant costs the cluster
// one map lookup — not a forwarded request, not a shard queue slot.

// bucket is one tenant's token bucket, guarded by Router.mu.
type bucket struct {
	quota  Quota
	tokens float64
	last   time.Time
}

// admitLocked charges one token to tenant, creating its bucket on
// first sight (r.mu held). Unlimited tenants always pass.
func (r *Router) admitLocked(tenant string) bool {
	q, ok := r.cfg.Tenants[tenant]
	if !ok {
		q = r.cfg.DefaultQuota
	}
	if !q.enabled() {
		return true
	}
	b := r.tenants[tenant]
	if b == nil {
		b = &bucket{quota: q, tokens: q.Burst, last: r.now()}
		r.tenants[tenant] = b
	}
	b.refill(r.now())
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

func (b *bucket) refill(now time.Time) {
	dt := now.Sub(b.last).Seconds()
	if dt > 0 {
		b.tokens = math.Min(b.quota.Burst, b.tokens+dt*b.quota.Rate)
		b.last = now
	}
}

// quotaRetryAfter estimates whole seconds until tenant's bucket holds
// a token again — the Retry-After served with a 429 quota rejection.
func (r *Router) quotaRetryAfter(tenant string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	b := r.tenants[tenant]
	if b == nil || !b.quota.enabled() {
		return 1
	}
	b.refill(r.now())
	deficit := 1 - b.tokens
	if deficit <= 0 {
		return 1
	}
	secs := int(math.Ceil(deficit / b.quota.Rate))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}
