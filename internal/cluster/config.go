// Package cluster is the shard/coordinator layer over the macd serving
// engine (internal/service): the piece that turns N independent
// daemons into one fault-tolerant simulation service.
//
// A Router owns a consistent-hash ring keyed on job-spec SHA-256 and
// forwards every submission to the shard owning its hash. Shards are
// health-checked (seeded jittered heartbeat probes, consecutive-failure
// eviction, re-admission on recovery); when a shard dies, the router
// eagerly fails accepted jobs over to the ring successor. Eager
// failover is safe because job identity is content-addressed: equal
// spec hash means a byte-identical report, so re-executing a job on
// another shard — even one that secretly completed on the dead shard —
// converges on exactly the same bytes. The worst case of a wrong
// failover decision is one redundant deterministic execution, never a
// divergent result.
//
// Shards complement the router with cross-instance read-through
// (PeerReadThrough): before executing, a shard consults its peers'
// content-addressed result stores, so a job re-routed after failover
// or resubmitted by a retrying client is served from wherever its
// bytes already live.
//
// The router also owns admission control: per-tenant token-bucket
// quotas shed load to 429 with a queue-depth-aware Retry-After before
// work ever reaches a shard.
package cluster

import (
	"fmt"
	"math"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Quota is one tenant's token-bucket admission budget: a sustained
// Rate of jobs per second with bursts up to Burst jobs. A zero Rate
// means unlimited.
type Quota struct {
	Rate  float64
	Burst float64
}

func (q Quota) enabled() bool { return q.Rate > 0 }

// Config parameterizes a cluster router.
type Config struct {
	// Shards lists the shard daemons' base URLs — the consistent-hash
	// ring members, in declaration order.
	Shards []string
	// VNodes is the number of virtual ring points per shard; more
	// points smooth the hash distribution (default 64).
	VNodes int
	// Heartbeat is the base health-probe period per shard
	// (default 500ms).
	Heartbeat time.Duration
	// HeartbeatJitter spreads each probe sleep uniformly in ±fraction
	// of itself from a seeded stream, de-synchronizing probe herds
	// (default 0.2).
	HeartbeatJitter float64
	// FailAfter is the consecutive probe-failure count that evicts a
	// shard from routing (default 3).
	FailAfter int
	// ReadmitAfter is the consecutive probe-success count that
	// re-admits an evicted shard (default 2).
	ReadmitAfter int
	// DefaultQuota is the admission budget of tenants without an
	// explicit entry in Tenants. The zero value is unlimited.
	DefaultQuota Quota
	// Tenants maps tenant name -> quota override.
	Tenants map[string]Quota
	// Seed seeds the deterministic jitter streams (0 means seed 1).
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.VNodes == 0 {
		c.VNodes = 64
	}
	if c.Heartbeat == 0 {
		c.Heartbeat = 500 * time.Millisecond
	}
	if c.HeartbeatJitter == 0 {
		c.HeartbeatJitter = 0.2
	}
	if c.FailAfter == 0 {
		c.FailAfter = 3
	}
	if c.ReadmitAfter == 0 {
		c.ReadmitAfter = 2
	}
	c.DefaultQuota = c.DefaultQuota.normalize()
	for name, q := range c.Tenants {
		c.Tenants[name] = q.normalize()
	}
	return c
}

// normalize canonicalizes a quota: a zero rate is unlimited (burst is
// meaningless and dropped), and a rate with no burst allows bursts of
// one second's worth of jobs (but at least 1).
func (q Quota) normalize() Quota {
	if q.Rate == 0 {
		return Quota{}
	}
	if q.Rate > 0 && q.Burst <= 0 {
		q.Burst = math.Max(q.Rate, 1)
	}
	return q
}

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	if len(c.Shards) == 0 {
		return fmt.Errorf("cluster: no shards configured")
	}
	seen := make(map[string]bool, len(c.Shards))
	for _, s := range c.Shards {
		if err := validateShardURL(s); err != nil {
			return err
		}
		if seen[s] {
			return fmt.Errorf("cluster: duplicate shard %q", s)
		}
		seen[s] = true
	}
	if c.VNodes < 1 || c.VNodes > 4096 {
		return fmt.Errorf("cluster: vnodes %d outside [1, 4096]", c.VNodes)
	}
	if c.Heartbeat < 0 {
		return fmt.Errorf("cluster: negative heartbeat %s", c.Heartbeat)
	}
	if !(c.HeartbeatJitter >= 0 && c.HeartbeatJitter <= 1) {
		return fmt.Errorf("cluster: heartbeat jitter %g outside [0, 1]", c.HeartbeatJitter)
	}
	if c.FailAfter < 1 {
		return fmt.Errorf("cluster: fail-after %d < 1", c.FailAfter)
	}
	if c.ReadmitAfter < 1 {
		return fmt.Errorf("cluster: readmit-after %d < 1", c.ReadmitAfter)
	}
	if err := c.DefaultQuota.validate("default"); err != nil {
		return err
	}
	for name, q := range c.Tenants {
		if name == "" {
			return fmt.Errorf("cluster: empty tenant name")
		}
		if strings.ContainsAny(name, ",:=| \t\n") {
			return fmt.Errorf("cluster: tenant name %q contains reserved characters", name)
		}
		if err := q.validate(name); err != nil {
			return err
		}
	}
	return nil
}

func (q Quota) validate(tenant string) error {
	if math.IsNaN(q.Rate) || math.IsInf(q.Rate, 0) || q.Rate < 0 {
		return fmt.Errorf("cluster: tenant %q rate %g is not a finite non-negative number", tenant, q.Rate)
	}
	if math.IsNaN(q.Burst) || math.IsInf(q.Burst, 0) || q.Burst < 0 {
		return fmt.Errorf("cluster: tenant %q burst %g is not a finite non-negative number", tenant, q.Burst)
	}
	if q.Rate > 0 && q.Burst < 1 {
		return fmt.Errorf("cluster: tenant %q burst %g < 1 would admit nothing", tenant, q.Burst)
	}
	return nil
}

func validateShardURL(s string) error {
	if strings.ContainsAny(s, ",| \t\n") {
		return fmt.Errorf("cluster: shard URL %q contains reserved characters", s)
	}
	u, err := url.Parse(s)
	if err != nil {
		return fmt.Errorf("cluster: shard URL %q: %w", s, err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return fmt.Errorf("cluster: shard URL %q is not an http(s)://host[:port] address", s)
	}
	return nil
}

// String renders the config in the canonical ParseConfig syntax;
// ParseConfig(c.String()) reproduces c exactly (after withDefaults).
func (c Config) String() string {
	parts := []string{
		"shards=" + strings.Join(c.Shards, "|"),
		fmt.Sprintf("vnodes=%d", c.VNodes),
		fmt.Sprintf("hb=%s", c.Heartbeat),
		fmt.Sprintf("jitter=%g", c.HeartbeatJitter),
		fmt.Sprintf("fail=%d", c.FailAfter),
		fmt.Sprintf("readmit=%d", c.ReadmitAfter),
	}
	if c.DefaultQuota.enabled() {
		parts = append(parts, fmt.Sprintf("quota=%g:%g", c.DefaultQuota.Rate, c.DefaultQuota.Burst))
	}
	names := make([]string, 0, len(c.Tenants))
	for name := range c.Tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		q := c.Tenants[name]
		parts = append(parts, fmt.Sprintf("tenant=%s:%g:%g", name, q.Rate, q.Burst))
	}
	if c.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", c.Seed))
	}
	return strings.Join(parts, ",")
}

// ParseConfig parses the -cluster-router syntax: a comma-separated
// key=value list
//
//	shards=URL|URL|...,vnodes=N,hb=DUR,jitter=F,fail=N,readmit=N,
//	quota=RATE:BURST,tenant=NAME:RATE:BURST,...,seed=N
//
// shards is mandatory; shard URLs are separated by "|". tenant may
// repeat, one entry per tenant. quota sets the default tenant budget
// (omitted means unlimited). Omitted tuning keys take the package
// defaults. It never panics, whatever the input (there is a fuzz
// target holding it to that).
func ParseConfig(s string) (Config, error) {
	var c Config
	sawShards := false
	for _, part := range strings.Split(strings.TrimSpace(s), ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return Config{}, fmt.Errorf("cluster: %q is not key=value", part)
		}
		switch k {
		case "shards":
			if sawShards {
				return Config{}, fmt.Errorf("cluster: shards given twice")
			}
			sawShards = true
			for _, u := range strings.Split(v, "|") {
				u = strings.TrimSpace(u)
				if u == "" {
					return Config{}, fmt.Errorf("cluster: empty shard URL in %q", v)
				}
				c.Shards = append(c.Shards, u)
			}
		case "vnodes":
			n, err := strconv.Atoi(v)
			if err != nil {
				return Config{}, fmt.Errorf("cluster: bad vnodes %q: %w", v, err)
			}
			c.VNodes = n
		case "hb":
			d, err := time.ParseDuration(v)
			if err != nil {
				return Config{}, fmt.Errorf("cluster: bad heartbeat %q: %w", v, err)
			}
			c.Heartbeat = d
		case "jitter":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return Config{}, fmt.Errorf("cluster: bad jitter %q: %w", v, err)
			}
			c.HeartbeatJitter = f
		case "fail":
			n, err := strconv.Atoi(v)
			if err != nil {
				return Config{}, fmt.Errorf("cluster: bad fail %q: %w", v, err)
			}
			c.FailAfter = n
		case "readmit":
			n, err := strconv.Atoi(v)
			if err != nil {
				return Config{}, fmt.Errorf("cluster: bad readmit %q: %w", v, err)
			}
			c.ReadmitAfter = n
		case "quota":
			q, err := parseQuota(v, "quota")
			if err != nil {
				return Config{}, err
			}
			c.DefaultQuota = q
		case "tenant":
			name, rest, ok := strings.Cut(v, ":")
			if !ok || name == "" {
				return Config{}, fmt.Errorf("cluster: tenant %q is not NAME:RATE[:BURST]", v)
			}
			q, err := parseQuota(rest, "tenant "+name)
			if err != nil {
				return Config{}, err
			}
			if c.Tenants == nil {
				c.Tenants = make(map[string]Quota)
			}
			if _, dup := c.Tenants[name]; dup {
				return Config{}, fmt.Errorf("cluster: tenant %q given twice", name)
			}
			c.Tenants[name] = q
		case "seed":
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return Config{}, fmt.Errorf("cluster: bad seed %q: %w", v, err)
			}
			c.Seed = n
		default:
			return Config{}, fmt.Errorf("cluster: unknown key %q (want shards, vnodes, hb, jitter, fail, readmit, quota, tenant, seed)", k)
		}
	}
	c = c.withDefaults()
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// parseQuota parses RATE[:BURST].
func parseQuota(v, what string) (Quota, error) {
	fields := strings.Split(v, ":")
	if len(fields) > 2 {
		return Quota{}, fmt.Errorf("cluster: %s %q takes at most RATE:BURST", what, v)
	}
	rate, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return Quota{}, fmt.Errorf("cluster: bad %s rate %q: %w", what, fields[0], err)
	}
	q := Quota{Rate: rate}
	if len(fields) == 2 {
		burst, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return Quota{}, fmt.Errorf("cluster: bad %s burst %q: %w", what, fields[1], err)
		}
		q.Burst = burst
	}
	return q.normalize(), nil
}
