package cluster

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestParseConfigFull(t *testing.T) {
	c, err := ParseConfig("shards=http://a:1|http://b:2,vnodes=32,hb=200ms,jitter=0.1,fail=2,readmit=4,quota=10:20,tenant=alice:5,tenant=bob:2:8,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{
		Shards:          []string{"http://a:1", "http://b:2"},
		VNodes:          32,
		Heartbeat:       200 * time.Millisecond,
		HeartbeatJitter: 0.1,
		FailAfter:       2,
		ReadmitAfter:    4,
		DefaultQuota:    Quota{Rate: 10, Burst: 20},
		Tenants:         map[string]Quota{"alice": {Rate: 5, Burst: 5}, "bob": {Rate: 2, Burst: 8}},
		Seed:            7,
	}
	if !reflect.DeepEqual(c, want) {
		t.Fatalf("got %+v, want %+v", c, want)
	}
}

func TestParseConfigDefaults(t *testing.T) {
	c, err := ParseConfig("shards=http://127.0.0.1:8080")
	if err != nil {
		t.Fatal(err)
	}
	if c.VNodes != 64 || c.Heartbeat != 500*time.Millisecond || c.HeartbeatJitter != 0.2 ||
		c.FailAfter != 3 || c.ReadmitAfter != 2 {
		t.Fatalf("defaults not applied: %+v", c)
	}
	if c.DefaultQuota.enabled() {
		t.Fatalf("default quota should be unlimited: %+v", c.DefaultQuota)
	}
}

func TestParseConfigErrors(t *testing.T) {
	for _, s := range []string{
		"",                                      // no shards
		"vnodes=8",                              // no shards
		"shards=",                               // empty shard
		"shards=http://a|",                      // empty shard in list
		"shards=ftp://a",                        // bad scheme
		"shards=http://",                        // no host
		"shards=http://a|http://a",              // duplicate
		"shards=http://a,shards=http://b",       // shards twice
		"shards=http://a,vnodes=-1",             // negative vnodes
		"shards=http://a,vnodes=99999",          // vnodes too large
		"shards=http://a,vnodes=x",              // bad int
		"shards=http://a,hb=fast",               // bad duration
		"shards=http://a,hb=-1s",                // negative duration
		"shards=http://a,jitter=2",              // jitter out of range
		"shards=http://a,jitter=-1",             // negative jitter
		"shards=http://a,fail=-1",               // negative fail
		"shards=http://a,readmit=-1",            // negative readmit
		"shards=http://a,quota=-1",              // negative rate
		"shards=http://a,quota=NaN",             // NaN rate
		"shards=http://a,quota=1:2:3",           // too many fields
		"shards=http://a,quota=5:0.5",           // burst < 1 admits nothing
		"shards=http://a,tenant=x",              // no rate
		"shards=http://a,tenant=:5",             // empty name
		"shards=http://a,tenant=a:1,tenant=a:2", // duplicate tenant
		"shards=http://a,seed=-1",               // negative seed
		"shards=http://a,boom=1",                // unknown key
		"shards=http://a,vnodes",                // not key=value
	} {
		if _, err := ParseConfig(s); err == nil {
			t.Errorf("ParseConfig(%q) succeeded, want error", s)
		}
	}
}

func TestConfigStringRoundTrip(t *testing.T) {
	for _, s := range []string{
		"shards=http://a:1",
		"shards=http://a:1|http://b:2|http://c:3,vnodes=16",
		"shards=http://a:1,quota=5,tenant=z:1,tenant=a:3:9,seed=42",
		"shards=http://a:1,hb=1h30m,jitter=1",
	} {
		c, err := ParseConfig(s)
		if err != nil {
			t.Fatalf("ParseConfig(%q): %v", s, err)
		}
		back, err := ParseConfig(c.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", c.String(), err)
		}
		if !reflect.DeepEqual(back, c) {
			t.Fatalf("round trip %q -> %+v -> %q -> %+v", s, c, c.String(), back)
		}
		if strings.Contains(c.String(), " ") {
			t.Fatalf("String() %q contains spaces", c.String())
		}
	}
}

func TestQuotaNormalize(t *testing.T) {
	if q := (Quota{Rate: 5}).normalize(); q.Burst != 5 {
		t.Fatalf("burst not defaulted to rate: %+v", q)
	}
	if q := (Quota{Rate: 0.5}).normalize(); q.Burst != 1 {
		t.Fatalf("sub-1 rate should default burst to 1: %+v", q)
	}
	if q := (Quota{Rate: 0, Burst: 9}).normalize(); q != (Quota{}) {
		t.Fatalf("unlimited quota should drop burst: %+v", q)
	}
}
