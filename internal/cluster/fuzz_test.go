package cluster

import (
	"reflect"
	"strings"
	"testing"
)

// FuzzParseConfig holds ParseConfig to the same contract as the other
// parser fuzz targets (service.ParseSpec, svcchaos.ParseProfile): it
// never panics, anything it accepts validates, and String() is a
// fixed point through re-parsing.
func FuzzParseConfig(f *testing.F) {
	for _, s := range []string{
		"",
		"shards=http://127.0.0.1:8080",
		"shards=http://a:1|http://b:2|http://c:3,vnodes=16,hb=200ms,jitter=0.1,fail=2,readmit=4,seed=7",
		"shards=http://a:1,quota=10:20,tenant=alice:5,tenant=bob:2:8",
		"shards=http://a:1,hb=1h30m,jitter=1",
		"shards=ftp://a", "shards=http://a|http://a", "vnodes=8",
		"shards=http://a,quota=NaN", "shards=http://a,tenant=:5",
		"shards=http://a,seed=18446744073709551615", ",,,",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		c, err := ParseConfig(s)
		if err != nil {
			return
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("ParseConfig(%q) returned invalid config %+v: %v", s, c, err)
		}
		back, err := ParseConfig(c.String())
		if err != nil {
			t.Fatalf("re-parsing String() %q of %q: %v", c.String(), s, err)
		}
		if !reflect.DeepEqual(back, c) {
			t.Fatalf("round trip: %q -> %+v -> %q -> %+v", s, c, c.String(), back)
		}
		if strings.ContainsAny(c.String(), " \t\n") {
			t.Fatalf("String() %q contains whitespace", c.String())
		}
	})
}
