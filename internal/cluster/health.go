package cluster

import (
	"context"
	"math/rand"
	"time"
)

// The health plane. Every shard gets one prober goroutine issuing
// /v1/healthz heartbeats on a seeded, jittered period (jitter
// de-synchronizes the probe herd; the seed keeps a test's probe
// schedule reproducible). FailAfter consecutive failures evict the
// shard from routing and trigger eager failover of its accepted jobs;
// ReadmitAfter consecutive successes re-admit it. Probers are the sole
// eviction authority — a failed forward walks to the ring successor
// for that one job but does not mark the shard down, so one slow
// request cannot flap cluster membership.

// shardHealth is one shard's probe-derived state, guarded by
// Router.mu.
type shardHealth struct {
	healthy bool
	fails   int // consecutive probe failures (while healthy)
	oks     int // consecutive probe successes (while evicted)
	probes  uint64
	lastErr string
}

// startProbers launches one heartbeat loop per shard.
func (r *Router) startProbers() {
	for i := range r.cfg.Shards {
		r.wg.Add(1)
		go r.probeLoop(i)
	}
}

func (r *Router) probeLoop(shard int) {
	defer r.wg.Done()
	seed := r.cfg.Seed
	if seed == 0 {
		seed = 1
	}
	// Each shard draws from its own stream so eviction order does not
	// depend on goroutine interleaving.
	rng := rand.New(rand.NewSource(int64(seed) + int64(shard)*0x9e3779b9 + 1))
	for {
		d := jittered(r.cfg.Heartbeat, r.cfg.HeartbeatJitter, rng)
		select {
		case <-r.stop:
			return
		case <-time.After(d):
		}
		r.probeOnce(shard)
	}
}

// probeOnce issues one heartbeat and applies the transition rules.
func (r *Router) probeOnce(shard int) {
	ctx, cancel := context.WithTimeout(context.Background(), r.probeTimeout())
	ok, draining, err := r.probes[shard].Healthz(ctx)
	cancel()
	up := err == nil && ok && !draining

	r.mu.Lock()
	h := &r.health[shard]
	h.probes++
	if err != nil {
		h.lastErr = err.Error()
	} else {
		h.lastErr = ""
	}
	var evicted bool
	switch {
	case up && h.healthy:
		h.fails = 0
	case up && !h.healthy:
		h.oks++
		if h.oks >= r.cfg.ReadmitAfter {
			h.healthy = true
			h.fails, h.oks = 0, 0
			r.nReadmissions++
		}
	case !up && h.healthy:
		h.fails++
		h.oks = 0
		if h.fails >= r.cfg.FailAfter {
			h.healthy = false
			h.oks = 0
			r.nEvictions++
			evicted = true
		}
	default: // !up && !h.healthy
		h.oks = 0
	}
	r.mu.Unlock()

	if evicted {
		// Eager failover: the shard is gone, so move its accepted jobs
		// to their ring successors now instead of waiting for clients
		// to poll into the failure. Content addressing makes this safe
		// even if the shard was only partitioned and finishes its copy:
		// both executions produce byte-identical reports.
		r.failoverFrom(shard)
	}
}

// probeTimeout bounds one heartbeat round trip: the probe period,
// clamped to [100ms, 2s]. The floor is deliberately independent of
// the period — a fast heartbeat sharpens *detection cadence*, but a
// live shard busy simulating must still get a reasonable window to
// answer, or load alone evicts it. A genuinely dead shard fails the
// probe instantly (connection refused), so the floor does not slow
// eviction; it only keeps a slow-but-alive shard in the ring.
func (r *Router) probeTimeout() time.Duration {
	d := r.cfg.Heartbeat
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	if d < 100*time.Millisecond {
		d = 100 * time.Millisecond
	}
	return d
}

// jittered spreads d uniformly in ±frac of itself from rng.
func jittered(d time.Duration, frac float64, rng *rand.Rand) time.Duration {
	if frac <= 0 {
		return d
	}
	out := time.Duration(float64(d) * (1 + frac*(2*rng.Float64()-1)))
	if out < time.Millisecond {
		out = time.Millisecond
	}
	return out
}

// healthySnapshot copies the per-shard healthy bits.
func (r *Router) healthySnapshot() []bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]bool, len(r.health))
	for i := range r.health {
		out[i] = r.health[i].healthy
	}
	return out
}

// HealthyShards returns how many shards are currently admitted to
// routing.
func (r *Router) HealthyShards() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for i := range r.health {
		if r.health[i].healthy {
			n++
		}
	}
	return n
}
