package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"mac3d/internal/service"
)

// Handler returns the router's HTTP API. It mirrors the macd daemon
// surface exactly — a service.Client pointed at a router cannot tell
// it from a single daemon — plus one cluster-only endpoint:
//
//	POST   /v1/jobs             submit (admission-controlled, routed)
//	GET    /v1/jobs             list router jobs, newest first
//	GET    /v1/jobs/{id}        one job's status (router ID namespace)
//	GET    /v1/jobs/{id}/result the finished job's report JSON
//	DELETE /v1/jobs/{id}        cancel, forwarded to the owning shard
//	GET    /v1/results/{hash}   cluster-wide content-addressed lookup
//	GET    /v1/healthz          router liveness + healthy shard count
//	GET    /v1/metrics          the cluster registry as "name value"
//	GET    /v1/cluster          topology: shards, health, ring spread
//
// Quota rejections answer 429 with a token-deficit Retry-After;
// cluster saturation (no healthy shard accepted the job) answers 503
// with a backlog-aware Retry-After.
func Handler(r *Router) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, req *http.Request) {
		body, err := io.ReadAll(io.LimitReader(req.Body, 1<<20+1))
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("cluster: reading body: %w", err))
			return
		}
		tenant := strings.TrimSpace(req.Header.Get("X-Macd-Tenant"))
		st, err := r.Submit(req.Context(), body, tenant)
		if err != nil {
			switch {
			case errors.Is(err, ErrQuotaExceeded):
				w.Header().Set("Retry-After", strconv.Itoa(r.quotaRetryAfter(tenant)))
				httpError(w, http.StatusTooManyRequests, err)
			case errors.Is(err, service.ErrQueueFull):
				// Every shard in the walk was saturated; pace the herd
				// by cluster backlog.
				w.Header().Set("Retry-After", strconv.Itoa(r.RetryAfterHint()))
				httpError(w, http.StatusTooManyRequests, err)
			case errors.Is(err, ErrNoShards), errors.Is(err, service.ErrDraining), errors.Is(err, service.ErrCircuitOpen):
				w.Header().Set("Retry-After", strconv.Itoa(r.RetryAfterHint()))
				httpError(w, http.StatusServiceUnavailable, err)
			case service.Retryable(err):
				w.Header().Set("Retry-After", strconv.Itoa(r.RetryAfterHint()))
				httpError(w, http.StatusServiceUnavailable, err)
			default:
				httpError(w, http.StatusBadRequest, err)
			}
			return
		}
		code := http.StatusAccepted
		if st.Cached {
			code = http.StatusOK
		}
		writeJSON(w, code, st)
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, r.Jobs())
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, req *http.Request) {
		st, err := r.Job(req.Context(), req.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, req *http.Request) {
		data, err := r.Result(req.Context(), req.PathValue("id"))
		if err != nil {
			switch {
			case errors.Is(err, service.ErrUnknownJob):
				httpError(w, http.StatusNotFound, err)
			case errors.Is(err, service.ErrNotFinished):
				httpError(w, http.StatusConflict, err)
			case errors.Is(err, ErrNoShards):
				w.Header().Set("Retry-After", strconv.Itoa(r.RetryAfterHint()))
				httpError(w, http.StatusServiceUnavailable, err)
			default:
				httpError(w, http.StatusUnprocessableEntity, err)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(data)
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, req *http.Request) {
		canceled, err := r.Cancel(req.Context(), req.PathValue("id"))
		if err != nil {
			if errors.Is(err, service.ErrUnknownJob) {
				httpError(w, http.StatusNotFound, err)
				return
			}
			httpError(w, http.StatusBadGateway, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"canceled": canceled})
	})
	mux.HandleFunc("GET /v1/results/{hash}", func(w http.ResponseWriter, req *http.Request) {
		data, ok := r.ResultByHash(req.Context(), req.PathValue("hash"))
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("cluster: no stored result for hash %q", req.PathValue("hash")))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(data)
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"ok":             true,
			"draining":       false,
			"shards":         len(r.cfg.Shards),
			"shards_healthy": r.HealthyShards(),
		})
	})
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		var b strings.Builder
		for _, m := range r.reg.Snapshot() {
			fmt.Fprintf(&b, "%s %g\n", m.Name, m.Value)
		}
		io.WriteString(w, b.String())
	})
	mux.HandleFunc("GET /v1/cluster", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, r.Topology())
	})
	return mux
}

// ShardInfo is one shard's row in the /v1/cluster topology.
type ShardInfo struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	Fails   int    `json:"fails,omitempty"`
	Probes  uint64 `json:"probes"`
	LastErr string `json:"last_err,omitempty"`
	VNodes  int    `json:"vnodes"`
}

// Topology is the /v1/cluster response: the ring membership with live
// health and counters.
type Topology struct {
	Shards     []ShardInfo `json:"shards"`
	Jobs       int         `json:"jobs"`
	Failovers  uint64      `json:"failovers"`
	Evictions  uint64      `json:"evictions"`
	Readmitted uint64      `json:"readmissions"`
}

// Topology snapshots the cluster's membership and health.
func (r *Router) Topology() Topology {
	spread := r.ring.spread()
	r.mu.Lock()
	defer r.mu.Unlock()
	t := Topology{
		Jobs:       len(r.jobs),
		Failovers:  r.nFailovers,
		Evictions:  r.nEvictions,
		Readmitted: r.nReadmissions,
	}
	for i, u := range r.cfg.Shards {
		h := r.health[i]
		t.Shards = append(t.Shards, ShardInfo{
			URL: u, Healthy: h.healthy, Fails: h.fails,
			Probes: h.probes, LastErr: h.lastErr, VNodes: spread[i],
		})
	}
	return t
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
