package cluster

import (
	"context"
	"time"

	"mac3d/internal/service"
)

// PeerReadThrough builds the shard-side half of the cluster's result
// sharing: a service.Config.ResultLookup hook that consults each
// peer's content-addressed store (GET /v1/results/{hash}) before the
// local worker executes a job. A job re-routed after failover, or
// resubmitted by a retrying client to a different shard, is then
// served the bytes that already exist somewhere in the cluster instead
// of being recomputed.
//
// The hook runs on a worker goroutine with no service lock held, but
// it still sits on the execution path — so it must fail fast. Each
// peer gets one attempt under a short timeout and its own circuit
// breaker: a dead peer costs one dial timeout once, then fails in
// microseconds until its cooldown. Any error is a miss; the worst case
// of a slow or broken peer plane is local recomputation, which
// determinism makes byte-identical anyway.
func PeerReadThrough(peers []string) func(hash string) ([]byte, bool) {
	return PeerReadThroughTimeout(peers, 250*time.Millisecond)
}

// PeerReadThroughTimeout is PeerReadThrough with an explicit per-peer
// timeout, for tests and unusually slow links.
func PeerReadThroughTimeout(peers []string, perPeer time.Duration) func(hash string) ([]byte, bool) {
	if len(peers) == 0 {
		return nil
	}
	clients := make([]*service.Client, 0, len(peers))
	for _, p := range peers {
		clients = append(clients, &service.Client{
			BaseURL:        p,
			Breaker:        &service.Breaker{FailureThreshold: 2, Cooldown: 2 * time.Second},
			AttemptTimeout: perPeer,
		})
	}
	return func(hash string) ([]byte, bool) {
		for _, c := range clients {
			ctx, cancel := context.WithTimeout(context.Background(), perPeer)
			data, err := c.ResultByHash(ctx, hash)
			cancel()
			if err == nil && len(data) > 0 {
				return data, true
			}
		}
		return nil, false
	}
}
