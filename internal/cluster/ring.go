package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
)

// ring is a consistent-hash ring over the configured shards. Each
// shard contributes VNodes points (SHA-256 of "url#i"), and a job lands
// on the first point clockwise from its spec hash. Membership is
// static — the ring is built once from the config and never mutated —
// so ownership is a pure function of (config, hash). Health is applied
// at routing time instead: Successors returns every shard in ring-walk
// order and the router picks the first healthy one, which keeps the
// walk deterministic and makes failover targets predictable (the ring
// successor), exactly what the byte-identity ablation checks.
type ring struct {
	points []ringPoint
	shards int
}

type ringPoint struct {
	pos   uint64
	shard int
}

func newRing(shards []string, vnodes int) *ring {
	r := &ring{shards: len(shards)}
	r.points = make([]ringPoint, 0, len(shards)*vnodes)
	for i, url := range shards {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{pos: ringHash(url + "#" + strconv.Itoa(v)), shard: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		p, q := r.points[a], r.points[b]
		if p.pos != q.pos {
			return p.pos < q.pos
		}
		// Ties (astronomically rare) break by shard index so the order
		// is still total and deterministic.
		return p.shard < q.shard
	})
	return r
}

// ringHash maps a key to a ring position: the first 8 bytes of its
// SHA-256, the same family of hash that addresses job content.
func ringHash(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

// jobPos maps a hex spec hash onto the ring. Spec hashes are SHA-256
// hex, so the leading 16 hex digits are already a uniform uint64; a
// malformed hash (only reachable through hand-built requests) still
// routes deterministically by re-hashing the string.
func jobPos(specHash string) uint64 {
	if len(specHash) >= 16 {
		if v, err := strconv.ParseUint(specHash[:16], 16, 64); err == nil {
			return v
		}
	}
	return ringHash(specHash)
}

// owner returns the shard owning a spec hash: the first ring point at
// or clockwise after the hash position.
func (r *ring) owner(specHash string) int {
	return r.points[r.search(jobPos(specHash))].shard
}

// successors returns every shard exactly once, in ring-walk order
// starting at the spec hash's owner. Index 0 is the owner; index 1 is
// the failover target; and so on. The router forwards to the first
// healthy entry.
func (r *ring) successors(specHash string) []int {
	out := make([]int, 0, r.shards)
	seen := make([]bool, r.shards)
	start := r.search(jobPos(specHash))
	for i := 0; i < len(r.points) && len(out) < r.shards; i++ {
		s := r.points[(start+i)%len(r.points)].shard
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// search finds the index of the first point at or after pos, wrapping.
func (r *ring) search(pos uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= pos })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// spread returns per-shard point counts — a distribution diagnostic
// for tests and the /v1/cluster endpoint.
func (r *ring) spread() []int {
	counts := make([]int, r.shards)
	for _, p := range r.points {
		counts[p.shard]++
	}
	return counts
}

func (r *ring) String() string {
	return fmt.Sprintf("ring{shards: %d, points: %d}", r.shards, len(r.points))
}
