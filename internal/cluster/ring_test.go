package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"reflect"
	"testing"
)

func testHash(i int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("job-%d", i)))
	return hex.EncodeToString(sum[:])
}

func TestRingDeterministic(t *testing.T) {
	shards := []string{"http://a", "http://b", "http://c"}
	r1, r2 := newRing(shards, 64), newRing(shards, 64)
	for i := 0; i < 200; i++ {
		h := testHash(i)
		if r1.owner(h) != r2.owner(h) {
			t.Fatalf("owner(%s) differs between identically built rings", h)
		}
		if !reflect.DeepEqual(r1.successors(h), r2.successors(h)) {
			t.Fatalf("successors(%s) differ between identically built rings", h)
		}
	}
}

func TestRingSuccessorsCoverAllShards(t *testing.T) {
	shards := []string{"http://a", "http://b", "http://c", "http://d"}
	r := newRing(shards, 32)
	for i := 0; i < 100; i++ {
		h := testHash(i)
		succ := r.successors(h)
		if len(succ) != len(shards) {
			t.Fatalf("successors(%s) = %v, want all %d shards", h, succ, len(shards))
		}
		if succ[0] != r.owner(h) {
			t.Fatalf("successors[0] = %d, owner = %d", succ[0], r.owner(h))
		}
		seen := make(map[int]bool)
		for _, s := range succ {
			if seen[s] {
				t.Fatalf("shard %d appears twice in %v", s, succ)
			}
			seen[s] = true
		}
	}
}

func TestRingDistribution(t *testing.T) {
	shards := []string{"http://a", "http://b", "http://c"}
	r := newRing(shards, 64)
	counts := make([]int, len(shards))
	const n = 3000
	for i := 0; i < n; i++ {
		counts[r.owner(testHash(i))]++
	}
	// With 64 vnodes per shard the split should be roughly even; allow
	// a generous band so the test pins balance, not exact percentages.
	for i, c := range counts {
		if c < n/len(shards)/2 || c > n*2/len(shards) {
			t.Fatalf("shard %d owns %d of %d hashes (counts %v): ring is badly unbalanced", i, c, n, counts)
		}
	}
}

func TestRingOwnerStableUnderMembership(t *testing.T) {
	// Consistent hashing's point: adding a shard must not reshuffle
	// everything. Most hashes keep their owner URL when a fourth shard
	// joins.
	three := []string{"http://a", "http://b", "http://c"}
	four := append(append([]string{}, three...), "http://d")
	r3, r4 := newRing(three, 64), newRing(four, 64)
	const n = 2000
	moved := 0
	for i := 0; i < n; i++ {
		h := testHash(i)
		if three[r3.owner(h)] != four[r4.owner(h)] {
			moved++
		}
	}
	// Ideal is 1/4 moved; fail only on gross reshuffling.
	if moved > n/2 {
		t.Fatalf("%d of %d hashes moved when one shard joined (want ~%d)", moved, n, n/4)
	}
}

func TestJobPosMalformedHash(t *testing.T) {
	// Hand-built requests can carry arbitrary strings where a spec
	// hash belongs; routing must stay total and deterministic.
	for _, h := range []string{"", "zz", "not-a-hash", testHash(1)[:10]} {
		if jobPos(h) != jobPos(h) {
			t.Fatalf("jobPos(%q) is not deterministic", h)
		}
	}
	r := newRing([]string{"http://a", "http://b"}, 16)
	if o := r.owner("definitely-not-hex"); o < 0 || o > 1 {
		t.Fatalf("owner of malformed hash = %d", o)
	}
}
