package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"mac3d/internal/obs"
	"mac3d/internal/service"
)

// Sentinel errors of the router's submission path.
var (
	// ErrNoShards rejects a call because no healthy shard accepted it
	// (HTTP 503 — the cluster is down or fully saturated).
	ErrNoShards = errors.New("cluster: no healthy shard available")
	// ErrQuotaExceeded rejects a submission at admission control: the
	// tenant's token bucket is empty (HTTP 429).
	ErrQuotaExceeded = errors.New("cluster: tenant quota exceeded")
)

// Router is the cluster coordinator: it owns the consistent-hash ring,
// the health plane, per-tenant admission control and the job table
// mapping router-scoped job IDs onto shard executions. Its HTTP
// surface (Handler) mirrors the macd daemon API exactly, so a
// service.Client pointed at a router works unmodified — macload, the
// experiments harness and every existing tool speak to a cluster the
// same way they speak to one daemon.
//
// The router's core invariant is exactly-one-terminal: every accepted
// job transitions to exactly one terminal state (done, failed or
// canceled), recorded once in the job table and immutable afterwards.
// Failover may re-execute a job on another shard, but because job
// identity is content-addressed and execution is deterministic, every
// execution of the same spec yields byte-identical bytes — so however
// many shards end up running a job, the single terminal record is the
// same one.
type Router struct {
	cfg  Config
	ring *ring
	reg  *obs.Registry

	// clients forward API calls per shard (retry + breaker); probes
	// are bare single-attempt clients for the health plane.
	clients []*service.Client
	probes  []*service.Client

	mu      sync.Mutex
	health  []shardHealth
	jobs    map[string]*rjob   // router job ID -> job
	byHash  map[string]*rjob   // spec hash -> job (router-level coalescing)
	order   []*rjob            // insertion order, for bounded retention
	tenants map[string]*bucket // tenant name -> admission bucket
	nextID  uint64

	nSubmits      uint64
	nAdmitRejects uint64
	nFailovers    uint64
	nForwardErrs  uint64
	nEvictions    uint64
	nReadmissions uint64
	nSpills       uint64

	stop chan struct{}
	wg   sync.WaitGroup
	// now is the admission-control clock, swappable in tests.
	now func() time.Time
}

// maxRetainedJobs bounds the router job table: beyond it, the oldest
// terminal jobs are retired (their IDs then answer 404, like a
// daemon's own retention limit).
const maxRetainedJobs = 4096

// rjob is the router-side record of one accepted job.
type rjob struct {
	id        string
	hash      string
	canonical []byte // canonical spec bytes: the failover replay payload
	tenant    string
	kind      service.Kind
	submitted time.Time

	mu        sync.Mutex
	shard     int    // current executing shard
	shardID   string // job ID on that shard
	state     service.State
	terminal  bool
	result    []byte
	errMsg    string
	cached    bool
	coalesced bool
	failovers int
}

// NewRouter builds a router over cfg's shards and starts the health
// probers. Close releases them.
func NewRouter(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := &Router{
		cfg:     cfg,
		ring:    newRing(cfg.Shards, cfg.VNodes),
		reg:     obs.NewRegistry(),
		jobs:    make(map[string]*rjob),
		byHash:  make(map[string]*rjob),
		tenants: make(map[string]*bucket),
		health:  make([]shardHealth, len(cfg.Shards)),
		stop:    make(chan struct{}),
		now:     time.Now,
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	for i, u := range cfg.Shards {
		// Forward clients retry once with a short backoff — the walk to
		// the ring successor is the real retry — and share a per-shard
		// breaker so a dead shard fails fast instead of eating a dial
		// timeout per job.
		r.clients = append(r.clients, &service.Client{
			BaseURL: u,
			Retry: service.RetryPolicy{
				MaxAttempts: 2, BaseDelay: 20 * time.Millisecond,
				MaxDelay: 200 * time.Millisecond, Multiplier: 2,
				Jitter: 0.2, Seed: seed + uint64(i) + 1,
			},
			Breaker:        &service.Breaker{FailureThreshold: 3, Cooldown: 500 * time.Millisecond},
			AttemptTimeout: 10 * time.Second,
		})
		r.probes = append(r.probes, &service.Client{BaseURL: u})
	}
	for i := range r.health {
		r.health[i].healthy = true
	}
	r.registerMetrics()
	r.startProbers()
	return r, nil
}

// Close stops the health probers. In-flight forwards finish on their
// own; shard daemons are not touched.
func (r *Router) Close() {
	select {
	case <-r.stop:
	default:
		close(r.stop)
	}
	r.wg.Wait()
}

// Config returns the router's effective (defaulted) configuration.
func (r *Router) Config() Config { return r.cfg }

// Registry exposes the router metrics registry.
func (r *Router) Registry() *obs.Registry { return r.reg }

func (r *Router) registerMetrics() {
	get := func(f func() float64) func() float64 {
		return func() float64 { r.mu.Lock(); defer r.mu.Unlock(); return f() }
	}
	r.reg.Func("cluster.submits", get(func() float64 { return float64(r.nSubmits) }))
	r.reg.Func("cluster.admission_rejects", get(func() float64 { return float64(r.nAdmitRejects) }))
	r.reg.Func("cluster.failovers", get(func() float64 { return float64(r.nFailovers) }))
	r.reg.Func("cluster.forward_errors", get(func() float64 { return float64(r.nForwardErrs) }))
	r.reg.Func("cluster.evictions", get(func() float64 { return float64(r.nEvictions) }))
	r.reg.Func("cluster.readmissions", get(func() float64 { return float64(r.nReadmissions) }))
	r.reg.Func("cluster.spills", get(func() float64 { return float64(r.nSpills) }))
	r.reg.Func("cluster.jobs", get(func() float64 { return float64(len(r.jobs)) }))
	r.reg.Func("cluster.shards_healthy", func() float64 { return float64(r.HealthyShards()) })
	r.reg.Func("cluster.shards", func() float64 { return float64(len(r.cfg.Shards)) })
}

// Submit validates, admits and routes one raw spec submission for
// tenant, returning a router-scoped job status.
func (r *Router) Submit(ctx context.Context, data []byte, tenant string) (service.JobStatus, error) {
	spec, err := service.ParseSpec(data)
	if err != nil {
		return service.JobStatus{}, err
	}
	canonical, err := spec.Canonical()
	if err != nil {
		return service.JobStatus{}, err
	}
	hash, err := spec.Hash()
	if err != nil {
		return service.JobStatus{}, err
	}

	r.mu.Lock()
	if !r.admitLocked(tenant) {
		r.nAdmitRejects++
		r.mu.Unlock()
		return service.JobStatus{}, ErrQuotaExceeded
	}
	r.nSubmits++
	// Router-level coalescing: an identical spec already in the table
	// rides the existing execution (or serves the stored terminal) —
	// the cluster analogue of the daemon's single-flight.
	if j := r.byHash[hash]; j != nil {
		r.mu.Unlock()
		st := r.status(j)
		// The repeat itself is a hit: a live twin means this submit
		// coalesced onto its execution; a done twin is a cache serve.
		switch {
		case st.State == service.StateDone:
			st.Cached = true
		case !st.State.Terminal():
			st.Coalesced = true
		}
		return st, nil
	}
	r.nextID++
	j := &rjob{
		id:        fmt.Sprintf("r-%08d", r.nextID),
		hash:      hash,
		canonical: canonical,
		tenant:    tenant,
		kind:      spec.Kind,
		submitted: r.now(),
		shard:     -1,
		state:     service.StateQueued,
	}
	r.jobs[j.id] = j
	r.byHash[hash] = j
	r.order = append(r.order, j)
	r.retireLocked()
	r.mu.Unlock()

	if err := r.forward(ctx, j, -1); err != nil {
		// Nothing accepted the job; withdraw it so "accepted" remains
		// synonymous with "will reach a terminal state".
		r.mu.Lock()
		delete(r.jobs, j.id)
		if r.byHash[hash] == j {
			delete(r.byHash, hash)
		}
		for i, o := range r.order {
			if o == j {
				r.order = append(r.order[:i], r.order[i+1:]...)
				break
			}
		}
		r.mu.Unlock()
		return service.JobStatus{}, err
	}
	return r.status(j), nil
}

// forward places j on the first healthy shard in ring order, skipping
// exclude (the shard it just failed over from). A transport-dead or
// queue-full shard advances the walk; a spec rejection is final.
func (r *Router) forward(ctx context.Context, j *rjob, exclude int) error {
	healthy := r.healthySnapshot()
	var lastErr error
	tried := 0
	for _, shard := range r.ring.successors(j.hash) {
		if shard == exclude || !healthy[shard] {
			continue
		}
		tried++
		st, err := r.clients[shard].SubmitJSON(ctx, j.canonical)
		if err != nil {
			r.mu.Lock()
			r.nForwardErrs++
			if errors.Is(err, service.ErrQueueFull) {
				// Ownership spill: the owner is alive but saturated, so
				// the job lands on the successor. Content addressing
				// keeps this safe — any shard computes the same bytes.
				r.nSpills++
			}
			r.mu.Unlock()
			lastErr = err
			if retryableForward(err) {
				continue
			}
			return err
		}
		j.mu.Lock()
		j.shard = shard
		j.shardID = st.ID
		j.cached = j.cached || st.Cached
		j.coalesced = j.coalesced || st.Coalesced
		r.observeLocked(j, st)
		j.mu.Unlock()
		return nil
	}
	if lastErr == nil {
		lastErr = ErrNoShards
	}
	if tried == 0 {
		return fmt.Errorf("%w (%d shards, all evicted)", ErrNoShards, len(r.cfg.Shards))
	}
	return lastErr
}

// retryableForward reports whether a forward failure should advance
// the ring walk: transport failures, breaker rejections, backpressure
// and drain move on to the successor; spec rejections do not.
func retryableForward(err error) bool {
	// Anything the client's own retry layer classifies as transient is
	// a shard-availability problem, not a caller problem.
	return service.Retryable(err)
}

// observeLocked folds a shard-reported status into j (j.mu held).
// Terminal states latch: the first terminal observation wins and later
// ones are ignored, which is what makes the terminal record unique.
func (r *Router) observeLocked(j *rjob, st service.JobStatus) {
	if j.terminal {
		return
	}
	j.state = st.State
	j.errMsg = st.Error
	if st.State.Terminal() {
		j.terminal = true
	}
}

// status renders j as a requester-visible JobStatus under the router's
// ID namespace.
func (r *Router) status(j *rjob) service.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return service.JobStatus{
		ID:          j.id,
		Hash:        j.hash,
		Kind:        j.kind,
		State:       j.state,
		Cached:      j.cached,
		Coalesced:   j.coalesced,
		Error:       j.errMsg,
		Recovered:   j.failovers > 0,
		SubmittedAt: j.submitted,
	}
}

// Job returns one router job's status, refreshing non-terminal jobs
// from their shard (and lazily failing over if the shard lost them).
func (r *Router) Job(ctx context.Context, id string) (service.JobStatus, error) {
	j := r.lookup(id)
	if j == nil {
		return service.JobStatus{}, service.ErrUnknownJob
	}
	r.refresh(ctx, j)
	return r.status(j), nil
}

// Jobs lists the router's retained jobs, newest first.
func (r *Router) Jobs() []service.JobStatus {
	r.mu.Lock()
	jobs := make([]*rjob, len(r.order))
	copy(jobs, r.order)
	r.mu.Unlock()
	out := make([]service.JobStatus, 0, len(jobs))
	for i := len(jobs) - 1; i >= 0; i-- {
		out = append(out, r.status(jobs[i]))
	}
	return out
}

func (r *Router) lookup(id string) *rjob {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.jobs[id]
}

// refresh polls j's shard for its current state. A shard that no
// longer knows the job (restarted without its journal) or cannot be
// reached while evicted triggers a lazy failover.
func (r *Router) refresh(ctx context.Context, j *rjob) {
	j.mu.Lock()
	if j.terminal || j.shard < 0 {
		j.mu.Unlock()
		return
	}
	shard, shardID := j.shard, j.shardID
	j.mu.Unlock()

	st, err := r.clients[shard].Job(ctx, shardID)
	if err == nil {
		j.mu.Lock()
		r.observeLocked(j, st)
		j.mu.Unlock()
		return
	}
	if errors.Is(err, service.ErrUnknownJob) {
		// The shard is alive but lost the job (journalless restart):
		// re-place it immediately, on any healthy shard including this
		// one.
		r.failover(ctx, j, -1)
		return
	}
	if !r.shardHealthy(shard) {
		// The prober already evicted the shard; eager failover may be
		// racing us, but failover() serializes per job.
		r.failover(ctx, j, shard)
	}
	// Otherwise: transient error against a healthy shard — keep the
	// job where it is and let the next poll retry.
}

func (r *Router) shardHealthy(shard int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.health[shard].healthy
}

// failover re-places one non-terminal job away from exclude. Safe to
// call concurrently (per-job mutex serializes) and safe to call
// spuriously: re-submitting a content-addressed spec to a shard that
// already ran it coalesces or cache-hits, it never forks the result.
func (r *Router) failover(ctx context.Context, j *rjob, exclude int) {
	j.mu.Lock()
	if j.terminal {
		j.mu.Unlock()
		return
	}
	j.mu.Unlock()

	if err := r.forward(ctx, j, exclude); err != nil {
		// No healthy shard right now. The job stays on its dead shard's
		// books; the next poll or eviction retries. It is still
		// "accepted": the canonical bytes are retained and will be
		// re-placed as soon as a shard is admitted.
		return
	}
	j.mu.Lock()
	j.failovers++
	j.mu.Unlock()
	r.mu.Lock()
	r.nFailovers++
	r.mu.Unlock()
}

// failoverFrom eagerly re-places every non-terminal job accepted on a
// just-evicted shard onto its ring successor.
func (r *Router) failoverFrom(shard int) {
	r.mu.Lock()
	var victims []*rjob
	for _, j := range r.jobs {
		j.mu.Lock()
		if !j.terminal && j.shard == shard {
			victims = append(victims, j)
		}
		j.mu.Unlock()
	}
	r.mu.Unlock()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, j := range victims {
		r.failover(ctx, j, shard)
	}
}

// Result returns a finished job's report bytes, fetching them from the
// executing shard (or, if it died first, from any peer's content-
// addressed store — and as a last resort by deterministic
// re-execution on a healthy shard).
func (r *Router) Result(ctx context.Context, id string) ([]byte, error) {
	j := r.lookup(id)
	if j == nil {
		return nil, service.ErrUnknownJob
	}
	r.refresh(ctx, j)

	j.mu.Lock()
	state, errMsg := j.state, j.errMsg
	if j.result != nil {
		data := j.result
		j.mu.Unlock()
		return data, nil
	}
	shard, shardID := j.shard, j.shardID
	j.mu.Unlock()

	switch state {
	case service.StateFailed, service.StateCanceled:
		return nil, fmt.Errorf("cluster: job %s %s: %s", id, state, errMsg)
	case service.StateDone:
	default:
		return nil, service.ErrNotFinished
	}

	if shard >= 0 {
		if data, err := r.clients[shard].Result(ctx, shardID); err == nil {
			r.storeResult(j, data)
			return data, nil
		}
	}
	// The executing shard is gone; any peer that saw this hash can
	// serve the identical bytes.
	if data, ok := r.resultFromPeers(ctx, j.hash, shard); ok {
		r.storeResult(j, data)
		return data, nil
	}
	// Last resort: recompute. Determinism makes this transparent — the
	// bytes are the ones the dead shard would have served.
	data, err := r.recompute(ctx, j)
	if err != nil {
		return nil, err
	}
	r.storeResult(j, data)
	return data, nil
}

func (r *Router) storeResult(j *rjob, data []byte) {
	j.mu.Lock()
	if j.result == nil {
		j.result = data
	}
	j.mu.Unlock()
}

// resultFromPeers consults every healthy shard's content-addressed
// store (skipping the shard already tried).
func (r *Router) resultFromPeers(ctx context.Context, hash string, skip int) ([]byte, bool) {
	healthy := r.healthySnapshot()
	for shard := range r.clients {
		if shard == skip || !healthy[shard] {
			continue
		}
		if data, err := r.clients[shard].ResultByHash(ctx, hash); err == nil {
			return data, true
		}
	}
	return nil, false
}

// recompute re-executes j's canonical spec on a healthy shard and
// waits for the (byte-identical) report.
func (r *Router) recompute(ctx context.Context, j *rjob) ([]byte, error) {
	healthy := r.healthySnapshot()
	for _, shard := range r.ring.successors(j.hash) {
		if !healthy[shard] {
			continue
		}
		st, err := r.clients[shard].SubmitJSON(ctx, j.canonical)
		if err != nil {
			continue
		}
		data, err := r.clients[shard].AwaitResult(ctx, st.ID)
		if err != nil {
			continue
		}
		return data, nil
	}
	return nil, ErrNoShards
}

// Cancel forwards a cancellation to the job's current shard.
func (r *Router) Cancel(ctx context.Context, id string) (bool, error) {
	j := r.lookup(id)
	if j == nil {
		return false, service.ErrUnknownJob
	}
	j.mu.Lock()
	if j.terminal || j.shard < 0 {
		j.mu.Unlock()
		return false, nil
	}
	shard, shardID := j.shard, j.shardID
	j.mu.Unlock()
	if err := r.clients[shard].Cancel(ctx, shardID); err != nil {
		return false, err
	}
	r.refresh(ctx, j)
	return true, nil
}

// ResultByHash serves the router's own view of the content-addressed
// store: a terminal done job with the hash, or any healthy shard that
// holds it.
func (r *Router) ResultByHash(ctx context.Context, hash string) ([]byte, bool) {
	r.mu.Lock()
	j := r.byHash[hash]
	r.mu.Unlock()
	if j != nil {
		j.mu.Lock()
		data := j.result
		j.mu.Unlock()
		if data != nil {
			return data, true
		}
	}
	return r.resultFromPeers(ctx, hash, -1)
}

// retireLocked enforces the bounded job table: beyond maxRetainedJobs,
// the oldest terminal jobs are dropped (r.mu held).
func (r *Router) retireLocked() {
	for len(r.jobs) > maxRetainedJobs {
		retired := false
		for i, j := range r.order {
			j.mu.Lock()
			t := j.terminal
			j.mu.Unlock()
			if !t {
				continue
			}
			r.order = append(r.order[:i], r.order[i+1:]...)
			delete(r.jobs, j.id)
			if r.byHash[j.hash] == j {
				delete(r.byHash, j.hash)
			}
			retired = true
			break
		}
		if !retired {
			return // everything is in flight; let the table grow
		}
	}
}

// RetryAfterHint estimates how long a shed client should wait, from
// the cluster's current saturation: in-flight jobs per healthy shard,
// clamped to [1, 60] seconds. Deeper backlog or fewer shards ⇒ longer
// hint, so a rejected herd spreads instead of stampeding.
func (r *Router) RetryAfterHint() int {
	r.mu.Lock()
	inflight := 0
	for _, j := range r.jobs {
		j.mu.Lock()
		if !j.terminal {
			inflight++
		}
		j.mu.Unlock()
	}
	r.mu.Unlock()
	shards := r.HealthyShards()
	if shards < 1 {
		shards = 1
	}
	hint := int(math.Ceil(float64(inflight) / float64(shards) / 4))
	if hint < 1 {
		hint = 1
	}
	if hint > 60 {
		hint = 60
	}
	return hint
}

// Failovers returns the total number of job re-placements performed.
func (r *Router) Failovers() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nFailovers
}
