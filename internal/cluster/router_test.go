package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"mac3d/internal/service"
)

// testShard is one real macd daemon on a real socket, so the router's
// health plane and failover paths are exercised over actual HTTP.
type testShard struct {
	svc *service.Service
	srv *http.Server
	ln  net.Listener
	url string
}

func startShard(t *testing.T, addr string, cfg service.Config) *testShard {
	t.Helper()
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := service.New(cfg)
	if err != nil {
		ln.Close()
		t.Fatal(err)
	}
	sh := &testShard{
		svc: svc,
		srv: &http.Server{Handler: service.Handler(svc)},
		ln:  ln,
		url: "http://" + ln.Addr().String(),
	}
	go sh.srv.Serve(ln)
	return sh
}

// kill simulates a shard crash: the socket vanishes and the process
// state is discarded without drain.
func (sh *testShard) kill() {
	sh.ln.Close()
	sh.srv.Close()
	sh.svc.Kill()
}

func testSpec(seed int) []byte {
	return []byte(fmt.Sprintf(`{"kind":"run","run":{"workload":"sg","scale":"tiny","seed":%d}}`, seed))
}

func specHash(t *testing.T, data []byte) string {
	t.Helper()
	spec, err := service.ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	h, err := spec.Hash()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// baselineResult executes a spec on a plain in-process service — the
// byte-identity reference for everything the cluster serves.
func baselineResult(t *testing.T, data []byte) []byte {
	t.Helper()
	svc, err := service.New(service.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Kill()
	st, err := svc.SubmitJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	out, err := svc.AwaitResult(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func testRouterConfig(urls []string) Config {
	return Config{
		Shards:          urls,
		VNodes:          16,
		Heartbeat:       25 * time.Millisecond,
		HeartbeatJitter: 0.2,
		FailAfter:       2,
		ReadmitAfter:    2,
		Seed:            5,
	}
}

func eventually(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestRouterSubmitAwaitByteIdentical(t *testing.T) {
	a := startShard(t, "", service.Config{Workers: 2})
	b := startShard(t, "", service.Config{Workers: 2})
	defer a.kill()
	defer b.kill()

	r, err := NewRouter(testRouterConfig([]string{a.url, b.url}))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	front := httptest.NewServer(Handler(r))
	defer front.Close()

	// A service.Client cannot tell the router from a daemon.
	c := &service.Client{BaseURL: front.URL, Retry: service.DefaultRetryPolicy()}
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	for seed := 1; seed <= 4; seed++ {
		data := testSpec(seed)
		st, err := c.SubmitJSON(ctx, data)
		if err != nil {
			t.Fatalf("submit seed %d: %v", seed, err)
		}
		if st.ID == "" || st.ID[0] != 'r' {
			t.Fatalf("submit returned shard-namespace ID %q, want router ID", st.ID)
		}
		got, err := c.AwaitResult(ctx, st.ID)
		if err != nil {
			t.Fatalf("await seed %d: %v", seed, err)
		}
		if want := baselineResult(t, data); !bytes.Equal(got, want) {
			t.Fatalf("seed %d: cluster result differs from single-node baseline", seed)
		}
	}
}

func TestRouterCoalescesIdenticalSpecs(t *testing.T) {
	a := startShard(t, "", service.Config{Workers: 2})
	defer a.kill()
	r, err := NewRouter(testRouterConfig([]string{a.url}))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	ctx := context.Background()
	st1, err := r.Submit(ctx, testSpec(11), "")
	if err != nil {
		t.Fatal(err)
	}
	st2, err := r.Submit(ctx, testSpec(11), "")
	if err != nil {
		t.Fatal(err)
	}
	if st1.ID != st2.ID {
		t.Fatalf("identical specs got distinct router jobs %s and %s", st1.ID, st2.ID)
	}
	// The repeat must announce itself as a hit — live twin means
	// coalesced, done twin means cached — so load generators and
	// clients see the same flags a single daemon would serve.
	if !st2.Coalesced && !st2.Cached {
		t.Fatalf("repeat submit reported neither coalesced nor cached: %+v", st2)
	}

	// Once the job is terminal, further repeats are cache serves.
	eventually(t, 30*time.Second, "job completion", func() bool {
		_, err := r.Result(ctx, st1.ID)
		return err == nil
	})
	st3, err := r.Submit(ctx, testSpec(11), "")
	if err != nil {
		t.Fatal(err)
	}
	if !st3.Cached {
		t.Fatalf("repeat submit after completion not reported cached: %+v", st3)
	}
}

func TestRouterTenantQuota(t *testing.T) {
	a := startShard(t, "", service.Config{Workers: 2})
	defer a.kill()
	cfg := testRouterConfig([]string{a.url})
	cfg.Tenants = map[string]Quota{"limited": {Rate: 0.001, Burst: 2}}
	r, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	front := httptest.NewServer(Handler(r))
	defer front.Close()

	post := func(tenant string, seed int) *http.Response {
		req, _ := http.NewRequest(http.MethodPost, front.URL+"/v1/jobs", bytes.NewReader(testSpec(seed)))
		if tenant != "" {
			req.Header.Set("X-Macd-Tenant", tenant)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	for seed := 20; seed < 22; seed++ {
		if resp := post("limited", seed); resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			t.Fatalf("in-budget submit %d: HTTP %d", seed, resp.StatusCode)
		}
	}
	resp := post("limited", 22)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget submit: HTTP %d, want 429", resp.StatusCode)
	}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || secs < 1 {
		t.Fatalf("429 Retry-After = %q, want a positive integer", resp.Header.Get("Retry-After"))
	}
	// Another tenant's budget is untouched.
	if resp := post("other", 23); resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("other tenant sheds with the limited one: HTTP %d", resp.StatusCode)
	}
}

func TestRouterFailoverMidJob(t *testing.T) {
	// Three shards; the one owning our spec hangs mid-execution and is
	// killed. The router must evict it, fail the job over to the ring
	// successor and still serve the byte-identical report.
	urls := make([]string, 3)
	shards := make([]*testShard, 3)
	release := make(chan struct{})
	defer func() {
		select {
		case <-release:
		default:
			close(release)
		}
	}()

	data := testSpec(31)
	hash := specHash(t, data)
	// Build the shards on fixed sockets first so the ring is known
	// before the victim's runner is wired up.
	for i := range shards {
		shards[i] = startShard(t, "", service.Config{Workers: 2})
		urls[i] = shards[i].url
	}
	victim := newRing(urls, 16).owner(hash)
	// Replace the victim with one whose runner blocks: the job will be
	// accepted and stuck "running" when the crash hits.
	addr := shards[victim].ln.Addr().String()
	shards[victim].kill()
	shards[victim] = startShard(t, addr, service.Config{
		Workers: 2,
		WrapRunner: func(next service.RunFunc) service.RunFunc {
			return func(spec service.Spec) ([]byte, error) {
				<-release
				return next(spec)
			}
		},
	})
	defer func() {
		for _, sh := range shards {
			sh.kill()
		}
	}()

	r, err := NewRouter(testRouterConfig(urls))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	st, err := r.Submit(ctx, data, "")
	if err != nil {
		t.Fatal(err)
	}
	// The job is parked on the victim. Crash it.
	shards[victim].kill()
	eventually(t, 10*time.Second, "victim eviction", func() bool {
		return r.HealthyShards() == 2
	})
	eventually(t, 30*time.Second, "failover to ring successor", func() bool {
		js, err := r.Job(ctx, st.ID)
		return err == nil && js.State == service.StateDone
	})
	got, err := r.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if want := baselineResult(t, data); !bytes.Equal(got, want) {
		t.Fatal("failed-over result differs from single-node baseline")
	}
	if r.Failovers() < 1 {
		t.Fatalf("Failovers() = %d, want >= 1", r.Failovers())
	}
	js, err := r.Job(ctx, st.ID)
	if err != nil || !js.Recovered {
		t.Fatalf("failed-over job should report Recovered: %+v (err %v)", js, err)
	}
}

func TestRouterEvictionAndReadmission(t *testing.T) {
	a := startShard(t, "", service.Config{Workers: 1})
	b := startShard(t, "", service.Config{Workers: 1})
	defer a.kill()

	r, err := NewRouter(testRouterConfig([]string{a.url, b.url}))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	if got := r.HealthyShards(); got != 2 {
		t.Fatalf("HealthyShards() = %d at start, want 2", got)
	}
	addr := b.ln.Addr().String()
	b.kill()
	eventually(t, 10*time.Second, "eviction of killed shard", func() bool {
		return r.HealthyShards() == 1
	})
	// The cluster keeps serving on the survivor.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := r.Submit(ctx, testSpec(41), "")
	if err != nil {
		t.Fatalf("submit with one shard down: %v", err)
	}
	if _, err := r.Result(ctx, st.ID); err != nil && err != service.ErrNotFinished {
		// Not finished yet is fine; anything else is not.
		if !service.Retryable(err) {
			t.Fatalf("result with one shard down: %v", err)
		}
	}
	// Restart on the same address: the prober re-admits it.
	b = startShard(t, addr, service.Config{Workers: 1})
	defer b.kill()
	eventually(t, 10*time.Second, "re-admission of restarted shard", func() bool {
		return r.HealthyShards() == 2
	})
	topo := r.Topology()
	if topo.Evictions < 1 || topo.Readmitted < 1 {
		t.Fatalf("topology = %+v, want >=1 eviction and readmission", topo)
	}
}

func TestRouterAllShardsDown(t *testing.T) {
	a := startShard(t, "", service.Config{Workers: 1})
	r, err := NewRouter(testRouterConfig([]string{a.url}))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	front := httptest.NewServer(Handler(r))
	defer front.Close()

	a.kill()
	eventually(t, 10*time.Second, "eviction of only shard", func() bool {
		return r.HealthyShards() == 0
	})
	resp, err := http.Post(front.URL+"/v1/jobs", "application/json", bytes.NewReader(testSpec(51)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit with cluster down: HTTP %d, want 503", resp.StatusCode)
	}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || secs < 1 {
		t.Fatalf("503 Retry-After = %q, want a positive integer", resp.Header.Get("Retry-After"))
	}
}

func TestRouterTopologyEndpoint(t *testing.T) {
	a := startShard(t, "", service.Config{Workers: 1})
	defer a.kill()
	r, err := NewRouter(testRouterConfig([]string{a.url}))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	front := httptest.NewServer(Handler(r))
	defer front.Close()

	resp, err := http.Get(front.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var topo Topology
	if err := json.NewDecoder(resp.Body).Decode(&topo); err != nil {
		t.Fatal(err)
	}
	if len(topo.Shards) != 1 || topo.Shards[0].URL != a.url || topo.Shards[0].VNodes != 16 {
		t.Fatalf("topology = %+v", topo)
	}
}

func TestPeerReadThrough(t *testing.T) {
	// Shard A computes a result; shard B, wired with the read-through
	// hook, serves the same spec from A's store instead of recomputing.
	a := startShard(t, "", service.Config{Workers: 2, JournalDir: t.TempDir()})
	defer a.kill()
	data := testSpec(61)
	st, err := a.svc.SubmitJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	want, err := a.svc.AwaitResult(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}

	b := startShard(t, "", service.Config{
		Workers:      2,
		ResultLookup: PeerReadThroughTimeout([]string{a.url}, time.Second),
	})
	defer b.kill()
	st2, err := b.svc.SubmitJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.svc.AwaitResult(ctx, st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("read-through result differs from the peer's bytes")
	}
	if hits, ok := b.svc.Registry().Get("macd.jobs.peer_hits"); !ok || hits != 1 {
		t.Fatalf("peer_hits = %v (ok %v), want 1", hits, ok)
	}
}

func TestPeerReadThroughDeadPeerFailsFast(t *testing.T) {
	// A dead peer must cost a miss, not a hang: the shard falls back to
	// local execution.
	lookup := PeerReadThroughTimeout([]string{"http://127.0.0.1:1"}, 100*time.Millisecond)
	start := time.Now()
	if _, ok := lookup("deadbeef"); ok {
		t.Fatal("hit from a dead peer")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("dead-peer lookup took %v, want fast failure", elapsed)
	}
}
