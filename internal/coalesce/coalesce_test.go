package coalesce

import (
	"testing"

	"mac3d/internal/hmc"
	"mac3d/internal/memreq"
	"mac3d/internal/sim"
)

func drain(c memreq.Coalescer, maxCycles sim.Cycle, complete bool) []memreq.Built {
	var out []memreq.Built
	for now := sim.Cycle(0); now < maxCycles; now++ {
		got := c.Tick(now)
		for i := range got {
			out = append(out, got[i])
			if complete {
				c.Completed(&out[len(out)-1])
			}
		}
		if c.Pending() == 0 {
			break
		}
	}
	return out
}

func TestNullPassThroughOneToOne(t *testing.T) {
	n := NewNull(DefaultNullConfig())
	for i := 0; i < 8; i++ {
		// All in the same row: Null must NOT coalesce them.
		if !n.Push(memreq.RawRequest{Addr: uint64(i * 16), Size: 8, Tag: uint16(i)}, 0) {
			t.Fatalf("push %d rejected", i)
		}
	}
	out := drain(n, 100, true)
	if len(out) != 8 {
		t.Fatalf("transactions = %d, want 8", len(out))
	}
	for _, b := range out {
		if b.Req.Data != 16 {
			t.Fatalf("raw transaction size %d, want 16", b.Req.Data)
		}
		if len(b.Targets) != 1 {
			t.Fatalf("targets = %d", len(b.Targets))
		}
	}
	if eff := n.Stats().CoalescingEfficiency(); eff != 0 {
		t.Fatalf("null efficiency = %v, want 0", eff)
	}
}

func TestNullIssueRate(t *testing.T) {
	cfg := DefaultNullConfig()
	cfg.IssuePerCycle = 1
	n := NewNull(cfg)
	for i := 0; i < 5; i++ {
		n.Push(memreq.RawRequest{Addr: uint64(i * 4096), Size: 8}, 0)
	}
	if got := len(n.Tick(0)); got != 1 {
		t.Fatalf("tick emitted %d, want 1", got)
	}
}

func TestNullPreservesKinds(t *testing.T) {
	n := NewNull(DefaultNullConfig())
	n.Push(memreq.RawRequest{Addr: 0, Size: 8}, 0)
	n.Push(memreq.RawRequest{Addr: 16, Size: 8, Store: true}, 0)
	n.Push(memreq.RawRequest{Addr: 32, Size: 8, Atomic: true}, 0)
	out := drain(n, 50, true)
	if len(out) != 3 {
		t.Fatalf("%d transactions", len(out))
	}
	kinds := []hmc.Kind{out[0].Req.Kind, out[1].Req.Kind, out[2].Req.Kind}
	want := []hmc.Kind{hmc.Read, hmc.Write, hmc.AtomicOp}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kind %d = %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestNullFenceBlocksUntilDrained(t *testing.T) {
	n := NewNull(DefaultNullConfig())
	n.Push(memreq.RawRequest{Addr: 0, Size: 8, Tag: 1}, 0)
	n.Push(memreq.RawRequest{Fence: true}, 0)
	n.Push(memreq.RawRequest{Addr: 4096, Size: 8, Tag: 2}, 0)
	first := n.Tick(0)
	if len(first) != 1 {
		t.Fatalf("first tick: %d", len(first))
	}
	for now := sim.Cycle(1); now < 10; now++ {
		if got := n.Tick(now); len(got) != 0 {
			t.Fatal("crossed fence while outstanding")
		}
	}
	n.Completed(&first[0])
	var after []memreq.Built
	for now := sim.Cycle(10); now < 20 && len(after) == 0; now++ {
		after = n.Tick(now)
	}
	if len(after) != 1 || after[0].Req.Addr != 4096 {
		t.Fatalf("post-fence = %+v", after)
	}
}

func TestMSHRMergesOutstandingLine(t *testing.T) {
	m := NewMSHR(DefaultMSHRConfig())
	// Three loads in the same 64B line: one 64B transaction.
	m.Push(memreq.RawRequest{Addr: 0x100, Size: 8, Tag: 1}, 0)
	m.Push(memreq.RawRequest{Addr: 0x108, Size: 8, Tag: 2}, 0)
	m.Push(memreq.RawRequest{Addr: 0x140, Size: 8, Tag: 3}, 0) // next line

	var built []memreq.Built
	for now := sim.Cycle(0); now < 10; now++ {
		got := m.Tick(now)
		built = append(built, got...)
	}
	if len(built) != 2 {
		t.Fatalf("transactions = %d, want 2", len(built))
	}
	if built[0].Req.Data != 64 || built[1].Req.Data != 64 {
		t.Fatal("MSHR must emit fixed 64B lines")
	}
	// Completing the first line folds the merged target in.
	m.Completed(&built[0])
	if len(built[0].Targets) != 2 {
		t.Fatalf("line 0 targets = %d, want 2", len(built[0].Targets))
	}
	m.Completed(&built[1])
	if len(built[1].Targets) != 1 {
		t.Fatalf("line 1 targets = %d, want 1", len(built[1].Targets))
	}
	if eff := m.Stats().CoalescingEfficiency(); eff <= 0 {
		t.Fatalf("MSHR efficiency = %v, want > 0", eff)
	}
}

func TestMSHRStopsMergingAfterCompletion(t *testing.T) {
	// §2.3: merging only happens while the original miss is
	// outstanding. A request after completion issues a new line.
	m := NewMSHR(DefaultMSHRConfig())
	m.Push(memreq.RawRequest{Addr: 0x100, Size: 8, Tag: 1}, 0)
	first := m.Tick(0)
	if len(first) != 1 {
		t.Fatal("no dispatch")
	}
	m.Completed(&first[0])
	m.Push(memreq.RawRequest{Addr: 0x108, Size: 8, Tag: 2}, 1)
	second := m.Tick(1)
	if len(second) != 1 {
		t.Fatalf("post-completion request did not redispatch (%d)", len(second))
	}
	m.Completed(&second[0])
	if m.Stats().Transactions != 2 {
		t.Fatalf("transactions = %d, want 2", m.Stats().Transactions)
	}
}

func TestMSHRSeparatesLoadStoreLines(t *testing.T) {
	m := NewMSHR(DefaultMSHRConfig())
	m.Push(memreq.RawRequest{Addr: 0x100, Size: 8, Tag: 1}, 0)
	m.Push(memreq.RawRequest{Addr: 0x108, Size: 8, Store: true, Tag: 2}, 0)
	var built []memreq.Built
	for now := sim.Cycle(0); now < 10; now++ {
		built = append(built, m.Tick(now)...)
	}
	if len(built) != 2 {
		t.Fatalf("load+store same line: %d transactions, want 2", len(built))
	}
}

func TestMSHRStructuralStallWhenFull(t *testing.T) {
	cfg := DefaultMSHRConfig()
	cfg.Entries = 1
	m := NewMSHR(cfg)
	m.Push(memreq.RawRequest{Addr: 0x000, Size: 8, Tag: 1}, 0)
	m.Push(memreq.RawRequest{Addr: 0x400, Size: 8, Tag: 2}, 0)
	first := m.Tick(0)
	if len(first) != 1 {
		t.Fatal("no dispatch")
	}
	// Second line cannot dispatch: the single MSHR is busy.
	for now := sim.Cycle(1); now < 5; now++ {
		if got := m.Tick(now); len(got) != 0 {
			t.Fatal("dispatched past full MSHR file")
		}
	}
	m.Completed(&first[0])
	var second []memreq.Built
	for now := sim.Cycle(5); now < 10 && len(second) == 0; now++ {
		second = m.Tick(now)
	}
	if len(second) != 1 {
		t.Fatal("stalled request never dispatched")
	}
}

func TestMSHRFullFileStillMerges(t *testing.T) {
	// Boundary of the structural stall: a completely full MSHR file
	// blocks new line allocations but must keep merging requests onto
	// its outstanding lines.
	cfg := DefaultMSHRConfig()
	cfg.Entries = 1
	m := NewMSHR(cfg)
	m.Push(memreq.RawRequest{Addr: 0x100, Size: 8, Tag: 1}, 0)
	first := m.Tick(0)
	if len(first) != 1 {
		t.Fatal("no dispatch")
	}
	// File full; same-line request merges anyway.
	m.Push(memreq.RawRequest{Addr: 0x108, Size: 8, Tag: 2}, 1)
	if got := m.Tick(1); len(got) != 0 {
		t.Fatal("merge dispatched a transaction")
	}
	// New-line request stalls behind the full file.
	m.Push(memreq.RawRequest{Addr: 0x400, Size: 8, Tag: 3}, 2)
	if got := m.Tick(2); len(got) != 0 {
		t.Fatal("allocated past a full MSHR file")
	}
	m.Completed(&first[0])
	if len(first[0].Targets) != 2 {
		t.Fatalf("targets = %d, want the merged pair", len(first[0].Targets))
	}
	var second []memreq.Built
	for now := sim.Cycle(3); now < 10 && len(second) == 0; now++ {
		second = m.Tick(now)
	}
	if len(second) != 1 || second[0].Req.Addr != 0x400 {
		t.Fatalf("stalled line = %+v", second)
	}
}

func TestMSHRAtomicBypasses(t *testing.T) {
	m := NewMSHR(DefaultMSHRConfig())
	m.Push(memreq.RawRequest{Addr: 0x100, Size: 8, Atomic: true, Tag: 1}, 0)
	out := m.Tick(0)
	if len(out) != 1 || out[0].Req.Kind != hmc.AtomicOp || !out[0].Bypassed {
		t.Fatalf("atomic = %+v", out)
	}
	m.Completed(&out[0])
}

func TestMSHRFence(t *testing.T) {
	m := NewMSHR(DefaultMSHRConfig())
	m.Push(memreq.RawRequest{Addr: 0x100, Size: 8, Tag: 1}, 0)
	m.Push(memreq.RawRequest{Fence: true}, 0)
	m.Push(memreq.RawRequest{Addr: 0x400, Size: 8, Tag: 2}, 0)
	first := m.Tick(0)
	if len(first) != 1 {
		t.Fatal("no dispatch")
	}
	for now := sim.Cycle(1); now < 5; now++ {
		if got := m.Tick(now); len(got) != 0 {
			t.Fatal("crossed fence")
		}
	}
	m.Completed(&first[0])
	var second []memreq.Built
	for now := sim.Cycle(5); now < 10 && len(second) == 0; now++ {
		second = m.Tick(now)
	}
	if len(second) != 1 || second[0].Req.Addr != 0x400 {
		t.Fatalf("post-fence = %+v", second)
	}
}

func TestMSHRMaxMergesBound(t *testing.T) {
	cfg := DefaultMSHRConfig()
	cfg.MaxMerges = 2
	m := NewMSHR(cfg)
	m.Push(memreq.RawRequest{Addr: 0x100, Size: 8, Tag: 1}, 0)
	m.Push(memreq.RawRequest{Addr: 0x108, Size: 8, Tag: 2}, 0)
	m.Push(memreq.RawRequest{Addr: 0x110, Size: 8, Tag: 3}, 0)
	first := m.Tick(0) // dispatch line with tag 1
	m.Tick(1)          // merge tag 2
	// Tag 3 exceeds MaxMerges: it stalls until the line completes.
	if got := m.Tick(2); len(got) != 0 {
		t.Fatal("exceeded MaxMerges")
	}
	m.Completed(&first[0])
	if len(first[0].Targets) != 2 {
		t.Fatalf("targets = %d, want 2", len(first[0].Targets))
	}
	var second []memreq.Built
	for now := sim.Cycle(3); now < 10 && len(second) == 0; now++ {
		second = m.Tick(now)
	}
	if len(second) != 1 {
		t.Fatal("overflow request never dispatched")
	}
}

func TestConfigValidation(t *testing.T) {
	if err := DefaultMSHRConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []MSHRConfig{
		{Entries: 0, LineBytes: 64, MaxMerges: 1, QueueDepth: 1},
		{Entries: 1, LineBytes: 60, MaxMerges: 1, QueueDepth: 1},
		{Entries: 1, LineBytes: 64, MaxMerges: 0, QueueDepth: 1},
		{Entries: 1, LineBytes: 64, MaxMerges: 1, QueueDepth: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestResets(t *testing.T) {
	n := NewNull(DefaultNullConfig())
	n.Push(memreq.RawRequest{Addr: 0x100, Size: 8}, 0)
	n.Reset()
	if n.Pending() != 0 || n.Inflight() != 0 || n.Stats().RawRequests != 0 {
		t.Fatal("null reset incomplete")
	}

	m := NewMSHR(DefaultMSHRConfig())
	m.Push(memreq.RawRequest{Addr: 0x100, Size: 8}, 0)
	m.Tick(0)
	m.Reset()
	if m.Pending() != 0 || m.Inflight() != 0 || m.Stats().RawRequests != 0 {
		t.Fatal("mshr reset incomplete")
	}
}
