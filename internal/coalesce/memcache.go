package coalesce

import (
	"fmt"

	"mac3d/internal/addr"
	"mac3d/internal/cache"
	"mac3d/internal/hmc"
	"mac3d/internal/memreq"
	"mac3d/internal/obs"
	"mac3d/internal/queue"
	"mac3d/internal/sim"
)

// MemCacheConfig parameterizes the die-stacked memory+cache frontend.
type MemCacheConfig struct {
	// DirectFraction is the share of DRAM rows served as plain
	// directly addressed stacked memory, in [0, 1]. The remaining rows
	// route through the stacked cache. Rows are assigned to the two
	// partitions by a deterministic hash of the row number, so the
	// split holds for any footprint.
	DirectFraction float64
	// CacheBytes, LineBytes and Ways give the stacked cache geometry
	// (see internal/cache).
	CacheBytes uint64
	LineBytes  uint32
	Ways       int
	// MaxFills bounds outstanding line fills; a full fill table stalls
	// further cache-region misses.
	MaxFills int
	// MaxMerges bounds raw requests riding one line fill (the initial
	// miss plus hit-under-miss merges).
	MaxMerges int
	// QueueDepth sizes the input FIFO.
	QueueDepth int
}

// DefaultMemCacheConfig returns a half-memory/half-cache split with a
// 128KB 8-way stacked cache of 64B lines — small enough that the
// benchmark footprints exercise both fills and dirty writebacks.
func DefaultMemCacheConfig() MemCacheConfig {
	return MemCacheConfig{
		DirectFraction: 0.5,
		CacheBytes:     128 << 10,
		LineBytes:      64,
		Ways:           8,
		MaxFills:       16,
		MaxMerges:      12,
		QueueDepth:     64,
	}
}

// Validate reports the first configuration error, or nil.
func (c MemCacheConfig) Validate() error {
	switch {
	case c.DirectFraction < 0 || c.DirectFraction > 1:
		return fmt.Errorf("coalesce: MemCache DirectFraction must be in [0, 1], got %g", c.DirectFraction)
	case c.LineBytes < addr.FlitBytes:
		return fmt.Errorf("coalesce: MemCache LineBytes must be at least one FLIT (%d), got %d", addr.FlitBytes, c.LineBytes)
	case c.MaxFills <= 0 || c.MaxFills > 4096:
		return fmt.Errorf("coalesce: MemCache MaxFills must be in [1, 4096], got %d", c.MaxFills)
	case c.MaxMerges <= 0:
		return fmt.Errorf("coalesce: MemCache MaxMerges must be positive, got %d", c.MaxMerges)
	case c.QueueDepth <= 0:
		return fmt.Errorf("coalesce: MemCache QueueDepth must be positive, got %d", c.QueueDepth)
	}
	return cache.Config{SizeBytes: c.CacheBytes, LineBytes: c.LineBytes, Ways: c.Ways}.Validate()
}

// fillEntry is one outstanding line fill: the dispatched transaction's
// span (for merge-coverage checks) and targets merged after dispatch.
type fillEntry struct {
	line    uint64 // line-aligned physical address, fill-table key
	txAddr  uint64
	txBytes uint32
	late    []memreq.Target
}

// MemCache models the die-stacked "part memory, part cache" design of
// Bakhshalipour et al.: a deterministic hash of the DRAM row number
// splits the stacked capacity into a directly addressed partition
// (requests pass through like the raw path) and a cached partition
// backed by an inclusive set-associative store (internal/cache). A
// cache hit is served by one short stacked access; a miss allocates the
// line and emits LineBytes of fill traffic that later same-line
// requests merge onto (hit-under-miss); evicting a dirty line emits a
// zero-target writeback transaction.
//
// Against MAC this models spending stacked capacity instead of
// request-stream smarts: temporal reuse is captured by the tags, but
// there is no spatial aggregation beyond the line, and cold or
// streaming workloads pay full fill traffic.
type MemCache struct {
	cfg   MemCacheConfig
	q     *queue.FIFO[memreq.RawRequest]
	cache *cache.Cache

	// threshold is DirectFraction scaled to 32 bits: a row is direct
	// when the top half of its hashed number falls below it.
	threshold uint64

	fills    map[uint64]*fillEntry
	freeFill []*fillEntry

	// slabs pools target slices handed out in Builts.
	slabs [][]memreq.Target

	heldFence bool
	inflight  int
	st        *memreq.Stats
}

var _ memreq.Coalescer = (*MemCache)(nil)
var _ memreq.Recycler = (*MemCache)(nil)
var _ obs.Attacher = (*MemCache)(nil)

// NewMemCache builds the die-stacked frontend, returning an error on
// bad config.
func NewMemCache(cfg MemCacheConfig) (*MemCache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	tags, err := cache.New(cache.Config{
		SizeBytes: cfg.CacheBytes, LineBytes: cfg.LineBytes, Ways: cfg.Ways,
	})
	if err != nil {
		return nil, err
	}
	mc := &MemCache{
		cfg:       cfg,
		q:         queue.New[memreq.RawRequest](cfg.QueueDepth),
		cache:     tags,
		threshold: uint64(cfg.DirectFraction * float64(1<<32)),
		fills:     make(map[uint64]*fillEntry, cfg.MaxFills),
		st:        memreq.NewStats(),
	}
	mc.st.MemCache = &memreq.MemCacheStats{}
	return mc, nil
}

// mix64 is the splitmix64 finalizer — the partition hash.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// direct reports whether address a falls in the directly addressed
// partition.
func (mc *MemCache) direct(a uint64) bool {
	return mix64(addr.RowNumber(a))>>32 < mc.threshold
}

// takeTargets returns a pooled target slice seeded with t.
func (mc *MemCache) takeTargets(t memreq.Target) []memreq.Target {
	if n := len(mc.slabs); n > 0 {
		s := mc.slabs[n-1]
		mc.slabs = mc.slabs[:n-1]
		return append(s, t)
	}
	return append(make([]memreq.Target, 0, mc.cfg.MaxMerges), t)
}

// Recycle implements memreq.Recycler: a fully consumed Built hands its
// target slab back to the pool.
func (mc *MemCache) Recycle(b *memreq.Built) {
	if b == nil || b.Targets == nil {
		return
	}
	if cap(b.Targets) > 0 {
		mc.slabs = append(mc.slabs, b.Targets[:0])
	}
	b.Targets = nil
}

// takeFill returns a pooled (or fresh) empty fill entry.
func (mc *MemCache) takeFill() *fillEntry {
	if n := len(mc.freeFill); n > 0 {
		fe := mc.freeFill[n-1]
		mc.freeFill = mc.freeFill[:n-1]
		fe.late = fe.late[:0]
		return fe
	}
	late := []memreq.Target(nil)
	if mc.cfg.MaxMerges > 1 {
		late = make([]memreq.Target, 0, mc.cfg.MaxMerges-1)
	}
	return &fillEntry{late: late}
}

// Push offers one raw request; it reports acceptance.
func (mc *MemCache) Push(r memreq.RawRequest, now sim.Cycle) bool {
	if !mc.q.Push(r) {
		mc.st.PushRejects++
		return false
	}
	switch {
	case r.Fence:
		mc.st.Fences++
	case r.Atomic:
		mc.st.RawRequests++
		mc.st.RawAtomics++
	case r.Store:
		mc.st.RawRequests++
		mc.st.RawStores++
	default:
		mc.st.RawRequests++
		mc.st.RawLoads++
	}
	return true
}

// passThrough builds the raw-path transaction for one request — the
// same FLIT rounding the Null design applies.
func (mc *MemCache) passThrough(r memreq.RawRequest, kind hmc.Kind) memreq.Built {
	base := r.Addr &^ uint64(addr.FlitMask)
	size := uint32(r.Addr-base) + uint32(r.Size)
	if size == 0 {
		size = 1
	}
	if rem := size % addr.FlitBytes; rem != 0 {
		size += addr.FlitBytes - rem
	}
	b := memreq.Built{
		Req: hmc.Request{Kind: kind, Addr: base, Data: size},
		Targets: mc.takeTargets(memreq.Target{
			Thread: r.Thread, Tag: r.Tag, Flit: addr.FlitID(r.Addr),
		}),
	}
	b.Req.Normalize()
	return b
}

// covered reports whether r's FLIT span lies inside the dispatched
// fill transaction fe — the condition for a late merge to be delivered
// by fe's response.
func (mc *MemCache) covered(fe *fillEntry, r memreq.RawRequest) bool {
	a := r.Addr & addr.PhysMask
	s := a &^ uint64(addr.FlitMask)
	size := uint64(r.Size)
	if size == 0 {
		size = 1
	}
	e := a + size
	if rem := e % addr.FlitBytes; rem != 0 {
		e += addr.FlitBytes - rem
	}
	return s >= fe.txAddr && e <= fe.txAddr+uint64(fe.txBytes)
}

// Tick processes one queued request per cycle: route it to the direct
// partition, serve it from the stacked cache, merge it onto an
// in-flight fill, or allocate a fill (plus a writeback when the victim
// line is dirty).
func (mc *MemCache) Tick(now sim.Cycle) []memreq.Built {
	if mc.heldFence {
		if mc.inflight != 0 {
			return nil
		}
		mc.heldFence = false
	}
	head, ok := mc.q.Peek()
	if !ok {
		return nil
	}

	switch {
	case head.Fence:
		mc.q.Pop()
		mc.heldFence = true
		return nil

	case head.Atomic:
		mc.q.Pop()
		b := memreq.Built{
			Req: hmc.Request{
				Kind: hmc.AtomicOp,
				Addr: head.Addr &^ uint64(addr.FlitMask),
				Data: addr.FlitBytes,
			},
			Targets: mc.takeTargets(memreq.Target{
				Thread: head.Thread, Tag: head.Tag, Flit: addr.FlitID(head.Addr),
			}),
			Bypassed: true,
		}
		b.Req.Normalize()
		mc.noteDispatch(&b)
		return []memreq.Built{b}
	}

	if mc.direct(head.Addr) {
		mc.q.Pop()
		kind := hmc.Read
		if head.Store {
			kind = hmc.Write
		}
		b := mc.passThrough(head, kind)
		mc.st.MemCache.DirectAccesses++
		mc.noteDispatch(&b)
		return []memreq.Built{b}
	}

	probe := head.Addr & addr.PhysMask
	line := probe &^ uint64(mc.cfg.LineBytes-1)
	tgt := memreq.Target{Thread: head.Thread, Tag: head.Tag, Flit: addr.FlitID(head.Addr)}

	if fe := mc.fills[line]; fe != nil {
		if 1+len(fe.late) < mc.cfg.MaxMerges && mc.covered(fe, head) {
			// Hit under miss: ride the in-flight fill, no new traffic.
			mc.q.Pop()
			fe.late = append(fe.late, tgt)
			if head.Store {
				mc.cache.MarkDirty(probe)
			}
			mc.st.MemCache.MergedMisses++
			return nil
		}
		// Merge budget or coverage exhausted: structural stall until
		// the fill completes, after which the line hits in the tags.
		return nil
	}

	if len(mc.fills) >= mc.cfg.MaxFills && !mc.cache.Contains(probe) {
		return nil // fill table full: stall
	}

	mc.q.Pop()
	hit, evicted, evictedDirty := mc.cache.AccessDirty(probe, head.Store)
	if hit {
		// Served by the stacked cache: one short stacked access.
		kind := hmc.Read
		if head.Store {
			kind = hmc.Write
		}
		b := mc.passThrough(head, kind)
		mc.st.MemCache.Hits++
		mc.noteDispatch(&b)
		return []memreq.Built{b}
	}

	// Miss: fetch the whole line (write-allocate), extended when the
	// access spills past the line end so the target's FLIT span is
	// covered.
	mc.st.MemCache.Misses++
	end := probe + uint64(head.Size)
	if head.Size == 0 {
		end = probe + 1
	}
	size := mc.cfg.LineBytes
	if over := uint32(end - line); over > size {
		size = over
	}
	if rem := size % addr.FlitBytes; rem != 0 {
		size += addr.FlitBytes - rem
	}
	fe := mc.takeFill()
	fe.line, fe.txAddr, fe.txBytes = line, line, size
	mc.fills[line] = fe
	b := memreq.Built{
		Req:     hmc.Request{Kind: hmc.Read, Addr: line, Data: size},
		Targets: mc.takeTargets(tgt),
		Handle:  fe,
	}
	b.Req.Normalize()
	mc.noteDispatch(&b)
	out := []memreq.Built{b}

	if evictedDirty {
		// The victim line held stores: write it back. The transaction
		// retires no raw request (zero targets).
		mc.st.MemCache.Writebacks++
		wb := memreq.Built{
			Req: hmc.Request{Kind: hmc.Write, Addr: evicted, Data: mc.cfg.LineBytes},
		}
		wb.Req.Normalize()
		mc.noteDispatch(&wb)
		out = append(out, wb)
	}
	return out
}

func (mc *MemCache) noteDispatch(b *memreq.Built) {
	mc.st.Transactions++
	if b.Bypassed {
		mc.st.Bypassed++
	}
	mc.st.BuiltBySizeBytes[b.Req.Data]++
	mc.inflight++
}

// Completed frees the fill entry of a finished line fetch and folds any
// targets merged after dispatch into the transaction's target list so
// the caller's response routing delivers them too.
func (mc *MemCache) Completed(b *memreq.Built) {
	if mc.inflight == 0 {
		panic("coalesce: MemCache.Completed without matching emission")
	}
	mc.inflight--
	if fe, ok := b.Handle.(*fillEntry); ok && fe != nil {
		if len(fe.late) > 0 {
			// A pooled Targets has cap MaxMerges and dispatch + late
			// is at most MaxMerges, so this append stays in place.
			b.Targets = append(b.Targets, fe.late...)
		}
		delete(mc.fills, fe.line)
		mc.freeFill = append(mc.freeFill, fe)
	}
	mc.st.TargetsPerTx.Observe(uint64(len(b.Targets)))
}

// Pending returns queued raw requests (including a held fence).
func (mc *MemCache) Pending() int {
	p := mc.q.Len()
	if mc.heldFence {
		p++
	}
	return p
}

// Inflight returns dispatched transactions not yet completed.
func (mc *MemCache) Inflight() int { return mc.inflight }

// Stats returns the accumulated statistics.
func (mc *MemCache) Stats() *memreq.Stats { return mc.st }

// CacheStats returns the stacked tag array's counters.
func (mc *MemCache) CacheStats() cache.Stats { return mc.cache.Stats() }

// Reset restores the initial empty state (the pools survive).
func (mc *MemCache) Reset() {
	mc.q.Reset()
	mc.cache.Reset()
	for line, fe := range mc.fills {
		mc.freeFill = append(mc.freeFill, fe)
		delete(mc.fills, line)
	}
	mc.heldFence = false
	mc.inflight = 0
	mc.st = memreq.NewStats()
	mc.st.MemCache = &memreq.MemCacheStats{}
}

// AttachObs registers the frontend's fill-table and queue state into a
// run's observability layer.
func (mc *MemCache) AttachObs(o *obs.Obs) {
	reg := o.Reg()
	reg.Func("memcache.fills", func() float64 { return float64(len(mc.fills)) })
	reg.Func("memcache.queue", func() float64 { return float64(mc.q.Len()) })
	rec := o.Rec()
	rec.Watch("memcache.fills", func() float64 { return float64(len(mc.fills)) })
	rec.Watch("memcache.queue", func() float64 { return float64(mc.q.Len()) })
}
