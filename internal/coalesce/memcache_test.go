package coalesce

import (
	"testing"

	"mac3d/internal/hmc"
	"mac3d/internal/memreq"
	"mac3d/internal/sim"
)

// allCached returns a MemCache whose whole address space routes through
// the stacked cache (no direct partition), with a tiny direct-mapped
// cache so tests can force evictions.
func allCached(t *testing.T) *MemCache {
	t.Helper()
	cfg := DefaultMemCacheConfig()
	cfg.DirectFraction = 0
	cfg.CacheBytes = 1024
	cfg.Ways = 1
	mc, err := NewMemCache(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return mc
}

func TestMemCacheMissFillsThenHits(t *testing.T) {
	mc := allCached(t)
	mc.Push(memreq.RawRequest{Addr: 0x100, Size: 8, Tag: 1}, 0)
	fill := mc.Tick(0)
	if len(fill) != 1 {
		t.Fatalf("miss emitted %d transactions, want 1 fill", len(fill))
	}
	if fill[0].Req.Kind != hmc.Read || fill[0].Req.Addr != 0x100 || fill[0].Req.Data != 64 {
		t.Fatalf("fill = %+v, want a 64B line read at 0x100", fill[0].Req)
	}
	mc.Completed(&fill[0])

	// Same line again: a hit served by one short stacked access.
	mc.Push(memreq.RawRequest{Addr: 0x108, Size: 8, Tag: 2}, 1)
	hit := mc.Tick(1)
	if len(hit) != 1 || hit[0].Req.Data != 16 {
		t.Fatalf("hit = %+v, want one 16B access", hit)
	}
	mc.Completed(&hit[0])
	st := mc.Stats().MemCache
	if st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("misses %d hits %d, want 1/1", st.Misses, st.Hits)
	}
	if hr := st.HitRate(); hr != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", hr)
	}
}

func TestMemCacheHitUnderMissMerges(t *testing.T) {
	mc := allCached(t)
	mc.Push(memreq.RawRequest{Addr: 0x200, Size: 8, Tag: 1}, 0)
	fill := mc.Tick(0)
	if len(fill) != 1 {
		t.Fatal("no fill")
	}
	// While the fill is outstanding, same-line requests ride it: no
	// new traffic, targets folded in at completion.
	mc.Push(memreq.RawRequest{Addr: 0x208, Size: 8, Tag: 2}, 1)
	mc.Push(memreq.RawRequest{Addr: 0x210, Size: 8, Tag: 3}, 1)
	if got := mc.Tick(1); len(got) != 0 {
		t.Fatalf("merge emitted %d transactions", len(got))
	}
	if got := mc.Tick(2); len(got) != 0 {
		t.Fatalf("merge emitted %d transactions", len(got))
	}
	mc.Completed(&fill[0])
	if len(fill[0].Targets) != 3 {
		t.Fatalf("fill targets = %d, want 3 after folding merges", len(fill[0].Targets))
	}
	if st := mc.Stats().MemCache; st.MergedMisses != 2 {
		t.Fatalf("merged misses = %d, want 2", st.MergedMisses)
	}
}

func TestMemCacheDirtyEvictionWritesBack(t *testing.T) {
	mc := allCached(t)
	// Store-miss allocates a dirty line (write-allocate).
	mc.Push(memreq.RawRequest{Addr: 0x100, Size: 8, Store: true, Tag: 1}, 0)
	fill := mc.Tick(0)
	if len(fill) != 1 {
		t.Fatal("no fill")
	}
	mc.Completed(&fill[0])
	// 1024B direct-mapped, 64B lines -> 16 sets: 0x100 + 1024 maps to
	// the same set and evicts the dirty line.
	mc.Push(memreq.RawRequest{Addr: 0x100 + 1024, Size: 8, Tag: 2}, 1)
	out := mc.Tick(1)
	if len(out) != 2 {
		t.Fatalf("conflicting miss emitted %d transactions, want fill+writeback", len(out))
	}
	wb := out[1]
	if wb.Req.Kind != hmc.Write || wb.Req.Addr != 0x100 || wb.Req.Data != 64 {
		t.Fatalf("writeback = %+v, want a 64B line write at 0x100", wb.Req)
	}
	if len(wb.Targets) != 0 {
		t.Fatalf("writeback carries %d targets, want 0", len(wb.Targets))
	}
	mc.Completed(&out[0])
	mc.Completed(&wb)
	if st := mc.Stats().MemCache; st.Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", st.Writebacks)
	}
}

func TestMemCacheDirectPartitionPassesThrough(t *testing.T) {
	cfg := DefaultMemCacheConfig()
	cfg.DirectFraction = 1 // everything direct
	mc, err := NewMemCache(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mc.Push(memreq.RawRequest{Addr: 0x104, Size: 8, Tag: 1}, 0)
	out := mc.Tick(0)
	if len(out) != 1 || out[0].Req.Addr != 0x100 || out[0].Req.Data != 16 {
		t.Fatalf("direct access = %+v, want Null-style 16B pass-through", out)
	}
	mc.Completed(&out[0])
	st := mc.Stats().MemCache
	if st.DirectAccesses != 1 || st.Hits+st.Misses != 0 {
		t.Fatalf("direct %d hits+misses %d, want 1/0", st.DirectAccesses, st.Hits+st.Misses)
	}
}

func TestMemCacheFillTableFullStalls(t *testing.T) {
	cfg := DefaultMemCacheConfig()
	cfg.DirectFraction = 0
	cfg.CacheBytes = 1024
	cfg.Ways = 1
	cfg.MaxFills = 1
	mc, err := NewMemCache(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mc.Push(memreq.RawRequest{Addr: 0x000, Size: 8, Tag: 1}, 0)
	mc.Push(memreq.RawRequest{Addr: 0x80, Size: 8, Tag: 2}, 0) // different line
	first := mc.Tick(0)
	if len(first) != 1 {
		t.Fatal("no first fill")
	}
	for now := sim.Cycle(1); now < 5; now++ {
		if got := mc.Tick(now); len(got) != 0 {
			t.Fatal("dispatched past a full fill table")
		}
	}
	mc.Completed(&first[0])
	var second []memreq.Built
	for now := sim.Cycle(5); now < 10 && len(second) == 0; now++ {
		second = mc.Tick(now)
	}
	if len(second) != 1 {
		t.Fatal("stalled miss never dispatched")
	}
	mc.Completed(&second[0])
}

func TestMemCacheMergeBudgetStalls(t *testing.T) {
	cfg := DefaultMemCacheConfig()
	cfg.DirectFraction = 0
	cfg.CacheBytes = 1024
	cfg.Ways = 1
	cfg.MaxMerges = 2
	mc, err := NewMemCache(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mc.Push(memreq.RawRequest{Addr: 0x40, Size: 8, Tag: 1}, 0)
	fill := mc.Tick(0)
	if len(fill) != 1 {
		t.Fatal("no fill")
	}
	mc.Push(memreq.RawRequest{Addr: 0x48, Size: 8, Tag: 2}, 1)
	if got := mc.Tick(1); len(got) != 0 {
		t.Fatal("merge emitted traffic")
	}
	// Third same-line request exceeds MaxMerges: stall until the fill
	// completes, then hit in the tags.
	mc.Push(memreq.RawRequest{Addr: 0x50, Size: 8, Tag: 3}, 2)
	for now := sim.Cycle(2); now < 6; now++ {
		if got := mc.Tick(now); len(got) != 0 {
			t.Fatal("exceeded MaxMerges")
		}
	}
	mc.Completed(&fill[0])
	if len(fill[0].Targets) != 2 {
		t.Fatalf("fill targets = %d, want 2", len(fill[0].Targets))
	}
	var hit []memreq.Built
	for now := sim.Cycle(6); now < 10 && len(hit) == 0; now++ {
		hit = mc.Tick(now)
	}
	if len(hit) != 1 {
		t.Fatal("stalled request never served")
	}
	mc.Completed(&hit[0])
	if st := mc.Stats().MemCache; st.Hits != 1 || st.MergedMisses != 1 {
		t.Fatalf("hits %d merged %d, want 1/1", st.Hits, st.MergedMisses)
	}
}

func TestMemCacheFenceAndAtomic(t *testing.T) {
	mc := allCached(t)
	mc.Push(memreq.RawRequest{Addr: 0x40, Size: 8, Tag: 1}, 0)
	mc.Push(memreq.RawRequest{Fence: true}, 0)
	mc.Push(memreq.RawRequest{Addr: 0x300, Size: 8, Atomic: true, Tag: 2}, 0)
	first := mc.Tick(0)
	if len(first) != 1 {
		t.Fatal("no dispatch")
	}
	for now := sim.Cycle(1); now < 5; now++ {
		if got := mc.Tick(now); len(got) != 0 {
			t.Fatal("crossed fence while outstanding")
		}
	}
	mc.Completed(&first[0])
	var atomic []memreq.Built
	for now := sim.Cycle(5); now < 10 && len(atomic) == 0; now++ {
		atomic = mc.Tick(now)
	}
	if len(atomic) != 1 || atomic[0].Req.Kind != hmc.AtomicOp || !atomic[0].Bypassed {
		t.Fatalf("atomic = %+v", atomic)
	}
	mc.Completed(&atomic[0])
}

func TestMemCacheReset(t *testing.T) {
	mc := allCached(t)
	mc.Push(memreq.RawRequest{Addr: 0x100, Size: 8}, 0)
	mc.Tick(0)
	mc.Reset()
	if mc.Pending() != 0 || mc.Inflight() != 0 || mc.Stats().RawRequests != 0 {
		t.Fatal("memcache reset incomplete")
	}
	if mc.Stats().MemCache == nil {
		t.Fatal("memcache stats lost on reset")
	}
}

func TestMemCacheConfigValidation(t *testing.T) {
	if err := DefaultMemCacheConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []MemCacheConfig{
		func() MemCacheConfig { c := DefaultMemCacheConfig(); c.DirectFraction = 1.5; return c }(),
		func() MemCacheConfig { c := DefaultMemCacheConfig(); c.LineBytes = 8; return c }(),
		func() MemCacheConfig { c := DefaultMemCacheConfig(); c.MaxFills = 0; return c }(),
		func() MemCacheConfig { c := DefaultMemCacheConfig(); c.MaxMerges = 0; return c }(),
		func() MemCacheConfig { c := DefaultMemCacheConfig(); c.QueueDepth = 0; return c }(),
		func() MemCacheConfig { c := DefaultMemCacheConfig(); c.CacheBytes = 100; return c }(),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestMemCacheHitRateZeroWhenIdle(t *testing.T) {
	var st memreq.MemCacheStats
	if hr := st.HitRate(); hr != 0 {
		t.Fatalf("idle hit rate = %v, want 0", hr)
	}
}
