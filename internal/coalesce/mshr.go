package coalesce

import (
	"fmt"
	"math/bits"

	"mac3d/internal/addr"
	"mac3d/internal/hmc"
	"mac3d/internal/memreq"
	"mac3d/internal/obs"
	"mac3d/internal/queue"
	"mac3d/internal/sim"
)

// MSHRConfig parameterizes the conventional miss-handling coalescer.
type MSHRConfig struct {
	// Entries is the number of miss status holding registers.
	Entries int
	// LineBytes is the fixed transaction size (the cache-line size;
	// 64B in commercial processors, §2.3.2).
	LineBytes uint32
	// MaxMerges bounds raw requests merged per MSHR entry.
	MaxMerges int
	// QueueDepth sizes the input FIFO.
	QueueDepth int
}

// DefaultMSHRConfig returns the §2.3 conventional design: 32 MSHRs of
// 64B lines, mirroring the 32-entry ARQ for a like-for-like area.
func DefaultMSHRConfig() MSHRConfig {
	return MSHRConfig{Entries: 32, LineBytes: 64, MaxMerges: 12, QueueDepth: 64}
}

// Validate reports the first configuration error, or nil.
func (c MSHRConfig) Validate() error {
	switch {
	case c.Entries <= 0:
		return fmt.Errorf("coalesce: MSHR Entries must be positive, got %d", c.Entries)
	case c.LineBytes == 0 || c.LineBytes%addr.FlitBytes != 0:
		return fmt.Errorf("coalesce: MSHR LineBytes must be a FLIT multiple, got %d", c.LineBytes)
	case c.MaxMerges <= 0:
		return fmt.Errorf("coalesce: MSHR MaxMerges must be positive, got %d", c.MaxMerges)
	case c.QueueDepth <= 0:
		return fmt.Errorf("coalesce: MSHR QueueDepth must be positive, got %d", c.QueueDepth)
	}
	return nil
}

// mshrEntry is one outstanding line miss. Targets merged after the
// line transaction dispatched are parked in late and delivered when
// the response returns.
type mshrEntry struct {
	key   uint64 // line-aligned address with the store bit in bit 63
	store bool
	slot  int // index in the register file (for bitset bookkeeping)
	late  []memreq.Target
}

// MSHR models conventional miss-status-holding-register coalescing
// (§2.3): the first request to a line allocates an entry and dispatches
// a fixed-size line transaction immediately; subsequent requests to the
// same line and type merge into the entry while it is outstanding and
// produce no traffic. The entry frees when the line response returns.
// This is the design whose limitations (§2.3.2) motivate MAC: the
// transaction size is pinned to LineBytes no matter how many requests
// merge, and merging stops the moment the original miss completes.
//
// The register file is a fixed slab with an occupancy bitset and a
// CAM-style linear key scan — what the hardware's parallel comparators
// do, and in software a bounded allocation-free probe. The previous
// map representation allocated on every miss and rehashed under churn,
// which dominated the per-cycle profile. Per-slot late lists are
// preallocated arenas, and Built target lists come from a recycling
// slab pool (see Recycle).
type MSHR struct {
	cfg MSHRConfig
	q   *queue.FIFO[memreq.RawRequest]

	// entries is the fixed register file; used is its occupancy
	// bitset (bit i set -> entries[i] holds an outstanding miss).
	entries []mshrEntry
	used    []uint64
	count   int

	// slabs is the free pool of target slices handed out in Builts.
	slabs [][]memreq.Target

	heldFence bool
	inflight  int
	st        *memreq.Stats
}

var _ memreq.Coalescer = (*MSHR)(nil)
var _ memreq.Recycler = (*MSHR)(nil)

// NewMSHR builds the conventional coalescer, panicking on bad config.
func NewMSHR(cfg MSHRConfig) *MSHR {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := &MSHR{
		cfg:     cfg,
		q:       queue.New[memreq.RawRequest](cfg.QueueDepth),
		entries: make([]mshrEntry, cfg.Entries),
		used:    make([]uint64, (cfg.Entries+63)/64),
		st:      memreq.NewStats(),
	}
	for i := range m.entries {
		m.entries[i].slot = i
		if cfg.MaxMerges > 1 {
			m.entries[i].late = make([]memreq.Target, 0, cfg.MaxMerges-1)
		}
	}
	return m
}

func (m *MSHR) lineKey(a uint64, store bool) uint64 {
	k := a & addr.PhysMask &^ uint64(m.cfg.LineBytes-1)
	if store {
		k |= 1 << 63
	}
	return k
}

// lookup scans the occupied registers for key — the associative
// comparator bank, as a bitset-guided linear probe.
func (m *MSHR) lookup(key uint64) *mshrEntry {
	for w, word := range m.used {
		for word != 0 {
			i := w*64 + bits.TrailingZeros64(word)
			word &= word - 1
			if m.entries[i].key == key {
				return &m.entries[i]
			}
		}
	}
	return nil
}

// alloc claims the lowest free register for key. Slot choice is
// invisible to timing (entries are only ever found by key), so
// lowest-free keeps the scan short without affecting results.
func (m *MSHR) alloc(key uint64, store bool) *mshrEntry {
	for w, word := range m.used {
		free := ^word
		if w == len(m.used)-1 && m.cfg.Entries%64 != 0 {
			free &= 1<<(m.cfg.Entries%64) - 1
		}
		if free == 0 {
			continue
		}
		i := w*64 + bits.TrailingZeros64(free)
		m.used[w] |= 1 << (i % 64)
		m.count++
		e := &m.entries[i]
		e.key, e.store, e.late = key, store, e.late[:0]
		return e
	}
	return nil
}

// release frees an entry's register.
func (m *MSHR) release(e *mshrEntry) {
	m.used[e.slot/64] &^= 1 << (e.slot % 64)
	m.count--
}

// takeTargets returns a pooled target slice seeded with t.
func (m *MSHR) takeTargets(t memreq.Target) []memreq.Target {
	if n := len(m.slabs); n > 0 {
		s := m.slabs[n-1]
		m.slabs = m.slabs[:n-1]
		return append(s, t)
	}
	return append(make([]memreq.Target, 0, m.cfg.MaxMerges), t)
}

// Recycle implements memreq.Recycler: a fully consumed Built hands its
// target slab back to the pool. Optional; see memreq.Recycler.
func (m *MSHR) Recycle(b *memreq.Built) {
	if b == nil || b.Targets == nil {
		return
	}
	if cap(b.Targets) > 0 {
		m.slabs = append(m.slabs, b.Targets[:0])
	}
	b.Targets = nil
}

// Push offers one raw request; it reports acceptance.
func (m *MSHR) Push(r memreq.RawRequest, now sim.Cycle) bool {
	if !m.q.Push(r) {
		m.st.PushRejects++
		return false
	}
	switch {
	case r.Fence:
		m.st.Fences++
	case r.Atomic:
		m.st.RawRequests++
		m.st.RawAtomics++
	case r.Store:
		m.st.RawRequests++
		m.st.RawStores++
	default:
		m.st.RawRequests++
		m.st.RawLoads++
	}
	return true
}

// Tick processes one queued request per cycle: merge into an
// outstanding MSHR (producing no traffic) or allocate an entry and
// dispatch the fixed-size line transaction immediately.
func (m *MSHR) Tick(now sim.Cycle) []memreq.Built {
	if m.heldFence {
		if m.inflight != 0 {
			return nil
		}
		m.heldFence = false
	}
	head, ok := m.q.Peek()
	if !ok {
		return nil
	}

	switch {
	case head.Fence:
		m.q.Pop()
		m.heldFence = true
		return nil

	case head.Atomic:
		m.q.Pop()
		b := memreq.Built{
			Req: hmc.Request{
				Kind: hmc.AtomicOp,
				Addr: head.Addr &^ uint64(addr.FlitMask),
				Data: addr.FlitBytes,
			},
			Targets: m.takeTargets(memreq.Target{
				Thread: head.Thread, Tag: head.Tag, Flit: addr.FlitID(head.Addr),
			}),
			Bypassed: true,
		}
		b.Req.Normalize()
		m.noteDispatch(&b)
		return []memreq.Built{b}
	}

	key := m.lineKey(head.Addr, head.Store)
	tgt := memreq.Target{Thread: head.Thread, Tag: head.Tag, Flit: addr.FlitID(head.Addr)}

	if e := m.lookup(key); e != nil {
		if 1+len(e.late) < m.cfg.MaxMerges {
			// Merge under the outstanding miss: no new traffic.
			m.q.Pop()
			e.late = append(e.late, tgt)
			return nil
		}
		// Entry full: structural stall until the line completes.
		return nil
	}

	if m.count >= m.cfg.Entries {
		return nil // all MSHRs busy: stall
	}

	m.q.Pop()
	e := m.alloc(key, head.Store)
	kind := hmc.Read
	if head.Store {
		kind = hmc.Write
	}
	b := memreq.Built{
		Req: hmc.Request{
			Kind: kind,
			Addr: key &^ (1 << 63),
			Data: m.cfg.LineBytes,
		},
		Targets: m.takeTargets(tgt),
		Handle:  e,
	}
	b.Req.Normalize()
	m.noteDispatch(&b)
	return []memreq.Built{b}
}

func (m *MSHR) noteDispatch(b *memreq.Built) {
	m.st.Transactions++
	if b.Bypassed {
		m.st.Bypassed++
	}
	m.st.BuiltBySizeBytes[b.Req.Data]++
	m.inflight++
}

// Completed frees the MSHR entry of the finished transaction and folds
// any targets merged after dispatch into the transaction's target list
// so the caller's response routing delivers them too.
func (m *MSHR) Completed(b *memreq.Built) {
	if m.inflight == 0 {
		panic("coalesce: MSHR.Completed without matching emission")
	}
	m.inflight--
	if e, ok := b.Handle.(*mshrEntry); ok && e != nil {
		if len(e.late) > 0 {
			// A pooled Targets has cap MaxMerges and dispatch + late
			// is at most MaxMerges, so this append stays in place.
			b.Targets = append(b.Targets, e.late...)
		}
		m.release(e)
	}
	m.st.TargetsPerTx.Observe(uint64(len(b.Targets)))
}

// Pending returns queued raw requests (including a held fence).
func (m *MSHR) Pending() int {
	p := m.q.Len()
	if m.heldFence {
		p++
	}
	return p
}

// Inflight returns dispatched transactions not yet completed.
func (m *MSHR) Inflight() int { return m.inflight }

// Stats returns the accumulated statistics.
func (m *MSHR) Stats() *memreq.Stats { return m.st }

// Reset restores the initial empty state (the slab pool survives).
func (m *MSHR) Reset() {
	m.q.Reset()
	clear(m.used)
	m.count = 0
	m.heldFence = false
	m.inflight = 0
	m.st = memreq.NewStats()
}

// AttachObs registers the MSHR's occupancy and queue state into a
// run's observability layer.
func (m *MSHR) AttachObs(o *obs.Obs) {
	reg := o.Reg()
	reg.Func("mshr.entries", func() float64 { return float64(m.count) })
	reg.Func("mshr.queue", func() float64 { return float64(m.q.Len()) })
	rec := o.Rec()
	rec.Watch("mshr.entries", func() float64 { return float64(m.count) })
	rec.Watch("mshr.queue", func() float64 { return float64(m.q.Len()) })
}

var _ obs.Attacher = (*MSHR)(nil)
