// Package coalesce provides the baseline memory-path designs that the
// paper compares MAC against:
//
//   - Null: the "without MAC" path — every raw request becomes its own
//     FLIT-granularity HMC transaction, the configuration all of the
//     paper's with/without comparisons (Figs. 10, 12, 13, 14, 17) use;
//   - MSHR: the conventional miss-status-holding-register coalescer of
//     §2.3 — fixed 64B cache-line transactions dispatched immediately
//     on first miss, with subsequent same-line requests merged while
//     the original is outstanding. It illustrates the limitation
//     argued in §2.3.2: fixed-size, dispatch-on-allocate coalescing
//     cannot exploit the HMC's large flexible packets.
//
// Both implement memreq.Coalescer, so the node model and the
// experiment harness can swap them freely with the real MAC.
package coalesce

import (
	"fmt"

	"mac3d/internal/addr"
	"mac3d/internal/hmc"
	"mac3d/internal/memreq"
	"mac3d/internal/queue"
	"mac3d/internal/sim"
)

// NullConfig parameterizes the raw request path.
type NullConfig struct {
	// QueueDepth sizes the dispatch FIFO decoupling cores from the
	// memory interface.
	QueueDepth int
	// IssuePerCycle bounds transactions dispatched per cycle. The
	// paper's no-MAC interface issues one request per cycle (the
	// same rate at which the ARQ accepts raw requests).
	IssuePerCycle int
}

// DefaultNullConfig returns the paper's no-MAC configuration.
func DefaultNullConfig() NullConfig {
	return NullConfig{QueueDepth: 64, IssuePerCycle: 1}
}

// Null is the identity "coalescer": raw requests pass through
// unmodified as single-FLIT (or raw-sized) transactions.
type Null struct {
	cfg NullConfig
	q   *queue.FIFO[memreq.RawRequest]

	heldFence bool
	inflight  int
	st        *memreq.Stats
}

var _ memreq.Coalescer = (*Null)(nil)

// NewNull builds the pass-through path.
func NewNull(cfg NullConfig) *Null {
	if cfg.QueueDepth <= 0 {
		panic(fmt.Sprintf("coalesce: QueueDepth must be positive, got %d", cfg.QueueDepth))
	}
	if cfg.IssuePerCycle <= 0 {
		cfg.IssuePerCycle = 1
	}
	return &Null{cfg: cfg, q: queue.New[memreq.RawRequest](cfg.QueueDepth), st: memreq.NewStats()}
}

// Push offers one raw request; it reports acceptance.
func (n *Null) Push(r memreq.RawRequest, now sim.Cycle) bool {
	if !n.q.Push(r) {
		n.st.PushRejects++
		return false
	}
	switch {
	case r.Fence:
		n.st.Fences++
	case r.Atomic:
		n.st.RawRequests++
		n.st.RawAtomics++
	case r.Store:
		n.st.RawRequests++
		n.st.RawStores++
	default:
		n.st.RawRequests++
		n.st.RawLoads++
	}
	return true
}

// Tick dispatches up to IssuePerCycle queued requests as transactions.
func (n *Null) Tick(now sim.Cycle) []memreq.Built {
	var out []memreq.Built
	for len(out) < n.cfg.IssuePerCycle {
		if n.heldFence {
			if n.inflight == 0 {
				n.heldFence = false
			} else {
				break
			}
		}
		head, ok := n.q.Peek()
		if !ok {
			break
		}
		if head.Fence {
			n.q.Pop()
			n.heldFence = true
			continue
		}
		n.q.Pop()
		kind := hmc.Read
		switch {
		case head.Atomic:
			kind = hmc.AtomicOp
		case head.Store:
			kind = hmc.Write
		}
		// The transaction is FLIT-aligned; an access starting mid-FLIT
		// and running into the next FLIT needs the span of both (the
		// same rounding MAC's bypass path applies).
		base := head.Addr &^ uint64(addr.FlitMask)
		size := uint32(head.Addr-base) + uint32(head.Size)
		if size == 0 {
			size = 1
		}
		if rem := size % addr.FlitBytes; rem != 0 {
			size += addr.FlitBytes - rem
		}
		b := memreq.Built{
			Req: hmc.Request{
				Kind: kind,
				Addr: base,
				Data: size,
			},
			Targets: []memreq.Target{
				{Thread: head.Thread, Tag: head.Tag, Flit: addr.FlitID(head.Addr)},
			},
		}
		b.Req.Normalize()
		n.st.Transactions++
		n.st.BuiltBySizeBytes[b.Req.Data]++
		n.st.TargetsPerTx.Observe(1)
		n.inflight++
		out = append(out, b)
	}
	return out
}

// Completed signals the completion of one emitted transaction.
func (n *Null) Completed(*memreq.Built) {
	if n.inflight == 0 {
		panic("coalesce: Null.Completed without matching emission")
	}
	n.inflight--
}

// Pending returns the queued raw requests (including fences).
func (n *Null) Pending() int {
	p := n.q.Len()
	if n.heldFence {
		p++
	}
	return p
}

// Inflight returns emitted transactions not yet completed.
func (n *Null) Inflight() int { return n.inflight }

// Stats returns the accumulated statistics.
func (n *Null) Stats() *memreq.Stats { return n.st }

// Reset restores the initial empty state.
func (n *Null) Reset() {
	n.q.Reset()
	n.heldFence = false
	n.inflight = 0
	n.st = memreq.NewStats()
}
