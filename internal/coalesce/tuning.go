package coalesce

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Tuning is the parsed form of the frontend tuning string accepted by
// `macsim -frontend` and the job spec's "frontend" field: an ordered
// comma-separated key=value list adjusting the Warp and MemCache
// frontends away from their defaults. The zero value changes nothing.
//
// Keys: lanes (warp width), warps (warp scoreboard slots), split
// (memcache direct fraction, 0..1), cache (memcache capacity bytes),
// line (memcache line bytes), ways (memcache associativity).
type Tuning struct {
	// Lanes and Warps tune the Warp frontend; 0 leaves the default.
	Lanes int
	Warps int
	// Split is the MemCache direct fraction; SplitSet gates it so an
	// explicit split=0 (all cached) is distinguishable from unset.
	Split    float64
	SplitSet bool
	// CacheBytes, LineBytes and Ways tune the MemCache geometry; 0
	// leaves the defaults.
	CacheBytes uint64
	LineBytes  uint32
	Ways       int
}

// maxTuningLen bounds the accepted tuning string.
const maxTuningLen = 256

// ParseTuning parses a frontend tuning string. The empty string is the
// zero Tuning. Syntax and range errors are reported; semantic
// constraints (power-of-two lane counts, cache geometry) are enforced
// by the frontend configs the tuning is applied to.
func ParseTuning(s string) (Tuning, error) {
	var t Tuning
	if s == "" {
		return t, nil
	}
	if len(s) > maxTuningLen {
		return t, fmt.Errorf("coalesce: tuning string longer than %d bytes", maxTuningLen)
	}
	seen := make(map[string]bool, 6)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		key, val, ok := strings.Cut(part, "=")
		if !ok || key == "" || val == "" {
			return Tuning{}, fmt.Errorf("coalesce: tuning %q: want key=value, got %q", s, part)
		}
		if seen[key] {
			return Tuning{}, fmt.Errorf("coalesce: tuning %q: duplicate key %q", s, key)
		}
		seen[key] = true
		switch key {
		case "lanes":
			n, err := parseTuningInt(key, val, 1<<16)
			if err != nil {
				return Tuning{}, err
			}
			t.Lanes = n
		case "warps":
			n, err := parseTuningInt(key, val, 1<<16)
			if err != nil {
				return Tuning{}, err
			}
			t.Warps = n
		case "split":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || math.IsNaN(f) || f < 0 || f > 1 {
				return Tuning{}, fmt.Errorf("coalesce: tuning split=%q: want a fraction in [0, 1]", val)
			}
			t.Split, t.SplitSet = f, true
		case "cache":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil || n == 0 || n > 1<<32 {
				return Tuning{}, fmt.Errorf("coalesce: tuning cache=%q: want bytes in [1, 2^32]", val)
			}
			t.CacheBytes = n
		case "line":
			n, err := parseTuningInt(key, val, 1<<16)
			if err != nil {
				return Tuning{}, err
			}
			t.LineBytes = uint32(n)
		case "ways":
			n, err := parseTuningInt(key, val, 1<<16)
			if err != nil {
				return Tuning{}, err
			}
			t.Ways = n
		default:
			return Tuning{}, fmt.Errorf("coalesce: tuning %q: unknown key %q (have lanes, warps, split, cache, line, ways)", s, key)
		}
	}
	return t, nil
}

func parseTuningInt(key, val string, hi int) (int, error) {
	n, err := strconv.Atoi(val)
	if err != nil || n <= 0 || n > hi {
		return 0, fmt.Errorf("coalesce: tuning %s=%q: want an integer in [1, %d]", key, val, hi)
	}
	return n, nil
}

// String renders the tuning in canonical form: set keys only, fixed
// order. ParseTuning(t.String()) round-trips.
func (t Tuning) String() string {
	var parts []string
	if t.Lanes != 0 {
		parts = append(parts, fmt.Sprintf("lanes=%d", t.Lanes))
	}
	if t.Warps != 0 {
		parts = append(parts, fmt.Sprintf("warps=%d", t.Warps))
	}
	if t.SplitSet {
		parts = append(parts, "split="+strconv.FormatFloat(t.Split, 'g', -1, 64))
	}
	if t.CacheBytes != 0 {
		parts = append(parts, fmt.Sprintf("cache=%d", t.CacheBytes))
	}
	if t.LineBytes != 0 {
		parts = append(parts, fmt.Sprintf("line=%d", t.LineBytes))
	}
	if t.Ways != 0 {
		parts = append(parts, fmt.Sprintf("ways=%d", t.Ways))
	}
	return strings.Join(parts, ",")
}

// ApplyWarp overlays the tuning's warp knobs onto cfg.
func (t Tuning) ApplyWarp(cfg WarpConfig) WarpConfig {
	if t.Lanes != 0 {
		cfg.Lanes = t.Lanes
	}
	if t.Warps != 0 {
		cfg.MaxWarps = t.Warps
	}
	return cfg
}

// ApplyMemCache overlays the tuning's memcache knobs onto cfg.
func (t Tuning) ApplyMemCache(cfg MemCacheConfig) MemCacheConfig {
	if t.SplitSet {
		cfg.DirectFraction = t.Split
	}
	if t.CacheBytes != 0 {
		cfg.CacheBytes = t.CacheBytes
	}
	if t.LineBytes != 0 {
		cfg.LineBytes = t.LineBytes
	}
	if t.Ways != 0 {
		cfg.Ways = t.Ways
	}
	return cfg
}
