package coalesce

import (
	"strings"
	"testing"
)

func TestParseTuningRoundTrip(t *testing.T) {
	cases := []string{
		"",
		"lanes=16",
		"warps=8",
		"split=0.25",
		"split=0",
		"split=1",
		"cache=65536",
		"line=128",
		"ways=4",
		"lanes=16,warps=8,split=0.5,cache=262144,line=128,ways=4",
	}
	for _, in := range cases {
		tu, err := ParseTuning(in)
		if err != nil {
			t.Fatalf("ParseTuning(%q): %v", in, err)
		}
		again, err := ParseTuning(tu.String())
		if err != nil {
			t.Fatalf("re-parse of %q -> %q: %v", in, tu.String(), err)
		}
		if again != tu {
			t.Fatalf("round trip of %q: %+v != %+v", in, again, tu)
		}
	}
}

func TestParseTuningRejections(t *testing.T) {
	bad := []string{
		"lanes",                        // no value
		"lanes=",                       // empty value
		"=8",                           // empty key
		"lanes=0",                      // below range
		"lanes=-4",                     // negative
		"lanes=8,lanes=16",             // duplicate
		"bogus=1",                      // unknown key
		"split=1.5",                    // above 1
		"split=-0.1",                   // below 0
		"split=nan",                    // not a number
		"cache=0",                      // zero bytes
		"lanes=8,,warps=4",             // empty element
		strings.Repeat("lanes=8,", 64), // over length bound
	}
	for _, in := range bad {
		if _, err := ParseTuning(in); err == nil {
			t.Errorf("ParseTuning(%q) accepted, want error", in)
		}
	}
}

func TestTuningApplyOverlaysOnlySetFields(t *testing.T) {
	tu, err := ParseTuning("lanes=16,split=0")
	if err != nil {
		t.Fatal(err)
	}
	w := tu.ApplyWarp(DefaultWarpConfig())
	if w.Lanes != 16 {
		t.Fatalf("lanes = %d, want 16", w.Lanes)
	}
	if w.MaxWarps != DefaultWarpConfig().MaxWarps {
		t.Fatalf("warps = %d, want default %d", w.MaxWarps, DefaultWarpConfig().MaxWarps)
	}
	m := tu.ApplyMemCache(DefaultMemCacheConfig())
	if m.DirectFraction != 0 {
		t.Fatalf("explicit split=0 not applied: %v", m.DirectFraction)
	}
	if m.CacheBytes != DefaultMemCacheConfig().CacheBytes {
		t.Fatalf("cache = %d, want default", m.CacheBytes)
	}

	zero, err := ParseTuning("")
	if err != nil {
		t.Fatal(err)
	}
	if zero.ApplyMemCache(DefaultMemCacheConfig()) != DefaultMemCacheConfig() {
		t.Fatal("zero tuning changed the memcache config")
	}
	if zero.ApplyWarp(DefaultWarpConfig()) != DefaultWarpConfig() {
		t.Fatal("zero tuning changed the warp config")
	}
}

func FuzzParseTuning(f *testing.F) {
	f.Add("")
	f.Add("lanes=8,warps=4")
	f.Add("split=0.25,cache=65536,line=128,ways=4")
	f.Add("lanes=8,lanes=8")
	f.Add("split=1e-1")
	f.Add("cache=99999999999999999999")
	f.Add("bogus=,=,")
	f.Fuzz(func(t *testing.T, s string) {
		tu, err := ParseTuning(s)
		if err != nil {
			return
		}
		// Accepted tunings render canonically and round-trip to the
		// same parsed value (the rendering may normalize spelling,
		// e.g. "1e-1" -> "0.1", so compare structs, not strings).
		again, err := ParseTuning(tu.String())
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", tu.String(), s, err)
		}
		if again != tu {
			t.Fatalf("round trip of %q: %+v != %+v", s, again, tu)
		}
	})
}
