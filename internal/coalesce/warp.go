package coalesce

import (
	"fmt"
	"math/bits"

	"mac3d/internal/addr"
	"mac3d/internal/hmc"
	"mac3d/internal/memreq"
	"mac3d/internal/obs"
	"mac3d/internal/queue"
	"mac3d/internal/sim"
)

// WarpConfig parameterizes the SIMT warp-lane coalescer.
type WarpConfig struct {
	// Lanes is the warp width: the number of raw requests gathered
	// into one warp. Must be a power of two in [4, 64].
	Lanes int
	// MaxWarps bounds warps alive at once (dispatching or suspended
	// awaiting responses); a full scoreboard stalls gathering.
	MaxWarps int
	// QueueDepth sizes the input FIFO.
	QueueDepth int
}

// DefaultWarpConfig returns an 8-lane, 4-warp configuration: one warp
// per hardware thread of the paper's 8-core node, with the lane block
// (4B x 8 lanes = 32B) spanning two FLITs.
func DefaultWarpConfig() WarpConfig {
	return WarpConfig{Lanes: 8, MaxWarps: 4, QueueDepth: 64}
}

// Validate reports the first configuration error, or nil.
func (c WarpConfig) Validate() error {
	switch {
	case c.Lanes < 4 || c.Lanes > 64 || c.Lanes&(c.Lanes-1) != 0:
		return fmt.Errorf("coalesce: Warp Lanes must be a power of two in [4, 64], got %d", c.Lanes)
	case c.MaxWarps <= 0 || c.MaxWarps > 256:
		return fmt.Errorf("coalesce: Warp MaxWarps must be in [1, 256], got %d", c.MaxWarps)
	case c.QueueDepth <= 0:
		return fmt.Errorf("coalesce: Warp QueueDepth must be positive, got %d", c.QueueDepth)
	}
	return nil
}

// warpLane is one gathered raw request and its service state.
type warpLane struct {
	req    memreq.RawRequest
	served bool
}

// warpState is one in-flight warp: gathered lanes, the count not yet
// covered by an emitted mask group, and the transactions still awaiting
// device responses. A warp whose lanes are all served is "suspended"
// until outstanding reaches zero, which frees its scoreboard slot
// (resume, in SIMT terms: the threads may proceed).
type warpState struct {
	lanes       []warpLane
	unserved    int
	outstanding int
	masks       uint64
	store       bool
	dispatched  bool
}

// Warp is a SIMT-style warp-lane coalescer, after the RISC-V GPU
// memory units: consecutive raw requests of the same kind gather into a
// warp of up to Lanes lanes; each cycle a leader lane is picked among
// the unserved lanes and every lane in the leader's block joins its
// mask group. If all grouped lanes carry the leader's exact address the
// group is served by one narrow SameAddress transaction; otherwise one
// SameBlock transaction fetches the whole lane block. The warp suspends
// once every lane is covered and resumes (freeing its slot) when the
// last of its transactions completes.
//
// Against MAC this models the GPU answer to the same problem: spatial
// grouping is limited to what one warp exhibits at one instant, with no
// cross-warp window — divergent warps pay one transaction per distinct
// block.
type Warp struct {
	cfg        WarpConfig
	logLanes   uint
	blockShift uint
	q          *queue.FIFO[memreq.RawRequest]

	cur  *warpState
	live int

	// slabs pools target slices handed out in Builts; warps pools
	// retired warpState values (lane arrays survive).
	slabs [][]memreq.Target
	warps []*warpState

	heldFence bool
	inflight  int
	st        *memreq.Stats
}

var _ memreq.Coalescer = (*Warp)(nil)
var _ memreq.Recycler = (*Warp)(nil)
var _ obs.Attacher = (*Warp)(nil)

// NewWarp builds the SIMT frontend, returning an error on bad config.
func NewWarp(cfg WarpConfig) (*Warp, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	logLanes := uint(bits.TrailingZeros(uint(cfg.Lanes)))
	w := &Warp{
		cfg:      cfg,
		logLanes: logLanes,
		// The lane block is Lanes words of 4 bytes, the exemplar's
		// addr >> (LOG_LANES+2); Lanes >= 4 keeps it FLIT-aligned.
		blockShift: logLanes + 2,
		q:          queue.New[memreq.RawRequest](cfg.QueueDepth),
		st:         memreq.NewStats(),
	}
	w.st.Warp = &memreq.WarpStats{}
	return w, nil
}

// blockBytes returns the lane-block span in bytes.
func (w *Warp) blockBytes() uint32 { return uint32(1) << w.blockShift }

// takeTargets returns a pooled target slice seeded with t.
func (w *Warp) takeTargets(t memreq.Target) []memreq.Target {
	if n := len(w.slabs); n > 0 {
		s := w.slabs[n-1]
		w.slabs = w.slabs[:n-1]
		return append(s, t)
	}
	return append(make([]memreq.Target, 0, w.cfg.Lanes), t)
}

// Recycle implements memreq.Recycler: a fully consumed Built hands its
// target slab back to the pool.
func (w *Warp) Recycle(b *memreq.Built) {
	if b == nil || b.Targets == nil {
		return
	}
	if cap(b.Targets) > 0 {
		w.slabs = append(w.slabs, b.Targets[:0])
	}
	b.Targets = nil
}

// takeWarp returns a pooled (or fresh) empty warpState.
func (w *Warp) takeWarp() *warpState {
	if n := len(w.warps); n > 0 {
		ws := w.warps[n-1]
		w.warps = w.warps[:n-1]
		ws.lanes = ws.lanes[:0]
		ws.unserved, ws.outstanding, ws.masks = 0, 0, 0
		ws.store, ws.dispatched = false, false
		return ws
	}
	return &warpState{lanes: make([]warpLane, 0, w.cfg.Lanes)}
}

// Push offers one raw request; it reports acceptance.
func (w *Warp) Push(r memreq.RawRequest, now sim.Cycle) bool {
	if !w.q.Push(r) {
		w.st.PushRejects++
		return false
	}
	switch {
	case r.Fence:
		w.st.Fences++
	case r.Atomic:
		w.st.RawRequests++
		w.st.RawAtomics++
	case r.Store:
		w.st.RawRequests++
		w.st.RawStores++
	default:
		w.st.RawRequests++
		w.st.RawLoads++
	}
	return true
}

// Tick emits at most one mask-group transaction per cycle: it first
// serves the warp being dispatched, gathering a new warp from the queue
// when none is active and the scoreboard has a free slot.
func (w *Warp) Tick(now sim.Cycle) []memreq.Built {
	if w.heldFence {
		if w.inflight != 0 {
			return nil
		}
		w.heldFence = false
	}

	if w.cur == nil {
		ok, bypass := w.gather()
		if bypass != nil {
			return bypass
		}
		if !ok {
			return nil
		}
	}
	return w.emitMaskGroup()
}

// gather forms the next warp from the queue head. It returns ok=true
// when a warp was gathered into w.cur; a non-nil Built slice means the
// head was an atomic served by a bypass transaction instead.
func (w *Warp) gather() (ok bool, bypass []memreq.Built) {
	if w.live >= w.cfg.MaxWarps {
		return false, nil // scoreboard full: stall until a warp resumes
	}
	head, okPeek := w.q.Peek()
	if !okPeek {
		return false, nil
	}
	switch {
	case head.Fence:
		w.q.Pop()
		w.heldFence = true
		return false, nil

	case head.Atomic:
		w.q.Pop()
		b := memreq.Built{
			Req: hmc.Request{
				Kind: hmc.AtomicOp,
				Addr: head.Addr &^ uint64(addr.FlitMask),
				Data: addr.FlitBytes,
			},
			Targets: w.takeTargets(memreq.Target{
				Thread: head.Thread, Tag: head.Tag, Flit: addr.FlitID(head.Addr),
			}),
			Bypassed: true,
		}
		b.Req.Normalize()
		w.noteDispatch(&b, 1)
		return false, []memreq.Built{b}
	}

	ws := w.takeWarp()
	ws.store = head.Store
	for len(ws.lanes) < w.cfg.Lanes {
		r, okNext := w.q.Peek()
		if !okNext || r.Fence || r.Atomic || r.Store != ws.store {
			break // a warp executes one instruction: same kind only
		}
		w.q.Pop()
		ws.lanes = append(ws.lanes, warpLane{req: r})
	}
	ws.unserved = len(ws.lanes)
	w.cur = ws
	w.live++
	w.st.Warp.WarpsFormed++
	return true, nil
}

// emitMaskGroup serves one mask group of the active warp: the leader is
// the first unserved lane, the group is every unserved lane in the
// leader's block, and the transaction is narrow (SameAddress) when all
// grouped lanes carry the leader's exact address, else the whole block.
func (w *Warp) emitMaskGroup() []memreq.Built {
	ws := w.cur
	if ws == nil || ws.unserved == 0 {
		return nil
	}
	var leader *memreq.RawRequest
	for i := range ws.lanes {
		if !ws.lanes[i].served {
			leader = &ws.lanes[i].req
			break
		}
	}
	leaderBlock := leader.Addr >> w.blockShift
	sameAddr := true
	var targets []memreq.Target
	end := uint64(0)
	for i := range ws.lanes {
		ln := &ws.lanes[i]
		if ln.served || ln.req.Addr>>w.blockShift != leaderBlock {
			continue
		}
		if ln.req.Addr != leader.Addr {
			sameAddr = false
		}
		ln.served = true
		ws.unserved--
		tgt := memreq.Target{
			Thread: ln.req.Thread, Tag: ln.req.Tag, Flit: addr.FlitID(ln.req.Addr),
		}
		if targets == nil {
			targets = w.takeTargets(tgt)
		} else {
			targets = append(targets, tgt)
		}
		if e := ln.req.Addr + uint64(ln.req.Size); e > end {
			end = e
		}
	}

	var base uint64
	var size uint32
	if sameAddr {
		// One narrow access serves every lane: FLIT-align the shared
		// address, spanning into the next FLIT when the access does.
		base = leader.Addr &^ uint64(addr.FlitMask)
		size = uint32(end - base)
		if size == 0 {
			size = 1
		}
		w.st.Warp.SameAddrTx++
	} else {
		// Divergent group: fetch the whole lane block, extended when a
		// lane's access runs past the block end so every target's FLIT
		// span is covered.
		base = leaderBlock << w.blockShift
		size = w.blockBytes()
		if over := uint32(end - base); over > size {
			size = over
		}
		w.st.Warp.SameBlockTx++
	}
	if rem := size % addr.FlitBytes; rem != 0 {
		size += addr.FlitBytes - rem
	}

	kind := hmc.Read
	if ws.store {
		kind = hmc.Write
	}
	b := memreq.Built{
		Req:     hmc.Request{Kind: kind, Addr: base, Data: size},
		Targets: targets,
		Handle:  ws,
	}
	b.Req.Normalize()
	ws.outstanding++
	ws.masks++
	w.noteDispatch(&b, uint64(len(targets)))
	if ws.unserved == 0 {
		// Every lane covered: the warp suspends awaiting responses.
		ws.dispatched = true
		w.st.Warp.WarpsSuspended++
		w.st.Warp.MasksPerWarp.Observe(ws.masks)
		w.cur = nil
	}
	return []memreq.Built{b}
}

func (w *Warp) noteDispatch(b *memreq.Built, targets uint64) {
	w.st.Transactions++
	if b.Bypassed {
		w.st.Bypassed++
	}
	w.st.BuiltBySizeBytes[b.Req.Data]++
	w.st.TargetsPerTx.Observe(targets)
	w.inflight++
}

// Completed signals one transaction done; the last completion of a
// fully dispatched warp resumes it, freeing the scoreboard slot.
func (w *Warp) Completed(b *memreq.Built) {
	if w.inflight == 0 {
		panic("coalesce: Warp.Completed without matching emission")
	}
	w.inflight--
	ws, ok := b.Handle.(*warpState)
	if !ok || ws == nil {
		return // atomic bypass: no warp attached
	}
	if ws.outstanding == 0 {
		panic("coalesce: Warp.Completed with idle warp handle")
	}
	ws.outstanding--
	if ws.dispatched && ws.outstanding == 0 {
		w.live--
		w.warps = append(w.warps, ws)
	}
}

// Pending returns queued raw requests plus unserved gathered lanes
// (including a held fence).
func (w *Warp) Pending() int {
	p := w.q.Len()
	if w.cur != nil {
		p += w.cur.unserved
	}
	if w.heldFence {
		p++
	}
	return p
}

// Inflight returns dispatched transactions not yet completed.
func (w *Warp) Inflight() int { return w.inflight }

// Stats returns the accumulated statistics.
func (w *Warp) Stats() *memreq.Stats { return w.st }

// Reset restores the initial empty state (the pools survive).
func (w *Warp) Reset() {
	w.q.Reset()
	if w.cur != nil {
		w.warps = append(w.warps, w.cur)
		w.cur = nil
	}
	w.live = 0
	w.heldFence = false
	w.inflight = 0
	w.st = memreq.NewStats()
	w.st.Warp = &memreq.WarpStats{}
}

// AttachObs registers the warp frontend's scoreboard and queue state
// into a run's observability layer.
func (w *Warp) AttachObs(o *obs.Obs) {
	reg := o.Reg()
	reg.Func("warp.live", func() float64 { return float64(w.live) })
	reg.Func("warp.queue", func() float64 { return float64(w.q.Len()) })
	rec := o.Rec()
	rec.Watch("warp.live", func() float64 { return float64(w.live) })
	rec.Watch("warp.queue", func() float64 { return float64(w.q.Len()) })
}
