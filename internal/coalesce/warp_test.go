package coalesce

import (
	"testing"

	"mac3d/internal/hmc"
	"mac3d/internal/memreq"
	"mac3d/internal/sim"
)

func TestWarpAllLanesOneAddressSingleTx(t *testing.T) {
	w, err := NewWarp(DefaultWarpConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Every lane loads the same address: one narrow SameAddress
	// transaction must serve the whole warp.
	for i := 0; i < 8; i++ {
		if !w.Push(memreq.RawRequest{Addr: 0x100, Size: 4, Tag: uint16(i)}, 0) {
			t.Fatalf("push %d rejected", i)
		}
	}
	out := w.Tick(0)
	if len(out) != 1 {
		t.Fatalf("emitted %d transactions, want 1", len(out))
	}
	b := out[0]
	if len(b.Targets) != 8 {
		t.Fatalf("targets = %d, want all 8 lanes", len(b.Targets))
	}
	if b.Req.Addr != 0x100 || b.Req.Data != 16 {
		t.Fatalf("tx = %#x/%dB, want 0x100/16B", b.Req.Addr, b.Req.Data)
	}
	ws := w.Stats().Warp
	if ws.SameAddrTx != 1 || ws.SameBlockTx != 0 {
		t.Fatalf("same-addr %d same-block %d, want 1/0", ws.SameAddrTx, ws.SameBlockTx)
	}
	if ws.WarpsFormed != 1 || ws.WarpsSuspended != 1 {
		t.Fatalf("formed %d suspended %d, want 1/1", ws.WarpsFormed, ws.WarpsSuspended)
	}
	w.Completed(&b)
	if w.Inflight() != 0 {
		t.Fatalf("inflight = %d after completion", w.Inflight())
	}
}

func TestWarpSameBlockGroupsIntoOneTx(t *testing.T) {
	w, err := NewWarp(DefaultWarpConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 8 lanes striding 4B through one 32B lane block (blockShift = 5
	// at 8 lanes): one SameBlock transaction covering the block.
	for i := 0; i < 8; i++ {
		w.Push(memreq.RawRequest{Addr: uint64(0x100 + 4*i), Size: 4, Tag: uint16(i)}, 0)
	}
	out := w.Tick(0)
	if len(out) != 1 {
		t.Fatalf("emitted %d transactions, want 1", len(out))
	}
	b := out[0]
	if len(b.Targets) != 8 {
		t.Fatalf("targets = %d, want 8", len(b.Targets))
	}
	if b.Req.Addr != 0x100 || b.Req.Data != 32 {
		t.Fatalf("tx = %#x/%dB, want the 0x100/32B lane block", b.Req.Addr, b.Req.Data)
	}
	if ws := w.Stats().Warp; ws.SameBlockTx != 1 || ws.SameAddrTx != 0 {
		t.Fatalf("same-block %d same-addr %d, want 1/0", ws.SameBlockTx, ws.SameAddrTx)
	}
	w.Completed(&b)
}

func TestWarpDivergentLanesOneTxPerBlock(t *testing.T) {
	w, err := NewWarp(DefaultWarpConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Fully divergent: every lane in its own block — one transaction
	// per mask group, 8 groups total.
	for i := 0; i < 8; i++ {
		w.Push(memreq.RawRequest{Addr: uint64(i) << 12, Size: 4, Tag: uint16(i)}, 0)
	}
	var built []memreq.Built
	for now := sim.Cycle(0); now < 20 && len(built) < 8; now++ {
		built = append(built, w.Tick(now)...)
	}
	if len(built) != 8 {
		t.Fatalf("emitted %d transactions, want 8", len(built))
	}
	for i := range built {
		w.Completed(&built[i])
	}
	ws := w.Stats().Warp
	if got := ws.MasksPerWarp.Max(); got != 8 {
		t.Fatalf("masks per warp max = %d, want 8", got)
	}
	if ws.WarpsSuspended != 1 {
		t.Fatalf("suspended = %d, want 1", ws.WarpsSuspended)
	}
}

func TestWarpScoreboardStallsAndResumes(t *testing.T) {
	cfg := DefaultWarpConfig()
	cfg.MaxWarps = 1
	w, err := NewWarp(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		w.Push(memreq.RawRequest{Addr: 0x40, Size: 4, Tag: uint16(i)}, 0)
	}
	first := w.Tick(0)
	if len(first) != 1 {
		t.Fatalf("first warp emitted %d, want 1", len(first))
	}
	// The single scoreboard slot is suspended awaiting its response:
	// the second warp must not gather.
	for now := sim.Cycle(1); now < 5; now++ {
		if got := w.Tick(now); len(got) != 0 {
			t.Fatal("gathered past a full scoreboard")
		}
	}
	w.Completed(&first[0]) // resume: slot freed
	var second []memreq.Built
	for now := sim.Cycle(5); now < 10 && len(second) == 0; now++ {
		second = w.Tick(now)
	}
	if len(second) != 1 || len(second[0].Targets) != 8 {
		t.Fatalf("second warp = %+v", second)
	}
	w.Completed(&second[0])
}

func TestWarpStopsGatherAtKindBoundary(t *testing.T) {
	w, err := NewWarp(DefaultWarpConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 4 loads then 4 stores at one address: two warps, two kinds.
	for i := 0; i < 4; i++ {
		w.Push(memreq.RawRequest{Addr: 0x80, Size: 4, Tag: uint16(i)}, 0)
	}
	for i := 4; i < 8; i++ {
		w.Push(memreq.RawRequest{Addr: 0x80, Size: 4, Store: true, Tag: uint16(i)}, 0)
	}
	var built []memreq.Built
	for now := sim.Cycle(0); now < 20 && len(built) < 2; now++ {
		got := w.Tick(now)
		for i := range got {
			built = append(built, got[i])
			w.Completed(&built[len(built)-1])
		}
	}
	if len(built) != 2 {
		t.Fatalf("emitted %d transactions, want 2", len(built))
	}
	if built[0].Req.Kind != hmc.Read || built[1].Req.Kind != hmc.Write {
		t.Fatalf("kinds = %v/%v, want Read/Write", built[0].Req.Kind, built[1].Req.Kind)
	}
}

func TestWarpFenceAndAtomic(t *testing.T) {
	w, err := NewWarp(DefaultWarpConfig())
	if err != nil {
		t.Fatal(err)
	}
	w.Push(memreq.RawRequest{Addr: 0x40, Size: 4, Tag: 1}, 0)
	w.Push(memreq.RawRequest{Fence: true}, 0)
	w.Push(memreq.RawRequest{Addr: 0x200, Size: 8, Atomic: true, Tag: 2}, 0)
	first := w.Tick(0)
	if len(first) != 1 {
		t.Fatal("no dispatch")
	}
	for now := sim.Cycle(1); now < 5; now++ {
		if got := w.Tick(now); len(got) != 0 {
			t.Fatal("crossed fence while outstanding")
		}
	}
	w.Completed(&first[0])
	var atomic []memreq.Built
	for now := sim.Cycle(5); now < 10 && len(atomic) == 0; now++ {
		atomic = w.Tick(now)
	}
	if len(atomic) != 1 || atomic[0].Req.Kind != hmc.AtomicOp || !atomic[0].Bypassed {
		t.Fatalf("atomic = %+v", atomic)
	}
	w.Completed(&atomic[0])
}

func TestWarpCompletedUnderflowPanics(t *testing.T) {
	w, err := NewWarp(DefaultWarpConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on unmatched Completed")
		}
	}()
	w.Completed(&memreq.Built{})
}

func TestWarpReset(t *testing.T) {
	w, err := NewWarp(DefaultWarpConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		w.Push(memreq.RawRequest{Addr: uint64(i) << 10, Size: 4}, 0)
	}
	w.Tick(0)
	w.Reset()
	if w.Pending() != 0 || w.Inflight() != 0 || w.Stats().RawRequests != 0 {
		t.Fatal("warp reset incomplete")
	}
	if w.Stats().Warp == nil {
		t.Fatal("warp stats lost on reset")
	}
}

func TestWarpConfigValidation(t *testing.T) {
	if err := DefaultWarpConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []WarpConfig{
		{Lanes: 0, MaxWarps: 4, QueueDepth: 64},
		{Lanes: 6, MaxWarps: 4, QueueDepth: 64},
		{Lanes: 128, MaxWarps: 4, QueueDepth: 64},
		{Lanes: 8, MaxWarps: 0, QueueDepth: 64},
		{Lanes: 8, MaxWarps: 4, QueueDepth: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}
