package core

import (
	"fmt"

	"mac3d/internal/memreq"
	"mac3d/internal/obs"
	"mac3d/internal/sim"
)

// arqEntry is one slot of the Aggregated Request Queue. In hardware an
// entry is 64B: the 52-bit address extended with the T and B bits, the
// 16-bit FLIT map, and 54B of buffered targets (paper §5.3.3).
type arqEntry struct {
	tag     uint64 // window tag: row/window number with the T bit appended
	fmap    WideMap
	targets []memreq.Target
	bypass  bool // B bit: single request, skip the builder
	fence   bool // entry is a memory fence marker
	atomic  bool // atomic op: routed directly, never coalesced
	// For bypass/atomic entries, the original raw request so the
	// emitted transaction keeps its exact address and size.
	raw memreq.RawRequest
	// closed entries no longer accept merges (target overflow or
	// fence freeze at allocation time).
	closed bool
	// inOpen marks the one live entry per tag currently accepting
	// merges — the comparator lane. The invariant is at most one set
	// flag per tag across the occupied ring.
	inOpen bool
	// span carries the entry's observability lifecycle stamps; nil
	// unless tracing is enabled.
	span *obs.TxSpan
}

// AggregatorConfig sizes the Raw Request Aggregator.
type AggregatorConfig struct {
	// Entries is the ARQ depth (Table 1: 32).
	Entries int
	// WindowBytes is the coalescing window: 256 (the paper's HMC
	// row), 512 or 1024 (one HBM row) — the §4.3 "enlarged FLIT
	// map and FLIT table" generalization. 0 means 256.
	WindowBytes uint32
	// MaxTargets bounds merged raw requests per entry. The 64B
	// hardware entry stores 54B/4.5B = 12 targets (paper §5.3.3).
	MaxTargets int
	// PopInterval is the cycles between entry pops (paper §4.1:
	// one pop every two clock cycles).
	PopInterval sim.Cycle
	// FillMode enables the latency-hiding mechanism: when more than
	// half the ARQ is free, the next N raw requests bypass the
	// comparators into free entries (paper §4.1).
	FillMode bool
}

// DefaultAggregatorConfig returns the Table 1 ARQ configuration.
func DefaultAggregatorConfig() AggregatorConfig {
	return AggregatorConfig{Entries: 32, WindowBytes: 256, MaxTargets: 12, PopInterval: 2, FillMode: true}
}

// Validate reports the first configuration error, or nil.
func (c AggregatorConfig) Validate() error {
	switch {
	case c.Entries <= 0:
		return fmt.Errorf("core: ARQ Entries must be positive, got %d", c.Entries)
	case c.MaxTargets <= 0:
		return fmt.Errorf("core: ARQ MaxTargets must be positive, got %d", c.MaxTargets)
	case c.PopInterval == 0:
		return fmt.Errorf("core: ARQ PopInterval must be positive")
	}
	if c.WindowBytes != 0 {
		if _, err := NewWindow(c.WindowBytes); err != nil {
			return err
		}
	}
	return nil
}

// Aggregator is the Raw Request Aggregator (paper §4.1): a FIFO of ARQ
// entries with an associative row-tag comparator per entry.
//
// The storage mirrors the hardware: a fixed ring of Entries slots
// (the old slice-FIFO re-allocated on every wraparound) and a linear
// comparator scan over per-entry inOpen flags (the old tag→index map
// allocated on every insert and had to be re-indexed on every pop).
// Each slot owns a MaxTargets-capacity target buffer; Pop copies the
// head's targets into a pooled slab so the slot can be reused while
// the emitted transaction is still in flight. Drivers that hand slabs
// back (memreq.Recycler) make the whole push/merge/pop path
// allocation-free in steady state.
type Aggregator struct {
	cfg AggregatorConfig
	win Window

	// ring is the fixed entry storage; logical position i lives at
	// ring[(head+i)%Entries] and count slots are occupied.
	ring  []arqEntry
	head  int
	count int

	// slabs is the free pool of target slices Pop hands out.
	slabs [][]memreq.Target

	// fences counts fence entries currently queued; comparators are
	// disabled while any fence is present (paper §4.1).
	fences int
	// fillBudget is the number of upcoming requests that skip the
	// comparators under the latency-hiding mechanism.
	fillBudget int

	// occupancySum/samples measure average ARQ occupancy, sampled
	// once per cycle via SampleOccupancy; lastSample is the most
	// recent observation (what the timeseries watch reports).
	occupancySum     uint64
	occupancySamples uint64
	lastSample       int

	// Observability (all nil/false when disabled).
	tracing bool
	cMerges *obs.Counter
	cAllocs *obs.Counter
	cSplits *obs.Counter
}

// NewAggregator builds an aggregator, panicking on invalid config.
func NewAggregator(cfg AggregatorConfig) *Aggregator {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.WindowBytes == 0 {
		cfg.WindowBytes = 256
	}
	win, err := NewWindow(cfg.WindowBytes)
	if err != nil {
		panic(err)
	}
	a := &Aggregator{
		cfg:  cfg,
		win:  win,
		ring: make([]arqEntry, cfg.Entries),
	}
	for i := range a.ring {
		a.ring[i].targets = make([]memreq.Target, 0, cfg.MaxTargets)
	}
	return a
}

// Window returns the aggregator's coalescing-window geometry.
func (a *Aggregator) Window() Window { return a.win }

// Len returns the number of occupied ARQ entries.
func (a *Aggregator) Len() int { return a.count }

// Free returns the number of free ARQ entries.
func (a *Aggregator) Free() int { return a.cfg.Entries - a.count }

// Full reports whether no new entry can be allocated.
func (a *Aggregator) Full() bool { return a.count == a.cfg.Entries }

// at returns the entry at logical FIFO position i (0 = head).
func (a *Aggregator) at(i int) *arqEntry {
	return &a.ring[(a.head+i)%len(a.ring)]
}

// headEntry returns the head entry without removing it; the caller
// must have checked Len() > 0.
func (a *Aggregator) headEntry() *arqEntry { return &a.ring[a.head] }

// alloc claims the tail slot, reusing its target storage, and returns
// it zeroed.
func (a *Aggregator) alloc() *arqEntry {
	e := &a.ring[(a.head+a.count)%len(a.ring)]
	a.count++
	*e = arqEntry{targets: e.targets[:0]}
	return e
}

// lookupOpen scans the occupied entries for tag's comparator lane —
// the hardware's parallel comparators, a bounded allocation-free scan.
func (a *Aggregator) lookupOpen(tag uint64) *arqEntry {
	for i := 0; i < a.count; i++ {
		if e := a.at(i); e.inOpen && e.tag == tag {
			return e
		}
	}
	return nil
}

// closeOpen clears tag's comparator lane, if any entry holds it.
func (a *Aggregator) closeOpen(tag uint64) {
	if e := a.lookupOpen(tag); e != nil {
		e.inOpen = false
	}
}

// clearOpen disables every comparator lane (fence freeze).
func (a *Aggregator) clearOpen() {
	for i := 0; i < a.count; i++ {
		a.at(i).inOpen = false
	}
}

// takeSlab copies src into a slab from the free pool (or a fresh
// allocation when the pool is dry) so a popped entry's targets survive
// the ring slot's reuse.
func (a *Aggregator) takeSlab(src []memreq.Target) []memreq.Target {
	if n := len(a.slabs); n > 0 {
		s := a.slabs[n-1]
		a.slabs = a.slabs[:n-1]
		return append(s, src...)
	}
	return append(make([]memreq.Target, 0, a.cfg.MaxTargets), src...)
}

// RecycleTargets returns a target slab previously handed out by Pop
// (via memreq.Built.Targets) to the free pool. The caller must not
// touch the slice afterwards.
func (a *Aggregator) RecycleTargets(s []memreq.Target) {
	if cap(s) == 0 {
		return
	}
	a.slabs = append(a.slabs, s[:0])
}

// popHead removes and returns the head entry, copying its targets out
// of the slot.
func (a *Aggregator) popHead() arqEntry {
	slot := &a.ring[a.head]
	head := *slot
	if len(slot.targets) > 0 {
		head.targets = a.takeSlab(slot.targets)
	} else {
		head.targets = nil
	}
	a.head = (a.head + 1) % len(a.ring)
	a.count--
	if head.fence {
		a.fences--
		if a.fences == 0 {
			// Comparators re-enable: every surviving entry is
			// visible to merging again (the freeze is a global
			// comparator disable, not a per-entry state).
			a.rebuildOpen()
		}
	}
	return head
}

// rebuildOpen reconstructs the comparator lanes from the surviving
// entries. For duplicated tags the newest entry wins, as it is the one
// a comparator hit would merge into.
func (a *Aggregator) rebuildOpen() {
	a.clearOpen()
	for i := 0; i < a.count; i++ {
		e := a.at(i)
		if e.fence || e.atomic || e.closed {
			continue
		}
		a.closeOpen(e.tag)
		e.inOpen = true
	}
}

// Push offers one raw request. It reports whether the request was
// accepted; a false return models ARQ backpressure and the caller must
// retry the same request later.
//
// Merging rules (paper §4.1–4.1.2):
//   - fences allocate a fence entry and freeze the comparators;
//   - atomics allocate a direct-route entry and are never merged;
//   - an access crossing its coalescing-window boundary is split at
//     the boundary: the two halves land in their respective windows
//     (the tail as a Cont target), so no FLIT is silently dropped;
//   - while any fence is queued, or while the latency-hiding fill
//     budget is active, requests go to fresh entries without compare;
//   - otherwise the row tag (row number + T bit) is compared against
//     all open entries; a hit merges, a miss allocates.
func (a *Aggregator) Push(r memreq.RawRequest, now sim.Cycle) bool {
	switch {
	case r.Fence:
		if a.Full() {
			return false
		}
		e := a.alloc()
		e.fence, e.closed = true, true
		a.fences++
		// A fence invalidates every open comparator: nothing
		// behind it may merge with anything ahead of it.
		a.clearOpen()
		return true

	case r.Atomic:
		if a.Full() {
			return false
		}
		e := a.alloc()
		e.atomic, e.closed = true, true
		e.raw = r
		e.targets = append(e.targets, memreq.Target{
			Thread: r.Thread, Tag: r.Tag, Flit: a.win.FlitID(r.Addr),
		})
		if a.tracing {
			e.span = &obs.TxSpan{FirstPush: uint64(now), LastMerge: uint64(now)}
		}
		return true
	}

	if a.win.CrossesBoundary(r.Addr, uint32(r.Size)) {
		// The access straddles two coalescing windows; split it at
		// the boundary so the tail FLIT is actually requested
		// (FlitSpan clips to one window). The two halves occupy two
		// comparator lanes, so conservatively require two free
		// entries — each half then needs at most one allocation and
		// the pair is accepted atomically.
		if a.Free() < 2 {
			return false
		}
		headBytes := uint32(a.win.Bytes) - uint32(r.Addr&uint64(a.win.Bytes-1))
		head, tail := r, r
		head.Size = uint8(headBytes)
		tail.Addr = r.Addr + uint64(headBytes)
		tail.Size = uint8(uint32(r.Size) - headBytes)
		a.cSplits.Inc()
		a.pushData(head, now, false)
		a.pushData(tail, now, true)
		return true
	}
	return a.pushData(r, now, false)
}

// pushData merges or allocates one window-contained load/store. cont
// marks the tail half of a boundary-split request: its target retires
// nothing (the head half owns the LSQ slot).
func (a *Aggregator) pushData(r memreq.RawRequest, now sim.Cycle, cont bool) bool {
	// Latency-hiding fill mode: (re)arm when over half the ARQ is
	// free, then let that many requests skip the comparators.
	if a.cfg.FillMode && a.fillBudget == 0 && a.Free() > a.cfg.Entries/2 {
		a.fillBudget = a.Free()
	}

	if a.fences == 0 && a.fillBudget == 0 {
		if e := a.lookupOpen(a.win.Tag(r.Addr, r.Store)); e != nil {
			first, last := a.win.FlitSpan(r.Addr, uint32(r.Size))
			e.fmap = e.fmap.SetRange(first, last)
			e.targets = append(e.targets, memreq.Target{
				Thread: r.Thread, Tag: r.Tag, Flit: first, Cont: cont,
			})
			e.span.MarkMerge(uint64(now))
			a.cMerges.Inc()
			if len(e.targets) >= a.cfg.MaxTargets {
				e.closed = true
				e.inOpen = false
			}
			return true
		}
	}

	if a.Full() {
		return false
	}
	first, last := a.win.FlitSpan(r.Addr, uint32(r.Size))
	tag := a.win.Tag(r.Addr, r.Store)
	if a.fences == 0 {
		// The newest entry for a tag is the merge candidate: a
		// fill-mode allocation steals the lane from any older entry
		// with the same tag (the map representation did this by
		// overwriting the index).
		a.closeOpen(tag)
	}
	e := a.alloc()
	e.tag = tag
	e.fmap = WideMap(0).SetRange(first, last)
	e.raw = r
	e.targets = append(e.targets, memreq.Target{
		Thread: r.Thread, Tag: r.Tag, Flit: first, Cont: cont,
	})
	if a.tracing {
		e.span = &obs.TxSpan{FirstPush: uint64(now), LastMerge: uint64(now)}
	}
	a.cAllocs.Inc()
	if a.fillBudget > 0 {
		a.fillBudget--
		// Entries allocated in fill mode still become visible to
		// later comparisons once the budget drains, unless a fence
		// is pending.
	}
	if a.fences == 0 {
		e.inOpen = true
	}
	// Entries allocated while a fence is queued stay out of the
	// comparator lanes until the fence drains (rebuildOpen).
	return true
}

// Pop removes and returns the head entry if one exists. The caller (the
// MAC unit) enforces the one-pop-per-two-cycles rate and decides, via
// the B bit, whether the entry bypasses the builder. A fence entry is
// returned with fence=true; the MAC holds it until outstanding
// transactions drain.
func (a *Aggregator) Pop() (arqEntry, bool) {
	if a.count == 0 {
		return arqEntry{}, false
	}
	head := a.popHead()
	if !head.fence && !head.atomic {
		// B bit check (paper §4.1.2): exactly one merged request
		// means nothing else coalesced into this row — bypass.
		head.bypass = len(head.targets) == 1
	}
	return head, true
}

// PeekFence reports whether the head entry is a fence.
func (a *Aggregator) PeekFence() bool {
	return a.count > 0 && a.ring[a.head].fence
}

// SampleOccupancy records one occupancy observation. The MAC calls it
// once per Tick, so OccupancyMean is a true time average — the old
// push-time sampling was biased toward push-heavy phases and read 0
// during drain.
func (a *Aggregator) SampleOccupancy() {
	a.lastSample = a.count
	a.occupancySum += uint64(a.count)
	a.occupancySamples++
}

// OccupancyMean returns the mean ARQ occupancy over sampled cycles.
func (a *Aggregator) OccupancyMean() float64 {
	if a.occupancySamples == 0 {
		return 0
	}
	return float64(a.occupancySum) / float64(a.occupancySamples)
}

// AvgOccupancy returns the mean ARQ occupancy.
//
// Deprecated: use OccupancyMean. The name survives for callers of the
// old push-time-sampled metric; since the per-cycle sampling fix both
// names report the same unbiased time average.
func (a *Aggregator) AvgOccupancy() float64 { return a.OccupancyMean() }

// attachObs wires the aggregator's counters into the run's registry
// and enables span allocation when tracing is on.
func (a *Aggregator) attachObs(o *obs.Obs) {
	a.tracing = o.Tracing()
	reg := o.Reg()
	a.cMerges = reg.Counter("mac.arq.merges")
	a.cAllocs = reg.Counter("mac.arq.allocs")
	a.cSplits = reg.Counter("mac.arq.window_splits")
	reg.Func("mac.arq.occupancy_mean", a.OccupancyMean)
	reg.Func("mac.arq.fences", func() float64 { return float64(a.fences) })
	// The watch reports the cycle's sampled occupancy rather than a
	// live read, so the timeseries mean reproduces OccupancyMean
	// exactly instead of drifting by pop-phase skew.
	o.Rec().Watch("mac.arq.occupancy", func() float64 { return float64(a.lastSample) })
}

// Reset restores the aggregator to empty (the slab pool survives).
func (a *Aggregator) Reset() {
	a.head, a.count = 0, 0
	a.fences = 0
	a.fillBudget = 0
	a.occupancySum, a.occupancySamples = 0, 0
}

// SpaceBytes returns the hardware area model of the ARQ in bytes
// (64B per entry, Fig. 16), excluding comparators.
func (c AggregatorConfig) SpaceBytes() int { return c.Entries * 64 }
