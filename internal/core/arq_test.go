package core

import (
	"testing"
	"testing/quick"

	"mac3d/internal/addr"
	"mac3d/internal/memreq"
)

func load(a uint64, thread, tag uint16) memreq.RawRequest {
	return memreq.RawRequest{Addr: a, Size: 8, Thread: thread, Tag: tag}
}

func store(a uint64, thread, tag uint16) memreq.RawRequest {
	return memreq.RawRequest{Addr: a, Size: 8, Store: true, Thread: thread, Tag: tag}
}

func newAgg(t *testing.T) *Aggregator {
	t.Helper()
	cfg := DefaultAggregatorConfig()
	cfg.FillMode = false // deterministic merging for unit tests
	return NewAggregator(cfg)
}

func TestAggregatorMergesSameRowLoads(t *testing.T) {
	a := newAgg(t)
	row := uint64(0xA) << addr.RowShift
	// Figure 7: loads of FLITs 6, 8, 9 of row 0xA merge into one entry.
	a.Push(load(row+6*16, 0, 0), 0)
	a.Push(load(row+8*16, 1, 0), 1)
	a.Push(load(row+9*16, 2, 0), 2)
	if a.Len() != 1 {
		t.Fatalf("entries = %d, want 1", a.Len())
	}
	e, ok := a.Pop()
	if !ok {
		t.Fatal("pop failed")
	}
	if len(e.targets) != 3 {
		t.Fatalf("targets = %d, want 3", len(e.targets))
	}
	want := WideMap(0).Set(6).Set(8).Set(9)
	if e.fmap != want {
		t.Fatalf("flit map %s, want %s", e.fmap, want)
	}
	if e.bypass {
		t.Fatal("multi-target entry must not set B")
	}
}

func TestAggregatorSeparatesLoadsFromStores(t *testing.T) {
	// Figure 7: a store to the same row gets its own entry (T bit).
	a := newAgg(t)
	row := uint64(0xA) << addr.RowShift
	a.Push(load(row+6*16, 0, 0), 0)
	a.Push(store(row+7*16, 1, 0), 1)
	a.Push(load(row+8*16, 2, 0), 2)
	if a.Len() != 2 {
		t.Fatalf("entries = %d, want 2 (loads+store)", a.Len())
	}
	e1, _ := a.Pop()
	e2, _ := a.Pop()
	if addr.TagIsStore(e1.tag) || !addr.TagIsStore(e2.tag) {
		t.Fatal("entry types wrong")
	}
	if len(e1.targets) != 2 || len(e2.targets) != 1 {
		t.Fatalf("targets %d/%d, want 2/1", len(e1.targets), len(e2.targets))
	}
	if !e2.bypass {
		t.Fatal("single-request store entry must set B at pop (Figure 7)")
	}
}

func TestAggregatorDifferentRowsDifferentEntries(t *testing.T) {
	a := newAgg(t)
	a.Push(load(0x000, 0, 0), 0)
	a.Push(load(0x100, 0, 1), 1)
	a.Push(load(0x200, 0, 2), 2)
	if a.Len() != 3 {
		t.Fatalf("entries = %d, want 3", a.Len())
	}
}

func TestAggregatorFIFOOrderPreserved(t *testing.T) {
	a := newAgg(t)
	a.Push(load(0x100, 0, 0), 0)
	a.Push(load(0x200, 0, 1), 1)
	a.Push(load(0x100+16, 0, 2), 2) // merges into first entry
	e1, _ := a.Pop()
	e2, _ := a.Pop()
	if addr.TagRow(e1.tag) != 1 || addr.TagRow(e2.tag) != 2 {
		t.Fatalf("pop order: rows %#x then %#x", addr.TagRow(e1.tag), addr.TagRow(e2.tag))
	}
}

func TestAggregatorMergeAfterInterveningPop(t *testing.T) {
	// After a pop shifts the FIFO, open-map indices must still point
	// at the right entries.
	a := newAgg(t)
	a.Push(load(0x100, 0, 0), 0)
	a.Push(load(0x200, 0, 1), 1)
	a.Pop() // removes row 1's entry
	a.Push(load(0x200+32, 0, 2), 2)
	if a.Len() != 1 {
		t.Fatalf("entries = %d, want 1", a.Len())
	}
	e, _ := a.Pop()
	if len(e.targets) != 2 {
		t.Fatalf("merge after pop failed: %d targets", len(e.targets))
	}
	if e.fmap != WideMap(0).Set(0).Set(2) {
		t.Fatalf("flit map %s", e.fmap)
	}
}

func TestAggregatorFenceFreezesComparators(t *testing.T) {
	a := newAgg(t)
	a.Push(load(0x100, 0, 0), 0)
	a.Push(memreq.RawRequest{Fence: true}, 1)
	// Same row as the first entry, but behind a fence: no merge.
	a.Push(load(0x100+16, 0, 1), 2)
	if a.Len() != 3 {
		t.Fatalf("entries = %d, want 3 (entry, fence, entry)", a.Len())
	}
	e1, _ := a.Pop()
	if len(e1.targets) != 1 {
		t.Fatal("request behind fence merged across it")
	}
	f, _ := a.Pop()
	if !f.fence {
		t.Fatal("fence entry lost")
	}
	// After the fence pops, merging resumes: the new request merges
	// into the entry that was allocated during the freeze.
	a.Push(load(0x100+32, 0, 2), 3)
	if a.Len() != 1 {
		t.Fatalf("entries after fence = %d, want 1", a.Len())
	}
	e2, _ := a.Pop()
	if len(e2.targets) != 2 {
		t.Fatalf("post-fence merge failed: %d targets", len(e2.targets))
	}
}

func TestAggregatorAtomicNeverCoalesced(t *testing.T) {
	a := newAgg(t)
	a.Push(load(0x100, 0, 0), 0)
	a.Push(memreq.RawRequest{Addr: 0x100 + 16, Size: 8, Atomic: true, Thread: 1}, 1)
	a.Push(load(0x100+32, 0, 1), 2)
	if a.Len() != 2 {
		t.Fatalf("entries = %d, want 2", a.Len())
	}
	e, _ := a.Pop()
	if len(e.targets) != 2 {
		t.Fatal("loads around an atomic should still merge with each other")
	}
	at, _ := a.Pop()
	if !at.atomic || len(at.targets) != 1 {
		t.Fatalf("atomic entry wrong: %+v", at)
	}
}

func TestAggregatorTargetOverflowClosesEntry(t *testing.T) {
	cfg := DefaultAggregatorConfig()
	cfg.FillMode = false
	cfg.MaxTargets = 3
	a := NewAggregator(cfg)
	for i := 0; i < 5; i++ {
		a.Push(load(uint64(i*16), 0, uint16(i)), 0)
	}
	// First entry closed at 3 targets; a fresh entry took the rest.
	if a.Len() != 2 {
		t.Fatalf("entries = %d, want 2", a.Len())
	}
	e1, _ := a.Pop()
	e2, _ := a.Pop()
	if len(e1.targets) != 3 || len(e2.targets) != 2 {
		t.Fatalf("targets %d/%d, want 3/2", len(e1.targets), len(e2.targets))
	}
}

func TestAggregatorBackpressureWhenFull(t *testing.T) {
	cfg := DefaultAggregatorConfig()
	cfg.FillMode = false
	cfg.Entries = 2
	a := NewAggregator(cfg)
	if !a.Push(load(0x000, 0, 0), 0) || !a.Push(load(0x100, 0, 1), 1) {
		t.Fatal("initial pushes rejected")
	}
	if a.Push(load(0x200, 0, 2), 2) {
		t.Fatal("push into full ARQ accepted")
	}
	// But a merge into an existing entry still succeeds when full.
	if !a.Push(load(0x000+16, 0, 3), 3) {
		t.Fatal("merge rejected while full")
	}
	if a.Push(memreq.RawRequest{Fence: true}, 4) {
		t.Fatal("fence accepted into full ARQ")
	}
}

func TestAggregatorFillModeSkipsComparators(t *testing.T) {
	cfg := DefaultAggregatorConfig()
	cfg.Entries = 8
	cfg.FillMode = true
	a := NewAggregator(cfg)
	// ARQ empty: free (8) > half (4), so fill mode arms with N=8 and
	// the next 8 pushes allocate without comparing — even same-row.
	row := uint64(0x5) << addr.RowShift
	for i := 0; i < 4; i++ {
		if !a.Push(load(row+uint64(i*16), 0, uint16(i)), 0) {
			t.Fatalf("push %d rejected", i)
		}
	}
	if a.Len() != 4 {
		t.Fatalf("fill mode merged anyway: %d entries", a.Len())
	}
}

func TestAggregatorFillModeDrainsThenMerges(t *testing.T) {
	cfg := DefaultAggregatorConfig()
	cfg.Entries = 4
	cfg.FillMode = true
	a := NewAggregator(cfg)
	row := uint64(0x5) << addr.RowShift
	// Budget arms at 4; first 4 pushes fill entries 0..3.
	for i := 0; i < 4; i++ {
		a.Push(load(row+uint64(i*16), 0, uint16(i)), 0)
	}
	// Budget exhausted and ARQ full; the next same-row push merges.
	if !a.Push(load(row+4*16, 0, 9), 0) {
		t.Fatal("merge after fill mode rejected")
	}
	if a.Len() != 4 {
		t.Fatalf("entries = %d, want 4", a.Len())
	}
}

func TestAggregatorBypassBitSingleRequest(t *testing.T) {
	a := newAgg(t)
	a.Push(load(0x300, 3, 7), 0)
	e, _ := a.Pop()
	if !e.bypass {
		t.Fatal("single-request entry must set B at pop")
	}
	if e.raw.Thread != 3 || e.raw.Tag != 7 {
		t.Fatal("raw request not preserved for bypass")
	}
}

func TestAggregatorOccupancyTracking(t *testing.T) {
	// Occupancy is a per-cycle time average (sampled by the MAC every
	// Tick via SampleOccupancy), not a per-push one — so drain phases
	// with no pushes still weigh into the mean.
	a := newAgg(t)
	a.SampleOccupancy() // cycle 0: empty
	a.Push(load(0x000, 0, 0), 0)
	a.SampleOccupancy() // cycle 1: one entry
	a.Push(load(0x100, 0, 1), 1)
	a.SampleOccupancy() // cycle 2: two entries (drain phase, no push)
	a.SampleOccupancy() // cycle 3: still two entries
	want := (0.0 + 1 + 2 + 2) / 4
	if got := a.OccupancyMean(); got != want {
		t.Fatalf("occupancy mean = %v, want %v", got, want)
	}
	// The deprecated accessor is an exact alias. This is its only
	// remaining caller — the alias's own contract test; all other
	// callers use OccupancyMean (staticcheck SA1019 holds the line
	// for external packages).
	if a.AvgOccupancy() != a.OccupancyMean() {
		t.Fatal("AvgOccupancy diverged from OccupancyMean")
	}
}

func TestAggregatorReset(t *testing.T) {
	a := newAgg(t)
	a.Push(load(0x100, 0, 0), 0)
	a.Push(memreq.RawRequest{Fence: true}, 1)
	a.SampleOccupancy()
	a.Reset()
	if a.Len() != 0 || a.OccupancyMean() != 0 || a.PeekFence() {
		t.Fatal("reset incomplete")
	}
	// Merging works again post-reset.
	a.Push(load(0x100, 0, 0), 0)
	a.Push(load(0x110, 0, 1), 1)
	if a.Len() != 1 {
		t.Fatal("merge broken after reset")
	}
}

func TestAggregatorSpaceBytes(t *testing.T) {
	// Figure 16 anchor points: 8 entries -> 512B, 256 -> 16KB.
	if (AggregatorConfig{Entries: 8}).SpaceBytes() != 512 {
		t.Fatal("8-entry ARQ space wrong")
	}
	if (AggregatorConfig{Entries: 256}).SpaceBytes() != 16*1024 {
		t.Fatal("256-entry ARQ space wrong")
	}
}

func TestAggregatorConfigValidate(t *testing.T) {
	bad := []AggregatorConfig{
		{Entries: 0, MaxTargets: 1, PopInterval: 1},
		{Entries: 1, MaxTargets: 0, PopInterval: 1},
		{Entries: 1, MaxTargets: 1, PopInterval: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
	if err := DefaultAggregatorConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAggregatorConservationProperty(t *testing.T) {
	// Property: every accepted memory request appears in exactly one
	// popped entry's target list, regardless of the push pattern.
	f := func(raws []uint16, fillMode bool) bool {
		cfg := DefaultAggregatorConfig()
		cfg.Entries = 8
		cfg.FillMode = fillMode
		a := NewAggregator(cfg)
		accepted := 0
		popped := 0
		push := func(i int, v uint16) {
			r := memreq.RawRequest{
				Addr:   uint64(v%64) * 16, // confined to 4 rows
				Size:   8,
				Store:  v%5 == 0,
				Thread: uint16(i),
				Tag:    uint16(i),
			}
			if v%17 == 0 {
				r = memreq.RawRequest{Fence: true}
			}
			if a.Push(r, 0) && !r.Fence {
				accepted++
			}
		}
		for i, v := range raws {
			push(i, v)
			if i%3 == 0 {
				if e, ok := a.Pop(); ok && !e.fence {
					popped += len(e.targets)
				}
			}
		}
		for {
			e, ok := a.Pop()
			if !ok {
				break
			}
			if !e.fence {
				popped += len(e.targets)
			}
		}
		return accepted == popped
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
