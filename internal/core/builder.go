package core

import (
	"mac3d/internal/hmc"
	"mac3d/internal/memreq"
	"mac3d/internal/sim"
)

// Builder is the two-stage pipelined Request Builder (paper §4.2,
// Figure 8). Stage 1 (one cycle) OR-reduces the 16-bit FLIT map of the
// popped ARQ entry into 4 chunk-group bits. Stage 2 (two cycles: FLIT
// table lookup, then request assembly) sizes and emits the HMC
// transaction. The pipeline accepts one entry every two cycles, for a
// fixed issue rate of 0.5 transactions per cycle (paper §4.4).
type Builder struct {
	win    Window
	fine   bool        // 16B-floor ablation instead of 64B chunks
	stage1 builderSlot // entry currently in the OR-reduce stage
	stage2 builderSlot // entry currently in lookup+build
}

// NewBuilder returns a builder for the given coalescing window.
func NewBuilder(win Window) *Builder { return &Builder{win: win} }

// NewFineBuilder returns a builder that sizes transactions at FLIT
// (16B) granularity instead of the paper's 64B chunks — the
// data-waste/control-overhead trade ablation (§4.2 discusses why the
// design settles on the 64B floor).
func NewFineBuilder(win Window) *Builder { return &Builder{win: win, fine: true} }

type builderSlot struct {
	valid bool
	entry arqEntry
	// ready is the cycle at which the slot's work finishes.
	ready sim.Cycle
	// groups is the stage-1 result carried into stage 2.
	groups uint16
}

// Busy reports whether any pipeline stage holds an entry.
func (b *Builder) Busy() bool { return b.stage1.valid || b.stage2.valid }

// CanAccept reports whether stage 1 is free at cycle now.
func (b *Builder) CanAccept(now sim.Cycle) bool { return !b.stage1.valid }

// Accept latches a popped ARQ entry into stage 1. The caller must have
// checked CanAccept. Entries reaching the builder always have a
// non-empty FLIT map.
func (b *Builder) Accept(e arqEntry, now sim.Cycle) {
	b.stage1 = builderSlot{valid: true, entry: e, ready: now + 1}
}

// Tick advances the pipeline one cycle and returns a finished
// transaction, if any completed at cycle now.
func (b *Builder) Tick(now sim.Cycle) (memreq.Built, bool) {
	var out memreq.Built
	emitted := false

	// Stage 2 completes: assemble the transaction.
	if b.stage2.valid && now >= b.stage2.ready {
		e := b.stage2.entry
		var offset, size uint32
		if b.fine {
			offset, size = b.win.CoverWindowFine(e.fmap)
		} else {
			tab := b.win.WideLookup(b.stage2.groups)
			offset, size = uint32(tab.BaseChunk)*64, tab.SizeBytes
		}
		base := b.win.TagBase(e.tag)
		kind := hmc.Read
		if b.win.TagIsStore(e.tag) {
			kind = hmc.Write
		}
		e.span.MarkBuilt(uint64(now))
		out = memreq.Built{
			Req: hmc.Request{
				Kind: kind,
				Addr: base + uint64(offset),
				Data: size,
			},
			Targets: e.targets,
			Span:    e.span,
		}
		emitted = true
		b.stage2.valid = false
	}

	// Stage 1 completes: forward groups into stage 2 (lookup: one
	// cycle, build: one cycle — two cycles total).
	if b.stage1.valid && !b.stage2.valid && now >= b.stage1.ready {
		b.stage2 = builderSlot{
			valid:  true,
			entry:  b.stage1.entry,
			ready:  now + 2,
			groups: b.stage1.entry.fmap.Groups(b.win.Chunks()),
		}
		b.stage1.valid = false
	}

	return out, emitted
}

// Reset clears both pipeline stages.
func (b *Builder) Reset() { b.stage1, b.stage2 = builderSlot{}, builderSlot{} }

// BuilderSpaceBytes is the hardware area of the builder: the 16-bit
// FLIT map register plus the 16-entry FLIT table (paper §4.2.1/§5.3.3:
// 14B total).
const BuilderSpaceBytes = 14
