package core

import (
	"fmt"
	"testing"

	"mac3d/internal/memreq"
	"mac3d/internal/sim"
)

// drainMAC pushes requests (retrying on backpressure) and ticks the
// unit until everything emits, returning every built transaction.
func drainMAC(t *testing.T, m *MAC, reqs []memreq.RawRequest) []memreq.Built {
	t.Helper()
	var out []memreq.Built
	now := sim.Cycle(0)
	collect := func() {
		for _, b := range m.Tick(now) {
			bb := b
			m.Completed(&bb)
			out = append(out, bb)
		}
	}
	for _, r := range reqs {
		for !m.Push(r, now) {
			collect()
			now++
			if now > 1_000_000 {
				t.Fatal("push never accepted")
			}
		}
		collect()
		now++
	}
	for ; m.Pending() > 0; now++ {
		collect()
		if now > 2_000_000 {
			t.Fatal("MAC failed to drain")
		}
	}
	return out
}

// drainOnly ticks an already-loaded unit until it empties.
func drainOnly(t *testing.T, m *MAC) []memreq.Built {
	t.Helper()
	var out []memreq.Built
	for now := sim.Cycle(0); m.Pending() > 0; now++ {
		for _, b := range m.Tick(now) {
			bb := b
			m.Completed(&bb)
			out = append(out, bb)
		}
		if now > 2_000_000 {
			t.Fatal("MAC failed to drain")
		}
	}
	return out
}

// covered reports whether [start, end) is fully covered by the byte
// ranges of the given transactions.
func covered(bs []memreq.Built, start, end uint64) bool {
	for a := start; a < end; {
		hit := false
		for _, b := range bs {
			lo, hi := b.Req.Addr, b.Req.Addr+uint64(b.Req.Data)
			if a >= lo && a < hi {
				if hi > end {
					hi = end
				}
				a = hi
				hit = true
				break
			}
		}
		if !hit {
			return false
		}
	}
	return true
}

// TestWindowEdgeMergedVsBypassedCoverage is the regression test for
// the FlitSpan window-boundary clip: an access starting 6 bytes before
// the end of its 256B coalescing window and extending 10 bytes into
// the next one must have its tail bytes requested on the merged path
// exactly as the bypass path requests them. Before the split fix the
// merged path silently dropped every byte past the window boundary.
func TestWindowEdgeMergedVsBypassedCoverage(t *testing.T) {
	const (
		winBase  = uint64(0x100) // window 1 of a 256B geometry
		crossing = winBase + 250 // 6 bytes in-window, 10 beyond
		size     = 16
	)

	// Bypass path: the crossing request alone sets the B bit and is
	// forwarded directly, with the span rounded up over both FLITs.
	bypass := MustNew(DefaultConfig())
	bOut := drainMAC(t, bypass, []memreq.RawRequest{
		{Addr: crossing, Size: size, Thread: 0, Tag: 0},
	})
	if !covered(bOut, crossing, crossing+size) {
		t.Fatalf("bypass path does not cover [%#x,%#x): %+v",
			crossing, crossing+size, bOut)
	}

	// Merged path: an anchor request in the same window forces the
	// crossing request through the comparators and the builder.
	cfg := DefaultConfig()
	cfg.ARQ.FillMode = false // deterministic merging
	merged := MustNew(cfg)
	// Both requests enter the ARQ before any pop, so the comparators
	// see them together and the head half merges with the anchor.
	if !merged.Push(memreq.RawRequest{Addr: winBase, Size: 8, Thread: 0, Tag: 0}, 0) ||
		!merged.Push(memreq.RawRequest{Addr: crossing, Size: size, Thread: 0, Tag: 1}, 0) {
		t.Fatal("push rejected on an empty ARQ")
	}
	mOut := drainOnly(t, merged)
	if !covered(mOut, crossing, crossing+size) {
		t.Fatalf("merged path does not cover [%#x,%#x) — window-boundary tail dropped: %+v",
			crossing, crossing+size, mOut)
	}
	// The head half must still merge with the anchor (the split may
	// not degrade same-window coalescing).
	for _, b := range mOut {
		if b.Req.Addr <= winBase && winBase < b.Req.Addr+uint64(b.Req.Data) && len(b.Targets) < 2 {
			t.Fatalf("head half failed to merge with the anchor: %+v", mOut)
		}
	}
}

// TestRequestCoverageProperty is the request-level statement of the
// Window.CoversWide invariant: for every random mix of loads, stores
// and fences — across all three window sizes, with fill-mode re-arm
// on and off — every byte of every accepted raw request is covered by
// the union of the transactions carrying one of its targets.
func TestRequestCoverageProperty(t *testing.T) {
	for _, window := range []uint32{256, 512, 1024} {
		for _, fill := range []bool{false, true} {
			t.Run(fmt.Sprintf("win%d_fill%v", window, fill), func(t *testing.T) {
				testRequestCoverage(t, window, fill)
			})
		}
	}
}

func testRequestCoverage(t *testing.T, window uint32, fill bool) {
	cfg := DefaultConfig()
	cfg.ARQ.WindowBytes = window
	cfg.ARQ.FillMode = fill
	m := MustNew(cfg)

	rng := sim.NewRNG(uint64(window)<<1 | uint64(btoi(fill)))
	type key struct {
		thread, tag uint16
	}
	want := make(map[key][2]uint64)
	byKey := make(map[key][]memreq.Built)

	var reqs []memreq.RawRequest
	const n = 600
	for i := 0; i < n; i++ {
		if rng.Intn(40) == 0 {
			// Fence interleavings freeze and rebuild the comparators.
			reqs = append(reqs, memreq.RawRequest{Fence: true})
			continue
		}
		r := memreq.RawRequest{
			// Cluster addresses so merging, window-edge crossing and
			// fresh allocation all occur.
			Addr:   uint64(rng.Intn(1 << 14)),
			Size:   uint8(1 + rng.Intn(16)),
			Store:  rng.Intn(3) == 0,
			Thread: uint16(rng.Intn(8)),
			Tag:    uint16(i),
		}
		want[key{r.Thread, r.Tag}] = [2]uint64{r.Addr, r.Addr + uint64(r.Size)}
		reqs = append(reqs, r)
	}

	for _, b := range drainMAC(t, m, reqs) {
		for _, tgt := range b.Targets {
			k := key{tgt.Thread, tgt.Tag}
			byKey[k] = append(byKey[k], b)
		}
	}

	for k, span := range want {
		if !covered(byKey[k], span[0], span[1]) {
			t.Fatalf("request thread=%d tag=%d [%#x,%#x) not fully covered by its transactions %+v",
				k.thread, k.tag, span[0], span[1], byKey[k])
		}
	}
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}
