package core

// Edge-case and stress tests for the MAC unit: pathological request
// streams that a robust hardware model must survive.

import (
	"testing"

	"mac3d/internal/addr"
	"mac3d/internal/memreq"
	"mac3d/internal/sim"
)

// drainAll ticks m to empty, completing transactions immediately, and
// returns everything emitted.
func drainAll(t *testing.T, m *MAC, limit sim.Cycle) []memreq.Built {
	t.Helper()
	var out []memreq.Built
	for now := sim.Cycle(0); now < limit; now++ {
		got := m.Tick(now)
		for i := range got {
			out = append(out, got[i])
			m.Completed(&got[i])
		}
		if m.Pending() == 0 && m.Inflight() == 0 {
			return out
		}
	}
	t.Fatalf("MAC did not drain within %d cycles (pending %d)", limit, m.Pending())
	return nil
}

func TestFenceStorm(t *testing.T) {
	// Back-to-back fences with no memory traffic must all retire
	// without deadlock.
	m := testMAC(false)
	for i := 0; i < 10; i++ {
		if !m.Push(memreq.RawRequest{Fence: true}, sim.Cycle(i)) {
			t.Fatalf("fence %d rejected", i)
		}
	}
	out := drainAll(t, m, 1000)
	if len(out) != 0 {
		t.Fatalf("fences emitted %d transactions", len(out))
	}
	if m.Stats().Fences != 10 {
		t.Fatalf("fences = %d", m.Stats().Fences)
	}
}

func TestAlternatingFenceAndRequest(t *testing.T) {
	// fence, request, fence, request... the worst case for the
	// held-fence logic: every request must still retire in order.
	m := testMAC(false)
	pushed := 0
	now := sim.Cycle(0)
	var emitted int
	for pushed < 8 {
		r := memreq.RawRequest{Fence: true}
		if pushed%2 == 1 {
			r = memreq.RawRequest{Addr: uint64(pushed) << addr.RowShift, Size: 8, Tag: uint16(pushed)}
		}
		if m.Push(r, now) {
			pushed++
		}
		for _, b := range m.Tick(now) {
			emitted++
			bb := b
			m.Completed(&bb)
		}
		now++
	}
	for ; m.Pending() > 0 && now < 10000; now++ {
		for _, b := range m.Tick(now) {
			emitted++
			bb := b
			m.Completed(&bb)
		}
	}
	if emitted != 4 {
		t.Fatalf("emitted %d transactions, want 4", emitted)
	}
}

func TestAtomicFlood(t *testing.T) {
	// A stream of atomics exercises the direct-route path at the
	// pop rate; all pass through uncoalesced.
	m := testMAC(true)
	now := sim.Cycle(0)
	for i := 0; i < 64; i++ {
		for !m.Push(memreq.RawRequest{Addr: uint64(i) * 16, Size: 8, Atomic: true, Tag: uint16(i)}, now) {
			// ARQ full: advance time so the pop timer can fire.
			for _, b := range m.Tick(now) {
				bb := b
				m.Completed(&bb)
			}
			now++
		}
		now++
	}
	out := drainAll(t, m, 10000)
	total := 0
	for _, b := range out {
		if !b.Bypassed {
			t.Fatal("atomic was not bypassed")
		}
		total += len(b.Targets)
	}
	if m.Stats().RawAtomics != 64 {
		t.Fatalf("atomics = %d", m.Stats().RawAtomics)
	}
}

func TestAddressesAtPhysicalTop(t *testing.T) {
	// Requests at the top of the 52-bit physical space must not
	// wrap or corrupt tags.
	m := testMAC(false)
	top := (uint64(1) << addr.PhysBits) - addr.RowBytes
	m.Push(memreq.RawRequest{Addr: top, Size: 8, Tag: 1}, 0)
	m.Push(memreq.RawRequest{Addr: top + 16, Size: 8, Tag: 2}, 1)
	out := drainAll(t, m, 1000)
	if len(out) != 1 {
		t.Fatalf("top-of-memory requests did not merge: %d tx", len(out))
	}
	if out[0].Req.Addr < top&^uint64(addr.RowMask) {
		t.Fatalf("address wrapped: %#x", out[0].Req.Addr)
	}
}

func TestBitsAbovePhysIgnoredInMerging(t *testing.T) {
	// Two addresses differing only above bit 51 are the same
	// physical row and must merge.
	m := testMAC(false)
	a := uint64(0x1234) << addr.RowShift
	m.Push(memreq.RawRequest{Addr: a, Size: 8, Tag: 1}, 0)
	m.Push(memreq.RawRequest{Addr: a | 1<<60 | 16, Size: 8, Tag: 2}, 1)
	out := drainAll(t, m, 1000)
	if len(out) != 1 {
		t.Fatalf("high-bit alias broke merging: %d tx", len(out))
	}
}

func TestZeroSizeAccessNormalized(t *testing.T) {
	m := testMAC(false)
	m.Push(memreq.RawRequest{Addr: 0x100, Size: 0, Tag: 1}, 0)
	out := drainAll(t, m, 1000)
	if len(out) != 1 || out[0].Req.Data < 16 {
		t.Fatalf("zero-size access mishandled: %+v", out)
	}
}

func TestSixteenByteAccessAtFlitBoundaryMinusOne(t *testing.T) {
	// A 16B access starting one byte before a FLIT boundary spans
	// two FLITs; the emitted transaction must cover both.
	m := testMAC(false)
	a := uint64(0x100) + 15
	m.Push(memreq.RawRequest{Addr: a, Size: 16, Tag: 1}, 0)
	out := drainAll(t, m, 1000)
	if len(out) != 1 {
		t.Fatalf("tx = %d", len(out))
	}
	b := out[0]
	end := b.Req.Addr + uint64(b.Req.Data)
	if b.Req.Addr > a || end < a+16 {
		t.Fatalf("transaction [%#x,%#x) does not cover [%#x,%#x)",
			b.Req.Addr, end, a, a+16)
	}
}

func TestPushPopInterleavingNeverLosesWork(t *testing.T) {
	// Push and pop in lockstep for a long stream with mixed rows:
	// final accounting must balance exactly.
	m := testMAC(true)
	rng := sim.NewRNG(31)
	pushed := 0
	emitted := 0
	targets := 0
	now := sim.Cycle(0)
	for pushed < 2000 {
		r := memreq.RawRequest{
			Addr:   uint64(rng.Intn(1 << 16)),
			Size:   8,
			Store:  rng.Intn(2) == 0,
			Thread: uint16(pushed % 16),
			Tag:    uint16(pushed),
		}
		if m.Push(r, now) {
			pushed++
		}
		for _, b := range m.Tick(now) {
			emitted++
			for _, tgt := range b.Targets {
				// A window-split push adds one extra Cont target;
				// exactly one retiring target exists per push.
				if !tgt.Cont {
					targets++
				}
			}
			bb := b
			m.Completed(&bb)
		}
		now++
	}
	for ; m.Pending() > 0; now++ {
		for _, b := range m.Tick(now) {
			emitted++
			for _, tgt := range b.Targets {
				if !tgt.Cont {
					targets++
				}
			}
			bb := b
			m.Completed(&bb)
		}
	}
	if targets != pushed {
		t.Fatalf("retiring targets %d != pushed %d", targets, pushed)
	}
	if uint64(emitted) != m.Stats().Transactions {
		t.Fatalf("emitted %d != stats %d", emitted, m.Stats().Transactions)
	}
}
