// Package core implements MAC, the Memory Access Coalescer of the
// paper — the primary contribution of the reproduction.
//
// A MAC unit sits between a multicore node and a 3D-stacked memory
// device and consists of (paper §3.2, §4):
//
//   - the Raw Request Aggregator: an Aggregated Request Queue (ARQ)
//     whose entries merge raw requests targeting the same 256B HMC row
//     and the same request type, tracking requested FLITs in a per-row
//     FLIT map and buffering response-routing targets;
//   - the two-stage pipelined Request Builder, which OR-reduces the
//     FLIT map into four 64B-chunk bits and sizes the emitted HMC
//     transaction (64/128/256B) through a 16-entry FLIT table;
//   - the request router (local/global/remote classification, package
//     router.go) and the response router (part of the node driver,
//     which owns the outstanding-transaction table).
package core

import (
	"fmt"
	"math/bits"

	"mac3d/internal/addr"
)

// FlitMap is the 16-bit per-ARQ-entry bitmap recording which of the 16
// FLITs of a 256B row have been requested (paper §4.1.1, Figure 6).
type FlitMap uint16

// Set marks FLIT id (0–15) as requested and returns the updated map.
func (m FlitMap) Set(id uint8) FlitMap { return m | 1<<(id&15) }

// Has reports whether FLIT id is marked.
func (m FlitMap) Has(id uint8) bool { return m>>(id&15)&1 == 1 }

// SetRange marks FLITs first..last inclusive (both masked to 0–15).
func (m FlitMap) SetRange(first, last uint8) FlitMap {
	first &= 15
	last &= 15
	if last < first {
		first, last = last, first
	}
	span := uint16(1)<<(last-first+1) - 1
	return m | FlitMap(span<<first)
}

// Count returns the number of requested FLITs.
func (m FlitMap) Count() int { return bits.OnesCount16(uint16(m)) }

// Groups OR-reduces the map into 4 chunk bits — stage 1 of the request
// builder (paper §4.2): bit i is set when any FLIT of 64B chunk i
// (FLITs 4i..4i+3) is requested.
func (m FlitMap) Groups() uint8 {
	var g uint8
	for i := 0; i < 4; i++ {
		if m>>(4*i)&0xF != 0 {
			g |= 1 << i
		}
	}
	return g
}

// String renders the map LSB-first, e.g. "0000010000000000" for FLIT 5.
func (m FlitMap) String() string {
	b := make([]byte, 16)
	for i := range b {
		if m.Has(uint8(i)) {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}

// FlitTableEntry is one row of the builder's 16-entry FLIT table
// (paper §4.2.1): for a 4-bit chunk pattern it gives the transaction
// payload size and the starting chunk of the emitted request.
type FlitTableEntry struct {
	// SizeBytes is the transaction payload: 64, 128 or 256.
	SizeBytes uint32
	// BaseChunk is the first 64B chunk covered (0–3).
	BaseChunk uint8
}

// FlitTable is the builder's lookup table, indexed by the 4-bit group
// pattern from stage 1. Index 0 (no chunks) is unused; the builder
// never receives an empty map.
//
// The covered window is the contiguous chunk span from the lowest to
// the highest requested chunk, rounded up to the next HMC size class
// (1, 2 or 4 chunks → 64B, 128B, 256B) and shifted down if it would
// overrun the row. E.g. pattern 0110 → 128B at chunk 1 (the paper's
// Figure 7/8 worked example); pattern 1001 → 256B at chunk 0.
var FlitTable = buildFlitTable()

func buildFlitTable() [16]FlitTableEntry {
	var t [16]FlitTableEntry
	for p := 1; p < 16; p++ {
		lo := uint8(bits.TrailingZeros8(uint8(p)))
		hi := uint8(bits.Len8(uint8(p)) - 1)
		span := hi - lo + 1
		var chunks uint8
		switch {
		case span == 1:
			chunks = 1
		case span == 2:
			chunks = 2
		default:
			chunks = 4
		}
		base := lo
		if base+chunks > 4 {
			base = 4 - chunks
		}
		t[p] = FlitTableEntry{SizeBytes: uint32(chunks) * 64, BaseChunk: base}
	}
	return t
}

// Lookup returns the FLIT table entry for a group pattern. It panics on
// an empty pattern, which would indicate a builder-pipeline bug.
func Lookup(groups uint8) FlitTableEntry {
	if groups == 0 || groups > 15 {
		panic(fmt.Sprintf("core: invalid group pattern %#x", groups))
	}
	return FlitTable[groups]
}

// CoverWindow returns the byte offset within the row and payload size
// of the transaction that the FLIT table prescribes for map m.
func CoverWindow(m FlitMap) (offset, size uint32) {
	e := Lookup(m.Groups())
	return uint32(e.BaseChunk) * 64, e.SizeBytes
}

// Covers reports whether the transaction window chosen for m contains
// every requested FLIT — an invariant of the builder design.
func Covers(m FlitMap) bool {
	off, size := CoverWindow(m)
	firstFlit := off / addr.FlitBytes
	lastFlit := (off+size)/addr.FlitBytes - 1
	for id := uint8(0); id < addr.FlitsPerRow; id++ {
		if m.Has(id) && (uint32(id) < firstFlit || uint32(id) > lastFlit) {
			return false
		}
	}
	return true
}
