package core

import (
	"testing"
	"testing/quick"
)

func TestFlitMapSetHas(t *testing.T) {
	var m FlitMap
	m = m.Set(5)
	if !m.Has(5) || m.Count() != 1 {
		t.Fatalf("map = %s", m)
	}
	if m.String() != "0000010000000000" {
		t.Fatalf("Figure 6 example renders %s", m)
	}
}

func TestFlitMapSetRange(t *testing.T) {
	var m FlitMap
	m = m.SetRange(3, 6)
	for i := uint8(0); i < 16; i++ {
		want := i >= 3 && i <= 6
		if m.Has(i) != want {
			t.Fatalf("bit %d = %v, want %v (map %s)", i, m.Has(i), want, m)
		}
	}
	// Reversed bounds are normalized.
	if FlitMap(0).SetRange(6, 3) != m {
		t.Fatal("reversed range differs")
	}
}

func TestFlitMapGroups(t *testing.T) {
	cases := []struct {
		flits []uint8
		want  uint8
	}{
		{[]uint8{0}, 0b0001},
		{[]uint8{3}, 0b0001},
		{[]uint8{4}, 0b0010},
		{[]uint8{15}, 0b1000},
		{[]uint8{6, 8, 9}, 0b0110}, // the Figure 7/8 worked example
		{[]uint8{0, 5, 10, 15}, 0b1111},
	}
	for _, c := range cases {
		var m FlitMap
		for _, f := range c.flits {
			m = m.Set(f)
		}
		if got := m.Groups(); got != c.want {
			t.Fatalf("flits %v: groups = %04b, want %04b", c.flits, got, c.want)
		}
	}
}

func TestFlitTablePaperExample(t *testing.T) {
	// Figure 8: pattern 0110 -> 128B transaction (chunks 1-2).
	e := Lookup(0b0110)
	if e.SizeBytes != 128 || e.BaseChunk != 1 {
		t.Fatalf("0110 -> %+v, want 128B at chunk 1", e)
	}
}

func TestFlitTableSizes(t *testing.T) {
	cases := map[uint8]uint32{
		0b0001: 64, 0b0010: 64, 0b0100: 64, 0b1000: 64,
		0b0011: 128, 0b0110: 128, 0b1100: 128,
		0b0101: 256, 0b1010: 256, 0b1001: 256,
		0b0111: 256, 0b1110: 256, 0b1011: 256, 0b1101: 256, 0b1111: 256,
	}
	for p, want := range cases {
		if got := Lookup(p).SizeBytes; got != want {
			t.Fatalf("pattern %04b: size %d, want %d", p, got, want)
		}
	}
}

func TestFlitTableWindowInRow(t *testing.T) {
	for p := uint8(1); p < 16; p++ {
		e := Lookup(p)
		if uint32(e.BaseChunk)*64+e.SizeBytes > 256 {
			t.Fatalf("pattern %04b window overruns row: %+v", p, e)
		}
	}
}

func TestLookupPanicsOnEmptyPattern(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Lookup(0) did not panic")
		}
	}()
	Lookup(0)
}

func TestCoversInvariant(t *testing.T) {
	// Property: the FLIT-table window always covers every requested
	// FLIT — responses can always satisfy all merged targets.
	f := func(raw uint16) bool {
		m := FlitMap(raw)
		if m == 0 {
			return true
		}
		return Covers(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
	// And exhaustively, since there are only 65536 maps.
	for raw := 1; raw <= 0xFFFF; raw++ {
		if !Covers(FlitMap(raw)) {
			t.Fatalf("map %016b not covered by its window", raw)
		}
	}
}

func TestCoverWindowMinimalForSingleChunk(t *testing.T) {
	// A map confined to one chunk must produce exactly 64B at that
	// chunk — the builder's floor (§4.2).
	for chunk := uint32(0); chunk < 4; chunk++ {
		m := FlitMap(0).Set(uint8(chunk*4 + 1))
		off, size := CoverWindow(m)
		if size != 64 || off != chunk*64 {
			t.Fatalf("chunk %d: window (%d,%d)", chunk, off, size)
		}
	}
}
