package core

import (
	"fmt"

	"mac3d/internal/addr"
	"mac3d/internal/hmc"
	"mac3d/internal/memreq"
	"mac3d/internal/obs"
	"mac3d/internal/sim"
)

// Config parameterizes one MAC unit.
type Config struct {
	// ARQ sizes the raw request aggregator.
	ARQ AggregatorConfig
	// BypassSize is the payload of a bypassed (B bit) transaction.
	// The design forwards the raw request directly, i.e. one FLIT.
	BypassSize uint32
	// FineBuilder switches the request builder to 16B (FLIT)
	// granularity instead of the paper's 64B chunks — an ablation
	// of the §4.2 control-overhead/data-utilization trade.
	FineBuilder bool
}

// DefaultConfig returns the paper's evaluated configuration
// (Table 1: 32-entry ARQ, 64B entries).
func DefaultConfig() Config {
	return Config{ARQ: DefaultAggregatorConfig(), BypassSize: addr.FlitBytes}
}

// Validate reports the first configuration error, or nil.
func (c Config) Validate() error {
	if err := c.ARQ.Validate(); err != nil {
		return err
	}
	if c.BypassSize != 0 && (c.BypassSize%addr.FlitBytes != 0 || c.BypassSize > addr.RowBytes) {
		return fmt.Errorf("core: BypassSize must be a FLIT multiple <= %d, got %d",
			addr.RowBytes, c.BypassSize)
	}
	return nil
}

// SpaceBytes returns the hardware area model of the whole MAC unit
// (paper §5.3.3): the ARQ entries plus the builder's FLIT map and
// FLIT table. Comparators and OR gates are reported separately.
func (c Config) SpaceBytes() int { return c.ARQ.SpaceBytes() + BuilderSpaceBytes }

// MAC is the complete Memory Access Coalescer unit. It implements
// memreq.Coalescer.
type MAC struct {
	cfg Config
	agg *Aggregator
	bld *Builder

	// nextPop is the earliest cycle the ARQ may pop again (one pop
	// per PopInterval cycles).
	nextPop sim.Cycle
	// heldFence is set while a popped fence waits for outstanding
	// transactions to drain.
	heldFence bool
	inflight  int

	st *memreq.Stats
	// obs is the run's observability handle (nil when disabled).
	obs *obs.Obs
}

var (
	_ memreq.Coalescer = (*MAC)(nil)
	_ obs.Attacher     = (*MAC)(nil)
)

// New builds a MAC unit, returning a wrapped configuration error so
// callers assembling systems at run time (the facade, the NUMA
// builder) can surface it instead of crashing.
func New(cfg Config) (*MAC, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid MAC config: %w", err)
	}
	if cfg.BypassSize == 0 {
		cfg.BypassSize = addr.FlitBytes
	}
	agg := NewAggregator(cfg.ARQ)
	bld := NewBuilder(agg.Window())
	if cfg.FineBuilder {
		bld = NewFineBuilder(agg.Window())
	}
	return &MAC{
		cfg: cfg,
		agg: agg,
		bld: bld,
		st:  memreq.NewStats(),
	}, nil
}

// MustNew is New panicking on error, for tests and static fixtures.
func MustNew(cfg Config) *MAC {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Config returns the unit configuration.
func (m *MAC) Config() Config { return m.cfg }

// Aggregator exposes the ARQ for white-box tests and occupancy stats.
func (m *MAC) Aggregator() *Aggregator { return m.agg }

// SampleOccupancy records one ARQ occupancy observation. Tick does
// this itself; drivers that skip Tick on backpressured cycles call it
// directly so OccupancyMean stays a true per-cycle time average.
func (m *MAC) SampleOccupancy() { m.agg.SampleOccupancy() }

// AttachObs wires the unit into a run's observability layer: the ARQ
// counters and occupancy gauge register into the metrics registry, and
// — when a tracer is present — ARQ entries start carrying TxSpans that
// drivers render as per-transaction Chrome trace spans.
func (m *MAC) AttachObs(o *obs.Obs) {
	m.obs = o
	m.agg.attachObs(o)
	reg := o.Reg()
	reg.Func("mac.inflight", func() float64 { return float64(m.inflight) })
	reg.Func("mac.pending", func() float64 { return float64(m.Pending()) })
}

// Push offers one raw request at cycle now (≤1 per cycle in the timed
// model; the request router enforces the rate). It reports acceptance.
func (m *MAC) Push(r memreq.RawRequest, now sim.Cycle) bool {
	if !m.agg.Push(r, now) {
		m.st.PushRejects++
		return false
	}
	switch {
	case r.Fence:
		m.st.Fences++
	case r.Atomic:
		m.st.RawRequests++
		m.st.RawAtomics++
	case r.Store:
		m.st.RawRequests++
		m.st.RawStores++
	default:
		m.st.RawRequests++
		m.st.RawLoads++
	}
	return true
}

// Tick advances the MAC one cycle: the builder pipeline moves, and —
// at most once every PopInterval cycles — the ARQ head pops into the
// builder, bypasses directly to memory, or (for fences) holds until
// the outstanding count drains.
func (m *MAC) Tick(now sim.Cycle) []memreq.Built {
	var out []memreq.Built

	// Occupancy is sampled here — once per tick — rather than inside
	// Push, so drain phases weigh into the mean (the push-time
	// sampling bias fix).
	m.agg.SampleOccupancy()

	if built, ok := m.bld.Tick(now); ok {
		m.note(&built)
		out = append(out, built)
	}

	// Fence release: a held fence retires once every earlier
	// transaction has completed and the builder is empty.
	if m.heldFence {
		if m.inflight == 0 && !m.bld.Busy() && len(out) == 0 {
			m.heldFence = false
		}
		return out
	}

	if now < m.nextPop {
		return out
	}

	if m.agg.PeekFence() {
		// Pop the fence marker and stall pops until drained.
		m.agg.Pop()
		m.heldFence = true
		m.nextPop = now + m.cfg.ARQ.PopInterval
		return out
	}

	// Bypass entries (B bit, atomics) skip the builder; coalesced
	// entries need a free stage-1 slot.
	if m.agg.Len() > 0 {
		head := m.agg.headEntry()
		single := !head.fence && !head.atomic && len(head.targets) == 1
		if head.atomic || single {
			e, _ := m.agg.Pop()
			e.span.MarkPop(uint64(now))
			e.span.MarkBuilt(uint64(now))
			b := m.direct(e)
			m.note(&b)
			out = append(out, b)
			m.nextPop = now + m.cfg.ARQ.PopInterval
		} else if m.bld.CanAccept(now) {
			e, _ := m.agg.Pop()
			e.span.MarkPop(uint64(now))
			m.bld.Accept(e, now)
			m.nextPop = now + m.cfg.ARQ.PopInterval
		}
	}
	return out
}

// direct builds the transaction for a bypassed or atomic entry: the
// raw request is forwarded with its own address at FLIT granularity.
func (m *MAC) direct(e arqEntry) memreq.Built {
	r := e.raw
	kind := hmc.Read
	switch {
	case e.atomic:
		kind = hmc.AtomicOp
	case r.Store:
		kind = hmc.Write
	}
	// The transaction is FLIT-aligned; an access that starts mid-FLIT
	// and crosses into the next FLIT needs the span of both.
	base := r.Addr &^ uint64(addr.FlitMask)
	span := uint32(r.Addr-base) + uint32(r.Size)
	if rem := span % addr.FlitBytes; rem != 0 {
		span += addr.FlitBytes - rem
	}
	size := m.cfg.BypassSize
	if span > size {
		size = span
	}
	return memreq.Built{
		Req: hmc.Request{
			Kind: kind,
			Addr: base,
			Data: size,
		},
		Targets:  e.targets,
		Bypassed: true,
		Span:     e.span,
	}
}

// note updates statistics and the outstanding count for an emitted
// transaction.
func (m *MAC) note(b *memreq.Built) {
	b.Req.Normalize()
	for _, t := range b.Targets {
		if err := t.Validate(m.cfg.ARQ.WindowBytes); err != nil {
			panic(err)
		}
	}
	m.st.Transactions++
	if b.Bypassed {
		m.st.Bypassed++
	}
	m.st.BuiltBySizeBytes[b.Req.Data]++
	m.st.TargetsPerTx.Observe(uint64(len(b.Targets)))
	m.inflight++
	if b.Span != nil {
		b.Span.Addr = b.Req.Addr
		b.Span.Bytes = b.Req.Data
		b.Span.Targets = len(b.Targets)
		b.Span.Store = b.Req.Kind == hmc.Write
		b.Span.Bypassed = b.Bypassed
	}
}

// Completed signals that a previously emitted transaction finished.
func (m *MAC) Completed(*memreq.Built) {
	if m.inflight == 0 {
		panic("core: Completed without matching emission")
	}
	m.inflight--
}

// Recycle implements memreq.Recycler: a driver that has fully consumed
// a Built (response delivered, every target retired) hands it back so
// the target slab returns to the ARQ's pool. The Built must not be
// referenced again afterwards.
func (m *MAC) Recycle(b *memreq.Built) {
	if b == nil || b.Targets == nil {
		return
	}
	m.agg.RecycleTargets(b.Targets)
	b.Targets = nil
}

// Pending returns raw requests accepted but not yet emitted (ARQ
// occupancy plus builder pipeline contents, counted in entries).
func (m *MAC) Pending() int {
	n := m.agg.Len()
	if m.bld.stage1.valid {
		n++
	}
	if m.bld.stage2.valid {
		n++
	}
	if m.heldFence {
		n++
	}
	return n
}

// Inflight returns emitted transactions not yet completed.
func (m *MAC) Inflight() int { return m.inflight }

// Stats returns the accumulated coalescing statistics.
func (m *MAC) Stats() *memreq.Stats { return m.st }

// Reset restores the unit to its initial state, clearing statistics.
func (m *MAC) Reset() {
	m.agg.Reset()
	if m.cfg.FineBuilder {
		m.bld = NewFineBuilder(m.agg.Window())
	} else {
		m.bld = NewBuilder(m.agg.Window())
	}
	m.nextPop = 0
	m.heldFence = false
	m.inflight = 0
	m.st = memreq.NewStats()
}
