package core

import (
	"testing"

	"mac3d/internal/addr"
	"mac3d/internal/hmc"
	"mac3d/internal/memreq"
	"mac3d/internal/sim"
)

// runMAC ticks the unit until idle (or maxCycles) collecting output.
func runMAC(m *MAC, maxCycles sim.Cycle) []memreq.Built {
	var out []memreq.Built
	for now := sim.Cycle(0); now < maxCycles; now++ {
		got := m.Tick(now)
		out = append(out, got...)
		// Completions arrive "instantly" for these unit tests.
		for i := range got {
			m.Completed(&got[i])
		}
		if m.Pending() == 0 {
			break
		}
	}
	return out
}

func testMAC(fill bool) *MAC {
	cfg := DefaultConfig()
	cfg.ARQ.FillMode = fill
	return MustNew(cfg)
}

func TestBuilderPipelineLatency(t *testing.T) {
	win, _ := NewWindow(256)
	b := NewBuilder(win)
	e := arqEntry{tag: addr.Tag(0xA00, false), fmap: WideMap(0).Set(6).Set(8).Set(9)}
	e.targets = []memreq.Target{{}, {}, {}}
	if !b.CanAccept(0) {
		t.Fatal("fresh builder cannot accept")
	}
	b.Accept(e, 0)
	// Stage 1 finishes at cycle 1, stage 2 at cycle 3 (lookup+build):
	// the transaction appears on the cycle-3 tick.
	for now := sim.Cycle(0); now < 3; now++ {
		if _, ok := b.Tick(now); ok {
			t.Fatalf("emitted at cycle %d, want 3", now)
		}
	}
	built, ok := b.Tick(3)
	if !ok {
		t.Fatal("no emission at cycle 3")
	}
	if built.Req.Data != 128 {
		t.Fatalf("size = %d, want 128 (pattern 0110)", built.Req.Data)
	}
	if built.Req.Addr != 0xA00+64 {
		t.Fatalf("addr = %#x, want %#x", built.Req.Addr, 0xA00+64)
	}
	if b.Busy() {
		t.Fatal("builder still busy after emission")
	}
}

func TestBuilderStoreKind(t *testing.T) {
	win, _ := NewWindow(256)
	b := NewBuilder(win)
	e := arqEntry{tag: addr.Tag(0xA00, true), fmap: WideMap(0).Set(0)}
	e.targets = []memreq.Target{{}, {}}
	b.Accept(e, 0)
	var built memreq.Built
	var ok bool
	for now := sim.Cycle(0); now < 10 && !ok; now++ {
		built, ok = b.Tick(now)
	}
	if !ok || built.Req.Kind != hmc.Write {
		t.Fatalf("store entry built kind %v", built.Req.Kind)
	}
}

func TestMACFigure7EndToEnd(t *testing.T) {
	// The paper's Figure 7 example: loads of FLITs 6,8,9 in row 0xA
	// plus a store to the same row. Expect one 128B read (0110
	// pattern) carrying 3 targets and one bypassed 16B write.
	m := testMAC(false)
	row := uint64(0xA) << addr.RowShift
	m.Push(memreq.RawRequest{Addr: row + 6*16, Size: 8, Thread: 0, Tag: 1}, 0)
	m.Push(memreq.RawRequest{Addr: row + 8*16, Size: 8, Thread: 1, Tag: 2}, 1)
	m.Push(memreq.RawRequest{Addr: row + 7*16, Size: 8, Store: true, Thread: 2, Tag: 3}, 2)
	m.Push(memreq.RawRequest{Addr: row + 9*16, Size: 8, Thread: 3, Tag: 4}, 3)

	out := runMAC(m, 100)
	if len(out) != 2 {
		t.Fatalf("transactions = %d, want 2", len(out))
	}
	// The bypassed store skips the 3-cycle builder pipeline, so it
	// may legitimately complete before the coalesced read.
	read, write := out[0], out[1]
	if read.Req.Kind == hmc.Write {
		read, write = write, read
	}
	if read.Req.Kind != hmc.Read || write.Req.Kind != hmc.Write {
		t.Fatalf("kinds = %v,%v", read.Req.Kind, write.Req.Kind)
	}
	if read.Req.Data != 128 || len(read.Targets) != 3 || read.Bypassed {
		t.Fatalf("read tx = %+v", read)
	}
	if write.Req.Data != 16 || len(write.Targets) != 1 || !write.Bypassed {
		t.Fatalf("write tx = %+v", write)
	}
	st := m.Stats()
	if st.RawRequests != 4 || st.Transactions != 2 || st.Bypassed != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if got := st.CoalescingEfficiency(); got != 0.5 {
		t.Fatalf("coalescing efficiency = %v, want 0.5", got)
	}
}

func TestMACFigure2SixteenLoadsOneRequest(t *testing.T) {
	// Figure 2: sixteen 16B loads covering one 256B row coalesce
	// into a single 256B request.
	m := testMAC(false)
	for i := 0; i < 16; i++ {
		m.Push(memreq.RawRequest{Addr: uint64(i * 16), Size: 16, Thread: uint16(i), Tag: uint16(i)}, sim.Cycle(i))
	}
	out := runMAC(m, 200)
	// MaxTargets=12 splits this into a 12-target and a 4-target
	// entry; with MaxTargets>=16 it would be a single request. Use
	// a permissive check on total coverage, then an exact one below.
	totalTargets := 0
	for _, b := range out {
		totalTargets += len(b.Targets)
	}
	if totalTargets != 16 {
		t.Fatalf("targets delivered = %d, want 16", totalTargets)
	}

	cfg := DefaultConfig()
	cfg.ARQ.FillMode = false
	cfg.ARQ.MaxTargets = 16
	m2 := MustNew(cfg)
	for i := 0; i < 16; i++ {
		m2.Push(memreq.RawRequest{Addr: uint64(i * 16), Size: 16, Thread: uint16(i), Tag: uint16(i)}, sim.Cycle(i))
	}
	out2 := runMAC(m2, 200)
	if len(out2) != 1 {
		t.Fatalf("transactions = %d, want 1", len(out2))
	}
	if out2[0].Req.Data != 256 || out2[0].Req.Addr != 0 || len(out2[0].Targets) != 16 {
		t.Fatalf("coalesced tx = %+v", out2[0])
	}
}

func TestMACPopRateHalfRequestPerCycle(t *testing.T) {
	// §4.4: the ARQ pops one entry every two cycles, so N distinct
	// rows take at least 2N cycles to emit.
	m := testMAC(false)
	const n = 10
	for i := 0; i < n; i++ {
		m.Push(memreq.RawRequest{Addr: uint64(i) << addr.RowShift, Size: 8, Tag: uint16(i)}, 0)
	}
	emitAt := make([]sim.Cycle, 0, n)
	for now := sim.Cycle(0); now < 100 && len(emitAt) < n; now++ {
		got := m.Tick(now)
		for i := range got {
			emitAt = append(emitAt, now)
			m.Completed(&got[i])
		}
	}
	if len(emitAt) != n {
		t.Fatalf("emitted %d of %d", len(emitAt), n)
	}
	for i := 1; i < n; i++ {
		if emitAt[i]-emitAt[i-1] < 2 {
			t.Fatalf("emissions %d cycles apart at %d, want >= 2", emitAt[i]-emitAt[i-1], i)
		}
	}
}

func TestMACFenceOrdersStream(t *testing.T) {
	m := testMAC(false)
	m.Push(memreq.RawRequest{Addr: 0x100, Size: 8, Tag: 1}, 0)
	m.Push(memreq.RawRequest{Fence: true}, 1)
	m.Push(memreq.RawRequest{Addr: 0x200, Size: 8, Tag: 2}, 2)

	// Drive without completing: the post-fence request must not be
	// emitted while the pre-fence transaction is outstanding.
	var first *memreq.Built
	for now := sim.Cycle(0); now < 50; now++ {
		got := m.Tick(now)
		if len(got) > 0 {
			first = &got[0]
			break
		}
	}
	if first == nil {
		t.Fatal("first transaction never emitted")
	}
	for now := sim.Cycle(50); now < 100; now++ {
		if got := m.Tick(now); len(got) > 0 {
			t.Fatal("post-fence transaction emitted before fence drained")
		}
	}
	m.Completed(first)
	var second []memreq.Built
	for now := sim.Cycle(100); now < 200 && len(second) == 0; now++ {
		second = m.Tick(now)
	}
	if len(second) != 1 || second[0].Req.Addr != 0x200 {
		t.Fatalf("post-fence tx = %+v", second)
	}
	if m.Stats().Fences != 1 {
		t.Fatalf("fence count = %d", m.Stats().Fences)
	}
}

func TestMACAtomicDirectRoute(t *testing.T) {
	m := testMAC(false)
	m.Push(memreq.RawRequest{Addr: 0x1008, Size: 8, Atomic: true, Thread: 2, Tag: 9}, 0)
	out := runMAC(m, 50)
	if len(out) != 1 {
		t.Fatalf("transactions = %d", len(out))
	}
	b := out[0]
	if b.Req.Kind != hmc.AtomicOp || !b.Bypassed {
		t.Fatalf("atomic tx = %+v", b)
	}
	if b.Req.Addr != 0x1000 || b.Req.Data != 16 {
		t.Fatalf("atomic addressing = %#x/%d", b.Req.Addr, b.Req.Data)
	}
}

func TestMACBypassPreservesRawSize(t *testing.T) {
	m := testMAC(false)
	m.Push(memreq.RawRequest{Addr: 0x208, Size: 8, Tag: 5, Thread: 1}, 0)
	out := runMAC(m, 50)
	if len(out) != 1 || !out[0].Bypassed {
		t.Fatalf("out = %+v", out)
	}
	if out[0].Req.Data != 16 {
		t.Fatalf("bypass size = %d, want one FLIT", out[0].Req.Data)
	}
	if out[0].Req.Addr != 0x200 {
		t.Fatalf("bypass addr = %#x, want FLIT-aligned 0x200", out[0].Req.Addr)
	}
}

func TestMACTargetsConservedAcrossManyRequests(t *testing.T) {
	// Integration invariant: every pushed memory request's (thread,
	// tag) appears in exactly one emitted transaction.
	m := testMAC(true)
	rng := sim.NewRNG(99)
	type key struct{ th, tag uint16 }
	want := make(map[key]bool)
	const n = 500
	pushed := 0
	now := sim.Cycle(0)
	for pushed < n {
		r := memreq.RawRequest{
			Addr:   uint64(rng.Intn(64)) * 16, // 4 rows
			Size:   8,
			Store:  rng.Intn(4) == 0,
			Thread: uint16(pushed % 8),
			Tag:    uint16(pushed),
		}
		if m.Push(r, now) {
			want[key{r.Thread, r.Tag}] = true
			pushed++
		}
		got := m.Tick(now)
		for i := range got {
			for _, tg := range got[i].Targets {
				k := key{tg.Thread, tg.Tag}
				if !want[k] {
					t.Fatalf("duplicate or unknown target %+v", tg)
				}
				delete(want, k)
			}
			m.Completed(&got[i])
		}
		now++
	}
	for ; m.Pending() > 0 && now < 100000; now++ {
		got := m.Tick(now)
		for i := range got {
			for _, tg := range got[i].Targets {
				k := key{tg.Thread, tg.Tag}
				if !want[k] {
					t.Fatalf("duplicate or unknown target %+v", tg)
				}
				delete(want, k)
			}
			m.Completed(&got[i])
		}
	}
	if len(want) != 0 {
		t.Fatalf("%d targets never delivered", len(want))
	}
	if m.Inflight() != 0 {
		t.Fatalf("inflight = %d at drain", m.Inflight())
	}
}

func TestMACBuiltSizesAreLegal(t *testing.T) {
	m := testMAC(true)
	rng := sim.NewRNG(5)
	now := sim.Cycle(0)
	// Builder output is 64/128/256B; bypasses are one FLIT, or two
	// when the raw access crosses a FLIT boundary.
	legal := map[uint32]bool{16: true, 32: true, 64: true, 128: true, 256: true}
	for i := 0; i < 300; i++ {
		m.Push(memreq.RawRequest{
			Addr:   uint64(rng.Intn(1 << 14)),
			Size:   8,
			Thread: uint16(i % 4),
			Tag:    uint16(i),
		}, now)
		for _, b := range m.Tick(now) {
			if !legal[b.Req.Data] {
				t.Fatalf("illegal transaction size %d", b.Req.Data)
			}
			bb := b
			m.Completed(&bb)
		}
		now++
	}
}

func TestMACCompletedUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Completed underflow did not panic")
		}
	}()
	testMAC(false).Completed(nil)
}

func TestMACConfigValidate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BypassSize = 10 // not a FLIT multiple
	if err := cfg.Validate(); err == nil {
		t.Fatal("bad BypassSize accepted")
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMACSpaceBytesMatchesPaper(t *testing.T) {
	// §5.3.3: 32-entry ARQ -> 2048B + 14B builder = 2062B.
	if got := DefaultConfig().SpaceBytes(); got != 2062 {
		t.Fatalf("space = %dB, want 2062B", got)
	}
}

func TestMACReset(t *testing.T) {
	m := testMAC(false)
	m.Push(memreq.RawRequest{Addr: 0x100, Size: 8}, 0)
	m.Tick(0)
	m.Reset()
	if m.Pending() != 0 || m.Inflight() != 0 || m.Stats().RawRequests != 0 {
		t.Fatal("reset incomplete")
	}
	out := runMAC(m, 10)
	if len(out) != 0 {
		t.Fatal("reset left queued work")
	}
}
