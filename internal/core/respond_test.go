package core

import (
	"testing"

	"mac3d/internal/hmc"
	"mac3d/internal/memreq"
)

func built(a uint64) *memreq.Built {
	return &memreq.Built{
		Req:     hmc.Request{Kind: hmc.Read, Addr: a, Data: 64},
		Targets: []memreq.Target{{Thread: 0, Tag: uint16(a)}},
	}
}

func TestResponseRouterRegisterAndDeliver(t *testing.T) {
	r := NewResponseRouter(0)
	b := built(0x100)
	tag, ok := r.Register(b, 5)
	if !ok || tag != 1 {
		t.Fatalf("Register = (%d, %v), want (1, true)", tag, ok)
	}
	if b.Req.Tag != tag {
		t.Fatalf("Register did not stamp the request tag: %d", b.Req.Tag)
	}
	if r.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", r.Pending())
	}
	got, status := r.Deliver(hmc.Response{Tag: tag})
	if status != RespDelivered || got != b {
		t.Fatalf("Deliver = (%p, %v), want (%p, delivered)", got, status, b)
	}
	if r.Pending() != 0 {
		t.Fatalf("Pending after delivery = %d, want 0", r.Pending())
	}
	if st := r.Stats(); st.Delivered != 1 {
		t.Fatalf("Delivered = %d, want 1", st.Delivered)
	}
}

func TestResponseRouterTagsMonotonicFromOne(t *testing.T) {
	// The seed model assigned device tags 1, 2, 3, ... — parity with
	// it requires the same sequence.
	r := NewResponseRouter(0)
	for want := uint64(1); want <= 5; want++ {
		tag, ok := r.Register(built(want), 0)
		if !ok || tag != want {
			t.Fatalf("Register #%d = (%d, %v), want (%d, true)", want, tag, ok, want)
		}
	}
}

func TestResponseRouterDuplicateDelivery(t *testing.T) {
	r := NewResponseRouter(0)
	tag, _ := r.Register(built(0x40), 0)
	if _, status := r.Deliver(hmc.Response{Tag: tag}); status != RespDelivered {
		t.Fatalf("first delivery = %v, want delivered", status)
	}
	// A retransmitted response for the already-retired transaction.
	got, status := r.Deliver(hmc.Response{Tag: tag})
	if status != RespDuplicate || got != nil {
		t.Fatalf("second delivery = (%v, %v), want (nil, duplicate)", got, status)
	}
	if st := r.Stats(); st.Duplicates != 1 || st.Delivered != 1 {
		t.Fatalf("stats = %+v, want 1 delivered + 1 duplicate", st)
	}
}

func TestResponseRouterUnknownTag(t *testing.T) {
	r := NewResponseRouter(0)
	r.Register(built(0x40), 0)
	// Tag 0 is never issued; tags above lastTag were never issued.
	for _, tag := range []uint64{0, 99} {
		got, status := r.Deliver(hmc.Response{Tag: tag})
		if status != RespUnknown || got != nil {
			t.Fatalf("Deliver(tag=%d) = (%v, %v), want (nil, unknown)", tag, got, status)
		}
	}
	if st := r.Stats(); st.Unknown != 2 {
		t.Fatalf("Unknown = %d, want 2", st.Unknown)
	}
	if r.Pending() != 1 {
		t.Fatal("unknown deliveries must not consume outstanding entries")
	}
}

func TestResponseRouterPoisonedDelivery(t *testing.T) {
	r := NewResponseRouter(0)
	b := built(0x40)
	tag, _ := r.Register(b, 0)
	got, status := r.Deliver(hmc.Response{Tag: tag, Poisoned: true})
	if status != RespPoisoned || got != b {
		t.Fatalf("Deliver = (%p, %v), want (%p, poisoned)", got, status, b)
	}
	// The entry is consumed exactly once: no leak, and a duplicate of
	// the poisoned response classifies as duplicate.
	if r.Pending() != 0 {
		t.Fatal("poisoned delivery leaked the target-buffer entry")
	}
	if _, status := r.Deliver(hmc.Response{Tag: tag, Poisoned: true}); status != RespDuplicate {
		t.Fatalf("replayed poisoned response = %v, want duplicate", status)
	}
	if st := r.Stats(); st.Poisoned != 1 {
		t.Fatalf("Poisoned = %d, want 1", st.Poisoned)
	}
}

func TestResponseRouterCapExhaustion(t *testing.T) {
	r := NewResponseRouter(2)
	t1, ok1 := r.Register(built(1), 0)
	_, ok2 := r.Register(built(2), 0)
	if !ok1 || !ok2 {
		t.Fatal("registrations under capacity rejected")
	}
	b3 := built(3)
	if _, ok := r.Register(b3, 0); ok {
		t.Fatal("Register above capacity accepted")
	}
	if st := r.Stats(); st.RegisterRejects != 1 {
		t.Fatalf("RegisterRejects = %d, want 1", st.RegisterRejects)
	}
	// A rejected Register must not burn a tag: after space frees, the
	// retried transaction gets the next sequential tag.
	r.Deliver(hmc.Response{Tag: t1})
	tag, ok := r.Register(b3, 1)
	if !ok || tag != 3 {
		t.Fatalf("retried Register = (%d, %v), want (3, true)", tag, ok)
	}
}

func TestResponseRouterOldest(t *testing.T) {
	r := NewResponseRouter(0)
	if _, _, _, ok := r.Oldest(); ok {
		t.Fatal("Oldest on empty buffer reported ok")
	}
	r.Register(built(1), 10)
	tag2, _ := r.Register(built(2), 3)
	r.Register(built(3), 7)
	tag, registered, b, ok := r.Oldest()
	if !ok || tag != tag2 || registered != 3 || b == nil {
		t.Fatalf("Oldest = (%d, %d, %p, %v), want tag %d at cycle 3", tag, registered, b, ok, tag2)
	}
	// Tie on registration cycle: lowest tag wins (deterministic).
	r2 := NewResponseRouter(0)
	first, _ := r2.Register(built(1), 5)
	r2.Register(built(2), 5)
	if tag, _, _, _ := r2.Oldest(); tag != first {
		t.Fatalf("Oldest tie-break returned tag %d, want %d", tag, first)
	}
}

func TestResponseRouterReset(t *testing.T) {
	r := NewResponseRouter(0)
	tag, _ := r.Register(built(1), 0)
	r.Deliver(hmc.Response{Tag: tag})
	r.Register(built(2), 0)
	r.Reset()
	if r.Pending() != 0 {
		t.Fatal("Reset left outstanding entries")
	}
	if st := r.Stats(); st != (ResponseRouterStats{}) {
		t.Fatalf("Reset left stats %+v", st)
	}
	if tag, _ := r.Register(built(3), 0); tag != 1 {
		t.Fatalf("tag after Reset = %d, want 1", tag)
	}
}

func TestResponseStatusString(t *testing.T) {
	want := map[ResponseStatus]string{
		RespDelivered: "delivered", RespPoisoned: "poisoned",
		RespDuplicate: "duplicate", RespUnknown: "unknown",
		ResponseStatus(42): "ResponseStatus(42)",
	}
	for s, str := range want {
		if s.String() != str {
			t.Fatalf("String(%d) = %q, want %q", int(s), s.String(), str)
		}
	}
}
