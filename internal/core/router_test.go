package core

import (
	"testing"

	"mac3d/internal/memreq"
)

func TestRouterSingleNodeAllLocal(t *testing.T) {
	r := MustNewRouter(DefaultRouterConfig())
	for i := 0; i < 10; i++ {
		if !r.OfferLocal(memreq.RawRequest{Addr: uint64(i) * 4096, Size: 8}) {
			t.Fatalf("offer %d rejected", i)
		}
	}
	local, global, remote := r.Stats()
	if local != 10 || global != 0 || remote != 0 {
		t.Fatalf("routing = %d/%d/%d", local, global, remote)
	}
}

func TestRouterClassifiesByInterleave(t *testing.T) {
	cfg := DefaultRouterConfig()
	cfg.Nodes = 2
	cfg.NodeID = 0
	cfg.InterleaveBytes = 256
	r := MustNewRouter(cfg)
	r.OfferLocal(memreq.RawRequest{Addr: 0, Size: 8})   // block 0 -> node 0: local
	r.OfferLocal(memreq.RawRequest{Addr: 256, Size: 8}) // block 1 -> node 1: global
	local, global, _ := r.Stats()
	if local != 1 || global != 1 {
		t.Fatalf("routing = %d local %d global", local, global)
	}
	out, ok := r.PopOutbound()
	if !ok || out.Dest != 1 || out.Req.Addr != 256 {
		t.Fatalf("outbound = %+v, %v", out, ok)
	}
}

func TestRouterFencesAlwaysLocal(t *testing.T) {
	cfg := DefaultRouterConfig()
	cfg.Nodes = 4
	r := MustNewRouter(cfg)
	if !r.OfferLocal(memreq.RawRequest{Fence: true}) {
		t.Fatal("fence rejected")
	}
	local, global, _ := r.Stats()
	if local != 1 || global != 0 {
		t.Fatal("fence not routed locally")
	}
}

func TestRouterDrainFeedsMAC(t *testing.T) {
	r := MustNewRouter(DefaultRouterConfig())
	m := testMAC(false)
	r.OfferLocal(memreq.RawRequest{Addr: 0x100, Size: 8, Tag: 1})
	r.OfferRemote(memreq.RawRequest{Addr: 0x200, Size: 8, Tag: 2})
	if !r.DrainToMAC(m, 0) {
		t.Fatal("drain 1 failed")
	}
	if !r.DrainToMAC(m, 1) {
		t.Fatal("drain 2 failed")
	}
	if r.Pending() != 0 {
		t.Fatalf("pending = %d", r.Pending())
	}
	if m.Aggregator().Len() != 2 {
		t.Fatalf("ARQ holds %d entries", m.Aggregator().Len())
	}
}

func TestRouterDrainAlternatesLocalRemote(t *testing.T) {
	r := MustNewRouter(DefaultRouterConfig())
	m := testMAC(false)
	for i := 0; i < 3; i++ {
		r.OfferLocal(memreq.RawRequest{Addr: uint64(0x1000 + i*256), Size: 8, Tag: uint16(i)})
		r.OfferRemote(memreq.RawRequest{Addr: uint64(0x9000 + i*256), Size: 8, Tag: uint16(10 + i)})
	}
	// Six drains must interleave the two queues rather than starve
	// the remote one.
	seen := make([]uint64, 0, 6)
	for now := 0; now < 6; now++ {
		before := m.Aggregator().Len()
		if !r.DrainToMAC(m, 0) {
			t.Fatalf("drain %d failed", now)
		}
		if m.Aggregator().Len() != before+1 {
			t.Fatal("drain merged unexpectedly")
		}
		e := m.Aggregator().at(m.Aggregator().Len() - 1)
		seen = append(seen, e.raw.Addr)
	}
	// Expect strict alternation after the first pick.
	localFirst := seen[0] < 0x9000
	for i, a := range seen {
		isLocal := a < 0x9000
		if (i%2 == 0) != (isLocal == localFirst) {
			t.Fatalf("no alternation: order %#x", seen)
		}
	}
}

func TestRouterDrainStopsOnMACBackpressure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ARQ.Entries = 1
	cfg.ARQ.FillMode = false
	m := MustNew(cfg)
	r := MustNewRouter(DefaultRouterConfig())
	r.OfferLocal(memreq.RawRequest{Addr: 0x100, Size: 8})
	r.OfferLocal(memreq.RawRequest{Addr: 0x900, Size: 8})
	if !r.DrainToMAC(m, 0) {
		t.Fatal("first drain failed")
	}
	if r.DrainToMAC(m, 1) {
		t.Fatal("drain succeeded against a full 1-entry ARQ")
	}
	if r.Pending() != 1 {
		t.Fatalf("pending = %d, want 1 (request preserved)", r.Pending())
	}
}

func TestRouterBackpressureOnFullQueues(t *testing.T) {
	cfg := DefaultRouterConfig()
	cfg.LocalDepth = 1
	r := MustNewRouter(cfg)
	if !r.OfferLocal(memreq.RawRequest{Addr: 1, Size: 8}) {
		t.Fatal("first offer rejected")
	}
	if r.OfferLocal(memreq.RawRequest{Addr: 2, Size: 8}) {
		t.Fatal("offer into full local queue accepted")
	}
}

func TestRouterConfigValidate(t *testing.T) {
	bad := []RouterConfig{
		{Nodes: 0, LocalDepth: 1, GlobalDepth: 1, RemoteDepth: 1},
		{Nodes: 2, NodeID: 2, LocalDepth: 1, GlobalDepth: 1, RemoteDepth: 1},
		{Nodes: 1, LocalDepth: 0, GlobalDepth: 1, RemoteDepth: 1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestRouterReset(t *testing.T) {
	r := MustNewRouter(DefaultRouterConfig())
	r.OfferLocal(memreq.RawRequest{Addr: 1, Size: 8})
	r.Reset()
	if r.Pending() != 0 {
		t.Fatal("reset left requests")
	}
	l, g, rm := r.Stats()
	if l+g+rm != 0 {
		t.Fatal("reset left stats")
	}
}
