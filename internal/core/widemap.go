package core

import (
	"fmt"
	"math/bits"

	"mac3d/internal/addr"
)

// §4.3 scalability: "The proposed MAC design is general enough to
// support larger requests by simply enlarging the FLIT map and the
// FLIT table." This file is that enlargement — a coalescing window of
// 256B (the paper's HMC 2.1 design point), 512B, or 1KB (one HBM row),
// with the FLIT map widened to one bit per 16B FLIT and the FLIT
// table generalized to window/64 chunk bits.

// WideMap is the generalized FLIT map: bit i marks FLIT i of the
// coalescing window as requested. It holds up to 64 FLITs (a 1KB
// window).
type WideMap uint64

// Set marks FLIT id as requested.
func (m WideMap) Set(id uint8) WideMap { return m | 1<<(id&63) }

// Has reports whether FLIT id is marked.
func (m WideMap) Has(id uint8) bool { return m>>(id&63)&1 == 1 }

// SetRange marks FLITs first..last inclusive.
func (m WideMap) SetRange(first, last uint8) WideMap {
	first &= 63
	last &= 63
	if last < first {
		first, last = last, first
	}
	n := uint(last - first + 1)
	var span uint64
	if n >= 64 {
		span = ^uint64(0)
	} else {
		span = 1<<n - 1
	}
	return m | WideMap(span<<first)
}

// Count returns the number of requested FLITs.
func (m WideMap) Count() int { return bits.OnesCount64(uint64(m)) }

// String renders the low 16 FLIT bits LSB-first, then any higher set
// bits as a count — readable for both 256B and wider windows.
func (m WideMap) String() string {
	b := make([]byte, 16)
	for i := range b {
		if m.Has(uint8(i)) {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	if hi := m >> 16; hi != 0 {
		return fmt.Sprintf("%s+%d high bits", b, WideMap(hi).Count())
	}
	return string(b)
}

// Groups OR-reduces the map into chunks 64B-chunk bits — the
// generalized stage 1 of the request builder. chunks must be 4, 8 or
// 16 (windows of 256B, 512B, 1KB).
func (m WideMap) Groups(chunks int) uint16 {
	var g uint16
	for i := 0; i < chunks; i++ {
		if m>>(4*i)&0xF != 0 {
			g |= 1 << i
		}
	}
	return g
}

// Window describes a coalescing window geometry.
type Window struct {
	// Bytes is the window size: 256, 512 or 1024.
	Bytes uint32
	// shift is log2(Bytes); chunks is Bytes/64; flits is Bytes/16.
	shift  uint
	chunks int
	flits  int
}

// NewWindow returns the geometry for a window size.
func NewWindow(bytes uint32) (Window, error) {
	switch bytes {
	case 256, 512, 1024:
	default:
		return Window{}, fmt.Errorf("core: window must be 256, 512 or 1024 bytes, got %d", bytes)
	}
	w := Window{Bytes: bytes}
	for 1<<w.shift != bytes {
		w.shift++
	}
	w.chunks = int(bytes / 64)
	w.flits = int(bytes / addr.FlitBytes)
	return w, nil
}

// Chunks returns the number of 64B chunks in the window.
func (w Window) Chunks() int { return w.chunks }

// Flits returns the number of 16B FLITs in the window.
func (w Window) Flits() int { return w.flits }

// Tag builds the extended comparator tag: the window number with the
// T (type) bit above the physical bits, generalizing addr.Tag.
func (w Window) Tag(a uint64, store bool) uint64 {
	t := (a & addr.PhysMask) >> w.shift
	if store {
		t |= 1 << (addr.TBit - w.shift)
	}
	return t
}

// TagIsStore reports whether a window tag carries the store bit.
func (w Window) TagIsStore(tag uint64) bool {
	return tag>>(addr.TBit-w.shift)&1 == 1
}

// TagBase returns the base address of the window a tag names.
func (w Window) TagBase(tag uint64) uint64 {
	return (tag &^ (1 << (addr.TBit - w.shift))) << w.shift
}

// FlitID returns the window-relative FLIT index of address a.
func (w Window) FlitID(a uint64) uint8 {
	return uint8((a >> addr.FlitShift) & uint64(w.flits-1))
}

// CrossesBoundary reports whether an access of size bytes at address
// a extends past the end of its coalescing window. Such an access
// touches FLITs of two windows, so it must be split at the boundary
// before FlitSpan — which clips to one window — is applied to each
// half (Aggregator.Push performs the split).
func (w Window) CrossesBoundary(a uint64, size uint32) bool {
	if size == 0 {
		size = 1
	}
	return (a&uint64(w.Bytes-1))+uint64(size) > uint64(w.Bytes)
}

// FlitSpan returns the first and last window FLIT touched by an
// access of size bytes at address a. The access must lie within one
// window (see CrossesBoundary): a crossing access is clipped to the
// window holding its first byte, losing the tail FLITs.
func (w Window) FlitSpan(a uint64, size uint32) (first, last uint8) {
	if size == 0 {
		size = 1
	}
	first = w.FlitID(a)
	end := (a & uint64(w.Bytes-1)) + uint64(size) - 1
	if end > uint64(w.Bytes-1) {
		end = uint64(w.Bytes - 1)
	}
	last = uint8(end >> addr.FlitShift)
	return first, last
}

// WideEntry is one row of the generalized FLIT table.
type WideEntry struct {
	// SizeBytes is the transaction payload (64 * 2^k, up to the
	// window size).
	SizeBytes uint32
	// BaseChunk is the first 64B chunk covered.
	BaseChunk uint8
}

// WideLookup generalizes the 16-entry FLIT table: the covered span
// from the lowest to the highest requested chunk, rounded up to the
// next power-of-two chunk count, shifted down if it would overrun the
// window. The tables are precomputed per window size at package init
// — exactly "enlarging the FLIT table".
func (w Window) WideLookup(pattern uint16) WideEntry {
	if pattern == 0 || int(bits.Len16(pattern)) > w.chunks {
		panic(fmt.Sprintf("core: invalid pattern %#x for %dB window", pattern, w.Bytes))
	}
	return wideTables[w.Bytes][pattern]
}

var wideTables = buildWideTables()

func buildWideTables() map[uint32][]WideEntry {
	tables := make(map[uint32][]WideEntry, 3)
	for _, bytes := range []uint32{256, 512, 1024} {
		chunks := int(bytes / 64)
		table := make([]WideEntry, 1<<chunks)
		for p := 1; p < 1<<chunks; p++ {
			lo := uint8(bits.TrailingZeros16(uint16(p)))
			hi := uint8(bits.Len16(uint16(p)) - 1)
			span := int(hi - lo + 1)
			n := 1
			for n < span {
				n *= 2
			}
			base := lo
			if int(base)+n > chunks {
				base = uint8(chunks - n)
			}
			table[p] = WideEntry{SizeBytes: uint32(n) * 64, BaseChunk: base}
		}
		tables[bytes] = table
	}
	return tables
}

// CoverWindowWide returns the window-relative byte offset and size of
// the transaction prescribed for map m under window w.
func (w Window) CoverWindowWide(m WideMap) (offset, size uint32) {
	e := w.WideLookup(m.Groups(w.chunks))
	return uint32(e.BaseChunk) * 64, e.SizeBytes
}

// CoverWindowFine returns the FLIT-granularity transaction window for
// map m: the span from the lowest to the highest requested FLIT,
// rounded up to a power-of-two FLIT count and shifted to fit. This is
// the 16B-floor builder ablation — it wastes less data bandwidth on
// sparse maps than the paper's 64B-chunk design, at the cost of a
// larger lookup structure (the full FLIT map instead of 4 group bits).
func (w Window) CoverWindowFine(m WideMap) (offset, size uint32) {
	if m == 0 {
		panic("core: CoverWindowFine on empty map")
	}
	lo := uint32(bits.TrailingZeros64(uint64(m)))
	hi := uint32(bits.Len64(uint64(m)) - 1)
	span := hi - lo + 1
	n := uint32(1)
	for n < span {
		n *= 2
	}
	base := lo
	if base+n > uint32(w.flits) {
		base = uint32(w.flits) - n
	}
	return base * addr.FlitBytes, n * addr.FlitBytes
}

// CoversWide reports whether the chosen transaction window contains
// every requested FLIT — the generalized builder invariant.
func (w Window) CoversWide(m WideMap) bool {
	off, size := w.CoverWindowWide(m)
	firstFlit := off / addr.FlitBytes
	lastFlit := (off+size)/addr.FlitBytes - 1
	for id := 0; id < w.flits; id++ {
		if m.Has(uint8(id)) && (uint32(id) < firstFlit || uint32(id) > lastFlit) {
			return false
		}
	}
	return true
}
