package core

import (
	"testing"
	"testing/quick"

	"mac3d/internal/memreq"
	"mac3d/internal/sim"
)

func TestNewWindowGeometry(t *testing.T) {
	cases := []struct {
		bytes  uint32
		chunks int
		flits  int
	}{
		{256, 4, 16},
		{512, 8, 32},
		{1024, 16, 64},
	}
	for _, c := range cases {
		w, err := NewWindow(c.bytes)
		if err != nil {
			t.Fatal(err)
		}
		if w.Chunks() != c.chunks || w.Flits() != c.flits {
			t.Fatalf("%dB window: %d chunks, %d flits", c.bytes, w.Chunks(), w.Flits())
		}
	}
	for _, bad := range []uint32{0, 64, 128, 300, 2048} {
		if _, err := NewWindow(bad); err == nil {
			t.Fatalf("window %d accepted", bad)
		}
	}
}

func TestWideMapMatchesFlitMapAt256(t *testing.T) {
	// The 256B wide path must agree bit-for-bit with the paper's
	// documented 16-bit FLIT map and table.
	w, _ := NewWindow(256)
	for raw := 1; raw <= 0xFFFF; raw++ {
		narrow := FlitMap(raw)
		wide := WideMap(raw)
		if uint16(narrow.Groups()) != wide.Groups(4) {
			t.Fatalf("groups diverge for %016b", raw)
		}
		ne := Lookup(narrow.Groups())
		we := w.WideLookup(wide.Groups(4))
		if ne.SizeBytes != we.SizeBytes || ne.BaseChunk != we.BaseChunk {
			t.Fatalf("tables diverge for %016b: %+v vs %+v", raw, ne, we)
		}
	}
}

func TestWideCoversInvariantAllWindows(t *testing.T) {
	for _, bytes := range []uint32{256, 512, 1024} {
		w, _ := NewWindow(bytes)
		f := func(raw uint64) bool {
			m := WideMap(raw) & (1<<w.Flits() - 1)
			if m == 0 {
				return true
			}
			return w.CoversWide(m)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
			t.Fatalf("%dB window: %v", bytes, err)
		}
	}
}

func TestWideTagSingleComparison(t *testing.T) {
	for _, bytes := range []uint32{256, 512, 1024} {
		w, _ := NewWindow(bytes)
		f := func(a, b uint64, sa, sb bool) bool {
			ta, tb := w.Tag(a, sa), w.Tag(b, sb)
			same := (a&^uint64(w.Bytes-1))&(1<<52-1) == (b&^uint64(w.Bytes-1))&(1<<52-1) && sa == sb
			return (ta == tb) == same
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
			t.Fatalf("%dB window: %v", bytes, err)
		}
	}
}

func TestWideTagBaseRoundTrip(t *testing.T) {
	for _, bytes := range []uint32{256, 512, 1024} {
		w, _ := NewWindow(bytes)
		f := func(a uint64, store bool) bool {
			base := w.TagBase(w.Tag(a, store))
			return base == a&(1<<52-1)&^uint64(w.Bytes-1) &&
				w.TagIsStore(w.Tag(a, store)) == store
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
			t.Fatalf("%dB window: %v", bytes, err)
		}
	}
}

func TestWideFlitSpanClipped(t *testing.T) {
	w, _ := NewWindow(1024)
	first, last := w.FlitSpan(1024-8, 16)
	if first != 63 || last != 63 {
		t.Fatalf("span [%d,%d], want [63,63]", first, last)
	}
	first, last = w.FlitSpan(8, 16)
	if first != 0 || last != 1 {
		t.Fatalf("span [%d,%d], want [0,1]", first, last)
	}
}

func TestWideLookupSizesPowerOfTwo(t *testing.T) {
	w, _ := NewWindow(1024)
	for p := 1; p < 1<<16; p++ {
		e := w.WideLookup(uint16(p))
		if e.SizeBytes&(e.SizeBytes-1) != 0 || e.SizeBytes < 64 || e.SizeBytes > 1024 {
			t.Fatalf("pattern %016b: size %d", p, e.SizeBytes)
		}
		if uint32(e.BaseChunk)*64+e.SizeBytes > 1024 {
			t.Fatalf("pattern %016b overruns window: %+v", p, e)
		}
	}
}

func TestMACWithWideWindowEndToEnd(t *testing.T) {
	// A 1KB window coalesces a 64-FLIT sequential burst into a
	// single 1KB transaction (given enough target capacity).
	cfg := DefaultConfig()
	cfg.ARQ.WindowBytes = 1024
	cfg.ARQ.FillMode = false
	cfg.ARQ.MaxTargets = 64
	m := MustNew(cfg)
	for i := 0; i < 64; i++ {
		m.Push(memreq.RawRequest{Addr: uint64(i * 16), Size: 16, Thread: uint16(i % 8), Tag: uint16(i)}, sim.Cycle(i))
	}
	out := runMAC(m, 300)
	if len(out) != 1 {
		t.Fatalf("transactions = %d, want 1", len(out))
	}
	if out[0].Req.Data != 1024 || len(out[0].Targets) != 64 {
		t.Fatalf("wide tx = %dB with %d targets", out[0].Req.Data, len(out[0].Targets))
	}
}

func TestMACWindowSizesProduceLegalTransactions(t *testing.T) {
	for _, bytes := range []uint32{256, 512, 1024} {
		cfg := DefaultConfig()
		cfg.ARQ.WindowBytes = bytes
		m := MustNew(cfg)
		rng := sim.NewRNG(9)
		now := sim.Cycle(0)
		for i := 0; i < 400; i++ {
			m.Push(memreq.RawRequest{
				Addr:   uint64(rng.Intn(1 << 15)),
				Size:   8,
				Store:  rng.Intn(3) == 0,
				Thread: uint16(i % 8),
				Tag:    uint16(i),
			}, now)
			for _, b := range m.Tick(now) {
				if b.Req.Data < 16 || b.Req.Data > bytes || b.Req.Data&(b.Req.Data-1) != 0 {
					t.Fatalf("window %d: illegal size %d", bytes, b.Req.Data)
				}
				bb := b
				m.Completed(&bb)
			}
			now++
		}
	}
}
