package cpu

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"mac3d/internal/chaos"
	"mac3d/internal/hmc"
	"mac3d/internal/memreq"
)

// chaosRunConfig returns the default setup with auditing on and the
// given chaos profile string applied.
func chaosRunConfig(t *testing.T, profile string, seed uint64) RunConfig {
	t.Helper()
	cfg := DefaultRunConfig()
	cfg.Audit = true
	p, err := chaos.ParseProfile(profile)
	if err != nil {
		t.Fatalf("ParseProfile(%q): %v", profile, err)
	}
	p.Seed = seed
	cfg.Chaos = p
	return cfg
}

// TestAuditCleanOnPlainRun: with no adversity at all, every request
// must reach exactly one terminal outcome with bytes conserved, and
// the ledger must not perturb the measurements.
func TestAuditCleanOnPlainRun(t *testing.T) {
	tr := seqTrace(4, 64)
	base, err := Run(DefaultRunConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultRunConfig()
	cfg.Audit = true
	res, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	a := res.Audit
	if a == nil {
		t.Fatal("audit enabled but no report")
	}
	if !a.Ok() {
		t.Fatalf("violations on a clean run:\n%s", a.Diff())
	}
	if a.Issued != res.MemRequests || a.Delivered != a.Issued || a.Open != 0 {
		t.Fatalf("ledger counters: %s (MemRequests=%d)", a, res.MemRequests)
	}
	if res.Cycles != base.Cycles || res.Instructions != base.Instructions {
		t.Fatalf("auditing changed the simulation: %d/%d cycles, %d/%d instructions",
			res.Cycles, base.Cycles, res.Instructions, base.Instructions)
	}
}

// TestChaosRunConservesUnderStorm: the full stressor composition must
// not break a single lifecycle invariant, and the run must retire the
// same instructions as the calm run.
func TestChaosRunConservesUnderStorm(t *testing.T) {
	tr := seqTrace(4, 64)
	cfg := chaosRunConfig(t, "storm", 11)
	res, err := Run(cfg, tr)
	if err != nil {
		t.Fatalf("storm run: %v", err)
	}
	if !res.Audit.Ok() {
		t.Fatalf("storm broke invariants:\n%s", res.Audit.Diff())
	}
	if res.Chaos == nil || res.Chaos.DelayedResponses == 0 {
		t.Fatalf("storm injected nothing: %s", res.Chaos)
	}
	calm, err := Run(DefaultRunConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions != calm.Instructions {
		t.Fatalf("storm run retired %d instructions, calm %d",
			res.Instructions, calm.Instructions)
	}
	// The storm must actually perturb the schedule (it may land faster
	// or slower — reordering sometimes helps — but never identical).
	if res.Cycles == calm.Cycles {
		t.Fatalf("storm run reproduced the calm makespan: %d cycles", res.Cycles)
	}
}

// TestChaosDeterministic: one profile+seed is one adversarial
// schedule; a different chaos seed is a different one.
func TestChaosDeterministic(t *testing.T) {
	tr := seqTrace(4, 32)
	a, err := Run(chaosRunConfig(t, "storm", 5), tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(chaosRunConfig(t, "storm", 5), tr)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same chaos seed produced different results")
	}
	c, err := Run(chaosRunConfig(t, "storm", 6), tr)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles == c.Cycles && reflect.DeepEqual(a.Chaos, c.Chaos) {
		t.Fatal("different chaos seed reproduced the schedule")
	}
}

// TestTargetBufferBackpressureUnderDelayStorm: permanent delay storms
// pile responses up behind a tiny bounded target buffer; the router
// must backpressure (counted rejects), never drop or panic, and the
// run must drain with every invariant intact.
func TestTargetBufferBackpressureUnderDelayStorm(t *testing.T) {
	tr := seqTrace(2, 32)
	cfg := chaosRunConfig(t, "delay=1:16:24", 3)
	cfg.Node.TargetBufferDepth = 4
	res, err := Run(cfg, tr)
	if err != nil {
		t.Fatalf("delay-storm run with a 4-entry target buffer: %v", err)
	}
	if res.Responses.RegisterRejects == 0 {
		t.Fatal("bounded target buffer never backpressured under the storm")
	}
	if !res.Audit.Ok() {
		t.Fatalf("backpressure broke invariants:\n%s", res.Audit.Diff())
	}
	free, err := Run(DefaultRunConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions != free.Instructions {
		t.Fatalf("bounded stormy run retired %d instructions, free calm run %d",
			res.Instructions, free.Instructions)
	}
}

// TestRetryConvergence: with a poison rate the bounded retry budget
// comfortably covers, every poisoned completion must eventually
// deliver — zero failed requests, with the re-issues visible in both
// the result and the ledger.
func TestRetryConvergence(t *testing.T) {
	cfg := DefaultRunConfig()
	cfg.Audit = true
	cfg.HMC.Faults.CRCErrorRate = 0.3
	cfg.HMC.Faults.RetryLimit = 1
	cfg.HMC.Faults.Seed = 9
	cfg.Retry = memreq.RetryPolicy{MaxRetries: 8, Backoff: 16}
	res, err := Run(cfg, seqTrace(4, 64))
	if err != nil {
		t.Fatalf("retrying run: %v", err)
	}
	if res.Device.PoisonedResponses == 0 {
		t.Fatal("setup: no poisoned responses at CRC rate 0.3, retry limit 1")
	}
	if res.RetriedRequests == 0 {
		t.Fatal("poisoned completions were never re-issued")
	}
	if res.FailedRequests != 0 {
		t.Fatalf("%d requests failed despite an 8-deep retry budget", res.FailedRequests)
	}
	a := res.Audit
	if !a.Ok() {
		t.Fatalf("retries broke invariants:\n%s", a.Diff())
	}
	if a.Reissued == 0 || a.Delivered != a.Issued || a.Failed != 0 {
		t.Fatalf("ledger: %s", a)
	}
}

// TestRetryBudgetExhausts: under certain poison, a bounded budget must
// give up cleanly — every request fails as its one terminal outcome,
// after exactly MaxRetries re-issues each.
func TestRetryBudgetExhausts(t *testing.T) {
	cfg := DefaultRunConfig()
	cfg.Audit = true
	cfg.HMC.Faults.CRCErrorRate = 1.0
	cfg.HMC.Faults.RetryLimit = 1
	cfg.Retry = memreq.RetryPolicy{MaxRetries: 2, Backoff: 4}
	res, err := Run(cfg, seqTrace(2, 16))
	if err != nil {
		t.Fatalf("run under certain poison: %v", err)
	}
	if res.FailedRequests != res.MemRequests {
		t.Fatalf("FailedRequests = %d, want all %d", res.FailedRequests, res.MemRequests)
	}
	if res.RetriedRequests != 2*res.MemRequests {
		t.Fatalf("RetriedRequests = %d, want %d (2 per request)",
			res.RetriedRequests, 2*res.MemRequests)
	}
	a := res.Audit
	if !a.Ok() {
		t.Fatalf("exhausted retries broke invariants:\n%s", a.Diff())
	}
	if a.Failed != res.MemRequests || a.Delivered != 0 {
		t.Fatalf("ledger: %s", a)
	}
}

// TestRetryPolicyValidation: a negative policy is rejected before the
// run starts.
func TestRetryPolicyValidation(t *testing.T) {
	cfg := DefaultRunConfig()
	cfg.Retry = memreq.RetryPolicy{MaxRetries: -1}
	if _, err := Run(cfg, seqTrace(1, 1)); err == nil {
		t.Fatal("negative MaxRetries accepted")
	}
}

// TestInjectedDoubleDeliveryCaught: the test-only dupDeliver hook
// replays every delivered completion; the ledger must flag each replay
// as a duplicate-delivery with per-request diagnostics, while the
// pipeline itself survives (the LSQ ignores the stale retire).
func TestInjectedDoubleDeliveryCaught(t *testing.T) {
	cfg := DefaultRunConfig()
	dev, err := hmc.NewDevice(cfg.HMC)
	if err != nil {
		t.Fatal(err)
	}
	coal, err := cfg.NewCoalescer()
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNode(cfg.Node, coal, dev)
	if err != nil {
		t.Fatal(err)
	}
	n.EnableAudit()
	n.dupDeliver = true
	if err := n.Load(seqTrace(2, 16)); err != nil {
		t.Fatal(err)
	}
	res, err := n.Run()
	if err != nil {
		t.Fatalf("run with duplicate deliveries: %v", err)
	}
	a := res.Audit
	if a.Ok() {
		t.Fatal("injected double delivery went undetected")
	}
	dup := 0
	for _, v := range a.Violations {
		if v.Reason != "duplicate-delivery" {
			t.Fatalf("unexpected violation class %q:\n%s", v.Reason, v)
		}
		if v.Cycle == 0 || (v.ID == 0 && v.Thread == 0 && v.Tag == 0 && dup > 0) {
			t.Fatalf("diagnostic not tied to a request: %+v", v)
		}
		dup++
	}
	if dup == 0 {
		t.Fatalf("no duplicate-delivery violations:\n%s", a.Diff())
	}
}

// TestStallErrorCarriesAuditDiagnostics: when the watchdog fires on an
// audited run, the error must name the component holding each
// in-flight request and the oldest one.
func TestStallErrorCarriesAuditDiagnostics(t *testing.T) {
	cfg := DefaultRunConfig()
	cfg.Audit = true
	cfg.HMC.Faults.DropResponseEvery = 1
	cfg.Node.StallLimit = 2_000
	cfg.Node.MaxCycles = 10_000_000
	_, err := Run(cfg, seqTrace(2, 8))
	if err == nil {
		t.Fatal("run with every response dropped completed")
	}
	var stall *StallError
	if !errors.As(err, &stall) {
		t.Fatalf("error is %T, want *StallError: %v", err, err)
	}
	if stall.AuditInFlight == 0 {
		t.Fatalf("AuditInFlight = 0 with responses dropped: %+v", stall)
	}
	if !strings.Contains(stall.AuditOldest, "held-by=") {
		t.Fatalf("AuditOldest = %q lacks the holder", stall.AuditOldest)
	}
	for _, want := range []string{"audit: oldest in-flight request", "held-by="} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("diagnostic dump missing %q:\n%s", want, err)
		}
	}
}

// TestZeroChaosProfileIsNoOp: configuring the zero profile must not
// change a single measurement.
func TestZeroChaosProfileIsNoOp(t *testing.T) {
	tr := seqTrace(4, 32)
	base, err := Run(DefaultRunConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultRunConfig()
	cfg.Chaos = chaos.Profile{} // explicit zero
	got, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, got) {
		t.Fatal("zero chaos profile changed the simulation")
	}
}

// cubeChaosConfig is chaosRunConfig with the cube-internal vault
// fabric routed.
func cubeChaosConfig(t *testing.T, profile, cube string, seed uint64) RunConfig {
	t.Helper()
	cfg := chaosRunConfig(t, profile, seed)
	cc, err := hmc.ParseCubeConfig(cube)
	if err != nil {
		t.Fatalf("ParseCubeConfig(%q): %v", cube, err)
	}
	cfg.HMC.Cube = cc
	return cfg
}

// TestCubeChaosDeterministic: a routed cube fabric under the full
// storm plus the cubelink stressor replays bit-for-bit from one seed,
// actually stalls cube links, and holds every lifecycle invariant.
func TestCubeChaosDeterministic(t *testing.T) {
	tr := seqTrace(4, 64)
	const profile = "delay=0.01:16:32,reorder=0.1,fence=0.002:2,vault=0.002:24,cubelink=0.01:48"
	a, err := Run(cubeChaosConfig(t, profile, "ring", 5), tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cubeChaosConfig(t, profile, "ring", 5), tr)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same cube+chaos seed produced different results")
	}
	if a.Chaos == nil || a.Chaos.CubeLinkStalls == 0 {
		t.Fatalf("cubelink stressor injected nothing: %+v", a.Chaos)
	}
	if a.Cube == nil || a.Cube.Delivered == 0 {
		t.Fatalf("routed cube run missing fabric stats: %+v", a.Cube)
	}
	if !a.Audit.Ok() {
		t.Fatalf("cube chaos broke invariants:\n%s", a.Audit.Diff())
	}
}
