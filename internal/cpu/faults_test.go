package cpu

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"mac3d/internal/hmc"
)

// TestWatchdogFiresOnLostResponse: dropping every response starves the
// node; the watchdog must abort with a *StallError carrying a
// diagnostic dump instead of spinning to MaxCycles.
func TestWatchdogFiresOnLostResponse(t *testing.T) {
	cfg := DefaultRunConfig()
	cfg.HMC.Faults.DropResponseEvery = 1 // lose every response
	cfg.Node.StallLimit = 2_000
	cfg.Node.MaxCycles = 10_000_000
	_, err := Run(cfg, seqTrace(2, 8))
	if err == nil {
		t.Fatal("run with every response dropped completed")
	}
	var stall *StallError
	if !errors.As(err, &stall) {
		t.Fatalf("error is %T, want *StallError: %v", err, err)
	}
	if stall.StallLimit != 2_000 {
		t.Fatalf("StallLimit = %d, want 2000", stall.StallLimit)
	}
	if stall.OutstandingTx == 0 || stall.OldestTxAge == 0 {
		t.Fatalf("diagnostic missing outstanding state: %+v", stall)
	}
	for _, want := range []string{"oldest in-flight", "target buffer outstanding", "no forward progress"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("diagnostic dump missing %q:\n%s", want, err)
		}
	}
}

// TestPoisonedResponsesRetireWithError: with every packet failing CRC,
// every transaction poisons — but the run still completes, with the
// failures surfaced as counted errors rather than hangs or panics.
func TestPoisonedResponsesRetireWithError(t *testing.T) {
	cfg := DefaultRunConfig()
	cfg.HMC.Faults.CRCErrorRate = 1.0
	cfg.HMC.Faults.RetryLimit = 1
	res, err := Run(cfg, seqTrace(4, 32))
	if err != nil {
		t.Fatalf("run under certain CRC failure: %v", err)
	}
	if res.FailedRequests != res.MemRequests {
		t.Fatalf("FailedRequests = %d, want all %d requests", res.FailedRequests, res.MemRequests)
	}
	if res.Responses.Poisoned == 0 || res.Device.PoisonedResponses == 0 {
		t.Fatalf("poison counters empty: router=%+v device=%d",
			res.Responses, res.Device.PoisonedResponses)
	}
	if res.RetireUnderflows != 0 || res.Misrouted != 0 {
		t.Fatalf("malformed-delivery counters moved: %+v", res)
	}
}

// TestModerateFaultsCompleteDeterministically: a realistic fault mix
// drains cleanly and replays identically.
func TestModerateFaultsCompleteDeterministically(t *testing.T) {
	cfg := DefaultRunConfig()
	cfg.HMC.Faults = hmc.FaultConfig{
		CRCErrorRate: 0.05, LinkFailRate: 0.01,
		DisableLinkAfter: 50, LinkTokens: 16, Seed: 7,
	}
	tr := seqTrace(4, 64)
	a, err := Run(cfg, tr)
	if err != nil {
		t.Fatalf("faulty run: %v", err)
	}
	b, err := Run(cfg, tr)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("equal fault config and seed produced different results")
	}
	if a.Device.CRCErrors == 0 {
		t.Fatal("no CRC errors injected at rate 0.05 over 256 requests")
	}
}

// TestZeroFaultConfigMatchesSeedModel: enabling the Faults field with
// all-zero values must not change a single measurement.
func TestZeroFaultConfigMatchesSeedModel(t *testing.T) {
	tr := seqTrace(4, 64)
	base, err := Run(DefaultRunConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultRunConfig()
	cfg.HMC.Faults = hmc.FaultConfig{} // explicit zero
	got, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, got) {
		t.Fatal("zero FaultConfig changed the simulation")
	}
}

// TestTargetBufferBackpressure: a one-entry target buffer serializes
// transactions but the run must still drain, with rejects counted.
func TestTargetBufferBackpressure(t *testing.T) {
	cfg := DefaultRunConfig()
	cfg.Node.TargetBufferDepth = 1
	res, err := Run(cfg, seqTrace(2, 32))
	if err != nil {
		t.Fatalf("run with TargetBufferDepth=1: %v", err)
	}
	if res.Responses.RegisterRejects == 0 {
		t.Fatal("one-entry target buffer never backpressured")
	}
	if res.Responses.Delivered == 0 {
		t.Fatal("no responses delivered")
	}
	// Unbounded run over the same trace retires the same work.
	free, err := Run(DefaultRunConfig(), seqTrace(2, 32))
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions != free.Instructions {
		t.Fatalf("bounded run retired %d instructions, unbounded %d",
			res.Instructions, free.Instructions)
	}
}

// TestWatchdogDisabled: StallLimit 0 turns the watchdog off; a starved
// run then hits the MaxCycles guard instead.
func TestWatchdogDisabled(t *testing.T) {
	cfg := DefaultRunConfig()
	cfg.HMC.Faults.DropResponseEvery = 1
	cfg.Node.StallLimit = 0
	cfg.Node.MaxCycles = 20_000
	_, err := Run(cfg, seqTrace(1, 4))
	if err == nil {
		t.Fatal("starved run completed")
	}
	var stall *StallError
	if errors.As(err, &stall) {
		t.Fatalf("disabled watchdog still fired: %v", err)
	}
	if !strings.Contains(err.Error(), "MaxCycles") {
		t.Fatalf("expected the MaxCycles guard, got: %v", err)
	}
}
