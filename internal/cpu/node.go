// Package cpu models the cache-less multicore node of the paper's §3
// architecture: simple in-order cores with per-core scratchpad memory
// (SPM), a bounded load/store queue per core for spatial latency
// tolerance, the request/response routers, a pluggable coalescer (MAC,
// or a baseline), and the attached HMC device.
//
// The node replays pre-generated per-thread memory traces. Each cycle
// a core either executes non-memory instructions (the trace's gap
// counts), retires an SPM access locally, or issues a memory request
// into the request router, stalling when its load/store queue is full.
package cpu

import (
	"fmt"

	"mac3d/internal/addr"
	"mac3d/internal/audit"
	"mac3d/internal/chaos"
	"mac3d/internal/core"
	"mac3d/internal/hmc"
	"mac3d/internal/memreq"
	"mac3d/internal/noc"
	"mac3d/internal/obs"
	"mac3d/internal/sim"
	"mac3d/internal/stats"
	"mac3d/internal/trace"
)

// Config parameterizes the node.
type Config struct {
	// Cores is the number of in-order cores (Table 1: 8).
	Cores int
	// SPMLatency is the scratchpad access latency in cycles
	// (Table 1: 1ns ≈ 3–4 cycles at 3.3 GHz).
	SPMLatency sim.Cycle
	// MaxOutstanding bounds in-flight memory requests per core (the
	// load/store queue depth of §3.3).
	MaxOutstanding int
	// Router sizes the request router queues.
	Router core.RouterConfig
	// TargetBufferDepth bounds the response router's target buffer
	// (outstanding built transactions); 0 means unbounded, matching
	// the paper's evaluation. When bounded, a full buffer
	// backpressures the coalescer: built transactions wait in a
	// holding slot until an entry frees.
	TargetBufferDepth int
	// StallLimit is the simulation watchdog: a run making no forward
	// progress (no retirement, submission, or delivery) for this many
	// cycles aborts with a *StallError diagnostic instead of spinning
	// until MaxCycles. 0 disables the watchdog.
	StallLimit sim.Cycle
	// MaxCycles aborts a run that fails to drain (simulator guard).
	MaxCycles sim.Cycle
}

// DefaultConfig returns the Table 1 node configuration.
//
// MaxOutstanding defaults high (256) because the paper's evaluation is
// offered-load driven: Figure 9 reports an average of 9.32 raw
// requests per cycle entering the MAC — far above its 0.5/cycle
// service rate — which is only possible when issue is decoupled from
// completion. A small LSQ throttles the offered load so far that the
// ARQ never holds two mergeable requests (see the LSQ-depth ablation
// bench). Set a small value to model strict stall-on-use cores.
func DefaultConfig() Config {
	return Config{
		Cores:          8,
		SPMLatency:     4,
		MaxOutstanding: 256,
		Router:         core.DefaultRouterConfig(),
		StallLimit:     1_000_000,
		MaxCycles:      2_000_000_000,
	}
}

// Validate reports the first configuration error, or nil.
func (c Config) Validate() error {
	switch {
	case c.Cores <= 0:
		return fmt.Errorf("cpu: Cores must be positive, got %d", c.Cores)
	case c.MaxOutstanding <= 0:
		return fmt.Errorf("cpu: MaxOutstanding must be positive, got %d", c.MaxOutstanding)
	case c.TargetBufferDepth < 0:
		return fmt.Errorf("cpu: TargetBufferDepth must be non-negative, got %d", c.TargetBufferDepth)
	case c.MaxCycles == 0:
		return fmt.Errorf("cpu: MaxCycles must be positive")
	}
	return c.Router.Validate()
}

// threadState replays one hardware thread's event stream.
type threadState struct {
	events []trace.Event
	pc     int
	// gapLeft counts remaining non-memory instruction cycles before
	// the next event may issue.
	gapLeft uint32
	// outstanding tracks in-flight (unretired) memory requests.
	outstanding int
	// nextTag generates per-thread transaction tags.
	nextTag uint16
	// spmBusy holds the completion cycle of an SPM access in
	// progress.
	spmBusy sim.Cycle
	// retired counts instructions completed (memory + gaps).
	retired uint64
	// Stall taxonomy: cycles lost per cause.
	stallLSQ    uint64 // load/store queue full
	stallRouter uint64 // request router queue full
	stallFence  uint64 // fence waiting for own outstanding requests
	// latency accumulates per-request issue-to-retire latency.
	latency stats.Histogram
	// issuedAt maps an in-flight tag to its issue cycle.
	issuedAt map[uint16]sim.Cycle
}

func (t *threadState) done() bool {
	return t.pc >= len(t.events) && t.outstanding == 0 && t.gapLeft == 0
}

// Result summarizes a completed node run.
type Result struct {
	// Cycles is the makespan: the cycle at which every thread had
	// retired all its work.
	Cycles sim.Cycle
	// Instructions is the total retired instruction count.
	Instructions uint64
	// MemRequests is the number of raw requests issued to the
	// memory path (SPM hits excluded).
	MemRequests uint64
	// SPMAccesses is the number of scratchpad hits.
	SPMAccesses uint64
	// IssueStalls counts cycles threads spent unable to issue,
	// broken down by cause in the three fields below.
	IssueStalls uint64
	// StallLSQ is cycles stalled on a full load/store queue.
	StallLSQ uint64
	// StallRouter is cycles stalled on router backpressure.
	StallRouter uint64
	// StallFence is cycles a fence waited for the thread's own
	// outstanding requests before issuing.
	StallFence uint64
	// RequestLatency is the issue-to-retire distribution of memory
	// requests, in cycles.
	RequestLatency stats.Histogram
	// Coalescer is the coalescing statistics snapshot.
	Coalescer memreq.Stats
	// Device is the HMC statistics snapshot.
	Device hmc.Stats
	// Responses is the response router's outcome counts (duplicates,
	// unknown tags, poisoned deliveries, target-buffer rejects).
	Responses core.ResponseRouterStats
	// FailedRequests counts raw requests retired with an error
	// status because their transaction's response was poisoned
	// (link-retry budget exhausted under fault injection).
	FailedRequests uint64
	// RetriedRequests counts poisoned completions re-issued under the
	// node's RetryPolicy (each counts once per re-issue).
	RetriedRequests uint64
	// RetireUnderflows and Misrouted count malformed response
	// deliveries survived (instead of panicking): a retire for a
	// thread with nothing outstanding, and a target naming a thread
	// the node does not run.
	RetireUnderflows uint64
	Misrouted        uint64
	// Audit is the end-of-run lifecycle-conservation report; nil
	// unless auditing was enabled via Node.EnableAudit.
	Audit *audit.Report
	// Chaos is the injected-adversity summary; nil unless a chaos
	// engine was attached via Node.SetChaos.
	Chaos *chaos.Stats
	// Cube is the intra-cube fabric's interconnect statistics; nil
	// unless the device runs a routed cube topology.
	Cube *noc.Stats
	// ARQOccupancy is the mean ARQ occupancy (MAC runs only).
	ARQOccupancy float64
	// RouterLocal/Global/Remote are the routing counts.
	RouterLocal, RouterGlobal, RouterRemote uint64
}

// IPC returns retired instructions per cycle across the node.
func (r *Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// RPI returns memory requests per instruction.
func (r *Result) RPI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.MemRequests) / float64(r.Instructions)
}

// MemAccessRate returns the fraction of memory operations that reach
// the MAC (i.e. miss the SPM) — Eq. 2's mem_access_rate.
func (r *Result) MemAccessRate() float64 {
	total := r.MemRequests + r.SPMAccesses
	if total == 0 {
		return 0
	}
	return float64(r.MemRequests) / float64(total)
}

// RPC returns raw requests per cycle offered to the MAC (Eq. 2).
func (r *Result) RPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.MemRequests) / float64(r.Cycles)
}

// Node wires threads, router, coalescer and device together.
type Node struct {
	cfg    Config
	router *core.Router
	coal   memreq.Coalescer
	// mac is coal when the run uses the MAC, else nil — for
	// occupancy sampling on cycles where the coalescer is not ticked.
	mac *core.MAC
	dev *hmc.Device

	threads []*threadState
	// issueRR rotates issue priority across cores for fairness.
	issueRR int

	// resp owns the target buffer mapping device tags to built
	// transactions and classifies every delivery.
	resp *core.ResponseRouter
	// deferred holds built transactions refused by a full target
	// buffer, resubmitted in order once entries free up.
	deferred []memreq.Built

	// obs is the run's observability handle; nil when disabled, and
	// every use is nil-safe so the hot path pays only pointer checks.
	obs *obs.Obs

	// watchdog aborts a run that stops making forward progress.
	watchdog *sim.Watchdog
	// progress counts retirements + submissions + deliveries; any
	// movement re-arms the watchdog.
	progress uint64

	// audit is the request-lifecycle ledger; nil when disabled, and
	// every call is nil-safe like the obs handle.
	audit *audit.Ledger
	// chaos is the deterministic chaos engine; nil when disabled.
	chaos *chaos.Engine
	// retry is the requester-side poison-recovery policy; the zero
	// value keeps the fail-on-poison behaviour.
	retry memreq.RetryPolicy
	// inflightReq remembers the raw request behind each in-flight
	// (thread, tag) so a poisoned completion can be re-issued;
	// populated only while retry is enabled.
	inflightReq map[reqKey]*reqAttempt
	// retryPend holds re-issues waiting out their backoff.
	retryPend []retryPend
	// dupDeliver is a test-only fault hook: every delivered response
	// replays its audit-visible target retirement a second time, the
	// double-delivery bug the ledger must catch.
	dupDeliver bool

	spmAccesses      uint64
	memRequests      uint64
	failedRequests   uint64
	retriedRequests  uint64
	retireUnderflows uint64
	misrouted        uint64
}

// reqKey identifies one in-flight raw request.
type reqKey struct {
	thread, tag uint16
}

// reqAttempt tracks the retry budget spent on one raw request.
type reqAttempt struct {
	req      memreq.RawRequest
	attempts int
}

// retryPend is one poisoned request waiting out its re-issue backoff.
type retryPend struct {
	due sim.Cycle
	req memreq.RawRequest
}

// NewNode builds a node around a coalescer and device, returning a
// wrapped configuration error. The coalescer and device must be
// freshly constructed or Reset.
func NewNode(cfg Config, coal memreq.Coalescer, dev *hmc.Device) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("cpu: invalid node config: %w", err)
	}
	router, err := core.NewRouter(cfg.Router)
	if err != nil {
		return nil, fmt.Errorf("cpu: %w", err)
	}
	mac, _ := coal.(*core.MAC)
	return &Node{
		cfg:      cfg,
		router:   router,
		coal:     coal,
		mac:      mac,
		dev:      dev,
		resp:     core.NewResponseRouter(cfg.TargetBufferDepth),
		watchdog: sim.NewWatchdog(cfg.StallLimit),
	}, nil
}

// MustNewNode is NewNode panicking on error, for tests and static
// fixtures.
func MustNewNode(cfg Config, coal memreq.Coalescer, dev *hmc.Device) *Node {
	n, err := NewNode(cfg, coal, dev)
	if err != nil {
		panic(err)
	}
	return n
}

// EnableAudit attaches a fresh request-lifecycle ledger. Call before
// Run; the end-of-run conservation report lands in Result.Audit.
func (n *Node) EnableAudit() {
	n.audit = audit.NewLedger()
	n.router.OnDrain = func(req memreq.RawRequest, now sim.Cycle) {
		n.audit.Drain(req, now)
	}
}

// SetChaos attaches a chaos engine (nil disables). Call before Run.
func (n *Node) SetChaos(e *chaos.Engine) { n.chaos = e }

// SetRetry installs the requester-side poison-recovery policy. Call
// before Run; the zero policy keeps fail-on-poison behaviour.
func (n *Node) SetRetry(p memreq.RetryPolicy) {
	n.retry = p
	if p.Enabled() && n.inflightReq == nil {
		n.inflightReq = make(map[reqKey]*reqAttempt)
	}
}

// AttachObs wires the node and every component beneath it (coalescer,
// device) into a run's observability layer. Call once before Run; a
// nil handle leaves everything a no-op.
func (n *Node) AttachObs(o *obs.Obs) {
	n.obs = o
	if !o.Enabled() {
		return
	}
	if a, ok := n.coal.(obs.Attacher); ok {
		a.AttachObs(o)
	}
	n.dev.AttachObs(o)

	reg := o.Reg()
	reg.Func("node.mem_requests", func() float64 { return float64(n.memRequests) })
	reg.Func("node.spm_accesses", func() float64 { return float64(n.spmAccesses) })
	reg.Func("node.failed_requests", func() float64 { return float64(n.failedRequests) })

	rec := o.Rec()
	rec.Watch("node.lsq.outstanding", func() float64 {
		total := 0
		for _, t := range n.threads {
			total += t.outstanding
		}
		return float64(total)
	})
	rec.Watch("node.inflight_tx", func() float64 { return float64(n.resp.Pending()) })
	rec.Watch("node.deferred_tx", func() float64 { return float64(len(n.deferred)) })
	rec.Watch("node.router.pending", func() float64 { return float64(n.router.Pending()) })
}

// Load installs the trace to replay. Threads beyond the core count are
// rejected: the architecture runs one thread per core (§3).
func (n *Node) Load(tr *trace.Trace) error {
	active := 0
	for _, th := range tr.Threads {
		if len(th) > 0 {
			active++
		}
	}
	if active > n.cfg.Cores {
		return fmt.Errorf("cpu: trace has %d active threads for %d cores", active, n.cfg.Cores)
	}
	n.threads = n.threads[:0]
	for _, th := range tr.Threads {
		ts := &threadState{events: th, issuedAt: make(map[uint16]sim.Cycle)}
		if len(th) > 0 {
			ts.gapLeft = uint32(th[0].Gap)
		}
		n.threads = append(n.threads, ts)
	}
	return nil
}

// Run replays the loaded trace to completion and returns the results.
// A run that stops making forward progress for Config.StallLimit
// cycles aborts with a *StallError carrying a diagnostic dump.
func (n *Node) Run() (*Result, error) {
	for now := sim.Cycle(0); now < n.cfg.MaxCycles; now++ {
		n.tickChaos(now)
		n.pumpRetries(now)
		n.tickCores(now)
		n.drainRouter(now)
		n.tickCoalescer(now)
		n.deliverResponses(now)
		n.obs.Rec().Sample(uint64(now))
		if n.drained() {
			return n.result(now + 1), nil
		}
		if n.watchdog.Check(now, n.progress) {
			return nil, n.stallError(now)
		}
	}
	return nil, fmt.Errorf("cpu: run exceeded MaxCycles=%d (deadlock?)", n.cfg.MaxCycles)
}

// tickChaos rolls the chaos engine for this cycle and applies the
// stressors that act on the request/device side: transient vault
// unavailability and synthetic fence bursts. (Response-side stressors
// act through chaos.Filter in deliverResponses; submit freezes through
// SubmitFrozen in tickCoalescer.) A fence that meets a full router
// queue is dropped — the backpressure it found is already stress.
func (n *Node) tickChaos(now sim.Cycle) {
	if n.chaos == nil {
		return
	}
	n.chaos.Tick(now)
	if v, until, ok := n.chaos.TakeVaultStall(); ok {
		n.dev.StallVault(v, until)
	}
	if l, until, ok := n.chaos.TakeCubeLinkStall(); ok {
		n.dev.StallCubeLink(l, until)
	}
	for n.chaos.TakeFence() {
		if !n.router.OfferLocal(memreq.RawRequest{Fence: true}) {
			break
		}
	}
}

// pumpRetries re-offers poisoned requests whose backoff expired. The
// router may refuse (queue full); the request then retries next cycle.
func (n *Node) pumpRetries(now sim.Cycle) {
	if len(n.retryPend) == 0 {
		return
	}
	keep := n.retryPend[:0]
	for _, p := range n.retryPend {
		if p.due > now || !n.router.OfferLocal(p.req) {
			keep = append(keep, p)
			continue
		}
		n.retriedRequests++
		n.progress++
		n.audit.Reissue(p.req, now)
	}
	n.retryPend = keep
}

// tickCores advances every thread by one cycle.
func (n *Node) tickCores(now sim.Cycle) {
	for i := range n.threads {
		t := n.threads[(i+n.issueRR)%len(n.threads)]
		n.tickThread(t, now)
	}
	if len(n.threads) > 0 {
		n.issueRR = (n.issueRR + 1) % len(n.threads)
	}
}

func (n *Node) tickThread(t *threadState, now sim.Cycle) {
	// Finish an SPM access in flight.
	if t.spmBusy != 0 {
		if now < t.spmBusy {
			return
		}
		t.spmBusy = 0
	}
	// Execute non-memory instructions one per cycle.
	if t.gapLeft > 0 {
		t.gapLeft--
		t.retired++
		n.progress++
		return
	}
	if t.pc >= len(t.events) {
		return
	}
	e := t.events[t.pc]

	// Scratchpad hits retire locally without touching the MAC.
	if e.Op.IsMemory() && addr.IsSPM(e.Addr) {
		t.spmBusy = now + n.cfg.SPMLatency
		t.retired++
		n.progress++
		n.spmAccesses++
		n.advance(t)
		return
	}

	if e.Op == trace.Fence {
		// A fence issues once its thread's own requests retire
		// (program order), then flows through the MAC to order the
		// global stream.
		if t.outstanding > 0 {
			t.stallFence++
			return
		}
		if !n.router.OfferLocal(memreq.RawRequest{Fence: true, Thread: e.Thread}) {
			t.stallRouter++
			return
		}
		t.retired++
		n.progress++
		n.advance(t)
		return
	}

	// Memory request: needs an LSQ slot and router space.
	if t.outstanding >= n.cfg.MaxOutstanding {
		t.stallLSQ++
		return
	}
	tag := t.nextTag
	req := memreq.RawRequest{
		Addr:   e.Addr,
		Size:   e.Size,
		Store:  e.Op == trace.Store,
		Atomic: e.Op == trace.Atomic,
		Thread: e.Thread,
		Tag:    tag,
	}
	if !n.router.OfferLocal(req) {
		t.stallRouter++
		return
	}
	t.nextTag++
	t.outstanding++
	t.issuedAt[tag] = now
	t.retired++
	n.progress++
	n.memRequests++
	n.audit.Issue(req, now)
	if n.retry.Enabled() {
		n.inflightReq[reqKey{req.Thread, req.Tag}] = &reqAttempt{req: req}
	}
	n.advance(t)
}

// advance moves a thread to its next event, loading its gap count.
func (n *Node) advance(t *threadState) {
	t.pc++
	if t.pc < len(t.events) {
		t.gapLeft = uint32(t.events[t.pc].Gap)
	}
}

// drainRouter feeds the coalescer (one raw request per cycle, §4.1).
func (n *Node) drainRouter(now sim.Cycle) {
	n.router.DrainToMAC(n.coal, now)
}

// tickCoalescer advances the coalescer and submits built transactions.
// While the device's in-flight tag space is exhausted, the coalescer is
// not ticked at all: the host interface backpressures, pops stall, and
// ARQ entries dwell — the feedback that raises coalescing opportunity
// exactly when the memory device is the bottleneck.
func (n *Node) tickCoalescer(now sim.Cycle) {
	if n.chaos.SubmitFrozen(now) {
		// Chaos-injected ARQ backpressure burst: the submit stage is
		// frozen, transactions back up inside the coalescer.
		n.sampleCoalescer()
		return
	}
	if len(n.deferred) > 0 {
		n.submitDeferred(now)
		if len(n.deferred) > 0 {
			// Still blocked on the target buffer: don't pull more
			// transactions out of the coalescer, or ordering breaks.
			n.sampleCoalescer()
			return
		}
	}
	if !n.dev.CanAccept() {
		n.sampleCoalescer()
		return
	}
	for _, b := range n.coal.Tick(now) {
		bb := b
		tag, ok := n.resp.Register(&bb, now)
		if !ok {
			n.deferred = append(n.deferred, bb)
			continue
		}
		n.bindTargets(&bb, tag, now)
		bb.Span.MarkSubmit(uint64(now))
		n.dev.Submit(bb.Req, now)
		n.progress++
	}
}

// bindTargets records in the ledger which device transaction carries
// each raw request.
func (n *Node) bindTargets(b *memreq.Built, tag uint64, now sim.Cycle) {
	if n.audit == nil {
		return
	}
	for _, tgt := range b.Targets {
		if tgt.Cont {
			continue // the head half owns the lifecycle record
		}
		n.audit.Bind(tgt, tag, now)
	}
}

// sampleCoalescer records the MAC's ARQ occupancy on cycles where
// backpressure keeps Tick (and its own sampling) from running, so the
// occupancy mean covers every cycle — including the dwell phases where
// coalescing opportunity is highest.
func (n *Node) sampleCoalescer() {
	if n.mac != nil {
		n.mac.SampleOccupancy()
	}
}

// submitDeferred retries transactions previously refused by a full
// target buffer, in their original order.
func (n *Node) submitDeferred(now sim.Cycle) {
	for len(n.deferred) > 0 && n.dev.CanAccept() {
		bb := n.deferred[0]
		tag, ok := n.resp.Register(&bb, now)
		if !ok {
			return
		}
		n.bindTargets(&bb, tag, now)
		bb.Span.MarkSubmit(uint64(now))
		n.dev.Submit(bb.Req, now)
		n.progress++
		n.deferred = n.deferred[1:]
	}
}

// deliverResponses routes completed device responses back to threads —
// the response router of §3.3. Malformed deliveries (duplicates,
// unknown tags, targets naming absent threads, retire underflows) are
// counted and survived rather than panicking: under fault injection
// they are expected events, and a simulator that dies on them cannot
// report what went wrong.
func (n *Node) deliverResponses(now sim.Cycle) {
	for _, resp := range n.chaos.Filter(now, n.dev.Tick(now)) {
		b, status := n.resp.Deliver(resp)
		switch status {
		case core.RespDuplicate, core.RespUnknown:
			continue // counted by the response router; nothing to retire
		}
		// Notify the coalescer first: MSHR-style designs fold
		// late-merged targets into b.Targets here. Poisoned
		// transactions complete too — their targets retire with an
		// error status, and fences must not wait on them forever.
		n.coal.Completed(b)
		n.progress++
		b.Span.MarkRespond(uint64(now))
		n.obs.Trace().Transaction(resp.Tag, b.Span)
		poisoned := status == core.RespPoisoned
		for _, tgt := range b.Targets {
			if tgt.Cont {
				// Continuation half of a window-split request: its
				// data is delivered, but the head half owns the
				// request's one LSQ slot and latency observation. A
				// poisoned continuation is degraded data loss — the
				// head's transaction is independently live, so the
				// request cannot be re-issued without risking a
				// double delivery; the ledger waives its bytes.
				if poisoned {
					n.audit.Forgive(tgt, now)
				} else {
					n.audit.Credit(tgt, b.Req.Addr, b.Req.Data, now)
				}
				continue
			}
			if int(tgt.Thread) >= len(n.threads) {
				n.misrouted++
				continue
			}
			if poisoned && n.scheduleRetry(tgt, now) {
				// The LSQ slot stays occupied and issuedAt keeps the
				// original issue cycle: the request's latency spans
				// its retries, and fences keep waiting for it.
				continue
			}
			t := n.threads[tgt.Thread]
			if t.outstanding <= 0 {
				n.retireUnderflows++
				continue
			}
			t.outstanding--
			if poisoned {
				n.failedRequests++
				n.audit.Fail(tgt, now)
			} else {
				n.audit.Credit(tgt, b.Req.Addr, b.Req.Data, now)
				n.audit.Retire(tgt, now)
			}
			if n.retry.Enabled() {
				delete(n.inflightReq, reqKey{tgt.Thread, tgt.Tag})
			}
			if issue, ok := t.issuedAt[tgt.Tag]; ok {
				t.latency.Observe(uint64(now - issue))
				delete(t.issuedAt, tgt.Tag)
			}
		}
		if n.dupDeliver && !poisoned {
			// Test-only injected bug: replay the audit-visible
			// retirement, the double delivery the ledger must catch.
			for _, tgt := range b.Targets {
				if tgt.Cont {
					continue
				}
				n.audit.Credit(tgt, b.Req.Addr, b.Req.Data, now)
				n.audit.Retire(tgt, now)
			}
		}
	}
}

// scheduleRetry queues a poisoned request for re-issue if the retry
// policy has budget left. It reports whether the retirement should be
// suppressed (the request lives on).
func (n *Node) scheduleRetry(tgt memreq.Target, now sim.Cycle) bool {
	if !n.retry.Enabled() {
		return false
	}
	a, ok := n.inflightReq[reqKey{tgt.Thread, tgt.Tag}]
	if !ok || a.attempts >= n.retry.MaxRetries {
		return false
	}
	a.attempts++
	n.retryPend = append(n.retryPend, retryPend{due: now + n.retry.Backoff, req: a.req})
	n.audit.Retry(tgt, now)
	return true
}

// drained reports whether all work has retired.
func (n *Node) drained() bool {
	if n.router.Pending() > 0 || n.coal.Pending() > 0 || n.coal.Inflight() > 0 ||
		n.dev.Pending() > 0 || len(n.deferred) > 0 ||
		n.chaos.HeldResponses() > 0 || len(n.retryPend) > 0 {
		return false
	}
	for _, t := range n.threads {
		if !t.done() {
			return false
		}
	}
	return true
}

func (n *Node) result(cycles sim.Cycle) *Result {
	r := &Result{
		Cycles:           cycles,
		MemRequests:      n.memRequests,
		SPMAccesses:      n.spmAccesses,
		Coalescer:        *n.coal.Stats(),
		Device:           *n.dev.Stats(),
		Responses:        n.resp.Stats(),
		FailedRequests:   n.failedRequests,
		RetriedRequests:  n.retriedRequests,
		RetireUnderflows: n.retireUnderflows,
		Misrouted:        n.misrouted,
	}
	if n.audit.Enabled() {
		r.Audit = n.audit.Finish(cycles)
	}
	r.Chaos = n.chaos.Stats()
	if st := n.dev.CubeStats(); st != nil {
		snap := *st
		r.Cube = &snap
	}
	for _, t := range n.threads {
		r.Instructions += t.retired
		r.IssueStalls += t.stallLSQ + t.stallRouter + t.stallFence
		r.StallLSQ += t.stallLSQ
		r.StallRouter += t.stallRouter
		r.StallFence += t.stallFence
		r.RequestLatency.Merge(&t.latency)
	}
	if mac, ok := n.coal.(*core.MAC); ok {
		r.ARQOccupancy = mac.Aggregator().OccupancyMean()
	}
	r.RouterLocal, r.RouterGlobal, r.RouterRemote = n.router.Stats()
	return r
}

// StallError reports a simulation that stopped making forward
// progress: no instruction retired, no transaction submitted, and no
// response delivered for more than the watchdog's stall limit —
// typically a lost response or a resource leak. It carries the state
// a post-mortem needs instead of letting the run spin to MaxCycles.
type StallError struct {
	// Cycle is when the watchdog fired.
	Cycle sim.Cycle
	// StallLimit is the configured no-progress bound.
	StallLimit sim.Cycle
	// OldestTxTag/OldestTxAge identify the longest-outstanding
	// transaction in the response router's target buffer (the prime
	// suspect for a lost response); OldestTxAge is 0 when the target
	// buffer is empty.
	OldestTxTag uint64
	OldestTxAge sim.Cycle
	// OldestTxAddr is that transaction's physical address.
	OldestTxAddr uint64
	// OutstandingTx and DeferredTx are target-buffer occupancy and
	// the holding-slot depth.
	OutstandingTx int
	DeferredTx    int
	// RouterPending, CoalescerPending, CoalescerInflight and
	// DevicePending are the queue/ARQ occupancies at the stall.
	RouterPending     int
	CoalescerPending  int
	CoalescerInflight int
	DevicePending     int
	// ThreadsBlocked counts threads with unretired work.
	ThreadsBlocked int
	// AuditInFlight is the ledger's count of requests without a
	// terminal outcome at the stall (0 when auditing is disabled).
	AuditInFlight int
	// AuditOldest is the ledger's oldest in-flight request rendered
	// with its holding component ("" when auditing is disabled or
	// nothing is in flight) — the causal diagnostic for the stall.
	AuditOldest string
	// Dump is the rendered diagnostic.
	Dump string
}

// Error formats the stall with its diagnostic dump.
func (e *StallError) Error() string {
	return fmt.Sprintf("cpu: no forward progress for %d cycles at cycle %d (lost response or resource leak?)\n%s",
		e.StallLimit, e.Cycle, e.Dump)
}

// stallError snapshots the node state into a *StallError.
func (n *Node) stallError(now sim.Cycle) error {
	e := &StallError{
		Cycle:             now,
		StallLimit:        n.cfg.StallLimit,
		OutstandingTx:     n.resp.Pending(),
		DeferredTx:        len(n.deferred),
		RouterPending:     n.router.Pending(),
		CoalescerPending:  n.coal.Pending(),
		CoalescerInflight: n.coal.Inflight(),
		DevicePending:     n.dev.Pending(),
	}
	for _, t := range n.threads {
		if !t.done() {
			e.ThreadsBlocked++
		}
	}
	kvs := []stats.KV{
		{Key: "threads blocked", Value: e.ThreadsBlocked},
		{Key: "request router pending", Value: e.RouterPending},
		{Key: "coalescer pending (ARQ)", Value: e.CoalescerPending},
		{Key: "coalescer inflight", Value: e.CoalescerInflight},
		{Key: "device pending", Value: e.DevicePending},
		{Key: "target buffer outstanding", Value: e.OutstandingTx},
		{Key: "deferred transactions", Value: e.DeferredTx},
	}
	if tag, registered, b, ok := n.resp.Oldest(); ok {
		e.OldestTxTag = tag
		e.OldestTxAge = now - registered
		e.OldestTxAddr = b.Req.Addr
		kvs = append(kvs,
			stats.KV{Key: "oldest in-flight tag", Value: tag},
			stats.KV{Key: "oldest in-flight age", Value: fmt.Sprintf("%d cycles", e.OldestTxAge)},
			stats.KV{Key: "oldest in-flight request", Value: fmt.Sprintf("%s 0x%x (%dB, %d targets)",
				b.Req.Kind, b.Req.Addr, b.Req.Data, len(b.Targets))},
		)
	}
	ds := n.dev.Stats()
	if ds.DroppedResponses > 0 || ds.PoisonedResponses > 0 || ds.TokenStalls > 0 {
		kvs = append(kvs,
			stats.KV{Key: "device dropped responses", Value: ds.DroppedResponses},
			stats.KV{Key: "device poisoned responses", Value: ds.PoisonedResponses},
			stats.KV{Key: "device token stalls", Value: ds.TokenStalls},
		)
	}
	if n.audit.Enabled() {
		e.AuditInFlight = n.audit.InFlight()
		counts := n.audit.HolderCounts()
		for _, s := range []audit.State{
			audit.StateRouted, audit.StateCoalescing,
			audit.StateInflight, audit.StateAwaitRetry,
		} {
			if counts[s] > 0 {
				kvs = append(kvs, stats.KV{
					Key:   fmt.Sprintf("audit: requests held by %s", s),
					Value: counts[s],
				})
			}
		}
		if o, ok := n.audit.Oldest(); ok {
			e.AuditOldest = o.String()
			kvs = append(kvs, stats.KV{Key: "audit: oldest in-flight request", Value: e.AuditOldest})
		}
	}
	if cs := n.chaos.Stats(); cs != nil {
		kvs = append(kvs, stats.KV{Key: "chaos", Value: cs.String()})
	}
	e.Dump = stats.FormatKV(kvs)
	return e
}
