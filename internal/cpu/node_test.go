package cpu

import (
	"testing"

	"mac3d/internal/addr"
	"mac3d/internal/trace"
)

// mkTrace builds a trace from events, assigning per-thread order.
func mkTrace(events ...trace.Event) *trace.Trace {
	tr := trace.NewTrace(0)
	for _, e := range events {
		tr.Append(e)
	}
	return tr
}

// seqTrace generates threads x n sequential 8B loads over disjoint
// regions.
func seqTrace(threads, n int) *trace.Trace {
	tr := trace.NewTrace(threads)
	for t := 0; t < threads; t++ {
		base := uint64(t) << 20
		for i := 0; i < n; i++ {
			tr.Append(trace.Event{
				Addr: base + uint64(i)*8, Thread: uint16(t),
				Op: trace.Load, Size: 8, Gap: 1,
			})
		}
	}
	return tr
}

func TestRunEmptyTrace(t *testing.T) {
	res, err := Run(DefaultRunConfig(), trace.NewTrace(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.MemRequests != 0 || res.Instructions != 0 {
		t.Fatalf("empty trace produced work: %+v", res)
	}
}

func TestRunSingleLoad(t *testing.T) {
	tr := mkTrace(trace.Event{Addr: 0x1000, Op: trace.Load, Size: 8})
	res, err := Run(DefaultRunConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.MemRequests != 1 {
		t.Fatalf("mem requests = %d", res.MemRequests)
	}
	if res.Device.Requests != 1 {
		t.Fatalf("device requests = %d", res.Device.Requests)
	}
	if res.RequestLatency.Count() != 1 {
		t.Fatal("latency not recorded")
	}
	// Latency must be at least the unloaded device latency.
	if res.RequestLatency.Min() < 100 {
		t.Fatalf("suspiciously low latency %d", res.RequestLatency.Min())
	}
}

func TestSPMAccessesNeverReachDevice(t *testing.T) {
	tr := mkTrace(
		trace.Event{Addr: addr.SPMWindow(0) + 64, Op: trace.Load, Size: 8},
		trace.Event{Addr: addr.SPMWindow(0) + 128, Op: trace.Store, Size: 8},
		trace.Event{Addr: 0x2000, Op: trace.Load, Size: 8},
	)
	res, err := Run(DefaultRunConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.SPMAccesses != 2 {
		t.Fatalf("SPM accesses = %d, want 2", res.SPMAccesses)
	}
	if res.MemRequests != 1 || res.Device.Requests != 1 {
		t.Fatalf("device saw %d requests, want 1", res.Device.Requests)
	}
	if res.MemAccessRate() != 1.0/3.0 {
		t.Fatalf("mem access rate = %v", res.MemAccessRate())
	}
}

func TestLSQBoundsOutstanding(t *testing.T) {
	cfg := DefaultRunConfig()
	cfg.Node.MaxOutstanding = 1
	tr := seqTrace(1, 50)
	res, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	// With one outstanding slot, the thread must stall heavily.
	if res.IssueStalls == 0 {
		t.Fatal("no stalls with MaxOutstanding=1")
	}
	cfg2 := DefaultRunConfig()
	cfg2.Node.MaxOutstanding = 16
	res2, err := Run(cfg2, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Cycles >= res.Cycles {
		t.Fatalf("deeper LSQ no faster: %d vs %d", res2.Cycles, res.Cycles)
	}
}

func TestTooManyThreadsRejected(t *testing.T) {
	cfg := DefaultRunConfig()
	cfg.Node.Cores = 2
	tr := seqTrace(3, 2)
	if _, err := Run(cfg, tr); err == nil {
		t.Fatal("3 threads on 2 cores accepted")
	}
}

func TestGapsConsumeCycles(t *testing.T) {
	// A thread with huge gaps must take at least the gap cycles.
	tr := trace.NewTrace(1)
	for i := 0; i < 10; i++ {
		tr.Append(trace.Event{Addr: uint64(i) * 8, Op: trace.Load, Size: 8, Gap: 200})
	}
	res, err := Run(DefaultRunConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles < 2000 {
		t.Fatalf("cycles = %d, want >= 2000 (gap execution)", res.Cycles)
	}
	if res.Instructions != 10+10*200 {
		t.Fatalf("instructions = %d", res.Instructions)
	}
}

func TestFenceOrdersThreadProgram(t *testing.T) {
	tr := mkTrace(
		trace.Event{Addr: 0x1000, Op: trace.Load, Size: 8},
		trace.Event{Op: trace.Fence},
		trace.Event{Addr: 0x2000, Op: trace.Load, Size: 8},
	)
	res, err := Run(DefaultRunConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coalescer.Fences != 1 {
		t.Fatalf("fences = %d", res.Coalescer.Fences)
	}
	if res.MemRequests != 2 {
		t.Fatalf("mem requests = %d", res.MemRequests)
	}
}

func TestAllKindsDrainSameTrace(t *testing.T) {
	tr := seqTrace(4, 64)
	for _, kind := range []CoalescerKind{WithMAC, WithoutMAC, WithMSHR} {
		cfg := DefaultRunConfig()
		cfg.Kind = kind
		res, err := Run(cfg, tr)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if res.MemRequests != 4*64 {
			t.Fatalf("%v: mem requests = %d", kind, res.MemRequests)
		}
		if res.RequestLatency.Count() != 4*64 {
			t.Fatalf("%v: latencies = %d", kind, res.RequestLatency.Count())
		}
	}
}

func TestMACCoalescesSequentialStreams(t *testing.T) {
	tr := seqTrace(8, 128)
	cmp, err := Compare(DefaultRunConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Without.Device.Requests != 8*128 {
		t.Fatalf("raw path issued %d device requests", cmp.Without.Device.Requests)
	}
	if cmp.With.Device.Requests >= cmp.Without.Device.Requests {
		t.Fatal("MAC did not reduce transactions on sequential streams")
	}
	eff := cmp.CoalescingEfficiency()
	if eff < 0.3 {
		t.Fatalf("coalescing efficiency %.2f too low for sequential streams", eff)
	}
	if cmp.With.Coalescer.AvgTargetsPerTx() <= 1 {
		t.Fatal("no multi-target transactions")
	}
}

func TestMACImprovesMemoryLatencyUnderContention(t *testing.T) {
	// Many threads streaming the same rows: the raw path suffers
	// bank conflicts that MAC removes (Figs. 12/17).
	tr := trace.NewTrace(8)
	for t2 := 0; t2 < 8; t2++ {
		for i := 0; i < 128; i++ {
			// All threads walk the same region.
			tr.Append(trace.Event{
				Addr: uint64(i)*32 + uint64(t2)*8, Thread: uint16(t2),
				Op: trace.Load, Size: 8, Gap: 0,
			})
		}
	}
	cmp, err := Compare(DefaultRunConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.BankConflictReduction() <= 0 {
		t.Fatalf("bank conflicts: with=%d without=%d",
			cmp.With.Device.BankConflicts, cmp.Without.Device.BankConflicts)
	}
	if cmp.MemorySpeedup() <= 0 {
		t.Fatalf("memory speedup = %v", cmp.MemorySpeedup())
	}
	if cmp.BandwidthSaving() <= 0 {
		t.Fatalf("bandwidth saving = %d", cmp.BandwidthSaving())
	}
}

func TestTargetsConservedThroughFullPipeline(t *testing.T) {
	// End-to-end conservation: every issued request retires exactly
	// once (the node would panic on double retire; here we check
	// the totals).
	tr := seqTrace(4, 100)
	res, err := Run(DefaultRunConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.RequestLatency.Count() != 400 {
		t.Fatalf("retired %d of 400", res.RequestLatency.Count())
	}
}

func TestAtomicsFlowThrough(t *testing.T) {
	tr := mkTrace(
		trace.Event{Addr: 0x1000, Op: trace.Atomic, Size: 8},
		trace.Event{Addr: 0x1008, Op: trace.Atomic, Size: 8, Thread: 0},
	)
	res, err := Run(DefaultRunConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Device.Atomics != 2 {
		t.Fatalf("device atomics = %d", res.Device.Atomics)
	}
	if res.Coalescer.RawAtomics != 2 {
		t.Fatalf("coalescer atomics = %d", res.Coalescer.RawAtomics)
	}
}

func TestDeadlockGuard(t *testing.T) {
	cfg := DefaultRunConfig()
	cfg.Node.MaxCycles = 10 // absurdly small
	tr := seqTrace(1, 100)
	if _, err := Run(cfg, tr); err == nil {
		t.Fatal("MaxCycles guard did not fire")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Cores = 0 },
		func(c *Config) { c.MaxOutstanding = 0 },
		func(c *Config) { c.MaxCycles = 0 },
	}
	for i, mutate := range bad {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestResultDerivedMetrics(t *testing.T) {
	r := &Result{Cycles: 100, Instructions: 50, MemRequests: 25, SPMAccesses: 25}
	if r.IPC() != 0.5 || r.RPI() != 0.5 || r.MemAccessRate() != 0.5 || r.RPC() != 0.25 {
		t.Fatalf("metrics: IPC=%v RPI=%v rate=%v RPC=%v", r.IPC(), r.RPI(), r.MemAccessRate(), r.RPC())
	}
	var zero Result
	if zero.IPC() != 0 || zero.RPI() != 0 || zero.MemAccessRate() != 0 || zero.RPC() != 0 {
		t.Fatal("zero result metrics must be 0")
	}
}

func TestKindStrings(t *testing.T) {
	if WithMAC.String() != "mac" || WithoutMAC.String() != "raw" || WithMSHR.String() != "mshr" {
		t.Fatal("kind strings wrong")
	}
}
