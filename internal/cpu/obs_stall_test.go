package cpu

import (
	"errors"
	"strings"
	"testing"

	"mac3d/internal/obs"
)

// TestStallRunTimeseriesWellFormed: when the watchdog aborts a starved
// run, the recorder has been fed exactly once per completed cycle —
// every series must be the same length (no trailing partial sample
// from the abort cycle) and the CSV must render rectangular.
func TestStallRunTimeseriesWellFormed(t *testing.T) {
	cfg := DefaultRunConfig()
	cfg.HMC.Faults.DropResponseEvery = 1 // lose every response: guaranteed stall
	cfg.Node.StallLimit = 500
	cfg.Node.MaxCycles = 1_000_000
	cfg.Obs = &obs.Obs{Registry: obs.NewRegistry(), Recorder: obs.NewRecorder(1)}

	_, err := Run(cfg, seqTrace(2, 8))
	var stall *StallError
	if !errors.As(err, &stall) {
		t.Fatalf("error is %T, want *StallError: %v", err, err)
	}

	rec := cfg.Obs.Rec()
	n := rec.Samples()
	if n == 0 {
		t.Fatal("stalled run recorded no samples")
	}
	for _, s := range rec.Series() {
		if uint64(len(s.Points)) != n {
			t.Fatalf("series %q has %d points, want %d (partial sample left behind)",
				s.Name, len(s.Points), n)
		}
		// The run died mid-flight; every probe value must still be a
		// real observation, not a poisoned division.
		for _, p := range s.Points {
			if p.Value != p.Value { // NaN
				t.Fatalf("series %q carries NaN at cycle %d", s.Name, p.Cycle)
			}
		}
	}

	var b strings.Builder
	if err := rec.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if uint64(len(lines)) != n+1 {
		t.Fatalf("CSV rows = %d, want %d samples + header", len(lines), n)
	}
	want := strings.Count(lines[0], ",")
	for _, l := range lines[1:] {
		if strings.Count(l, ",") != want {
			t.Fatalf("ragged CSV row %q", l)
		}
	}
}

// TestZeroCycleResultRates: a run over an empty trace drains on its
// first cycle; every derived rate must come back zero, not NaN/Inf.
func TestZeroCycleResultRates(t *testing.T) {
	cfg := DefaultRunConfig()
	cfg.Obs = &obs.Obs{Registry: obs.NewRegistry(), Recorder: obs.NewRecorder(1)}
	res, err := Run(cfg, seqTrace(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.MemRequests != 0 {
		t.Fatalf("empty trace issued %d requests", res.MemRequests)
	}
	for name, v := range map[string]float64{
		"IPC":           res.IPC(),
		"RPI":           res.RPI(),
		"RPC":           res.RPC(),
		"MemAccessRate": res.MemAccessRate(),
	} {
		if v != 0 {
			t.Fatalf("%s = %v on a zero-work run, want 0", name, v)
		}
	}
	// The registry snapshot must also be entirely finite.
	for _, m := range cfg.Obs.Reg().Snapshot() {
		if m.Value != m.Value {
			t.Fatalf("metric %q is NaN on a zero-work run", m.Name)
		}
	}
}
