package cpu

import (
	"fmt"

	"mac3d/internal/chaos"
	"mac3d/internal/coalesce"
	"mac3d/internal/core"
	"mac3d/internal/hmc"
	"mac3d/internal/memreq"
	"mac3d/internal/obs"
	"mac3d/internal/trace"
)

// CoalescerKind names the memory-path designs a run can use.
type CoalescerKind int

const (
	// WithMAC uses the paper's Memory Access Coalescer.
	WithMAC CoalescerKind = iota
	// WithoutMAC uses the raw FLIT-granularity path (the paper's
	// baseline for every with/without comparison).
	WithoutMAC
	// WithMSHR uses the conventional 64B miss-merging design of
	// §2.3, for the limitation study.
	WithMSHR
	// WithWarp uses the SIMT warp-lane coalescer (leader-mask
	// SameAddress/SameBlock grouping with warp suspend/resume).
	WithWarp
	// WithMemCache uses the die-stacked memory+cache frontend (part of
	// the stacked DRAM is an inclusive cache, part direct memory).
	WithMemCache
)

// Kinds returns every selectable coalescer kind, in display order.
// This is the single authority on which frontends exist: the facade
// Design enum, the CLI and the arena experiment all derive from it.
func Kinds() []CoalescerKind {
	return []CoalescerKind{WithMAC, WithoutMAC, WithMSHR, WithWarp, WithMemCache}
}

// String names the kind.
func (k CoalescerKind) String() string {
	switch k {
	case WithMAC:
		return "mac"
	case WithoutMAC:
		return "raw"
	case WithMSHR:
		return "mshr"
	case WithWarp:
		return "warp"
	case WithMemCache:
		return "memcache"
	default:
		return fmt.Sprintf("CoalescerKind(%d)", int(k))
	}
}

// ParseKind resolves a kind name (the String form).
func ParseKind(s string) (CoalescerKind, error) {
	for _, k := range Kinds() {
		if k.String() == s {
			return k, nil
		}
	}
	names := make([]string, 0, len(Kinds()))
	for _, k := range Kinds() {
		names = append(names, k.String())
	}
	return 0, fmt.Errorf("cpu: unknown coalescer kind %q (have %v)", s, names)
}

// RunConfig bundles everything one timed run needs.
type RunConfig struct {
	Node     Config
	MAC      core.Config
	MSHR     coalesce.MSHRConfig
	Null     coalesce.NullConfig
	Warp     coalesce.WarpConfig
	MemCache coalesce.MemCacheConfig
	HMC      hmc.Config
	Kind     CoalescerKind
	// Obs, when non-nil, wires the run into an observability layer
	// (metrics registry, timeseries recorder, transaction tracer).
	// Nil keeps every probe a no-op.
	Obs *obs.Obs
	// Audit enables the request-lifecycle conservation ledger; the
	// end-of-run report lands in Result.Audit.
	Audit bool
	// Chaos configures the deterministic chaos engine; the zero
	// profile disables it.
	Chaos chaos.Profile
	// Retry is the requester-side poison-recovery policy; the zero
	// value keeps fail-on-poison behaviour.
	Retry memreq.RetryPolicy
}

// DefaultRunConfig returns the paper's Table 1 setup with MAC enabled.
func DefaultRunConfig() RunConfig {
	return RunConfig{
		Node:     DefaultConfig(),
		MAC:      core.DefaultConfig(),
		MSHR:     coalesce.DefaultMSHRConfig(),
		Null:     coalesce.DefaultNullConfig(),
		Warp:     coalesce.DefaultWarpConfig(),
		MemCache: coalesce.DefaultMemCacheConfig(),
		HMC:      hmc.DefaultConfig(),
		Kind:     WithMAC,
	}
}

// NewCoalescer constructs the coalescer selected by cfg.Kind,
// returning a wrapped configuration error.
func (cfg RunConfig) NewCoalescer() (memreq.Coalescer, error) {
	switch cfg.Kind {
	case WithoutMAC:
		return coalesce.NewNull(cfg.Null), nil
	case WithMSHR:
		return coalesce.NewMSHR(cfg.MSHR), nil
	case WithWarp:
		return coalesce.NewWarp(cfg.Warp)
	case WithMemCache:
		return coalesce.NewMemCache(cfg.MemCache)
	default:
		return core.New(cfg.MAC)
	}
}

// Run replays tr through a freshly built node.
func Run(cfg RunConfig, tr *trace.Trace) (*Result, error) {
	dev, err := hmc.NewDevice(cfg.HMC)
	if err != nil {
		return nil, err
	}
	coal, err := cfg.NewCoalescer()
	if err != nil {
		return nil, err
	}
	n, err := NewNode(cfg.Node, coal, dev)
	if err != nil {
		return nil, err
	}
	n.AttachObs(cfg.Obs)
	if cfg.Audit {
		n.EnableAudit()
	}
	if err := cfg.Retry.Validate(); err != nil {
		return nil, err
	}
	n.SetRetry(cfg.Retry)
	eng, err := chaos.NewEngine(cfg.Chaos, cfg.HMC.Vaults)
	if err != nil {
		return nil, err
	}
	// Routed cube fabrics expose their intra-cube links to the
	// cubelink stressor; the ideal cube reports 0 and the roll stays
	// gated off, preserving pre-cube RNG schedules.
	eng.SetCubeLinks(dev.CubeLinks())
	n.SetChaos(eng)
	if err := n.Load(tr); err != nil {
		return nil, err
	}
	return n.Run()
}

// Comparison holds a with/without-MAC pair over the same trace — the
// measurement behind Figures 10, 12, 13, 14, 15 and 17.
type Comparison struct {
	With    *Result
	Without *Result
}

// Compare runs tr twice, with the MAC and with the raw path.
func Compare(cfg RunConfig, tr *trace.Trace) (*Comparison, error) {
	withCfg := cfg
	withCfg.Kind = WithMAC
	w, err := Run(withCfg, tr)
	if err != nil {
		return nil, fmt.Errorf("with MAC: %w", err)
	}
	withoutCfg := cfg
	withoutCfg.Kind = WithoutMAC
	wo, err := Run(withoutCfg, tr)
	if err != nil {
		return nil, fmt.Errorf("without MAC: %w", err)
	}
	return &Comparison{With: w, Without: wo}, nil
}

// CoalescingEfficiency is the Fig. 10 metric over this comparison:
// the fraction of raw requests MAC eliminated.
func (c *Comparison) CoalescingEfficiency() float64 {
	raw := c.Without.Device.Requests
	if raw == 0 {
		return 0
	}
	return 1 - float64(c.With.Device.Requests)/float64(raw)
}

// BankConflictReduction returns the Fig. 12 metric: conflicts removed.
func (c *Comparison) BankConflictReduction() int64 {
	return int64(c.Without.Device.BankConflicts) - int64(c.With.Device.BankConflicts)
}

// MemorySpeedup returns the Fig. 17 metric: the relative reduction of
// the mean memory access latency (issue to retire) achieved by MAC.
func (c *Comparison) MemorySpeedup() float64 {
	wo := c.Without.RequestLatency.Mean()
	w := c.With.RequestLatency.Mean()
	if wo == 0 {
		return 0
	}
	return 1 - w/wo
}

// MakespanSpeedup returns the end-to-end runtime ratio without/with.
func (c *Comparison) MakespanSpeedup() float64 {
	if c.With.Cycles == 0 {
		return 0
	}
	return float64(c.Without.Cycles) / float64(c.With.Cycles)
}

// BandwidthSaving returns the Fig. 14 metric: control-overhead bytes
// avoided by coalescing.
func (c *Comparison) BandwidthSaving() int64 {
	return int64(c.Without.Device.ControlBytes) - int64(c.With.Device.ControlBytes)
}
