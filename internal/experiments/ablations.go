package experiments

import (
	"mac3d/internal/cpu"
	"mac3d/internal/hmc"
	"mac3d/internal/obs"
	"mac3d/internal/stats"
)

// Ablation studies beyond the paper's figures: each isolates one
// design choice that DESIGN.md calls out, over a representative
// benchmark subset.

// ablationSet returns a fast, diverse benchmark subset: one streaming
// (sg), one graph (bfs), one stencil (mg) and one compute-bound
// (nqueens) kernel, intersected with the configured benchmark list.
func (s *Suite) ablationSet() []string {
	want := map[string]bool{"sg": true, "bfs": true, "mg": true, "nqueens": true}
	var out []string
	for _, b := range s.opts.Benchmarks {
		if want[b] {
			out = append(out, b)
		}
	}
	if len(out) == 0 {
		out = s.opts.Benchmarks
	}
	return out
}

// AblationFillMode measures the latency-hiding comparator-bypass
// mechanism of §4.1: coalescing efficiency and makespan with the fill
// mode on (default) and off.
func (s *Suite) AblationFillMode() (*stats.Table, error) {
	t := stats.NewTable("Ablation: ARQ latency-hiding fill mode",
		"benchmark", "eff_on_%", "eff_off_%", "cycles_on", "cycles_off")
	for _, name := range s.ablationSet() {
		on, err := s.MAC(name, 8)
		if err != nil {
			return nil, err
		}
		off, err := s.MACNoFill(name, 8)
		if err != nil {
			return nil, err
		}
		t.AddRow(name,
			100*coalescingEfficiency(on), 100*coalescingEfficiency(off),
			uint64(on.Cycles), uint64(off.Cycles))
	}
	return t, nil
}

// AblationLSQDepth measures the per-core outstanding-request window:
// the offered-load knob discussed in DESIGN.md. Small windows throttle
// the request stream so far that the ARQ cannot aggregate.
func (s *Suite) AblationLSQDepth() (*stats.Table, error) {
	t := stats.NewTable("Ablation: load/store queue depth (offered load)",
		"benchmark", "lsq", "efficiency_%", "avg_latency", "cycles")
	for _, name := range s.ablationSet() {
		for _, depth := range []int{1, 4, 16, 64, 256} {
			res, err := s.MACWithLSQ(name, 8, depth)
			if err != nil {
				return nil, err
			}
			t.AddRow(name, depth, 100*coalescingEfficiency(res),
				res.RequestLatency.Mean(), uint64(res.Cycles))
		}
	}
	return t, nil
}

// AblationHBM reproduces §4.3's applicability claim: the unchanged MAC
// driving a High Bandwidth Memory profile (1KB rows, 32B bursts)
// instead of the HMC. Coalescing still pays off; row/bank geometry
// shifts the conflict behaviour.
func (s *Suite) AblationHBM() (*stats.Table, error) {
	t := stats.NewTable("Ablation: MAC on HMC vs HBM (§4.3 applicability)",
		"benchmark", "device", "efficiency_%", "bank_conflicts", "avg_latency", "speedup_vs_raw_%")
	for _, name := range s.ablationSet() {
		type pair struct {
			label    string
			mac, raw func(string, int) (*cpu.Result, error)
		}
		for _, p := range []pair{
			{"hmc", s.MAC, s.Raw},
			{"hbm", s.MACOnHBM, s.RawOnHBM},
		} {
			mac, err := p.mac(name, 8)
			if err != nil {
				return nil, err
			}
			raw, err := p.raw(name, 8)
			if err != nil {
				return nil, err
			}
			speedup := 0.0
			if m := raw.RequestLatency.Mean(); m > 0 {
				speedup = 100 * (1 - mac.RequestLatency.Mean()/m)
			}
			t.AddRow(name, p.label, 100*coalescingEfficiency(mac),
				mac.Device.BankConflicts, mac.RequestLatency.Mean(), speedup)
		}
	}
	return t, nil
}

// AblationEnergy reports memory-side energy with and without MAC
// under the hmc.DefaultEnergyModel — the quantitative version of the
// paper's §2.2.1 power motivation: coalescing removes row activations
// and control traffic, both of which cost energy.
func (s *Suite) AblationEnergy() (*stats.Table, error) {
	t := stats.NewTable("Ablation: memory-side energy with vs without MAC",
		"benchmark", "design", "activate_uJ", "array_uJ", "link_uJ", "logic_uJ", "total_uJ", "saving_%")
	m := hmc.DefaultEnergyModel()
	cfg := hmc.DefaultConfig()
	for _, name := range s.ablationSet() {
		mac, err := s.MAC(name, 8)
		if err != nil {
			return nil, err
		}
		raw, err := s.Raw(name, 8)
		if err != nil {
			return nil, err
		}
		eMAC := hmc.EnergyOf(m, cfg, &mac.Device)
		eRaw := hmc.EnergyOf(m, cfg, &raw.Device)
		saving := 0.0
		if eRaw.TotalPJ() > 0 {
			saving = 100 * (1 - eMAC.TotalPJ()/eRaw.TotalPJ())
		}
		t.AddRow(name, "raw", eRaw.ActivatePJ/1e6, eRaw.ArrayPJ/1e6,
			eRaw.LinkPJ/1e6, eRaw.LogicPJ/1e6, eRaw.TotalUJ(), "")
		t.AddRow(name, "mac", eMAC.ActivatePJ/1e6, eMAC.ArrayPJ/1e6,
			eMAC.LinkPJ/1e6, eMAC.LogicPJ/1e6, eMAC.TotalUJ(), saving)
	}
	return t, nil
}

// AblationGrain compares the paper's 64B-chunk builder floor against a
// 16B (FLIT-granularity) floor — the §4.2 control-overhead versus
// data-utilization trade, measured. The fine builder emits smaller,
// tighter transactions on sparse maps, cutting wasted data bandwidth
// but paying more per-packet control overhead.
func (s *Suite) AblationGrain() (*stats.Table, error) {
	t := stats.NewTable("Ablation: builder floor 64B (paper) vs 16B (fine)",
		"benchmark", "floor", "data_bytes", "control_bytes", "bandwidth_eff_%", "avg_latency")
	for _, name := range s.ablationSet() {
		coarse, err := s.MAC(name, 8)
		if err != nil {
			return nil, err
		}
		fine, err := s.MACFineBuilder(name, 8)
		if err != nil {
			return nil, err
		}
		t.AddRow(name, "64B", coarse.Device.DataBytes, coarse.Device.ControlBytes,
			100*coarse.Device.BandwidthEfficiency(), coarse.RequestLatency.Mean())
		t.AddRow(name, "16B", fine.Device.DataBytes, fine.Device.ControlBytes,
			100*fine.Device.BandwidthEfficiency(), fine.RequestLatency.Mean())
	}
	return t, nil
}

// AblationWindow sweeps the §4.3 coalescing-window generalization:
// 256B (the paper's HMC design point), 512B, and 1KB (paired with the
// HBM device whose rows it matches). Wider windows merge more but emit
// transactions that span multiple small-device rows.
func (s *Suite) AblationWindow() (*stats.Table, error) {
	t := stats.NewTable("Ablation: coalescing window (§4.3 wide FLIT map/table)",
		"benchmark", "window", "device", "efficiency_%", "bank_conflicts", "avg_latency")
	for _, name := range s.ablationSet() {
		for _, cfg := range []struct {
			window uint32
			hbm    bool
			label  string
		}{
			{256, false, "hmc"},
			{512, false, "hmc"},
			{1024, false, "hmc"},
			{1024, true, "hbm"},
		} {
			res, err := s.MACWithWindow(name, 8, cfg.window, cfg.hbm)
			if err != nil {
				return nil, err
			}
			t.AddRow(name, cfg.window, cfg.label, 100*coalescingEfficiency(res),
				res.Device.BankConflicts, res.RequestLatency.Mean())
		}
	}
	return t, nil
}

// AblationMSHR compares MAC against the conventional fixed-64B MSHR
// coalescer of §2.3 on transactions, bandwidth efficiency and latency
// — the quantitative version of the paper's limitation argument.
func (s *Suite) AblationMSHR() (*stats.Table, error) {
	t := stats.NewTable("Ablation: MAC vs conventional MSHR (64B) vs raw",
		"benchmark", "design", "transactions", "bandwidth_eff_%", "avg_latency")
	for _, name := range s.ablationSet() {
		mac, err := s.MAC(name, 8)
		if err != nil {
			return nil, err
		}
		mshr, err := s.MSHR(name, 8)
		if err != nil {
			return nil, err
		}
		raw, err := s.Raw(name, 8)
		if err != nil {
			return nil, err
		}
		t.AddRow(name, "mac", mac.Device.Requests, 100*mac.Device.BandwidthEfficiency(), mac.RequestLatency.Mean())
		t.AddRow(name, "mshr", mshr.Device.Requests, 100*mshr.Device.BandwidthEfficiency(), mshr.RequestLatency.Mean())
		t.AddRow(name, "raw", raw.Device.Requests, 100*raw.Device.BandwidthEfficiency(), raw.RequestLatency.Mean())
	}
	return t, nil
}

// AblationObs exercises the observability layer end to end: each
// benchmark runs once with the metrics registry, the cycle-sampled
// timeseries recorder and the transaction tracer all enabled. The
// table cross-checks the registry's ARQ occupancy mean against the
// run result and reports the capture volumes. These runs bypass the
// suite's cache on purpose: an Obs handle belongs to exactly one run.
func (s *Suite) AblationObs() (*stats.Table, error) {
	t := stats.NewTable("Ablation: observability layer (metrics/timeseries/trace)",
		"benchmark", "occ_result", "occ_metric", "merges", "win_splits", "ts_samples", "trace_events")
	for _, name := range s.ablationSet() {
		tr, err := s.Trace(name, 8)
		if err != nil {
			return nil, err
		}
		cfg := cpu.DefaultRunConfig()
		cfg.Obs = obs.New(64, 1<<20)
		s.progress("simulating %s (8 threads, mac, observed)", name)
		res, err := cpu.Run(cfg, tr)
		if err != nil {
			return nil, err
		}
		occ, _ := cfg.Obs.Registry.Get("mac.arq.occupancy_mean")
		merges, _ := cfg.Obs.Registry.Get("mac.arq.merges")
		splits, _ := cfg.Obs.Registry.Get("mac.arq.window_splits")
		t.AddRow(name, res.ARQOccupancy, occ, uint64(merges), uint64(splits),
			cfg.Obs.Recorder.Samples(), uint64(cfg.Obs.Tracer.Len()))
	}
	return t, nil
}
