package experiments

import (
	"fmt"

	"mac3d/internal/chaos"
	"mac3d/internal/memreq"
	"mac3d/internal/stats"
)

// chaosSweepProfile is the composed adversity the abl-chaos sweep runs
// under: every stressor class active at once (delay/reorder storms on
// the return path, fence storms on the request path, submit freezes,
// transient vault stalls), on top of link CRC faults at a rate where
// the requester-side retry policy can still converge.
func chaosSweepProfile() chaos.Profile {
	return chaos.Profile{
		DelayRate: 0.004, DelayDuration: 12, DelayMax: 24,
		ReorderRate: 0.05,
		FenceRate:   0.001, FenceBurst: 2,
		FreezeRate: 0.002, FreezeDuration: 8,
		VaultRate: 0.002, VaultStall: 24,
	}
}

// AblationChaos sweeps chaos seeds over the ablation benchmark set
// with the full stressor composition, link CRC faults, a bounded
// requester-side retry policy, and the request-lifecycle audit ledger
// enabled. Every run must finish with zero invariant violations and —
// because the retry budget comfortably covers the poison rate — zero
// failed requests; any break fails the experiment with the offending
// (benchmark, seed) and the ledger's per-request diagnostic diff.
func (s *Suite) AblationChaos() (*stats.Table, error) {
	seeds := []uint64{1, 2, 3}
	profile := chaosSweepProfile()
	retry := memreq.RetryPolicy{MaxRetries: 8, Backoff: 16}
	const crcRate = 1e-3

	t := stats.NewTable("Ablation: chaos sweep (audited conservation under adversity)",
		"benchmark", "seed", "cycles", "delayed", "fences", "freezes",
		"vault_stalls", "poisoned", "reissued", "failed", "violations")
	for _, name := range s.ablationSet() {
		for _, seed := range seeds {
			res, err := s.MACChaos(name, 8, profile, seed, crcRate, retry)
			if err != nil {
				return nil, fmt.Errorf("abl-chaos %s seed %d: %w", name, seed, err)
			}
			a, c := res.Audit, res.Chaos
			if a == nil || c == nil {
				return nil, fmt.Errorf("abl-chaos %s seed %d: run missing audit/chaos report", name, seed)
			}
			if !a.Ok() {
				return nil, fmt.Errorf("abl-chaos: invariant violations under %s seed %d (%s):\n%s",
					name, seed, a, a.Diff())
			}
			if res.FailedRequests != 0 {
				return nil, fmt.Errorf("abl-chaos: %s seed %d: %d requests failed despite retry budget %d",
					name, seed, res.FailedRequests, retry.MaxRetries)
			}
			t.AddRow(name, seed, uint64(res.Cycles),
				c.DelayedResponses, c.FencesInjected, c.FreezeCycles,
				c.VaultStalls, res.Device.PoisonedResponses,
				res.RetriedRequests, res.FailedRequests,
				uint64(len(a.Violations))+a.OmittedViolations)
		}
	}
	return t, nil
}
