package experiments

import (
	"fmt"

	"mac3d/internal/chaos"
	"mac3d/internal/memreq"
	"mac3d/internal/stats"
)

// chaosSweepProfile is the composed adversity the abl-chaos sweep runs
// under: every stressor class active at once (delay/reorder storms on
// the return path, fence storms on the request path, submit freezes,
// transient vault stalls), on top of link CRC faults at a rate where
// the requester-side retry policy can still converge.
func chaosSweepProfile() chaos.Profile {
	return chaos.Profile{
		DelayRate: 0.004, DelayDuration: 12, DelayMax: 24,
		ReorderRate: 0.05,
		FenceRate:   0.001, FenceBurst: 2,
		FreezeRate: 0.002, FreezeDuration: 8,
		VaultRate: 0.002, VaultStall: 24,
	}
}

// chaosCubeProfile extends the sweep composition with the cube-link
// stressor, so the routed vault fabric's stall path is exercised under
// the same adversity the flat runs see.
func chaosCubeProfile() chaos.Profile {
	p := chaosSweepProfile()
	p.CubeLinkRate, p.CubeLinkStall = 0.002, 32
	return p
}

// AblationChaos sweeps chaos seeds over the ablation benchmark set
// with the full stressor composition, link CRC faults, a bounded
// requester-side retry policy, and the request-lifecycle audit ledger
// enabled. Every benchmark/seed pair runs twice: on the default ideal
// cube and on a routed ring vault fabric with the cubelink stressor
// added. Every run must finish with zero invariant violations and —
// because the retry budget comfortably covers the poison rate — zero
// failed requests; any break fails the experiment with the offending
// (benchmark, seed) and the ledger's per-request diagnostic diff.
func (s *Suite) AblationChaos() (*stats.Table, error) {
	seeds := []uint64{1, 2, 3}
	retry := memreq.RetryPolicy{MaxRetries: 8, Backoff: 16}
	const crcRate = 1e-3
	cubes := []struct {
		label   string
		cube    string
		profile chaos.Profile
	}{
		{"ideal", "", chaosSweepProfile()},
		{"ring", "ring", chaosCubeProfile()},
	}

	t := stats.NewTable("Ablation: chaos sweep (audited conservation under adversity)",
		"benchmark", "seed", "cube", "cycles", "delayed", "fences", "freezes",
		"vault_stalls", "cube_stalls", "poisoned", "reissued", "failed", "violations")
	for _, name := range s.ablationSet() {
		for _, seed := range seeds {
			for _, cv := range cubes {
				res, err := s.MACChaosCube(name, 8, cv.profile, seed, crcRate, retry, cv.cube)
				if err != nil {
					return nil, fmt.Errorf("abl-chaos %s seed %d cube %s: %w", name, seed, cv.label, err)
				}
				a, c := res.Audit, res.Chaos
				if a == nil || c == nil {
					return nil, fmt.Errorf("abl-chaos %s seed %d cube %s: run missing audit/chaos report", name, seed, cv.label)
				}
				if !a.Ok() {
					return nil, fmt.Errorf("abl-chaos: invariant violations under %s seed %d cube %s (%s):\n%s",
						name, seed, cv.label, a, a.Diff())
				}
				if res.FailedRequests != 0 {
					return nil, fmt.Errorf("abl-chaos: %s seed %d cube %s: %d requests failed despite retry budget %d",
						name, seed, cv.label, res.FailedRequests, retry.MaxRetries)
				}
				t.AddRow(name, seed, cv.label, uint64(res.Cycles),
					c.DelayedResponses, c.FencesInjected, c.FreezeCycles,
					c.VaultStalls, c.CubeLinkStalls, res.Device.PoisonedResponses,
					res.RetriedRequests, res.FailedRequests,
					uint64(len(a.Violations))+a.OmittedViolations)
			}
		}
	}
	return t, nil
}
