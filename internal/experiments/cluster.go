package experiments

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"mac3d/internal/cluster"
	"mac3d/internal/service"
	"mac3d/internal/stats"
	"mac3d/internal/svcchaos"
)

// AblationCluster is the cluster-plane chaos sweep: the fault-tolerant
// sharded macd under shard death. Per seed, three journaled shard
// daemons run behind a health-checked router — the victim shard with a
// chaos-wrapped runner (worker kills that strand jobs "running", as a
// real crash would), a second shard behind a dropping/delaying
// listener (a flaky link), the third clean. The sweep's job set is
// submitted through the router; mid-sweep the victim is crashed
// outright (listener torn down, no drain). The router must evict it,
// eagerly fail its accepted jobs over to the ring successor, and
// re-admit it after a chaos-free restart on the same journal. The
// experiment fails unless every accepted job reaches exactly one
// terminal state (done), every result is byte-identical to a
// chaos-free single-node baseline, and every shard journal passes
// conservation verification.
func (s *Suite) AblationCluster() (*stats.Table, error) {
	seeds := []uint64{1, 2, 3}
	jobs, err := s.svcChaosJobs()
	if err != nil {
		return nil, err
	}
	baseline, err := s.svcChaosBaseline(jobs)
	if err != nil {
		return nil, err
	}

	t := stats.NewTable("Ablation: cluster chaos sweep (sharded failover conservation)",
		"seed", "jobs", "evictions", "readmits", "failovers", "spills",
		"peer_hits", "retries", "violations")
	for _, seed := range seeds {
		row, err := s.clusterSeed(seed, jobs, baseline)
		if err != nil {
			return nil, fmt.Errorf("abl-cluster seed %d: %w", seed, err)
		}
		t.AddRow(seed, uint64(len(jobs)), row.evictions, row.readmits,
			row.failovers, row.spills, row.peerHits, row.retries, row.violations)
	}
	return t, nil
}

type clusterRow struct {
	evictions, readmits uint64
	failovers, spills   uint64
	peerHits, retries   uint64
	violations          uint64
}

// clusterShard is one shard daemon of the sweep's cluster.
type clusterShard struct {
	svc *service.Service
	srv *http.Server
	ln  net.Listener
	url string
	dir string
}

func (c *clusterShard) kill() {
	c.ln.Close()
	c.srv.Close()
	c.svc.Kill()
}

// startClusterShard binds addr ("" for a fresh port), builds the
// service with cfg and serves it, optionally through chaos wrappers.
func startClusterShard(addr, dir string, cfg service.Config, in *svcchaos.Injector) (*clusterShard, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	cfg.JournalDir = dir
	if in != nil {
		cfg.WrapRunner = in.WrapRunner
	}
	svc, err := service.New(cfg)
	if err != nil {
		ln.Close()
		return nil, err
	}
	handler := service.Handler(svc)
	serveLn := ln
	if in != nil {
		handler = in.Middleware(handler)
		serveLn = in.Listener(ln)
	}
	sh := &clusterShard{
		svc: svc, srv: &http.Server{Handler: handler},
		ln: ln, url: "http://" + ln.Addr().String(), dir: dir,
	}
	go sh.srv.Serve(serveLn)
	return sh, nil
}

// clusterSeed runs one seed's shard-death cycle and checks the
// cluster invariants against the baseline.
func (s *Suite) clusterSeed(seed uint64, jobs []*svcChaosJob, baseline map[string][]byte) (*clusterRow, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	dirs := make([]string, 3)
	for i := range dirs {
		dir, err := os.MkdirTemp("", fmt.Sprintf("cluster-seed%d-shard%d-", seed, i))
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		dirs[i] = dir
	}

	// Reserve the three shard sockets up front so every shard can be
	// built knowing its peers' URLs (the read-through wiring).
	lns := make([]net.Listener, 3)
	urls := make([]string, 3)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		urls[i] = "http://" + ln.Addr().String()
		ln.Close() // re-bound by startClusterShard below
	}
	peersOf := func(i int) []string {
		var out []string
		for j, u := range urls {
			if j != i {
				out = append(out, u)
			}
		}
		return out
	}

	// Shard 0 is the victim: chaos-killed workers strand jobs in
	// "running" until the crash and journal replay. Shard 1 sits
	// behind a flaky link (dropped connections, delayed requests,
	// short partition windows). Shard 2 is clean.
	victimChaos := svcchaos.MustNew(svcchaos.Profile{KillRate: 0.3, StallRate: 0.2, StallMs: 20, Seed: seed})
	linkChaos := svcchaos.MustNew(svcchaos.Profile{DropRate: 0.1, DelayRate: 0.2, DelayMs: 5, PartitionRate: 0.02, PartitionMs: 80, Seed: seed + 100})

	shards := make([]*clusterShard, 3)
	chaosOf := []*svcchaos.Injector{victimChaos, linkChaos, nil}
	for i := range shards {
		sh, err := startClusterShard(urls[i][len("http://"):], dirs[i], service.Config{
			Workers:      2,
			ResultLookup: cluster.PeerReadThrough(peersOf(i)),
		}, chaosOf[i])
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		shards[i] = sh
	}
	defer func() {
		for _, sh := range shards {
			if sh != nil {
				sh.kill()
			}
		}
	}()

	router, err := cluster.NewRouter(cluster.Config{
		Shards:          urls,
		VNodes:          16,
		Heartbeat:       25 * time.Millisecond,
		HeartbeatJitter: 0.2,
		FailAfter:       2,
		ReadmitAfter:    2,
		Seed:            seed,
	})
	if err != nil {
		return nil, err
	}
	defer router.Close()
	frontLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	front := &http.Server{Handler: cluster.Handler(router)}
	go front.Serve(frontLn)
	defer front.Close()

	client := &service.Client{
		BaseURL:        "http://" + frontLn.Addr().String(),
		PollInterval:   10 * time.Millisecond,
		PollMax:        100 * time.Millisecond,
		AttemptTimeout: 5 * time.Second,
		Retry: service.RetryPolicy{
			MaxAttempts: 8, BaseDelay: 10 * time.Millisecond,
			MaxDelay: 200 * time.Millisecond, Multiplier: 2,
			Jitter: 0.2, Seed: seed,
		},
		Breaker: &service.Breaker{FailureThreshold: 4, Cooldown: 100 * time.Millisecond},
	}

	s.progress("abl-cluster seed %d: submitting %d jobs across 3 shards", seed, len(jobs))
	ids := make(map[string]string) // hash -> router job ID
	for _, j := range jobs {
		st, err := client.SubmitJSON(ctx, j.data)
		if err != nil {
			// The flaky link can exhaust the budget; the spec is
			// resubmitted after the crash below.
			continue
		}
		ids[st.Hash] = st.ID
	}

	// Mid-sweep shard death: SIGKILL the victim — listener gone, no
	// drain, journal cut wherever it happens to be.
	time.Sleep(300 * time.Millisecond)
	shards[0].kill()
	s.progress("abl-cluster seed %d: victim shard killed", seed)

	// The router must notice on its own (heartbeat eviction) and
	// eagerly fail the victim's jobs over to the ring successor.
	if err := waitFor(ctx, 15*time.Second, func() bool { return router.HealthyShards() == 2 }); err != nil {
		return nil, fmt.Errorf("victim never evicted: %w", err)
	}

	// Restart the victim chaos-free on the same address and journal;
	// replay re-queues its stranded jobs and the prober re-admits it.
	restarted, err := startClusterShard(urls[0][len("http://"):], dirs[0], service.Config{
		Workers:      2,
		ResultLookup: cluster.PeerReadThrough(peersOf(0)),
	}, nil)
	if err != nil {
		return nil, fmt.Errorf("victim restart: %w", err)
	}
	shards[0] = restarted
	if err := waitFor(ctx, 15*time.Second, func() bool { return router.HealthyShards() == 3 }); err != nil {
		return nil, fmt.Errorf("victim never re-admitted: %w", err)
	}

	// Resubmit every spec (idempotent through content addressing: the
	// router coalesces onto the live record) and await everything —
	// both the fresh IDs and every pre-crash ID we hold.
	for _, j := range jobs {
		st, err := client.SubmitJSON(ctx, j.data)
		if err != nil {
			return nil, fmt.Errorf("resubmit %s/%d: %w", j.name, j.threads, err)
		}
		want, ok := baseline[st.Hash]
		if !ok {
			return nil, fmt.Errorf("%s/%d: hash %s not in baseline", j.name, j.threads, st.Hash)
		}
		await := []string{st.ID}
		if id := ids[st.Hash]; id != "" && id != st.ID {
			await = append(await, id)
		}
		for _, id := range await {
			raw, err := client.AwaitResult(ctx, id)
			if err != nil {
				return nil, fmt.Errorf("await %s (%s/%d): %w", id, j.name, j.threads, err)
			}
			if string(raw) != string(want) {
				return nil, fmt.Errorf("%s/%d: result of %s differs from chaos-free baseline (%d vs %d bytes)",
					j.name, j.threads, id, len(raw), len(want))
			}
		}
	}

	// Exactly-one-terminal, observed end to end: every job the router
	// accepted must now be terminal and done.
	for _, st := range router.Jobs() {
		if st.State != service.StateDone {
			return nil, fmt.Errorf("router job %s ended %q, want done", st.ID, st.State)
		}
	}

	// Audit every shard journal: drain, then verify conservation.
	var violations uint64
	var peerHits uint64
	for i, sh := range shards {
		if err := sh.svc.Drain(ctx); err != nil {
			return nil, fmt.Errorf("drain shard %d: %w", i, err)
		}
		if hits, ok := sh.svc.Registry().Get("macd.jobs.peer_hits"); ok {
			peerHits += uint64(hits)
		}
		recs, damage, err := service.ReadJournal(sh.dir)
		if err != nil {
			return nil, fmt.Errorf("reading shard %d journal: %w", i, err)
		}
		if damage != nil {
			return nil, fmt.Errorf("shard %d journal damaged after clean drain: %s at offset %d", i, damage.Reason, damage.Offset)
		}
		if v := service.VerifyJournal(recs); len(v) != 0 {
			return nil, fmt.Errorf("shard %d journal violations: %v", i, v)
		}
	}

	topo := router.Topology()
	metrics := func(name string) uint64 {
		if v, ok := router.Registry().Get(name); ok {
			return uint64(v)
		}
		return 0
	}
	cs := client.Stats()
	return &clusterRow{
		evictions: topo.Evictions, readmits: topo.Readmitted,
		failovers: topo.Failovers, spills: metrics("cluster.spills"),
		peerHits: peerHits, retries: cs.Retries,
		violations: violations,
	}, nil
}

// waitFor polls cond every 10ms until it holds or the wait times out.
func waitFor(ctx context.Context, timeout time.Duration, cond func() bool) error {
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			return fmt.Errorf("condition not reached within %v", timeout)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(10 * time.Millisecond):
		}
	}
	return nil
}
