package experiments

import (
	"fmt"
	"sort"

	"mac3d/internal/cpu"
	"mac3d/internal/stats"
	"mac3d/internal/workloads"
)

// The coalescer arena: every registered frontend head-to-head on every
// registered workload, ranked. This is the paper's Fig. 10 question —
// how much of the raw request stream's redundancy does the memory path
// recover — asked of five designs at once: the MAC (the paper's ARQ),
// the uncoalesced baseline, a conventional MSHR file, a SIMT warp-lane
// coalescer, and a die-stacked memory-side cache.

// arenaSet returns the benchmarks the arena sweeps. The league table
// is defined over every registered workload — including kernels
// outside the paper's twelve — so when the campaign runs with the
// default benchmark list the arena widens it to workloads.Names().
// An explicit -bench restriction is honoured as-is.
func (s *Suite) arenaSet() []string {
	def := workloads.PaperSet()
	got := s.opts.Benchmarks
	if len(got) != len(def) {
		return got
	}
	for i := range def {
		if got[i] != def[i] {
			return got
		}
	}
	return workloads.Names()
}

// AblationCoalescer runs the coalescer arena: every frontend on every
// arena benchmark at 8 threads, one row per (workload, design) pair,
// followed by per-design league rows ranked best-first on mean
// coalescing efficiency (ties broken by total cycles, then by name).
// The rendered output is byte-deterministic: same options, same bytes.
func (s *Suite) AblationCoalescer() (*stats.Table, error) {
	t := stats.NewTable("Ablation: coalescer frontend arena (league table)",
		"workload", "design", "eff_%", "tx", "tgts/tx", "cycles")
	type agg struct {
		kind   cpu.CoalescerKind
		effSum float64
		runs   uint64
		raw    uint64
		tx     uint64
		cycles uint64
	}
	kinds := cpu.Kinds()
	aggs := make([]*agg, len(kinds))
	for i, k := range kinds {
		aggs[i] = &agg{kind: k}
	}
	for _, name := range s.arenaSet() {
		for i, k := range kinds {
			res, err := s.run(runKey{name: name, threads: 8, kind: k})
			if err != nil {
				return nil, err
			}
			c := &res.Coalescer
			t.AddRow(name, k.String(), 100*c.CoalescingEfficiency(),
				c.Transactions, c.AvgTargetsPerTx(), uint64(res.Cycles))
			a := aggs[i]
			a.effSum += c.CoalescingEfficiency()
			a.runs++
			a.raw += c.RawRequests
			a.tx += c.Transactions
			a.cycles += uint64(res.Cycles)
		}
	}
	// League rows: the aggregate tgts/tx is whole-arena raw requests
	// over whole-arena transactions, not a mean of per-run means.
	sort.SliceStable(aggs, func(i, j int) bool {
		ei := aggs[i].effSum / float64(aggs[i].runs)
		ej := aggs[j].effSum / float64(aggs[j].runs)
		if ei != ej {
			return ei > ej
		}
		if aggs[i].cycles != aggs[j].cycles {
			return aggs[i].cycles < aggs[j].cycles
		}
		return aggs[i].kind.String() < aggs[j].kind.String()
	})
	for rank, a := range aggs {
		tgts := 0.0
		if a.tx > 0 {
			tgts = float64(a.raw) / float64(a.tx)
		}
		t.AddRow("(league)", fmt.Sprintf("#%d %s", rank+1, a.kind),
			100*a.effSum/float64(a.runs), a.tx, tgts, a.cycles)
	}
	return t, nil
}
