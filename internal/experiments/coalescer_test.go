package experiments

import (
	"testing"

	"mac3d/internal/cpu"
	"mac3d/internal/workloads"
)

func TestAblationCoalescerLeague(t *testing.T) {
	s := testSuite()
	tab, err := s.AblationCoalescer()
	if err != nil {
		t.Fatal(err)
	}
	kinds := len(cpu.Kinds())
	want := len(s.opts.Benchmarks)*kinds + kinds
	if len(tab.Rows) != want {
		t.Fatalf("arena produced %d rows, want %d", len(tab.Rows), want)
	}
	// Per-workload rows: the MAC must beat the uncoalesced baseline.
	eff := map[string]float64{}
	for _, row := range tab.Rows {
		if row[0] == "sg" {
			eff[row[1]] = cell(t, row[2])
		}
	}
	if eff["mac"] <= eff["raw"] {
		t.Fatalf("mac efficiency %v not above raw %v", eff["mac"], eff["raw"])
	}
	// League rows are ranked: efficiency non-increasing, every design
	// present exactly once, rank labels in order.
	var league [][]string
	for _, row := range tab.Rows {
		if row[0] == "(league)" {
			league = append(league, row)
		}
	}
	if len(league) != kinds {
		t.Fatalf("league has %d rows, want %d", len(league), kinds)
	}
	prev := 101.0
	for i, row := range league {
		e := cell(t, row[2])
		if e > prev {
			t.Fatalf("league not ranked: row %d eff %v above previous %v", i, e, prev)
		}
		prev = e
	}
}

func TestAblationCoalescerDeterministic(t *testing.T) {
	a, err := testSuite().AblationCoalescer()
	if err != nil {
		t.Fatal(err)
	}
	b, err := testSuite().AblationCoalescer()
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() != b.Render() {
		t.Fatal("arena output is not byte-deterministic across fresh suites")
	}
}

func TestArenaSetWidensDefaultCampaign(t *testing.T) {
	// The default campaign (paper's twelve) widens to every registered
	// workload; an explicit restriction is honoured.
	full := NewSuite(Options{Scale: workloads.Tiny})
	if got, want := len(full.arenaSet()), len(workloads.Names()); got != want {
		t.Fatalf("default arena sweeps %d workloads, want all %d", got, want)
	}
	narrow := testSuite()
	if got := narrow.arenaSet(); len(got) != 2 || got[0] != "sg" || got[1] != "bfs" {
		t.Fatalf("restricted arena = %v, want [sg bfs]", got)
	}
}
