package experiments

import (
	"fmt"

	"mac3d/internal/hmc"
	"mac3d/internal/sim"
	"mac3d/internal/stats"
)

// cubeAddrs builds the synthetic address stream for the cube ablation:
// a row round-robin sweep (row i, vault i mod 32) that never collides
// on a bank, so the ideal crossbar's latency stays flat with load and
// any divergence the routed fabrics show is fabric contention, not
// bank queueing.
func cubeAddrs(n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(i) * 256
	}
	return out
}

// cubeDrive runs one cube configuration against the given address
// stream, injecting one read every gap cycles (subject to device
// backpressure), and returns the finished device plus the mean
// round-trip latency. The in-flight cap is raised far above the
// host-interface default so the offered load — not the tag space — is
// what stresses the fabric.
func cubeDrive(cube hmc.CubeConfig, gap sim.Cycle, addrs []uint64) (*hmc.Device, float64, error) {
	cfg := hmc.DefaultConfig()
	cfg.MaxInflight = 4096
	cfg.Cube = cube
	d, err := hmc.NewDevice(cfg)
	if err != nil {
		return nil, 0, err
	}
	var now sim.Cycle
	var latSum, done uint64
	next := 0
	for done < uint64(len(addrs)) {
		if now > 100_000_000 {
			return nil, 0, fmt.Errorf("cube %q gap %d: stalled at %d/%d responses",
				cube.String(), gap, done, len(addrs))
		}
		if next < len(addrs) && now%gap == 0 && d.CanAccept() {
			d.Submit(hmc.Request{Tag: uint64(next), Addr: addrs[next], Kind: hmc.Read, Data: 64}, now)
			next++
		}
		for _, r := range d.Tick(now) {
			latSum += uint64(r.Done - r.Submitted)
			done++
		}
		now++
	}
	return d, float64(latSum) / float64(done), nil
}

// AblationCube sweeps the cube-internal vault fabric: injection load
// (one request per gap cycles, rising as the gap shrinks) × topology
// (ideal crossbar vs routed ring vs 2D mesh, both at single-flit link
// bandwidth so the fabric is the narrow resource) × row-buffer policy
// (closed vs open page). Three properties are checked, not just
// reported:
//
//   - at every load the routed fabrics are strictly slower end-to-end
//     than the ideal crossbar (switch traversal is charged on top of
//     the shared pipeline);
//   - each routed fabric's mean in-network latency has its knee at
//     the heaviest load: the heaviest-load transit tops the sweep and
//     strictly exceeds the lightest-load transit, so contention — not
//     a flat hop tax — drives the divergence;
//   - on a row-local sequential stream the open-page policy hits in
//     the row buffer and beats closed-page latency.
func (s *Suite) AblationCube() (*stats.Table, error) {
	const n = 4000
	gaps := []sim.Cycle{16, 8, 4, 2, 1} // lightest -> heaviest load
	topos := []string{"ideal", "ring", "mesh"}
	pages := []string{hmc.PageClosed, hmc.PageOpen}
	addrs := cubeAddrs(n)

	t := stats.NewTable("Ablation: cube vault fabric (topology x page policy x load)",
		"topology", "page", "inject_gap", "mean_lat", "net_lat",
		"row_hit_rate", "fab_delivered", "fab_stalls")
	// Closed-page series used for the knee checks; the open-page rows
	// are reported but judged separately on the row-local stream.
	lat := make(map[string]map[sim.Cycle]float64, len(topos))
	net := make(map[string]map[sim.Cycle]float64, len(topos))
	for _, topo := range topos {
		lat[topo] = make(map[sim.Cycle]float64, len(gaps))
		net[topo] = make(map[sim.Cycle]float64, len(gaps))
		for _, page := range pages {
			for _, gap := range gaps {
				s.progress("simulating cube fabric (%s, page=%s, gap=%d)", topo, page, gap)
				cube := hmc.CubeConfig{Topology: topo, PagePolicy: page}
				if topo != "ideal" {
					cube.LinkBandwidth = 1
				}
				d, mean, err := cubeDrive(cube, gap, addrs)
				if err != nil {
					return nil, fmt.Errorf("abl-cube: %w", err)
				}
				st := d.Stats()
				var netLat float64
				var delivered, stalls uint64
				if fs := d.CubeStats(); fs != nil {
					netLat = fs.NetLatency.Mean()
					delivered = fs.Delivered
					credit, chaosStalls := fs.StallCycles()
					stalls = credit + chaosStalls
				}
				t.AddRow(topo, page, uint64(gap), mean, netLat,
					st.RowHitRate(), delivered, stalls)
				if page == hmc.PageClosed {
					lat[topo][gap] = mean
					net[topo][gap] = netLat
				}
			}
		}
	}

	// Knee ordering: routed never beats ideal end-to-end, and each
	// routed fabric's in-network latency peaks at the heaviest load
	// and grows from the lightest — a contention knee, not a flat tax.
	light, heavy := gaps[0], gaps[len(gaps)-1]
	for _, topo := range []string{"ring", "mesh"} {
		for _, gap := range gaps {
			if lat[topo][gap] <= lat["ideal"][gap] {
				return nil, fmt.Errorf("abl-cube: %s does not trail ideal at gap %d (%.2f <= %.2f)",
					topo, gap, lat[topo][gap], lat["ideal"][gap])
			}
		}
		if net[topo][heavy] <= net[topo][light] {
			return nil, fmt.Errorf("abl-cube: %s net latency does not grow with load (light %.2f, heavy %.2f)",
				topo, net[topo][light], net[topo][heavy])
		}
		for _, gap := range gaps[:len(gaps)-1] {
			if net[topo][gap] > net[topo][heavy] {
				return nil, fmt.Errorf("abl-cube: %s net-latency knee violated: gap %d transit %.2f exceeds heaviest-load %.2f",
					topo, gap, net[topo][gap], net[topo][heavy])
			}
		}
	}

	// Open-page benefit: a row-local sequential stream must hit in the
	// open row buffer and finish faster than under closed page.
	local := make([]uint64, n)
	for i := range local {
		local[i] = uint64(i) * 64
	}
	var byPage [2]float64
	for i, page := range pages {
		d, mean, err := cubeDrive(hmc.CubeConfig{Topology: "ideal", PagePolicy: page}, 4, local)
		if err != nil {
			return nil, fmt.Errorf("abl-cube: row-local stream: %w", err)
		}
		byPage[i] = mean
		if page == hmc.PageOpen {
			st := d.Stats()
			if st.RowHits == 0 {
				return nil, fmt.Errorf("abl-cube: open page saw zero row hits on a row-local stream")
			}
			t.AddRow("ideal", "open(local)", uint64(4), mean, 0.0,
				st.RowHitRate(), uint64(0), uint64(0))
		}
	}
	if byPage[1] >= byPage[0] {
		return nil, fmt.Errorf("abl-cube: open page does not beat closed on a row-local stream (%.2f >= %.2f)",
			byPage[1], byPage[0])
	}
	return t, nil
}
