package experiments

import (
	"strconv"
	"strings"
	"testing"

	"mac3d/internal/workloads"
)

func testSuite() *Suite {
	return NewSuite(Options{
		Scale:      workloads.Tiny,
		Seed:       1,
		Benchmarks: []string{"sg", "bfs"},
	})
}

// cell parses a numeric table cell.
func cell(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

func TestSuiteCachesRuns(t *testing.T) {
	s := testSuite()
	a, err := s.MAC("sg", 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.MAC("sg", 8)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("identical runs not cached")
	}
	tr1, _ := s.Trace("sg", 8)
	tr2, _ := s.Trace("sg", 8)
	if tr1 != tr2 {
		t.Fatal("traces not cached")
	}
}

func TestSuiteUnknownBenchmark(t *testing.T) {
	s := NewSuite(Options{Scale: workloads.Tiny, Benchmarks: []string{"nope"}})
	if _, err := s.MAC("nope", 8); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestFig01MissRateHighForIrregular(t *testing.T) {
	s := testSuite()
	tab, err := s.Fig01MissRate()
	if err != nil {
		t.Fatal(err)
	}
	// rows: sg, bfs, average — all with positive miss rates.
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	avg := cell(t, tab.Rows[2][3])
	if avg <= 5 || avg > 100 {
		t.Fatalf("avg miss rate %v%% implausible", avg)
	}
}

func TestFig01SizeSweepShape(t *testing.T) {
	s := testSuite()
	tab := s.Fig01SizeSweep()
	if len(tab.Rows) != 10 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	first, last := tab.Rows[0], tab.Rows[len(tab.Rows)-1]
	seqLast, rndLast := cell(t, last[1]), cell(t, last[2])
	rndFirst := cell(t, first[2])
	// Sequential stays low at every size; random grows massively
	// once the dataset exceeds the 8MB cache (paper: 2.36% vs
	// 63.85% at 32GB).
	if seqLast > 10 {
		t.Fatalf("sequential miss rate at 32GB = %v%%", seqLast)
	}
	if rndLast < 30 {
		t.Fatalf("random miss rate at 32GB = %v%%", rndLast)
	}
	if rndLast < 5*rndFirst {
		t.Fatalf("random miss rate did not grow: %v%% -> %v%%", rndFirst, rndLast)
	}
}

func TestFig03MatchesPaperExactly(t *testing.T) {
	tab := Fig03BandwidthEfficiency()
	want := map[string]string{"16": "33.33", "256": "88.89"}
	for _, row := range tab.Rows {
		if exp, ok := want[row[0]]; ok && row[1] != exp {
			t.Fatalf("size %s: efficiency %s, want %s", row[0], row[1], exp)
		}
	}
}

func TestFig09OfferedLoadAboveServiceRate(t *testing.T) {
	s := testSuite()
	tab, err := s.Fig09RequestRate()
	if err != nil {
		t.Fatal(err)
	}
	// Offered RPC must exceed the MAC's 0.5/cycle service rate for
	// every benchmark (the Figure 9 argument).
	for _, row := range tab.Rows[:len(tab.Rows)-1] {
		if rpc := cell(t, row[3]); rpc < 0.5 {
			t.Fatalf("%s: offered RPC %v below service rate", row[0], rpc)
		}
	}
}

func TestFig10ThreadTrend(t *testing.T) {
	s := testSuite()
	tab, err := s.Fig10CoalescingEfficiency()
	if err != nil {
		t.Fatal(err)
	}
	avg := tab.Rows[len(tab.Rows)-1]
	e2, e8 := cell(t, avg[1]), cell(t, avg[3])
	if e8 <= 0 || e2 <= 0 {
		t.Fatalf("efficiencies %v / %v", e2, e8)
	}
	// Paper: efficiency grows with threads (48.37% -> 52.86%).
	if e8 < e2-5 {
		t.Fatalf("8-thread efficiency %v%% far below 2-thread %v%%", e8, e2)
	}
}

func TestFig11MonotoneTrend(t *testing.T) {
	s := testSuite()
	tab, err := s.Fig11ARQSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	first := cell(t, tab.Rows[0][1])
	last := cell(t, tab.Rows[len(tab.Rows)-1][1])
	if last <= first {
		t.Fatalf("no growth with ARQ entries: %v -> %v", first, last)
	}
}

func TestFig12ConflictsRemoved(t *testing.T) {
	s := testSuite()
	tab, err := s.Fig12BankConflicts()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows[:len(tab.Rows)-2] {
		if removed := cell(t, row[3]); removed <= 0 {
			t.Fatalf("%s: conflicts removed %v", row[0], removed)
		}
	}
}

func TestFig13RawIsOneThird(t *testing.T) {
	s := testSuite()
	tab, err := s.Fig13BandwidthEfficiency()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if raw := cell(t, row[2]); raw < 33.3 || raw > 33.4 {
			t.Fatalf("raw efficiency %v, want 33.33", raw)
		}
	}
	// MAC beats raw everywhere.
	for _, row := range tab.Rows[:len(tab.Rows)-1] {
		if cell(t, row[1]) <= 33.4 {
			t.Fatalf("%s: MAC efficiency %s not above raw", row[0], row[1])
		}
	}
}

func TestFig14SavesBandwidth(t *testing.T) {
	s := testSuite()
	tab, err := s.Fig14BandwidthSaving()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows[:len(tab.Rows)-1] {
		if strings.HasPrefix(row[3], "-") {
			t.Fatalf("%s: negative saving %s", row[0], row[3])
		}
	}
}

func TestFig15TargetsWithinCapacity(t *testing.T) {
	s := testSuite()
	tab, err := s.Fig15TargetsPerEntry()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows[:len(tab.Rows)-1] {
		avg := cell(t, row[1])
		if avg < 1 || avg > 12 {
			t.Fatalf("%s: avg targets %v outside [1,12]", row[0], avg)
		}
		if maxv := cell(t, row[2]); maxv > 12 {
			t.Fatalf("%s: max targets %v above the 64B-entry capacity", row[0], maxv)
		}
	}
}

func TestFig16MatchesPaperAnchors(t *testing.T) {
	tab := Fig16SpaceOverhead()
	// Paper anchors: 8 entries -> 512B ARQ; 256 -> 16KB; 32 -> 2062B total.
	for _, row := range tab.Rows {
		switch row[0] {
		case "8":
			if row[1] != "512" {
				t.Fatalf("8 entries: ARQ %sB", row[1])
			}
		case "32":
			if row[3] != "2062" {
				t.Fatalf("32 entries: total %sB, want 2062", row[3])
			}
		case "256":
			if row[1] != "16384" {
				t.Fatalf("256 entries: ARQ %sB", row[1])
			}
		}
	}
}

func TestFig17PositiveSpeedup(t *testing.T) {
	s := testSuite()
	tab, err := s.Fig17Speedup()
	if err != nil {
		t.Fatal(err)
	}
	avg := cell(t, tab.Rows[len(tab.Rows)-1][3])
	if avg <= 0 {
		t.Fatalf("average memory speedup %v%%", avg)
	}
}

func TestAblationsRun(t *testing.T) {
	s := testSuite()
	if _, err := s.AblationFillMode(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AblationMSHR(); err != nil {
		t.Fatal(err)
	}
	tab, err := s.AblationLSQDepth()
	if err != nil {
		t.Fatal(err)
	}
	// The offered-load effect: efficiency at LSQ=256 far above LSQ=1.
	var eff1, eff256 float64
	for _, row := range tab.Rows {
		if row[0] != "sg" {
			continue
		}
		switch row[1] {
		case "1":
			eff1 = cell(t, row[2])
		case "256":
			eff256 = cell(t, row[2])
		}
	}
	if eff256 <= eff1 {
		t.Fatalf("LSQ sweep shows no offered-load effect: %v vs %v", eff1, eff256)
	}
}

func TestAblationNoCRuns(t *testing.T) {
	s := testSuite()
	// AblationNoC fails itself when any topology loses work or when
	// ring and mesh are indistinguishable, so running it is the test;
	// just check the table has the full sweep.
	tab, err := s.AblationNoC()
	if err != nil {
		t.Fatal(err)
	}
	if want := len(s.ablationSet()) * 3; len(tab.Rows) != want {
		t.Fatalf("abl-noc produced %d rows, want %d", len(tab.Rows), want)
	}
}

func TestPrefetchParallelMatchesSequential(t *testing.T) {
	seq := NewSuite(Options{Scale: workloads.Tiny, Benchmarks: []string{"sg", "bfs"}})
	par := NewSuite(Options{Scale: workloads.Tiny, Benchmarks: []string{"sg", "bfs"}, Parallel: 4})
	if err := par.Prefetch(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"sg", "bfs"} {
		a, err := seq.MAC(name, 8)
		if err != nil {
			t.Fatal(err)
		}
		b, err := par.MAC(name, 8)
		if err != nil {
			t.Fatal(err)
		}
		if a.Cycles != b.Cycles || a.Coalescer.Transactions != b.Coalescer.Transactions {
			t.Fatalf("%s: parallel run diverged from sequential", name)
		}
	}
}

func TestSuiteErrorPropagationConcurrent(t *testing.T) {
	s := NewSuite(Options{Scale: workloads.Tiny, Benchmarks: []string{"bogus"}, Parallel: 2})
	if err := s.Prefetch(); err == nil {
		t.Fatal("prefetch of unknown benchmark succeeded")
	}
	// The error must be sticky for later callers too.
	if _, err := s.MAC("bogus", 8); err == nil {
		t.Fatal("cached error lost")
	}
}

func TestRegistryComplete(t *testing.T) {
	all := All()
	ids := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Fatalf("incomplete entry %+v", e)
		}
		if ids[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		ids[e.ID] = true
	}
	// Every figure and table of the paper must be present.
	for _, want := range []string{
		"fig1", "fig3", "table1", "fig9", "fig10", "fig11",
		"fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
	} {
		if !ids[want] {
			t.Fatalf("missing experiment %s", want)
		}
	}
	if _, err := Find("fig10"); err != nil {
		t.Fatal(err)
	}
	if _, err := Find("bogus"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[uint64]string{
		512:     "512B",
		2 << 10: "2.00KB",
		3 << 20: "3.00MB",
		5 << 30: "5.00GB",
	}
	for in, want := range cases {
		if got := formatBytes(in); got != want {
			t.Fatalf("formatBytes(%d) = %q, want %q", in, got, want)
		}
	}
}
