package experiments

import (
	"mac3d/internal/stats"
)

// AblationFaults sweeps the link CRC error rate over the ablation
// benchmark set, measuring how the retry machinery degrades latency
// and how often the retry budget is exhausted (poisoned responses).
// The 0 column is the fault-free reference — it runs with the fault
// machinery disabled entirely, so it doubles as a regression check
// that injection is a strict no-op at rate zero.
func (s *Suite) AblationFaults() (*stats.Table, error) {
	rates := []float64{0, 1e-4, 1e-3, 1e-2}
	t := stats.NewTable("Ablation: link CRC error rate (fault injection)",
		"benchmark", "crc_rate", "cycles", "avg_latency", "retries",
		"retry_cycles", "poisoned", "failed_reqs")
	for _, name := range s.ablationSet() {
		for _, rate := range rates {
			// Rate 0 shares the plain with-MAC run's cache key: the
			// fault machinery stays disabled.
			res, err := s.MACWithFaults(name, 8, rate)
			if err != nil {
				return nil, err
			}
			t.AddRow(name, rate, uint64(res.Cycles),
				res.RequestLatency.Mean(),
				res.Device.LinkRetries, res.Device.RetryCycles,
				res.Device.PoisonedResponses, res.FailedRequests)
		}
	}
	return t, nil
}
