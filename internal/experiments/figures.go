package experiments

import (
	"fmt"

	"mac3d/internal/addr"
	"mac3d/internal/cache"
	"mac3d/internal/core"
	"mac3d/internal/hmc"
	"mac3d/internal/sim"
	"mac3d/internal/stats"
	"mac3d/internal/trace"
	"mac3d/internal/workloads"
)

// cacheConfigFor scales the Fig. 1 last-level cache with the workload
// scale so that the dataset-to-cache ratio approximates the paper's
// (full-size, often multi-GB datasets against an 8MB LLC — i.e. the
// hot data far exceeds the cache). The miss-rate study uses demand
// fetching, as the paper's argument is about locality, not prefetch
// coverage; the sequential-vs-random sweep (right side) enables the
// stream prefetcher to reproduce the near-zero sequential bars.
func cacheConfigFor(s workloads.Scale) cache.Config {
	cfg := cache.DefaultConfig()
	cfg.Prefetch = false
	switch s {
	case workloads.Tiny:
		// Tiny footprints are 10KB-1MB; a 4KB cache keeps the
		// paper's dataset >> cache premise.
		cfg.SizeBytes = 4 << 10
		cfg.Ways = 4
	case workloads.Small:
		// Small hot sets are a few hundred KB to a few MB.
		cfg.SizeBytes = 32 << 10
		cfg.Ways = 8
	default:
		cfg.SizeBytes = 8 << 20
	}
	return cfg
}

// Fig01MissRate reproduces the left side of Figure 1: the cache miss
// rate of each benchmark on a cache-based host (avg 49.09% in the
// paper).
func (s *Suite) Fig01MissRate() (*stats.Table, error) {
	t := stats.NewTable("Figure 1 (left): cache miss rate per benchmark",
		"benchmark", "accesses", "misses", "miss_rate_%")
	ccfg := cacheConfigFor(s.opts.Scale)
	var rates []float64
	for _, name := range s.opts.Benchmarks {
		tr, err := s.Trace(name, 8)
		if err != nil {
			return nil, err
		}
		c, err := cache.New(ccfg)
		if err != nil {
			return nil, err
		}
		// Replay thread streams round-robin, as a shared LLC
		// observes them.
		replayInterleaved(tr, func(e trace.Event) {
			if e.Op.IsMemory() && !addr.IsSPM(e.Addr) {
				c.Access(e.Addr)
			}
		})
		st := c.Stats()
		t.AddRow(name, st.Accesses, st.Misses, 100*st.MissRate())
		rates = append(rates, st.MissRate())
	}
	t.AddRow("average", "", "", 100*stats.Mean(rates))
	return t, nil
}

// Fig01SizeSweep reproduces the right side of Figure 1: sequential
// (A[i]=B[i]) versus random (A[i]=B[C[i]]) SG miss rates as the
// dataset grows from 80KB to 32GB (2.36% vs 63.85% in the paper).
func (s *Suite) Fig01SizeSweep() *stats.Table {
	t := stats.NewTable("Figure 1 (right): SG miss rate vs dataset size",
		"dataset", "sequential_%", "random_%")
	ccfg := cache.DefaultConfig() // fixed 8MB LLC, as the paper's host
	ccfg.Prefetch = true
	const samples = 1 << 21
	for _, bytes := range []uint64{
		80 << 10, 320 << 10, 1280 << 10, 5 << 20, 20 << 20,
		80 << 20, 320 << 20, 1280 << 20, 8 << 30, 32 << 30,
	} {
		elems := bytes / 8
		// Sequential: stream B then store A (two address streams).
		seq := cache.MustNew(ccfg)
		n := samples
		if uint64(n) > elems {
			n = int(elems)
		}
		aBase := uint64(1) << 45 // far from B
		for i := 0; i < n; i++ {
			seq.Access(uint64(i) * 8)
			seq.Access(aBase + uint64(i)*8)
		}
		// Random: sequential C and A streams plus random B gather.
		rnd := cache.MustNew(ccfg)
		rng := sim.NewRNG(s.opts.Seed + bytes)
		cBase := uint64(1) << 44
		for i := 0; i < n; i++ {
			rnd.Access(cBase + uint64(i)*8)    // C[i]
			rnd.Access(rng.Uint64n(elems) * 8) // B[C[i]]
			rnd.Access(aBase + uint64(i)*8)    // A[i]
		}
		t.AddRow(formatBytes(bytes),
			100*seq.Stats().MissRate(), 100*rnd.Stats().MissRate())
	}
	return t
}

// Fig03BandwidthEfficiency reproduces Figure 3: Eq. 1 bandwidth
// efficiency and control overhead per request size (analytic).
func Fig03BandwidthEfficiency() *stats.Table {
	t := stats.NewTable("Figure 3: bandwidth efficiency and overhead vs request size",
		"request_bytes", "efficiency_%", "overhead_%")
	for size := uint32(16); size <= 256; size *= 2 {
		e := hmc.Efficiency(size)
		t.AddRow(size, 100*e, 100*(1-e))
	}
	return t
}

// Table1 renders the simulation configuration of the paper's Table 1
// alongside this reproduction's effective values.
func Table1() *stats.Table {
	t := stats.NewTable("Table 1: simulation environment configuration",
		"parameter", "value")
	hcfg := hmc.DefaultConfig()
	mcfg := core.DefaultConfig()
	clock := sim.NewClock(0)
	t.AddRow("ISA (paper)", "RV64IMAFDC (instrumented Go kernels here)")
	t.AddRow("Cores", 8)
	t.AddRow("CPU frequency", "3.3 GHz")
	t.AddRow("SPM", "1MB per core")
	t.AddRow("Avg SPM access latency", "~1 ns")
	t.AddRow("HMC", fmt.Sprintf("%d links, 8GB, 256B rows, %d vaults x %d banks",
		hcfg.Links, hcfg.Vaults, hcfg.BanksPerVault))
	t.AddRow("Avg HMC access latency", fmt.Sprintf("%.0f ns (unloaded 16B read)",
		clock.NanosForCycles(hcfg.UnloadedReadLatency(16))))
	t.AddRow("ARQ", fmt.Sprintf("%d entries, 64B per entry", mcfg.ARQ.Entries))
	return t
}

// Fig09RequestRate reproduces Figure 9: raw requests per cycle offered
// to the MAC per benchmark (Eq. 2, computed at IPC=1 as the paper's
// functional Spike traces imply), plus the timed model's achieved RPC.
func (s *Suite) Fig09RequestRate() (*stats.Table, error) {
	t := stats.NewTable("Figure 9: raw requests per cycle (Eq. 2)",
		"benchmark", "RPI", "mem_access_rate", "offered_RPC", "achieved_RPC")
	var offered []float64
	for _, name := range s.opts.Benchmarks {
		res, err := s.MAC(name, 8)
		if err != nil {
			return nil, err
		}
		off := 1.0 * res.RPI() * 8 * res.MemAccessRate()
		offered = append(offered, off)
		t.AddRow(name, res.RPI(), res.MemAccessRate(), off, res.RPC())
	}
	t.AddRow("average", "", "", stats.Mean(offered), "")
	return t, nil
}

// Fig10CoalescingEfficiency reproduces Figure 10: per-benchmark
// coalescing efficiency at 2, 4 and 8 threads (paper averages:
// 48.37%, 50.51%, 52.86%).
func (s *Suite) Fig10CoalescingEfficiency() (*stats.Table, error) {
	t := stats.NewTable("Figure 10: coalescing efficiency (%)",
		"benchmark", "2_threads", "4_threads", "8_threads")
	sums := [3]float64{}
	for _, name := range s.opts.Benchmarks {
		var row [3]float64
		for i, th := range []int{2, 4, 8} {
			res, err := s.MAC(name, th)
			if err != nil {
				return nil, err
			}
			row[i] = 100 * coalescingEfficiency(res)
			sums[i] += row[i]
		}
		t.AddRow(name, row[0], row[1], row[2])
	}
	n := float64(len(s.opts.Benchmarks))
	t.AddRow("average", sums[0]/n, sums[1]/n, sums[2]/n)
	return t, nil
}

// Fig11ARQSweep reproduces Figure 11: average coalescing efficiency as
// the ARQ grows from 8 to 256 entries (paper: 37.58% to 56.04%).
func (s *Suite) Fig11ARQSweep() (*stats.Table, error) {
	t := stats.NewTable("Figure 11: coalescing efficiency vs ARQ entries",
		"arq_entries", "avg_efficiency_%", "gain_vs_prev_%")
	prev := 0.0
	for _, entries := range []int{8, 16, 32, 64, 128, 256} {
		var sum float64
		for _, name := range s.opts.Benchmarks {
			res, err := s.MACWithARQ(name, 8, entries)
			if err != nil {
				return nil, err
			}
			sum += 100 * coalescingEfficiency(res)
		}
		avg := sum / float64(len(s.opts.Benchmarks))
		gain := 0.0
		if prev > 0 {
			gain = (avg - prev) / prev * 100
		}
		t.AddRow(entries, avg, gain)
		prev = avg
	}
	return t, nil
}

// Fig12BankConflicts reproduces Figure 12: bank conflicts removed by
// MAC per benchmark.
func (s *Suite) Fig12BankConflicts() (*stats.Table, error) {
	t := stats.NewTable("Figure 12: bank conflict reduction",
		"benchmark", "without_MAC", "with_MAC", "removed")
	var total int64
	for _, name := range s.opts.Benchmarks {
		w, err := s.MAC(name, 8)
		if err != nil {
			return nil, err
		}
		wo, err := s.Raw(name, 8)
		if err != nil {
			return nil, err
		}
		removed := int64(wo.Device.BankConflicts) - int64(w.Device.BankConflicts)
		total += removed
		t.AddRow(name, wo.Device.BankConflicts, w.Device.BankConflicts, removed)
	}
	t.AddRow("total", "", "", total)
	t.AddRow("average", "", "", total/int64(len(s.opts.Benchmarks)))
	return t, nil
}

// Fig13BandwidthEfficiency reproduces Figure 13: Eq. 1 bandwidth
// efficiency of coalesced traffic versus 16B raw requests (paper:
// 70.35% vs 33.33%).
func (s *Suite) Fig13BandwidthEfficiency() (*stats.Table, error) {
	t := stats.NewTable("Figure 13: bandwidth efficiency (%)",
		"benchmark", "with_MAC", "raw_16B")
	var sum float64
	for _, name := range s.opts.Benchmarks {
		w, err := s.MAC(name, 8)
		if err != nil {
			return nil, err
		}
		wo, err := s.Raw(name, 8)
		if err != nil {
			return nil, err
		}
		sum += 100 * w.Device.BandwidthEfficiency()
		t.AddRow(name, 100*w.Device.BandwidthEfficiency(), 100*wo.Device.BandwidthEfficiency())
	}
	t.AddRow("average", sum/float64(len(s.opts.Benchmarks)), 100.0/3.0)
	return t, nil
}

// Fig14BandwidthSaving reproduces Figure 14: control-overhead bytes
// avoided by request aggregation (paper: avg 22.76GB at full scale).
func (s *Suite) Fig14BandwidthSaving() (*stats.Table, error) {
	t := stats.NewTable("Figure 14: control bandwidth saved",
		"benchmark", "control_without", "control_with", "saved")
	var total int64
	for _, name := range s.opts.Benchmarks {
		w, err := s.MAC(name, 8)
		if err != nil {
			return nil, err
		}
		wo, err := s.Raw(name, 8)
		if err != nil {
			return nil, err
		}
		saved := int64(wo.Device.ControlBytes) - int64(w.Device.ControlBytes)
		total += saved
		t.AddRow(name, formatBytes(wo.Device.ControlBytes),
			formatBytes(w.Device.ControlBytes), formatBytes(uint64(saved)))
	}
	t.AddRow("average", "", "", formatBytes(uint64(total/int64(len(s.opts.Benchmarks)))))
	return t, nil
}

// Fig15TargetsPerEntry reproduces Figure 15: the average number of
// request targets merged per ARQ entry (paper: avg 2.13, max 3.14).
func (s *Suite) Fig15TargetsPerEntry() (*stats.Table, error) {
	t := stats.NewTable("Figure 15: average targets per ARQ entry",
		"benchmark", "avg_targets", "max_observed")
	var avgs []float64
	for _, name := range s.opts.Benchmarks {
		res, err := s.MAC(name, 8)
		if err != nil {
			return nil, err
		}
		avg := res.Coalescer.AvgTargetsPerTx()
		avgs = append(avgs, avg)
		t.AddRow(name, avg, res.Coalescer.TargetsPerTx.Max())
	}
	t.AddRow("average", stats.Mean(avgs), "")
	return t, nil
}

// Fig16SpaceOverhead reproduces Figure 16: the MAC area model as the
// ARQ grows (paper: 512B at 8 entries to 16KB at 256; total 2062B at
// the evaluated 32 entries).
func Fig16SpaceOverhead() *stats.Table {
	t := stats.NewTable("Figure 16: MAC space overhead vs ARQ entries",
		"arq_entries", "arq_bytes", "builder_bytes", "total_bytes", "comparators")
	for _, entries := range []int{8, 16, 32, 64, 128, 256} {
		cfg := core.Config{ARQ: core.AggregatorConfig{Entries: entries, MaxTargets: 12, PopInterval: 2}}
		t.AddRow(entries, cfg.ARQ.SpaceBytes(), core.BuilderSpaceBytes, cfg.SpaceBytes(), entries)
	}
	return t
}

// Fig17Speedup reproduces Figure 17: the memory system speedup from
// MAC, measured as the relative reduction of mean memory access
// latency (paper: avg 60.73%, >70% for MG, GRAPPOLO, SG, SPARSELU).
func (s *Suite) Fig17Speedup() (*stats.Table, error) {
	t := stats.NewTable("Figure 17: memory system speedup (%)",
		"benchmark", "avg_latency_without", "avg_latency_with", "speedup_%")
	var speedups []float64
	for _, name := range s.opts.Benchmarks {
		w, err := s.MAC(name, 8)
		if err != nil {
			return nil, err
		}
		wo, err := s.Raw(name, 8)
		if err != nil {
			return nil, err
		}
		sp := 0.0
		if m := wo.RequestLatency.Mean(); m > 0 {
			sp = 100 * (1 - w.RequestLatency.Mean()/m)
		}
		speedups = append(speedups, sp)
		t.AddRow(name, wo.RequestLatency.Mean(), w.RequestLatency.Mean(), sp)
	}
	t.AddRow("average", "", "", stats.Mean(speedups))
	return t, nil
}

// replayInterleaved feeds a trace's thread streams to f in round-robin
// order, approximating the arrival order at a shared resource.
func replayInterleaved(tr *trace.Trace, f func(trace.Event)) {
	idx := make([]int, len(tr.Threads))
	for {
		progressed := false
		for t, th := range tr.Threads {
			if idx[t] < len(th) {
				f(th[idx[t]])
				idx[t]++
				progressed = true
			}
		}
		if !progressed {
			return
		}
	}
}

// formatBytes renders a byte count with a binary unit.
func formatBytes[T uint64 | int64](v T) string {
	b := float64(v)
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGB", b/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMB", b/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2fKB", b/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", b)
	}
}
