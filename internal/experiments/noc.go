package experiments

import (
	"fmt"

	"mac3d/internal/noc"
	"mac3d/internal/numa"
	"mac3d/internal/stats"
)

// NUMANoC runs one benchmark on the multi-node system under the given
// interconnect topology. Multi-node runs share the suite's trace cache
// but not its run cache (they are cheap next to the cpu campaigns and
// no two figures share one).
func (s *Suite) NUMANoC(name string, threads, nodes int, topo string) (*numa.Result, error) {
	tr, err := s.Trace(name, threads)
	if err != nil {
		return nil, err
	}
	cfg := numa.DefaultConfig()
	cfg.Nodes = nodes
	ncfg := noc.Config{Topology: topo, LinkLatency: 83} // ~25ns per hop
	if topo == noc.Ideal {
		// The legacy one-way crossbar latency, so the ideal column is
		// the pre-NoC baseline the routed fabrics are judged against.
		ncfg.LinkLatency = 330
	}
	cfg.NoC = ncfg
	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	s.progress("simulating %s (numa, %d nodes, %s fabric)", name, nodes, topo)
	return numa.Run(cfg, tr)
}

// AblationNoC sweeps the inter-node interconnect topology — the ideal
// contention-free crossbar against the routed ring and 2D mesh — over
// the ablation benchmark set at eight nodes. Every topology must
// retire exactly the same work, and the ring and mesh must be
// distinguishable (different finish time or hop structure) on at
// least one benchmark; both are checked, not just reported.
func (s *Suite) AblationNoC() (*stats.Table, error) {
	const nodes, threads = 8, 8
	topos := []string{noc.Ideal, noc.Ring, noc.Mesh}

	t := stats.NewTable("Ablation: interconnect topology (ideal crossbar vs ring vs mesh, 8 nodes)",
		"benchmark", "topology", "cycles", "avg_lat", "remote", "avg_hops",
		"net_lat", "flits", "inject_rejects", "stall_cycles")
	diverged := false
	for _, name := range s.ablationSet() {
		byTopo := make(map[string]*numa.Result, len(topos))
		for _, topo := range topos {
			res, err := s.NUMANoC(name, threads, nodes, topo)
			if err != nil {
				return nil, fmt.Errorf("abl-noc %s/%s: %w", name, topo, err)
			}
			if res.NoC == nil {
				return nil, fmt.Errorf("abl-noc %s/%s: run missing NoC stats", name, topo)
			}
			byTopo[topo] = res
			credit, chaosStalls := res.NoC.StallCycles()
			t.AddRow(name, topo, uint64(res.Cycles), res.RequestLatency.Mean(),
				res.RemoteRequests, res.NoC.AvgHops(), res.NoC.NetLatency.Mean(),
				res.NoC.FlitsSent, res.NoC.InjectRejects, credit+chaosStalls)
		}
		want := byTopo[noc.Ideal].RequestLatency.Count()
		for _, topo := range topos {
			if got := byTopo[topo].RequestLatency.Count(); got != want {
				return nil, fmt.Errorf("abl-noc: %s on %s retired %d requests, ideal retired %d",
					name, topo, got, want)
			}
		}
		ring, mesh := byTopo[noc.Ring], byTopo[noc.Mesh]
		if ring.Cycles != mesh.Cycles || ring.NoC.AvgHops() != mesh.NoC.AvgHops() {
			diverged = true
		}
	}
	if !diverged {
		return nil, fmt.Errorf("abl-noc: ring and mesh indistinguishable on every benchmark at %d nodes", nodes)
	}
	return t, nil
}
