package experiments

import (
	"fmt"
	"sort"

	"mac3d/internal/stats"
)

// Entry describes one reproducible experiment.
type Entry struct {
	// ID is the figure/table identifier, e.g. "fig10".
	ID string
	// Title summarizes what the experiment reproduces.
	Title string
	// Paper states the paper's headline numbers for it.
	Paper string
	// Run produces the table. It may be expensive.
	Run func(s *Suite) (*stats.Table, error)
}

// All returns every experiment in paper order.
func All() []Entry {
	return []Entry{
		{
			ID: "fig1", Title: "Cache miss-rate motivation study (left)",
			Paper: "avg miss rate 49.09% across the benchmarks",
			Run:   func(s *Suite) (*stats.Table, error) { return s.Fig01MissRate() },
		},
		{
			ID: "fig1sweep", Title: "Cache miss-rate motivation study (right)",
			Paper: "SG random 63.85% vs sequential 2.36% at 32GB (>20x growth)",
			Run:   func(s *Suite) (*stats.Table, error) { return s.Fig01SizeSweep(), nil },
		},
		{
			ID: "fig3", Title: "Bandwidth efficiency vs request size (Eq. 1)",
			Paper: "16B: 33.33%; 256B: 88.89% (2.67x)",
			Run:   func(*Suite) (*stats.Table, error) { return Fig03BandwidthEfficiency(), nil },
		},
		{
			ID: "table1", Title: "Simulation environment configuration",
			Paper: "8 cores @ 3.3GHz, 1MB SPM/core, 8GB HMC 4 links, 93ns, 32-entry ARQ",
			Run:   func(*Suite) (*stats.Table, error) { return Table1(), nil },
		},
		{
			ID: "fig9", Title: "Raw requests per cycle (Eq. 2)",
			Paper: "all benchmarks offer >2 requests/cycle; avg 9.32",
			Run:   func(s *Suite) (*stats.Table, error) { return s.Fig09RequestRate() },
		},
		{
			ID: "fig10", Title: "Coalescing efficiency at 2/4/8 threads",
			Paper: "averages 48.37% / 50.51% / 52.86%; >60% for MG, GRAPPOLO, SG, SP, SPARSELU",
			Run:   func(s *Suite) (*stats.Table, error) { return s.Fig10CoalescingEfficiency() },
		},
		{
			ID: "fig11", Title: "Coalescing efficiency vs ARQ entries",
			Paper: "37.58% at 8 entries to 56.04% at 64+; diminishing returns past 32",
			Run:   func(s *Suite) (*stats.Table, error) { return s.Fig11ARQSweep() },
		},
		{
			ID: "fig12", Title: "Bank conflict reduction",
			Paper: "avg 644M conflicts removed, 7.73B total (full-scale datasets)",
			Run:   func(s *Suite) (*stats.Table, error) { return s.Fig12BankConflicts() },
		},
		{
			ID: "fig13", Title: "Bandwidth efficiency with vs without MAC",
			Paper: "70.35% coalesced vs 33.33% raw",
			Run:   func(s *Suite) (*stats.Table, error) { return s.Fig13BandwidthEfficiency() },
		},
		{
			ID: "fig14", Title: "Control bandwidth saved",
			Paper: "avg 22.76GB saved (full-scale datasets)",
			Run:   func(s *Suite) (*stats.Table, error) { return s.Fig14BandwidthSaving() },
		},
		{
			ID: "fig15", Title: "Average targets per ARQ entry",
			Paper: "avg 2.13, max 3.14 (12-target capacity never binding)",
			Run:   func(s *Suite) (*stats.Table, error) { return s.Fig15TargetsPerEntry() },
		},
		{
			ID: "fig16", Title: "MAC space overhead",
			Paper: "512B at 8 entries to 16KB at 256; 2062B total at 32 entries",
			Run:   func(*Suite) (*stats.Table, error) { return Fig16SpaceOverhead(), nil },
		},
		{
			ID: "fig17", Title: "Memory system speedup",
			Paper: "avg 60.73%; >70% for MG, GRAPPOLO, SG, SPARSELU",
			Run:   func(s *Suite) (*stats.Table, error) { return s.Fig17Speedup() },
		},
		{
			ID: "abl-fill", Title: "Ablation: ARQ latency-hiding fill mode",
			Paper: "(beyond paper)",
			Run:   func(s *Suite) (*stats.Table, error) { return s.AblationFillMode() },
		},
		{
			ID: "abl-lsq", Title: "Ablation: LSQ depth / offered load",
			Paper: "(beyond paper)",
			Run:   func(s *Suite) (*stats.Table, error) { return s.AblationLSQDepth() },
		},
		{
			ID: "abl-mshr", Title: "Ablation: MAC vs conventional MSHR",
			Paper: "(beyond paper, quantifies §2.3.2)",
			Run:   func(s *Suite) (*stats.Table, error) { return s.AblationMSHR() },
		},
		{
			ID: "abl-hbm", Title: "Ablation: MAC on HBM (§4.3 applicability)",
			Paper: "(beyond paper's evaluation; §4.3 claims MAC ports unchanged)",
			Run:   func(s *Suite) (*stats.Table, error) { return s.AblationHBM() },
		},
		{
			ID: "abl-window", Title: "Ablation: coalescing window 256B-1KB (§4.3)",
			Paper: "(beyond paper's evaluation; §4.3's enlarged FLIT map/table)",
			Run:   func(s *Suite) (*stats.Table, error) { return s.AblationWindow() },
		},
		{
			ID: "abl-grain", Title: "Ablation: builder floor 64B vs 16B (§4.2 trade)",
			Paper: "(beyond paper; quantifies why the design floors at 64B)",
			Run:   func(s *Suite) (*stats.Table, error) { return s.AblationGrain() },
		},
		{
			ID: "abl-energy", Title: "Ablation: memory-side energy (§2.2.1 power motive)",
			Paper: "(beyond paper; activations + link traffic under one model)",
			Run:   func(s *Suite) (*stats.Table, error) { return s.AblationEnergy() },
		},
		{
			ID: "abl-faults", Title: "Ablation: link CRC error rate (fault injection)",
			Paper: "(beyond paper; HMC §2.2.2 link retry under injected faults)",
			Run:   func(s *Suite) (*stats.Table, error) { return s.AblationFaults() },
		},
		{
			ID: "abl-obs", Title: "Ablation: observability layer cross-check",
			Paper: "(beyond paper; registry vs result occupancy, capture volumes)",
			Run:   func(s *Suite) (*stats.Table, error) { return s.AblationObs() },
		},
		{
			ID: "abl-chaos", Title: "Ablation: chaos sweep (audited conservation)",
			Paper: "(beyond paper; lifecycle invariants under composed adversity)",
			Run:   func(s *Suite) (*stats.Table, error) { return s.AblationChaos() },
		},
		{
			ID: "abl-svcchaos", Title: "Ablation: service chaos sweep (crash-safe macd)",
			Paper: "(beyond paper; journal recovery + client retry under injected crashes)",
			Run:   func(s *Suite) (*stats.Table, error) { return s.AblationServiceChaos() },
		},
		{
			ID: "abl-cluster", Title: "Ablation: cluster chaos sweep (sharded failover)",
			Paper: "(beyond paper; health-checked routing + eager failover conservation)",
			Run:   func(s *Suite) (*stats.Table, error) { return s.AblationCluster() },
		},
		{
			ID: "abl-coalescer", Title: "Ablation: coalescer frontend arena (league table)",
			Paper: "(beyond paper; MAC vs raw vs MSHR vs SIMT warp vs stacked cache)",
			Run:   func(s *Suite) (*stats.Table, error) { return s.AblationCoalescer() },
		},
		{
			ID: "abl-noc", Title: "Ablation: interconnect topology (NUMA fabric)",
			Paper: "(beyond paper; ideal crossbar vs routed ring vs 2D mesh)",
			Run:   func(s *Suite) (*stats.Table, error) { return s.AblationNoC() },
		},
		{
			ID: "abl-cube", Title: "Ablation: cube vault fabric (topology x page x load)",
			Paper: "(beyond paper; HMC intra-cube NoC, open-page rows, quadrant locality)",
			Run:   func(s *Suite) (*stats.Table, error) { return s.AblationCube() },
		},
	}
}

// Find returns the experiment with the given id.
func Find(id string) (Entry, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, 0)
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Entry{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, ids)
}
