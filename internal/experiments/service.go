package experiments

import (
	"context"
	"encoding/json"
	"fmt"

	"mac3d"
	"mac3d/internal/service"
	"mac3d/internal/stats"
)

// Submitter is the slice of the macd surface the sweep needs: submit a
// JSON job spec, await its report bytes. Both service.Local (embedded,
// in-process) and *service.Client (a remote daemon over HTTP) satisfy
// it, so a campaign runs identically against either.
type Submitter interface {
	SubmitJSON(ctx context.Context, data []byte) (service.JobStatus, error)
	AwaitResult(ctx context.Context, id string) ([]byte, error)
}

// ServiceSweep reproduces the Fig. 10-style coalescing sweep through
// the macd job path: every (benchmark, threads) cell is submitted as a
// job spec and the table is built from the returned report JSON. All
// jobs are submitted up front, so a multi-worker daemon executes the
// sweep in parallel, and repeated sweeps against one daemon are served
// from its result cache.
func ServiceSweep(ctx context.Context, api Submitter, opts Options) (*stats.Table, error) {
	o := opts.withDefaults()
	scale, err := serviceScale(o)
	if err != nil {
		return nil, err
	}
	threads := []int{2, 4, 8}

	type cell struct {
		status service.JobStatus
		err    error
	}
	cells := make(map[string]map[int]*cell)
	for _, name := range o.Benchmarks {
		cells[name] = make(map[int]*cell)
		for _, th := range threads {
			spec := service.Spec{
				Kind: service.KindRun,
				Run: &mac3d.RunOptions{
					Workload: name,
					Threads:  th,
					Seed:     o.Seed,
					Scale:    scale,
				},
			}
			data, err := json.Marshal(spec)
			if err != nil {
				return nil, err
			}
			st, err := api.SubmitJSON(ctx, data)
			cells[name][th] = &cell{status: st, err: err}
		}
	}

	t := stats.NewTable("Figure 10 via macd: coalescing efficiency (%)",
		"benchmark", "2_threads", "4_threads", "8_threads")
	sums := [3]float64{}
	for _, name := range o.Benchmarks {
		var row [3]float64
		for i, th := range threads {
			c := cells[name][th]
			if c.err != nil {
				return nil, fmt.Errorf("experiments: submitting %s/%d: %w", name, th, c.err)
			}
			raw, err := api.AwaitResult(ctx, c.status.ID)
			if err != nil {
				return nil, fmt.Errorf("experiments: job %s (%s/%d): %w", c.status.ID, name, th, err)
			}
			var rep mac3d.RunReport
			if err := json.Unmarshal(raw, &rep); err != nil {
				return nil, fmt.Errorf("experiments: report of %s/%d: %w", name, th, err)
			}
			row[i] = 100 * rep.CoalescingEfficiency
			sums[i] += row[i]
		}
		t.AddRow(name, row[0], row[1], row[2])
	}
	n := float64(len(o.Benchmarks))
	t.AddRow("average", sums[0]/n, sums[1]/n, sums[2]/n)
	return t, nil
}

// serviceScale lifts the internal workloads.Scale back to the facade
// Scale the job spec speaks.
func serviceScale(o Options) (mac3d.Scale, error) {
	return mac3d.ParseScale(o.Scale.String())
}
