package experiments

import (
	"context"
	"strconv"
	"strings"
	"testing"
	"time"

	"mac3d/internal/service"
	"mac3d/internal/workloads"
)

func TestServiceSweepThroughLocalDaemon(t *testing.T) {
	svc, err := service.New(service.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	defer svc.Drain(ctx)

	opts := Options{Scale: workloads.Tiny, Seed: 1, Benchmarks: []string{"sg", "is"}}
	tab, err := ServiceSweep(ctx, service.Local{Service: svc}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(opts.Benchmarks)+1 {
		t.Fatalf("rows = %d, want %d", len(tab.Rows), len(opts.Benchmarks)+1)
	}
	for _, row := range tab.Rows {
		for _, cell := range row[1:] {
			v, err := strconv.ParseFloat(strings.TrimSpace(cell), 64)
			if err != nil {
				t.Fatalf("non-numeric cell %q: %v", cell, err)
			}
			if v < 0 || v > 100 {
				t.Fatalf("efficiency %v out of [0, 100]", v)
			}
		}
	}

	// The sweep's results agree with the direct (in-memory Suite)
	// reproduction of the same figure at the same scale and seed.
	direct := NewSuite(opts)
	res, err := direct.MAC("sg", 8)
	if err != nil {
		t.Fatal(err)
	}
	want := 100 * res.Coalescer.CoalescingEfficiency()
	got, err := strconv.ParseFloat(strings.TrimSpace(tab.Rows[0][3]), 64)
	if err != nil {
		t.Fatal(err)
	}
	if diff := got - want; diff > 0.01 || diff < -0.01 {
		t.Fatalf("sg/8 efficiency via macd = %v, direct = %v", got, want)
	}

	// A second sweep against the same daemon is served from the
	// result cache: hit counters rise, execution count does not.
	metric := func(name string) float64 {
		for _, m := range svc.Registry().Snapshot() {
			if m.Name == name {
				return m.Value
			}
		}
		t.Fatalf("metric %s not registered", name)
		return 0
	}
	runsBefore := metric("macd.job.run_us.count")
	if _, err := ServiceSweep(ctx, service.Local{Service: svc}, opts); err != nil {
		t.Fatal(err)
	}
	cells := float64(len(opts.Benchmarks) * 3)
	if hits := metric("macd.cache.hits"); hits < cells {
		t.Fatalf("macd.cache.hits = %g, want >= %g (second sweep fully cached)", hits, cells)
	}
	if runsAfter := metric("macd.job.run_us.count"); runsAfter != runsBefore {
		t.Fatalf("executions grew from %g to %g across a cached sweep", runsBefore, runsAfter)
	}
}
