// Package experiments regenerates every table and figure of the
// paper's evaluation (§2 motivation and §5 results) from the simulator
// stack. Each figure function returns a stats.Table whose rows mirror
// the paper's reported series; cmd/experiments renders them.
//
// Runs are cached inside a Suite: Figures 10–15 and 17 share the same
// underlying simulations, so the whole paper regenerates with one
// timed run per (benchmark, threads, design, ARQ size) combination.
package experiments

import (
	"fmt"
	"sort"
	"sync"

	"mac3d/internal/chaos"
	"mac3d/internal/cpu"
	"mac3d/internal/hmc"
	"mac3d/internal/memreq"
	"mac3d/internal/sim"
	"mac3d/internal/trace"
	"mac3d/internal/workloads"
)

// Options configures a reproduction campaign.
type Options struct {
	// Scale selects workload input sizes (default Small — the
	// scaled-down stand-in for the paper's full-size datasets).
	Scale workloads.Scale
	// Seed drives all synthetic inputs.
	Seed uint64
	// Benchmarks restricts the benchmark set (default: the paper's
	// twelve, in reporting order).
	Benchmarks []string
	// Parallel bounds concurrent simulations (default 1; set to
	// runtime.NumCPU() for campaign runs on multicore hosts). Every
	// simulation is deterministic and independent, so results are
	// identical at any parallelism.
	Parallel int
	// Progress, when non-nil, receives one line per completed run;
	// it must be safe for concurrent use when Parallel > 1.
	Progress func(msg string)
}

// DefaultOptions returns the Small-scale full-benchmark campaign.
func DefaultOptions() Options {
	return Options{Scale: workloads.Small, Seed: 1, Benchmarks: workloads.PaperSet()}
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if len(o.Benchmarks) == 0 {
		o.Benchmarks = workloads.PaperSet()
	}
	if o.Parallel <= 0 {
		o.Parallel = 1
	}
	return o
}

// Suite caches traces and simulation results across figures. All
// methods are safe for concurrent use; Prefetch exploits that to run
// a campaign's simulations in parallel.
type Suite struct {
	opts Options

	mu     sync.Mutex
	sem    chan struct{}
	traces map[traceKey]*trace.Trace
	// traceGen deduplicates concurrent generation of one trace.
	traceGen map[traceKey]*sync.Once
	runs     map[runKey]*cpu.Result
	runGen   map[runKey]*sync.Once
	errs     map[string]error
}

type traceKey struct {
	name    string
	threads int
}

type runKey struct {
	name    string
	threads int
	kind    cpu.CoalescerKind
	arq     int // 0 = default (32)
	lsq     int // 0 = default
	fillOff bool
	hbm     bool    // device profile: HMC (default) or HBM (§4.3)
	window  uint32  // coalescing window bytes; 0 = 256
	fine    bool    // 16B-floor builder ablation
	crc     float64 // link CRC error rate; 0 = faults disabled
	// Chaos/audit/retry dimensions (abl-chaos). The profile is keyed
	// by its canonical String() so equivalent spellings share a run.
	chaos      string // canonical chaos profile; "" = disabled
	chaosSeed  uint64 // chaos RNG seed override; 0 = profile default
	audit      bool   // request-lifecycle conservation ledger
	maxRetries int    // poisoned-completion re-issue budget
	backoff    int64  // cycles between re-issues
	// Cube-internal fabric config, keyed by its canonical rendering
	// (hmc.CubeConfig.String()); "" = the default ideal crossbar.
	cube string
}

// NewSuite builds a suite for opts.
func NewSuite(opts Options) *Suite {
	o := opts.withDefaults()
	return &Suite{
		opts:     o,
		sem:      make(chan struct{}, o.Parallel),
		traces:   make(map[traceKey]*trace.Trace),
		traceGen: make(map[traceKey]*sync.Once),
		runs:     make(map[runKey]*cpu.Result),
		runGen:   make(map[runKey]*sync.Once),
		errs:     make(map[string]error),
	}
}

// Options returns the effective options.
func (s *Suite) Options() Options { return s.opts }

func (s *Suite) progress(format string, args ...any) {
	if s.opts.Progress != nil {
		s.opts.Progress(fmt.Sprintf(format, args...))
	}
}

// Trace returns (generating and caching on demand) the trace of one
// benchmark at the given thread count.
func (s *Suite) Trace(name string, threads int) (*trace.Trace, error) {
	k := traceKey{name, threads}
	s.mu.Lock()
	if tr, ok := s.traces[k]; ok {
		s.mu.Unlock()
		return tr, nil
	}
	once, ok := s.traceGen[k]
	if !ok {
		once = new(sync.Once)
		s.traceGen[k] = once
	}
	s.mu.Unlock()

	errKey := fmt.Sprintf("trace/%s/%d", name, threads)
	once.Do(func() {
		s.progress("generating %s trace (%d threads, %s)", name, threads, s.opts.Scale)
		tr, err := workloads.Generate(name, workloads.Config{
			Threads: threads, Seed: s.opts.Seed, Scale: s.opts.Scale,
		})
		s.mu.Lock()
		defer s.mu.Unlock()
		if err != nil {
			s.errs[errKey] = err
			return
		}
		s.traces[k] = tr
	})

	s.mu.Lock()
	defer s.mu.Unlock()
	if tr, ok := s.traces[k]; ok {
		return tr, nil
	}
	return nil, s.errs[errKey]
}

// run executes (and caches) one timed simulation. Concurrent callers
// requesting the same key share one execution; distinct keys run in
// parallel, bounded by Options.Parallel.
func (s *Suite) run(k runKey) (*cpu.Result, error) {
	s.mu.Lock()
	if res, ok := s.runs[k]; ok {
		s.mu.Unlock()
		return res, nil
	}
	once, ok := s.runGen[k]
	if !ok {
		once = new(sync.Once)
		s.runGen[k] = once
	}
	s.mu.Unlock()

	errKey := fmt.Sprintf("run/%v", k)
	once.Do(func() {
		tr, err := s.Trace(k.name, k.threads)
		if err != nil {
			s.mu.Lock()
			s.errs[errKey] = err
			s.mu.Unlock()
			return
		}
		cfg := cpu.DefaultRunConfig()
		cfg.Kind = k.kind
		if k.arq != 0 {
			cfg.MAC.ARQ.Entries = k.arq
		}
		if k.lsq != 0 {
			cfg.Node.MaxOutstanding = k.lsq
		}
		if k.fillOff {
			cfg.MAC.ARQ.FillMode = false
		}
		if k.hbm {
			cfg.HMC = hmc.HBMConfig()
		}
		if k.fine {
			cfg.MAC.FineBuilder = true
		}
		if k.crc != 0 {
			cfg.HMC.Faults.CRCErrorRate = k.crc
			cfg.HMC.Faults.Seed = s.opts.Seed
		}
		if k.chaos != "" {
			profile, perr := chaos.ParseProfile(k.chaos)
			if perr != nil {
				s.mu.Lock()
				s.errs[errKey] = fmt.Errorf("%s: chaos profile: %w", k.name, perr)
				s.mu.Unlock()
				return
			}
			if k.chaosSeed != 0 {
				profile.Seed = k.chaosSeed
			}
			cfg.Chaos = profile
		}
		if k.cube != "" {
			cube, cerr := hmc.ParseCubeConfig(k.cube)
			if cerr != nil {
				s.mu.Lock()
				s.errs[errKey] = fmt.Errorf("%s: cube config: %w", k.name, cerr)
				s.mu.Unlock()
				return
			}
			cfg.HMC.Cube = cube
		}
		cfg.Audit = k.audit
		if k.maxRetries != 0 {
			cfg.Retry = memreq.RetryPolicy{
				MaxRetries: k.maxRetries,
				Backoff:    sim.Cycle(k.backoff),
			}
		}
		if k.window != 0 {
			cfg.MAC.ARQ.WindowBytes = k.window
			// A wider window merges more raw requests per
			// entry; scale the entry's target buffer with the
			// window so the study isolates the window effect (a
			// 1KB window entry is a 4x larger hardware entry).
			cfg.MAC.ARQ.MaxTargets = 12 * int(k.window) / 256
		}
		s.sem <- struct{}{}
		defer func() { <-s.sem }()
		s.progress("simulating %s (%d threads, %s, arq=%d)", k.name, k.threads, k.kind, cfg.MAC.ARQ.Entries)
		res, err := cpu.Run(cfg, tr)
		s.mu.Lock()
		defer s.mu.Unlock()
		if err != nil {
			s.errs[errKey] = fmt.Errorf("%s/%s: %w", k.name, k.kind, err)
			return
		}
		s.runs[k] = res
	})

	s.mu.Lock()
	defer s.mu.Unlock()
	if res, ok := s.runs[k]; ok {
		return res, nil
	}
	return nil, s.errs[errKey]
}

// Prefetch executes the standard with/without-MAC runs of every
// configured benchmark concurrently (bounded by Options.Parallel),
// warming the cache so subsequent figure generation is instant.
func (s *Suite) Prefetch() error {
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for _, name := range s.opts.Benchmarks {
		for _, threads := range []int{2, 4, 8} {
			wg.Add(1)
			go func(name string, threads int) {
				defer wg.Done()
				_, err := s.MAC(name, threads)
				if err == nil && threads == 8 {
					_, err = s.Raw(name, threads)
				}
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}(name, threads)
		}
	}
	wg.Wait()
	return firstErr
}

// MAC returns the with-MAC run of a benchmark.
func (s *Suite) MAC(name string, threads int) (*cpu.Result, error) {
	return s.run(runKey{name: name, threads: threads, kind: cpu.WithMAC})
}

// Raw returns the without-MAC run of a benchmark.
func (s *Suite) Raw(name string, threads int) (*cpu.Result, error) {
	return s.run(runKey{name: name, threads: threads, kind: cpu.WithoutMAC})
}

// MSHR returns the conventional-coalescer run of a benchmark.
func (s *Suite) MSHR(name string, threads int) (*cpu.Result, error) {
	return s.run(runKey{name: name, threads: threads, kind: cpu.WithMSHR})
}

// Warp returns the SIMT warp-lane coalescer run of a benchmark.
func (s *Suite) Warp(name string, threads int) (*cpu.Result, error) {
	return s.run(runKey{name: name, threads: threads, kind: cpu.WithWarp})
}

// MemCache returns the die-stacked memory-side cache run of a
// benchmark.
func (s *Suite) MemCache(name string, threads int) (*cpu.Result, error) {
	return s.run(runKey{name: name, threads: threads, kind: cpu.WithMemCache})
}

// MACWithARQ returns a with-MAC run at a non-default ARQ depth.
func (s *Suite) MACWithARQ(name string, threads, entries int) (*cpu.Result, error) {
	return s.run(runKey{name: name, threads: threads, kind: cpu.WithMAC, arq: entries})
}

// MACWithLSQ returns a with-MAC run at a non-default LSQ depth.
func (s *Suite) MACWithLSQ(name string, threads, depth int) (*cpu.Result, error) {
	return s.run(runKey{name: name, threads: threads, kind: cpu.WithMAC, lsq: depth})
}

// MACNoFill returns a with-MAC run with the latency-hiding fill mode
// disabled.
func (s *Suite) MACNoFill(name string, threads int) (*cpu.Result, error) {
	return s.run(runKey{name: name, threads: threads, kind: cpu.WithMAC, fillOff: true})
}

// MACOnHBM returns a with-MAC run against the HBM device profile
// (§4.3: same coalescer, 1KB rows, 32B minimum bursts).
func (s *Suite) MACOnHBM(name string, threads int) (*cpu.Result, error) {
	return s.run(runKey{name: name, threads: threads, kind: cpu.WithMAC, hbm: true})
}

// RawOnHBM returns the uncoalesced run against the HBM profile.
func (s *Suite) RawOnHBM(name string, threads int) (*cpu.Result, error) {
	return s.run(runKey{name: name, threads: threads, kind: cpu.WithoutMAC, hbm: true})
}

// MACWithFaults returns a with-MAC run with link-level fault injection
// at the given per-transmission CRC error rate.
func (s *Suite) MACWithFaults(name string, threads int, crcRate float64) (*cpu.Result, error) {
	return s.run(runKey{name: name, threads: threads, kind: cpu.WithMAC, crc: crcRate})
}

// MACChaos returns an audited with-MAC run under the given chaos
// profile, link CRC error rate, and requester-side retry policy. The
// profile is keyed by its canonical rendering, so equivalent spellings
// share one cached simulation.
func (s *Suite) MACChaos(name string, threads int, profile chaos.Profile, seed uint64, crcRate float64, retry memreq.RetryPolicy) (*cpu.Result, error) {
	return s.run(runKey{
		name: name, threads: threads, kind: cpu.WithMAC,
		crc:        crcRate,
		chaos:      profile.String(),
		chaosSeed:  seed,
		audit:      true,
		maxRetries: retry.MaxRetries,
		backoff:    int64(retry.Backoff),
	})
}

// MACChaosCube is MACChaos with the cube-internal fabric routed (the
// given hmc.ParseCubeConfig string), so the chaos sweep also exercises
// the cubelink stressor and the vault fabric's backpressure paths.
func (s *Suite) MACChaosCube(name string, threads int, profile chaos.Profile, seed uint64, crcRate float64, retry memreq.RetryPolicy, cube string) (*cpu.Result, error) {
	return s.run(runKey{
		name: name, threads: threads, kind: cpu.WithMAC,
		crc:        crcRate,
		chaos:      profile.String(),
		chaosSeed:  seed,
		audit:      true,
		maxRetries: retry.MaxRetries,
		backoff:    int64(retry.Backoff),
		cube:       cube,
	})
}

// MACFineBuilder returns a with-MAC run using the 16B-floor builder.
func (s *Suite) MACFineBuilder(name string, threads int) (*cpu.Result, error) {
	return s.run(runKey{name: name, threads: threads, kind: cpu.WithMAC, fine: true})
}

// MACWithWindow returns a with-MAC run at a non-default coalescing
// window (the §4.3 wide FLIT map/table), optionally on the HBM
// profile whose 1KB rows match the 1KB window.
func (s *Suite) MACWithWindow(name string, threads int, window uint32, hbm bool) (*cpu.Result, error) {
	return s.run(runKey{name: name, threads: threads, kind: cpu.WithMAC, window: window, hbm: hbm})
}

// coalescingEfficiency computes the Fig. 10/11 metric from a MAC run
// alone: raw requests in versus transactions out.
func coalescingEfficiency(res *cpu.Result) float64 {
	return res.Coalescer.CoalescingEfficiency()
}

// sortedSizes returns the keys of a size histogram in ascending order.
func sortedSizes(m map[uint32]uint64) []uint32 {
	out := make([]uint32, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
