package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"mac3d"
	"mac3d/internal/service"
	"mac3d/internal/stats"
	"mac3d/internal/svcchaos"
)

// svcChaosProfile is the adversity the abl-svcchaos sweep runs under:
// workers killed mid-run (abandoning jobs un-finalized, as a real
// crash would), slow-shard stalls, HTTP request delays, and dropped
// connections. Rates are set so that, with the small sweep job count,
// every seed sees several kills and drops while the client's retry
// budget still converges.
func svcChaosProfile(seed uint64) svcchaos.Profile {
	return svcchaos.Profile{
		KillRate:  0.4,
		StallRate: 0.3, StallMs: 30,
		DelayRate: 0.2, DelayMs: 5,
		DropRate: 0.15,
		Seed:     seed,
	}
}

// svcChaosJob is one sweep cell tracked across the crash.
type svcChaosJob struct {
	name    string
	threads int
	data    []byte // canonical spec bytes
	id      string // job ID from the chaotic daemon; "" if submit failed
}

// AblationServiceChaos is the service-layer analogue of AblationChaos:
// a crash/recovery conservation sweep over the macd job path. Per
// seed, a journaled daemon is run behind a chaos-wrapped listener and
// handler with a chaos-wrapped runner; the resilient client submits
// the sweep's job set through drops, delays and worker kills; the
// daemon is then crashed mid-sweep (listener torn down, journal cut
// mid-write) and restarted chaos-free on the same journal directory.
// The experiment fails unless every job reaches exactly one terminal
// state per admission epoch (VerifyJournal), every result is
// byte-identical to a chaos-free baseline, and the original job IDs
// survive the restart (AwaitResult resumes by ID).
func (s *Suite) AblationServiceChaos() (*stats.Table, error) {
	seeds := []uint64{1, 2, 3}
	jobs, err := s.svcChaosJobs()
	if err != nil {
		return nil, err
	}

	// Chaos-free baseline, computed once in process: the journal and
	// the chaos path must not change a single result byte.
	baseline, err := s.svcChaosBaseline(jobs)
	if err != nil {
		return nil, err
	}

	t := stats.NewTable("Ablation: service chaos sweep (crash-safe conservation)",
		"seed", "jobs", "killed", "stalls", "drops", "requeued",
		"replayed", "corrupt", "retries", "breaker_opens", "violations")
	for _, seed := range seeds {
		row, err := s.svcChaosSeed(seed, jobs, baseline)
		if err != nil {
			return nil, fmt.Errorf("abl-svcchaos seed %d: %w", seed, err)
		}
		t.AddRow(seed, uint64(len(jobs)), row.killed, row.stalls, row.drops,
			row.requeued, row.replayed, row.corrupt, row.retries,
			row.breakerOpens, row.violations)
	}
	return t, nil
}

// svcChaosJobs builds the sweep's job set: the ablation benchmarks at
// two thread counts each.
func (s *Suite) svcChaosJobs() ([]*svcChaosJob, error) {
	scale, err := serviceScale(s.opts)
	if err != nil {
		return nil, err
	}
	var jobs []*svcChaosJob
	for _, name := range s.ablationSet() {
		for _, th := range []int{2, 4} {
			spec := service.Spec{
				Kind: service.KindRun,
				Run: &mac3d.RunOptions{
					Workload: name, Threads: th,
					Seed: s.opts.Seed, Scale: scale,
				},
			}
			data, err := json.Marshal(spec)
			if err != nil {
				return nil, err
			}
			jobs = append(jobs, &svcChaosJob{name: name, threads: th, data: data})
		}
	}
	return jobs, nil
}

// svcChaosBaseline runs every sweep job through a plain in-process
// service — no journal, no chaos — and returns hash -> report bytes.
func (s *Suite) svcChaosBaseline(jobs []*svcChaosJob) (map[string][]byte, error) {
	svc, err := service.New(service.Config{Workers: 2})
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	defer svc.Drain(ctx)

	api := service.Local{Service: svc}
	baseline := make(map[string][]byte)
	for _, j := range jobs {
		st, err := api.SubmitJSON(ctx, j.data)
		if err != nil {
			return nil, fmt.Errorf("baseline submit %s/%d: %w", j.name, j.threads, err)
		}
		raw, err := api.AwaitResult(ctx, st.ID)
		if err != nil {
			return nil, fmt.Errorf("baseline %s/%d: %w", j.name, j.threads, err)
		}
		baseline[st.Hash] = raw
	}
	return baseline, nil
}

type svcChaosRow struct {
	killed, stalls, drops       uint64
	requeued, replayed, corrupt uint64
	retries, breakerOpens       uint64
	violations                  uint64
}

// svcChaosSeed runs one seed's crash/recovery cycle and checks its
// invariants against the baseline.
func (s *Suite) svcChaosSeed(seed uint64, jobs []*svcChaosJob, baseline map[string][]byte) (*svcChaosRow, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	dir, err := os.MkdirTemp("", fmt.Sprintf("svcchaos-seed%d-", seed))
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	in := svcchaos.MustNew(svcChaosProfile(seed))

	// Phase 1: the chaotic daemon. Journaled, chaos-wrapped runner,
	// served over a real TCP listener that drops connections and a
	// handler that delays requests.
	svcA, err := service.New(service.Config{
		Workers: 2, JournalDir: dir, WrapRunner: in.WrapRunner,
	})
	if err != nil {
		return nil, err
	}
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srvA := &http.Server{Handler: in.Middleware(service.Handler(svcA))}
	go srvA.Serve(in.Listener(inner))

	client := &service.Client{
		BaseURL:        "http://" + inner.Addr().String(),
		PollInterval:   10 * time.Millisecond,
		PollMax:        100 * time.Millisecond,
		AttemptTimeout: 5 * time.Second,
		Retry: service.RetryPolicy{
			MaxAttempts: 8, BaseDelay: 10 * time.Millisecond,
			MaxDelay: 200 * time.Millisecond, Multiplier: 2,
			Jitter: 0.2, Seed: seed,
		},
		Breaker: &service.Breaker{FailureThreshold: 4, Cooldown: 100 * time.Millisecond},
	}

	s.progress("abl-svcchaos seed %d: submitting %d jobs under %s", seed, len(jobs), svcChaosProfile(seed))
	for _, j := range jobs {
		j.id = "" // reset from a previous seed
		st, err := client.SubmitJSON(ctx, j.data)
		if err != nil {
			// The drop/kill storm can exhaust even the generous retry
			// budget; the spec is resubmitted after the restart.
			continue
		}
		j.id = st.ID
	}

	// Let the sweep make partial progress, then crash the daemon
	// mid-flight: tear the listener down first (no response can be
	// delivered after Close returns, so every ID the client holds is
	// journaled), then cut the journal mid-write.
	time.Sleep(300 * time.Millisecond)
	srvA.Close()
	svcA.Kill()

	// Phase 2: restart chaos-free on the same journal directory.
	svcB, err := service.New(service.Config{Workers: 2, JournalDir: dir})
	if err != nil {
		return nil, fmt.Errorf("restart: %w", err)
	}
	rec := svcB.Recovery()
	if rec == nil {
		return nil, fmt.Errorf("restart produced no recovery report")
	}
	s.progress("abl-svcchaos seed %d: recovered: %s", seed, rec)
	innerB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srvB := &http.Server{Handler: service.Handler(svcB)}
	go srvB.Serve(innerB)
	defer srvB.Close()
	client.BaseURL = "http://" + innerB.Addr().String()

	// Resubmit every spec (idempotent: content addressing coalesces or
	// cache-hits) to cover submissions that never reached the journal,
	// then await both the fresh and the pre-crash job IDs.
	for _, j := range jobs {
		st, err := client.SubmitJSON(ctx, j.data)
		if err != nil {
			return nil, fmt.Errorf("resubmit %s/%d: %w", j.name, j.threads, err)
		}
		want, ok := baseline[st.Hash]
		if !ok {
			return nil, fmt.Errorf("%s/%d: hash %s not in baseline", j.name, j.threads, st.Hash)
		}
		ids := []string{st.ID}
		if j.id != "" && j.id != st.ID {
			ids = append(ids, j.id)
		}
		for _, id := range ids {
			raw, err := client.AwaitResult(ctx, id)
			if err != nil {
				return nil, fmt.Errorf("await %s (%s/%d): %w", id, j.name, j.threads, err)
			}
			if string(raw) != string(want) {
				return nil, fmt.Errorf("%s/%d: result of %s differs from chaos-free baseline (%d vs %d bytes)",
					j.name, j.threads, id, len(raw), len(want))
			}
		}
	}

	// Settle and audit the journal: every admitted job must show
	// exactly one terminal state per admission epoch, and every sweep
	// spec must have converged to done.
	if err := svcB.Drain(ctx); err != nil {
		return nil, fmt.Errorf("drain: %w", err)
	}
	recs, damage, err := service.ReadJournal(dir)
	if err != nil {
		return nil, fmt.Errorf("reading journal: %w", err)
	}
	if damage != nil {
		return nil, fmt.Errorf("journal damaged after clean drain: %s at offset %d", damage.Reason, damage.Offset)
	}
	violations := service.VerifyJournal(recs)
	if len(violations) != 0 {
		return nil, fmt.Errorf("journal violations: %v", violations)
	}
	final := service.FoldFinalStates(recs)
	done := make(map[string]bool)
	for _, st := range final {
		if st.State == service.StateDone {
			done[st.Hash] = true
		}
	}
	for hash := range baseline {
		if !done[hash] {
			return nil, fmt.Errorf("spec %s never reached done in the journal", hash)
		}
	}

	rep := in.Report()
	cs := client.Stats()
	return &svcChaosRow{
		killed: rep.Kills, stalls: rep.Stalls, drops: rep.Drops,
		requeued: uint64(rec.Requeued), replayed: uint64(rec.Records),
		corrupt: uint64(rec.CorruptTruncated),
		retries: cs.Retries, breakerOpens: client.Breaker.Opens(),
		violations: uint64(len(violations)),
	}, nil
}
