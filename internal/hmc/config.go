package hmc

import (
	"fmt"

	"mac3d/internal/addr"
	"mac3d/internal/sim"
)

// Config holds the device organization and timing, all expressed in CPU
// (master-clock) cycles. Defaults reproduce Table 1 of the paper: an
// 8GB cube with 4 links, 256B rows, closed-page policy, and an average
// unloaded access latency of about 93ns at a 3.3 GHz master clock.
type Config struct {
	// Links is the number of full-duplex host links (Table 1: 4).
	Links int
	// Vaults is the number of vaults (HMC gen2: 32).
	Vaults int
	// BanksPerVault is the number of banks per vault (8GB cube:
	// 512 banks total => 16 per vault).
	BanksPerVault int
	// CapacityBytes is the cube capacity (8GB); used for address
	// wrap-around and reporting only.
	CapacityBytes uint64

	// RowBytes is the DRAM row (page) size: 256B for HMC, 1KB for
	// HBM (§4.3). It sets the bank-conflict granularity.
	RowBytes uint32
	// MinAccessBytes is the device's minimum transaction size: one
	// 16B FLIT for HMC, one 32B burst (BL4 x 64-bit) for HBM.
	MinAccessBytes uint32

	// FlitCycles is the serialization time of one 16B FLIT on one
	// link, in cycles.
	FlitCycles sim.Cycle
	// ReqPipeline is the fixed request-path latency between the link
	// and the vault controller (SerDes, switch, controller decode).
	ReqPipeline sim.Cycle
	// RespPipeline is the fixed response-path latency back.
	RespPipeline sim.Cycle
	// TRCD is the activate (row open) latency in cycles.
	TRCD sim.Cycle
	// TCL is the column access latency in cycles.
	TCL sim.Cycle
	// TRP is the precharge latency in cycles; with the closed-page
	// policy it is paid by every access as part of bank occupancy.
	TRP sim.Cycle
	// BurstBytesPerCycle is the DRAM data rate between sense
	// amplifiers and the vault controller.
	BurstBytesPerCycle uint32

	// VaultQueueDepth bounds each vault controller's request queue.
	VaultQueueDepth int
	// MaxInflight bounds outstanding transactions device-wide (the
	// HMC protocol's per-link tag space). When reached, the host
	// interface backpressures: the MAC stops popping, its ARQ dwells
	// grow, and coalescing opportunity rises — the feedback loop
	// that lets efficiency exceed the 50% push/pop fixed point.
	MaxInflight int

	// RefreshInterval enables periodic DRAM refresh modelling: every
	// RefreshInterval cycles each vault blocks for RefreshDuration
	// while its banks refresh (vaults staggered to avoid a global
	// stall). 0 disables refresh (the default: the paper's
	// evaluation does not model it, and HMC handles refresh in the
	// logic layer largely invisibly; enable it to study latency
	// tails — tREFI ≈ 7.8µs ≈ 25740 cycles, tRFC ≈ 350ns ≈ 1155
	// cycles at 3.3 GHz).
	RefreshInterval sim.Cycle
	// RefreshDuration is the per-window blocking time.
	RefreshDuration sim.Cycle

	// Cube configures the cube-internal vault fabric, the row-buffer
	// page policy, and quadrant locality (see CubeConfig). The zero
	// value — ideal switch, closed page, no quadrant effect — is
	// cycle-for-cycle identical to the pre-fabric model.
	Cube CubeConfig

	// Faults configures deterministic link-level fault injection:
	// CRC errors, link-retry, token flow control, and link
	// degradation (see FaultConfig). The zero value disables it all,
	// and a disabled fault model is a strict no-op.
	Faults FaultConfig
}

// DefaultConfig returns the Table 1 configuration. With these values a
// 16B read on an idle device completes in ~300 cycles ≈ 91ns at
// 3.3 GHz, matching the paper's 93ns average HMC access latency.
func DefaultConfig() Config {
	return Config{
		Links:              4,
		Vaults:             32,
		BanksPerVault:      16,
		CapacityBytes:      8 << 30,
		RowBytes:           256,
		MinAccessBytes:     16,
		FlitCycles:         1,
		ReqPipeline:        104,
		RespPipeline:       104,
		TRCD:               45,
		TCL:                45,
		TRP:                44,
		BurstBytesPerCycle: 32,
		VaultQueueDepth:    256,
		MaxInflight:        128, // 32 outstanding tags per link
	}
}

// HBMConfig returns a High Bandwidth Memory profile per §4.3: the MAC
// design is unchanged; the device swaps to 1KB rows (so one MAC row
// window is a quarter of a DRAM page), a 32B minimum burst, and a
// channel-per-pseudo-link organization (8 channels x 16 banks). The
// control-overhead accounting keeps Eq. 1's 32B/access as the DDR
// command-bus equivalent, so bandwidth-efficiency numbers stay
// comparable across the two devices.
func HBMConfig() Config {
	c := DefaultConfig()
	c.Links = 8 // channels
	c.Vaults = 8
	c.BanksPerVault = 16
	c.RowBytes = 1024
	c.MinAccessBytes = 32
	c.CapacityBytes = 4 << 30
	return c
}

// Validate reports the first configuration error, or nil.
func (c Config) Validate() error {
	switch {
	case c.Links <= 0:
		return fmt.Errorf("hmc: Links must be positive, got %d", c.Links)
	case c.RowBytes == 0 || c.RowBytes&(c.RowBytes-1) != 0:
		return fmt.Errorf("hmc: RowBytes must be a power of two, got %d", c.RowBytes)
	case c.MinAccessBytes == 0 || c.MinAccessBytes%addr.FlitBytes != 0 || c.MinAccessBytes > c.RowBytes:
		return fmt.Errorf("hmc: MinAccessBytes must be a FLIT multiple <= RowBytes, got %d", c.MinAccessBytes)
	case c.Vaults <= 0:
		return fmt.Errorf("hmc: Vaults must be positive, got %d", c.Vaults)
	case c.BanksPerVault <= 0:
		return fmt.Errorf("hmc: BanksPerVault must be positive, got %d", c.BanksPerVault)
	case c.FlitCycles == 0:
		return fmt.Errorf("hmc: FlitCycles must be positive")
	case c.BurstBytesPerCycle == 0:
		return fmt.Errorf("hmc: BurstBytesPerCycle must be positive")
	case c.VaultQueueDepth <= 0:
		return fmt.Errorf("hmc: VaultQueueDepth must be positive, got %d", c.VaultQueueDepth)
	case c.MaxInflight <= 0:
		return fmt.Errorf("hmc: MaxInflight must be positive, got %d", c.MaxInflight)
	case c.RefreshInterval != 0 && c.RefreshDuration >= c.RefreshInterval:
		return fmt.Errorf("hmc: RefreshDuration %d must be below RefreshInterval %d",
			c.RefreshDuration, c.RefreshInterval)
	}
	if err := c.Cube.Validate(c.Links, c.Vaults); err != nil {
		return err
	}
	return c.Faults.Validate()
}

// Mapping returns the vault/bank address mapping for this organization.
func (c Config) Mapping() addr.Mapping {
	return addr.Mapping{Vaults: c.Vaults, BanksPerVault: c.BanksPerVault}
}

// BankOccupancy returns how long one access of dataBytes holds its bank
// under the closed-page policy: activate + column access + data burst +
// precharge. A request larger than the device row (possible with the
// §4.3 wide coalescing windows on a small-row device) pays one
// activate/precharge pair per row it touches.
func (c Config) BankOccupancy(dataBytes uint32) sim.Cycle {
	burst := sim.Cycle((dataBytes + c.BurstBytesPerCycle - 1) / c.BurstBytesPerCycle)
	activations := sim.Cycle((dataBytes + c.RowBytes - 1) / c.RowBytes)
	if activations == 0 {
		activations = 1
	}
	return activations*(c.TRCD+c.TRP) + c.TCL + burst
}

// UnloadedReadLatency returns the end-to-end latency of a read of
// dataBytes on an otherwise idle device (no queuing, no conflicts).
func (c Config) UnloadedReadLatency(dataBytes uint32) sim.Cycle {
	req := Request{Kind: Read, Data: dataBytes}
	req.Normalize()
	reqSer := sim.Cycle(req.RequestFlits()) * c.FlitCycles
	respSer := sim.Cycle(req.ResponseFlits()) * c.FlitCycles
	burst := sim.Cycle((req.Data + c.BurstBytesPerCycle - 1) / c.BurstBytesPerCycle)
	return reqSer + c.ReqPipeline + c.TRCD + c.TCL + burst + respSer + c.RespPipeline
}
