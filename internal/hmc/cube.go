// Cube-internal interconnect: the vault fabric of the 3D-stacked
// device. The pre-fabric model routed link→vault traffic through a
// fixed ReqPipeline/RespPipeline pair — a contention-free logic-layer
// switch. Hadidi et al. ("Performance Implications of NoCs on
// 3D-Stacked Memories", "Demystifying the Characteristics of
// 3D-Stacked Memories") show that the cube's internal network is what
// shapes the load–latency knee, so this file lets the device route
// that traffic through a real noc.Fabric instead:
//
//   - Topology "ideal" (the default) keeps the exact pre-fabric direct
//     dispatch: no fabric object is even constructed, so default
//     configurations are cycle-for-cycle identical to the old model
//     (pinned by the cube golden tests).
//   - "ring" and "mesh" build a credit-flow-controlled noc fabric of
//     Links+Vaults endpoints; every request crosses it from its
//     ingress-link node to its vault node, and every response crosses
//     back. ReqPipeline/RespPipeline are still charged (SerDes and
//     controller decode); the fabric replaces only the contention-free
//     switch crossing, adding per-hop latency, serialization and
//     backpressure on top.
//
// Two further knobs ride along, usable with any topology:
//
//   - PagePolicy "open" keeps each bank's last row open: a row hit
//     skips the activate, a row miss pays tRCD, and a row conflict
//     pays precharge+activate. "closed" (the default) is the paper's
//     every-access-is-a-miss timing, bit-identical to the old model.
//   - QuadrantPenalty charges extra cycles each way when a request's
//     vault lies outside its ingress link's quadrant (Hadidi's
//     quadrant locality: vaults are split evenly across the Links
//     ingress quadrants). 0 (the default) disables the effect.
package hmc

import (
	"fmt"
	"strconv"
	"strings"

	"mac3d/internal/noc"
	"mac3d/internal/sim"
)

// Page policies.
const (
	// PageClosed is the paper's closed-page timing: every access pays
	// activate + precharge as part of bank occupancy.
	PageClosed = "closed"
	// PageOpen keeps the last-accessed row open in each bank's sense
	// amplifiers: hits skip the activate, conflicts pay an extra
	// precharge.
	PageOpen = "open"
)

// CubeConfig parameterizes the cube-internal fabric, row-buffer policy
// and quadrant locality. The zero value (ideal switch, closed page, no
// quadrant effect) reproduces the pre-fabric model cycle-for-cycle.
type CubeConfig struct {
	// Topology selects the vault interconnect: "ideal" (alias
	// "crossbar"; the pre-fabric contention-free switch), "ring" or
	// "mesh". Routed topologies span Links+Vaults fabric nodes.
	Topology string
	// HopCycles is the per-hop propagation latency of the routed
	// fabric in cycles (key "hop"; default 2, a sub-ns logic-layer
	// hop at 3.3 GHz). Ignored by ideal.
	HopCycles sim.Cycle
	// LinkBandwidth is the intra-cube link serialization width in 16B
	// flits per cycle (key "bw"; default 4). Ignored by ideal.
	LinkBandwidth int
	// BufferFlits sizes each fabric router's input buffer (key "buf";
	// default 64). Ignored by ideal.
	BufferFlits int
	// InjectDepth bounds each fabric node's injection queue in
	// messages (key "inject"; default 8). Ignored by ideal.
	InjectDepth int
	// MeshCols fixes the mesh width (key "cols"); 0 picks the
	// most-square factorization of Links+Vaults. Mesh only.
	MeshCols int
	// PagePolicy selects "closed" (default) or "open" row-buffer
	// handling (key "page").
	PagePolicy string
	// QuadrantPenalty is the extra traversal cost, in cycles each
	// way, of a request whose vault lies outside its ingress link's
	// quadrant (key "quad"; default 0).
	QuadrantPenalty sim.Cycle
}

// DefaultCubeConfig returns the pre-fabric cube: ideal switch, closed
// page, no quadrant effect.
func DefaultCubeConfig() CubeConfig {
	return CubeConfig{Topology: noc.Ideal, PagePolicy: PageClosed}
}

// WithDefaults canonicalizes names and fills the unset routed-fabric
// fields. It is idempotent.
func (c CubeConfig) WithDefaults() CubeConfig {
	switch strings.ToLower(strings.TrimSpace(c.Topology)) {
	case "", noc.Ideal, "crossbar", "xbar":
		c.Topology = noc.Ideal
	case noc.Ring:
		c.Topology = noc.Ring
	case noc.Mesh:
		c.Topology = noc.Mesh
	default:
		// Leave the unknown name for Validate to report.
		c.Topology = strings.ToLower(strings.TrimSpace(c.Topology))
	}
	switch strings.ToLower(strings.TrimSpace(c.PagePolicy)) {
	case "", PageClosed:
		c.PagePolicy = PageClosed
	case PageOpen:
		c.PagePolicy = PageOpen
	default:
		c.PagePolicy = strings.ToLower(strings.TrimSpace(c.PagePolicy))
	}
	if c.Routed() {
		if c.HopCycles == 0 {
			c.HopCycles = 2
		}
		if c.LinkBandwidth == 0 {
			c.LinkBandwidth = 4
		}
		if c.BufferFlits == 0 {
			c.BufferFlits = 64
		}
		if c.InjectDepth == 0 {
			c.InjectDepth = 8
		}
	}
	return c
}

// Routed reports whether the cube traffic crosses a real noc fabric
// (ring or mesh) rather than the ideal direct-dispatch switch.
func (c CubeConfig) Routed() bool {
	switch strings.ToLower(strings.TrimSpace(c.Topology)) {
	case noc.Ring, noc.Mesh:
		return true
	}
	return false
}

// Validate reports the first configuration error, or nil. links and
// vaults are the owning device's organization (the fabric endpoint
// counts); pass the configured values so mesh factorization and node
// bounds are checked against the real device.
func (c CubeConfig) Validate(links, vaults int) error {
	c = c.WithDefaults()
	switch c.Topology {
	case noc.Ideal, noc.Ring, noc.Mesh:
	default:
		return fmt.Errorf("hmc: unknown cube topology %q (want ideal, crossbar, ring or mesh)", c.Topology)
	}
	switch c.PagePolicy {
	case PageClosed, PageOpen:
	default:
		return fmt.Errorf("hmc: unknown cube page policy %q (want closed or open)", c.PagePolicy)
	}
	if c.QuadrantPenalty > 1<<20 {
		return fmt.Errorf("hmc: cube quadrant penalty %d exceeds the 2^20 bound", c.QuadrantPenalty)
	}
	if !c.Routed() {
		return nil
	}
	ncfg, err := c.nocConfig(links, vaults)
	if err != nil {
		return err
	}
	if err := ncfg.Validate(); err != nil {
		return fmt.Errorf("hmc: cube fabric: %w", err)
	}
	return nil
}

// nocConfig lowers the cube config onto the interconnect package for a
// device with the given link and vault counts.
func (c CubeConfig) nocConfig(links, vaults int) (noc.Config, error) {
	c = c.WithDefaults()
	nodes := links + vaults
	if nodes > 1024 {
		return noc.Config{}, fmt.Errorf("hmc: cube fabric spans %d nodes (links %d + vaults %d), exceeding the 1024 bound",
			nodes, links, vaults)
	}
	return noc.Config{
		Topology:      c.Topology,
		Nodes:         nodes,
		LinkLatency:   c.HopCycles,
		LinkBandwidth: c.LinkBandwidth,
		BufferFlits:   c.BufferFlits,
		InjectDepth:   c.InjectDepth,
		MeshCols:      c.MeshCols,
	}, nil
}

// String renders the config in the canonical ParseCubeConfig syntax:
// ParseCubeConfig(c.String()) reproduces c (after WithDefaults).
func (c CubeConfig) String() string {
	c = c.WithDefaults()
	parts := []string{c.Topology}
	if c.Routed() {
		parts = append(parts,
			fmt.Sprintf("hop=%d", c.HopCycles),
			fmt.Sprintf("bw=%d", c.LinkBandwidth),
			fmt.Sprintf("buf=%d", c.BufferFlits),
			fmt.Sprintf("inject=%d", c.InjectDepth))
		if c.Topology == noc.Mesh && c.MeshCols != 0 {
			parts = append(parts, fmt.Sprintf("cols=%d", c.MeshCols))
		}
	}
	parts = append(parts, fmt.Sprintf("page=%s", c.PagePolicy))
	if c.QuadrantPenalty != 0 {
		parts = append(parts, fmt.Sprintf("quad=%d", c.QuadrantPenalty))
	}
	return strings.Join(parts, ",")
}

// ParseCubeConfig parses the CLI/flag/spec syntax for the cube block:
//
//	TOPOLOGY[,key=value...]
//
// with keys hop (per-hop cycles), bw (flits/cycle), buf (input-buffer
// flits), inject (injection-queue messages), cols (mesh width), page
// (closed|open) and quad (quadrant-crossing cycles). The empty string
// parses as the default cube (ideal switch, closed page). Keys the
// topology ignores are rejected rather than silently dropped. It never
// panics, whatever the input (FuzzParseCubeConfig holds it to that),
// and anything it accepts passes Validate for the Table 1 device.
func ParseCubeConfig(s string) (CubeConfig, error) {
	var c CubeConfig
	fields := strings.Split(s, ",")
	c.Topology = strings.ToLower(strings.TrimSpace(fields[0]))
	switch c.Topology {
	case "", noc.Ideal, "crossbar", "xbar", noc.Ring, noc.Mesh:
	default:
		return CubeConfig{}, fmt.Errorf("hmc: unknown cube topology %q (want ideal, crossbar, ring or mesh)", c.Topology)
	}
	for _, part := range fields[1:] {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return CubeConfig{}, fmt.Errorf("hmc: cube %q is not key=value", part)
		}
		k = strings.TrimSpace(k)
		v = strings.TrimSpace(v)
		if k == "page" {
			switch strings.ToLower(v) {
			case PageClosed, PageOpen:
				c.PagePolicy = strings.ToLower(v)
			default:
				return CubeConfig{}, fmt.Errorf("hmc: unknown cube page policy %q (want closed or open)", v)
			}
			continue
		}
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return CubeConfig{}, fmt.Errorf("hmc: bad cube %s value %q: %w", k, v, err)
		}
		if n < 0 {
			return CubeConfig{}, fmt.Errorf("hmc: cube %s value %d is negative", k, n)
		}
		switch k {
		case "hop":
			if n > 1<<20 {
				return CubeConfig{}, fmt.Errorf("hmc: cube hop %d exceeds the 2^20 bound", n)
			}
			c.HopCycles = sim.Cycle(n)
		case "bw":
			if n > 64 {
				return CubeConfig{}, fmt.Errorf("hmc: cube bw %d exceeds the 64 flits/cycle bound", n)
			}
			c.LinkBandwidth = int(n)
		case "buf":
			if n > 1<<20 {
				return CubeConfig{}, fmt.Errorf("hmc: cube buf %d exceeds the 2^20 bound", n)
			}
			c.BufferFlits = int(n)
		case "inject":
			if n > 1<<20 {
				return CubeConfig{}, fmt.Errorf("hmc: cube inject %d exceeds the 2^20 bound", n)
			}
			c.InjectDepth = int(n)
		case "cols":
			if n > 1024 {
				return CubeConfig{}, fmt.Errorf("hmc: cube cols %d exceeds the 1024 bound", n)
			}
			c.MeshCols = int(n)
		case "quad":
			if n > 1<<20 {
				return CubeConfig{}, fmt.Errorf("hmc: cube quad %d exceeds the 2^20 bound", n)
			}
			c.QuadrantPenalty = sim.Cycle(n)
		default:
			return CubeConfig{}, fmt.Errorf("hmc: unknown cube key %q (want hop, bw, buf, inject, cols, page or quad)", k)
		}
	}
	c = c.WithDefaults()
	if !c.Routed() {
		if c.HopCycles != 0 || c.LinkBandwidth != 0 || c.BufferFlits != 0 ||
			c.InjectDepth != 0 || c.MeshCols != 0 {
			return CubeConfig{}, fmt.Errorf("hmc: cube keys hop, bw, buf, inject and cols do not apply to the ideal topology")
		}
	}
	if c.Topology == noc.Ring && c.MeshCols != 0 {
		return CubeConfig{}, fmt.Errorf("hmc: cube cols only applies to the mesh topology")
	}
	// Validate against the Table 1 organization; device-specific
	// constraints (mesh factorization against other link/vault counts)
	// are re-checked by Config.Validate at construction.
	def := DefaultConfig()
	if err := c.Validate(def.Links, def.Vaults); err != nil {
		return CubeConfig{}, err
	}
	return c, nil
}

// --- cube fabric runtime ------------------------------------------------

// cubeMsg is the payload of one intra-cube fabric message: the access
// it carries plus the bookkeeping the far endpoint needs. The fabric
// never inspects it.
type cubeMsg struct {
	// isResp distinguishes a vault→link response crossing from a
	// link→vault request crossing.
	isResp bool
	req    Request
	// submitted is the Submit cycle, for end-to-end latency.
	submitted sim.Cycle
	link      int
	vault     int
	// drop marks an access whose response is deliberately lost
	// (DropResponseEvery diagnostic hook).
	drop bool
	// conflicted records the bank-conflict outcome (responses only).
	conflicted bool
}

// cubeInject is one message waiting to enter the fabric once its ready
// cycle arrives (external-link serialization done, or DRAM data ready).
type cubeInject struct {
	ready sim.Cycle
	m     noc.Message[cubeMsg]
}

// cubeState is the Device's fabric runtime; nil for the ideal cube.
type cubeState struct {
	fab noc.Fabric[cubeMsg]
	// q holds per-fabric-node pending injections: requests queue at
	// their ingress-link node, responses at their vault node.
	q [][]cubeInject
	// queued counts entries across q.
	queued int
	// next is the first cycle advance has not yet simulated.
	next sim.Cycle
	// inFlight counts accesses between Submit and their response-heap
	// push (or drop): queued, crossing, or at a vault.
	inFlight int
}

// newCubeState builds the fabric runtime for a routed cube config; it
// must only be called after Config.Validate accepted cfg.
func newCubeState(cfg Config) (*cubeState, error) {
	ncfg, err := cfg.Cube.nocConfig(cfg.Links, cfg.Vaults)
	if err != nil {
		return nil, err
	}
	fab, err := noc.New[cubeMsg](ncfg)
	if err != nil {
		return nil, fmt.Errorf("hmc: cube fabric: %w", err)
	}
	return &cubeState{
		fab: fab,
		q:   make([][]cubeInject, cfg.Links+cfg.Vaults),
	}, nil
}

// cubeFlits clamps a packet's flit count to the fabric's message bound:
// the noc moves at most MaxMessageFlits per message, so larger packets
// serialize as a maximum-size fabric message (their full size is still
// charged on the external host link).
func cubeFlits(flits uint32) int {
	if flits > noc.MaxMessageFlits {
		return noc.MaxMessageFlits
	}
	return int(flits)
}

// quadPenalty returns the quadrant-crossing cost of reaching vault v
// from ingress link l: vaults are split evenly across the Links
// quadrants, and a vault outside its link's quadrant pays the
// configured penalty each way.
func (d *Device) quadPenalty(link, vault int) sim.Cycle {
	if d.cfg.Cube.QuadrantPenalty == 0 {
		return 0
	}
	if vault*d.cfg.Links/d.cfg.Vaults == link {
		return 0
	}
	return d.cfg.Cube.QuadrantPenalty
}

// cubeSubmit hands a request to the fabric runtime: it is queued at its
// ingress-link node and injected once the external link finishes
// serializing it (plus any quadrant-crossing cost). The vault queue
// slot is claimed now, exactly as the direct path does, so CanAccept
// backpressure is policy-identical across topologies.
func (d *Device) cubeSubmit(req Request, link, vault int, ready, now sim.Cycle, drop bool) {
	d.vaultPending[vault]++
	d.cube.inFlight++
	d.cubeEnqueue(link, ready+d.quadPenalty(link, vault), noc.Message[cubeMsg]{
		Src:   link,
		Dst:   d.cfg.Links + vault,
		Flits: cubeFlits(req.RequestFlits()),
		Payload: cubeMsg{
			req: req, submitted: now, link: link, vault: vault, drop: drop,
		},
	})
}

// cubeEnqueue parks m at fabric node n until ready.
func (d *Device) cubeEnqueue(n int, ready sim.Cycle, m noc.Message[cubeMsg]) {
	d.cube.q[n] = append(d.cube.q[n], cubeInject{ready: ready, m: m})
	d.cube.queued++
}

// cubeAdvance runs the fabric cycle loop up to and including now:
// injections whose ready cycle arrived enter the fabric, routers move
// flits, and deliveries land at vaults (starting the DRAM access) or
// back at links (finishing the response). Tick drives it; the loop is
// per-cycle so sparse Tick calls still simulate every cycle.
func (d *Device) cubeAdvance(now sim.Cycle) {
	c := d.cube
	for t := c.next; t <= now; t++ {
		if c.queued > 0 {
			d.cubePump(t)
		}
		if c.queued == 0 && c.fab.InFlight() == 0 {
			// Nothing to move: skip ahead without ticking empty
			// routers cycle by cycle.
			continue
		}
		c.fab.Tick(t)
		c.fab.Deliver(t, func(m noc.Message[cubeMsg]) bool {
			d.cubeDeliver(t, m)
			return true
		})
	}
	c.next = now + 1
}

// cubePump attempts every due injection. Refusals (full injection
// queue) block the refusing node's later due messages, preserving
// per-node order under backpressure; not-yet-due messages never block
// a due one behind them.
func (d *Device) cubePump(t sim.Cycle) {
	c := d.cube
	for n := range c.q {
		q := c.q[n]
		if len(q) == 0 {
			continue
		}
		kept := q[:0]
		blocked := false
		for i := range q {
			e := q[i]
			if !blocked && e.ready <= t {
				if c.fab.Send(t, e.m) {
					c.queued--
					continue
				}
				blocked = true
			}
			kept = append(kept, e)
		}
		c.q[n] = kept
	}
}

// cubeDeliver handles one fabric arrival at cycle t.
func (d *Device) cubeDeliver(t sim.Cycle, m noc.Message[cubeMsg]) {
	p := m.Payload
	if !p.isResp {
		// Request reached its vault: controller decode, FCFS issue
		// (past any refresh window), then the DRAM access. The
		// response crosses back once the data is ready.
		arrive := t + d.cfg.ReqPipeline
		issue := max(arrive, d.vaultFree[p.vault])
		issue = d.afterRefresh(p.vault, issue)
		d.vaultFree[p.vault] = issue + 1
		dataReady, conflicted := d.bankAccess(p.req, issue)
		p.isResp = true
		p.conflicted = conflicted
		d.cubeEnqueue(d.cfg.Links+p.vault, dataReady+d.quadPenalty(p.link, p.vault), noc.Message[cubeMsg]{
			Src:     d.cfg.Links + p.vault,
			Dst:     p.link,
			Flits:   cubeFlits(p.req.ResponseFlits()),
			Payload: p,
		})
		return
	}
	// Response back at its ingress link: external serialization and the
	// return pipeline, mirroring the direct path from dataReady on.
	respSer := sim.Cycle(p.req.ResponseFlits()) * d.cfg.FlitCycles
	respStart := max(t, d.respLinkFree[p.link])
	poisoned := false
	if d.faultsOn {
		var delivered bool
		respStart, delivered = d.transmit(respStart, respSer)
		poisoned = !delivered
	}
	d.respLinkFree[p.link] = respStart + respSer
	done := respStart + respSer + d.cfg.RespPipeline

	d.st.Latency.Observe(uint64(done - p.submitted))
	if done > d.st.LastDone {
		d.st.LastDone = done
	}
	d.cube.inFlight--
	if p.drop {
		// Lost response: the access happened, but the host never hears
		// back. The vault-queue slot leaks, exactly as on the direct
		// path.
		d.st.DroppedResponses++
		return
	}
	if poisoned {
		d.st.PoisonedResponses++
	}
	d.pushResponse(Response{
		Tag:        p.req.Tag,
		Addr:       p.req.Addr,
		Kind:       p.req.Kind,
		Data:       p.req.Data,
		Submitted:  p.submitted,
		Done:       done,
		Conflicted: p.conflicted,
		Poisoned:   poisoned,
		vault:      p.vault,
		link:       p.link,
	})
}

// CubeLinks returns the routed cube fabric's directed link count, or 0
// for the ideal cube — the chaos engine's SetCubeLinks input.
func (d *Device) CubeLinks() int {
	if d.cube == nil {
		return 0
	}
	return d.cube.fab.Links()
}

// StallCubeLink freezes one directed intra-cube fabric link until the
// given cycle (the chaos engine's cubelink stressor). The ideal cube
// has no links; the call is then a no-op, as it is for out-of-range
// link ids.
func (d *Device) StallCubeLink(link int, until sim.Cycle) {
	if d.cube == nil {
		return
	}
	d.cube.fab.StallLink(link, until)
}

// CubeStats returns the routed cube fabric's live interconnect
// statistics, or nil for the ideal cube.
func (d *Device) CubeStats() *noc.Stats {
	if d.cube == nil {
		return nil
	}
	return d.cube.fab.Stats()
}
