package hmc

import (
	"strings"
	"testing"
)

// FuzzParseCubeConfig holds ParseCubeConfig to its contract: it never
// panics, anything it accepts validates for the Table 1 organization
// and builds a device, and accepted configs survive a
// String→ParseCubeConfig round trip.
func FuzzParseCubeConfig(f *testing.F) {
	f.Add("")
	f.Add("ideal")
	f.Add("crossbar,page=open")
	f.Add("ring,hop=5,bw=8,buf=128,inject=16,page=open,quad=3")
	f.Add("mesh,cols=6,page=closed")
	f.Add("mesh , page = open ")
	f.Add("ideal,quad=12")
	f.Add("torus")
	f.Add("ideal,hop=3")
	f.Add("ring,cols=4")
	f.Add("ring,hop=-1")
	f.Add("ring,hop=99999999999999999999")
	f.Add(strings.Repeat(",", 100))
	f.Fuzz(func(t *testing.T, s string) {
		c, err := ParseCubeConfig(s)
		if err != nil {
			return
		}
		cfg := DefaultConfig()
		cfg.Cube = c
		if err := cfg.Validate(); err != nil {
			t.Fatalf("ParseCubeConfig(%q) accepted %+v but Validate: %v", s, c, err)
		}
		if _, err := NewDevice(cfg); err != nil {
			t.Fatalf("ParseCubeConfig(%q) accepted %+v but NewDevice: %v", s, c, err)
		}
		// Canonical form must round-trip.
		back, err := ParseCubeConfig(c.String())
		if err != nil {
			t.Fatalf("round trip of %q → %q: %v", s, c.String(), err)
		}
		if back != c {
			t.Fatalf("round trip of %q: %+v != %+v", s, back, c)
		}
	})
}
