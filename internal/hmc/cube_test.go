package hmc

import (
	"reflect"
	"strings"
	"testing"

	"mac3d/internal/sim"
)

func TestParseCubeConfig(t *testing.T) {
	cases := []struct {
		in   string
		want CubeConfig
	}{
		{"", CubeConfig{Topology: "ideal", PagePolicy: "closed"}},
		{"ideal", CubeConfig{Topology: "ideal", PagePolicy: "closed"}},
		{"crossbar", CubeConfig{Topology: "ideal", PagePolicy: "closed"}},
		{"XBAR,page=open", CubeConfig{Topology: "ideal", PagePolicy: "open"}},
		{"ideal,quad=12", CubeConfig{Topology: "ideal", PagePolicy: "closed", QuadrantPenalty: 12}},
		{"ring", CubeConfig{Topology: "ring", HopCycles: 2, LinkBandwidth: 4,
			BufferFlits: 64, InjectDepth: 8, PagePolicy: "closed"}},
		{"ring,hop=5,bw=8,buf=128,inject=16,page=open,quad=3",
			CubeConfig{Topology: "ring", HopCycles: 5, LinkBandwidth: 8, BufferFlits: 128,
				InjectDepth: 16, PagePolicy: "open", QuadrantPenalty: 3}},
		{"mesh,cols=6", CubeConfig{Topology: "mesh", HopCycles: 2, LinkBandwidth: 4,
			BufferFlits: 64, InjectDepth: 8, MeshCols: 6, PagePolicy: "closed"}},
		{" mesh , page = open ", CubeConfig{Topology: "mesh", HopCycles: 2, LinkBandwidth: 4,
			BufferFlits: 64, InjectDepth: 8, PagePolicy: "open"}},
	}
	for _, c := range cases {
		got, err := ParseCubeConfig(c.in)
		if err != nil {
			t.Fatalf("ParseCubeConfig(%q): %v", c.in, err)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Fatalf("ParseCubeConfig(%q) = %+v, want %+v", c.in, got, c.want)
		}
		// String must round-trip the canonical form.
		again, err := ParseCubeConfig(got.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", got.String(), err)
		}
		if !reflect.DeepEqual(again, got) {
			t.Fatalf("round trip %q -> %+v != %+v", got.String(), again, got)
		}
	}
}

func TestParseCubeConfigRejects(t *testing.T) {
	bad := []string{
		"torus",              // unknown topology
		"ideal,hop=3",        // ideal takes no fabric keys
		"crossbar,bw=4",      // same, via alias
		"ideal,buf=64",       // same
		"ring,cols=4",        // cols is mesh-only
		"ring,hop=-1",        // negative
		"ring,hop=x",         // not a number
		"ring,hop",           // not key=value
		"mesh,page=paper",    // unknown policy
		"ring,flux=1",        // unknown key
		"ring,bw=65",         // beyond the noc bound
		"mesh,cols=7",        // 36 nodes do not factor into 7 columns
		"ideal,quad=2000000", // beyond the quad bound
	}
	for _, s := range bad {
		if _, err := ParseCubeConfig(s); err == nil {
			t.Fatalf("ParseCubeConfig(%q) accepted, want error", s)
		}
	}
}

func TestCubeConfigValidate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cube = CubeConfig{Topology: "warp"}
	if err := cfg.Validate(); err == nil || !strings.Contains(err.Error(), "topology") {
		t.Fatalf("bad topology: err = %v", err)
	}
	cfg.Cube = CubeConfig{PagePolicy: "ajar"}
	if err := cfg.Validate(); err == nil || !strings.Contains(err.Error(), "page policy") {
		t.Fatalf("bad policy: err = %v", err)
	}
	cfg.Cube = CubeConfig{Topology: "mesh", MeshCols: 5}
	if err := cfg.Validate(); err == nil {
		t.Fatalf("mesh cols=5 over 36 nodes accepted, want error")
	}
}

// drainCube submits n strided reads back-to-back and runs the device to
// completion, returning the responses in completion order.
func drainCube(t *testing.T, cfg Config, n int, stride uint64) (*Device, []Response) {
	t.Helper()
	d := MustNewDevice(cfg)
	var now sim.Cycle
	var out []Response
	a := uint64(0)
	for i := 0; i < n; i++ {
		for !d.CanAccept() {
			out = append(out, d.Tick(now)...)
			now++
		}
		d.Submit(Request{Tag: uint64(i), Addr: a, Kind: Read, Data: 64}, now)
		a += stride
		now++
	}
	for guard := 0; len(out) < n; guard++ {
		if guard > 10_000_000 {
			t.Fatalf("cube %q did not drain: %d/%d responses, pending %d",
				cfg.Cube.String(), len(out), n, d.Pending())
		}
		out = append(out, d.Tick(now)...)
		now++
	}
	if d.Pending() != 0 {
		t.Fatalf("drained but Pending() = %d", d.Pending())
	}
	return d, out
}

func meanLatency(rs []Response) float64 {
	var sum uint64
	for _, r := range rs {
		sum += uint64(r.Done - r.Submitted)
	}
	return float64(sum) / float64(len(rs))
}

// TestCubeRoutedCompletes runs every topology × page policy through the
// same stream and checks conservation plus the ideal ≤ routed latency
// ordering the fabric must exhibit.
func TestCubeRoutedCompletes(t *testing.T) {
	const n = 400
	lat := map[string]float64{}
	for _, topo := range []string{"ideal", "ring", "mesh"} {
		for _, page := range []string{PageClosed, PageOpen} {
			cfg := DefaultConfig()
			cfg.Cube = CubeConfig{Topology: topo, PagePolicy: page}
			d, out := drainCube(t, cfg, n, 4096)
			if len(out) != n {
				t.Fatalf("%s/%s: %d responses, want %d", topo, page, len(out), n)
			}
			seen := map[uint64]bool{}
			for _, r := range out {
				if seen[r.Tag] {
					t.Fatalf("%s/%s: duplicate response tag %d", topo, page, r.Tag)
				}
				seen[r.Tag] = true
			}
			if got := d.Stats().Requests; got != n {
				t.Fatalf("%s/%s: Requests = %d, want %d", topo, page, got, n)
			}
			if topo == "ideal" && d.CubeStats() != nil {
				t.Fatalf("ideal cube has fabric stats")
			}
			if topo != "ideal" {
				if d.CubeStats() == nil || d.CubeStats().Delivered != 2*n {
					t.Fatalf("%s/%s: fabric Delivered = %+v, want %d crossings",
						topo, page, d.CubeStats(), 2*n)
				}
				if d.CubeLinks() == 0 {
					t.Fatalf("%s: no cube links", topo)
				}
			}
			lat[topo+"/"+page] = meanLatency(out)
		}
	}
	for _, page := range []string{PageClosed, PageOpen} {
		if lat["ring/"+page] <= lat["ideal/"+page] {
			t.Fatalf("ring latency %.1f not above ideal %.1f (%s)",
				lat["ring/"+page], lat["ideal/"+page], page)
		}
		if lat["mesh/"+page] <= lat["ideal/"+page] {
			t.Fatalf("mesh latency %.1f not above ideal %.1f (%s)",
				lat["mesh/"+page], lat["ideal/"+page], page)
		}
	}
}

// TestCubeIdealExplicitIdentity checks that spelling out the default
// cube produces responses identical to the zero config.
func TestCubeIdealExplicitIdentity(t *testing.T) {
	base := DefaultConfig()
	expl := DefaultConfig()
	var err error
	expl.Cube, err = ParseCubeConfig("crossbar,page=closed")
	if err != nil {
		t.Fatal(err)
	}
	_, a := drainCube(t, base, 300, 4096)
	_, b := drainCube(t, expl, 300, 4096)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("explicit default cube diverged from zero config")
	}
}

// TestOpenPageRowLocality: a row-local stream (sequential 64B reads
// within rows) must show row hits and beat closed-page latency; a
// row-hostile stride keeps the hit rate at zero for single-bank reuse.
func TestOpenPageRowLocality(t *testing.T) {
	closed := DefaultConfig()
	open := DefaultConfig()
	open.Cube.PagePolicy = PageOpen

	// stride 64 within 256B rows: 4 accesses per row.
	dOpen, outOpen := drainCube(t, open, 512, 64)
	_, outClosed := drainCube(t, closed, 512, 64)

	st := dOpen.Stats()
	if st.RowHits == 0 {
		t.Fatalf("row-local stream produced no row hits (misses %d conflicts %d)",
			st.RowMisses, st.RowConflicts)
	}
	if st.RowHits+st.RowMisses+st.RowConflicts != st.Requests {
		t.Fatalf("row outcomes %d+%d+%d do not cover %d requests",
			st.RowHits, st.RowMisses, st.RowConflicts, st.Requests)
	}
	if hr := st.RowHitRate(); hr < 0.5 {
		t.Fatalf("row hit rate %.2f, want >= 0.5 for 4-per-row stream", hr)
	}
	if lo, lc := meanLatency(outOpen), meanLatency(outClosed); lo >= lc {
		t.Fatalf("open-page latency %.1f not below closed-page %.1f", lo, lc)
	}

	// Closed-page devices must report no row outcomes at all.
	if dc := MustNewDevice(closed); dc.Stats().RowHits != 0 || dc.Stats().RowHitRate() != 0 {
		t.Fatalf("closed-page device reports row stats")
	}
}

// TestQuadrantPenalty: with quad=Q, a request whose vault falls outside
// its ingress link's quadrant pays exactly 2Q extra on an idle device.
func TestQuadrantPenalty(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cube.QuadrantPenalty = 10
	d := MustNewDevice(cfg)
	base := MustNewDevice(DefaultConfig())

	// Link selection round-robins from 0; vault 0 is in link 0's
	// quadrant (32 vaults / 4 links = 8 per quadrant).
	r := Request{Addr: 0, Kind: Read, Data: 16}
	d.Submit(r, 0)
	base.Submit(r, 0)
	var got, want []Response
	for now := sim.Cycle(0); len(got) == 0 || len(want) == 0; now++ {
		got = append(got, d.Tick(now)...)
		want = append(want, base.Tick(now)...)
	}
	if got[0].Done != want[0].Done {
		t.Fatalf("in-quadrant access paid a penalty: done %d vs %d", got[0].Done, want[0].Done)
	}

	// Vault 31 belongs to link 3's quadrant; submitted on link 0 it
	// pays the penalty both ways.
	d.Reset()
	base.Reset()
	row31 := uint64(31) * 256 // row r maps to vault r%32
	d.Submit(Request{Addr: row31, Kind: Read, Data: 16}, 0)
	base.Submit(Request{Addr: row31, Kind: Read, Data: 16}, 0)
	got, want = nil, nil
	for now := sim.Cycle(0); len(got) == 0 || len(want) == 0; now++ {
		got = append(got, d.Tick(now)...)
		want = append(want, base.Tick(now)...)
	}
	if got[0].Done != want[0].Done+20 {
		t.Fatalf("cross-quadrant access done %d, want %d (+2x10)", got[0].Done, want[0].Done)
	}
}

// TestStallCubeLink: freezing intra-cube links delays routed traffic
// and is a no-op on the ideal cube.
func TestStallCubeLink(t *testing.T) {
	ideal := MustNewDevice(DefaultConfig())
	if ideal.CubeLinks() != 0 {
		t.Fatalf("ideal cube reports %d links", ideal.CubeLinks())
	}
	ideal.StallCubeLink(0, 1000) // must not panic

	cfg := DefaultConfig()
	cfg.Cube.Topology = "ring"
	free := MustNewDevice(cfg)
	stalled := MustNewDevice(cfg)
	for l := 0; l < stalled.CubeLinks(); l++ {
		stalled.StallCubeLink(l, 5000)
	}
	r := Request{Addr: 0, Kind: Read, Data: 16}
	free.Submit(r, 0)
	stalled.Submit(r, 0)
	var a, b []Response
	for now := sim.Cycle(0); len(a) == 0 || len(b) == 0; now++ {
		if now > 100_000 {
			t.Fatalf("stalled cube never delivered")
		}
		a = append(a, free.Tick(now)...)
		b = append(b, stalled.Tick(now)...)
	}
	if b[0].Done <= a[0].Done {
		t.Fatalf("stalled done %d not after free done %d", b[0].Done, a[0].Done)
	}
}

// TestCubeReset: a reset routed device replays the same stream to the
// same responses.
func TestCubeReset(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cube, _ = ParseCubeConfig("mesh,page=open")
	d := MustNewDevice(cfg)
	run := func() []Response {
		var out []Response
		var now sim.Cycle
		for i := 0; i < 200; i++ {
			d.Submit(Request{Tag: uint64(i), Addr: uint64(i) * 320, Kind: Read, Data: 64}, now)
			now++
		}
		for guard := 0; len(out) < 200; guard++ {
			if guard > 1_000_000 {
				t.Fatalf("did not drain")
			}
			out = append(out, d.Tick(now)...)
			now++
		}
		return out
	}
	first := run()
	d.Reset()
	if d.Pending() != 0 || d.Stats().Requests != 0 {
		t.Fatalf("reset left state: pending %d requests %d", d.Pending(), d.Stats().Requests)
	}
	second := run()
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("replay after Reset diverged")
	}
}
