package hmc

import (
	"container/heap"
	"fmt"

	"mac3d/internal/addr"
	"mac3d/internal/sim"
	"mac3d/internal/stats"
)

// Device is the HMC cube model. Submit requests in nondecreasing cycle
// order; pull completed responses with Tick.
type Device struct {
	cfg Config
	m   addr.Mapping

	// Per-link next-free cycles, one set per direction.
	reqLinkFree  []sim.Cycle
	respLinkFree []sim.Cycle
	nextLink     int

	// bankFree[v*BanksPerVault+b] is the cycle the bank precharges.
	bankFree []sim.Cycle
	// vaultFree[v] is when the vault controller can accept the next
	// request (FCFS issue, one request decoded per cycle).
	vaultFree []sim.Cycle
	// vaultPending[v] counts in-flight accesses per vault, bounded
	// by VaultQueueDepth via CanAccept.
	vaultPending []int

	// rowShift converts an address to its device row number
	// (log2 of RowBytes).
	rowShift uint

	// Open-page row-buffer state (nil under the closed-page policy):
	// rowOpen[b] reports whether bank b holds a row in its sense
	// amplifiers, openRow[b] which one.
	openPage bool
	rowOpen  []bool
	openRow  []uint64

	// cube is the routed intra-cube fabric runtime; nil for the ideal
	// topology, which keeps the direct-dispatch fast path below.
	cube *cubeState

	pending responseHeap

	// Fault-injection state (see faults.go / retry.go). All nil/zero
	// and never consulted when cfg.Faults is disabled.
	faultsOn  bool
	frng      *sim.RNG
	flink     []linkFaultState
	submitSeq uint64

	st Stats
}

// Stats accumulates device-level measurements for the harness.
type Stats struct {
	// Requests counts submitted transactions by size class.
	Requests uint64
	Reads    uint64
	Writes   uint64
	Atomics  uint64

	// BankConflicts counts accesses that waited on a busy bank.
	BankConflicts uint64
	// ConflictWaitCycles sums the cycles spent waiting on busy banks.
	ConflictWaitCycles uint64

	// DataBytes is the useful payload moved (request or response).
	DataBytes uint64
	// ControlBytes is the packet header/tail overhead moved.
	ControlBytes uint64
	// LinkBytes is DataBytes+ControlBytes (everything serialized).
	LinkBytes uint64

	// RequestsBySize histograms request payloads by FLIT count
	// (index = data FLITs, 1..64).
	RequestsBySize [MaxRequestBytes/addr.FlitBytes + 1]uint64

	// Latency is the device access latency distribution in cycles.
	Latency stats.Histogram

	// LastDone is the completion cycle of the latest-finishing
	// access seen so far (the memory-system makespan).
	LastDone sim.Cycle

	// Fault-path counters, all zero when fault injection is disabled.
	//
	// CRCErrors counts injected CRC corruptions (request and response
	// packets, every failed attempt).
	CRCErrors uint64
	// LinkRetries counts retransmissions performed by the link-retry
	// buffer.
	LinkRetries uint64
	// RetryCycles sums the extra cycles retransmission added to
	// packet delivery.
	RetryCycles uint64
	// PoisonedResponses counts responses returned with the poison
	// bit after a packet exhausted its retry budget.
	PoisonedResponses uint64
	// LinkFailures counts transient link failures (retrain events).
	LinkFailures uint64
	// LinksDisabled counts links permanently retired from service.
	LinksDisabled uint64
	// TokenStalls counts CanAccept rejections due to exhausted
	// flow-control credit.
	TokenStalls uint64
	// DroppedResponses counts responses deliberately lost by the
	// DropResponseEvery diagnostic hook.
	DroppedResponses uint64
	// VaultStallEvents counts transient vault-unavailability windows
	// applied via StallVault (chaos injection).
	VaultStallEvents uint64

	// Open-page row-buffer outcomes, all zero under the closed-page
	// policy. A RowHit found its row already open (no activate), a
	// RowMiss opened an idle bank's row (tRCD), a RowConflict evicted
	// another row first (tRP+tRCD).
	RowHits      uint64
	RowMisses    uint64
	RowConflicts uint64
}

// RowHitRate returns the fraction of open-page accesses that hit an
// already-open row, or 0 under the closed-page policy.
func (s *Stats) RowHitRate() float64 {
	total := s.RowHits + s.RowMisses + s.RowConflicts
	if total == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(total)
}

// BandwidthEfficiency returns Eq. 1 aggregated over all traffic:
// data / (data + control).
func (s *Stats) BandwidthEfficiency() float64 {
	total := s.DataBytes + s.ControlBytes
	if total == 0 {
		return 0
	}
	return float64(s.DataBytes) / float64(total)
}

// NewDevice builds a device from cfg, returning a wrapped
// configuration error for invalid input.
func NewDevice(cfg Config) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("hmc: invalid device config: %w", err)
	}
	cfg.Faults = cfg.Faults.withDefaults()
	cfg.Cube = cfg.Cube.WithDefaults()
	shift := uint(0)
	for 1<<shift != cfg.RowBytes {
		shift++
	}
	d := &Device{
		cfg:          cfg,
		m:            cfg.Mapping(),
		reqLinkFree:  make([]sim.Cycle, cfg.Links),
		respLinkFree: make([]sim.Cycle, cfg.Links),
		bankFree:     make([]sim.Cycle, cfg.Vaults*cfg.BanksPerVault),
		vaultFree:    make([]sim.Cycle, cfg.Vaults),
		vaultPending: make([]int, cfg.Vaults),
		rowShift:     shift,
	}
	if cfg.Cube.PagePolicy == PageOpen {
		d.openPage = true
		d.rowOpen = make([]bool, cfg.Vaults*cfg.BanksPerVault)
		d.openRow = make([]uint64, cfg.Vaults*cfg.BanksPerVault)
	}
	if cfg.Cube.Routed() {
		cs, err := newCubeState(cfg)
		if err != nil {
			return nil, err
		}
		d.cube = cs
	}
	d.initFaults()
	return d, nil
}

// MustNewDevice builds a device from cfg, panicking on invalid
// configuration. Intended for tests and examples whose configuration
// is a compile-time constant.
func MustNewDevice(cfg Config) *Device {
	d, err := NewDevice(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// row maps an address to its device row number (RowBytes granularity).
func (d *Device) row(a uint64) uint64 { return (a & addr.PhysMask) >> d.rowShift }

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Stats returns a snapshot pointer of accumulated statistics. The
// caller must not retain it across Reset.
func (d *Device) Stats() *Stats { return &d.st }

// CanAccept reports whether the host interface will take another
// transaction — false while the in-flight tag space is exhausted or
// any vault queue is at capacity. The MAC stops popping while this is
// false (host-side backpressure).
func (d *Device) CanAccept() bool {
	if d.Pending() >= d.cfg.MaxInflight {
		return false
	}
	for _, p := range d.vaultPending {
		if p >= d.cfg.VaultQueueDepth {
			return false
		}
	}
	if d.faultsOn && d.cfg.Faults.LinkTokens > 0 && !d.anyTokens() {
		d.st.TokenStalls++
		return false
	}
	return true
}

// StallVault makes vault v transiently unavailable until the given
// cycle: the vault controller accepts no new issue before then (models
// refresh overruns, repair cycles, or chaos-injected unavailability —
// see internal/chaos). Already-issued accesses are unaffected. Pushing
// the horizon only forward keeps the call idempotent and monotonic;
// out-of-range vaults are ignored so callers can drive heterogeneous
// device configurations blindly.
func (d *Device) StallVault(v int, until sim.Cycle) {
	if v < 0 || v >= len(d.vaultFree) {
		return
	}
	if until > d.vaultFree[v] {
		d.vaultFree[v] = until
		d.st.VaultStallEvents++
	}
}

// Submit schedules req starting at cycle now. Requests must be
// submitted in nondecreasing now order; Submit panics otherwise, since
// that indicates a broken driver rather than a recoverable condition.
func (d *Device) Submit(req Request, now sim.Cycle) {
	req.Normalize()
	// Devices with coarser minimum bursts (HBM: 32B) round small
	// transactions up to their access granularity.
	if req.Data < d.cfg.MinAccessBytes {
		req.Data = d.cfg.MinAccessBytes
	}

	// Account traffic and request mix.
	d.st.Requests++
	switch req.Kind {
	case Read:
		d.st.Reads++
	case Write:
		d.st.Writes++
	case AtomicOp:
		d.st.Atomics++
	}
	flits := req.DataFlits()
	d.st.RequestsBySize[flits]++
	d.st.DataBytes += uint64(flits) * addr.FlitBytes
	d.st.ControlBytes += req.ControlBytes()
	d.st.LinkBytes += req.TotalBytes()

	// 1. Request link serialization: the packet occupies one link.
	link := d.pickLink(now)
	reqSer := sim.Cycle(req.RequestFlits()) * d.cfg.FlitCycles
	reqStart := max(now, d.reqLinkFree[link])
	drop := false
	if d.faultsOn {
		d.submitSeq++
		f := &d.cfg.Faults
		drop = f.DropResponseEvery > 0 && d.submitSeq%f.DropResponseEvery == 0
		d.takeToken(link)
		reqStart = d.rollLinkFailure(link, reqStart)
		var delivered bool
		reqStart, delivered = d.transmit(reqStart, reqSer)
		if !delivered {
			// Retry budget exhausted on the request path: the
			// access never reaches a vault; the host sees a
			// poisoned (error) response after the final attempt.
			d.reqLinkFree[link] = reqStart + reqSer
			d.poisonResponse(req, link, now, reqStart+reqSer, drop)
			return
		}
	}
	d.reqLinkFree[link] = reqStart + reqSer

	// 2. Cross the cube to the vault. With a routed cube fabric the
	// request enters the interconnect once the external link finishes
	// serializing it; everything downstream happens in cubeDeliver as
	// the fabric moves flits.
	row := d.row(req.Addr)
	vault := d.m.Vault(row)
	if d.cube != nil {
		d.cubeSubmit(req, link, vault, reqStart+reqSer, now, drop)
		return
	}

	// Ideal cube: the switch crossing is the fixed ReqPipeline, plus
	// any quadrant-locality penalty.
	quad := d.quadPenalty(link, vault)
	arrive := reqStart + reqSer + quad + d.cfg.ReqPipeline

	// 3. Vault controller FCFS issue (one decode per cycle),
	// pushed past any refresh window in progress.
	issue := max(arrive, d.vaultFree[vault])
	issue = d.afterRefresh(vault, issue)
	d.vaultFree[vault] = issue + 1
	d.vaultPending[vault]++

	// 4. Bank access under the configured page policy.
	dataReady, conflicted := d.bankAccess(req, issue)

	// 5. Response serialization and return pipeline.
	respSer := sim.Cycle(req.ResponseFlits()) * d.cfg.FlitCycles
	respStart := max(dataReady+quad, d.respLinkFree[link])
	poisoned := false
	if d.faultsOn {
		var delivered bool
		respStart, delivered = d.transmit(respStart, respSer)
		// A response that exhausts its retries is delivered anyway,
		// with the poison bit set: the host must not use the data.
		poisoned = !delivered
	}
	d.respLinkFree[link] = respStart + respSer
	done := respStart + respSer + d.cfg.RespPipeline

	d.st.Latency.Observe(uint64(done - now))
	if done > d.st.LastDone {
		d.st.LastDone = done
	}

	if drop {
		// Lost response: the access happened, but the host never
		// hears back. The vault-queue slot and link token leak —
		// exactly how a real lost packet starves its submitter.
		d.st.DroppedResponses++
		return
	}
	if poisoned {
		d.st.PoisonedResponses++
	}

	heap.Push(&d.pending, Response{
		Tag:        req.Tag,
		Addr:       req.Addr,
		Kind:       req.Kind,
		Data:       req.Data,
		Submitted:  now,
		Done:       done,
		Conflicted: conflicted,
		Poisoned:   poisoned,
		vault:      vault,
		link:       link,
	})
}

// bankAccess times one DRAM access issued at cycle issue: bank-conflict
// wait, then the configured page policy's row handling. It returns the
// cycle the data is ready at the vault controller and whether the
// access waited on a busy bank, and advances the bank's busy horizon.
func (d *Device) bankAccess(req Request, issue sim.Cycle) (dataReady sim.Cycle, conflicted bool) {
	row := d.row(req.Addr)
	bank := d.m.FlatBank(row)
	conflicted = d.bankFree[bank] > issue
	start := issue
	if conflicted {
		d.st.BankConflicts++
		d.st.ConflictWaitCycles += uint64(d.bankFree[bank] - issue)
		start = d.bankFree[bank]
	}
	burst := sim.Cycle((req.Data + d.cfg.BurstBytesPerCycle - 1) / d.cfg.BurstBytesPerCycle)
	if !d.openPage {
		// Closed page: every access pays activate up front and
		// precharge on the way out (part of bank occupancy).
		d.bankFree[bank] = start + d.cfg.BankOccupancy(req.Data)
		return start + d.cfg.TRCD + d.cfg.TCL + burst, conflicted
	}
	// Open page: the row stays latched in the sense amplifiers after
	// the access, so the next cost depends on what the bank holds.
	var open sim.Cycle
	switch {
	case !d.rowOpen[bank]:
		open = d.cfg.TRCD
		d.st.RowMisses++
	case d.openRow[bank] == row:
		open = 0
		d.st.RowHits++
	default:
		open = d.cfg.TRP + d.cfg.TRCD
		d.st.RowConflicts++
	}
	// A request wider than the device row walks extra rows, each a
	// precharge+activate beyond the first.
	extra := sim.Cycle((req.Data + d.cfg.RowBytes - 1) / d.cfg.RowBytes)
	if extra > 0 {
		extra--
	}
	open += extra * (d.cfg.TRP + d.cfg.TRCD)
	dataReady = start + open + d.cfg.TCL + burst
	// No trailing precharge: the bank frees as soon as the burst
	// drains, and the last row touched stays open.
	d.bankFree[bank] = dataReady
	d.rowOpen[bank] = true
	d.openRow[bank] = row + uint64(extra)
	return dataReady, conflicted
}

// pushResponse enqueues a completed response for Tick to deliver.
func (d *Device) pushResponse(r Response) { heap.Push(&d.pending, r) }

// poisonResponse emits the error response for a request abandoned on
// the request path: no vault or bank was touched; the host hears a
// header-only error packet once the retry budget is exhausted.
func (d *Device) poisonResponse(req Request, link int, now, lastAttempt sim.Cycle, drop bool) {
	errSer := d.cfg.FlitCycles // header-only error response
	respStart := max(lastAttempt+d.cfg.ReqPipeline, d.respLinkFree[link])
	d.respLinkFree[link] = respStart + errSer
	done := respStart + errSer + d.cfg.RespPipeline

	d.st.Latency.Observe(uint64(done - now))
	if done > d.st.LastDone {
		d.st.LastDone = done
	}
	if drop {
		d.st.DroppedResponses++
		return
	}
	d.st.PoisonedResponses++
	heap.Push(&d.pending, Response{
		Tag:       req.Tag,
		Addr:      req.Addr,
		Kind:      req.Kind,
		Data:      req.Data,
		Submitted: now,
		Done:      done,
		Poisoned:  true,
		vault:     -1,
		link:      link,
	})
}

// afterRefresh returns the earliest cycle at or after t at which the
// vault is not blocked by a refresh window. Vault windows are
// staggered across the refresh interval so the cube never stalls
// globally.
func (d *Device) afterRefresh(vault int, t sim.Cycle) sim.Cycle {
	p := d.cfg.RefreshInterval
	if p == 0 {
		return t
	}
	offset := p * sim.Cycle(vault) / sim.Cycle(d.cfg.Vaults)
	// Position within the current period, relative to this vault's
	// window start.
	var phase sim.Cycle
	if t >= offset {
		phase = (t - offset) % p
	} else {
		phase = (t + p - offset%p) % p
	}
	if phase < d.cfg.RefreshDuration {
		return t + (d.cfg.RefreshDuration - phase)
	}
	return t
}

// pickLink chooses the link for a request. Links are selected
// round-robin, preferring an idle link when the round-robin choice is
// still serializing an earlier packet. Under fault injection the
// choice additionally respects disabled links and flow-control credit.
func (d *Device) pickLink(now sim.Cycle) int {
	if d.faultsOn {
		return d.pickFaultLink(now)
	}
	best := d.nextLink
	d.nextLink = (d.nextLink + 1) % d.cfg.Links
	if d.reqLinkFree[best] <= now {
		return best
	}
	for i, free := range d.reqLinkFree {
		if free <= now {
			return i
		}
		if free < d.reqLinkFree[best] {
			best = i
		}
	}
	return best
}

// Tick returns all responses completed at or before now, in completion
// order. The returned slice is owned by the caller.
func (d *Device) Tick(now sim.Cycle) []Response {
	if d.cube != nil {
		d.cubeAdvance(now)
	}
	var out []Response
	for d.pending.Len() > 0 && d.pending[0].Done <= now {
		r := heap.Pop(&d.pending).(Response)
		if r.vault >= 0 {
			d.vaultPending[r.vault]--
		}
		if d.faultsOn {
			d.releaseToken(r.link)
		}
		out = append(out, r)
	}
	return out
}

// Pending returns the number of in-flight accesses, including any
// still crossing the intra-cube fabric.
func (d *Device) Pending() int {
	n := d.pending.Len()
	if d.cube != nil {
		n += d.cube.inFlight
	}
	return n
}

// Drain returns the cycle by which every in-flight access completes.
func (d *Device) Drain() sim.Cycle { return d.st.LastDone }

// Reset clears all timing state and statistics.
func (d *Device) Reset() {
	for i := range d.reqLinkFree {
		d.reqLinkFree[i], d.respLinkFree[i] = 0, 0
	}
	for i := range d.bankFree {
		d.bankFree[i] = 0
	}
	for i := range d.vaultFree {
		d.vaultFree[i] = 0
		d.vaultPending[i] = 0
	}
	for i := range d.rowOpen {
		d.rowOpen[i] = false
		d.openRow[i] = 0
	}
	d.pending = d.pending[:0]
	d.nextLink = 0
	d.st = Stats{}
	if d.cube != nil {
		// Rebuild the fabric from the already-validated config; this
		// cannot fail after NewDevice accepted it.
		cs, err := newCubeState(d.cfg)
		if err != nil {
			panic(err)
		}
		d.cube = cs
	}
	d.initFaults()
}

// String summarizes the device for diagnostics.
func (d *Device) String() string {
	return fmt.Sprintf("hmc.Device{links:%d vaults:%d banks:%d inflight:%d}",
		d.cfg.Links, d.cfg.Vaults, d.cfg.Vaults*d.cfg.BanksPerVault, d.pending.Len())
}

type responseHeap []Response

func (h responseHeap) Len() int           { return len(h) }
func (h responseHeap) Less(i, j int) bool { return h[i].Done < h[j].Done }
func (h responseHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *responseHeap) Push(x any)        { *h = append(*h, x.(Response)) }
func (h *responseHeap) Pop() (out any) {
	old := *h
	n := len(old)
	out = old[n-1]
	*h = old[:n-1]
	return
}
