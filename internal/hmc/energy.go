package hmc

// Energy accounting. The paper motivates the closed-page policy and
// short rows with power (§2.2.1: leaving rows open in a 512-bank cube
// "would lead to high power consumption", short rows "reduce the
// overfetch problem"). This model quantifies the memory-side energy of
// a run so the harness can report the energy effect of coalescing:
// fewer transactions mean fewer row activations and less control
// traffic on the links.
//
// The coefficients are order-of-magnitude DRAM/SerDes figures for
// 3D-stacked parts (activation nanojoules per row, picojoules per bit
// moved internally and per bit serialized on the links); they are
// configuration, not truth — the experiments compare designs under
// the same coefficients, where the constants cancel.

// EnergyModel holds per-event energy coefficients in picojoules.
type EnergyModel struct {
	// ActivatePJ is the energy of one row activate+precharge pair.
	ActivatePJ float64
	// ArrayPJPerByte is the DRAM array access energy per byte
	// transferred between the sense amplifiers and the vault logic.
	ArrayPJPerByte float64
	// LinkPJPerByte is the SerDes energy per byte moved across the
	// host links (data and control alike).
	LinkPJPerByte float64
	// LogicPJPerRequest is the vault-controller and switch energy
	// per transaction.
	LogicPJPerRequest float64
}

// DefaultEnergyModel returns coefficients in the published ballpark
// for HMC-class devices (~1nJ activation, ~1pJ/bit internal,
// ~2pJ/bit link, a few hundred pJ of control logic per transaction).
func DefaultEnergyModel() EnergyModel {
	return EnergyModel{
		ActivatePJ:        1000,
		ArrayPJPerByte:    8,  // ~1 pJ/bit
		LinkPJPerByte:     16, // ~2 pJ/bit
		LogicPJPerRequest: 200,
	}
}

// Energy is the decomposed energy of a run, in picojoules.
type Energy struct {
	ActivatePJ float64
	ArrayPJ    float64
	LinkPJ     float64
	LogicPJ    float64
}

// TotalPJ returns the summed energy.
func (e Energy) TotalPJ() float64 { return e.ActivatePJ + e.ArrayPJ + e.LinkPJ + e.LogicPJ }

// TotalUJ returns the summed energy in microjoules.
func (e Energy) TotalUJ() float64 { return e.TotalPJ() / 1e6 }

// EnergyOf computes the energy of the traffic recorded in st under
// model m and the device geometry of cfg. Under the closed-page
// policy every access activates ceil(payload/row) rows.
func EnergyOf(m EnergyModel, cfg Config, st *Stats) Energy {
	var activations float64
	for flits, count := range st.RequestsBySize {
		if count == 0 {
			continue
		}
		bytes := uint32(flits) * 16
		acts := (bytes + cfg.RowBytes - 1) / cfg.RowBytes
		if acts == 0 {
			acts = 1
		}
		activations += float64(acts) * float64(count)
	}
	return Energy{
		ActivatePJ: m.ActivatePJ * activations,
		ArrayPJ:    m.ArrayPJPerByte * float64(st.DataBytes),
		LinkPJ:     m.LinkPJPerByte * float64(st.DataBytes+st.ControlBytes),
		LogicPJ:    m.LogicPJPerRequest * float64(st.Requests),
	}
}
