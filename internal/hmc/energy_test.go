package hmc

import (
	"math"
	"testing"
)

func TestEnergyOfSingleAccess(t *testing.T) {
	d := MustNewDevice(DefaultConfig())
	d.Submit(Request{Kind: Read, Addr: 0, Data: 64}, 0)
	m := DefaultEnergyModel()
	e := EnergyOf(m, d.Config(), d.Stats())
	// One 64B access: 1 activation, 64 array bytes, 64+32 link
	// bytes, 1 request of logic.
	if e.ActivatePJ != m.ActivatePJ {
		t.Fatalf("activate = %v", e.ActivatePJ)
	}
	if e.ArrayPJ != m.ArrayPJPerByte*64 {
		t.Fatalf("array = %v", e.ArrayPJ)
	}
	if e.LinkPJ != m.LinkPJPerByte*96 {
		t.Fatalf("link = %v", e.LinkPJ)
	}
	if e.LogicPJ != m.LogicPJPerRequest {
		t.Fatalf("logic = %v", e.LogicPJ)
	}
	want := e.ActivatePJ + e.ArrayPJ + e.LinkPJ + e.LogicPJ
	if math.Abs(e.TotalPJ()-want) > 1e-9 {
		t.Fatal("total mismatch")
	}
	if math.Abs(e.TotalUJ()-want/1e6) > 1e-15 {
		t.Fatal("unit conversion wrong")
	}
}

func TestEnergyCoalescedBeatsRaw(t *testing.T) {
	// Figure 2's example in energy terms: 16 FLIT reads of one row
	// versus one 256B read. Coalescing must save activation, link
	// and logic energy.
	raw := MustNewDevice(DefaultConfig())
	for i := 0; i < 16; i++ {
		raw.Submit(Request{Kind: Read, Addr: uint64(i * 16), Data: 16}, 0)
	}
	coal := MustNewDevice(DefaultConfig())
	coal.Submit(Request{Kind: Read, Addr: 0, Data: 256}, 0)

	m := DefaultEnergyModel()
	eRaw := EnergyOf(m, raw.Config(), raw.Stats())
	eCoal := EnergyOf(m, coal.Config(), coal.Stats())
	if eCoal.TotalPJ() >= eRaw.TotalPJ() {
		t.Fatalf("coalesced energy %v !< raw %v", eCoal.TotalPJ(), eRaw.TotalPJ())
	}
	// Activation energy drops 16x; array energy is identical
	// (same useful bytes).
	if eCoal.ActivatePJ*16 != eRaw.ActivatePJ {
		t.Fatalf("activations: %v vs %v", eCoal.ActivatePJ, eRaw.ActivatePJ)
	}
	if eCoal.ArrayPJ != eRaw.ArrayPJ {
		t.Fatalf("array energy differs: %v vs %v", eCoal.ArrayPJ, eRaw.ArrayPJ)
	}
}

func TestEnergyWideRequestMultipleActivations(t *testing.T) {
	// A 1KB request on a 256B-row device pays 4 activations.
	d := MustNewDevice(DefaultConfig())
	d.Submit(Request{Kind: Read, Addr: 0, Data: 1024}, 0)
	m := DefaultEnergyModel()
	e := EnergyOf(m, d.Config(), d.Stats())
	if e.ActivatePJ != 4*m.ActivatePJ {
		t.Fatalf("activations for 1KB on 256B rows = %v pJ", e.ActivatePJ)
	}
	// The same request on HBM's 1KB rows pays one.
	h := MustNewDevice(HBMConfig())
	h.Submit(Request{Kind: Read, Addr: 0, Data: 1024}, 0)
	eh := EnergyOf(m, h.Config(), h.Stats())
	if eh.ActivatePJ != m.ActivatePJ {
		t.Fatalf("HBM activations = %v pJ", eh.ActivatePJ)
	}
}

func TestEnergyEmptyStats(t *testing.T) {
	var st Stats
	e := EnergyOf(DefaultEnergyModel(), DefaultConfig(), &st)
	if e.TotalPJ() != 0 {
		t.Fatalf("empty stats energy %v", e.TotalPJ())
	}
}
