package hmc

import (
	"fmt"
	"math"

	"mac3d/internal/sim"
)

// FaultConfig parameterizes deterministic link-level fault injection.
// The HMC protocol (§2.2.2) protects every packet with a CRC, sequence
// numbers, a link-retry buffer, and token-based flow control; the
// paper's evaluation assumes a perfect link and never exercises that
// machinery. This model injects CRC corruptions and transient link
// failures from a seed-driven stream (sim.RNG), pays the retransmission
// latency of the link-level retry protocol, and degrades gracefully —
// retraining or disabling a failing link and re-spreading traffic over
// the survivors — so the simulator stays truthful under imperfect
// links.
//
// The zero value disables every mechanism: a Device built with a zero
// FaultConfig consumes no random numbers and behaves bit-identically
// to one built before fault injection existed.
type FaultConfig struct {
	// CRCErrorRate is the per-transmission-attempt probability that a
	// packet (request or response) arrives with a bad CRC and must be
	// retransmitted from the link-retry buffer. 0 disables CRC
	// injection; values are probabilities in [0, 1].
	CRCErrorRate float64
	// LinkFailRate is the per-request probability that the carrying
	// link suffers a transient failure (loses lock) and must retrain
	// for RetrainCycles before the packet can be retransmitted.
	LinkFailRate float64

	// RetryLimit is the maximum number of retransmissions of one
	// packet before the device gives up and returns a poisoned
	// response (default 3 when fault injection is enabled).
	RetryLimit int
	// RetryDelay is the error-detection + NAK turnaround paid per
	// retransmission, on top of re-serializing the packet
	// (default 32 cycles when fault injection is enabled).
	RetryDelay sim.Cycle
	// RetrainCycles is how long a link is down after a transient
	// failure (default 1024 cycles when fault injection is enabled).
	RetrainCycles sim.Cycle
	// DisableLinkAfter permanently disables a link once it has
	// suffered that many transient failures; traffic re-spreads over
	// the surviving links. The last active link is never disabled.
	// 0 keeps every link in service (retrain-only degradation).
	DisableLinkAfter int

	// LinkTokens enables token-based flow control: each link holds
	// LinkTokens credits, one consumed per submitted transaction and
	// returned when its response is consumed by the host. With every
	// eligible link out of tokens, CanAccept backpressures the
	// submitter. 0 disables flow control (unlimited credits).
	LinkTokens int

	// DropResponseEvery is a diagnostic hook: every Nth submitted
	// transaction silently loses its response (it is never delivered
	// by Tick, and its vault-queue slot and link token leak), which
	// is how a real lost packet starves a host. It exists to exercise
	// hang detection — the simulation watchdog — deterministically.
	// 0 disables dropping.
	DropResponseEvery uint64

	// Seed drives the fault stream. Runs with equal configuration and
	// seed inject identical faults (default 1 when fault injection is
	// enabled).
	Seed uint64
}

// Enabled reports whether any fault mechanism is switched on. A
// disabled configuration makes the fault machinery a strict no-op.
func (c FaultConfig) Enabled() bool {
	return c.CRCErrorRate > 0 || c.LinkFailRate > 0 ||
		c.LinkTokens > 0 || c.DropResponseEvery > 0
}

// withDefaults fills the protocol parameters left at zero. Only called
// when the configuration is enabled, so a zero FaultConfig stays zero.
func (c FaultConfig) withDefaults() FaultConfig {
	if !c.Enabled() {
		return c
	}
	if c.RetryLimit == 0 {
		c.RetryLimit = 3
	}
	if c.RetryDelay == 0 {
		c.RetryDelay = 32
	}
	if c.RetrainCycles == 0 {
		c.RetrainCycles = 1024
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Validate reports the first configuration error, or nil.
func (c FaultConfig) Validate() error {
	switch {
	case math.IsNaN(c.CRCErrorRate) || c.CRCErrorRate < 0 || c.CRCErrorRate > 1:
		return fmt.Errorf("hmc: CRCErrorRate must be a probability in [0,1], got %v", c.CRCErrorRate)
	case math.IsNaN(c.LinkFailRate) || c.LinkFailRate < 0 || c.LinkFailRate > 1:
		return fmt.Errorf("hmc: LinkFailRate must be a probability in [0,1], got %v", c.LinkFailRate)
	case c.RetryLimit < 0:
		return fmt.Errorf("hmc: RetryLimit must be non-negative, got %d", c.RetryLimit)
	case c.DisableLinkAfter < 0:
		return fmt.Errorf("hmc: DisableLinkAfter must be non-negative, got %d", c.DisableLinkAfter)
	case c.LinkTokens < 0:
		return fmt.Errorf("hmc: LinkTokens must be non-negative, got %d", c.LinkTokens)
	}
	return nil
}
