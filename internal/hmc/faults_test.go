package hmc

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"mac3d/internal/sim"
)

// TestFaultConfigValidate covers every branch of FaultConfig.Validate.
func TestFaultConfigValidate(t *testing.T) {
	cases := []struct {
		name    string
		cfg     FaultConfig
		wantErr string // substring; "" means valid
	}{
		{name: "zero value", cfg: FaultConfig{}},
		{name: "full valid", cfg: FaultConfig{
			CRCErrorRate: 0.5, LinkFailRate: 1, RetryLimit: 5,
			RetryDelay: 16, RetrainCycles: 100, DisableLinkAfter: 2,
			LinkTokens: 8, DropResponseEvery: 10, Seed: 7,
		}},
		{name: "boundary rates", cfg: FaultConfig{CRCErrorRate: 1, LinkFailRate: 1}},
		{name: "crc NaN", cfg: FaultConfig{CRCErrorRate: math.NaN()}, wantErr: "CRCErrorRate"},
		{name: "crc negative", cfg: FaultConfig{CRCErrorRate: -0.1}, wantErr: "CRCErrorRate"},
		{name: "crc above one", cfg: FaultConfig{CRCErrorRate: 1.5}, wantErr: "CRCErrorRate"},
		{name: "linkfail NaN", cfg: FaultConfig{LinkFailRate: math.NaN()}, wantErr: "LinkFailRate"},
		{name: "linkfail negative", cfg: FaultConfig{LinkFailRate: -1}, wantErr: "LinkFailRate"},
		{name: "linkfail above one", cfg: FaultConfig{LinkFailRate: 2}, wantErr: "LinkFailRate"},
		{name: "retry limit negative", cfg: FaultConfig{RetryLimit: -1}, wantErr: "RetryLimit"},
		{name: "disable after negative", cfg: FaultConfig{DisableLinkAfter: -3}, wantErr: "DisableLinkAfter"},
		{name: "tokens negative", cfg: FaultConfig{LinkTokens: -2}, wantErr: "LinkTokens"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestFaultConfigEnabled(t *testing.T) {
	if (FaultConfig{}).Enabled() {
		t.Fatal("zero FaultConfig reports Enabled")
	}
	// Protocol parameters alone (no injection mechanism) stay disabled.
	if (FaultConfig{RetryLimit: 5, RetryDelay: 9, RetrainCycles: 7, Seed: 3}).Enabled() {
		t.Fatal("parameter-only FaultConfig reports Enabled")
	}
	for _, c := range []FaultConfig{
		{CRCErrorRate: 0.1},
		{LinkFailRate: 0.1},
		{LinkTokens: 4},
		{DropResponseEvery: 2},
	} {
		if !c.Enabled() {
			t.Fatalf("%+v should report Enabled", c)
		}
	}
}

func TestFaultConfigWithDefaults(t *testing.T) {
	// A disabled config must stay exactly zero: defaults appearing in a
	// zero-fault device would break no-op parity guarantees elsewhere.
	if got := (FaultConfig{}).withDefaults(); got != (FaultConfig{}) {
		t.Fatalf("withDefaults on zero config = %+v, want zero", got)
	}
	got := FaultConfig{CRCErrorRate: 0.5}.withDefaults()
	if got.RetryLimit != 3 || got.RetryDelay != 32 || got.RetrainCycles != 1024 || got.Seed != 1 {
		t.Fatalf("withDefaults = %+v, want RetryLimit=3 RetryDelay=32 RetrainCycles=1024 Seed=1", got)
	}
	// Explicit values survive.
	keep := FaultConfig{CRCErrorRate: 0.5, RetryLimit: 9, RetryDelay: 8, RetrainCycles: 77, Seed: 5}
	if got := keep.withDefaults(); got != keep {
		t.Fatalf("withDefaults clobbered explicit values: %+v", got)
	}
}

// submitReads drives n sequential 64B reads through the device one
// cycle apart and collects every response by cycle max+slack.
func submitReads(d *Device, n int) []Response {
	var out []Response
	for i := 0; i < n; i++ {
		d.Submit(Request{Kind: Read, Addr: uint64(i) * 64, Data: 64, Tag: uint64(i) + 1}, sim.Cycle(i))
		out = append(out, d.Tick(sim.Cycle(i))...)
	}
	out = append(out, d.Tick(d.Drain())...)
	return out
}

// TestFaultsZeroConfigIsNoop: a device built with a zero FaultConfig
// must behave bit-identically to the fault-free model.
func TestFaultsZeroConfigIsNoop(t *testing.T) {
	base := MustNewDevice(DefaultConfig())
	cfg := DefaultConfig()
	cfg.Faults = FaultConfig{} // explicit: all mechanisms off
	faulty := MustNewDevice(cfg)
	if faulty.faultsOn {
		t.Fatal("zero FaultConfig enabled the fault machinery")
	}
	a := submitReads(base, 200)
	b := submitReads(faulty, 200)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("zero-fault device diverged from the fault-free model")
	}
	if !reflect.DeepEqual(*base.Stats(), *faulty.Stats()) {
		t.Fatal("zero-fault device stats diverged")
	}
}

// TestFaultsDeterministic: equal config and seed produce identical
// responses and counters.
func TestFaultsDeterministic(t *testing.T) {
	mk := func() *Device {
		cfg := DefaultConfig()
		cfg.Faults = FaultConfig{CRCErrorRate: 0.2, LinkFailRate: 0.05, Seed: 42}
		return MustNewDevice(cfg)
	}
	a, b := mk(), mk()
	ra, rb := submitReads(a, 500), submitReads(b, 500)
	if !reflect.DeepEqual(ra, rb) {
		t.Fatal("same seed produced different responses")
	}
	if !reflect.DeepEqual(*a.Stats(), *b.Stats()) {
		t.Fatal("same seed produced different stats")
	}
	if a.Stats().CRCErrors == 0 {
		t.Fatal("CRCErrorRate 0.2 injected no errors over 500 requests")
	}
}

// TestFaultsCRCRetryCounters: a moderate CRC rate produces retries and
// added latency but, with a generous retry budget, no poisoning.
func TestFaultsCRCRetryCounters(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Faults = FaultConfig{CRCErrorRate: 0.3, RetryLimit: 50, Seed: 1}
	d := MustNewDevice(cfg)
	resp := submitReads(d, 300)
	st := d.Stats()
	if st.CRCErrors == 0 || st.LinkRetries == 0 || st.RetryCycles == 0 {
		t.Fatalf("expected retry activity, got CRC=%d retries=%d cycles=%d",
			st.CRCErrors, st.LinkRetries, st.RetryCycles)
	}
	if st.PoisonedResponses != 0 {
		t.Fatalf("RetryLimit 50 at rate 0.3 should never exhaust, got %d poisoned", st.PoisonedResponses)
	}
	if len(resp) != 300 {
		t.Fatalf("got %d responses, want 300", len(resp))
	}
	for _, r := range resp {
		if r.Poisoned {
			t.Fatalf("tag %d unexpectedly poisoned", r.Tag)
		}
	}
}

// TestFaultsCertainCRCPoisonsEverything: rate 1.0 means every attempt
// fails, every packet exhausts its budget, and every response comes
// back poisoned — but every response still comes back.
func TestFaultsCertainCRCPoisonsEverything(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Faults = FaultConfig{CRCErrorRate: 1.0, RetryLimit: 2, Seed: 1}
	d := MustNewDevice(cfg)
	resp := submitReads(d, 50)
	if len(resp) != 50 {
		t.Fatalf("got %d responses, want 50 (poisoned responses must still deliver)", len(resp))
	}
	for _, r := range resp {
		if !r.Poisoned {
			t.Fatalf("tag %d not poisoned under CRCErrorRate 1.0", r.Tag)
		}
	}
	st := d.Stats()
	if st.PoisonedResponses != 50 {
		t.Fatalf("PoisonedResponses = %d, want 50", st.PoisonedResponses)
	}
	// Request-path failures never touch a vault.
	for _, p := range d.vaultPending {
		if p != 0 {
			t.Fatal("request-path poison leaked a vault-queue slot")
		}
	}
}

// TestFaultsLinkFailureAndDisable: certain link failure with a disable
// threshold retires links down to the last survivor.
func TestFaultsLinkFailureAndDisable(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Faults = FaultConfig{LinkFailRate: 1.0, DisableLinkAfter: 1, RetrainCycles: 10, Seed: 1}
	d := MustNewDevice(cfg)
	resp := submitReads(d, 20)
	if len(resp) != 20 {
		t.Fatalf("got %d responses, want 20", len(resp))
	}
	st := d.Stats()
	if st.LinkFailures != 20 {
		t.Fatalf("LinkFailures = %d, want 20 (rate 1.0)", st.LinkFailures)
	}
	if want := uint64(cfg.Links - 1); st.LinksDisabled != want {
		t.Fatalf("LinksDisabled = %d, want %d (last link must survive)", st.LinksDisabled, want)
	}
	if d.activeLinks() != 1 {
		t.Fatalf("activeLinks = %d, want 1", d.activeLinks())
	}
}

// TestFaultsTokenFlowControl: one token per link bounds concurrency to
// Links outstanding transactions, and CanAccept backpressures.
func TestFaultsTokenFlowControl(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Faults = FaultConfig{LinkTokens: 1, Seed: 1}
	d := MustNewDevice(cfg)
	n := 0
	for ; d.CanAccept(); n++ {
		d.Submit(Request{Kind: Read, Addr: uint64(n) * 64, Data: 64, Tag: uint64(n) + 1}, 0)
		if n > cfg.Links {
			t.Fatal("token flow control never backpressured")
		}
	}
	if n != cfg.Links {
		t.Fatalf("accepted %d submissions before stalling, want %d (one token/link)", n, cfg.Links)
	}
	if d.Stats().TokenStalls == 0 {
		t.Fatal("TokenStalls not counted")
	}
	// Draining responses returns the credits.
	d.Tick(d.Drain())
	if !d.CanAccept() {
		t.Fatal("tokens not returned after responses were consumed")
	}
}

// TestFaultsDropResponse: the diagnostic drop hook loses exactly every
// Nth response.
func TestFaultsDropResponse(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Faults = FaultConfig{DropResponseEvery: 5, Seed: 1}
	d := MustNewDevice(cfg)
	resp := submitReads(d, 50)
	if len(resp) != 40 {
		t.Fatalf("got %d responses, want 40 (10 dropped)", len(resp))
	}
	if d.Stats().DroppedResponses != 10 {
		t.Fatalf("DroppedResponses = %d, want 10", d.Stats().DroppedResponses)
	}
	seen := make(map[uint64]bool)
	for _, r := range resp {
		seen[r.Tag] = true
	}
	for i := uint64(1); i <= 50; i++ {
		want := i%5 != 0 // tag == submit sequence here
		if seen[i] != want {
			t.Fatalf("tag %d delivered=%v, want %v", i, seen[i], want)
		}
	}
}

// TestFaultsResetReplays: Reset restores the fault stream so a device
// replays identically.
func TestFaultsResetReplays(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Faults = FaultConfig{CRCErrorRate: 0.25, LinkFailRate: 0.1, LinkTokens: 4, Seed: 9}
	d := MustNewDevice(cfg)
	a := submitReads(d, 200)
	statsA := *d.Stats()
	d.Reset()
	b := submitReads(d, 200)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Reset did not restore the fault stream")
	}
	if !reflect.DeepEqual(statsA, *d.Stats()) {
		t.Fatal("Reset did not restore fault counters")
	}
}

// TestNewDeviceInvalidConfig: the constructor surfaces configuration
// errors instead of panicking.
func TestNewDeviceInvalidConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Links = 0
	if _, err := NewDevice(cfg); err == nil {
		t.Fatal("NewDevice accepted Links=0")
	}
	cfg = DefaultConfig()
	cfg.Faults.CRCErrorRate = 2
	if _, err := NewDevice(cfg); err == nil {
		t.Fatal("NewDevice accepted CRCErrorRate=2")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewDevice did not panic on invalid config")
		}
	}()
	MustNewDevice(cfg)
}
