package hmc

import (
	"testing"

	"mac3d/internal/addr"
)

func TestHBMConfigValid(t *testing.T) {
	cfg := HBMConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.RowBytes != 1024 || cfg.MinAccessBytes != 32 {
		t.Fatalf("HBM geometry: rows %d, min %d", cfg.RowBytes, cfg.MinAccessBytes)
	}
}

func TestConfigRejectsBadRowGeometry(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.RowBytes = 0 },
		func(c *Config) { c.RowBytes = 300 },
		func(c *Config) { c.MinAccessBytes = 0 },
		func(c *Config) { c.MinAccessBytes = 24 },
		func(c *Config) { c.MinAccessBytes = 2048 },
	}
	for i, mutate := range bad {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("bad geometry %d accepted", i)
		}
	}
}

func TestHBMMinimumBurstRounding(t *testing.T) {
	d := MustNewDevice(HBMConfig())
	d.Submit(Request{Kind: Read, Addr: 0, Data: 16}, 0)
	resps := d.Tick(d.Drain())
	if len(resps) != 1 {
		t.Fatalf("%d responses", len(resps))
	}
	// A 16B MAC bypass request becomes one 32B HBM burst.
	if resps[0].Data != 32 {
		t.Fatalf("HBM payload = %d, want 32", resps[0].Data)
	}
}

func TestHBMWiderRowsAbsorbConflicts(t *testing.T) {
	// Four 256B MAC windows covering 1KB: in HMC they hit four
	// different rows spread over four banks; back-to-back they
	// conflict only if mapped to the same bank. Construct the
	// stronger test: accesses 256B apart that conflict in HMC
	// (same bank, different rows via stride) map inside ONE 1KB
	// HBM row -> one bank, sequential conflicts still occur, so
	// instead verify row granularity directly.
	hmcDev := MustNewDevice(DefaultConfig())
	hbmDev := MustNewDevice(HBMConfig())
	if hmcDev.row(1023) != 3 {
		t.Fatalf("HMC row of 1023 = %d, want 3", hmcDev.row(1023))
	}
	if hbmDev.row(1023) != 0 {
		t.Fatalf("HBM row of 1023 = %d, want 0", hbmDev.row(1023))
	}
	if hbmDev.row(1024) != 1 {
		t.Fatalf("HBM row of 1024 = %d, want 1", hbmDev.row(1024))
	}
}

func TestHBMRunsFullWorkload(t *testing.T) {
	d := MustNewDevice(HBMConfig())
	for i := 0; i < 256; i++ {
		d.Submit(Request{Kind: Read, Addr: uint64(i) * 64, Data: 64, Tag: uint64(i)}, 0)
	}
	resps := d.Tick(d.Drain())
	if len(resps) != 256 {
		t.Fatalf("completed %d of 256", len(resps))
	}
	if d.Stats().DataBytes != 256*64 {
		t.Fatalf("data bytes = %d", d.Stats().DataBytes)
	}
}

func TestVaultQueueDepthBackpressure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.VaultQueueDepth = 2
	cfg.MaxInflight = 1000
	d := MustNewDevice(cfg)
	if !d.CanAccept() {
		t.Fatal("fresh device refuses work")
	}
	// Three accesses to the same vault: the third exceeds the
	// per-vault queue depth.
	rowStride := uint64(cfg.Vaults) * uint64(addr.RowBytes)
	d.Submit(Request{Kind: Read, Addr: 0, Data: 16}, 0)
	d.Submit(Request{Kind: Read, Addr: rowStride, Data: 16}, 0)
	if d.CanAccept() {
		t.Fatal("full vault queue not backpressuring")
	}
	// Draining restores acceptance.
	d.Tick(d.Drain())
	if !d.CanAccept() {
		t.Fatal("drained device still refusing")
	}
}

func TestMaxInflightBackpressure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxInflight = 4
	d := MustNewDevice(cfg)
	for i := 0; i < 4; i++ {
		d.Submit(Request{Kind: Read, Addr: uint64(i) * 256, Data: 16}, 0)
	}
	if d.CanAccept() {
		t.Fatal("tag space exhausted but device accepts")
	}
	d.Tick(d.Drain())
	if !d.CanAccept() {
		t.Fatal("device not accepting after drain")
	}
}
