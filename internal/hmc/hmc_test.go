package hmc

import (
	"math"
	"testing"
	"testing/quick"

	"mac3d/internal/addr"
	"mac3d/internal/sim"
)

func TestRequestNormalize(t *testing.T) {
	cases := []struct{ in, want uint32 }{
		{0, 16}, {1, 16}, {16, 16}, {17, 32}, {64, 64}, {255, 256}, {256, 256},
		{1000, 1008}, {1024, 1024}, {5000, 1024}, // §4.3 wide-window ceiling
	}
	for _, c := range cases {
		r := Request{Data: c.in}
		if got := r.Normalize(); got != c.want {
			t.Fatalf("Normalize(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestFlitAccounting(t *testing.T) {
	// A 256B read: request 1 FLIT, response 17 FLITs; 32B control.
	r := Request{Kind: Read, Data: 256}
	r.Normalize()
	if r.RequestFlits() != 1 || r.ResponseFlits() != 17 {
		t.Fatalf("read flits = %d/%d", r.RequestFlits(), r.ResponseFlits())
	}
	if r.ControlBytes() != 32 {
		t.Fatalf("control = %d", r.ControlBytes())
	}
	if r.TotalBytes() != 18*16 {
		t.Fatalf("total = %d", r.TotalBytes())
	}

	// A 256B write: request 17 FLITs, response 1 FLIT.
	w := Request{Kind: Write, Data: 256}
	w.Normalize()
	if w.RequestFlits() != 17 || w.ResponseFlits() != 1 {
		t.Fatalf("write flits = %d/%d", w.RequestFlits(), w.ResponseFlits())
	}

	// Atomics carry one FLIT each way plus control.
	a := Request{Kind: AtomicOp, Data: 16}
	a.Normalize()
	if a.RequestFlits() != 2 || a.ResponseFlits() != 2 {
		t.Fatalf("atomic flits = %d/%d", a.RequestFlits(), a.ResponseFlits())
	}
}

func TestEfficiencyEquation1(t *testing.T) {
	// Figure 3 anchor points from the paper.
	cases := map[uint32]float64{
		16:  1.0 / 3.0, // 33.33%
		32:  0.5,
		64:  2.0 / 3.0,
		128: 0.8,
		256: 256.0 / 288.0, // 88.89%
	}
	for size, want := range cases {
		if got := Efficiency(size); math.Abs(got-want) > 1e-9 {
			t.Fatalf("Efficiency(%d) = %v, want %v", size, got, want)
		}
	}
	// The paper's 2.67x improvement of 256B over 16B.
	ratio := Efficiency(256) / Efficiency(16)
	if math.Abs(ratio-2.6666) > 0.001 {
		t.Fatalf("256B/16B efficiency ratio = %v, want ~2.67", ratio)
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Links = 0 },
		func(c *Config) { c.Vaults = 0 },
		func(c *Config) { c.BanksPerVault = -1 },
		func(c *Config) { c.FlitCycles = 0 },
		func(c *Config) { c.BurstBytesPerCycle = 0 },
		func(c *Config) { c.VaultQueueDepth = 0 },
	}
	for i, mutate := range bad {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestDefaultLatencyMatchesTable1(t *testing.T) {
	// Table 1: average HMC access latency 93ns at 3.3GHz ≈ 307 cycles.
	cfg := DefaultConfig()
	clock := sim.NewClock(0)
	lat := cfg.UnloadedReadLatency(16)
	ns := clock.NanosForCycles(lat)
	if ns < 80 || ns > 105 {
		t.Fatalf("unloaded 16B read = %.1fns (%d cycles), want ~93ns", ns, lat)
	}
}

func TestBankOccupancyClosedPage(t *testing.T) {
	cfg := DefaultConfig()
	// Closed-page: every access pays activate+column+burst+precharge.
	occ16 := cfg.BankOccupancy(16)
	occ256 := cfg.BankOccupancy(256)
	if occ16 != cfg.TRCD+cfg.TCL+1+cfg.TRP {
		t.Fatalf("16B occupancy = %d", occ16)
	}
	if occ256 != cfg.TRCD+cfg.TCL+8+cfg.TRP {
		t.Fatalf("256B occupancy = %d", occ256)
	}
	if occ256-occ16 != 7 {
		t.Fatal("burst scaling wrong")
	}
}

func TestSingleRequestLifecycle(t *testing.T) {
	d := MustNewDevice(DefaultConfig())
	d.Submit(Request{Kind: Read, Addr: 0x1000, Data: 16, Tag: 7}, 0)
	if d.Pending() != 1 {
		t.Fatalf("pending = %d", d.Pending())
	}
	if got := d.Tick(10); len(got) != 0 {
		t.Fatalf("completed too early: %v", got)
	}
	done := d.Drain()
	resps := d.Tick(done)
	if len(resps) != 1 {
		t.Fatalf("got %d responses", len(resps))
	}
	r := resps[0]
	if r.Tag != 7 || r.Addr != 0x1000 || r.Kind != Read || r.Conflicted {
		t.Fatalf("response = %+v", r)
	}
	if r.Latency() != done {
		t.Fatalf("latency = %d, want %d", r.Latency(), done)
	}
	if d.Pending() != 0 {
		t.Fatal("response not drained")
	}
}

func TestSameRowSequentialRequestsConflict(t *testing.T) {
	// Figure 2's pathology: 16 independent FLIT loads of one row
	// produce 15 bank conflicts; one coalesced 256B read produces 0.
	cfg := DefaultConfig()
	d := MustNewDevice(cfg)
	for i := 0; i < 16; i++ {
		d.Submit(Request{Kind: Read, Addr: uint64(i * 16), Data: 16}, 0)
	}
	if got := d.Stats().BankConflicts; got != 15 {
		t.Fatalf("raw: %d conflicts, want 15", got)
	}

	d2 := MustNewDevice(cfg)
	d2.Submit(Request{Kind: Read, Addr: 0, Data: 256}, 0)
	if got := d2.Stats().BankConflicts; got != 0 {
		t.Fatalf("coalesced: %d conflicts, want 0", got)
	}

	// And the coalesced makespan must beat the serialized one.
	if d2.Drain() >= d.Drain() {
		t.Fatalf("coalesced makespan %d !< raw %d", d2.Drain(), d.Drain())
	}
}

func TestDifferentVaultsNoConflict(t *testing.T) {
	cfg := DefaultConfig()
	d := MustNewDevice(cfg)
	// Consecutive rows interleave across vaults: no bank conflicts.
	for i := 0; i < cfg.Vaults; i++ {
		d.Submit(Request{Kind: Read, Addr: uint64(i) * addr.RowBytes, Data: 16}, 0)
	}
	if got := d.Stats().BankConflicts; got != 0 {
		t.Fatalf("cross-vault requests conflicted %d times", got)
	}
}

func TestSameBankDifferentRowsConflict(t *testing.T) {
	cfg := DefaultConfig()
	d := MustNewDevice(cfg)
	m := cfg.Mapping()
	// Two different rows mapping to the same bank conflict.
	stride := uint64(cfg.Vaults*cfg.BanksPerVault) * addr.RowBytes
	r0, r1 := uint64(0), stride
	if m.FlatBank(addr.RowNumber(r0)) != m.FlatBank(addr.RowNumber(r1)) {
		t.Fatal("test rows should share a bank")
	}
	d.Submit(Request{Kind: Read, Addr: r0, Data: 16}, 0)
	d.Submit(Request{Kind: Read, Addr: r1, Data: 16}, 0)
	if got := d.Stats().BankConflicts; got != 1 {
		t.Fatalf("conflicts = %d, want 1", got)
	}
}

func TestBankFreesAfterOccupancy(t *testing.T) {
	cfg := DefaultConfig()
	d := MustNewDevice(cfg)
	d.Submit(Request{Kind: Read, Addr: 0, Data: 16}, 0)
	// A second access to the same bank long after it precharged
	// must not conflict.
	late := sim.Cycle(10000)
	d.Submit(Request{Kind: Read, Addr: 0, Data: 16}, late)
	if got := d.Stats().BankConflicts; got != 0 {
		t.Fatalf("late request conflicted (%d)", got)
	}
}

func TestTrafficAccounting(t *testing.T) {
	d := MustNewDevice(DefaultConfig())
	d.Submit(Request{Kind: Read, Addr: 0, Data: 16}, 0)
	d.Submit(Request{Kind: Write, Addr: 4096, Data: 128}, 0)
	st := d.Stats()
	if st.Requests != 2 || st.Reads != 1 || st.Writes != 1 {
		t.Fatalf("mix wrong: %+v", st)
	}
	if st.DataBytes != 16+128 {
		t.Fatalf("data bytes = %d", st.DataBytes)
	}
	if st.ControlBytes != 64 {
		t.Fatalf("control bytes = %d", st.ControlBytes)
	}
	if st.LinkBytes != st.DataBytes+st.ControlBytes {
		t.Fatal("link bytes != data+control")
	}
	if st.RequestsBySize[1] != 1 || st.RequestsBySize[8] != 1 {
		t.Fatalf("size histogram wrong: %v", st.RequestsBySize)
	}
	wantEff := float64(144) / float64(144+64)
	if math.Abs(st.BandwidthEfficiency()-wantEff) > 1e-12 {
		t.Fatalf("efficiency = %v, want %v", st.BandwidthEfficiency(), wantEff)
	}
}

func TestLinkSerializationSpreadsAcrossLinks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FlitCycles = 4 // make serialization visible
	d := MustNewDevice(cfg)
	// 4 writes of 256B at cycle 0: with 4 links they serialize in
	// parallel; their completions must be much closer together than
	// 4x the serialization time.
	for i := 0; i < 4; i++ {
		d.Submit(Request{Kind: Write, Addr: uint64(i) * addr.RowBytes, Data: 256, Tag: uint64(i)}, 0)
	}
	resps := d.Tick(d.Drain())
	if len(resps) != 4 {
		t.Fatalf("%d responses", len(resps))
	}
	var minD, maxD sim.Cycle
	for i, r := range resps {
		if i == 0 || r.Done < minD {
			minD = r.Done
		}
		if r.Done > maxD {
			maxD = r.Done
		}
	}
	ser := sim.Cycle(17) * cfg.FlitCycles
	if maxD-minD >= ser {
		t.Fatalf("completions spread %d cycles, want < %d (parallel links)", maxD-minD, ser)
	}
}

func TestSingleLinkSerializes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Links = 1
	cfg.FlitCycles = 4
	d := MustNewDevice(cfg)
	d.Submit(Request{Kind: Write, Addr: 0, Data: 256}, 0)
	d.Submit(Request{Kind: Write, Addr: addr.RowBytes, Data: 256}, 0)
	resps := d.Tick(d.Drain())
	gap := resps[1].Done - resps[0].Done
	ser := sim.Cycle(17) * cfg.FlitCycles
	if gap < ser {
		t.Fatalf("single link: completion gap %d < serialization %d", gap, ser)
	}
}

func TestResponsesInCompletionOrder(t *testing.T) {
	d := MustNewDevice(DefaultConfig())
	// A big slow access submitted first, small fast one after, to a
	// different vault: the small one may finish first.
	d.Submit(Request{Kind: Read, Addr: 0, Data: 256, Tag: 1}, 0)
	d.Submit(Request{Kind: Read, Addr: addr.RowBytes, Data: 16, Tag: 2}, 0)
	resps := d.Tick(d.Drain())
	if len(resps) != 2 {
		t.Fatalf("%d responses", len(resps))
	}
	if resps[0].Done > resps[1].Done {
		t.Fatal("responses out of completion order")
	}
}

func TestResetClearsState(t *testing.T) {
	d := MustNewDevice(DefaultConfig())
	d.Submit(Request{Kind: Read, Addr: 0, Data: 16}, 0)
	d.Reset()
	if d.Pending() != 0 || d.Stats().Requests != 0 || d.Drain() != 0 {
		t.Fatal("reset incomplete")
	}
	// Bank state must be cleared: immediate same-bank access at
	// cycle 0 must not conflict.
	d.Submit(Request{Kind: Read, Addr: 0, Data: 16}, 0)
	if d.Stats().BankConflicts != 0 {
		t.Fatal("bank state survived reset")
	}
}

func TestLatencyMonotoneWithLoadProperty(t *testing.T) {
	// Property: adding contention never reduces the makespan.
	f := func(nExtra uint8) bool {
		cfg := DefaultConfig()
		base := MustNewDevice(cfg)
		base.Submit(Request{Kind: Read, Addr: 0, Data: 16}, 0)
		baseDone := base.Drain()

		loaded := MustNewDevice(cfg)
		loaded.Submit(Request{Kind: Read, Addr: 0, Data: 16}, 0)
		for i := 0; i < int(nExtra%32); i++ {
			loaded.Submit(Request{Kind: Read, Addr: uint64(i) * 16, Data: 16}, 0)
		}
		return loaded.Drain() >= baseDone
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestStringDiagnostics(t *testing.T) {
	d := MustNewDevice(DefaultConfig())
	if s := d.String(); s == "" {
		t.Fatal("empty String()")
	}
	if Read.String() != "RD" || Write.String() != "WR" || AtomicOp.String() != "ATOM" {
		t.Fatal("kind strings wrong")
	}
}
