package hmc

import "mac3d/internal/obs"

// AttachObs wires the device into a run's observability layer:
// end-of-run gauges into the metrics registry, and queue/link state
// probes into the cycle-sampled timeseries recorder.
func (d *Device) AttachObs(o *obs.Obs) {
	reg := o.Reg()
	reg.Func("hmc.inflight", func() float64 { return float64(d.pending.Len()) })
	reg.Func("hmc.requests", func() float64 { return float64(d.st.Requests) })
	reg.Func("hmc.bank_conflicts", func() float64 { return float64(d.st.BankConflicts) })
	reg.Func("hmc.link.retries", func() float64 { return float64(d.st.LinkRetries) })
	reg.Func("hmc.link.crc_errors", func() float64 { return float64(d.st.CRCErrors) })
	reg.Func("hmc.link.poisoned", func() float64 { return float64(d.st.PoisonedResponses) })
	reg.Func("hmc.link.token_stalls", func() float64 { return float64(d.st.TokenStalls) })
	if d.openPage {
		reg.Func("hmc.row.hits", func() float64 { return float64(d.st.RowHits) })
		reg.Func("hmc.row.misses", func() float64 { return float64(d.st.RowMisses) })
		reg.Func("hmc.row.conflicts", func() float64 { return float64(d.st.RowConflicts) })
		reg.Func("hmc.row.hit_rate", func() float64 { return d.st.RowHitRate() })
	}
	if d.cube != nil {
		// Cube fabric gauges live under hmc.cube. rather than the
		// fabric's own noc. prefix, which the NUMA interconnect owns.
		reg.Func("hmc.cube.delivered", func() float64 { return float64(d.cube.fab.Stats().Delivered) })
		reg.Func("hmc.cube.stall_cycles", func() float64 {
			credit, chaos := d.cube.fab.Stats().StallCycles()
			return float64(credit + chaos)
		})
	}

	rec := o.Rec()
	rec.Watch("hmc.inflight", func() float64 { return float64(d.pending.Len()) })
	if d.cube != nil {
		rec.Watch("hmc.cube.in_flight", func() float64 {
			return float64(d.cube.fab.InFlight())
		})
	}
	rec.Watch("hmc.vault.pending_total", func() float64 {
		total := 0
		for _, p := range d.vaultPending {
			total += p
		}
		return float64(total)
	})
	rec.Watch("hmc.vault.pending_max", func() float64 {
		m := 0
		for _, p := range d.vaultPending {
			if p > m {
				m = p
			}
		}
		return float64(m)
	})
	// Cumulative fault-path counters sampled over time show *when*
	// link trouble happened, not just how much.
	rec.Watch("hmc.link.retries", func() float64 { return float64(d.st.LinkRetries) })
	if d.faultsOn && d.cfg.Faults.LinkTokens > 0 {
		rec.Watch("hmc.link.tokens", func() float64 {
			total := 0
			for i := range d.flink {
				total += d.flink[i].tokens
			}
			return float64(total)
		})
	}
}

var _ obs.Attacher = (*Device)(nil)
