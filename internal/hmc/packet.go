// Package hmc is a cycle-accounted model of a Hybrid Memory Cube
// device, standing in for HMCSim-3.0 in the paper's evaluation
// pipeline. It models the features MAC's results depend on:
//
//   - the packetized FLIT protocol, with 16B of control per packet and
//     32B of control per complete access (paper §2.2.2, Eq. 1);
//   - serialization over a configurable number of full-duplex links;
//   - vault/bank organization with closed-page DRAM timing, making
//     every access a row-buffer miss (paper §2.2.1);
//   - per-bank conflict detection: a request that finds its bank busy
//     is a recorded bank conflict and waits, serializing the pipeline.
//
// The device is driven in nondecreasing cycle order: Submit schedules a
// request analytically against link, vault and bank availability, and
// Tick(now) delivers the responses whose completion cycle has arrived.
package hmc

import (
	"fmt"

	"mac3d/internal/addr"
	"mac3d/internal/sim"
)

// Kind is the request packet type.
type Kind uint8

const (
	// Read requests data from the device.
	Read Kind = iota
	// Write sends data to the device.
	Write
	// AtomicOp is an atomic read-modify-write executed in the logic
	// layer; it carries one FLIT of data each way.
	AtomicOp
)

// String returns the mnemonic of the kind.
func (k Kind) String() string {
	switch k {
	case Read:
		return "RD"
	case Write:
		return "WR"
	case AtomicOp:
		return "ATOM"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// ControlBytesPerPacket is the header+tail overhead of one HMC packet.
const ControlBytesPerPacket = 16

// MaxRequestBytes is the architectural ceiling on one transaction's
// payload: 256B is the HMC 2.1 maximum the paper evaluates; the §4.3
// generalization (wider coalescing windows, HBM rows) extends it to
// 1KB. Devices with smaller rows serve larger requests with multiple
// row activations (see Config.BankOccupancy).
const MaxRequestBytes = 1024

// ControlBytesPerAccess is the combined request+response control
// overhead of one complete memory access (Eq. 1 denominator term).
const ControlBytesPerAccess = 2 * ControlBytesPerPacket

// Request is one transaction submitted to the device.
type Request struct {
	// Kind selects read/write/atomic handling.
	Kind Kind
	// Addr is the physical start address of the transaction.
	Addr uint64
	// Data is the payload size in bytes. The protocol operates at
	// FLIT granularity: sizes are rounded up to a multiple of 16
	// and clipped to MaxRequestBytes by Normalize.
	Data uint32
	// Tag is an opaque identifier echoed on the response; the
	// submitter (the MAC's response router) uses it to recover the
	// buffered target list.
	Tag uint64
}

// Normalize rounds the payload up to FLIT granularity (minimum one
// FLIT) and reports the normalized size.
func (r *Request) Normalize() uint32 {
	if r.Data == 0 {
		r.Data = addr.FlitBytes
	}
	if rem := r.Data % addr.FlitBytes; rem != 0 {
		r.Data += addr.FlitBytes - rem
	}
	if r.Data > MaxRequestBytes {
		r.Data = MaxRequestBytes
	}
	return r.Data
}

// DataFlits returns the number of 16B data FLITs the payload occupies.
func (r Request) DataFlits() uint32 {
	d := r.Data
	if d == 0 {
		d = addr.FlitBytes
	}
	return (d + addr.FlitBytes - 1) / addr.FlitBytes
}

// RequestFlits returns the FLITs of the request packet: one control
// FLIT plus, for writes and atomics, the outbound data FLITs.
func (r Request) RequestFlits() uint32 {
	switch r.Kind {
	case Write:
		return 1 + r.DataFlits()
	case AtomicOp:
		return 2 // control + one operand FLIT
	default:
		return 1
	}
}

// ResponseFlits returns the FLITs of the response packet: one control
// FLIT plus, for reads and atomics, the returned data FLITs.
func (r Request) ResponseFlits() uint32 {
	switch r.Kind {
	case Read:
		return 1 + r.DataFlits()
	case AtomicOp:
		return 2 // control + the old value
	default:
		return 1
	}
}

// TotalBytes returns all bytes moved across the links for the access.
func (r Request) TotalBytes() uint64 {
	return uint64(r.RequestFlits()+r.ResponseFlits()) * addr.FlitBytes
}

// ControlBytes returns the link bytes that are protocol overhead.
func (r Request) ControlBytes() uint64 {
	switch r.Kind {
	case Read, Write:
		return ControlBytesPerAccess
	case AtomicOp:
		return ControlBytesPerAccess
	default:
		return ControlBytesPerAccess
	}
}

// BandwidthEfficiency returns Eq. 1 for this access:
// data / (data + overhead).
func (r Request) BandwidthEfficiency() float64 {
	d := float64(r.DataFlits() * addr.FlitBytes)
	return d / (d + float64(r.ControlBytes()))
}

// Response reports the completion of a request.
type Response struct {
	// Tag is copied from the request.
	Tag uint64
	// Addr is copied from the request.
	Addr uint64
	// Kind is copied from the request.
	Kind Kind
	// Data is the normalized payload size of the access.
	Data uint32
	// Submitted is the cycle the request entered the device.
	Submitted sim.Cycle
	// Done is the cycle the response finished arriving at the host.
	Done sim.Cycle
	// Conflicted reports whether the access waited on a busy bank.
	Conflicted bool
	// Poisoned marks a response whose data is unusable: the request
	// or response packet exhausted its link-retry budget. The access
	// did not (for a request-side failure) touch DRAM; the host must
	// surface an error to the issuing thread instead of retiring the
	// access as successful.
	Poisoned bool
	// vault is device-internal bookkeeping for queue accounting;
	// -1 marks a response that never reached a vault (poisoned on the
	// request path).
	vault int
	// link is the carrying link, for flow-control credit return.
	link int
}

// Latency returns the end-to-end device latency of the access.
func (r Response) Latency() sim.Cycle { return r.Done - r.Submitted }

// Efficiency (Eq. 1) for a given request payload in bytes.
func Efficiency(dataBytes uint32) float64 {
	d := float64(dataBytes)
	return d / (d + float64(ControlBytesPerAccess))
}
