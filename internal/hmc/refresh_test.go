package hmc

import (
	"testing"

	"mac3d/internal/sim"
)

func refreshConfig() Config {
	cfg := DefaultConfig()
	cfg.RefreshInterval = 25740 // tREFI ~7.8us at 3.3GHz
	cfg.RefreshDuration = 1155  // tRFC ~350ns
	return cfg
}

func TestRefreshDisabledByDefault(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.RefreshInterval != 0 {
		t.Fatal("refresh must default off (paper's model)")
	}
	d := MustNewDevice(cfg)
	if got := d.afterRefresh(0, 12345); got != 12345 {
		t.Fatalf("disabled refresh moved time: %d", got)
	}
}

func TestRefreshValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RefreshInterval = 100
	cfg.RefreshDuration = 100
	if err := cfg.Validate(); err == nil {
		t.Fatal("duration >= interval accepted")
	}
	if err := refreshConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRefreshBlocksWindow(t *testing.T) {
	d := MustNewDevice(refreshConfig())
	// Vault 0's window starts at cycle 0: an access at cycle 10 is
	// pushed past the window end.
	if got := d.afterRefresh(0, 10); got != 1155 {
		t.Fatalf("in-window access at %d, want 1155", got)
	}
	// Just after the window: unaffected.
	if got := d.afterRefresh(0, 1155); got != 1155 {
		t.Fatalf("post-window access moved to %d", got)
	}
	// Next period blocks again.
	if got := d.afterRefresh(0, 25740+5); got != 25740+1155 {
		t.Fatalf("second window: %d", got)
	}
}

func TestRefreshStaggeredAcrossVaults(t *testing.T) {
	d := MustNewDevice(refreshConfig())
	// Vault 16 of 32 refreshes half a period later; cycle 10 is
	// outside its window.
	if got := d.afterRefresh(16, 10); got != 10 {
		t.Fatalf("staggered vault blocked at %d", got)
	}
	// But its own window (starting at period/2) blocks.
	half := sim.Cycle(25740 / 2)
	if got := d.afterRefresh(16, half+10); got != half+1155 {
		t.Fatalf("vault 16 window: %d, want %d", got, half+1155)
	}
}

func TestRefreshAddsLatencyTail(t *testing.T) {
	// With refresh on, a long request stream sees a higher maximum
	// latency than without, but a similar mean.
	run := func(cfg Config) (mean float64, maxv uint64) {
		d := MustNewDevice(cfg)
		now := sim.Cycle(0)
		for i := 0; i < 2000; i++ {
			d.Submit(Request{Kind: Read, Addr: uint64(i) * 256, Data: 64}, now)
			now += 16
		}
		st := d.Stats()
		return st.Latency.Mean(), st.Latency.Max()
	}
	meanOff, maxOff := run(DefaultConfig())
	meanOn, maxOn := run(refreshConfig())
	if maxOn <= maxOff {
		t.Fatalf("refresh added no latency tail: max %d vs %d", maxOn, maxOff)
	}
	if meanOn < meanOff {
		t.Fatalf("refresh lowered mean latency: %v vs %v", meanOn, meanOff)
	}
	// The mean must not explode: refresh costs ~4.5% utilization.
	if meanOn > meanOff*1.5 {
		t.Fatalf("refresh mean blow-up: %v vs %v", meanOn, meanOff)
	}
}
