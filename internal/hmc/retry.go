package hmc

import "mac3d/internal/sim"

// This file implements the link-level retry protocol of §2.2.2 on top
// of the analytical device model: the link-retry buffer (sequence
// numbers + bounded retransmission), token-based flow control, and
// graceful link degradation. All of it is inert — zero state, zero
// random numbers consumed — unless the device was built with an
// enabled FaultConfig.

// linkFaultState is the per-link slice of the fault model.
type linkFaultState struct {
	// failures counts transient link failures suffered so far.
	failures int
	// disabled marks a link permanently retired from service.
	disabled bool
	// tokens is the remaining flow-control credit (LinkTokens mode).
	tokens int
}

// initFaults sets up the fault-injection state for a freshly built or
// Reset device.
func (d *Device) initFaults() {
	d.faultsOn = d.cfg.Faults.Enabled()
	if !d.faultsOn {
		d.frng = nil
		d.flink = nil
		return
	}
	d.frng = sim.NewRNG(d.cfg.Faults.Seed)
	d.flink = make([]linkFaultState, d.cfg.Links)
	for i := range d.flink {
		d.flink[i].tokens = d.cfg.Faults.LinkTokens
	}
	d.submitSeq = 0
}

// linkEligible reports whether a link may carry a new transaction:
// it must be in service and, under token flow control, hold a credit.
func (d *Device) linkEligible(i int) bool {
	ls := &d.flink[i]
	if ls.disabled {
		return false
	}
	return d.cfg.Faults.LinkTokens == 0 || ls.tokens > 0
}

// activeLinks counts links still in service.
func (d *Device) activeLinks() int {
	n := 0
	for i := range d.flink {
		if !d.flink[i].disabled {
			n++
		}
	}
	return n
}

// anyTokens reports whether some in-service link holds a credit.
func (d *Device) anyTokens() bool {
	for i := range d.flink {
		if d.linkEligible(i) {
			return true
		}
	}
	return false
}

// takeToken consumes one flow-control credit on the link.
func (d *Device) takeToken(link int) {
	if d.cfg.Faults.LinkTokens > 0 {
		d.flink[link].tokens--
	}
}

// releaseToken returns one flow-control credit to the link.
func (d *Device) releaseToken(link int) {
	if d.cfg.Faults.LinkTokens > 0 {
		d.flink[link].tokens++
	}
}

// pickFaultLink selects the link for a request under fault injection:
// round-robin over eligible links (in service, credit available),
// preferring an idle one, falling back to the least-loaded in-service
// link when no link is eligible (a driver that ignores CanAccept).
func (d *Device) pickFaultLink(now sim.Cycle) int {
	n := d.cfg.Links
	best := -1
	for off := 0; off < n; off++ {
		i := (d.nextLink + off) % n
		if !d.linkEligible(i) {
			continue
		}
		if best == -1 || d.reqLinkFree[i] < d.reqLinkFree[best] {
			best = i
		}
		if d.reqLinkFree[i] <= now {
			best = i
			break
		}
	}
	if best == -1 {
		// No eligible link: spill onto the least-loaded in-service
		// link (its token balance goes negative, modelling a host
		// that overruns its credit).
		for i := range d.flink {
			if d.flink[i].disabled {
				continue
			}
			if best == -1 || d.reqLinkFree[i] < d.reqLinkFree[best] {
				best = i
			}
		}
		if best == -1 {
			best = 0 // unreachable: the last link is never disabled
		}
	}
	d.nextLink = (best + 1) % n
	return best
}

// rollLinkFailure models a transient link failure on the carrying
// link: with probability LinkFailRate the link loses lock at start and
// retrains for RetrainCycles before the packet can go out. A link that
// accumulates DisableLinkAfter failures is permanently disabled
// (unless it is the last one standing) and traffic re-spreads over the
// survivors via pickFaultLink.
func (d *Device) rollLinkFailure(link int, start sim.Cycle) sim.Cycle {
	f := &d.cfg.Faults
	if f.LinkFailRate <= 0 || d.frng.Float64() >= f.LinkFailRate {
		return start
	}
	ls := &d.flink[link]
	ls.failures++
	d.st.LinkFailures++
	if f.DisableLinkAfter > 0 && !ls.disabled &&
		ls.failures >= f.DisableLinkAfter && d.activeLinks() > 1 {
		ls.disabled = true
		d.st.LinksDisabled++
	}
	// The in-flight packet waits out the retraining window (or, for a
	// just-disabled link, the failover time) before retransmitting.
	return start + f.RetrainCycles
}

// transmit models the link-retry buffer on one packet transmission:
// each attempt serializes ser cycles; an attempt that arrives with a
// bad CRC pays RetryDelay (error detection + NAK + retry-buffer
// lookup) and retransmits. It returns the start cycle of the final
// attempt and whether the packet ultimately got through; after
// RetryLimit retransmissions the packet is abandoned and the caller
// poisons the response.
func (d *Device) transmit(start sim.Cycle, ser sim.Cycle) (sim.Cycle, bool) {
	f := &d.cfg.Faults
	if f.CRCErrorRate <= 0 {
		return start, true
	}
	for attempt := 0; ; attempt++ {
		if d.frng.Float64() >= f.CRCErrorRate {
			return start, true
		}
		d.st.CRCErrors++
		if attempt >= f.RetryLimit {
			return start, false
		}
		d.st.LinkRetries++
		penalty := ser + f.RetryDelay
		d.st.RetryCycles += uint64(penalty)
		start += penalty
	}
}
