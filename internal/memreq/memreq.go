// Package memreq defines the contract between request producers (the
// multicore node model), memory coalescers (MAC and the baseline
// designs), and the HMC device model: the raw request representation,
// the per-request target information used by the response router, the
// built-transaction type, and the Coalescer interface with its shared
// statistics.
//
// Keeping these types in a leaf package lets the MAC implementation
// (internal/core) and the baselines (internal/coalesce) be swapped
// freely inside the node model and the experiment harness.
package memreq

import (
	"fmt"

	"mac3d/internal/hmc"
	"mac3d/internal/obs"
	"mac3d/internal/sim"
	"mac3d/internal/stats"
)

// Target is the information MAC buffers per merged raw request so the
// response router can deliver data back to the originating thread
// (paper §4.1.1: 2B thread id + 2B transaction tag + 4b FLIT id,
// 4.5B per target in hardware at the paper's 256B window).
type Target struct {
	// Thread is the issuing hardware thread id.
	Thread uint16
	// Tag is the per-thread transaction tag (e.g. LSQ slot).
	Tag uint16
	// Flit is the first requested FLIT id within the coalescing
	// window: 0–15 for the paper's 256B window, up to 31 (512B) or 63
	// (1KB) under the §4.3 wide windows. The hardware field widens
	// with the window — see TargetBytesFor.
	Flit uint8
	// Cont marks the continuation half of a raw request that was
	// split at a coalescing-window boundary. The response router must
	// deliver it (its FLITs are part of the transaction) but must not
	// retire an LSQ slot or observe latency for it: the head half
	// carries the request's single retirement.
	Cont bool
}

// Validate reports whether the target is representable in the
// hardware target buffer of a coalescer with the given window size
// (0 means the paper's 256B window).
func (t Target) Validate(windowBytes uint32) error {
	if windowBytes == 0 {
		windowBytes = 256
	}
	if flits := windowBytes / 16; uint32(t.Flit) >= flits {
		return fmt.Errorf("memreq: target FLIT id %d out of range for %dB window (0–%d)",
			t.Flit, windowBytes, flits-1)
	}
	return nil
}

// TargetBytes is the hardware size of one buffered target at the
// paper's 256B coalescing window (§4.1.1: 2B thread + 2B tag + 4b
// FLIT id). For wide windows use TargetBytesFor.
const TargetBytes = 4.5

// TargetBytesFor returns the hardware size of one buffered target for
// a coalescing window: the FLIT-id field grows from 4 bits (256B, 16
// FLITs) to 5 (512B) or 6 (1KB) bits. 0 means 256.
func TargetBytesFor(windowBytes uint32) float64 {
	switch windowBytes {
	case 0, 256:
		return 4.5 // 4-bit FLIT id
	case 512:
		return 4.625 // 5-bit FLIT id
	case 1024:
		return 4.75 // 6-bit FLIT id
	default:
		panic(fmt.Sprintf("memreq: no target layout for %dB window", windowBytes))
	}
}

// RawRequest is one memory operation as it leaves a core.
type RawRequest struct {
	// Addr is the physical address.
	Addr uint64
	// Size is the access size in bytes (1–16); 0 means 1.
	Size uint8
	// Store distinguishes writes from reads.
	Store bool
	// Atomic marks read-modify-write operations, which are never
	// coalesced (paper §4.1.2).
	Atomic bool
	// Fence marks a memory fence: it carries no address and forces
	// the aggregator to stop merging until it drains (paper §4.1).
	Fence bool
	// Thread and Tag form the response-routing target.
	Thread uint16
	Tag    uint16
}

// Built is one memory transaction produced by a coalescer, ready for
// the device. Req.Tag is assigned by the driver that owns the
// outstanding-transaction table.
type Built struct {
	// Req is the device transaction.
	Req hmc.Request
	// Targets lists every raw request satisfied by this transaction.
	// It is empty only for transactions synthesized by a coalescer
	// for its own purposes (the MemCache frontend's dirty-line
	// writebacks are the one included case); drivers must tolerate
	// zero-target transactions by completing them without retiring
	// any raw request.
	Targets []Target
	// Bypassed reports that the transaction skipped the request
	// builder (B bit set, or an atomic routed directly).
	Bypassed bool
	// Handle is coalescer-private bookkeeping (e.g. the MSHR entry
	// behind the transaction). Drivers must preserve it and pass the
	// same Built back to Completed; they must not interpret it.
	Handle any
	// Span carries the transaction's observability lifecycle stamps;
	// nil unless tracing is enabled. Drivers stamp Submit/Respond and
	// hand the span to the tracer on delivery.
	Span *obs.TxSpan
}

// Coalescer is a processor-side memory coalescing unit.
//
// The driving model is cycle-stepped: the driver calls Push to offer at
// most one raw request per call (a rejected Push models backpressure
// and must be retried), calls Tick once per cycle to collect built
// transactions, and calls Completed when the device response for a
// built transaction has been routed back — coalescers use the
// outstanding count to order memory fences.
type Coalescer interface {
	// Push offers one raw request at cycle now. It reports whether
	// the request was accepted.
	Push(r RawRequest, now sim.Cycle) bool
	// Tick advances internal pipelines and returns the transactions
	// that completed building this cycle, in issue order.
	Tick(now sim.Cycle) []Built
	// Completed notifies the coalescer that one previously emitted
	// transaction has fully completed (response routed).
	Completed(b *Built)
	// Pending returns the number of raw requests accepted but not
	// yet emitted in a Built transaction, plus queued fences.
	Pending() int
	// Inflight returns the number of emitted transactions whose
	// completion has not been signalled.
	Inflight() int
	// Stats returns the accumulated coalescing statistics.
	Stats() *Stats
	// Reset restores the coalescer to its initial empty state.
	Reset()
}

// Recycler is an optional interface a Coalescer may implement. A
// driver that is completely done with a Built — the response has been
// delivered and every target consumed — may hand it back so internal
// buffers (e.g. the target slab) can be reused, keeping the build/pop
// path allocation-free. Calling Recycle is always optional; a driver
// that retains Builts simply never calls it. After the call the Built
// and its Targets slice must not be touched.
type Recycler interface {
	Recycle(b *Built)
}

// Stats is the measurement set shared by every coalescer design.
type Stats struct {
	// RawRequests counts raw memory requests accepted (excluding
	// fences, which are control operations).
	RawRequests uint64
	RawLoads    uint64
	RawStores   uint64
	RawAtomics  uint64
	Fences      uint64

	// Transactions counts built device transactions.
	Transactions uint64
	// Bypassed counts transactions that skipped the builder.
	Bypassed uint64
	// BuiltBySizeBytes histograms builder output by transaction
	// payload (key: 16, 64, 128, 256).
	BuiltBySizeBytes map[uint32]uint64

	// TargetsPerTx observes the number of raw requests merged into
	// each emitted transaction (Fig. 15's targets-per-entry).
	TargetsPerTx stats.Histogram

	// PushRejects counts Push calls refused due to internal
	// backpressure.
	PushRejects uint64

	// Warp carries the SIMT warp-lane frontend's extra measurements;
	// nil for every other design. It is a pointer so the value copy a
	// driver takes of Stats still shares the frontend's counters.
	Warp *WarpStats
	// MemCache carries the die-stacked memory+cache frontend's extra
	// measurements; nil for every other design.
	MemCache *MemCacheStats
}

// WarpStats is the measurement set specific to the SIMT warp-lane
// coalescer frontend.
type WarpStats struct {
	// WarpsFormed counts warps gathered from the lane queue.
	WarpsFormed uint64
	// WarpsSuspended counts warps that finished dispatching their
	// mask groups and were suspended awaiting device responses.
	WarpsSuspended uint64
	// SameAddrTx counts transactions whose mask group collapsed to a
	// single address shared by every participating lane.
	SameAddrTx uint64
	// SameBlockTx counts transactions that fetched a whole lane block
	// for a mask group spanning multiple addresses.
	SameBlockTx uint64
	// MasksPerWarp observes the number of mask-group transactions each
	// warp needed before suspending (1 = fully convergent warp).
	MasksPerWarp stats.Histogram
}

// MemCacheStats is the measurement set specific to the die-stacked
// memory+cache frontend.
type MemCacheStats struct {
	// Hits counts cache-region requests served from the stacked cache.
	Hits uint64
	// Misses counts cache-region requests that allocated a line fill.
	Misses uint64
	// MergedMisses counts cache-region requests merged onto an
	// in-flight fill for the same line (hit-under-miss).
	MergedMisses uint64
	// Writebacks counts dirty-line eviction transactions emitted.
	Writebacks uint64
	// DirectAccesses counts requests routed to the directly addressed
	// partition of the stacked DRAM.
	DirectAccesses uint64
}

// HitRate returns the stacked-cache hit fraction over demand accesses
// that probed the tags (merged misses count as misses: they waited on
// fill traffic).
func (s *MemCacheStats) HitRate() float64 {
	demand := s.Hits + s.Misses + s.MergedMisses
	if demand == 0 {
		return 0
	}
	return float64(s.Hits) / float64(demand)
}

// NewStats returns an initialized Stats.
func NewStats() *Stats {
	return &Stats{BuiltBySizeBytes: make(map[uint32]uint64)}
}

// CoalescingEfficiency returns the paper's headline metric, the
// fraction of raw requests eliminated by coalescing:
// 1 − transactions/raw (see DESIGN.md on Eq. 3's sign).
func (s *Stats) CoalescingEfficiency() float64 {
	if s.RawRequests == 0 {
		return 0
	}
	return 1 - float64(s.Transactions)/float64(s.RawRequests)
}

// AvgTargetsPerTx returns the mean number of raw requests per emitted
// transaction (Fig. 15).
func (s *Stats) AvgTargetsPerTx() float64 { return s.TargetsPerTx.Mean() }

// String renders a one-line summary.
func (s *Stats) String() string {
	return fmt.Sprintf("raw=%d tx=%d bypassed=%d eff=%.2f%% tgts/tx=%.2f",
		s.RawRequests, s.Transactions, s.Bypassed,
		100*s.CoalescingEfficiency(), s.AvgTargetsPerTx())
}

// RetryPolicy bounds requester-side recovery from poisoned
// completions: a response whose link-level retry budget was exhausted
// (hmc poison semantics) is re-issued by the originating node up to
// MaxRetries times, each attempt delayed by Backoff cycles. The zero
// value disables recovery — poisoned completions fail the request, the
// pre-existing behaviour.
type RetryPolicy struct {
	// MaxRetries is the number of re-issues allowed per raw request.
	MaxRetries int
	// Backoff is the delay before each re-issue, in cycles.
	Backoff sim.Cycle
}

// Enabled reports whether the policy allows at least one retry.
func (p RetryPolicy) Enabled() bool { return p.MaxRetries > 0 }

// Validate rejects nonsensical policies. (Backoff is unsigned; the
// facade rejects negative user input before it gets here.)
func (p RetryPolicy) Validate() error {
	if p.MaxRetries < 0 {
		return fmt.Errorf("memreq: RetryPolicy.MaxRetries %d is negative", p.MaxRetries)
	}
	return nil
}
