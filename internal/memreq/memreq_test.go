package memreq

import (
	"strings"
	"testing"

	"mac3d/internal/hmc"
)

func TestStatsCoalescingEfficiency(t *testing.T) {
	s := NewStats()
	if s.CoalescingEfficiency() != 0 {
		t.Fatal("empty stats must report 0")
	}
	s.RawRequests = 100
	s.Transactions = 47
	if got := s.CoalescingEfficiency(); got != 0.53 {
		t.Fatalf("efficiency = %v, want 0.53", got)
	}
	// The no-coalescing case.
	s.Transactions = 100
	if got := s.CoalescingEfficiency(); got != 0 {
		t.Fatalf("1:1 efficiency = %v", got)
	}
}

func TestStatsAvgTargets(t *testing.T) {
	s := NewStats()
	s.TargetsPerTx.Observe(1)
	s.TargetsPerTx.Observe(3)
	if got := s.AvgTargetsPerTx(); got != 2 {
		t.Fatalf("avg targets = %v", got)
	}
}

func TestStatsString(t *testing.T) {
	s := NewStats()
	s.RawRequests = 10
	s.Transactions = 5
	s.Bypassed = 2
	s.TargetsPerTx.Observe(2)
	out := s.String()
	for _, want := range []string{"raw=10", "tx=5", "bypassed=2", "50.00%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary %q missing %q", out, want)
		}
	}
}

func TestBuiltCarriesRequest(t *testing.T) {
	b := Built{
		Req:     hmc.Request{Kind: hmc.Read, Addr: 0x100, Data: 64},
		Targets: []Target{{Thread: 1, Tag: 2, Flit: 3}},
	}
	if b.Req.DataFlits() != 4 {
		t.Fatalf("flits = %d", b.Req.DataFlits())
	}
	if b.Targets[0] != (Target{Thread: 1, Tag: 2, Flit: 3}) {
		t.Fatal("target not preserved")
	}
}

func TestTargetBytesMatchesPaper(t *testing.T) {
	// §4.1.1: 2B TID + 2B tag + 4b FLIT id = 4.5B, and a 64B entry
	// with 10B of address/map state holds 12 targets.
	if TargetBytes != 4.5 {
		t.Fatalf("TargetBytes = %v", TargetBytes)
	}
	if int(54/TargetBytes) != 12 {
		t.Fatal("64B entry capacity math broken")
	}
}
