package noc

import (
	"fmt"
	"strconv"
	"strings"

	"mac3d/internal/sim"
)

// Topology names.
const (
	// Ideal is the contention-free crossbar: every message pays one
	// fixed LinkLatency, requests are injection-limited to
	// LinkBandwidth messages per node per cycle, and nothing else
	// contends. "crossbar" parses as an alias.
	Ideal = "ideal"
	// Ring is the bidirectional ring with shortest-path routing.
	Ring = "ring"
	// Mesh is the 2D mesh with dimension-ordered (XY) routing.
	Mesh = "mesh"
)

// Config parameterizes a fabric.
type Config struct {
	// Topology selects ideal, ring or mesh ("crossbar" is accepted as
	// an alias of ideal and normalized by WithDefaults).
	Topology string
	// Nodes is the endpoint count. The NUMA driver overwrites it with
	// its own node count; a config that states both must agree.
	Nodes int
	// LinkLatency is the per-hop propagation latency in cycles (for
	// ideal: the one-way latency of the whole crossbar).
	LinkLatency sim.Cycle
	// LinkBandwidth is the link serialization width in flits per
	// cycle (for ideal: the per-node request injection bandwidth in
	// messages per cycle, the pre-NoC LinkBandwidth semantics).
	LinkBandwidth int
	// BufferFlits sizes each router input buffer, in flits; it is
	// also the credit pool the upstream sender draws from. Must hold
	// at least two maximum-size messages. Ignored by ideal.
	BufferFlits int
	// InjectDepth bounds each node's injection queue, in messages; a
	// full queue refuses Send. Ignored by ideal.
	InjectDepth int
	// MeshCols fixes the mesh width; 0 picks the most-square
	// factorization of Nodes. Ignored by ring and ideal.
	MeshCols int
}

// DefaultConfig returns a 2-node ideal fabric with the pre-NoC NUMA
// defaults (a ~100ns one-way hop at 3.3GHz, two messages per cycle).
func DefaultConfig() Config {
	return Config{
		Topology:      Ideal,
		Nodes:         2,
		LinkLatency:   330,
		LinkBandwidth: 2,
		BufferFlits:   64,
		InjectDepth:   8,
	}
}

// WithDefaults fills the unset fields of a partially specified config
// and canonicalizes the topology name. It does not touch Nodes or
// LinkLatency: a zero latency is a legal zero-cycle hop (the pre-NoC
// NUMA model accepted it), so only ParseConfig — which can tell an
// omitted lat key from lat=0 — applies the latency defaults.
func (c Config) WithDefaults() Config {
	switch strings.ToLower(strings.TrimSpace(c.Topology)) {
	case "", Ideal, "crossbar", "xbar":
		c.Topology = Ideal
	case Ring:
		c.Topology = Ring
	case Mesh:
		c.Topology = Mesh
	default:
		// Leave the unknown name for Validate to report.
		c.Topology = strings.ToLower(strings.TrimSpace(c.Topology))
	}
	if c.LinkBandwidth == 0 {
		c.LinkBandwidth = 2
	}
	if c.BufferFlits == 0 {
		c.BufferFlits = 64
	}
	if c.InjectDepth == 0 {
		c.InjectDepth = 8
	}
	return c
}

// Validate reports the first configuration error, or nil.
func (c Config) Validate() error {
	switch c.Topology {
	case Ideal, Ring, Mesh:
	default:
		return fmt.Errorf("noc: unknown topology %q (want ideal, crossbar, ring or mesh)", c.Topology)
	}
	switch {
	case c.Nodes <= 0:
		return fmt.Errorf("noc: Nodes must be positive, got %d", c.Nodes)
	case c.Nodes > 1024:
		return fmt.Errorf("noc: Nodes %d exceeds the 1024 bound", c.Nodes)
	case c.LinkBandwidth <= 0:
		return fmt.Errorf("noc: LinkBandwidth must be positive, got %d", c.LinkBandwidth)
	case c.LinkBandwidth > 64:
		return fmt.Errorf("noc: LinkBandwidth %d exceeds the 64 flits/cycle bound", c.LinkBandwidth)
	case c.LinkLatency > 1<<40:
		return fmt.Errorf("noc: LinkLatency %d exceeds the 2^40 bound", c.LinkLatency)
	}
	if c.Topology != Ideal {
		if c.BufferFlits < 2*MaxMessageFlits {
			return fmt.Errorf("noc: BufferFlits %d cannot hold two maximum messages (%d flits)",
				c.BufferFlits, 2*MaxMessageFlits)
		}
		if c.BufferFlits > 1<<20 {
			return fmt.Errorf("noc: BufferFlits %d exceeds the 2^20 bound", c.BufferFlits)
		}
		if c.InjectDepth <= 0 || c.InjectDepth > 1<<20 {
			return fmt.Errorf("noc: InjectDepth %d outside (0, 2^20]", c.InjectDepth)
		}
	}
	if c.Topology == Mesh && c.MeshCols != 0 {
		if c.MeshCols < 0 || c.MeshCols > c.Nodes {
			return fmt.Errorf("noc: MeshCols %d outside [1, Nodes=%d]", c.MeshCols, c.Nodes)
		}
		if c.Nodes%c.MeshCols != 0 {
			return fmt.Errorf("noc: MeshCols %d does not divide Nodes %d", c.MeshCols, c.Nodes)
		}
	}
	return nil
}

// String renders the config in the canonical ParseConfig syntax:
// ParseConfig(c.String()) reproduces c (after WithDefaults).
func (c Config) String() string {
	c = c.WithDefaults()
	parts := []string{c.Topology}
	if c.Nodes != 0 {
		parts = append(parts, fmt.Sprintf("nodes=%d", c.Nodes))
	}
	parts = append(parts,
		fmt.Sprintf("lat=%d", c.LinkLatency),
		fmt.Sprintf("bw=%d", c.LinkBandwidth))
	if c.Topology != Ideal {
		parts = append(parts,
			fmt.Sprintf("buf=%d", c.BufferFlits),
			fmt.Sprintf("inject=%d", c.InjectDepth))
	}
	if c.Topology == Mesh && c.MeshCols != 0 {
		parts = append(parts, fmt.Sprintf("cols=%d", c.MeshCols))
	}
	return strings.Join(parts, ",")
}

// ParseConfig parses the CLI/flag syntax for a fabric configuration:
//
//	TOPOLOGY[,key=value...]
//
// with keys nodes, lat (per-hop cycles), bw (flits/cycle), buf
// (input-buffer flits), inject (injection-queue messages) and cols
// (mesh width). The empty string parses as the default ideal fabric.
// It never panics, whatever the input (FuzzParseNoCConfig holds it to
// that), and anything it accepts passes Validate after WithDefaults
// once a node count is supplied.
func ParseConfig(s string) (Config, error) {
	var c Config
	sawLat := false
	fields := strings.Split(s, ",")
	c.Topology = strings.ToLower(strings.TrimSpace(fields[0]))
	switch c.Topology {
	case "", Ideal, "crossbar", "xbar", Ring, Mesh:
	default:
		return Config{}, fmt.Errorf("noc: unknown topology %q (want ideal, crossbar, ring or mesh)", c.Topology)
	}
	for _, part := range fields[1:] {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return Config{}, fmt.Errorf("noc: %q is not key=value", part)
		}
		n, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64)
		if err != nil {
			return Config{}, fmt.Errorf("noc: bad %s value %q: %w", k, v, err)
		}
		if n < 0 {
			return Config{}, fmt.Errorf("noc: %s value %d is negative", k, n)
		}
		switch strings.TrimSpace(k) {
		case "nodes":
			if n > 1024 {
				return Config{}, fmt.Errorf("noc: nodes %d exceeds the 1024 bound", n)
			}
			c.Nodes = int(n)
		case "lat":
			if n > 1<<40 {
				return Config{}, fmt.Errorf("noc: lat %d exceeds the 2^40 bound", n)
			}
			c.LinkLatency = sim.Cycle(n)
			sawLat = true
		case "bw":
			if n > 64 {
				return Config{}, fmt.Errorf("noc: bw %d exceeds the 64 flits/cycle bound", n)
			}
			c.LinkBandwidth = int(n)
		case "buf":
			if n > 1<<20 {
				return Config{}, fmt.Errorf("noc: buf %d exceeds the 2^20 bound", n)
			}
			c.BufferFlits = int(n)
		case "inject":
			if n > 1<<20 {
				return Config{}, fmt.Errorf("noc: inject %d exceeds the 2^20 bound", n)
			}
			c.InjectDepth = int(n)
		case "cols":
			if n > 1024 {
				return Config{}, fmt.Errorf("noc: cols %d exceeds the 1024 bound", n)
			}
			c.MeshCols = int(n)
		default:
			return Config{}, fmt.Errorf("noc: unknown key %q (want nodes, lat, bw, buf, inject or cols)", k)
		}
	}
	// Keys that the topology ignores are rejected rather than silently
	// dropped (they would not survive a String round trip).
	switch c.Topology {
	case "", "crossbar", "xbar":
		c.Topology = Ideal
	}
	if c.Topology == Ideal && (c.BufferFlits != 0 || c.InjectDepth != 0 || c.MeshCols != 0) {
		return Config{}, fmt.Errorf("noc: buf, inject and cols do not apply to the ideal topology")
	}
	if c.Topology == Ring && c.MeshCols != 0 {
		return Config{}, fmt.Errorf("noc: cols only applies to the mesh topology")
	}
	if !sawLat {
		// Per-hop cost for routed fabrics; ideal keeps the legacy
		// one-way crossbar default.
		if c.Topology == Ideal {
			c.LinkLatency = 330
		} else {
			c.LinkLatency = 83 // ~25ns per hop at 3.3GHz
		}
	}
	c = c.WithDefaults()
	// Validate what can be validated without a node count; the zero
	// Nodes means "inherit from the driver".
	probe := c
	if probe.Nodes == 0 {
		probe.Nodes = 2
		if probe.Topology == Mesh && probe.MeshCols > 0 {
			probe.Nodes = probe.MeshCols
		}
	}
	if err := probe.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}
