package noc

import (
	"strings"
	"testing"
)

// FuzzParseNoCConfig holds ParseConfig to its contract: it never
// panics, anything it accepts validates (once a node count is
// supplied) and builds, and accepted configs survive a
// String→ParseConfig round trip.
func FuzzParseNoCConfig(f *testing.F) {
	f.Add("")
	f.Add("ideal")
	f.Add("crossbar,lat=330,bw=2")
	f.Add("ring,nodes=8,lat=83,bw=4,buf=32,inject=16")
	f.Add("mesh,nodes=16,cols=8,lat=10")
	f.Add("mesh,cols=3")
	f.Add("ring, lat = 5 , bw = 1 ")
	f.Add("torus")
	f.Add("ring,lat=-1")
	f.Add("ring,lat=99999999999999999999")
	f.Add("mesh,cols=3,nodes=4")
	f.Add(strings.Repeat(",", 100))
	f.Fuzz(func(t *testing.T, s string) {
		c, err := ParseConfig(s)
		if err != nil {
			return
		}
		// Accepted configs must validate and build once the driver
		// supplies a node count.
		cfg := c
		if cfg.Nodes == 0 {
			cfg.Nodes = 2
			if cfg.Topology == Mesh && cfg.MeshCols > 0 {
				cfg.Nodes = cfg.MeshCols
			}
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("ParseConfig(%q) accepted %+v but Validate: %v", s, cfg, err)
		}
		if _, err := New[int](cfg); err != nil {
			t.Fatalf("ParseConfig(%q) accepted %+v but New: %v", s, cfg, err)
		}
		// Canonical form must round-trip.
		back, err := ParseConfig(c.String())
		if err != nil {
			t.Fatalf("round trip of %q → %q: %v", s, c.String(), err)
		}
		if back != c {
			t.Fatalf("round trip of %q: %+v != %+v", s, back, c)
		}
	})
}
