package noc

import (
	"container/heap"

	"mac3d/internal/obs"
	"mac3d/internal/sim"
)

// idealFabric is the contention-free crossbar: every accepted message
// is delivered exactly LinkLatency cycles after its Send, in the order
// a deliver-time min-heap pops them. It reproduces the pre-NoC NUMA
// interconnect bit-for-bit — same heap discipline, same tie behaviour
// — which is what keeps old results reproducible under the `ideal`
// topology (there is a golden test holding it to that).
//
// The one deliberate divergence is the refused-delivery path: where
// the old model re-queued a refused message one cycle out (letting
// younger same-source messages due earlier pop past it), the crossbar
// parks refusals in arrival order and holds back every younger
// message from a parked source, preserving per-source FIFO.
type idealFabric[P any] struct {
	cfg Config
	h   idealHeap[P]
	// parked holds refused deliveries in arrival order; blockedSrc is
	// the per-cycle scratch marking sources with a parked message.
	parked     []idealMsg[P]
	blockedSrc []bool
	st         Stats
	inflight   int
	// sendPorts are the lazily built staging ports (see staged.go).
	sendPorts []idealPort[P]
}

// idealMsg is one in-flight crossbar transfer.
type idealMsg[P any] struct {
	deliver sim.Cycle
	sent    sim.Cycle
	m       Message[P]
}

// idealHeap orders messages by delivery cycle only — the exact
// discipline (including unspecified tie order) of the pre-NoC model.
type idealHeap[P any] []idealMsg[P]

func (h idealHeap[P]) Len() int           { return len(h) }
func (h idealHeap[P]) Less(i, j int) bool { return h[i].deliver < h[j].deliver }
func (h idealHeap[P]) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *idealHeap[P]) Push(x any)        { *h = append(*h, x.(idealMsg[P])) }
func (h *idealHeap[P]) Pop() (out any) {
	old := *h
	n := len(old)
	out = old[n-1]
	*h = old[:n-1]
	return
}

func newIdeal[P any](cfg Config) *idealFabric[P] {
	return &idealFabric[P]{
		cfg:        cfg,
		blockedSrc: make([]bool, cfg.Nodes),
		st:         Stats{Topology: cfg.Topology},
	}
}

func (f *idealFabric[P]) Send(now sim.Cycle, m Message[P]) bool {
	if m.Flits <= 0 {
		m.Flits = 1
	}
	heap.Push(&f.h, idealMsg[P]{deliver: now + f.cfg.LinkLatency, sent: now, m: m})
	f.inflight++
	f.st.Sent++
	f.st.FlitsSent += uint64(m.Flits)
	return true
}

func (f *idealFabric[P]) Tick(sim.Cycle) {}

func (f *idealFabric[P]) Deliver(now sim.Cycle, sink func(m Message[P]) bool) {
	for i := range f.blockedSrc {
		f.blockedSrc[i] = false
	}
	// Parked refusals first, in arrival order: a source stays blocked
	// until its oldest message lands.
	if len(f.parked) > 0 {
		keep := f.parked[:0]
		for _, p := range f.parked {
			if f.blockedSrc[p.m.Src] || !sink(p.m) {
				f.blockedSrc[p.m.Src] = true
				f.st.DeliverRetries++
				keep = append(keep, p)
				continue
			}
			f.retired(now, p)
		}
		f.parked = keep
	}
	for f.h.Len() > 0 && f.h[0].deliver <= now {
		p := heap.Pop(&f.h).(idealMsg[P])
		if f.blockedSrc[p.m.Src] || !sink(p.m) {
			f.blockedSrc[p.m.Src] = true
			f.st.DeliverRetries++
			f.parked = append(f.parked, p)
			continue
		}
		f.retired(now, p)
	}
}

func (f *idealFabric[P]) retired(now sim.Cycle, p idealMsg[P]) {
	f.inflight--
	f.st.Delivered++
	hops := 1
	if p.m.Src == p.m.Dst {
		hops = 0
	}
	f.st.Hops.Observe(uint64(hops))
	f.st.NetLatency.Observe(uint64(now - p.sent))
}

func (f *idealFabric[P]) InFlight() int            { return f.inflight }
func (f *idealFabric[P]) Links() int               { return 0 }
func (f *idealFabric[P]) StallLink(int, sim.Cycle) {}
func (f *idealFabric[P]) Stats() *Stats            { return &f.st }
func (f *idealFabric[P]) AttachObs(o *obs.Obs) {
	if !o.Enabled() {
		return
	}
	attachStats(o, &f.st, f.InFlight)
}
