// Package noc is the cycle-driven interconnect model of the multi-node
// system: the network the NUMA fabric's Global/Remote traffic rides
// (Hadidi et al., "Performance Implications of NoCs on 3D-Stacked
// Memories", show this structure dominates HMC-cluster behaviour).
//
// Three topologies are provided:
//
//   - ideal (alias crossbar): a contention-free full crossbar whose
//     only costs are a fixed one-way latency and a per-node request
//     injection bandwidth — bit-identical to the point-to-point wire
//     the NUMA model used before this package existed, kept so old
//     results stay reproducible;
//   - ring: a bidirectional ring with shortest-path routing (ties go
//     clockwise) and critical-bubble injection control, so the cyclic
//     channel dependency can never deadlock;
//   - mesh: a 2D mesh with dimension-ordered (XY) routing, which is
//     deadlock-free by construction.
//
// Ring and mesh routers move whole messages store-and-forward, but
// serialization is FLIT-granular: a message of F flits (16B each,
// reusing the internal/memreq FLIT sizing) occupies its outgoing link
// for ceil(F/LinkBandwidth) cycles before paying the per-hop
// propagation latency. Flow control is credit-based — a router sends
// only while it holds credits for the downstream input buffer, and
// credits return when the buffered message moves on — so congestion
// backpressures hop by hop all the way to the injection queues, which
// is what the Send refusal surfaces to the driver. Every link keeps
// congestion accounts (busy cycles, credit stalls, chaos stalls,
// buffer high-water) and the fabric keeps hop and network-latency
// histograms, all exported through Stats and the obs registry.
package noc

import (
	"mac3d/internal/obs"
	"mac3d/internal/sim"
	"mac3d/internal/stats"
)

// FlitBytes is the FLIT granularity of link serialization: the 16B
// FLIT of the HMC protocol (internal/memreq uses the same sizing for
// the coalescing window maps).
const FlitBytes = 16

// MaxMessageFlits bounds one message's size. The NUMA fabric's
// messages are at most two flits (one 16B header plus at most 16B of
// data); the bound is what the ring's critical-bubble reserve and the
// buffer-sizing validation are stated in terms of.
const MaxMessageFlits = 4

// Message is one transfer in flight on the fabric. P is the
// driver-owned payload type; the fabric never inspects it.
type Message[P any] struct {
	// Src and Dst are node ids in [0, Nodes).
	Src, Dst int
	// Flits is the serialized message size in 16B flits, in
	// [1, MaxMessageFlits]. 0 is read as 1.
	Flits int
	// Payload rides along untouched.
	Payload P
}

// Fabric is the interconnect as the node driver sees it. All methods
// are single-goroutine and must be called in nondecreasing cycle
// order: Send while the driver pumps its per-node outbound queues,
// then Tick once per cycle to move flits, then Deliver to drain
// arrivals.
type Fabric[P any] interface {
	// Send injects m at cycle now. It reports false when the source
	// node's injection port cannot accept the message this cycle
	// (bounded injection queue, or the ideal topology's per-node
	// bandwidth); the caller keeps the message and retries.
	Send(now sim.Cycle, m Message[P]) bool
	// Tick advances routers and links by one cycle. Call exactly once
	// per cycle, after the per-node Send phase.
	Tick(now sim.Cycle)
	// Deliver hands every message that has reached its destination to
	// sink, in per-(source, destination) FIFO order. A false return
	// refuses the message: it stays queued in the fabric — without
	// letting any younger message from the same source pass it — and
	// is offered again next cycle.
	Deliver(now sim.Cycle, sink func(m Message[P]) bool)
	// InFlight returns the number of accepted, undelivered messages.
	InFlight() int
	// Links returns the directed link count (0 for ideal).
	Links() int
	// StallLink freezes one directed link until the given cycle (the
	// chaos engine's transient NoC fault). Out-of-range ids and the
	// ideal topology ignore the call.
	StallLink(link int, until sim.Cycle)
	// Stats returns the live accumulated statistics.
	Stats() *Stats
	// AttachObs registers the fabric's metrics and timeseries under
	// the "noc." prefix. Call at most once, before the run.
	AttachObs(o *obs.Obs)
}

// LinkStats is one directed link's congestion account.
type LinkStats struct {
	// From and To are the endpoints; Class names the direction ("cw",
	// "ccw", "east", "west", "north", "south").
	From, To int
	Class    string
	// Messages and Flits count traffic serialized onto the link.
	Messages uint64
	Flits    uint64
	// BusyCycles counts cycles the link spent serializing flits.
	BusyCycles uint64
	// CreditStalls counts cycles a head message wanted this link but
	// the downstream buffer had no credit; ChaosStalls counts cycles
	// lost to injected link faults (StallLink).
	CreditStalls uint64
	ChaosStalls  uint64
	// MaxBufferFlits is the downstream input buffer's high-water mark.
	MaxBufferFlits int
}

// Stats is the fabric-wide measurement set.
type Stats struct {
	// Topology echoes the configured topology name.
	Topology string
	// Sent counts accepted messages; Delivered the ones the sink took.
	Sent      uint64
	Delivered uint64
	// FlitsSent counts flits across all accepted messages.
	FlitsSent uint64
	// InjectRejects counts Send refusals (driver-visible backpressure).
	InjectRejects uint64
	// DeliverRetries counts sink refusals (destination queue full):
	// each one is a cycle a delivered message waited at the ejection
	// port.
	DeliverRetries uint64
	// Hops observes per-message hop counts (1 for ideal, 0 for a
	// source-is-destination transfer).
	Hops stats.Histogram
	// NetLatency observes send→deliver cycles per message.
	NetLatency stats.Histogram
	// Links holds the per-link congestion accounts (empty for ideal).
	Links []LinkStats
}

// AvgHops returns the mean hop count over delivered messages.
func (s *Stats) AvgHops() float64 { return s.Hops.Mean() }

// StallCycles sums credit and chaos stalls across all links.
func (s *Stats) StallCycles() (credit, chaos uint64) {
	for i := range s.Links {
		credit += s.Links[i].CreditStalls
		chaos += s.Links[i].ChaosStalls
	}
	return
}

// New builds the fabric for cfg. The payload type P is the driver's;
// the zero Config is invalid (call cfg.WithDefaults first or set
// Topology explicitly).
func New[P any](cfg Config) (Fabric[P], error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Topology == Ideal {
		return newIdeal[P](cfg), nil
	}
	return newRouted[P](cfg)
}

// attachStats registers the topology-independent aggregate metrics.
func attachStats(o *obs.Obs, st *Stats, inflight func() int) {
	r := o.Reg()
	r.Func("noc.sent", func() float64 { return float64(st.Sent) })
	r.Func("noc.delivered", func() float64 { return float64(st.Delivered) })
	r.Func("noc.flits_sent", func() float64 { return float64(st.FlitsSent) })
	r.Func("noc.inject_rejects", func() float64 { return float64(st.InjectRejects) })
	r.Func("noc.deliver_retries", func() float64 { return float64(st.DeliverRetries) })
	r.Func("noc.hops_mean", func() float64 { return st.Hops.Mean() })
	r.Func("noc.latency_mean", func() float64 { return st.NetLatency.Mean() })
	o.Rec().Watch("noc.inflight", func() float64 { return float64(inflight()) })
}
