package noc

import (
	"fmt"
	"testing"

	"mac3d/internal/sim"
)

// drive runs f until every message in sends has been delivered (or
// maxCycles passes), feeding each send at its scheduled cycle and
// collecting deliveries in order. The sink accepts everything.
func drive[P any](t *testing.T, f Fabric[P], sends map[sim.Cycle][]Message[P], maxCycles sim.Cycle) []Message[P] {
	t.Helper()
	var got []Message[P]
	pending := 0
	for _, ms := range sends {
		pending += len(ms)
	}
	for now := sim.Cycle(0); now < maxCycles; now++ {
		for _, m := range sends[now] {
			if !f.Send(now, m) {
				t.Fatalf("cycle %d: Send(%+v) refused", now, m)
			}
		}
		f.Tick(now)
		f.Deliver(now, func(m Message[P]) bool {
			got = append(got, m)
			return true
		})
		if len(got) == pending && f.InFlight() == 0 {
			return got
		}
	}
	t.Fatalf("only %d/%d messages delivered after %d cycles (inflight %d)",
		len(got), pending, maxCycles, f.InFlight())
	return nil
}

func mustFabric(t *testing.T, cfg Config) Fabric[int] {
	t.Helper()
	f, err := New[int](cfg)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	return f
}

func TestIdealDeliversAtFixedLatency(t *testing.T) {
	f := mustFabric(t, Config{Topology: Ideal, Nodes: 4, LinkLatency: 10})
	var deliveredAt sim.Cycle
	f.Send(0, Message[int]{Src: 0, Dst: 3, Payload: 7})
	for now := sim.Cycle(0); now < 20; now++ {
		f.Tick(now)
		f.Deliver(now, func(m Message[int]) bool {
			deliveredAt = now
			if m.Payload != 7 {
				t.Fatalf("payload %d, want 7", m.Payload)
			}
			return true
		})
	}
	if deliveredAt != 10 {
		t.Fatalf("delivered at cycle %d, want 10", deliveredAt)
	}
	if st := f.Stats(); st.Delivered != 1 || st.NetLatency.Sum() != 10 {
		t.Fatalf("stats: delivered=%d latSum=%d", st.Delivered, st.NetLatency.Sum())
	}
}

// TestIdealRefusalPreservesSourceFIFO holds the ideal fabric to the
// per-source FIFO guarantee: when the sink refuses a message, younger
// messages from the same source must not pass it, even if their
// delivery cycle has come due.
func TestIdealRefusalPreservesSourceFIFO(t *testing.T) {
	f := mustFabric(t, Config{Topology: Ideal, Nodes: 2, LinkLatency: 1})
	f.Send(0, Message[int]{Src: 0, Dst: 1, Payload: 1})
	f.Send(1, Message[int]{Src: 0, Dst: 1, Payload: 2})
	var got []int
	refuseFirst := true
	for now := sim.Cycle(1); now < 10; now++ {
		f.Tick(now)
		f.Deliver(now, func(m Message[int]) bool {
			if m.Payload == 1 && refuseFirst {
				refuseFirst = false
				return false
			}
			got = append(got, m.Payload)
			return true
		})
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("delivery order %v, want [1 2]", got)
	}
	if st := f.Stats(); st.DeliverRetries == 0 {
		t.Fatal("expected DeliverRetries > 0")
	}
}

func TestRingShortestPathHops(t *testing.T) {
	// 8-node ring: 0→3 goes clockwise in 3 hops, 0→5 counterclockwise
	// in 3 hops, and the 0→4 tie goes clockwise in 4 hops.
	for _, tc := range []struct {
		dst, hops int
	}{{3, 3}, {5, 3}, {4, 4}, {7, 1}, {1, 1}} {
		f := mustFabric(t, Config{Topology: Ring, Nodes: 8, LinkLatency: 1})
		drive(t, f, map[sim.Cycle][]Message[int]{0: {{Src: 0, Dst: tc.dst}}}, 100)
		if h := f.Stats().Hops.Sum(); h != uint64(tc.hops) {
			t.Errorf("0→%d took %d hops, want %d", tc.dst, h, tc.hops)
		}
	}
}

func TestMeshXYHopsAreManhattan(t *testing.T) {
	// 3x3 mesh: hops(src,dst) must equal the Manhattan distance.
	for src := 0; src < 9; src++ {
		for dst := 0; dst < 9; dst++ {
			f := mustFabric(t, Config{Topology: Mesh, Nodes: 9, LinkLatency: 1})
			drive(t, f, map[sim.Cycle][]Message[int]{0: {{Src: src, Dst: dst}}}, 100)
			sx, sy := src%3, src/3
			dx, dy := dst%3, dst/3
			want := abs(sx-dx) + abs(sy-dy)
			if h := f.Stats().Hops.Sum(); h != uint64(want) {
				t.Errorf("%d→%d took %d hops, want %d", src, dst, h, want)
			}
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func TestMeshChainForPrimeNodeCount(t *testing.T) {
	// 5 nodes is prime: the mesh degenerates to a 1x5 chain, and
	// 0→4 takes 4 hops.
	f := mustFabric(t, Config{Topology: Mesh, Nodes: 5, LinkLatency: 1})
	drive(t, f, map[sim.Cycle][]Message[int]{0: {{Src: 0, Dst: 4}}}, 100)
	if h := f.Stats().Hops.Sum(); h != 4 {
		t.Fatalf("0→4 on a 1x5 chain took %d hops, want 4", h)
	}
}

func TestFlitSerializationOccupiesLink(t *testing.T) {
	// bw=1: a 4-flit message holds its link for 4 cycles, so two
	// back-to-back sends from node 0 to its ring neighbour deliver 4
	// cycles apart.
	f := mustFabric(t, Config{Topology: Ring, Nodes: 4, LinkLatency: 2, LinkBandwidth: 1})
	var at []sim.Cycle
	f.Send(0, Message[int]{Src: 0, Dst: 1, Flits: 4, Payload: 1})
	f.Send(0, Message[int]{Src: 0, Dst: 1, Flits: 4, Payload: 2})
	for now := sim.Cycle(0); now < 40 && len(at) < 2; now++ {
		f.Tick(now)
		f.Deliver(now, func(m Message[int]) bool {
			at = append(at, now)
			return true
		})
	}
	if len(at) != 2 || at[1]-at[0] != 4 {
		t.Fatalf("deliveries at %v, want 4 cycles apart", at)
	}
	if busy := f.Stats().Links[0].BusyCycles; busy != 8 {
		t.Fatalf("link 0 busy %d cycles, want 8", busy)
	}
}

// TestCreditBackpressure dams a 4-node ring at node 2 (the sink
// refuses every delivery for a while): node 2's ejection and input
// buffers fill, credits on the links into it run dry, and the stall
// backpressures hop by hop. Once the dam opens, everything must drain
// in per-(src,dst) FIFO order with credit stalls on the books.
func TestCreditBackpressure(t *testing.T) {
	f := mustFabric(t, Config{
		Topology: Ring, Nodes: 4, LinkLatency: 1,
		LinkBandwidth: 1, BufferFlits: 2 * MaxMessageFlits, InjectDepth: 64,
	})
	total := 0
	var got []Message[int]
	for now := sim.Cycle(0); now < 5000; now++ {
		if now < 20 {
			for _, src := range []int{0, 1, 3} {
				if f.Send(now, Message[int]{Src: src, Dst: 2, Flits: 2, Payload: src*1000 + int(now)}) {
					total++
				}
			}
		}
		f.Tick(now)
		f.Deliver(now, func(m Message[int]) bool {
			if now < 200 {
				return false // dam closed
			}
			got = append(got, m)
			return true
		})
		if now > 200 && len(got) == total && f.InFlight() == 0 {
			break
		}
	}
	if len(got) != total || total == 0 {
		t.Fatalf("delivered %d, want %d", len(got), total)
	}
	last := map[[2]int]int{}
	for _, m := range got {
		key := [2]int{m.Src, m.Dst}
		if prev, ok := last[key]; ok && m.Payload <= prev {
			t.Fatalf("FIFO violation on %v: %d after %d", key, m.Payload, prev)
		}
		last[key] = m.Payload
	}
	if credit, _ := f.Stats().StallCycles(); credit == 0 {
		t.Fatal("expected credit stalls behind the dam")
	}
}

// TestRingAllToAllDrains saturates an 8-node ring with all-to-all
// traffic and tight buffers; the critical-bubble injection control
// must keep it deadlock-free to full drain.
func TestRingAllToAllDrains(t *testing.T) {
	f := mustFabric(t, Config{
		Topology: Ring, Nodes: 8, LinkLatency: 1,
		LinkBandwidth: 1, BufferFlits: 2 * MaxMessageFlits, InjectDepth: 256,
	})
	sends := map[sim.Cycle][]Message[int]{}
	for round := 0; round < 8; round++ {
		for src := 0; src < 8; src++ {
			for dst := 0; dst < 8; dst++ {
				if src == dst {
					continue
				}
				sends[sim.Cycle(round)] = append(sends[sim.Cycle(round)],
					Message[int]{Src: src, Dst: dst, Flits: MaxMessageFlits})
			}
		}
	}
	drive(t, f, sends, 50000)
}

func TestChaosLinkStallDelaysTraffic(t *testing.T) {
	f := mustFabric(t, Config{Topology: Ring, Nodes: 4, LinkLatency: 1})
	f.StallLink(0, 50) // link 0 is node 0's clockwise output
	f.Send(0, Message[int]{Src: 0, Dst: 1})
	var deliveredAt sim.Cycle
	for now := sim.Cycle(0); now < 100 && deliveredAt == 0; now++ {
		f.Tick(now)
		f.Deliver(now, func(m Message[int]) bool {
			deliveredAt = now
			return true
		})
	}
	if deliveredAt < 50 {
		t.Fatalf("delivered at %d despite link stalled until 50", deliveredAt)
	}
	if _, chaos := f.Stats().StallCycles(); chaos == 0 {
		t.Fatal("expected chaos stalls to be counted")
	}
	// Out-of-range ids must be ignored, not panic.
	f.StallLink(-1, 10)
	f.StallLink(1<<20, 10)
}

func TestInjectionRejectsWhenQueueFull(t *testing.T) {
	f := mustFabric(t, Config{Topology: Ring, Nodes: 4, LinkLatency: 1, InjectDepth: 2})
	ok := 0
	for i := 0; i < 5; i++ {
		if f.Send(0, Message[int]{Src: 0, Dst: 2}) {
			ok++
		}
	}
	if ok != 2 {
		t.Fatalf("accepted %d sends, want 2 (InjectDepth)", ok)
	}
	if st := f.Stats(); st.InjectRejects != 3 {
		t.Fatalf("InjectRejects=%d, want 3", st.InjectRejects)
	}
}

// TestRoutedDeterminism runs the same congested traffic twice and
// requires identical delivery traces and stats.
func TestRoutedDeterminism(t *testing.T) {
	for _, topo := range []string{Ring, Mesh} {
		run := func() ([]Message[int], Stats) {
			f := mustFabric(t, Config{
				Topology: topo, Nodes: 8, LinkLatency: 3,
				LinkBandwidth: 1, BufferFlits: 8, InjectDepth: 32,
			})
			sends := map[sim.Cycle][]Message[int]{}
			seed := uint64(0x9e3779b97f4a7c15)
			for i := 0; i < 200; i++ {
				seed = seed*6364136223846793005 + 1442695040888963407
				src := int(seed>>33) % 8
				dst := int(seed>>45) % 8
				sends[sim.Cycle(i%17)] = append(sends[sim.Cycle(i%17)],
					Message[int]{Src: src, Dst: dst, Flits: 1 + int(seed>>60)%MaxMessageFlits, Payload: i})
			}
			got := drive(t, f, sends, 50000)
			return got, *f.Stats()
		}
		g1, s1 := run()
		g2, s2 := run()
		if fmt.Sprint(g1) != fmt.Sprint(g2) {
			t.Fatalf("%s: delivery traces differ between identical runs", topo)
		}
		if fmt.Sprint(s1) != fmt.Sprint(s2) {
			t.Fatalf("%s: stats differ between identical runs", topo)
		}
	}
}

func TestZeroHopDelivery(t *testing.T) {
	f := mustFabric(t, Config{Topology: Mesh, Nodes: 4, LinkLatency: 5})
	got := drive(t, f, map[sim.Cycle][]Message[int]{3: {{Src: 2, Dst: 2, Payload: 9}}}, 100)
	if got[0].Payload != 9 {
		t.Fatalf("payload %d, want 9", got[0].Payload)
	}
	if h := f.Stats().Hops.Sum(); h != 0 {
		t.Fatalf("src==dst took %d hops, want 0", h)
	}
}

func TestConfigStringParseRoundTrip(t *testing.T) {
	for _, cfg := range []Config{
		{Topology: Ideal, Nodes: 2, LinkLatency: 330, LinkBandwidth: 2},
		{Topology: Ring, Nodes: 8, LinkLatency: 83, LinkBandwidth: 4, BufferFlits: 32, InjectDepth: 16},
		{Topology: Mesh, Nodes: 16, LinkLatency: 10, LinkBandwidth: 2, BufferFlits: 64, InjectDepth: 8, MeshCols: 8},
		{Topology: Mesh}, // defaults
	} {
		want := cfg.WithDefaults()
		got, err := ParseConfig(want.String())
		if err != nil {
			t.Fatalf("ParseConfig(%q): %v", want.String(), err)
		}
		if got != want {
			t.Errorf("round trip %q: got %+v want %+v", want.String(), got, want)
		}
	}
}

func TestParseConfigRejects(t *testing.T) {
	for _, s := range []string{
		"torus",               // unknown topology
		"ring,bogus=1",        // unknown key
		"ring,lat",            // not key=value
		"ring,lat=x",          // not a number
		"ring,lat=-1",         // negative
		"ring,nodes=99999",    // over bound
		"ring,buf=1",          // cannot hold two max messages
		"mesh,cols=3,nodes=4", // cols does not divide nodes
	} {
		if _, err := ParseConfig(s); err == nil {
			t.Errorf("ParseConfig(%q) accepted, want error", s)
		}
	}
}

func TestParseConfigAliases(t *testing.T) {
	for _, s := range []string{"", "crossbar", "xbar", " IDEAL "} {
		c, err := ParseConfig(s)
		if err != nil {
			t.Fatalf("ParseConfig(%q): %v", s, err)
		}
		if c.Topology != Ideal {
			t.Errorf("ParseConfig(%q).Topology = %q, want ideal", s, c.Topology)
		}
	}
}

func TestValidateBounds(t *testing.T) {
	base := DefaultConfig()
	bad := []Config{
		{}, // zero value: unknown topology
		func() Config { c := base; c.Nodes = 0; return c }(),
		func() Config { c := base; c.Nodes = 2048; return c }(),
		func() Config { c := base; c.LinkBandwidth = 0; return c }(),
		func() Config { c := base; c.Topology = Ring; c.BufferFlits = MaxMessageFlits; return c }(),
		func() Config { c := base; c.Topology = Mesh; c.MeshCols = 3; c.Nodes = 4; return c }(),
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted, want error", c)
		}
	}
	if err := base.Validate(); err != nil {
		t.Errorf("Validate(default) = %v", err)
	}
}

func TestMeshColsShapesTopology(t *testing.T) {
	// 8 nodes as 2x4 (default most-square) vs 1x8 via cols=8: the
	// corner-to-corner hop count differs (3+1=4 vs 7).
	f := mustFabric(t, Config{Topology: Mesh, Nodes: 8, LinkLatency: 1})
	drive(t, f, map[sim.Cycle][]Message[int]{0: {{Src: 0, Dst: 7}}}, 200)
	if h := f.Stats().Hops.Sum(); h != 4 {
		t.Fatalf("2x4 corner hops = %d, want 4", h)
	}
	f = mustFabric(t, Config{Topology: Mesh, Nodes: 8, LinkLatency: 1, MeshCols: 8})
	drive(t, f, map[sim.Cycle][]Message[int]{0: {{Src: 0, Dst: 7}}}, 200)
	if h := f.Stats().Hops.Sum(); h != 7 {
		t.Fatalf("1x8 corner hops = %d, want 7", h)
	}
}
