package noc

import (
	"fmt"

	"mac3d/internal/obs"
	"mac3d/internal/sim"
)

// traceEmitInterval is how often (in cycles) the routed fabric emits a
// per-link buffer-occupancy counter event when tracing is enabled.
const traceEmitInterval = 256

// routedMsg wraps a message with its in-network bookkeeping.
type routedMsg[P any] struct {
	m    Message[P]
	hops int
	sent sim.Cycle
}

// transitMsg is one message propagating across a link.
type transitMsg[P any] struct {
	arrive sim.Cycle
	msg    routedMsg[P]
}

// inPort is one router input buffer, fed by exactly one link. Space
// is measured in flits; the upstream sender's credit counter mirrors
// the free space, so arrivals never overflow.
type inPort[P any] struct {
	linkID    int
	q         []routedMsg[P]
	usedFlits int
}

// routedFabric runs the ring and mesh topologies: store-and-forward
// routers with FLIT-serialized links and credit-based flow control.
type routedFabric[P any] struct {
	cfg  Config
	topo *topology

	// Per-link state, indexed by link id.
	busyUntil  []sim.Cycle
	stallUntil []sim.Cycle
	credits    []int // free flits in the downstream input buffer
	transit    [][]transitMsg[P]

	// Per-node state.
	ports      [][]inPort[P]
	inject     [][]routedMsg[P]
	eject      [][]routedMsg[P]
	ejectFlits []int
	rr         []int // switch-allocation round-robin start per node

	// ringFree tracks unreserved buffer flits per directional ring;
	// injection must keep it above bubbleReserve (critical-bubble flow
	// control), which is what makes the ring's cyclic channel
	// dependency deadlock-free.
	ringFree []int
	// bubbleReserve = nodes*(MaxMessageFlits-1) + 1: if every one of
	// the ring's node buffers had less than a max message free, the
	// ring's total free space would be at most nodes*(MaxMessageFlits-1)
	// — so above the reserve, some buffer can always admit any head
	// message, and that hole rotates upstream until every head moves.
	// A plain one-bubble reserve is not enough with variable-size
	// messages: the free space can fragment into sub-message holes.
	bubbleReserve int

	st       Stats
	inflight int
	tracer   *obs.Tracer
	// sendPorts are the lazily built staging ports (see staged.go).
	sendPorts []routedPort[P]
}

func newRouted[P any](cfg Config) (*routedFabric[P], error) {
	var topo *topology
	var err error
	switch cfg.Topology {
	case Ring:
		topo = buildRing(cfg.Nodes)
	case Mesh:
		topo, err = buildMesh(cfg.Nodes, cfg.MeshCols)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("noc: no routed engine for topology %q", cfg.Topology)
	}
	f := &routedFabric[P]{
		cfg:           cfg,
		topo:          topo,
		busyUntil:     make([]sim.Cycle, len(topo.links)),
		stallUntil:    make([]sim.Cycle, len(topo.links)),
		credits:       make([]int, len(topo.links)),
		transit:       make([][]transitMsg[P], len(topo.links)),
		ports:         make([][]inPort[P], cfg.Nodes),
		inject:        make([][]routedMsg[P], cfg.Nodes),
		eject:         make([][]routedMsg[P], cfg.Nodes),
		ejectFlits:    make([]int, cfg.Nodes),
		rr:            make([]int, cfg.Nodes),
		ringFree:      make([]int, topo.rings),
		bubbleReserve: cfg.Nodes*(MaxMessageFlits-1) + 1,
		st:            Stats{Topology: cfg.Topology},
	}
	for n := 0; n < cfg.Nodes; n++ {
		f.ports[n] = make([]inPort[P], topo.ports[n])
	}
	for _, l := range topo.links {
		f.credits[l.id] = cfg.BufferFlits
		f.ports[l.to][l.port].linkID = l.id
		if l.ring >= 0 {
			f.ringFree[l.ring] += cfg.BufferFlits
		}
		f.st.Links = append(f.st.Links, LinkStats{From: l.from, To: l.to, Class: l.class})
	}
	return f, nil
}

func (f *routedFabric[P]) Send(now sim.Cycle, m Message[P]) bool {
	switch {
	case m.Flits <= 0:
		m.Flits = 1
	case m.Flits > MaxMessageFlits:
		m.Flits = MaxMessageFlits
	}
	rm := routedMsg[P]{m: m, sent: now}
	if m.Src == m.Dst {
		// Zero-hop transfer: straight to the ejection buffer.
		if f.ejectFlits[m.Src]+m.Flits > f.cfg.BufferFlits {
			f.st.InjectRejects++
			return false
		}
		f.eject[m.Src] = append(f.eject[m.Src], rm)
		f.ejectFlits[m.Src] += m.Flits
	} else {
		if len(f.inject[m.Src]) >= f.cfg.InjectDepth {
			f.st.InjectRejects++
			return false
		}
		f.inject[m.Src] = append(f.inject[m.Src], rm)
	}
	f.inflight++
	f.st.Sent++
	f.st.FlitsSent += uint64(m.Flits)
	return true
}

// Tick advances one cycle: arrivals land in input buffers, each router
// moves at most one message per input port (eject or forward, with
// in-network traffic taking priority over injection), then each node
// tries to inject its queue head.
func (f *routedFabric[P]) Tick(now sim.Cycle) {
	// 1. Arrivals. Buffer space was reserved by the sender's credits.
	for l := range f.transit {
		q := f.transit[l]
		for len(q) > 0 && q[0].arrive <= now {
			p := &f.ports[f.topo.links[l].to][f.topo.links[l].port]
			p.q = append(p.q, q[0].msg)
			p.usedFlits += q[0].msg.m.Flits
			if p.usedFlits > f.st.Links[l].MaxBufferFlits {
				f.st.Links[l].MaxBufferFlits = p.usedFlits
			}
			q = q[1:]
		}
		f.transit[l] = q
	}
	// 2. Switch allocation, round-robin over input ports for fairness.
	for n := range f.ports {
		np := len(f.ports[n])
		for k := 0; k < np; k++ {
			p := &f.ports[n][(f.rr[n]+k)%np]
			if len(p.q) == 0 {
				continue
			}
			head := p.q[0]
			if head.m.Dst == n {
				// Eject into the (bounded) delivery buffer.
				if f.ejectFlits[n]+head.m.Flits > f.cfg.BufferFlits {
					continue
				}
				f.eject[n] = append(f.eject[n], head)
				f.ejectFlits[n] += head.m.Flits
				f.popPort(p, head.m.Flits)
				continue
			}
			out := f.topo.route(n, head.m.Dst)
			if !f.trySend(now, out, head, false) {
				continue
			}
			f.popPort(p, head.m.Flits)
		}
		if np > 0 {
			f.rr[n] = (f.rr[n] + 1) % np
		}
	}
	// 3. Injection (loses to in-network traffic on a contended link).
	for n := range f.inject {
		if len(f.inject[n]) == 0 {
			continue
		}
		head := f.inject[n][0]
		out := f.topo.route(n, head.m.Dst)
		if !f.trySend(now, out, head, true) {
			continue
		}
		f.inject[n] = f.inject[n][1:]
	}
	if f.tracer != nil && now%traceEmitInterval == 0 {
		f.emitTrace(now)
	}
}

// popPort removes the head message from an input buffer and returns
// its flits as credits to the upstream sender (idealized zero-latency
// credit wires; the buffer bound itself is still strictly enforced).
func (f *routedFabric[P]) popPort(p *inPort[P], flits int) {
	p.q = p.q[1:]
	p.usedFlits -= flits
	f.credits[p.linkID] += flits
	if r := f.topo.links[p.linkID].ring; r >= 0 {
		f.ringFree[r] += flits
	}
}

// trySend starts serializing head onto link out at cycle now. Inject
// marks a first hop, which on a ring must keep ringFree above
// bubbleReserve (critical-bubble flow control); forwarding is exempt,
// so the bubble can always rotate.
func (f *routedFabric[P]) trySend(now sim.Cycle, out int, head routedMsg[P], inject bool) bool {
	ls := &f.st.Links[out]
	if f.busyUntil[out] > now {
		return false
	}
	if f.stallUntil[out] > now {
		ls.ChaosStalls++
		return false
	}
	flits := head.m.Flits
	if f.credits[out] < flits {
		ls.CreditStalls++
		return false
	}
	ring := f.topo.links[out].ring
	if inject && ring >= 0 && f.ringFree[ring]-flits < f.bubbleReserve {
		ls.CreditStalls++
		return false
	}
	ser := sim.Cycle((flits + f.cfg.LinkBandwidth - 1) / f.cfg.LinkBandwidth)
	f.busyUntil[out] = now + ser
	f.credits[out] -= flits
	if ring >= 0 {
		// Reserve downstream ring-buffer space. A forward's popPort
		// releases the same amount upstream, so only injection shrinks
		// ringFree net and only ejection grows it — the invariant the
		// bubble check depends on.
		f.ringFree[ring] -= flits
	}
	head.hops++
	f.transit[out] = append(f.transit[out], transitMsg[P]{
		arrive: now + ser + f.cfg.LinkLatency,
		msg:    head,
	})
	ls.Messages++
	ls.Flits += uint64(flits)
	ls.BusyCycles += uint64(ser)
	return true
}

func (f *routedFabric[P]) Deliver(now sim.Cycle, sink func(m Message[P]) bool) {
	for n := range f.eject {
		for len(f.eject[n]) > 0 {
			head := f.eject[n][0]
			if !sink(head.m) {
				// Destination backpressure: the head keeps its place,
				// so per-(src,dst) FIFO order survives the refusal.
				f.st.DeliverRetries++
				break
			}
			f.eject[n] = f.eject[n][1:]
			f.ejectFlits[n] -= head.m.Flits
			f.inflight--
			f.st.Delivered++
			f.st.Hops.Observe(uint64(head.hops))
			f.st.NetLatency.Observe(uint64(now - head.sent))
		}
	}
}

func (f *routedFabric[P]) InFlight() int { return f.inflight }
func (f *routedFabric[P]) Links() int    { return len(f.topo.links) }

func (f *routedFabric[P]) StallLink(l int, until sim.Cycle) {
	if l < 0 || l >= len(f.stallUntil) {
		return
	}
	if until > f.stallUntil[l] {
		f.stallUntil[l] = until
	}
}

func (f *routedFabric[P]) Stats() *Stats { return &f.st }

func (f *routedFabric[P]) AttachObs(o *obs.Obs) {
	if !o.Enabled() {
		return
	}
	attachStats(o, &f.st, f.InFlight)
	f.tracer = o.Trace()
	r := o.Reg()
	for i := range f.st.Links {
		ls := &f.st.Links[i]
		prefix := fmt.Sprintf("noc.link%03d.", i)
		r.Func(prefix+"flits", func() float64 { return float64(ls.Flits) })
		r.Func(prefix+"busy_cycles", func() float64 { return float64(ls.BusyCycles) })
		r.Func(prefix+"credit_stalls", func() float64 { return float64(ls.CreditStalls) })
		r.Func(prefix+"chaos_stalls", func() float64 { return float64(ls.ChaosStalls) })
	}
}

// emitTrace renders per-link input-buffer occupancy as one Chrome
// counter event, a stacked per-link congestion track in Perfetto.
func (f *routedFabric[P]) emitTrace(now sim.Cycle) {
	values := make(map[string]any, len(f.topo.links))
	for _, l := range f.topo.links {
		values[fmt.Sprintf("l%03d.%s", l.id, l.class)] = f.ports[l.to][l.port].usedFlits
	}
	f.tracer.CounterEvent("noc.links", uint64(now), values)
}
