package noc

import (
	"container/heap"
	"fmt"

	"mac3d/internal/sim"
)

// Staged injection ports: the mechanism that lets the parallel NUMA
// core drive one fabric from N goroutines without giving up the
// sequential core's bit-exact behaviour.
//
// During a cycle's node phase each goroutine talks only to its own
// SendPort. A port answers accept/refuse immediately — which the
// driver needs, because backpressure decides whether a message stays
// in the node's outbound queue — but it does not mutate the shared
// fabric; it stages the message privately. Admission can be decided
// locally because every piece of fabric state a Send consults is
// per-source (the ideal crossbar always accepts; the routed fabrics
// check only inject[src] depth and ejectFlits[src]), and the fabric's
// Tick/Deliver never run while ports are live. At the barrier the
// driver calls FlushPorts, which folds every staged message into the
// fabric in ascending port order — reproducing exactly the mutation
// order a sequential driver iterating nodes 0..N-1 would have caused,
// including the ideal crossbar's heap-push order and therefore its
// unspecified-but-deterministic tie behaviour.
//
// Contract: between a cycle's first port Send and its FlushPorts, the
// fabric's Send/Tick/Deliver must not be called; messages staged on
// port i must have Src == i.

// SendPort is one node's private injection port. Send has Fabric.Send
// semantics (false = backpressure, caller keeps the message) but only
// stages; nothing enters the fabric until FlushPorts.
type SendPort[P any] interface {
	Send(now sim.Cycle, m Message[P]) bool
}

// PortFabric extends Fabric with barrier-staged injection. Both
// engines in this package implement it.
type PortFabric[P any] interface {
	Fabric[P]
	// Ports returns the per-node staging ports, indexed by source node.
	// The same slice contents are returned on every call.
	Ports() []SendPort[P]
	// FlushPorts folds all staged messages into the fabric in ascending
	// port order and resets the ports. Call once per cycle, at the
	// barrier after the node phase and before Tick.
	FlushPorts(now sim.Cycle)
}

// idealPort stages sends for one source node of the ideal crossbar.
// The crossbar never refuses, so staging is unconditional; the
// delivery cycle is computed at Send time, so flushing is a pure
// heap-push replay.
type idealPort[P any] struct {
	f      *idealFabric[P]
	staged []idealMsg[P]
	flits  uint64
}

func (p *idealPort[P]) Send(now sim.Cycle, m Message[P]) bool {
	if m.Flits <= 0 {
		m.Flits = 1
	}
	p.staged = append(p.staged, idealMsg[P]{deliver: now + p.f.cfg.LinkLatency, sent: now, m: m})
	p.flits += uint64(m.Flits)
	return true
}

// Ports implements PortFabric.
func (f *idealFabric[P]) Ports() []SendPort[P] {
	if f.sendPorts == nil {
		f.sendPorts = make([]idealPort[P], f.cfg.Nodes)
		for i := range f.sendPorts {
			f.sendPorts[i].f = f
		}
	}
	out := make([]SendPort[P], len(f.sendPorts))
	for i := range f.sendPorts {
		out[i] = &f.sendPorts[i]
	}
	return out
}

// FlushPorts implements PortFabric. Pushing in ascending port order
// recreates the heap-push sequence of a sequential driver, so the
// heap's internal layout — and with it the tie order of same-cycle
// deliveries — is bit-identical.
func (f *idealFabric[P]) FlushPorts(sim.Cycle) {
	for i := range f.sendPorts {
		p := &f.sendPorts[i]
		for _, im := range p.staged {
			heap.Push(&f.h, im)
		}
		f.inflight += len(p.staged)
		f.st.Sent += uint64(len(p.staged))
		f.st.FlitsSent += p.flits
		p.staged = p.staged[:0]
		p.flits = 0
	}
}

// routedPort stages sends for one source node of a routed fabric. It
// shadows the two per-source admission accounts (injection-queue depth
// and ejection-buffer flits) so refusals during the staged phase match
// what an interleaved sequential Send would have decided.
type routedPort[P any] struct {
	f            *routedFabric[P]
	node         int
	staged       []routedMsg[P]
	stagedInject int
	stagedEject  int // flits
	flits        uint64
	rejects      uint64
}

func (p *routedPort[P]) Send(now sim.Cycle, m Message[P]) bool {
	if m.Src != p.node {
		panic(fmt.Sprintf("noc: message with src %d staged on port %d", m.Src, p.node))
	}
	switch {
	case m.Flits <= 0:
		m.Flits = 1
	case m.Flits > MaxMessageFlits:
		m.Flits = MaxMessageFlits
	}
	if m.Src == m.Dst {
		if p.f.ejectFlits[m.Src]+p.stagedEject+m.Flits > p.f.cfg.BufferFlits {
			p.rejects++
			return false
		}
		p.stagedEject += m.Flits
	} else {
		if len(p.f.inject[m.Src])+p.stagedInject >= p.f.cfg.InjectDepth {
			p.rejects++
			return false
		}
		p.stagedInject++
	}
	p.staged = append(p.staged, routedMsg[P]{m: m, sent: now})
	p.flits += uint64(m.Flits)
	return true
}

// Ports implements PortFabric.
func (f *routedFabric[P]) Ports() []SendPort[P] {
	if f.sendPorts == nil {
		f.sendPorts = make([]routedPort[P], f.cfg.Nodes)
		for i := range f.sendPorts {
			f.sendPorts[i].f = f
			f.sendPorts[i].node = i
		}
	}
	out := make([]SendPort[P], len(f.sendPorts))
	for i := range f.sendPorts {
		out[i] = &f.sendPorts[i]
	}
	return out
}

// FlushPorts implements PortFabric.
func (f *routedFabric[P]) FlushPorts(sim.Cycle) {
	for i := range f.sendPorts {
		p := &f.sendPorts[i]
		for _, rm := range p.staged {
			if rm.m.Src == rm.m.Dst {
				f.eject[rm.m.Src] = append(f.eject[rm.m.Src], rm)
				f.ejectFlits[rm.m.Src] += rm.m.Flits
			} else {
				f.inject[rm.m.Src] = append(f.inject[rm.m.Src], rm)
			}
		}
		f.inflight += len(p.staged)
		f.st.Sent += uint64(len(p.staged))
		f.st.FlitsSent += p.flits
		f.st.InjectRejects += p.rejects
		p.staged = p.staged[:0]
		p.stagedInject, p.stagedEject = 0, 0
		p.flits, p.rejects = 0, 0
	}
}
