package noc

import "fmt"

// link is one directed channel between adjacent routers.
type link struct {
	id       int
	from, to int
	class    string // "cw", "ccw", "east", "west", "north", "south"
	// port is the input-port index at the receiving router fed by
	// this link.
	port int
	// ring indexes ringFree for the directional ring this link
	// belongs to (-1 outside rings).
	ring int
}

// topology is the static wiring and routing function of a routed
// fabric.
type topology struct {
	name  string
	nodes int
	links []link
	// out[node] lists the ids of links leaving node.
	out [][]int
	// ports[node] counts the input ports of node's router.
	ports []int
	// next[node*nodes+dst] is the outgoing link id toward dst, -1 for
	// dst == node. Precomputed: routing is deterministic.
	next []int
	// rings is the number of directional rings (2 for ring, 0 for
	// mesh).
	rings int
	cols  int // mesh width (0 for ring)
}

// addLink wires one directed channel and returns its id.
func (t *topology) addLink(from, to int, class string, ring int) int {
	id := len(t.links)
	t.links = append(t.links, link{
		id: id, from: from, to: to, class: class, port: t.ports[to], ring: ring,
	})
	t.ports[to]++
	t.out[from] = append(t.out[from], id)
	return id
}

// buildRing wires a bidirectional ring: clockwise (i → i+1) and
// counterclockwise (i → i-1) directional rings. Routing takes the
// shorter way; ties go clockwise.
func buildRing(nodes int) *topology {
	t := &topology{
		name: Ring, nodes: nodes,
		out: make([][]int, nodes), ports: make([]int, nodes),
		rings: 2,
	}
	cw := make([]int, nodes)
	ccw := make([]int, nodes)
	for i := 0; i < nodes; i++ {
		cw[i] = t.addLink(i, (i+1)%nodes, "cw", 0)
	}
	for i := 0; i < nodes; i++ {
		ccw[i] = t.addLink(i, (i-1+nodes)%nodes, "ccw", 1)
	}
	t.next = make([]int, nodes*nodes)
	for src := 0; src < nodes; src++ {
		for dst := 0; dst < nodes; dst++ {
			switch fwd := (dst - src + nodes) % nodes; {
			case fwd == 0:
				t.next[src*nodes+dst] = -1
			case fwd <= nodes-fwd:
				t.next[src*nodes+dst] = cw[src]
			default:
				t.next[src*nodes+dst] = ccw[src]
			}
		}
	}
	return t
}

// meshDims picks the most-square factorization rows × cols = nodes
// with cols ≥ rows; a prime count degenerates to a 1 × N chain.
func meshDims(nodes, cols int) (int, int) {
	if cols > 0 {
		return nodes / cols, cols
	}
	rows := 1
	for r := 2; r*r <= nodes; r++ {
		if nodes%r == 0 {
			rows = r
		}
	}
	return rows, nodes / rows
}

// buildMesh wires a rows × cols 2D mesh with XY (dimension-ordered)
// routing: correct the column first, then the row. XY's channel
// dependency graph is acyclic, so the mesh needs no bubble control.
func buildMesh(nodes, meshCols int) (*topology, error) {
	rows, cols := meshDims(nodes, meshCols)
	if rows*cols != nodes {
		return nil, fmt.Errorf("noc: mesh %dx%d does not cover %d nodes", rows, cols, nodes)
	}
	t := &topology{
		name: Mesh, nodes: nodes,
		out: make([][]int, nodes), ports: make([]int, nodes),
		cols: cols,
	}
	// east[i] is the link i → i+1 within a row, etc.
	east := make([]int, nodes)
	west := make([]int, nodes)
	north := make([]int, nodes)
	south := make([]int, nodes)
	for y := 0; y < rows; y++ {
		for x := 0; x < cols; x++ {
			n := y*cols + x
			if x+1 < cols {
				east[n] = t.addLink(n, n+1, "east", -1)
			}
			if x > 0 {
				west[n] = t.addLink(n, n-1, "west", -1)
			}
			if y+1 < rows {
				south[n] = t.addLink(n, n+cols, "south", -1)
			}
			if y > 0 {
				north[n] = t.addLink(n, n-cols, "north", -1)
			}
		}
	}
	t.next = make([]int, nodes*nodes)
	for src := 0; src < nodes; src++ {
		sx, sy := src%cols, src/cols
		for dst := 0; dst < nodes; dst++ {
			dx, dy := dst%cols, dst/cols
			switch {
			case src == dst:
				t.next[src*nodes+dst] = -1
			case dx > sx:
				t.next[src*nodes+dst] = east[src]
			case dx < sx:
				t.next[src*nodes+dst] = west[src]
			case dy > sy:
				t.next[src*nodes+dst] = south[src]
			default:
				t.next[src*nodes+dst] = north[src]
			}
		}
	}
	return t, nil
}

// route returns the outgoing link id from cur toward dst (-1 when
// cur == dst).
func (t *topology) route(cur, dst int) int { return t.next[cur*t.nodes+dst] }
