package numa

import (
	"testing"

	"mac3d/internal/noc"
	"mac3d/internal/sim"
	"mac3d/internal/trace"
)

// goldTrace is the sequential per-thread load pattern the golden
// captures were taken with.
func goldTrace(threads, n int) *trace.Trace {
	tr := trace.NewTrace(threads)
	for t := 0; t < threads; t++ {
		base := uint64(t) << 24
		for i := 0; i < n; i++ {
			tr.Append(trace.Event{
				Addr: base + uint64(i)*8, Thread: uint16(t),
				Op: trace.Load, Size: 8, Gap: 1,
			})
		}
	}
	return tr
}

// goldMixTrace is an LCG-driven mixed load/store pattern with
// irregular gaps.
func goldMixTrace(seed uint64, threads, n int) *trace.Trace {
	tr := trace.NewTrace(threads)
	x := seed | 1
	for i := 0; i < n; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		op := trace.Load
		if x%5 == 0 {
			op = trace.Store
		}
		tr.Append(trace.Event{
			Addr:   x % (1 << 22),
			Thread: uint16(i % threads),
			Op:     op,
			Size:   8,
			Gap:    uint8(x % 3),
		})
	}
	return tr
}

// goldenCase pins one pre-NoC run: the expected numbers were captured
// from the interconnect model as it existed before internal/noc, so
// this test is the cycle-for-cycle compatibility contract of the
// `ideal` topology (and of the deprecated LinkLatency/LinkBandwidth
// alias fields that map onto it).
type goldenCase struct {
	name     string
	nodes    int
	lat      sim.Cycle
	bw       int
	inter    uint64
	tr       func() *trace.Trace
	cycles   sim.Cycle
	remote   uint64
	latSum   uint64
	latCount uint64
}

var goldenCases = []goldenCase{
	{"seq-2n", 2, 330, 2, 0, func() *trace.Trace { return goldTrace(4, 96) },
		13806, 192, 3241715, 384},
	{"mix-3n", 3, 113, 2, 512, func() *trace.Trace { return goldMixTrace(7, 6, 400) },
		897, 259, 206865, 400},
	{"mix-2n-lat0", 2, 0, 3, 0, func() *trace.Trace { return goldMixTrace(9, 4, 200) },
		619, 101, 83846, 200},
}

// saturatedCase pins the one shape where the ideal fabric deliberately
// diverges from the pre-NoC model: a trace that saturates the Remote
// Access Queue (bw=1, four nodes — ~10.7k delivery refusals). The old
// model re-queued a refused delivery one cycle out, letting younger
// same-source messages pop past it (its capture: cycles=20248,
// latSum=6028266); the fabric preserves per-source FIFO instead. The
// numbers below pin the fixed behaviour so it stays deterministic.
var saturatedCase = goldenCase{
	"seq-4n", 4, 57, 1, 0, func() *trace.Trace { return goldTrace(8, 64) },
	20444, 384, 5764975, 512,
}

func (c goldenCase) config() Config {
	cfg := DefaultConfig()
	cfg.Nodes = c.nodes
	cfg.LinkLatency = c.lat
	cfg.LinkBandwidth = c.bw
	if c.inter != 0 {
		cfg.InterleaveBytes = c.inter
	}
	return cfg
}

func (c goldenCase) check(t *testing.T, res *Result) {
	t.Helper()
	if res.Cycles != c.cycles {
		t.Errorf("cycles = %d, want %d", res.Cycles, c.cycles)
	}
	if res.RemoteRequests != c.remote {
		t.Errorf("remote requests = %d, want %d", res.RemoteRequests, c.remote)
	}
	if got := res.RequestLatency.Sum(); got != c.latSum {
		t.Errorf("latency sum = %d, want %d", got, c.latSum)
	}
	if got := res.RequestLatency.Count(); got != c.latCount {
		t.Errorf("latency count = %d, want %d", got, c.latCount)
	}
}

// TestGoldenIdealMatchesPreNoC replays the pinned pre-NoC runs through
// the deprecated alias fields (empty NoC → ideal fabric). Any drift
// here means old NUMA results are no longer reproducible.
func TestGoldenIdealMatchesPreNoC(t *testing.T) {
	for _, c := range goldenCases {
		t.Run(c.name, func(t *testing.T) {
			res, err := Run(c.config(), c.tr())
			if err != nil {
				t.Fatal(err)
			}
			c.check(t, res)
			if res.NoC == nil || res.NoC.Topology != noc.Ideal {
				t.Fatalf("expected ideal NoC stats, got %+v", res.NoC)
			}
		})
	}
}

// TestSaturatedRemoteQueuePinned pins the RAQ-saturating shape (see
// saturatedCase) and checks the fabric actually exercised the refusal
// path it exists to fix.
func TestSaturatedRemoteQueuePinned(t *testing.T) {
	res, err := Run(saturatedCase.config(), saturatedCase.tr())
	if err != nil {
		t.Fatal(err)
	}
	saturatedCase.check(t, res)
	if res.NoC.DeliverRetries == 0 {
		t.Fatal("expected delivery refusals in the saturated run")
	}
}

// TestGoldenExplicitIdealMatchesAlias runs the same cases with an
// explicit NoC config instead of the deprecated fields: the two
// spellings must be indistinguishable, including the zero-latency
// case (lat=0 must stay 0, not turn into a default).
func TestGoldenExplicitIdealMatchesAlias(t *testing.T) {
	for _, c := range goldenCases {
		t.Run(c.name, func(t *testing.T) {
			cfg := c.config()
			cfg.LinkLatency = 0
			cfg.LinkBandwidth = 0
			cfg.NoC = noc.Config{
				Topology:      noc.Ideal,
				LinkLatency:   c.lat,
				LinkBandwidth: c.bw,
			}
			res, err := Run(cfg, c.tr())
			if err != nil {
				t.Fatal(err)
			}
			c.check(t, res)
		})
	}
}
