package numa

import (
	"testing"

	"mac3d/internal/chaos"
	"mac3d/internal/memreq"
	"mac3d/internal/noc"
	"mac3d/internal/sim"
)

// TestSaturatedRemoteQueueKeepsPerSourceFIFO runs the RAQ-saturating
// shape and asserts, via the router drain hook, that every node sees
// each thread's requests in issue (tag) order. The pre-NoC model
// violated this under saturation: a delivery refused by a full Remote
// Access Queue was re-queued one cycle out, and a younger same-source
// message due earlier could pop past it.
func TestSaturatedRemoteQueueKeepsPerSourceFIFO(t *testing.T) {
	s, err := NewSystem(saturatedCase.config())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Load(saturatedCase.tr()); err != nil {
		t.Fatal(err)
	}
	lastTag := map[[2]int]int{}
	for _, nd := range s.nodes {
		nd := nd
		nd.router.OnDrain = func(req memreq.RawRequest, _ sim.Cycle) {
			if req.Fence {
				return
			}
			key := [2]int{nd.id, int(req.Thread)}
			if prev, ok := lastTag[key]; ok && int(req.Tag) <= prev {
				t.Errorf("node %d drained thread %d tag %d after tag %d",
					nd.id, req.Thread, req.Tag, prev)
			}
			lastTag[key] = int(req.Tag)
		}
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.NoC.DeliverRetries == 0 {
		t.Fatal("expected the Remote Access Queue to refuse deliveries in this run")
	}
}

// TestRingMeshDiverge runs the same 16-node workload on a ring and a
// mesh and requires the topologies to be distinguishable: different
// hop structure, different finish time, same completed work. This is
// the property the abl-noc experiment sweeps.
func TestRingMeshDiverge(t *testing.T) {
	run := func(topo string) *Result {
		cfg := DefaultConfig()
		cfg.Nodes = 16
		cfg.CoresPerNode = 1
		cfg.NoC = noc.Config{Topology: topo, LinkLatency: 5, LinkBandwidth: 2}
		res, err := Run(cfg, goldTrace(16, 32))
		if err != nil {
			t.Fatalf("%s: %v", topo, err)
		}
		if got := res.RequestLatency.Count(); got != 16*32 {
			t.Fatalf("%s retired %d requests, want %d", topo, got, 16*32)
		}
		return res
	}
	ring := run(noc.Ring)
	mesh := run(noc.Mesh)
	if ring.Cycles == mesh.Cycles {
		t.Errorf("ring and mesh finished in the same %d cycles; topologies indistinguishable", ring.Cycles)
	}
	if ring.NoC.AvgHops() == mesh.NoC.AvgHops() {
		t.Errorf("ring and mesh report the same mean hop count %.3f", ring.NoC.AvgHops())
	}
	if len(ring.NoC.Links) != 32 { // 16 cw + 16 ccw
		t.Errorf("ring has %d links, want 32", len(ring.NoC.Links))
	}
	if len(mesh.NoC.Links) != 48 { // 4x4 mesh: 2*(3*4)*2 directed
		t.Errorf("mesh has %d links, want 48", len(mesh.NoC.Links))
	}
}

// TestChaosLinkStallsPerturbRun injects transient link stalls into a
// ring run and checks they are injected, accounted, and survivable.
func TestChaosLinkStallsPerturbRun(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 8
	cfg.CoresPerNode = 2
	cfg.NoC = noc.Config{Topology: noc.Ring, LinkLatency: 5, LinkBandwidth: 1}
	base, err := Run(cfg, goldTrace(8, 48))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Chaos = chaos.Profile{LinkRate: 0.05, LinkStall: 200, Seed: 42}
	perturbed, err := Run(cfg, goldTrace(8, 48))
	if err != nil {
		t.Fatal(err)
	}
	if perturbed.Chaos == nil || perturbed.Chaos.LinkStalls == 0 {
		t.Fatalf("chaos stats = %v, want injected link stalls", perturbed.Chaos)
	}
	if _, chaosStalls := perturbed.NoC.StallCycles(); chaosStalls == 0 {
		t.Error("no chaos stall cycles accounted on any link")
	}
	if perturbed.Cycles < base.Cycles {
		t.Errorf("perturbed run finished earlier (%d) than baseline (%d)",
			perturbed.Cycles, base.Cycles)
	}
	if got := perturbed.RequestLatency.Count(); got != base.RequestLatency.Count() {
		t.Errorf("perturbed run retired %d requests, baseline %d", got,
			base.RequestLatency.Count())
	}
}
