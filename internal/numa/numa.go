// Package numa models the paper's full §3 architecture: a scalable
// multi-node system where each node couples a cache-less multicore
// processor with its own 3D-stacked memory device through a MAC unit,
// and remote devices are reached through the owning node's MAC.
//
// The single-node model in internal/cpu covers the paper's evaluated
// configuration; this package exercises the request router's Global
// and Remote access queues (§3.1) and the response router's
// remote-return path (§3.3) with a configurable node count.
//
// Global/Remote traffic rides an internal/noc fabric: the default
// `ideal` topology reproduces the original point-to-point wire
// cycle-for-cycle, while `ring` and `mesh` model real routed
// interconnects with credit-based flow control and FLIT-granular link
// serialization (Config.NoC selects and parameterizes them).
package numa

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"mac3d/internal/addr"
	"mac3d/internal/chaos"
	"mac3d/internal/coalesce"
	"mac3d/internal/core"
	"mac3d/internal/cpu"
	"mac3d/internal/hmc"
	"mac3d/internal/memreq"
	"mac3d/internal/noc"
	"mac3d/internal/obs"
	"mac3d/internal/sim"
	"mac3d/internal/stats"
	"mac3d/internal/trace"
)

// Config parameterizes the multi-node system.
type Config struct {
	// Nodes is the node count (each with cores, MAC and HMC).
	Nodes int
	// CoresPerNode is the core count of each node.
	CoresPerNode int
	// InterleaveBytes is the block size of the global address
	// interleave across nodes (default: one 256B row).
	InterleaveBytes uint64
	// LinkLatency is the one-way inter-node hop latency in cycles.
	//
	// Deprecated: LinkLatency and LinkBandwidth are aliases kept for
	// pre-NoC configurations. When NoC.Topology is empty they
	// parameterize an ideal fabric with the original semantics;
	// otherwise NoC wins and they are ignored.
	LinkLatency sim.Cycle
	// LinkBandwidth bounds messages per cycle per direction on each
	// node's interconnect port.
	//
	// Deprecated: see LinkLatency.
	LinkBandwidth int
	// NoC selects and parameterizes the interconnect fabric. The zero
	// value (empty Topology) falls back to an ideal fabric built from
	// the deprecated LinkLatency/LinkBandwidth fields — bit-identical
	// to the pre-NoC point-to-point model. NoC.Nodes may be left 0 to
	// inherit Nodes; a non-zero value must agree with it.
	NoC noc.Config
	// Chaos injects deterministic adversity into the run. Only the
	// link stressor acts at the NUMA level (transient NoC link stalls,
	// requiring a routed NoC topology); the node-internal stressors
	// belong to the single-node cpu driver and are inert here.
	Chaos chaos.Profile
	// Kind selects each node's coalescer frontend (default WithMAC);
	// every node runs the same design.
	Kind cpu.CoalescerKind
	// MAC configures each node's coalescer.
	MAC core.Config
	// Warp and MemCache parameterize the SIMT and die-stacked
	// frontends when Kind selects them; the zero value takes the
	// package defaults.
	Warp     coalesce.WarpConfig
	MemCache coalesce.MemCacheConfig
	// HMC configures each node's device.
	HMC hmc.Config
	// SPMLatency and MaxOutstanding mirror cpu.Config.
	SPMLatency     sim.Cycle
	MaxOutstanding int
	// StallLimit is the simulation watchdog bound: a run making no
	// forward progress for this many cycles aborts with a diagnostic
	// error instead of spinning to MaxCycles. 0 disables it.
	StallLimit sim.Cycle
	// MaxCycles aborts a run that fails to drain.
	MaxCycles sim.Cycle
	// Retry is the requester-side poison-recovery policy: poisoned
	// completions are re-issued by the originating node's router up
	// to the policy's budget. The zero value keeps fail-on-poison.
	Retry memreq.RetryPolicy
	// Workers selects the parallel execution mode: node phases run on
	// this many goroutines, synchronized at a per-cycle barrier where
	// staged cross-node traffic merges in node order (see DESIGN §13).
	// Results are bit-identical to the sequential core. 0 or 1 runs
	// sequentially; values above Nodes are clamped. Transaction
	// tracing (ObserveOptions.Trace) shares one tracer across nodes,
	// so a tracing run falls back to sequential execution — the
	// results are identical either way.
	Workers int
}

// DefaultConfig returns a 2-node system with Table 1 nodes and a
// 100ns-class interconnect hop.
func DefaultConfig() Config {
	return Config{
		Nodes:           2,
		CoresPerNode:    8,
		InterleaveBytes: addr.RowBytes,
		LinkLatency:     330, // ~100ns at 3.3 GHz
		LinkBandwidth:   2,
		MAC:             core.DefaultConfig(),
		HMC:             hmc.DefaultConfig(),
		SPMLatency:      4,
		MaxOutstanding:  256,
		StallLimit:      1_000_000,
		MaxCycles:       2_000_000_000,
	}
}

// Validate reports the first configuration error, or nil.
func (c Config) Validate() error {
	switch {
	case c.Nodes <= 0:
		return fmt.Errorf("numa: Nodes must be positive, got %d", c.Nodes)
	case c.CoresPerNode <= 0:
		return fmt.Errorf("numa: CoresPerNode must be positive, got %d", c.CoresPerNode)
	case c.NoC.Topology == "" && c.LinkBandwidth <= 0:
		return fmt.Errorf("numa: LinkBandwidth must be positive, got %d", c.LinkBandwidth)
	case c.MaxOutstanding <= 0:
		return fmt.Errorf("numa: MaxOutstanding must be positive, got %d", c.MaxOutstanding)
	case c.MaxCycles == 0:
		return fmt.Errorf("numa: MaxCycles must be positive")
	case c.Workers < 0:
		return fmt.Errorf("numa: Workers must be non-negative, got %d", c.Workers)
	}
	if c.NoC.Nodes != 0 && c.NoC.Nodes != c.Nodes {
		return fmt.Errorf("numa: NoC.Nodes=%d disagrees with Nodes=%d (leave it 0 to inherit)",
			c.NoC.Nodes, c.Nodes)
	}
	if err := c.nocConfig().Validate(); err != nil {
		return err
	}
	if err := c.Chaos.Validate(); err != nil {
		return err
	}
	if err := c.MAC.Validate(); err != nil {
		return err
	}
	cc := c.coalescerConfig()
	if err := cc.Warp.Validate(); err != nil {
		return err
	}
	if err := cc.MemCache.Validate(); err != nil {
		return err
	}
	if err := c.Retry.Validate(); err != nil {
		return err
	}
	return c.HMC.Validate()
}

// coalescerConfig lowers the per-node frontend selection onto a
// cpu.RunConfig, so both drivers construct coalescers through the one
// Kind switch. Zero-value frontend configs take the package defaults.
func (c Config) coalescerConfig() cpu.RunConfig {
	rc := cpu.DefaultRunConfig()
	rc.Kind = c.Kind
	rc.MAC = c.MAC
	if c.Warp != (coalesce.WarpConfig{}) {
		rc.Warp = c.Warp
	}
	if c.MemCache != (coalesce.MemCacheConfig{}) {
		rc.MemCache = c.MemCache
	}
	return rc
}

// nocConfig resolves the effective fabric configuration: Config.NoC
// when set, else an ideal fabric carrying the deprecated
// LinkLatency/LinkBandwidth fields (including a legal zero latency).
func (c Config) nocConfig() noc.Config {
	n := c.NoC
	if n.Topology == "" {
		n.Topology = noc.Ideal
		if n.LinkLatency == 0 {
			n.LinkLatency = c.LinkLatency
		}
		if n.LinkBandwidth == 0 {
			n.LinkBandwidth = c.LinkBandwidth
		}
	}
	n.Nodes = c.Nodes
	return n.WithDefaults()
}

// payload is what a NUMA message carries across the noc fabric:
// either a request bound for the destination's Remote Access Queue or
// a response retiring a target at its origin node.
type payload struct {
	// isResponse selects the response interpretation.
	isResponse bool
	// poisoned marks a response whose transaction failed on the link;
	// the target retires with an error status.
	poisoned bool
	req      memreq.RawRequest
	target   memreq.Target
}

// reqFlits sizes a request message: one 16B header flit, plus one
// data flit when the request carries store/atomic data (raw request
// sizes are capped at one flit).
func reqFlits(r memreq.RawRequest) int {
	if r.Store || r.Atomic {
		return 2
	}
	return 1
}

// respFlits sizes a per-target response: reads and atomics return a
// data flit on top of the header; a write ack is a bare header.
func respFlits(k hmc.Kind) int {
	if k == hmc.Write {
		return 1
	}
	return 2
}

// threadState mirrors the per-thread replay of internal/cpu.
type threadState struct {
	events      []trace.Event
	pc          int
	gapLeft     uint32
	outstanding int
	nextTag     uint16
	spmBusy     sim.Cycle
	retired     uint64
	issuedAt    map[uint16]sim.Cycle
	latency     stats.Histogram
}

func (t *threadState) done() bool {
	return t.pc >= len(t.events) && t.outstanding == 0 && t.gapLeft == 0
}

// node is one processor+MAC+HMC tile.
type node struct {
	id     int
	router *core.Router
	coal   memreq.Coalescer
	// mac is coal when it is the MAC — for occupancy sampling on
	// backpressured cycles where the coalescer is not ticked.
	mac *core.MAC
	// rec is coal's recycling hook when it offers one: fully consumed
	// Builts hand their target slabs back, keeping the pop path
	// allocation-free. Node-local, so safe in the parallel node phase.
	rec     memreq.Recycler
	dev     *hmc.Device
	threads []*threadState // threads homed on this node

	// resp owns the target buffer mapping device tags to built
	// transactions and classifies every delivery (duplicate, unknown
	// and poisoned responses are counted, never panicked on).
	resp *core.ResponseRouter

	// sentThisCycle throttles outbound interconnect messages.
	sentThisCycle int
	// respOut parks response messages the fabric refused (routed
	// topologies backpressure injection); drained before requests.
	respOut []noc.Message[payload]
	// port is this node's staged fabric injection port: accept/refuse
	// is decided immediately, but nothing enters the shared fabric
	// until the per-cycle barrier flush (noc.PortFabric).
	port noc.SendPort[payload]

	remoteServed uint64 // requests served for other nodes
	remoteSent   uint64 // requests sent to other nodes

	// Per-node shards of what used to be system-global accounting.
	// Every mutation below is proven home-node-local: a node phase
	// only ever touches its own shard (remote retirements travel over
	// the fabric and land in the barrier phase), which is what lets
	// node phases run on worker goroutines without locks. Totals are
	// summed at the barrier / in result().
	progress         uint64
	memRequests      uint64
	spmAccesses      uint64
	remoteReqs       uint64
	failedRequests   uint64
	retriedRequests  uint64
	retireUnderflows uint64
	misrouted        uint64
	// inflightReq remembers the raw request behind each in-flight
	// (thread, tag) homed on this node, so a poisoned completion can
	// be re-issued; populated only while Config.Retry is on.
	inflightReq map[reqKey]*reqAttempt
	// retryPend holds this node's re-issues waiting out their backoff.
	retryPend []retryPend
}

// Result aggregates system-wide measurements.
type Result struct {
	Cycles         sim.Cycle
	Instructions   uint64
	MemRequests    uint64
	SPMAccesses    uint64
	RemoteRequests uint64 // requests that crossed the interconnect
	RequestLatency stats.Histogram
	// FailedRequests counts raw requests retired with an error status
	// because their transaction's response was poisoned.
	FailedRequests uint64
	// RetriedRequests counts poisoned completions re-issued under
	// Config.Retry (once per re-issue).
	RetriedRequests uint64
	// RetireUnderflows and Misrouted count malformed deliveries
	// survived instead of panicking.
	RetireUnderflows uint64
	Misrouted        uint64
	// NoC carries the interconnect's statistics: topology, per-link
	// congestion accounts, hop and network-latency histograms.
	NoC *noc.Stats
	// Chaos carries the injected-adversity counters; nil when the
	// chaos profile is disabled.
	Chaos *chaos.Stats
	// PerNode carries each node's coalescer and device snapshots.
	PerNode []NodeStats
}

// NodeStats is one node's measurement snapshot.
type NodeStats struct {
	Coalescer    memreq.Stats
	Device       hmc.Stats
	Responses    core.ResponseRouterStats
	RemoteServed uint64
	RemoteSent   uint64
	// Cube is the device's intra-cube fabric snapshot; nil for the
	// ideal cube topology.
	Cube *noc.Stats
}

// RemoteFraction returns the share of memory requests that targeted a
// remote node's device.
func (r *Result) RemoteFraction() float64 {
	if r.MemRequests == 0 {
		return 0
	}
	return float64(r.RemoteRequests) / float64(r.MemRequests)
}

// System is the multi-node simulator.
type System struct {
	cfg   Config
	nodes []*node
	// fab is the interconnect carrying Global/Remote traffic; pfab is
	// the same fabric's staged-injection view (both engines implement
	// it), through which all node-phase sends go.
	fab  noc.Fabric[payload]
	pfab noc.PortFabric[payload]
	// reqBudget bounds request injections per node per cycle: the
	// ideal fabric keeps the legacy LinkBandwidth messages-per-cycle
	// semantics; routed fabrics backpressure through Send instead.
	reqBudget int
	// chaos injects transient link stalls; nil when disabled.
	chaos *chaos.Engine
	// cubeLinksPerDev is each device's intra-cube fabric link count
	// (0 for the ideal cube); the cubelink stressor's global link id
	// l targets node l/cubeLinksPerDev, link l%cubeLinksPerDev.
	cubeLinksPerDev int
	// obs is the run's observability handle; nil when disabled.
	obs      *obs.Obs
	watchdog *sim.Watchdog
}

// reqKey identifies one in-flight raw request system-wide (thread ids
// are global).
type reqKey struct {
	thread, tag uint16
}

// reqAttempt tracks the retry budget spent on one raw request.
type reqAttempt struct {
	req      memreq.RawRequest
	attempts int
}

// retryPend is one poisoned request waiting out its re-issue backoff.
type retryPend struct {
	due sim.Cycle
	req memreq.RawRequest
}

// NewSystem builds the system; each node gets its own MAC and device.
// It returns an error for an invalid configuration instead of
// panicking.
func NewSystem(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("numa: invalid config: %w", err)
	}
	if cfg.InterleaveBytes == 0 {
		cfg.InterleaveBytes = addr.RowBytes
	}
	s := &System{cfg: cfg, watchdog: sim.NewWatchdog(cfg.StallLimit)}
	ncfg := cfg.nocConfig()
	fab, err := noc.New[payload](ncfg)
	if err != nil {
		return nil, fmt.Errorf("numa: %w", err)
	}
	s.fab = fab
	if ncfg.Topology == noc.Ideal {
		s.reqBudget = ncfg.LinkBandwidth
	} else {
		// Routed fabrics backpressure through Send refusals; the pump
		// keeps going until the injection queue fills.
		s.reqBudget = 1 << 30
	}
	eng, err := chaos.NewEngine(cfg.Chaos, 0)
	if err != nil {
		return nil, fmt.Errorf("numa: %w", err)
	}
	s.chaos = eng
	s.chaos.SetLinks(s.fab.Links())
	pfab, ok := fab.(noc.PortFabric[payload])
	if !ok {
		return nil, fmt.Errorf("numa: fabric %q does not support staged ports", ncfg.Topology)
	}
	s.pfab = pfab
	ports := pfab.Ports()
	for i := 0; i < cfg.Nodes; i++ {
		rcfg := core.DefaultRouterConfig()
		rcfg.NodeID = i
		rcfg.Nodes = cfg.Nodes
		rcfg.InterleaveBytes = cfg.InterleaveBytes
		dev, err := hmc.NewDevice(cfg.HMC)
		if err != nil {
			return nil, err
		}
		coal, err := cfg.coalescerConfig().NewCoalescer()
		if err != nil {
			return nil, fmt.Errorf("numa: node %d: %w", i, err)
		}
		router, err := core.NewRouter(rcfg)
		if err != nil {
			return nil, fmt.Errorf("numa: node %d: %w", i, err)
		}
		nd := &node{
			id:     i,
			router: router,
			coal:   coal,
			dev:    dev,
			resp:   core.NewResponseRouter(0),
			port:   ports[i],
		}
		if mac, ok := coal.(*core.MAC); ok {
			nd.mac = mac
		}
		if rec, ok := nd.coal.(memreq.Recycler); ok {
			nd.rec = rec
		}
		if cfg.Retry.Enabled() {
			nd.inflightReq = make(map[reqKey]*reqAttempt)
		}
		s.nodes = append(s.nodes, nd)
	}
	// Declare intra-cube links across all devices to the cubelink
	// stressor (gated off for the ideal cube, which reports 0).
	s.cubeLinksPerDev = s.nodes[0].dev.CubeLinks()
	s.chaos.SetCubeLinks(s.cubeLinksPerDev * cfg.Nodes)
	return s, nil
}

// AttachObs wires every node's coalescer and device into a run's
// observability layer, each under a "nodeN." name prefix so the shared
// registry and recorder keep per-node series apart, plus system-wide
// interconnect probes. Call once before Run; nil is a no-op.
func (s *System) AttachObs(o *obs.Obs) {
	s.obs = o
	if !o.Enabled() {
		return
	}
	for _, nd := range s.nodes {
		po := o.WithPrefix(fmt.Sprintf("node%d.", nd.id))
		if a, ok := nd.coal.(obs.Attacher); ok {
			a.AttachObs(po)
		}
		nd.dev.AttachObs(po)
	}
	o.Reg().Func("numa.remote_requests", func() float64 {
		var n uint64
		for _, nd := range s.nodes {
			n += nd.remoteReqs
		}
		return float64(n)
	})
	o.Rec().Watch("numa.net.inflight", func() float64 { return float64(s.fab.InFlight()) })
	s.fab.AttachObs(o)
}

// Load distributes a trace's threads across nodes: thread t is homed
// on node t % Nodes, so every node runs at most CoresPerNode threads.
func (s *System) Load(tr *trace.Trace) error {
	counts := make([]int, s.cfg.Nodes)
	for th, events := range tr.Threads {
		if len(events) > 0 {
			counts[th%s.cfg.Nodes]++
		}
	}
	for n, c := range counts {
		if c > s.cfg.CoresPerNode {
			return fmt.Errorf("numa: node %d would run %d threads with %d cores",
				n, c, s.cfg.CoresPerNode)
		}
	}
	for _, nd := range s.nodes {
		nd.threads = nd.threads[:0]
	}
	for th, events := range tr.Threads {
		nd := s.nodes[th%s.cfg.Nodes]
		ts := &threadState{events: events, issuedAt: make(map[uint16]sim.Cycle)}
		if len(events) > 0 {
			ts.gapLeft = uint32(events[0].Gap)
		}
		nd.threads = append(nd.threads, ts)
	}
	return nil
}

// thread locates a thread's state by its global id.
func (s *System) thread(id uint16) *threadState {
	nd := s.nodes[int(id)%s.cfg.Nodes]
	for _, ts := range nd.threads {
		if len(ts.events) > 0 && ts.events[0].Thread == id {
			return ts
		}
	}
	return nil
}

// Run replays the loaded trace to completion. With Config.Workers > 1
// the node phases of each cycle run on worker goroutines; the results
// are bit-identical to the sequential core (both modes share the same
// phase code and the same barrier-ordered traffic merge).
func (s *System) Run() (*Result, error) {
	workers := s.effectiveWorkers()
	if workers > 1 {
		return s.runParallel(workers)
	}
	for now := sim.Cycle(0); now < s.cfg.MaxCycles; now++ {
		s.tickChaos(now)
		for _, nd := range s.nodes {
			s.phaseNode(nd, now)
		}
		done, res, err := s.barrier(now)
		if done {
			return res, err
		}
	}
	return nil, fmt.Errorf("numa: run exceeded MaxCycles=%d", s.cfg.MaxCycles)
}

// effectiveWorkers resolves Config.Workers: clamped to the node count,
// and forced to 1 while transaction tracing is on (the tracer is one
// shared append buffer; see Config.Workers).
func (s *System) effectiveWorkers() int {
	w := s.cfg.Workers
	if w > s.cfg.Nodes {
		w = s.cfg.Nodes
	}
	if s.obs.Tracing() {
		w = 1
	}
	return w
}

// phaseNode is one node's slice of a cycle. It touches only nd's own
// state, nd's staging port, and read-only shared configuration —
// the property that makes the parallel mode race-free and the merge
// deterministic.
func (s *System) phaseNode(nd *node, now sim.Cycle) {
	s.pumpRetries(nd, now)
	nd.sentThisCycle = 0
	s.tickThreads(nd, now)
	s.pumpInterconnect(nd, now)
	nd.router.DrainToMAC(nd.coal, now)
	s.tickCoalescer(nd, now)
	s.deliverResponses(nd, now)
}

// barrier is the sequential tail of every cycle: staged traffic merges
// into the fabric in node order, the fabric advances, arrivals land,
// the recorder samples, and the exit conditions are checked. It
// returns done=true when the run finished (res/err carry the outcome).
func (s *System) barrier(now sim.Cycle) (done bool, res *Result, err error) {
	s.pfab.FlushPorts(now)
	s.fab.Tick(now)
	s.deliverMessages(now)
	s.obs.Rec().Sample(uint64(now))
	if s.drained() {
		return true, s.result(now + 1), nil
	}
	if s.watchdog.Check(now, s.progressTotal()) {
		return true, nil, s.stallError(now)
	}
	return false, nil, nil
}

// progressTotal sums the per-node progress shards for the watchdog.
func (s *System) progressTotal() uint64 {
	var n uint64
	for _, nd := range s.nodes {
		n += nd.progress
	}
	return n
}

// parSpinBudget is how many times a barrier wait polls before
// yielding. On a host with a free core per worker the poll succeeds
// within the budget and synchronization costs nanoseconds; on an
// oversubscribed host the Gosched turns the wait into cooperative
// scheduling instead of burning the timeslice.
const parSpinBudget = 64

// spinUntil polls cond, yielding the processor after the spin budget.
func spinUntil(cond func() bool) {
	for spins := 0; !cond(); spins++ {
		if spins >= parSpinBudget {
			runtime.Gosched()
		}
	}
}

// runParallel is the worker-goroutine cycle loop. Worker w owns nodes
// w, w+workers, w+2*workers, ... for the whole run, so each node's
// state has a single writer for the entire run.
//
// The per-cycle barrier is a pair of atomics rather than channels: the
// coordinator publishes cycle c by storing epoch=c+1 (a release that
// makes the previous barrier's fabric mutations visible), each worker
// runs its node phases and decrements pending (a release making its
// staged traffic visible), and the coordinator proceeds into the
// sequential barrier phase once pending drains. A channel handoff
// costs a park/unpark pair per worker per cycle — microseconds, which
// at sub-microsecond node phases inverted the speedup; the spinning
// barrier synchronizes in tens of nanoseconds when cores are
// available.
func (s *System) runParallel(workers int) (*Result, error) {
	var (
		epoch   atomic.Uint64 // cycle+1 of the phase being run; 0 = idle
		pending atomic.Int64  // workers still in the current phase
		stop    atomic.Bool
	)
	for w := 0; w < workers; w++ {
		go func(w int) {
			var seen uint64
			for {
				spinUntil(func() bool {
					return epoch.Load() != seen || stop.Load()
				})
				if stop.Load() {
					return
				}
				seen = epoch.Load()
				now := sim.Cycle(seen - 1)
				for i := w; i < len(s.nodes); i += workers {
					s.phaseNode(s.nodes[i], now)
				}
				pending.Add(-1)
			}
		}(w)
	}
	defer stop.Store(true)
	for now := sim.Cycle(0); now < s.cfg.MaxCycles; now++ {
		s.tickChaos(now)
		pending.Store(int64(workers))
		epoch.Store(uint64(now) + 1)
		spinUntil(func() bool { return pending.Load() == 0 })
		done, res, err := s.barrier(now)
		if done {
			return res, err
		}
	}
	return nil, fmt.Errorf("numa: run exceeded MaxCycles=%d", s.cfg.MaxCycles)
}

// stallError renders the watchdog diagnostic: per-node queue
// occupancies and the oldest in-flight transaction.
func (s *System) stallError(now sim.Cycle) error {
	kvs := []stats.KV{
		{Key: "interconnect in flight", Value: s.fab.InFlight()},
	}
	for _, nd := range s.nodes {
		line := fmt.Sprintf("router=%d coal=%d/%d dev=%d outstanding=%d",
			nd.router.Pending(), nd.coal.Pending(), nd.coal.Inflight(),
			nd.dev.Pending(), nd.resp.Pending())
		if tag, registered, b, ok := nd.resp.Oldest(); ok {
			line += fmt.Sprintf(" oldest=tag %d age %d (%s 0x%x)",
				tag, now-registered, b.Req.Kind, b.Req.Addr)
		}
		kvs = append(kvs, stats.KV{Key: fmt.Sprintf("node %d", nd.id), Value: line})
	}
	return fmt.Errorf("numa: no forward progress for %d cycles at cycle %d (lost response or resource leak?)\n%s",
		s.cfg.StallLimit, now, stats.FormatKV(kvs))
}

func (s *System) tickThreads(nd *node, now sim.Cycle) {
	for _, t := range nd.threads {
		if t.spmBusy != 0 {
			if now < t.spmBusy {
				continue
			}
			t.spmBusy = 0
		}
		if t.gapLeft > 0 {
			t.gapLeft--
			t.retired++
			nd.progress++
			continue
		}
		if t.pc >= len(t.events) {
			continue
		}
		e := t.events[t.pc]
		if e.Op.IsMemory() && addr.IsSPM(e.Addr) {
			t.spmBusy = now + s.cfg.SPMLatency
			t.retired++
			nd.progress++
			nd.spmAccesses++
			s.advance(t)
			continue
		}
		if e.Op == trace.Fence {
			if t.outstanding > 0 {
				continue
			}
			if !nd.router.OfferLocal(memreq.RawRequest{Fence: true, Thread: e.Thread}) {
				continue
			}
			t.retired++
			nd.progress++
			s.advance(t)
			continue
		}
		if t.outstanding >= s.cfg.MaxOutstanding {
			continue
		}
		req := memreq.RawRequest{
			Addr:   e.Addr,
			Size:   e.Size,
			Store:  e.Op == trace.Store,
			Atomic: e.Op == trace.Atomic,
			Thread: e.Thread,
			Tag:    t.nextTag,
		}
		if !nd.router.OfferLocal(req) {
			continue
		}
		t.nextTag++
		t.outstanding++
		t.issuedAt[req.Tag] = now
		t.retired++
		nd.progress++
		nd.memRequests++
		if s.cfg.Retry.Enabled() {
			nd.inflightReq[reqKey{req.Thread, req.Tag}] = &reqAttempt{req: req}
		}
		if nd.router.Dest(e.Addr) != nd.id {
			nd.remoteReqs++
			nd.remoteSent++
		}
		s.advance(t)
	}
}

func (s *System) advance(t *threadState) {
	t.pc++
	if t.pc < len(t.events) {
		t.gapLeft = uint32(t.events[t.pc].Gap)
	}
}

// tickChaos advances the chaos engine and forwards any pending
// transient link stall to the fabric.
func (s *System) tickChaos(now sim.Cycle) {
	if !s.chaos.Enabled() {
		return
	}
	s.chaos.Tick(now)
	if l, until, ok := s.chaos.TakeLinkStall(); ok {
		s.fab.StallLink(l, until)
	}
	if l, until, ok := s.chaos.TakeCubeLinkStall(); ok && s.cubeLinksPerDev > 0 {
		nd := s.nodes[(l/s.cubeLinksPerDev)%len(s.nodes)]
		nd.dev.StallCubeLink(l%s.cubeLinksPerDev, until)
	}
}

// pumpInterconnect moves outbound traffic from the node onto its
// staging port: first any responses the fabric refused earlier, then
// requests from the Global Access Queue. The ideal fabric's request
// budget is LinkBandwidth messages per cycle (legacy semantics);
// routed fabrics pump until the injection queue refuses.
func (s *System) pumpInterconnect(nd *node, now sim.Cycle) {
	for len(nd.respOut) > 0 {
		if !nd.port.Send(now, nd.respOut[0]) {
			return
		}
		nd.respOut = nd.respOut[1:]
		nd.progress++
	}
	for nd.sentThisCycle < s.reqBudget {
		out, ok := nd.router.PeekOutbound()
		if !ok {
			return
		}
		m := noc.Message[payload]{
			Src:     nd.id,
			Dst:     out.Dest,
			Flits:   reqFlits(out.Req),
			Payload: payload{req: out.Req},
		}
		if !nd.port.Send(now, m) {
			return
		}
		nd.router.PopOutbound()
		nd.sentThisCycle++
	}
}

func (s *System) tickCoalescer(nd *node, now sim.Cycle) {
	if !nd.dev.CanAccept() {
		if nd.mac != nil {
			nd.mac.SampleOccupancy()
		}
		return
	}
	for _, b := range nd.coal.Tick(now) {
		bb := b
		nd.resp.Register(&bb, now)
		bb.Span.MarkSubmit(uint64(now))
		nd.dev.Submit(bb.Req, now)
		nd.progress++
	}
}

// deliverResponses routes device completions: local targets retire
// directly, remote targets travel back over the interconnect (§3.3).
func (s *System) deliverResponses(nd *node, now sim.Cycle) {
	for _, resp := range nd.dev.Tick(now) {
		b, status := nd.resp.Deliver(resp)
		switch status {
		case core.RespDuplicate, core.RespUnknown:
			// Counted by the response router; nothing to retire.
			continue
		}
		poisoned := status == core.RespPoisoned
		nd.coal.Completed(b)
		nd.progress++
		b.Span.MarkRespond(uint64(now))
		s.obs.Trace().Transaction(resp.Tag, b.Span)
		for _, tgt := range b.Targets {
			home := int(tgt.Thread) % s.cfg.Nodes
			if home == nd.id {
				s.retire(tgt, now, poisoned)
				continue
			}
			nd.remoteServed++
			m := noc.Message[payload]{
				Src:     nd.id,
				Dst:     home,
				Flits:   respFlits(b.Req.Kind),
				Payload: payload{isResponse: true, poisoned: poisoned, target: tgt},
			}
			if !nd.port.Send(now, m) {
				// Routed-fabric backpressure: park the response and
				// retry it (ahead of requests) next cycle. The ideal
				// fabric never refuses.
				nd.respOut = append(nd.respOut, m)
			}
		}
		// Every target has been consumed (retired locally or copied
		// into a response message) and the span recorded: hand the
		// transaction's slab back to the coalescer.
		if nd.rec != nil {
			nd.rec.Recycle(b)
		}
	}
}

// deliverMessages lands arrived interconnect messages. A request whose
// owner node's Remote Access Queue is full stays queued in the fabric
// — without letting younger traffic from its source pass it — and is
// offered again next cycle.
func (s *System) deliverMessages(now sim.Cycle) {
	s.fab.Deliver(now, func(m noc.Message[payload]) bool {
		if m.Payload.isResponse {
			s.retire(m.Payload.target, now, m.Payload.poisoned)
			return true
		}
		return s.nodes[m.Dst].router.OfferRemote(m.Payload.req)
	})
}

// retire lands one target at its thread's home node. It only ever
// runs home-node-locally: during a node phase for home == nd.id
// targets, or in the barrier phase for responses that arrived over
// the fabric — so the home shard mutations below never race.
func (s *System) retire(tgt memreq.Target, now sim.Cycle, poisoned bool) {
	if tgt.Cont {
		// Continuation half of a window-split request: the head half
		// owns the request's one LSQ slot and latency observation.
		return
	}
	home := s.nodes[int(tgt.Thread)%s.cfg.Nodes]
	t := s.thread(tgt.Thread)
	if t == nil {
		// A corrupt target naming a thread the system does not run:
		// count it and keep going rather than tearing the run down.
		home.misrouted++
		return
	}
	if t.outstanding <= 0 {
		home.retireUnderflows++
		return
	}
	if poisoned && s.scheduleRetry(home, tgt, now) {
		// The LSQ slot stays occupied and issuedAt keeps the original
		// issue cycle: latency spans the retries, fences keep waiting.
		return
	}
	t.outstanding--
	home.progress++
	if poisoned {
		home.failedRequests++
	}
	if s.cfg.Retry.Enabled() {
		delete(home.inflightReq, reqKey{tgt.Thread, tgt.Tag})
	}
	if issue, ok := t.issuedAt[tgt.Tag]; ok {
		t.latency.Observe(uint64(now - issue))
		delete(t.issuedAt, tgt.Tag)
	}
}

// scheduleRetry queues a poisoned request for re-issue at its home
// node if the retry policy has budget left; it reports whether the
// retirement should be suppressed.
func (s *System) scheduleRetry(home *node, tgt memreq.Target, now sim.Cycle) bool {
	if !s.cfg.Retry.Enabled() {
		return false
	}
	a, ok := home.inflightReq[reqKey{tgt.Thread, tgt.Tag}]
	if !ok || a.attempts >= s.cfg.Retry.MaxRetries {
		return false
	}
	a.attempts++
	home.retryPend = append(home.retryPend, retryPend{due: now + s.cfg.Retry.Backoff, req: a.req})
	return true
}

// pumpRetries re-offers nd's poisoned requests whose backoff expired;
// a full router queue retries next cycle. Retry state shards by home
// node (requests re-issue where their thread lives), so this runs
// inside the node phase.
func (s *System) pumpRetries(nd *node, now sim.Cycle) {
	if len(nd.retryPend) == 0 {
		return
	}
	keep := nd.retryPend[:0]
	for _, p := range nd.retryPend {
		if p.due > now || !nd.router.OfferLocal(p.req) {
			keep = append(keep, p)
			continue
		}
		nd.retriedRequests++
		nd.progress++
	}
	nd.retryPend = keep
}

func (s *System) drained() bool {
	if s.fab.InFlight() > 0 {
		return false
	}
	for _, nd := range s.nodes {
		if nd.router.Pending() > 0 || nd.coal.Pending() > 0 ||
			nd.coal.Inflight() > 0 || nd.dev.Pending() > 0 ||
			len(nd.respOut) > 0 || len(nd.retryPend) > 0 {
			return false
		}
		for _, t := range nd.threads {
			if !t.done() {
				return false
			}
		}
	}
	return true
}

func (s *System) result(cycles sim.Cycle) *Result {
	r := &Result{
		Cycles: cycles,
		NoC:    s.fab.Stats(),
		Chaos:  s.chaos.Stats(),
	}
	for _, nd := range s.nodes {
		r.MemRequests += nd.memRequests
		r.SPMAccesses += nd.spmAccesses
		r.RemoteRequests += nd.remoteReqs
		r.FailedRequests += nd.failedRequests
		r.RetriedRequests += nd.retriedRequests
		r.RetireUnderflows += nd.retireUnderflows
		r.Misrouted += nd.misrouted
	}
	for _, nd := range s.nodes {
		for _, t := range nd.threads {
			r.Instructions += t.retired
			r.RequestLatency.Merge(&t.latency)
		}
		ns := NodeStats{
			Coalescer:    *nd.coal.Stats(),
			Device:       *nd.dev.Stats(),
			Responses:    nd.resp.Stats(),
			RemoteServed: nd.remoteServed,
			RemoteSent:   nd.remoteSent,
		}
		if st := nd.dev.CubeStats(); st != nil {
			snap := *st
			ns.Cube = &snap
		}
		r.PerNode = append(r.PerNode, ns)
	}
	return r
}

// Run is a convenience wrapper: build, load, run.
func Run(cfg Config, tr *trace.Trace) (*Result, error) {
	s, err := NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	if err := s.Load(tr); err != nil {
		return nil, err
	}
	return s.Run()
}

// ensure cpu package linkage for doc cross-reference (the single-node
// model remains the evaluated configuration).
var _ = cpu.DefaultConfig
