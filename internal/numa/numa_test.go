package numa

import (
	"fmt"
	"testing"
	"testing/quick"

	"mac3d/internal/memreq"
	"mac3d/internal/obs"
	"mac3d/internal/sim"
	"mac3d/internal/trace"
	"mac3d/internal/workloads"
)

// seqTrace builds per-thread sequential load streams.
func seqTrace(threads, n int) *trace.Trace {
	tr := trace.NewTrace(threads)
	for t := 0; t < threads; t++ {
		base := uint64(t) << 24
		for i := 0; i < n; i++ {
			tr.Append(trace.Event{
				Addr: base + uint64(i)*8, Thread: uint16(t),
				Op: trace.Load, Size: 8, Gap: 1,
			})
		}
	}
	return tr
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Nodes = 0 },
		func(c *Config) { c.CoresPerNode = 0 },
		func(c *Config) { c.LinkBandwidth = 0 },
		func(c *Config) { c.MaxOutstanding = 0 },
		func(c *Config) { c.MaxCycles = 0 },
		func(c *Config) { c.MAC.ARQ.Entries = 0 },
		func(c *Config) { c.HMC.Links = 0 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestSingleNodeMatchesLocalOnly(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 1
	res, err := Run(cfg, seqTrace(4, 64))
	if err != nil {
		t.Fatal(err)
	}
	if res.RemoteRequests != 0 {
		t.Fatalf("single node produced %d remote requests", res.RemoteRequests)
	}
	if res.MemRequests != 4*64 {
		t.Fatalf("mem requests = %d", res.MemRequests)
	}
	if res.RequestLatency.Count() != 4*64 {
		t.Fatalf("retired %d", res.RequestLatency.Count())
	}
}

func TestTwoNodesSplitTraffic(t *testing.T) {
	cfg := DefaultConfig()
	res, err := Run(cfg, seqTrace(4, 128))
	if err != nil {
		t.Fatal(err)
	}
	// 256B interleave over sequential streams: about half the rows
	// land on each node.
	f := res.RemoteFraction()
	if f < 0.3 || f > 0.7 {
		t.Fatalf("remote fraction = %v, want ~0.5", f)
	}
	if res.RequestLatency.Count() != 4*128 {
		t.Fatalf("retired %d of %d", res.RequestLatency.Count(), 4*128)
	}
	// Both nodes must have served traffic.
	for i, ns := range res.PerNode {
		if ns.Device.Requests == 0 {
			t.Fatalf("node %d served nothing", i)
		}
	}
}

func TestRemoteLatencyVisible(t *testing.T) {
	near := DefaultConfig()
	near.LinkLatency = 10
	far := DefaultConfig()
	far.LinkLatency = 2000
	tr := seqTrace(4, 64)
	a, err := Run(near, tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(far, tr)
	if err != nil {
		t.Fatal(err)
	}
	if b.RequestLatency.Mean() <= a.RequestLatency.Mean() {
		t.Fatalf("far interconnect not slower: %v vs %v",
			b.RequestLatency.Mean(), a.RequestLatency.Mean())
	}
}

func TestTooManyThreadsPerNodeRejected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 2
	cfg.CoresPerNode = 1
	// 4 threads -> 2 per node, but only 1 core per node.
	if _, err := Run(cfg, seqTrace(4, 8)); err == nil {
		t.Fatal("over-subscription accepted")
	}
}

func TestRemoteCoalescing(t *testing.T) {
	// All threads on node 0, all data on node 1: node 1's MAC must
	// coalesce remote-queue requests just like local ones.
	cfg := DefaultConfig()
	cfg.Nodes = 2
	cfg.InterleaveBytes = 1 << 20 // 1MB blocks
	tr := trace.NewTrace(2)
	// Threads 0 and 2 home on node 0. Addresses in block 1 -> node 1.
	for _, th := range []uint16{0, 2} {
		base := uint64(1)<<20 + uint64(th)<<14
		for i := 0; i < 128; i++ {
			tr.Append(trace.Event{Addr: base + uint64(i)*8, Thread: th, Op: trace.Load, Size: 8, Gap: 1})
		}
	}
	res, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.RemoteFraction() != 1 {
		t.Fatalf("remote fraction = %v, want 1", res.RemoteFraction())
	}
	n1 := res.PerNode[1]
	if n1.Coalescer.RawRequests != 256 {
		t.Fatalf("node 1 saw %d raw requests", n1.Coalescer.RawRequests)
	}
	if n1.Coalescer.CoalescingEfficiency() <= 0.2 {
		t.Fatalf("remote requests not coalesced: eff=%v", n1.Coalescer.CoalescingEfficiency())
	}
	if n1.RemoteServed != 256 {
		t.Fatalf("node 1 served %d remote targets", n1.RemoteServed)
	}
	if res.PerNode[0].Device.Requests != 0 {
		t.Fatal("node 0's device should be idle")
	}
}

func TestFencesAcrossNodes(t *testing.T) {
	cfg := DefaultConfig()
	tr := trace.NewTrace(2)
	tr.Append(trace.Event{Addr: 0x100, Thread: 0, Op: trace.Load, Size: 8})
	tr.Append(trace.Event{Thread: 0, Op: trace.Fence})
	tr.Append(trace.Event{Addr: 0x4000, Thread: 0, Op: trace.Store, Size: 8})
	tr.Append(trace.Event{Addr: 0x8000, Thread: 1, Op: trace.Load, Size: 8})
	res, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.RequestLatency.Count() != 3 {
		t.Fatalf("retired %d of 3", res.RequestLatency.Count())
	}
}

func TestWorkloadThroughNUMA(t *testing.T) {
	tr, err := workloads.Generate("sg", workloads.Config{Threads: 8, Seed: 1, Scale: workloads.Tiny})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Nodes = 4
	cfg.CoresPerNode = 2
	res, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	st := trace.ComputeStats(tr)
	if res.RequestLatency.Count() != uint64(st.MemRefs) {
		t.Fatalf("retired %d of %d", res.RequestLatency.Count(), st.MemRefs)
	}
	if res.RemoteFraction() < 0.5 {
		t.Fatalf("4-node interleave remote fraction = %v", res.RemoteFraction())
	}
}

func TestConservationProperty(t *testing.T) {
	// Property: under random node counts, interleaves and link
	// latencies, every issued request retires exactly once and
	// the per-node device totals cover all transactions.
	f := func(seed uint64, nodesRaw, interRaw, latRaw uint8) bool {
		nodes := 1 + int(nodesRaw%4)
		inter := uint64(256) << (interRaw % 4)
		cfg := DefaultConfig()
		cfg.Nodes = nodes
		cfg.CoresPerNode = 8
		cfg.InterleaveBytes = inter
		cfg.LinkLatency = sim.Cycle(1 + latRaw%200)

		tr := trace.NewTrace(4)
		x := seed | 1
		n := 150
		for i := 0; i < n; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			tr.Append(trace.Event{
				Addr:   x % (1 << 22),
				Thread: uint16(i % 4),
				Op:     trace.Load,
				Size:   8,
				Gap:    uint8(x % 3),
			})
		}
		res, err := Run(cfg, tr)
		if err != nil {
			return false
		}
		if res.RequestLatency.Count() != uint64(n) {
			return false
		}
		var served uint64
		for _, ns := range res.PerNode {
			served += ns.Device.Requests
		}
		// All devices together served every coalesced transaction.
		// A request crossing its coalescing-window boundary splits in
		// two, so transactions are bounded by 2x the raw requests.
		return served > 0 && served <= 2*uint64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministic(t *testing.T) {
	tr := seqTrace(4, 64)
	a, err := Run(DefaultConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(DefaultConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.RemoteRequests != b.RemoteRequests {
		t.Fatal("nondeterministic NUMA run")
	}
}

// TestObservedSystem wires two nodes — two MACs, two devices — into
// one shared observability handle: the per-node name prefixes must
// keep the registrations apart (duplicate names panic), and each
// node's occupancy metric must agree with its own per-cycle sampling.
func TestObservedSystem(t *testing.T) {
	cfg := DefaultConfig()
	o := obs.New(1, 1<<16)
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.AttachObs(o)
	if err := s.Load(seqTrace(4, 128)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.Nodes; i++ {
		name := fmt.Sprintf("node%d.mac.arq.occupancy_mean", i)
		got, ok := o.Registry.Get(name)
		if !ok {
			t.Fatalf("metric %s missing", name)
		}
		if want := s.nodes[i].mac.Aggregator().OccupancyMean(); got != want {
			t.Fatalf("%s = %v, want %v", name, got, want)
		}
		series, ok := o.Recorder.Lookup(fmt.Sprintf("node%d.mac.arq.occupancy", i))
		if !ok || len(series.Points) == 0 {
			t.Fatalf("node %d occupancy timeseries missing or empty", i)
		}
	}
	if o.Tracer.Len() == 0 {
		t.Fatal("tracing enabled but no transaction spans captured")
	}
}

// TestRetryConvergesAcrossNodes: poisoned completions on a multi-node
// system are re-issued at the requesting thread's home node and
// eventually deliver — no failed requests within the budget.
func TestRetryConvergesAcrossNodes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 2
	cfg.HMC.Faults.CRCErrorRate = 0.3
	cfg.HMC.Faults.RetryLimit = 1
	cfg.HMC.Faults.Seed = 5
	cfg.Retry = memreq.RetryPolicy{MaxRetries: 8, Backoff: 16}
	res, err := Run(cfg, seqTrace(4, 64))
	if err != nil {
		t.Fatalf("retrying NUMA run: %v", err)
	}
	if res.RetriedRequests == 0 {
		t.Fatal("no poisoned completions were re-issued")
	}
	if res.FailedRequests != 0 {
		t.Fatalf("%d requests failed despite the retry budget", res.FailedRequests)
	}
	// Replay determinism holds with retries in play.
	res2, err := Run(cfg, seqTrace(4, 64))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != res2.Cycles || res.RetriedRequests != res2.RetriedRequests {
		t.Fatal("retrying run is not deterministic")
	}
}

// TestRetryBudgetExhaustsAcrossNodes: certain poison fails every
// request cleanly after the bounded re-issues.
func TestRetryBudgetExhaustsAcrossNodes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 2
	cfg.HMC.Faults.CRCErrorRate = 1.0
	cfg.HMC.Faults.RetryLimit = 1
	cfg.Retry = memreq.RetryPolicy{MaxRetries: 2, Backoff: 4}
	res, err := Run(cfg, seqTrace(2, 16))
	if err != nil {
		t.Fatalf("NUMA run under certain poison: %v", err)
	}
	if res.FailedRequests != res.MemRequests {
		t.Fatalf("FailedRequests = %d, want all %d", res.FailedRequests, res.MemRequests)
	}
	if res.RetriedRequests != 2*res.MemRequests {
		t.Fatalf("RetriedRequests = %d, want %d", res.RetriedRequests, 2*res.MemRequests)
	}
}
