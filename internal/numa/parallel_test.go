package numa

import (
	"reflect"
	"testing"

	"mac3d/internal/chaos"
	"mac3d/internal/cpu"
	"mac3d/internal/memreq"
	"mac3d/internal/noc"
	"mac3d/internal/trace"
)

// parityWorkers are the worker counts every parity case runs at: an
// even split, a count that leaves a ragged remainder, and one at (or
// beyond) the node count.
var parityWorkers = []int{2, 3, 8}

func runWorkers(t *testing.T, cfg Config, tr *trace.Trace, workers int) *Result {
	t.Helper()
	cfg.Workers = workers
	res, err := Run(cfg, tr)
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return res
}

// checkParity runs cfg sequentially and at every parity worker count
// and requires the full Result — counters, per-node snapshots, NoC
// stats including histograms, chaos stats — to be deeply equal.
func checkParity(t *testing.T, cfg Config, tr func() *trace.Trace) {
	t.Helper()
	seq := runWorkers(t, cfg, tr(), 0)
	for _, w := range parityWorkers {
		par := runWorkers(t, cfg, tr(), w)
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("workers=%d diverged from sequential:\n  seq cycles=%d remote=%d latSum=%d latCount=%d nocSent=%d nocDelivered=%d\n  par cycles=%d remote=%d latSum=%d latCount=%d nocSent=%d nocDelivered=%d",
				w,
				seq.Cycles, seq.RemoteRequests, seq.RequestLatency.Sum(),
				seq.RequestLatency.Count(), seq.NoC.Sent, seq.NoC.Delivered,
				par.Cycles, par.RemoteRequests, par.RequestLatency.Sum(),
				par.RequestLatency.Count(), par.NoC.Sent, par.NoC.Delivered)
		}
	}
}

// TestParallelMatchesSequentialGolden runs every golden capture (plus
// the RAQ-saturating shape) in parallel mode: the parallel core must
// reproduce the pinned pre-NoC numbers bit-for-bit, not just agree
// with whatever the sequential core currently does.
func TestParallelMatchesSequentialGolden(t *testing.T) {
	cases := append(append([]goldenCase{}, goldenCases...), saturatedCase)
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			checkParity(t, c.config(), c.tr)
			for _, w := range parityWorkers {
				cfg := c.config()
				cfg.Workers = w
				res, err := Run(cfg, c.tr())
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				c.check(t, res)
			}
		})
	}
}

// TestParallelMatchesSequentialRouted covers the routed topologies,
// where staged injection must reproduce credit flow control and
// per-(src,dst) FIFO exactly.
func TestParallelMatchesSequentialRouted(t *testing.T) {
	for _, topo := range []string{noc.Ring, noc.Mesh} {
		t.Run(topo, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Nodes = 8
			cfg.CoresPerNode = 2
			cfg.NoC = noc.Config{Topology: topo, LinkLatency: 5, LinkBandwidth: 1}
			checkParity(t, cfg, func() *trace.Trace { return goldMixTrace(11, 8, 600) })
		})
	}
	t.Run("mesh-16n", func(t *testing.T) {
		cfg := DefaultConfig()
		cfg.Nodes = 16
		cfg.CoresPerNode = 1
		cfg.NoC = noc.Config{Topology: noc.Mesh, LinkLatency: 3, LinkBandwidth: 2}
		checkParity(t, cfg, func() *trace.Trace { return goldTrace(16, 48) })
	})
}

// TestParallelMatchesSequentialChaos is the satellite-1 pin: chaos
// runs — whose RNG schedules are exquisitely order-sensitive — replay
// bit-for-bit between sequential and parallel execution, across the
// mild and storm presets (overlaid with the link stressor, the one
// that acts at NUMA level) and a seed sweep.
func TestParallelMatchesSequentialChaos(t *testing.T) {
	for _, preset := range []string{"mild", "storm"} {
		for _, seed := range []uint64{1, 42, 9001} {
			p, err := chaos.ParseProfile(preset)
			if err != nil {
				t.Fatal(err)
			}
			p.LinkRate = 0.05
			p.LinkStall = 150
			p.Seed = seed
			cfg := DefaultConfig()
			cfg.Nodes = 8
			cfg.CoresPerNode = 1
			cfg.NoC = noc.Config{Topology: noc.Ring, LinkLatency: 5, LinkBandwidth: 1}
			cfg.Chaos = p
			t.Run(preset, func(t *testing.T) {
				checkParity(t, cfg, func() *trace.Trace { return goldTrace(8, 48) })
			})
		}
	}
}

// TestParallelMatchesSequentialRetry exercises the sharded retry
// path: CRC-poisoned completions re-issue at each thread's home node
// identically in both modes.
func TestParallelMatchesSequentialRetry(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 4
	cfg.CoresPerNode = 2
	cfg.HMC.Faults.CRCErrorRate = 0.3
	cfg.HMC.Faults.RetryLimit = 1
	cfg.HMC.Faults.Seed = 5
	cfg.Retry = memreq.RetryPolicy{MaxRetries: 8, Backoff: 16}
	checkParity(t, cfg, func() *trace.Trace { return goldTrace(8, 64) })
}

// TestParallelMatchesSequentialKinds runs the parity check across
// every coalescer frontend: the parallel core's tick/completion
// ordering must be invariant for all five memory paths, including the
// warp frontend's suspend/resume scoreboard and the memcache
// frontend's zero-target writebacks.
func TestParallelMatchesSequentialKinds(t *testing.T) {
	for _, kind := range cpu.Kinds() {
		t.Run(kind.String(), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Nodes = 4
			cfg.CoresPerNode = 2
			cfg.Kind = kind
			checkParity(t, cfg, func() *trace.Trace { return goldMixTrace(7, 8, 400) })
		})
	}
}

// TestParallelWorkersClamped: worker counts beyond the node count and
// a tracing run (which forces sequential execution) both behave.
func TestParallelWorkersClamped(t *testing.T) {
	c := goldenCases[0]
	cfg := c.config()
	cfg.Workers = 64 // > Nodes: clamped
	res, err := Run(cfg, c.tr())
	if err != nil {
		t.Fatal(err)
	}
	c.check(t, res)
	if got := (Config{Workers: -1}); got.Validate() == nil {
		t.Error("negative Workers validated")
	}
}
