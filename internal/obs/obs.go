// Package obs is the cycle-level observability layer of the simulator:
// a zero-allocation metrics registry (counters, gauges, function gauges
// and histograms) that every component registers into, a cycle-sampled
// timeseries recorder for queue/link state, and a Chrome trace-event
// exporter that renders per-transaction spans for chrome://tracing /
// Perfetto.
//
// The whole layer is designed around a nil handle: every method on a
// nil *Obs, *Registry, *Recorder, *Tracer, *Counter, *Gauge or
// *Histogram is a no-op, so instrumented components carry plain nil
// pointers when observability is disabled and the hot path pays only a
// predictable nil check — no allocation, no interface dispatch, no
// locks (one run is single-goroutine; concurrent runs each own their
// Obs).
package obs

import (
	"fmt"
	"sort"

	"mac3d/internal/stats"
)

// Obs bundles the three observability facilities of one run. A nil
// *Obs disables all instrumentation.
type Obs struct {
	Registry *Registry
	Recorder *Recorder
	Tracer   *Tracer
}

// New returns an Obs with a fresh registry, a recorder sampling every
// sampleInterval cycles, and — when maxTraceEvents > 0 — a tracer
// bounded to that many events.
func New(sampleInterval, maxTraceEvents int) *Obs {
	o := &Obs{
		Registry: NewRegistry(),
		Recorder: NewRecorder(sampleInterval),
	}
	if maxTraceEvents > 0 {
		o.Tracer = NewTracer(maxTraceEvents, 0)
	}
	return o
}

// Enabled reports whether the handle carries live instrumentation.
func (o *Obs) Enabled() bool { return o != nil }

// Reg returns the registry, or nil on a nil receiver.
func (o *Obs) Reg() *Registry {
	if o == nil {
		return nil
	}
	return o.Registry
}

// Rec returns the recorder, or nil on a nil receiver.
func (o *Obs) Rec() *Recorder {
	if o == nil {
		return nil
	}
	return o.Recorder
}

// Trace returns the tracer, or nil on a nil receiver.
func (o *Obs) Trace() *Tracer {
	if o == nil {
		return nil
	}
	return o.Tracer
}

// Tracing reports whether per-transaction span capture is active.
func (o *Obs) Tracing() bool { return o != nil && o.Tracer != nil }

// WithPrefix returns a view of the handle whose registry and recorder
// prepend prefix to every registered name — how multi-node drivers
// (numa) keep per-node metrics apart in one shared registry. The
// tracer is shared unprefixed.
func (o *Obs) WithPrefix(prefix string) *Obs {
	if o == nil {
		return nil
	}
	return &Obs{
		Registry: o.Registry.WithPrefix(prefix),
		Recorder: o.Recorder.WithPrefix(prefix),
		Tracer:   o.Tracer,
	}
}

// Attacher is the optional interface a component implements to receive
// the run's observability handle. Drivers type-assert it so the
// memreq.Coalescer contract stays unchanged.
type Attacher interface {
	AttachObs(o *Obs)
}

// Counter is a monotonically increasing metric. The nil counter
// discards writes.
type Counter struct {
	name string
	v    uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a point-in-time value. The nil gauge discards writes.
type Gauge struct {
	name string
	v    float64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v = v
	}
}

// Add moves the gauge by delta.
func (g *Gauge) Add(delta float64) {
	if g != nil {
		g.v += delta
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram is a named log2 histogram (see stats.Histogram). The nil
// histogram discards observations.
type Histogram struct {
	name string
	h    stats.Histogram
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	if h != nil {
		h.h.Observe(v)
	}
}

// Snapshot returns the underlying histogram state (zero value on nil).
func (h *Histogram) Snapshot() stats.Histogram {
	if h == nil {
		return stats.Histogram{}
	}
	return h.h
}

// funcGauge is a lazily evaluated metric: the function runs only at
// snapshot time, so registering one costs the hot path nothing.
type funcGauge struct {
	name string
	fn   func() float64
}

// Registry is the named-metric set of one run. Registration happens at
// component attach time (never on the hot path); reads happen at
// snapshot time. Names must be unique across all metric kinds —
// duplicate registration panics, since it means two components claimed
// the same series. Prefixed views (WithPrefix) share one underlying
// metric set.
type Registry struct {
	s      *regState
	prefix string
}

type regState struct {
	counters []*Counter
	gauges   []*Gauge
	hists    []*Histogram
	funcs    []funcGauge
	names    map[string]struct{}
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{s: &regState{names: make(map[string]struct{})}}
}

// WithPrefix returns a view registering every name under prefix, into
// the same underlying metric set.
func (r *Registry) WithPrefix(prefix string) *Registry {
	if r == nil {
		return nil
	}
	return &Registry{s: r.s, prefix: r.prefix + prefix}
}

func (r *Registry) claim(name string) string {
	name = r.prefix + name
	if _, dup := r.s.names[name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %q", name))
	}
	r.s.names[name] = struct{}{}
	return name
}

// Counter registers and returns a counter. A nil registry returns a
// nil (discarding) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{name: r.claim(name)}
	r.s.counters = append(r.s.counters, c)
	return c
}

// Gauge registers and returns a gauge. A nil registry returns a nil
// (discarding) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g := &Gauge{name: r.claim(name)}
	r.s.gauges = append(r.s.gauges, g)
	return g
}

// Histogram registers and returns a histogram. A nil registry returns
// a nil (discarding) histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	h := &Histogram{name: r.claim(name)}
	r.s.hists = append(r.s.hists, h)
	return h
}

// Func registers a lazily evaluated gauge; fn runs at snapshot time
// only. A nil registry ignores the registration.
func (r *Registry) Func(name string, fn func() float64) {
	if r == nil {
		return
	}
	r.s.funcs = append(r.s.funcs, funcGauge{name: r.claim(name), fn: fn})
}

// Metric is one named value in a registry snapshot.
type Metric struct {
	Name  string
	Value float64
}

// Snapshot evaluates every registered metric and returns them sorted
// by name. Histograms expand into .count/.mean/.p99/.max entries.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	out := make([]Metric, 0, len(r.s.counters)+len(r.s.gauges)+len(r.s.funcs)+4*len(r.s.hists))
	for _, c := range r.s.counters {
		out = append(out, Metric{c.name, float64(c.v)})
	}
	for _, g := range r.s.gauges {
		out = append(out, Metric{g.name, g.v})
	}
	for _, f := range r.s.funcs {
		out = append(out, Metric{f.name, f.fn()})
	}
	for _, h := range r.s.hists {
		out = append(out,
			Metric{h.name + ".count", float64(h.h.Count())},
			Metric{h.name + ".mean", h.h.Mean()},
			Metric{h.name + ".p99", float64(h.h.Quantile(0.99))},
			Metric{h.name + ".max", float64(h.h.Max())},
		)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Get returns the snapshot value of one metric by name.
func (r *Registry) Get(name string) (float64, bool) {
	for _, m := range r.Snapshot() {
		if m.Name == name {
			return m.Value, true
		}
	}
	return 0, false
}
