package obs

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestNilSafety(t *testing.T) {
	// Every call on the disabled (nil) layer must be a silent no-op.
	var o *Obs
	if o.Enabled() || o.Tracing() {
		t.Fatal("nil Obs reports enabled")
	}
	c := o.Reg().Counter("x")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter retained a value")
	}
	g := o.Reg().Gauge("y")
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge retained a value")
	}
	h := o.Reg().Histogram("z")
	h.Observe(9)
	if hs := h.Snapshot(); hs.Count() != 0 {
		t.Fatal("nil histogram retained a sample")
	}
	o.Reg().Func("f", func() float64 { return 1 })
	if o.Reg().Snapshot() != nil {
		t.Fatal("nil registry snapshot not empty")
	}
	o.Rec().Watch("w", func() float64 { return 1 })
	o.Rec().Sample(0)
	if o.Rec().Samples() != 0 || o.Rec().Series() != nil {
		t.Fatal("nil recorder recorded")
	}
	o.Trace().Complete("a", "b", 0, 0, 0, 1, nil)
	o.Trace().CounterEvent("c", 0, nil)
	o.Trace().Transaction(0, &TxSpan{})
	if o.Trace().Len() != 0 || o.Trace().Dropped() != 0 {
		t.Fatal("nil tracer captured events")
	}
	var sb strings.Builder
	if err := o.Rec().WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("b.count")
	c.Add(3)
	g := r.Gauge("a.gauge")
	g.Set(1.5)
	r.Func("c.func", func() float64 { return 7 })
	h := r.Histogram("d.lat")
	h.Observe(4)
	h.Observe(8)

	snap := r.Snapshot()
	want := map[string]float64{
		"a.gauge":     1.5,
		"b.count":     3,
		"c.func":      7,
		"d.lat.count": 2,
		"d.lat.mean":  6,
		"d.lat.max":   8,
	}
	got := map[string]float64{}
	for _, m := range snap {
		got[m.Name] = m.Value
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s = %v, want %v", k, got[k], v)
		}
	}
	// Sorted by name.
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Name >= snap[i].Name {
			t.Fatalf("snapshot unsorted: %q >= %q", snap[i-1].Name, snap[i].Name)
		}
	}
	if v, ok := r.Get("b.count"); !ok || v != 3 {
		t.Fatalf("Get(b.count) = %v, %v", v, ok)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate metric name did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("x")
	r.Gauge("x")
}

func TestRecorderSampling(t *testing.T) {
	r := NewRecorder(4)
	var depth float64
	r.Watch("queue.depth", func() float64 { return depth })
	for cyc := uint64(0); cyc < 20; cyc++ {
		depth = float64(cyc)
		r.Sample(cyc)
	}
	s, ok := r.Lookup("queue.depth")
	if !ok {
		t.Fatal("series missing")
	}
	if len(s.Points) != 5 { // cycles 0,4,8,12,16
		t.Fatalf("got %d points, want 5", len(s.Points))
	}
	if s.Points[2].Cycle != 8 || s.Points[2].Value != 8 {
		t.Fatalf("point[2] = %+v", s.Points[2])
	}
	if mean := s.Mean(); math.Abs(mean-8) > 1e-9 {
		t.Fatalf("mean = %v, want 8", mean)
	}
	if s.Max() != 16 {
		t.Fatalf("max = %v, want 16", s.Max())
	}
	if r.Samples() != 5 {
		t.Fatalf("samples = %d, want 5", r.Samples())
	}
}

func TestRecorderCSV(t *testing.T) {
	r := NewRecorder(1)
	r.Watch("a", func() float64 { return 1 })
	r.Watch("b", func() float64 { return 2.5 })
	r.Sample(0)
	r.Sample(1)
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "cycle,a,b\n0,1,2.5\n1,1,2.5\n"
	if sb.String() != want {
		t.Fatalf("csv = %q, want %q", sb.String(), want)
	}
}

func TestTracerTransactionJSON(t *testing.T) {
	tr := NewTracer(100, 1e6) // 1 MHz: 1 cycle = 1 µs, easy math
	tr.Transaction(7, &TxSpan{
		FirstPush: 10, LastMerge: 12, Pop: 20, Built: 22,
		Submit: 22, Respond: 80,
		Addr: 0x1000, Bytes: 128, Targets: 5,
	})
	tr.CounterEvent("arq", 15, map[string]any{"occupancy": 3})
	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &f); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	// queue + build + device + counter
	if len(f.TraceEvents) != 4 {
		t.Fatalf("got %d events, want 4", len(f.TraceEvents))
	}
	q := f.TraceEvents[0]
	if q.Name != "queue" || q.Ph != "X" || q.TS != 10 || q.Dur != 10 || q.TID != 7 {
		t.Fatalf("queue event = %+v", q)
	}
	dev := f.TraceEvents[2]
	if dev.Name != "device" || dev.TS != 22 || dev.Dur != 58 {
		t.Fatalf("device event = %+v", dev)
	}
	if f.TraceEvents[3].Ph != "C" {
		t.Fatalf("counter event = %+v", f.TraceEvents[3])
	}
}

func TestTracerBypassedSkipsBuild(t *testing.T) {
	tr := NewTracer(10, 1e6)
	tr.Transaction(1, &TxSpan{FirstPush: 0, Pop: 5, Built: 5, Submit: 5, Respond: 9, Bypassed: true})
	if tr.Len() != 2 { // queue + device only
		t.Fatalf("got %d events, want 2", tr.Len())
	}
}

func TestTracerCap(t *testing.T) {
	tr := NewTracer(3, 1e6)
	for i := uint64(0); i < 5; i++ {
		tr.Complete("e", "", 0, i, i, i+1, nil)
	}
	if tr.Len() != 3 {
		t.Fatalf("len = %d, want 3", tr.Len())
	}
	if tr.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", tr.Dropped())
	}
	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "droppedEvents") {
		t.Fatal("droppedEvents note missing from trace file")
	}
}

func TestEmptyTraceIsValidJSON(t *testing.T) {
	var sb strings.Builder
	var tr *Tracer
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var f map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &f); err != nil {
		t.Fatal(err)
	}
	if _, ok := f["traceEvents"]; !ok {
		t.Fatal("traceEvents key missing")
	}
}
