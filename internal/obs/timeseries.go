package obs

import (
	"fmt"
	"io"
	"strings"
)

// Point is one timeseries sample.
type Point struct {
	Cycle uint64
	Value float64
}

// Series is one named cycle-sampled signal.
type Series struct {
	Name   string
	Points []Point
}

// Mean returns the arithmetic mean of the series' samples.
func (s Series) Mean() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	var sum float64
	for _, p := range s.Points {
		sum += p.Value
	}
	return sum / float64(len(s.Points))
}

// Max returns the largest sample value.
func (s Series) Max() float64 {
	var m float64
	for _, p := range s.Points {
		if p.Value > m {
			m = p.Value
		}
	}
	return m
}

// probe is a registered signal source, polled at each sample cycle.
type probe struct {
	name string
	fn   func() float64
}

// Recorder samples registered probes once every Interval cycles,
// building per-signal timeseries. Drivers call Sample(now) once per
// simulated cycle; off-interval cycles cost one comparison. A nil
// recorder ignores all calls. Prefixed views (WithPrefix) share one
// underlying probe set.
//
// Storage is columnar: one shared cycle-stamp column plus one value
// column per probe. A sample appends plain float64s — no per-point
// structs, and half the memory of the old []Point-per-series layout,
// which duplicated the cycle stamp into every series and made the
// per-cycle sampling loop a measurable fraction of large runs. The
// []Series view is materialized lazily on first access and cached.
type Recorder struct {
	s      *recState
	prefix string
}

type recState struct {
	interval uint64
	probes   []probe
	cycles   []uint64    // sample cycle stamps, one per sample
	vals     [][]float64 // vals[j][i]: probe j at sample i; len == len(cycles)
	samples  uint64
	cache    []Series // lazily materialized Series view; nil when stale
}

// NewRecorder returns a recorder sampling every intervalCycles cycles
// (values < 1 clamp to 1, i.e. every cycle).
func NewRecorder(intervalCycles int) *Recorder {
	if intervalCycles < 1 {
		intervalCycles = 1
	}
	return &Recorder{s: &recState{interval: uint64(intervalCycles)}}
}

// WithPrefix returns a view registering every probe name under prefix,
// into the same underlying recorder.
func (r *Recorder) WithPrefix(prefix string) *Recorder {
	if r == nil {
		return nil
	}
	return &Recorder{s: r.s, prefix: r.prefix + prefix}
}

// Interval returns the sampling interval in cycles (0 on nil).
func (r *Recorder) Interval() uint64 {
	if r == nil {
		return 0
	}
	return r.s.interval
}

// Watch registers a named probe. Registration order fixes column order
// in CSV output. Duplicate names panic. A nil recorder ignores the
// registration. A probe registered after sampling has begun is
// backfilled with zeros so every column stays the same length (the old
// ragged-series representation made WriteCSV index out of range).
func (r *Recorder) Watch(name string, fn func() float64) {
	if r == nil {
		return
	}
	name = r.prefix + name
	for _, p := range r.s.probes {
		if p.name == name {
			panic(fmt.Sprintf("obs: duplicate timeseries %q", name))
		}
	}
	r.s.probes = append(r.s.probes, probe{name, fn})
	r.s.vals = append(r.s.vals, make([]float64, len(r.s.cycles)))
	r.s.cache = nil
}

// Sample polls every probe if now falls on the sampling interval.
// Call once per simulated cycle.
func (r *Recorder) Sample(now uint64) {
	if r == nil || now%r.s.interval != 0 {
		return
	}
	s := r.s
	s.samples++
	s.cycles = append(s.cycles, now)
	for j, p := range s.probes {
		s.vals[j] = append(s.vals[j], p.fn())
	}
	s.cache = nil
}

// Samples returns how many sample cycles have been recorded.
func (r *Recorder) Samples() uint64 {
	if r == nil {
		return 0
	}
	return r.s.samples
}

// Series returns the recorded timeseries (shared backing; callers
// must not mutate). The view is rebuilt lazily after new samples.
func (r *Recorder) Series() []Series {
	if r == nil {
		return nil
	}
	s := r.s
	if len(s.probes) == 0 {
		return nil
	}
	if s.cache == nil {
		s.cache = make([]Series, len(s.probes))
		for j, p := range s.probes {
			pts := make([]Point, len(s.cycles))
			for i, c := range s.cycles {
				pts[i] = Point{c, s.vals[j][i]}
			}
			s.cache[j] = Series{Name: p.name, Points: pts}
		}
	}
	return s.cache
}

// Lookup returns the series with the given name.
func (r *Recorder) Lookup(name string) (Series, bool) {
	if r == nil {
		return Series{}, false
	}
	for _, s := range r.Series() {
		if s.Name == name {
			return s, true
		}
	}
	return Series{}, false
}

// WriteCSV renders all series in wide format: a header row of
// "cycle,<name>..." followed by one row per sample cycle.
func (r *Recorder) WriteCSV(w io.Writer) error {
	if r == nil {
		return nil
	}
	s := r.s
	var b strings.Builder
	b.WriteString("cycle")
	for _, p := range s.probes {
		b.WriteByte(',')
		b.WriteString(p.name)
	}
	b.WriteByte('\n')
	for i, c := range s.cycles {
		fmt.Fprintf(&b, "%d", c)
		for j := range s.probes {
			fmt.Fprintf(&b, ",%g", s.vals[j][i])
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}
