package obs

import (
	"fmt"
	"io"
	"strings"
)

// Point is one timeseries sample.
type Point struct {
	Cycle uint64
	Value float64
}

// Series is one named cycle-sampled signal.
type Series struct {
	Name   string
	Points []Point
}

// Mean returns the arithmetic mean of the series' samples.
func (s Series) Mean() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	var sum float64
	for _, p := range s.Points {
		sum += p.Value
	}
	return sum / float64(len(s.Points))
}

// Max returns the largest sample value.
func (s Series) Max() float64 {
	var m float64
	for _, p := range s.Points {
		if p.Value > m {
			m = p.Value
		}
	}
	return m
}

// probe is a registered signal source, polled at each sample cycle.
type probe struct {
	name string
	fn   func() float64
}

// Recorder samples registered probes once every Interval cycles,
// building per-signal timeseries. Drivers call Sample(now) once per
// simulated cycle; off-interval cycles cost one comparison. A nil
// recorder ignores all calls. Prefixed views (WithPrefix) share one
// underlying probe set.
type Recorder struct {
	s      *recState
	prefix string
}

type recState struct {
	interval uint64
	probes   []probe
	series   []Series
	samples  uint64
}

// NewRecorder returns a recorder sampling every intervalCycles cycles
// (values < 1 clamp to 1, i.e. every cycle).
func NewRecorder(intervalCycles int) *Recorder {
	if intervalCycles < 1 {
		intervalCycles = 1
	}
	return &Recorder{s: &recState{interval: uint64(intervalCycles)}}
}

// WithPrefix returns a view registering every probe name under prefix,
// into the same underlying recorder.
func (r *Recorder) WithPrefix(prefix string) *Recorder {
	if r == nil {
		return nil
	}
	return &Recorder{s: r.s, prefix: r.prefix + prefix}
}

// Interval returns the sampling interval in cycles (0 on nil).
func (r *Recorder) Interval() uint64 {
	if r == nil {
		return 0
	}
	return r.s.interval
}

// Watch registers a named probe. Registration order fixes column order
// in CSV output. Duplicate names panic. A nil recorder ignores the
// registration.
func (r *Recorder) Watch(name string, fn func() float64) {
	if r == nil {
		return
	}
	name = r.prefix + name
	for _, p := range r.s.probes {
		if p.name == name {
			panic(fmt.Sprintf("obs: duplicate timeseries %q", name))
		}
	}
	r.s.probes = append(r.s.probes, probe{name, fn})
	r.s.series = append(r.s.series, Series{Name: name})
}

// Sample polls every probe if now falls on the sampling interval.
// Call once per simulated cycle.
func (r *Recorder) Sample(now uint64) {
	if r == nil || now%r.s.interval != 0 {
		return
	}
	r.s.samples++
	for i, p := range r.s.probes {
		r.s.series[i].Points = append(r.s.series[i].Points, Point{now, p.fn()})
	}
}

// Samples returns how many sample cycles have been recorded.
func (r *Recorder) Samples() uint64 {
	if r == nil {
		return 0
	}
	return r.s.samples
}

// Series returns the recorded timeseries (shared backing; callers
// must not mutate).
func (r *Recorder) Series() []Series {
	if r == nil {
		return nil
	}
	return r.s.series
}

// Lookup returns the series with the given name.
func (r *Recorder) Lookup(name string) (Series, bool) {
	if r == nil {
		return Series{}, false
	}
	for _, s := range r.s.series {
		if s.Name == name {
			return s, true
		}
	}
	return Series{}, false
}

// WriteCSV renders all series in wide format: a header row of
// "cycle,<name>..." followed by one row per sample cycle.
func (r *Recorder) WriteCSV(w io.Writer) error {
	if r == nil {
		return nil
	}
	var b strings.Builder
	b.WriteString("cycle")
	for _, s := range r.s.series {
		b.WriteByte(',')
		b.WriteString(s.Name)
	}
	b.WriteByte('\n')
	n := 0
	if len(r.s.series) > 0 {
		n = len(r.s.series[0].Points)
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%d", r.s.series[0].Points[i].Cycle)
		for _, s := range r.s.series {
			fmt.Fprintf(&b, ",%g", s.Points[i].Value)
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}
