package obs

import (
	"math"
	"strings"
	"testing"
)

// TestRecorderNoSamples: a recorder that never sampled (a zero-cycle
// run) renders a header-only CSV, reports empty series, and none of
// the derived statistics divide by zero.
func TestRecorderNoSamples(t *testing.T) {
	r := NewRecorder(1)
	r.Watch("a", func() float64 { return 1 })
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != "cycle,a\n" {
		t.Fatalf("zero-sample CSV = %q, want header only", got)
	}
	s := r.Series()
	if len(s) != 1 || len(s[0].Points) != 0 {
		t.Fatalf("zero-sample series = %+v", s)
	}
	if m := s[0].Mean(); m != 0 || math.IsNaN(m) {
		t.Fatalf("Mean of empty series = %v, want 0", m)
	}
	if r.Samples() != 0 {
		t.Fatalf("Samples = %d, want 0", r.Samples())
	}
}

// TestRecorderLateWatchEqualColumns is the ragged-series regression:
// a probe registered after sampling has begun used to leave its series
// shorter than the others, and WriteCSV — which walks every series at
// the first series' length — panicked with an index out of range. The
// late series must instead be backfilled so every column stays equal.
func TestRecorderLateWatchEqualColumns(t *testing.T) {
	r := NewRecorder(1)
	r.Watch("early", func() float64 { return 1 })
	r.Sample(0)
	r.Sample(1)
	r.Watch("late", func() float64 { return 2 })
	r.Sample(2)

	series := r.Series()
	if len(series) != 2 {
		t.Fatalf("series count = %d", len(series))
	}
	for _, s := range series {
		if len(s.Points) != 3 {
			t.Fatalf("series %q has %d points, want 3 (equal columns)", s.Name, len(s.Points))
		}
	}
	late, _ := r.Lookup("late")
	if late.Points[0].Value != 0 || late.Points[1].Value != 0 || late.Points[2].Value != 2 {
		t.Fatalf("late series not zero-backfilled: %+v", late.Points)
	}

	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil { // used to panic
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("CSV has %d lines, want header + 3 rows:\n%s", len(lines), b.String())
	}
	for _, l := range lines {
		if strings.Count(l, ",") != 2 {
			t.Fatalf("ragged CSV row %q", l)
		}
	}
}

// TestRecorderSeriesViewRefreshes: the lazily cached Series view must
// pick up samples recorded after a previous access.
func TestRecorderSeriesViewRefreshes(t *testing.T) {
	r := NewRecorder(1)
	v := 1.0
	r.Watch("a", func() float64 { return v })
	r.Sample(0)
	if s := r.Series(); len(s[0].Points) != 1 {
		t.Fatalf("points = %d, want 1", len(s[0].Points))
	}
	v = 5
	r.Sample(1)
	s, _ := r.Lookup("a")
	if len(s.Points) != 2 || s.Points[1].Value != 5 {
		t.Fatalf("stale series view after new sample: %+v", s.Points)
	}
}
