package obs

import (
	"encoding/json"
	"io"

	"mac3d/internal/sim"
)

// TxSpan carries the per-transaction lifecycle timestamps (in cycles)
// that the tracer renders as Chrome trace spans. The aggregator stamps
// FirstPush/LastMerge, the builder stamps Pop/Built, the node driver
// stamps Submit/Respond. A nil span means tracing is off — every
// stamping site nil-checks.
type TxSpan struct {
	FirstPush uint64 // first raw request entered the ARQ entry
	LastMerge uint64 // last raw request merged into the entry
	Pop       uint64 // entry left the ARQ / bypass dispatched
	Built     uint64 // builder emitted the memory transaction
	Submit    uint64 // transaction accepted by the device
	Respond   uint64 // response delivered back to the cores

	Addr     uint64 // transaction base address
	Bytes    uint32 // transaction payload size
	Targets  int    // raw requests satisfied by the response
	Store    bool
	Bypassed bool // B-bit bypass (single-target) transaction
}

// The Mark* setters are nil-safe so every stamping site on the hot
// path stays a single unconditional call.

// MarkMerge stamps the latest merge cycle.
func (s *TxSpan) MarkMerge(now uint64) {
	if s != nil {
		s.LastMerge = now
	}
}

// MarkPop stamps the ARQ-pop cycle.
func (s *TxSpan) MarkPop(now uint64) {
	if s != nil {
		s.Pop = now
	}
}

// MarkBuilt stamps the builder-emit cycle.
func (s *TxSpan) MarkBuilt(now uint64) {
	if s != nil {
		s.Built = now
	}
}

// MarkSubmit stamps the device-accept cycle.
func (s *TxSpan) MarkSubmit(now uint64) {
	if s != nil {
		s.Submit = now
	}
}

// MarkRespond stamps the response-delivery cycle.
func (s *TxSpan) MarkRespond(now uint64) {
	if s != nil {
		s.Respond = now
	}
}

// TraceEvent is one Chrome trace-event ("Trace Event Format") record.
// Only the "X" (complete) and "C" (counter) phases are emitted.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`            // microseconds
	Dur  float64        `json:"dur,omitempty"` // microseconds
	PID  uint64         `json:"pid"`
	TID  uint64         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the JSON object Chrome/Perfetto load.
type traceFile struct {
	TraceEvents     []TraceEvent   `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// Tracer accumulates Chrome trace events, bounded to a maximum count
// (oldest events win; later events are counted as dropped). Timestamps
// convert simulated cycles to microseconds at the configured clock. A
// nil tracer discards all events.
type Tracer struct {
	events     []TraceEvent
	max        int
	dropped    uint64
	usPerCycle float64
}

// NewTracer returns a tracer holding at most maxEvents events,
// converting cycles at freqHz (0 selects sim.DefaultFreqHz).
func NewTracer(maxEvents int, freqHz float64) *Tracer {
	if maxEvents < 1 {
		maxEvents = 1
	}
	if freqHz <= 0 {
		freqHz = sim.DefaultFreqHz
	}
	return &Tracer{max: maxEvents, usPerCycle: 1e6 / freqHz}
}

// Enabled reports whether events are being captured.
func (t *Tracer) Enabled() bool { return t != nil }

// Len returns the number of captured events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// Dropped returns how many events were discarded after the cap filled.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

func (t *Tracer) push(ev TraceEvent) {
	if len(t.events) >= t.max {
		t.dropped++
		return
	}
	t.events = append(t.events, ev)
}

// Complete emits an "X" (complete) event spanning [start, end] cycles
// on the given pid/tid rows.
func (t *Tracer) Complete(name, cat string, pid, tid, start, end uint64, args map[string]any) {
	if t == nil {
		return
	}
	if end < start {
		end = start
	}
	dur := float64(end-start) * t.usPerCycle
	if dur <= 0 {
		// Chrome renders zero-width slices invisibly; give
		// single-cycle phases a sliver of width.
		dur = t.usPerCycle / 2
	}
	t.push(TraceEvent{
		Name: name, Cat: cat, Ph: "X",
		TS: float64(start) * t.usPerCycle, Dur: dur,
		PID: pid, TID: tid, Args: args,
	})
}

// CounterEvent emits a "C" (counter) event: Perfetto renders each
// series in values as a stacked counter track.
func (t *Tracer) CounterEvent(name string, cycle uint64, values map[string]any) {
	if t == nil {
		return
	}
	t.push(TraceEvent{
		Name: name, Ph: "C",
		TS:  float64(cycle) * t.usPerCycle,
		PID: 0, TID: 0, Args: values,
	})
}

// Transaction renders one completed TxSpan as its lifecycle phases —
// queue (push→pop), build (pop→built), device (submit→respond) — on a
// per-transaction tid row, pid 1. tag is the response-router tag.
func (t *Tracer) Transaction(tag uint64, s *TxSpan) {
	if t == nil || s == nil {
		return
	}
	kind := "load"
	if s.Store {
		kind = "store"
	}
	args := map[string]any{
		"addr":    s.Addr,
		"bytes":   s.Bytes,
		"targets": s.Targets,
		"kind":    kind,
	}
	if s.Bypassed {
		args["bypassed"] = true
	}
	const pid = 1
	t.Complete("queue", "arq", pid, tag, s.FirstPush, s.Pop, args)
	if !s.Bypassed && s.Built > s.Pop {
		t.Complete("build", "builder", pid, tag, s.Pop, s.Built, nil)
	}
	t.Complete("device", "hmc", pid, tag, s.Submit, s.Respond, nil)
}

// WriteJSON writes the accumulated events as a Chrome trace file
// (object form, displayTimeUnit ms) loadable in chrome://tracing and
// Perfetto.
func (t *Tracer) WriteJSON(w io.Writer) error {
	f := traceFile{
		TraceEvents:     []TraceEvent{},
		DisplayTimeUnit: "ms",
	}
	if t != nil {
		f.TraceEvents = t.events
		if t.dropped > 0 {
			f.OtherData = map[string]any{"droppedEvents": t.dropped}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}
