// Package queue provides the bounded FIFO ring buffer used for every
// hardware queue in the model: the request router's Local/Global/Remote
// access queues, per-vault request queues, and core load/store queues.
//
// The queues keep occupancy statistics so the experiment harness can
// report contention and sizing data without extra instrumentation.
package queue

import "fmt"

// FIFO is a bounded first-in first-out ring buffer of T.
// The zero value is not usable; construct with New.
type FIFO[T any] struct {
	buf  []T
	head int
	size int

	pushes    uint64
	rejects   uint64
	occupancy uint64 // sum of size observed at each push attempt
	maxSize   int
}

// New returns an empty FIFO with the given capacity. Capacity must be
// positive.
func New[T any](capacity int) *FIFO[T] {
	if capacity <= 0 {
		panic(fmt.Sprintf("queue: non-positive capacity %d", capacity))
	}
	return &FIFO[T]{buf: make([]T, capacity)}
}

// Len returns the number of queued elements.
func (q *FIFO[T]) Len() int { return q.size }

// Cap returns the queue capacity.
func (q *FIFO[T]) Cap() int { return len(q.buf) }

// Full reports whether no more elements can be pushed.
func (q *FIFO[T]) Full() bool { return q.size == len(q.buf) }

// Empty reports whether the queue holds no elements.
func (q *FIFO[T]) Empty() bool { return q.size == 0 }

// Push appends v and reports whether there was room. A rejected push
// leaves the queue unchanged (callers model stall/backpressure).
func (q *FIFO[T]) Push(v T) bool {
	q.pushes++
	q.occupancy += uint64(q.size)
	if q.size == len(q.buf) {
		q.rejects++
		return false
	}
	q.buf[(q.head+q.size)%len(q.buf)] = v
	q.size++
	if q.size > q.maxSize {
		q.maxSize = q.size
	}
	return true
}

// Pop removes and returns the oldest element. ok is false when empty.
func (q *FIFO[T]) Pop() (v T, ok bool) {
	if q.size == 0 {
		return v, false
	}
	v = q.buf[q.head]
	var zero T
	q.buf[q.head] = zero
	q.head = (q.head + 1) % len(q.buf)
	q.size--
	return v, true
}

// Peek returns the oldest element without removing it.
func (q *FIFO[T]) Peek() (v T, ok bool) {
	if q.size == 0 {
		return v, false
	}
	return q.buf[q.head], true
}

// At returns the i-th oldest queued element (0 = front). It panics if i
// is out of range; use Len to bound iteration.
func (q *FIFO[T]) At(i int) T {
	if i < 0 || i >= q.size {
		panic(fmt.Sprintf("queue: At(%d) with size %d", i, q.size))
	}
	return q.buf[(q.head+i)%len(q.buf)]
}

// Reset discards all elements and statistics.
func (q *FIFO[T]) Reset() {
	var zero T
	for i := range q.buf {
		q.buf[i] = zero
	}
	q.head, q.size = 0, 0
	q.pushes, q.rejects, q.occupancy, q.maxSize = 0, 0, 0, 0
}

// Stats summarizes queue behaviour over its lifetime.
type Stats struct {
	Pushes       uint64  // push attempts, including rejected ones
	Rejects      uint64  // pushes refused because the queue was full
	MaxOccupancy int     // high-water mark
	AvgOccupancy float64 // mean size observed at push attempts
}

// Stats returns the accumulated statistics.
func (q *FIFO[T]) Stats() Stats {
	s := Stats{Pushes: q.pushes, Rejects: q.rejects, MaxOccupancy: q.maxSize}
	if q.pushes > 0 {
		s.AvgOccupancy = float64(q.occupancy) / float64(q.pushes)
	}
	return s
}
