package queue

import (
	"testing"
	"testing/quick"
)

func TestFIFOOrder(t *testing.T) {
	q := New[int](4)
	for i := 1; i <= 4; i++ {
		if !q.Push(i) {
			t.Fatalf("push %d rejected", i)
		}
	}
	for i := 1; i <= 4; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("pop = (%d,%v), want (%d,true)", v, ok, i)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop from empty succeeded")
	}
}

func TestFIFORejectsWhenFull(t *testing.T) {
	q := New[string](2)
	q.Push("a")
	q.Push("b")
	if q.Push("c") {
		t.Fatal("push into full queue accepted")
	}
	if q.Len() != 2 {
		t.Fatalf("len = %d after rejected push", q.Len())
	}
	if v, _ := q.Pop(); v != "a" {
		t.Fatalf("rejected push corrupted order: got %q", v)
	}
}

func TestFIFOWraparound(t *testing.T) {
	q := New[int](3)
	for round := 0; round < 10; round++ {
		for i := 0; i < 3; i++ {
			if !q.Push(round*3 + i) {
				t.Fatalf("round %d push %d rejected", round, i)
			}
		}
		for i := 0; i < 3; i++ {
			v, ok := q.Pop()
			if !ok || v != round*3+i {
				t.Fatalf("round %d: pop = (%d,%v)", round, v, ok)
			}
		}
	}
}

func TestPeekDoesNotConsume(t *testing.T) {
	q := New[int](2)
	q.Push(7)
	for i := 0; i < 3; i++ {
		if v, ok := q.Peek(); !ok || v != 7 {
			t.Fatalf("peek %d = (%d,%v)", i, v, ok)
		}
	}
	if q.Len() != 1 {
		t.Fatalf("peek consumed: len=%d", q.Len())
	}
}

func TestAtIndexesFromFront(t *testing.T) {
	q := New[int](4)
	q.Push(0)
	q.Push(1)
	q.Pop() // force non-zero head
	q.Push(2)
	q.Push(3)
	want := []int{1, 2, 3}
	for i, w := range want {
		if got := q.At(i); got != w {
			t.Fatalf("At(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("At out of range did not panic")
		}
	}()
	q := New[int](2)
	q.Push(1)
	q.At(1)
}

func TestNewPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New[int](0)
}

func TestStatsTracking(t *testing.T) {
	q := New[int](2)
	q.Push(1)
	q.Push(2)
	q.Push(3) // rejected
	s := q.Stats()
	if s.Pushes != 3 || s.Rejects != 1 || s.MaxOccupancy != 2 {
		t.Fatalf("stats = %+v", s)
	}
	// Occupancies observed at pushes: 0, 1, 2 -> avg 1.
	if s.AvgOccupancy != 1 {
		t.Fatalf("avg occupancy = %v, want 1", s.AvgOccupancy)
	}
}

func TestResetClearsEverything(t *testing.T) {
	q := New[int](2)
	q.Push(1)
	q.Reset()
	if q.Len() != 0 || !q.Empty() {
		t.Fatal("reset left elements")
	}
	if s := q.Stats(); s.Pushes != 0 || s.MaxOccupancy != 0 {
		t.Fatalf("reset left stats: %+v", s)
	}
}

func TestFIFOPropertyAgainstSlice(t *testing.T) {
	// Property: a FIFO behaves exactly like a bounded slice model
	// under an arbitrary push/pop command sequence.
	f := func(cmds []uint8) bool {
		q := New[uint8](8)
		var model []uint8
		for _, c := range cmds {
			if c%3 != 0 { // push twice as often as pop
				ok := q.Push(c)
				wantOK := len(model) < 8
				if ok != wantOK {
					return false
				}
				if ok {
					model = append(model, c)
				}
			} else {
				v, ok := q.Pop()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if v != model[0] {
						return false
					}
					model = model[1:]
				}
			}
			if q.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
