package service

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// trivialRunner returns fixed report bytes instantly, so the journal
// benches measure the WAL/replay machinery, not a simulation. The
// submit-path equivalent (BenchmarkServiceSubmit, journal on/off)
// lives in the root bench_test.go against the exported API.
func trivialRunner(Spec) ([]byte, error) {
	return []byte(`{"report":"bench"}`), nil
}

// BenchmarkJournalAppend measures one framed record append (encode +
// CRC + buffered write; no fsync).
func BenchmarkJournalAppend(b *testing.B) {
	j, err := openJournal(b.TempDir(), false, -1)
	if err != nil {
		b.Fatal(err)
	}
	defer j.close(false)
	rec := Record{Op: OpSubmit, Job: "j-00000001", Hash: "0123456789abcdef",
		Spec: []byte(`{"kind":"run","run":{"workload":"sg","seed":1,"threads":8,"scale":"small"}}`)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j.append(rec)
	}
	b.StopTimer()
	if err := j.close(false); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkJournalReplay measures a restart over a journal holding
// nJobs completed jobs: parse, fold, result-store verification and
// cache restore.
func BenchmarkJournalReplay(b *testing.B) {
	const nJobs = 1000
	dir := b.TempDir()
	s, err := newWithRunner(Config{Workers: 4, QueueDepth: nJobs + 1, JournalDir: dir}, trivialRunner)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	ids := make([]string, 0, nJobs)
	for i := 0; i < nJobs; i++ {
		st, err := s.SubmitJSON([]byte(fmt.Sprintf(
			`{"kind":"run","run":{"workload":"sg","seed":%d}}`, i+1)))
		if err != nil {
			b.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		if _, err := s.AwaitResult(ctx, id); err != nil {
			b.Fatal(err)
		}
	}
	dctx, cancel := context.WithTimeout(ctx, time.Minute)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := newWithRunner(Config{Workers: 0, JournalDir: dir}, trivialRunner)
		if err != nil {
			b.Fatal(err)
		}
		if rep := r.Recovery(); rep.Completed != nJobs {
			b.Fatalf("replayed %d completed, want %d", rep.Completed, nJobs)
		}
		b.StopTimer()
		// Every replayed job is already terminal, so nothing re-runs;
		// Kill drops the journal handle without appending drain-time
		// records that would grow the log across iterations.
		r.Kill()
		b.StartTimer()
	}
}
