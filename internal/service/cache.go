package service

import (
	"container/list"
	"sync"
)

// resultCache is the content-addressed result store: canonical spec
// hash -> stored report bytes, bounded by a total byte budget with
// least-recently-used eviction. Safe for concurrent use.
type resultCache struct {
	mu     sync.Mutex
	budget int64
	used   int64
	lru    *list.List // front = most recently used; values are *cacheEntry
	byKey  map[string]*list.Element

	hits      uint64
	misses    uint64
	evictions uint64
}

type cacheEntry struct {
	key  string
	data []byte
}

// newResultCache returns a cache bounded to budget bytes of stored
// results. A zero or negative budget disables storage entirely (every
// lookup is a miss); the daemon uses that for cache-off deployments.
func newResultCache(budget int64) *resultCache {
	return &resultCache{
		budget: budget,
		lru:    list.New(),
		byKey:  make(map[string]*list.Element),
	}
}

// get returns the stored bytes for key and marks the entry recently
// used. The returned slice is shared — callers must not mutate it.
func (c *resultCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.hits++
	return el.Value.(*cacheEntry).data, true
}

// put stores data under key, evicting least-recently-used entries
// until the budget holds. An entry larger than the whole budget is not
// stored.
func (c *resultCache) put(key string, data []byte) {
	size := int64(len(data))
	if size > c.budget {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		// Same key means same canonical spec, and execution is
		// deterministic — the bytes are already what we'd store.
		c.lru.MoveToFront(el)
		return
	}
	for c.used+size > c.budget {
		back := c.lru.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*cacheEntry)
		c.lru.Remove(back)
		delete(c.byKey, ent.key)
		c.used -= int64(len(ent.data))
		c.evictions++
	}
	c.byKey[key] = c.lru.PushFront(&cacheEntry{key: key, data: data})
	c.used += size
}

// stats returns the counters and occupancy in one consistent view.
func (c *resultCache) stats() (hits, misses, evictions uint64, entries int, used int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions, c.lru.Len(), c.used
}
