package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client talks to a macd daemon over its HTTP API. The zero value is
// unusable; set BaseURL (for example "http://127.0.0.1:8080").
type Client struct {
	// BaseURL is the daemon root, without the /v1 prefix.
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// PollInterval paces AwaitResult's status polling (default 50ms).
	PollInterval time.Duration
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.BaseURL, "/") + path
}

func (c *Client) decode(resp *http.Response, v any) error {
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return fmt.Errorf("service client: reading response: %w", err)
	}
	if resp.StatusCode >= 400 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return c.statusError(resp.StatusCode, e.Error)
		}
		return c.statusError(resp.StatusCode, strings.TrimSpace(string(body)))
	}
	if v == nil {
		return nil
	}
	if raw, ok := v.(*[]byte); ok {
		*raw = body
		return nil
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("service client: decoding response: %w", err)
	}
	return nil
}

// statusError maps the daemon's status codes back onto the service
// sentinels so callers can errors.Is across the wire.
func (c *Client) statusError(code int, msg string) error {
	switch code {
	case http.StatusTooManyRequests:
		return fmt.Errorf("%w (%s)", ErrQueueFull, msg)
	case http.StatusServiceUnavailable:
		return fmt.Errorf("%w (%s)", ErrDraining, msg)
	case http.StatusNotFound:
		return fmt.Errorf("%w (%s)", ErrUnknownJob, msg)
	case http.StatusConflict:
		return fmt.Errorf("%w (%s)", ErrNotFinished, msg)
	default:
		return fmt.Errorf("service client: HTTP %d: %s", code, msg)
	}
}

// Submit posts a spec and returns the accepted job's status.
func (c *Client) Submit(ctx context.Context, spec Spec) (JobStatus, error) {
	data, err := json.Marshal(spec)
	if err != nil {
		return JobStatus{}, err
	}
	return c.SubmitJSON(ctx, data)
}

// SubmitJSON posts raw spec bytes and returns the accepted job's
// status.
func (c *Client) SubmitJSON(ctx context.Context, data []byte) (JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url("/v1/jobs"), bytes.NewReader(data))
	if err != nil {
		return JobStatus{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return JobStatus{}, err
	}
	var st JobStatus
	if err := c.decode(resp, &st); err != nil {
		return JobStatus{}, err
	}
	return st, nil
}

// Job fetches one job's status.
func (c *Client) Job(ctx context.Context, id string) (JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/jobs/"+id), nil)
	if err != nil {
		return JobStatus{}, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return JobStatus{}, err
	}
	var st JobStatus
	if err := c.decode(resp, &st); err != nil {
		return JobStatus{}, err
	}
	return st, nil
}

// Result fetches a finished job's report bytes.
func (c *Client) Result(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/jobs/"+id+"/result"), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	var raw []byte
	if err := c.decode(resp, &raw); err != nil {
		return nil, err
	}
	return raw, nil
}

// Cancel asks the daemon to cancel a job.
func (c *Client) Cancel(ctx context.Context, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.url("/v1/jobs/"+id), nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	return c.decode(resp, nil)
}

// AwaitResult polls the job until it finishes and returns the report
// bytes, or the job's failure as an error.
func (c *Client) AwaitResult(ctx context.Context, id string) ([]byte, error) {
	interval := c.PollInterval
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if st.State.Terminal() {
			if st.State != StateDone {
				return nil, fmt.Errorf("service client: job %s %s: %s", id, st.State, st.Error)
			}
			return c.Result(ctx, id)
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(interval):
		}
	}
}

// Metrics fetches and parses /v1/metrics into a name -> value map.
func (c *Client) Metrics(ctx context.Context) (map[string]float64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/metrics"), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	var raw []byte
	if err := c.decode(resp, &raw); err != nil {
		return nil, err
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var name string
		var v float64
		if _, err := fmt.Sscanf(line, "%s %g", &name, &v); err == nil {
			out[name] = v
		}
	}
	return out, nil
}

// Local adapts an in-process Service to the Client's submit/await
// shape, so code written against a daemon (e.g. the experiments
// service sweep) also runs embedded, without HTTP.
type Local struct {
	Service *Service
}

// SubmitJSON parses and submits raw spec bytes in process.
func (l Local) SubmitJSON(_ context.Context, data []byte) (JobStatus, error) {
	return l.Service.SubmitJSON(data)
}

// AwaitResult blocks until the job finishes and returns its report
// bytes.
func (l Local) AwaitResult(ctx context.Context, id string) ([]byte, error) {
	return l.Service.AwaitResult(ctx, id)
}

// Healthz fetches the daemon's liveness/drain state.
func (c *Client) Healthz(ctx context.Context) (ok, draining bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/healthz"), nil)
	if err != nil {
		return false, false, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return false, false, err
	}
	var h struct {
		OK       bool `json:"ok"`
		Draining bool `json:"draining"`
	}
	if err := c.decode(resp, &h); err != nil {
		return false, false, err
	}
	return h.OK, h.Draining, nil
}
