package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Client talks to a macd daemon over its HTTP API. The zero value is
// unusable; set BaseURL (for example "http://127.0.0.1:8080"). With a
// RetryPolicy and a Breaker it is the resilient client: idempotent
// calls (every GET, Submit — content addressing makes re-posting a
// spec safe — and Cancel) are retried under jittered exponential
// backoff, and the circuit breaker fails calls fast while the daemon
// is down instead of piling a poll storm onto its restart.
type Client struct {
	// BaseURL is the daemon root, without the /v1 prefix.
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// PollInterval is AwaitResult's initial polling interval (default
	// 50ms); successive idle polls back off exponentially to PollMax.
	PollInterval time.Duration
	// PollMax caps the idle-poll backoff (default 1s).
	PollMax time.Duration
	// Retry bounds per-call retries. The zero value makes one attempt
	// (no retries); see DefaultRetryPolicy.
	Retry RetryPolicy
	// Breaker, when set, gates every attempt through a shared circuit
	// breaker.
	Breaker *Breaker
	// AttemptTimeout bounds one HTTP attempt (default none beyond
	// ctx); keep it above the longest expected result download.
	AttemptTimeout time.Duration
	// Tenant, when non-empty, is sent as the X-Macd-Tenant header on
	// every request. Cluster routers use it for per-tenant admission
	// control; a plain daemon ignores it.
	Tenant string

	statsMu sync.Mutex
	stats   ClientStats
	rng     *rand.Rand
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.BaseURL, "/") + path
}

// Stats snapshots the client's resilience counters.
func (c *Client) Stats() ClientStats {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	return c.stats
}

// jitter draws from the client's deterministic jitter stream.
func (c *Client) jitter(p RetryPolicy, attempt int) time.Duration {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	if c.rng == nil {
		seed := p.Seed
		if seed == 0 {
			seed = 1
		}
		c.rng = rand.New(rand.NewSource(int64(seed)))
	}
	return p.delay(attempt, c.rng)
}

func (c *Client) count(f func(*ClientStats)) {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	f(&c.stats)
}

// do runs one API call with the client's retry budget and breaker.
// Non-idempotent calls make exactly one attempt. out is a *[]byte for
// raw bodies, any other pointer for JSON, or nil.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any, idempotent bool) error {
	policy := c.Retry.withDefaults()
	attempts := policy.MaxAttempts
	if !idempotent {
		attempts = 1
	}
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		if attempt > 1 {
			c.count(func(s *ClientStats) { s.Retries++ })
			delay := c.jitter(policy, attempt-1)
			// A server-supplied Retry-After floors the backoff: the
			// daemon knows its own queue depth better than our
			// exponential schedule does.
			var ra *retryAfterError
			if errors.As(lastErr, &ra) && ra.after > delay {
				delay = ra.after
				if delay > maxRetryAfterHonor {
					delay = maxRetryAfterHonor
				}
				c.count(func(s *ClientStats) { s.RetryAfterWaits++ })
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(delay):
			}
		}
		if b := c.Breaker; b != nil {
			if err := b.allow(); err != nil {
				c.count(func(s *ClientStats) { s.BreakerRejects++ })
				lastErr = err
				continue
			}
		}
		c.count(func(s *ClientStats) { s.Attempts++ })
		err := c.attempt(ctx, method, path, body, out)
		if b := c.Breaker; b != nil {
			b.record(err)
		}
		if err == nil {
			return nil
		}
		lastErr = err
		if !retryable(err) {
			return err
		}
	}
	return lastErr
}

// attempt issues one HTTP round trip and decodes the response.
func (c *Client) attempt(ctx context.Context, method, path string, body []byte, out any) error {
	if c.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.AttemptTimeout)
		defer cancel()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.url(path), rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.Tenant != "" {
		req.Header.Set("X-Macd-Tenant", c.Tenant)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return &transportError{err}
	}
	return c.decode(resp, out)
}

func (c *Client) decode(resp *http.Response, v any) error {
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		// The connection dropped mid-response: a transport failure.
		return &transportError{fmt.Errorf("service client: reading response: %w", err)}
	}
	if resp.StatusCode >= 400 {
		msg := strings.TrimSpace(string(body))
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			msg = e.Error
		}
		err := c.statusError(resp.StatusCode, msg)
		// Carry the server's Retry-After hint (whole seconds) so the
		// retry loop can pace itself to the daemon's queue depth.
		if secs, perr := strconv.Atoi(strings.TrimSpace(resp.Header.Get("Retry-After"))); perr == nil && secs > 0 {
			err = &retryAfterError{err: err, after: time.Duration(secs) * time.Second}
		}
		return err
	}
	if v == nil {
		return nil
	}
	if raw, ok := v.(*[]byte); ok {
		*raw = body
		return nil
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("service client: decoding response: %w", err)
	}
	return nil
}

// statusError maps the daemon's status codes back onto the service
// sentinels so callers can errors.Is across the wire.
func (c *Client) statusError(code int, msg string) error {
	switch code {
	case http.StatusTooManyRequests:
		return fmt.Errorf("%w (%s)", ErrQueueFull, msg)
	case http.StatusServiceUnavailable:
		return fmt.Errorf("%w (%s)", ErrDraining, msg)
	case http.StatusNotFound:
		return fmt.Errorf("%w (%s)", ErrUnknownJob, msg)
	case http.StatusConflict:
		return fmt.Errorf("%w (%s)", ErrNotFinished, msg)
	default:
		return &httpStatusError{code: code, msg: msg}
	}
}

// Submit posts a spec and returns the accepted job's status.
func (c *Client) Submit(ctx context.Context, spec Spec) (JobStatus, error) {
	data, err := json.Marshal(spec)
	if err != nil {
		return JobStatus{}, err
	}
	return c.SubmitJSON(ctx, data)
}

// SubmitJSON posts raw spec bytes and returns the accepted job's
// status. Submission is retried under the client's policy: specs are
// content-addressed, so a re-post after an ambiguous failure either
// coalesces onto the in-flight job or hits the cache — it never runs
// the work twice.
func (c *Client) SubmitJSON(ctx context.Context, data []byte) (JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", data, &st, true); err != nil {
		return JobStatus{}, err
	}
	return st, nil
}

// Job fetches one job's status.
func (c *Client) Job(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st, true); err != nil {
		return JobStatus{}, err
	}
	return st, nil
}

// Result fetches a finished job's report bytes.
func (c *Client) Result(ctx context.Context, id string) ([]byte, error) {
	var raw []byte
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil, &raw, true); err != nil {
		return nil, err
	}
	return raw, nil
}

// ResultByHash fetches a stored result from the daemon's
// content-addressed store by spec hash — the cluster read-through
// path. A daemon that holds no result for the hash answers 404, which
// surfaces as ErrUnknownJob; callers treat any error as a miss.
func (c *Client) ResultByHash(ctx context.Context, hash string) ([]byte, error) {
	var raw []byte
	if err := c.do(ctx, http.MethodGet, "/v1/results/"+hash, nil, &raw, true); err != nil {
		return nil, err
	}
	return raw, nil
}

// Cancel asks the daemon to cancel a job. Cancellation is idempotent
// (canceling a terminal job is a no-op), so it rides the retry policy.
func (c *Client) Cancel(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, nil, true)
}

// AwaitResult polls the job until it finishes and returns the report
// bytes, or the job's failure as an error. Polling backs off
// exponentially with jitter from PollInterval to PollMax, so a long
// wait settles to ~1 poll/PollMax instead of a constant request load.
// Transient poll failures (daemon restarting, circuit open) do not
// abort the wait: with a journaled daemon the job ID survives the
// restart, so AwaitResult simply resumes — the wait is bounded only
// by ctx.
func (c *Client) AwaitResult(ctx context.Context, id string) ([]byte, error) {
	interval := c.PollInterval
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	max := c.PollMax
	if max <= 0 {
		max = time.Second
	}
	policy := c.Retry.withDefaults()
	wait := interval
	for {
		st, err := c.Job(ctx, id)
		switch {
		case err == nil:
			if st.State.Terminal() {
				if st.State != StateDone {
					return nil, fmt.Errorf("service client: job %s %s: %s", id, st.State, st.Error)
				}
				return c.Result(ctx, id)
			}
		case retryable(err):
			// The daemon is down or overloaded; keep waiting — the
			// backoff below already paces us and the breaker already
			// sheds the load.
		default:
			return nil, err
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(c.pollJitter(policy, wait)):
		}
		wait = time.Duration(float64(wait) * 1.5)
		if wait > max {
			wait = max
		}
	}
}

// pollJitter spreads one poll sleep by the policy's jitter fraction.
func (c *Client) pollJitter(p RetryPolicy, d time.Duration) time.Duration {
	if p.Jitter <= 0 {
		return d
	}
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	if c.rng == nil {
		seed := p.Seed
		if seed == 0 {
			seed = 1
		}
		c.rng = rand.New(rand.NewSource(int64(seed)))
	}
	return time.Duration(float64(d) * (1 + p.Jitter*(2*c.rng.Float64()-1)))
}

// Metrics fetches and parses /v1/metrics into a name -> value map.
func (c *Client) Metrics(ctx context.Context) (map[string]float64, error) {
	var raw []byte
	if err := c.do(ctx, http.MethodGet, "/v1/metrics", nil, &raw, true); err != nil {
		return nil, err
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var name string
		var v float64
		if _, err := fmt.Sscanf(line, "%s %g", &name, &v); err == nil {
			out[name] = v
		}
	}
	return out, nil
}

// Healthz fetches the daemon's liveness/drain state.
func (c *Client) Healthz(ctx context.Context) (ok, draining bool, err error) {
	var h struct {
		OK       bool `json:"ok"`
		Draining bool `json:"draining"`
	}
	if err := c.do(ctx, http.MethodGet, "/v1/healthz", nil, &h, true); err != nil {
		return false, false, err
	}
	return h.OK, h.Draining, nil
}

// Local adapts an in-process Service to the Client's submit/await
// shape, so code written against a daemon (e.g. the experiments
// service sweep) also runs embedded, without HTTP.
type Local struct {
	Service *Service
}

// SubmitJSON parses and submits raw spec bytes in process.
func (l Local) SubmitJSON(_ context.Context, data []byte) (JobStatus, error) {
	return l.Service.SubmitJSON(data)
}

// AwaitResult blocks until the job finishes and returns its report
// bytes.
func (l Local) AwaitResult(ctx context.Context, id string) ([]byte, error) {
	return l.Service.AwaitResult(ctx, id)
}
