package service

import (
	"bytes"
	"testing"
)

// FuzzParseSpec holds the spec parser to its contract: whatever the
// bytes, it must never panic, and anything it accepts must normalize
// to a fixed point (canonical bytes re-parse to the same canonical
// bytes and a stable hash).
func FuzzParseSpec(f *testing.F) {
	seeds := []string{
		// Valid specs of every kind.
		`{"kind":"run","run":{"workload":"sg"}}`,
		`{"kind":"compare","run":{"workload":"bfs","seed":7,"threads":4}}`,
		`{"kind":"numa","numa":{"workload":"is","nodes":2,"cores_per_node":4}}`,
		`{"version":1,"kind":"run","run":{"workload":"mg","scale":"tiny","design":"mshr"}}`,
		`{"kind":"run","run":{"workload":"sg","observe":{"enabled":true,"sample_interval":64,"trace":true}}}`,
		`{"kind":"run","run":{"workload":"sg","faults":{"crc_error_rate":0.01,"link_fail_rate":0.001}}}`,
		`{"kind":"run","run":{"workload":"sg","chaos":{"profile":"mild"},"retry":{"max_retries":3}}}`,
		`{"kind":"run","run":{"workload":"sg","cube":"ring,page=open"}}`,
		`{"kind":"numa","numa":{"workload":"sg","cube":"mesh,quad=2","chaos":{"profile":"cubelink=0.01:64"}}}`,
		`{"version":2,"kind":"run","run":{"workload":"sg","cube":"ring"}}`,
		// Malformed shapes the parser must reject without panicking.
		``,
		`{`,
		`null`,
		`[]`,
		`"run"`,
		`{"kind":"run"}`,
		`{"kind":"numa","run":{"workload":"sg"}}`,
		`{"kind":"run","run":{"workload":"sg"},"x":1}`,
		`{"kind":"run","run":{"workload":"sg"}}{"kind":"run"}`,
		`{"version":99,"kind":"run","run":{"workload":"sg"}}`,
		`{"kind":"run","run":{"workload":"sg","threads":-1}}`,
		`{"kind":"run","run":{"workload":"sg","threads":1e20}}`,
		`{"kind":"run","run":{"workload":"sg","window_bytes":4294967552}}`,
		`{"kind":"run","run":{"workload":"sg","faults":{"crc_error_rate":-0.5}}}`,
		`{"kind":"run","run":{"workload":"sg","faults":{"crc_error_rate":1e999}}}`,
		`{"kind":"run","run":{"workload":"sg","scale":"galactic"}}`,
		`{"kind":"numa","numa":{"workload":"sg","link_latency_ns":-1}}`,
		`{"kind":"run","run":{"workload":"zz"}}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseSpec(data)
		if err != nil {
			return
		}
		// Accepted specs must round-trip to a fixed point.
		c1, err := s.Canonical()
		if err != nil {
			t.Fatalf("accepted spec does not canonicalize: %v\ninput: %q", err, data)
		}
		h1, err := s.Hash()
		if err != nil || len(h1) != 64 {
			t.Fatalf("bad hash %q (err %v) for accepted spec %q", h1, err, data)
		}
		s2, err := ParseSpec(c1)
		if err != nil {
			t.Fatalf("canonical bytes rejected: %v\ncanonical: %s", err, c1)
		}
		c2, err := s2.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(c1, c2) {
			t.Fatalf("canonicalization unstable:\n%s\n%s", c1, c2)
		}
	})
}
