package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// Handler returns the macd HTTP API bound to s:
//
//	POST   /v1/jobs            submit a JSON job spec
//	GET    /v1/jobs            list retained jobs, newest first
//	GET    /v1/jobs/{id}       one job's status
//	GET    /v1/jobs/{id}/result the finished job's report JSON
//	DELETE /v1/jobs/{id}       cancel a queued or running job
//	GET    /v1/results/{hash}  stored result by spec hash (peer read-through)
//	GET    /v1/healthz         liveness and drain state
//	GET    /v1/metrics         the obs registry as "name value" lines
//
// Submission answers 200 for a cache hit (result already stored),
// 202 for queued or coalesced jobs, 400 for invalid specs, 429 when
// the queue is full and 503 while draining. 429 and 503 carry a
// queue-depth-aware Retry-After header the client backoff honors.
func Handler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("service: reading body: %w", err))
			return
		}
		st, err := s.SubmitJSON(body)
		if err != nil {
			switch {
			case errors.Is(err, ErrQueueFull):
				// A queue-depth-aware Retry-After paces the herd: the
				// deeper the backlog, the longer rejected clients wait.
				w.Header().Set("Retry-After", strconv.Itoa(s.RetryAfterHint()))
				httpError(w, http.StatusTooManyRequests, err)
			case errors.Is(err, ErrDraining):
				w.Header().Set("Retry-After", strconv.Itoa(s.RetryAfterHint()))
				httpError(w, http.StatusServiceUnavailable, err)
			default:
				httpError(w, http.StatusBadRequest, err)
			}
			return
		}
		code := http.StatusAccepted
		if st.Cached {
			code = http.StatusOK
		}
		writeJSON(w, code, st)
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Jobs())
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Job(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		data, err := s.Result(r.PathValue("id"))
		if err != nil {
			switch {
			case errors.Is(err, ErrUnknownJob):
				httpError(w, http.StatusNotFound, err)
			case errors.Is(err, ErrNotFinished):
				httpError(w, http.StatusConflict, err)
			default:
				// The job itself failed or was canceled.
				httpError(w, http.StatusUnprocessableEntity, err)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(data)
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		canceled, err := s.Cancel(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"canceled": canceled})
	})
	mux.HandleFunc("GET /v1/results/{hash}", func(w http.ResponseWriter, r *http.Request) {
		// The peer read-through surface: serve the content-addressed
		// result store by spec hash. A miss is 404 — peers treat any
		// failure as a miss and execute locally.
		data, ok := s.ResultByHash(r.PathValue("hash"))
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("service: no stored result for hash %q", r.PathValue("hash")))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(data)
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"ok":       true,
			"draining": s.Draining(),
		})
	})
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, MetricsText(s))
	})
	return mux
}

// MetricsText renders the service registry snapshot as sorted
// "name value" lines — the /v1/metrics wire format.
func MetricsText(s *Service) string {
	var b strings.Builder
	for _, m := range s.Registry().Snapshot() {
		fmt.Fprintf(&b, "%s %g\n", m.Name, m.Value)
	}
	return b.String()
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
