package service

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func newTestDaemon(t *testing.T, cfg Config, run func(Spec) ([]byte, error)) (*Service, *Client) {
	t.Helper()
	s := newTestService(t, cfg, run)
	srv := httptest.NewServer(Handler(s))
	t.Cleanup(srv.Close)
	return s, &Client{BaseURL: srv.URL, PollInterval: 2 * time.Millisecond}
}

func TestHTTPSubmitStatusResult(t *testing.T) {
	r := &slowRunner{}
	_, c := newTestDaemon(t, Config{Workers: 2}, r.run)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	st, err := c.SubmitJSON(ctx, []byte(runSpec(1)))
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.Hash == "" || st.Kind != KindRun {
		t.Fatalf("bad status: %+v", st)
	}
	data, err := c.AwaitResult(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), `{"report":"`) {
		t.Fatalf("unexpected result body: %.60s", data)
	}

	// Second identical submission: HTTP 200 with cached status.
	st2, err := c.SubmitJSON(ctx, []byte(runSpec(1)))
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Cached || st2.State != StateDone {
		t.Fatalf("want cache hit, got %+v", st2)
	}
	data2, err := c.Result(ctx, st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(data2) != string(data) {
		t.Fatal("cached result differs over HTTP")
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	r := &slowRunner{release: make(chan struct{})}
	s, c := newTestDaemon(t, Config{Workers: 1, QueueDepth: 1}, r.run)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// 400: invalid spec.
	if _, err := c.SubmitJSON(ctx, []byte(`{"kind":"nope"}`)); err == nil {
		t.Fatal("invalid spec accepted over HTTP")
	}
	// 404: unknown job.
	if _, err := c.Job(ctx, "j-missing"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("err = %v, want ErrUnknownJob", err)
	}
	// Fill worker + queue, then 429.
	if _, err := c.SubmitJSON(ctx, []byte(runSpec(1))); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for r.callCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never started")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := c.SubmitJSON(ctx, []byte(runSpec(2))); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SubmitJSON(ctx, []byte(runSpec(3))); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull over HTTP 429", err)
	}
	// 409: result of a pending job.
	st, err := c.Job(ctx, "j-00000001")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Result(ctx, st.ID); !errors.Is(err, ErrNotFinished) {
		t.Fatalf("err = %v, want ErrNotFinished over HTTP 409", err)
	}
	close(r.release)
	// 503 while draining.
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SubmitJSON(ctx, []byte(runSpec(4))); !errors.Is(err, ErrDraining) {
		t.Fatalf("err = %v, want ErrDraining over HTTP 503", err)
	}
}

func TestHTTPCancel(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	run := func(Spec) ([]byte, error) {
		started <- struct{}{}
		<-release
		return []byte(`{}`), nil
	}
	_, c := newTestDaemon(t, Config{Workers: 1}, run)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	st, err := c.SubmitJSON(ctx, []byte(runSpec(1)))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if err := c.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	close(release)
	if _, err := c.AwaitResult(ctx, st.ID); err == nil {
		t.Fatal("canceled job returned a result")
	}
	final, err := c.Job(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateCanceled {
		t.Fatalf("state = %s, want canceled", final.State)
	}
}

func TestHTTPHealthzAndMetrics(t *testing.T) {
	r := &slowRunner{}
	_, c := newTestDaemon(t, Config{Workers: 2}, r.run)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	ok, draining, err := c.Healthz(ctx)
	if err != nil || !ok || draining {
		t.Fatalf("healthz: ok=%v draining=%v err=%v", ok, draining, err)
	}

	st, err := c.SubmitJSON(ctx, []byte(runSpec(1)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AwaitResult(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SubmitJSON(ctx, []byte(runSpec(1))); err != nil {
		t.Fatal(err)
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"macd.queue.depth", "macd.queue.capacity",
		"macd.workers.busy", "macd.workers.total",
		"macd.jobs.submitted", "macd.jobs.completed",
		"macd.cache.hits", "macd.cache.misses", "macd.cache.bytes",
		"macd.job.run_us.count", "macd.job.queue_wait_us.mean",
	} {
		if _, ok := m[name]; !ok {
			t.Errorf("metric %s missing from /v1/metrics", name)
		}
	}
	if m["macd.jobs.submitted"] != 2 {
		t.Errorf("macd.jobs.submitted = %g, want 2", m["macd.jobs.submitted"])
	}
	if m["macd.cache.hits"] != 1 {
		t.Errorf("macd.cache.hits = %g, want 1", m["macd.cache.hits"])
	}
}

func TestHTTPConcurrentLoad(t *testing.T) {
	// 32+ concurrent mixed submissions through the full HTTP stack.
	r := &slowRunner{}
	_, c := newTestDaemon(t, Config{Workers: 8, QueueDepth: 256}, r.run)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	const n = 40
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			st, err := c.SubmitJSON(ctx, []byte(runSpec(10+i%8)))
			if err != nil {
				errs <- err
				return
			}
			if _, err := c.AwaitResult(ctx, st.ID); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := r.callCount(); got > 8 {
		t.Fatalf("runner executed %d times for 8 distinct specs", got)
	}
}
