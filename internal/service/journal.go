package service

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
)

// The job journal is macd's crash-safety layer: an append-only,
// CRC-checked write-ahead log of every job lifecycle transition, plus a
// content-addressed on-disk result store. A daemon restarted on the
// same journal directory replays the log, restores completed results
// into the cache, re-queues jobs that were queued or running at crash
// time, and keeps serving the same job IDs — so a client's AwaitResult
// survives the restart.
//
// On-disk layout under the journal directory:
//
//	journal.log            frames: len u32le | crc32c u32le | JSON record
//	results/ab/abcd....json result bytes for spec hash abcd..., written
//	                       via tmp file + rename (visible ⇒ complete)
//
// The log is the source of truth; the result store is addressed by the
// spec's canonical SHA-256 hash, so re-executing a lost job rewrites
// byte-identical content. Appends are buffered in the OS page cache by
// default (they survive a SIGKILL of the process; Config.JournalSync
// adds an fsync per record for power-loss durability).

// Op is a journal record's transition type.
type Op string

const (
	// OpSubmit records a job's admission: ID, spec hash and the
	// canonical spec bytes needed to re-queue it after a crash.
	OpSubmit Op = "submit"
	// OpStart records a worker picking the job up.
	OpStart Op = "start"
	// OpTerminal records the job's single terminal transition. A done
	// job's result bytes live in the result store under the spec hash;
	// the record carries their length and CRC.
	OpTerminal Op = "terminal"
	// OpRequeue is written by recovery for every job it re-queues, so
	// a later terminal record for an already-terminal job is explained
	// by the history rather than a double-completion.
	OpRequeue Op = "requeue"
)

// Record is one journal entry. Submit records carry the canonical spec;
// terminal records carry the state and, for done jobs, the stored
// result's length and CRC32-Castagnoli.
type Record struct {
	Op   Op     `json:"op"`
	Job  string `json:"job"`
	Hash string `json:"hash,omitempty"`
	// Spec holds the canonical spec bytes (submit records only).
	Spec json.RawMessage `json:"spec,omitempty"`
	// State is the terminal state (terminal records only).
	State State  `json:"state,omitempty"`
	Error string `json:"error,omitempty"`
	// ResultLen/ResultCRC describe the result-store file of a done
	// job, so recovery can detect a torn or missing result.
	ResultLen int    `json:"result_len,omitempty"`
	ResultCRC uint32 `json:"result_crc,omitempty"`
}

// JournalDamage describes where and why ParseJournal stopped early.
// Everything from Offset on is unparseable (a torn tail write or
// corruption) and is truncated away before the journal is appended to
// again.
type JournalDamage struct {
	// Offset is the byte position of the first bad frame.
	Offset int64
	// Bytes is how many bytes from Offset to EOF were discarded.
	Bytes int64
	// Reason classifies the damage (truncated frame, CRC mismatch,
	// bad JSON, oversized frame).
	Reason string
}

func (d *JournalDamage) String() string {
	if d == nil {
		return "intact"
	}
	return fmt.Sprintf("%s at offset %d (%d bytes dropped)", d.Reason, d.Offset, d.Bytes)
}

// crcTable is the Castagnoli polynomial, matching the HMC link-layer
// checksums elsewhere in the repo.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

const (
	journalFile = "journal.log"
	// maxRecordBytes bounds one frame: a canonical spec is capped at
	// maxSpecBytes, so anything larger is corruption, not data.
	maxRecordBytes = maxSpecBytes + 4096
)

// encodeRecord renders one frame: little-endian payload length, CRC32C
// of the payload, then the payload JSON.
func encodeRecord(r Record) ([]byte, error) {
	payload, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("service: encoding journal record: %w", err)
	}
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, crcTable))
	copy(frame[8:], payload)
	return frame, nil
}

// ParseJournal decodes journal bytes into records. It is total: no
// input panics it. Parsing stops at the first damaged frame — a torn
// tail, a CRC mismatch, an oversized length or undecodable JSON — and
// the damage is reported rather than treated as an error: everything
// before it is good, everything after it is untrustworthy (a frame
// boundary cannot be re-found reliably once one frame is bad).
func ParseJournal(data []byte) ([]Record, *JournalDamage) {
	var recs []Record
	off := int64(0)
	damage := func(reason string) ([]Record, *JournalDamage) {
		return recs, &JournalDamage{Offset: off, Bytes: int64(len(data)) - off, Reason: reason}
	}
	for int64(len(data))-off >= 8 {
		n := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		if n > maxRecordBytes {
			return damage(fmt.Sprintf("oversized frame (%d bytes)", n))
		}
		if int64(len(data))-off-8 < n {
			return damage("truncated frame")
		}
		want := binary.LittleEndian.Uint32(data[off+4 : off+8])
		payload := data[off+8 : off+8+n]
		if crc32.Checksum(payload, crcTable) != want {
			return damage("CRC mismatch")
		}
		var r Record
		if err := json.Unmarshal(payload, &r); err != nil {
			return damage("undecodable record JSON")
		}
		recs = append(recs, r)
		off += 8 + n
	}
	if off != int64(len(data)) {
		return damage("truncated frame header")
	}
	return recs, nil
}

// journal owns the open log file and the result store. Appends are
// serialized by its own mutex; after close (clean drain or simulated
// crash via Service.Kill) appends become silent no-ops, so a job that
// outlives the "crashed" incarnation cannot leak post-crash state to
// disk.
type journal struct {
	dir  string
	sync bool

	mu     sync.Mutex
	f      *os.File
	closed bool

	appendErr error // first write failure, surfaced in Drain
}

// openJournal opens (creating if needed) dir's journal for appending,
// truncating any damaged suffix found at offset truncateAt first so new
// frames follow the last good one.
func openJournal(dir string, syncEach bool, truncateAt int64) (*journal, error) {
	if err := os.MkdirAll(filepath.Join(dir, "results"), 0o755); err != nil {
		return nil, fmt.Errorf("service: creating journal dir: %w", err)
	}
	path := filepath.Join(dir, journalFile)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("service: opening journal: %w", err)
	}
	if truncateAt >= 0 {
		if err := f.Truncate(truncateAt); err != nil {
			f.Close()
			return nil, fmt.Errorf("service: truncating damaged journal tail: %w", err)
		}
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, fmt.Errorf("service: seeking journal end: %w", err)
	}
	return &journal{dir: dir, sync: syncEach, f: f}, nil
}

// append writes one frame. Failures are sticky and reported once at
// drain time; losing a record is indistinguishable from crashing
// before it was written, which recovery already handles.
func (j *journal) append(r Record) {
	if j == nil {
		return
	}
	frame, err := encodeRecord(r)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return
	}
	if err == nil {
		_, err = j.f.Write(frame)
		if err == nil && j.sync {
			err = j.f.Sync()
		}
	}
	if err != nil && j.appendErr == nil {
		j.appendErr = err
	}
}

// close stops all future appends and result-store writes. drop=true is
// the simulated-crash path (Service.Kill): the file handle is closed
// without flushing intent; drop=false syncs first.
func (j *journal) close(drop bool) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return j.appendErr
	}
	j.closed = true
	var err error
	if !drop {
		err = j.f.Sync()
	}
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	if j.appendErr != nil {
		return j.appendErr
	}
	return err
}

// resultPath is the content address of a spec hash's stored result.
func (j *journal) resultPath(hash string) string {
	shard := "xx"
	if len(hash) >= 2 {
		shard = hash[:2]
	}
	return filepath.Join(j.dir, "results", shard, hash+".json")
}

// writeResult stores result bytes under their spec hash via tmp file +
// rename, so a visible file is always complete (for a process crash;
// see the package comment on power loss). Returns the bytes' CRC.
func (j *journal) writeResult(hash string, data []byte) (uint32, error) {
	crc := crc32.Checksum(data, crcTable)
	j.mu.Lock()
	closed := j.closed
	j.mu.Unlock()
	if closed {
		return crc, nil
	}
	path := j.resultPath(hash)
	if _, err := os.Stat(path); err == nil {
		// Content-addressed: an existing file already holds these bytes.
		return crc, nil
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return crc, err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return crc, err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return crc, err
	}
	if j.sync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return crc, err
		}
	}
	if err := tmp.Close(); err != nil {
		return crc, err
	}
	return crc, os.Rename(tmp.Name(), path)
}

// readResult loads a stored result and verifies it against the length
// and CRC its terminal record promised.
func (j *journal) readResult(hash string, wantLen int, wantCRC uint32) ([]byte, bool) {
	data, err := os.ReadFile(j.resultPath(hash))
	if err != nil || len(data) != wantLen || crc32.Checksum(data, crcTable) != wantCRC {
		return nil, false
	}
	return data, true
}

// lookupResult serves the on-disk store as a second-level result cache:
// any complete stored file for hash is trusted (rename-visible means
// fully written, and content addressing means the bytes are the job's
// deterministic report).
func (j *journal) lookupResult(hash string) ([]byte, bool) {
	if j == nil {
		return nil, false
	}
	data, err := os.ReadFile(j.resultPath(hash))
	if err != nil {
		return nil, false
	}
	return data, true
}

// RecoveryReport summarizes one journal replay. macd logs it at
// startup and Service.Recovery exposes it to embedders and tests.
type RecoveryReport struct {
	// Records is the count of well-formed records replayed.
	Records int `json:"records"`
	// Jobs is the count of distinct job IDs seen.
	Jobs int `json:"jobs"`
	// Completed jobs were restored terminal: done jobs with their
	// results back in the cache, plus failed/canceled records.
	Completed int `json:"completed"`
	// Requeued jobs were queued or running at crash time (or their
	// stored result was torn/missing) and were re-admitted.
	Requeued int `json:"requeued"`
	// DuplicateTerminals counts terminal records for already-terminal
	// jobs that no requeue record explains.
	DuplicateTerminals int `json:"duplicate_terminals,omitempty"`
	// MissingResults counts done records whose stored result was
	// missing or failed its CRC; those jobs are re-queued.
	MissingResults int `json:"missing_results,omitempty"`
	// OrphanRecords counts start/terminal/requeue records whose job
	// has no submit record (lost to damage before them).
	OrphanRecords int `json:"orphan_records,omitempty"`
	// CorruptTruncated counts damaged-tail events (0 or 1 per replay:
	// parsing stops at the first one) and TruncatedBytes how many
	// bytes were dropped.
	CorruptTruncated int    `json:"corrupt_truncated,omitempty"`
	TruncatedBytes   int64  `json:"truncated_bytes,omitempty"`
	DamageReason     string `json:"damage_reason,omitempty"`
}

func (r RecoveryReport) String() string {
	s := fmt.Sprintf("replayed %d records, %d jobs: %d completed, %d requeued",
		r.Records, r.Jobs, r.Completed, r.Requeued)
	if r.DuplicateTerminals > 0 {
		s += fmt.Sprintf(", %d duplicate terminals ignored", r.DuplicateTerminals)
	}
	if r.MissingResults > 0 {
		s += fmt.Sprintf(", %d missing results", r.MissingResults)
	}
	if r.OrphanRecords > 0 {
		s += fmt.Sprintf(", %d orphan records", r.OrphanRecords)
	}
	if r.CorruptTruncated > 0 {
		s += fmt.Sprintf(", %s", (&JournalDamage{Reason: r.DamageReason, Bytes: r.TruncatedBytes}).Reason)
		s += fmt.Sprintf(" (%d bytes truncated)", r.TruncatedBytes)
	}
	return s
}

// replayedJob is the folded state of one job after replay.
type replayedJob struct {
	id     string
	hash   string
	spec   json.RawMessage
	state  State // queued/running if non-terminal at crash
	errMsg string
	result []byte // done jobs only
	// requeues counts recovery re-admissions already on record, so a
	// later terminal is legal for each one.
	requeues int
	terminal bool
}

// foldJournal reduces a record sequence to per-job end states plus the
// report counters. Damage (if any) is folded into the report.
func foldJournal(recs []Record, damage *JournalDamage, j *journal) (map[string]*replayedJob, []string, RecoveryReport) {
	jobs := make(map[string]*replayedJob)
	var order []string
	rep := RecoveryReport{Records: len(recs)}
	if damage != nil {
		rep.CorruptTruncated = 1
		rep.TruncatedBytes = damage.Bytes
		rep.DamageReason = damage.Reason
	}
	for _, r := range recs {
		switch r.Op {
		case OpSubmit:
			if _, ok := jobs[r.Job]; ok {
				rep.OrphanRecords++ // duplicate submit: count as damage noise
				continue
			}
			jobs[r.Job] = &replayedJob{id: r.Job, hash: r.Hash, spec: r.Spec, state: StateQueued}
			order = append(order, r.Job)
		case OpStart:
			jb, ok := jobs[r.Job]
			if !ok {
				rep.OrphanRecords++
				continue
			}
			if !jb.terminal {
				jb.state = StateRunning
			}
		case OpRequeue:
			jb, ok := jobs[r.Job]
			if !ok {
				rep.OrphanRecords++
				continue
			}
			jb.requeues++
			if jb.terminal {
				// A requeue after terminal means the stored result was
				// unusable; the job is live again.
				jb.terminal = false
				jb.state = StateQueued
				jb.result = nil
			}
		case OpTerminal:
			jb, ok := jobs[r.Job]
			if !ok {
				rep.OrphanRecords++
				continue
			}
			if jb.terminal {
				rep.DuplicateTerminals++
				continue
			}
			jb.terminal = true
			jb.state = r.State
			jb.errMsg = r.Error
			if r.State == StateDone && j != nil {
				if data, ok := j.readResult(jb.hash, r.ResultLen, r.ResultCRC); ok {
					jb.result = data
				} else {
					// Torn or missing result: the terminal promise is
					// unusable, so the job goes back to the queue. Remove
					// any corrupt file so the store-as-cache fallback
					// cannot serve it; re-execution rewrites it.
					os.Remove(j.resultPath(jb.hash))
					rep.MissingResults++
					jb.terminal = false
					jb.state = StateQueued
				}
			}
		default:
			rep.OrphanRecords++
		}
	}
	rep.Jobs = len(jobs)
	return jobs, order, rep
}

// ReadJournal reads and parses dir's journal file. A missing file is
// an empty history, not an error.
func ReadJournal(dir string) ([]Record, *JournalDamage, error) {
	raw, err := os.ReadFile(filepath.Join(dir, journalFile))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, nil
		}
		return nil, nil, err
	}
	recs, damage := ParseJournal(raw)
	return recs, damage, nil
}

// VerifyJournal checks the job-lifecycle conservation invariants over
// a full record history, possibly spanning several service
// incarnations: every non-submit record references an admitted job; a
// job reaches at most one terminal state per admission epoch (a
// recovery requeue opens a new epoch); and nothing runs after a
// terminal within an epoch. It returns human-readable violations —
// empty means the history is conservation-clean. The final-state
// question ("did every job finish?") is the caller's: FoldFinalStates
// answers it.
func VerifyJournal(recs []Record) []string {
	type jstate struct {
		submitted bool
		terminal  bool
	}
	var violations []string
	jobs := make(map[string]*jstate)
	for i, r := range recs {
		js := jobs[r.Job]
		switch r.Op {
		case OpSubmit:
			if js != nil {
				violations = append(violations, fmt.Sprintf("record %d: duplicate submit for %s", i, r.Job))
				continue
			}
			jobs[r.Job] = &jstate{submitted: true}
		case OpStart:
			if js == nil {
				violations = append(violations, fmt.Sprintf("record %d: start for unadmitted job %s", i, r.Job))
				continue
			}
			if js.terminal {
				violations = append(violations, fmt.Sprintf("record %d: start after terminal for %s", i, r.Job))
			}
		case OpRequeue:
			if js == nil {
				violations = append(violations, fmt.Sprintf("record %d: requeue for unadmitted job %s", i, r.Job))
				continue
			}
			js.terminal = false
		case OpTerminal:
			if js == nil {
				violations = append(violations, fmt.Sprintf("record %d: terminal for unadmitted job %s", i, r.Job))
				continue
			}
			if js.terminal {
				violations = append(violations, fmt.Sprintf("record %d: second terminal for %s without requeue", i, r.Job))
				continue
			}
			if !r.State.Terminal() {
				violations = append(violations, fmt.Sprintf("record %d: terminal record for %s carries non-terminal state %q", i, r.Job, r.State))
				continue
			}
			js.terminal = true
		default:
			violations = append(violations, fmt.Sprintf("record %d: unknown op %q", i, r.Op))
		}
	}
	return violations
}

// FoldFinalStates reduces a record history to each job's final state
// (its last terminal, or queued/running if it never reached one) and
// its spec hash.
func FoldFinalStates(recs []Record) map[string]struct {
	State State
	Hash  string
} {
	out := make(map[string]struct {
		State State
		Hash  string
	})
	jobs, _, _ := foldJournal(recs, nil, nil)
	for id, jb := range jobs {
		st := jb.state
		out[id] = struct {
			State State
			Hash  string
		}{State: st, Hash: jb.hash}
	}
	return out
}

// jobSeq extracts the numeric sequence from a "j-%08d" job ID so a
// recovered service continues numbering where the crashed one stopped.
func jobSeq(id string) uint64 {
	s := strings.TrimPrefix(id, "j-")
	n, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0
	}
	return n
}
