package service

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// journalBytes reads dir's raw journal file.
func journalBytes(t *testing.T, dir string) []byte {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// writeJournal replaces dir's journal file with the given frames.
func writeJournal(t *testing.T, dir string, recs ...Record) {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, r := range recs {
		frame, err := encodeRecord(r)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(frame)
	}
	if err := os.WriteFile(filepath.Join(dir, journalFile), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

func drainService(t *testing.T, s *Service) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestJournalRecordRoundTrip(t *testing.T) {
	recs := []Record{
		{Op: OpSubmit, Job: "j-00000001", Hash: "abc", Spec: []byte(`{"kind":"run"}`)},
		{Op: OpStart, Job: "j-00000001"},
		{Op: OpTerminal, Job: "j-00000001", Hash: "abc", State: StateDone, ResultLen: 7, ResultCRC: 42},
		{Op: OpRequeue, Job: "j-00000001", Hash: "abc"},
		{Op: OpTerminal, Job: "j-00000001", State: StateFailed, Error: "boom"},
	}
	var buf bytes.Buffer
	for _, r := range recs {
		frame, err := encodeRecord(r)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(frame)
	}
	got, damage := ParseJournal(buf.Bytes())
	if damage != nil {
		t.Fatalf("unexpected damage: %s", damage)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].Op != recs[i].Op || got[i].Job != recs[i].Job ||
			got[i].State != recs[i].State || got[i].Error != recs[i].Error ||
			got[i].ResultLen != recs[i].ResultLen || got[i].ResultCRC != recs[i].ResultCRC ||
			string(got[i].Spec) != string(recs[i].Spec) {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], recs[i])
		}
	}
	if v := VerifyJournal(got); len(v) != 0 {
		t.Fatalf("round-tripped history has violations: %v", v)
	}
}

// TestJournalCrashRecoveryEndToEnd is the in-process SIGKILL drill: a
// journaled service is killed with jobs queued, running and done; a
// second service on the same directory must serve the done job's
// result from disk without re-running it and finish the interrupted
// ones with byte-identical results under the original job IDs.
func TestJournalCrashRecoveryEndToEnd(t *testing.T) {
	dir := t.TempDir()
	r := &slowRunner{release: make(chan struct{})}

	a, err := newWithRunner(Config{Workers: 1, JournalDir: dir}, r.run)
	if err != nil {
		t.Fatal(err)
	}

	doneSpec := mustSpec(t, runSpec(1))
	runningSpec := mustSpec(t, runSpec(2))
	queuedSpec := mustSpec(t, runSpec(3))

	// Complete job 1: release the runner just for it.
	release := r.release
	r.release = nil
	st1, err := a.Submit(doneSpec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	want1, err := a.AwaitResult(ctx, st1.ID)
	if err != nil {
		t.Fatal(err)
	}
	// Jobs 2 and 3: submit with the runner blocked so 2 is running and
	// 3 is queued at crash time.
	r.release = release
	st2, err := a.Submit(runningSpec)
	if err != nil {
		t.Fatal(err)
	}
	st3, err := a.Submit(queuedSpec)
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, a, st2.ID, StateRunning)

	a.Kill() // simulated SIGKILL: journal cut, workers abandoned

	// The blocked worker would otherwise hold its runner call forever.
	close(release)

	rb := &slowRunner{}
	b, err := newWithRunner(Config{Workers: 2, JournalDir: dir}, rb.run)
	if err != nil {
		t.Fatal(err)
	}
	defer drainService(t, b)
	rec := b.Recovery()
	if rec == nil {
		t.Fatal("no recovery report")
	}
	if rec.Requeued != 2 {
		t.Fatalf("recovery = %s, want 2 requeued", rec)
	}
	if rec.Completed != 1 {
		t.Fatalf("recovery = %s, want 1 completed", rec)
	}

	// The done job's result must come back without re-execution.
	got1, err := b.AwaitResult(ctx, st1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got1, want1) {
		t.Fatalf("recovered result differs: %q vs %q", got1, want1)
	}
	st, err := b.Job(st1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Recovered {
		t.Fatalf("job %s not marked recovered: %+v", st1.ID, st)
	}

	// The interrupted jobs finish under their original IDs.
	for _, id := range []string{st2.ID, st3.ID} {
		got, err := b.AwaitResult(ctx, id)
		if err != nil {
			t.Fatalf("await %s: %v", id, err)
		}
		var want Spec
		if id == st2.ID {
			want = runningSpec
		} else {
			want = queuedSpec
		}
		h, err := want.Hash()
		if err != nil {
			t.Fatal(err)
		}
		if wantBytes := []byte(`{"report":"` + h + `"}`); !bytes.Equal(got, wantBytes) {
			t.Fatalf("job %s: got %q, want %q", id, got, wantBytes)
		}
	}
	// The recovered service re-executes exactly the two interrupted
	// jobs; the done job is served from the result store, never re-run.
	if n := rb.callCount(); n != 2 {
		t.Fatalf("recovered service made %d runner calls, want exactly 2", n)
	}

	drainService(t, b)
	recs, damage, err := ReadJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if damage != nil {
		t.Fatalf("journal damaged: %s", damage)
	}
	if v := VerifyJournal(recs); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
	final := FoldFinalStates(recs)
	for _, id := range []string{st1.ID, st2.ID, st3.ID} {
		if st := final[id]; st.State != StateDone {
			t.Fatalf("job %s final state %s, want done", id, st.State)
		}
	}
}

func waitForState(t *testing.T, s *Service, id string, want State) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := s.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", id, st.State, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// crashedJournalDir builds a journal directory from a killed service
// holding one done and one running job, and returns their statuses.
func crashedJournalDir(t *testing.T) (dir string, done, running JobStatus, wantDone []byte) {
	t.Helper()
	dir = t.TempDir()
	r := &slowRunner{release: make(chan struct{})}
	a, err := newWithRunner(Config{Workers: 1, JournalDir: dir}, r.run)
	if err != nil {
		t.Fatal(err)
	}
	r.release = nil
	done, err = a.Submit(mustSpec(t, runSpec(1)))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	wantDone, err = a.AwaitResult(ctx, done.ID)
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	r.release = release
	running, err = a.Submit(mustSpec(t, runSpec(2)))
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, a, running.ID, StateRunning)
	a.Kill()
	close(release)
	return dir, done, running, wantDone
}

// TestJournalTruncatedTail tears the last frame mid-write: recovery
// must keep everything before it, report the damage, and truncate the
// tail so the journal is appendable again.
func TestJournalTruncatedTail(t *testing.T) {
	dir, done, running, wantDone := crashedJournalDir(t)
	raw := journalBytes(t, dir)
	// Tear the final frame: drop its last 3 bytes.
	if err := os.WriteFile(filepath.Join(dir, journalFile), raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	recs, damage := ParseJournal(raw[:len(raw)-3])
	if damage == nil || damage.Reason != "truncated frame" {
		t.Fatalf("damage = %s, want truncated frame", damage)
	}

	b, err := newWithRunner(Config{Workers: 1, JournalDir: dir}, (&slowRunner{}).run)
	if err != nil {
		t.Fatal(err)
	}
	defer drainService(t, b)
	rec := *b.Recovery()
	want := RecoveryReport{
		Records: len(recs), Jobs: 2, Completed: 1, Requeued: 1,
		CorruptTruncated: 1, TruncatedBytes: damage.Bytes, DamageReason: "truncated frame",
	}
	if rec != want {
		t.Fatalf("recovery report:\n got %+v\nwant %+v", rec, want)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	got, err := b.AwaitResult(ctx, done.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wantDone) {
		t.Fatalf("done result differs after tail truncation")
	}
	if _, err := b.AwaitResult(ctx, running.ID); err != nil {
		t.Fatalf("requeued job after truncation: %v", err)
	}

	// The truncated tail must be gone: a clean drain leaves an intact,
	// violation-free journal.
	drainService(t, b)
	recs2, damage2, err := ReadJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if damage2 != nil {
		t.Fatalf("journal still damaged after truncate+drain: %s", damage2)
	}
	if v := VerifyJournal(recs2); len(v) != 0 {
		t.Fatalf("violations after recovery: %v", v)
	}
}

// TestJournalCorruptCRCMidFile flips one payload byte in the middle of
// the log: everything from that frame on must be dropped and the jobs
// whose records were lost must still converge after re-submission.
func TestJournalCorruptCRCMidFile(t *testing.T) {
	dir, done, _, wantDone := crashedJournalDir(t)
	raw := journalBytes(t, dir)

	// Find the second frame's payload and flip a byte in it.
	first := int64(binary.LittleEndian.Uint32(raw[0:4])) + 8
	if int(first)+9 > len(raw) {
		t.Fatalf("journal too short for a mid-file flip: %d bytes", len(raw))
	}
	raw[first+8] ^= 0xFF
	if err := os.WriteFile(filepath.Join(dir, journalFile), raw, 0o644); err != nil {
		t.Fatal(err)
	}

	recs, damage := ParseJournal(raw)
	if damage == nil || damage.Reason != "CRC mismatch" {
		t.Fatalf("damage = %s, want CRC mismatch", damage)
	}
	if len(recs) != 1 || damage.Offset != first {
		t.Fatalf("parse stopped at %d records / offset %d, want 1 / %d", len(recs), damage.Offset, first)
	}

	b, err := newWithRunner(Config{Workers: 1, JournalDir: dir}, (&slowRunner{}).run)
	if err != nil {
		t.Fatal(err)
	}
	defer drainService(t, b)
	rec := *b.Recovery()
	// Only the first submit survives; its terminal record is gone, but
	// the result store still holds the bytes, so the job is restored
	// done from disk (Completed), not re-queued.
	want := RecoveryReport{
		Records: 1, Jobs: 1, Completed: 1,
		CorruptTruncated: 1, TruncatedBytes: damage.Bytes, DamageReason: "CRC mismatch",
	}
	if rec != want {
		t.Fatalf("recovery report:\n got %+v\nwant %+v", rec, want)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	got, err := b.AwaitResult(ctx, done.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wantDone) {
		t.Fatalf("done result differs after mid-file corruption")
	}
}

// TestJournalDuplicateTerminal hand-crafts a history where one job has
// two terminal records without a requeue: replay must keep the first,
// count the duplicate, and VerifyJournal must flag it.
func TestJournalDuplicateTerminal(t *testing.T) {
	dir := t.TempDir()
	spec := mustSpec(t, runSpec(1))
	canon, err := spec.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	hash, err := spec.Hash()
	if err != nil {
		t.Fatal(err)
	}
	writeJournal(t, dir,
		Record{Op: OpSubmit, Job: "j-00000001", Hash: hash, Spec: canon},
		Record{Op: OpStart, Job: "j-00000001"},
		Record{Op: OpTerminal, Job: "j-00000001", State: StateFailed, Error: "first"},
		Record{Op: OpTerminal, Job: "j-00000001", State: StateCanceled, Error: "second"},
	)

	recs, damage, err := ReadJournal(dir)
	if err != nil || damage != nil {
		t.Fatalf("read: %v / %s", err, damage)
	}
	v := VerifyJournal(recs)
	if len(v) != 1 || v[0] != "record 3: second terminal for j-00000001 without requeue" {
		t.Fatalf("violations = %v", v)
	}

	b, err := newWithRunner(Config{Workers: 1, JournalDir: dir}, (&slowRunner{}).run)
	if err != nil {
		t.Fatal(err)
	}
	defer drainService(t, b)
	rec := *b.Recovery()
	want := RecoveryReport{Records: 4, Jobs: 1, Completed: 1, DuplicateTerminals: 1}
	if rec != want {
		t.Fatalf("recovery report:\n got %+v\nwant %+v", rec, want)
	}
	st, err := b.Job("j-00000001")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateFailed || st.Error != "first" {
		t.Fatalf("duplicate terminal won: %+v", st)
	}
}

// TestJournalTornResult simulates a crash between the terminal journal
// append and result-store durability: the terminal record promises
// result bytes that are missing (or corrupt) on disk, so recovery must
// re-queue the job instead of serving garbage.
func TestJournalTornResult(t *testing.T) {
	for _, tc := range []struct {
		name    string
		corrupt func(t *testing.T, path string)
	}{
		{"missing", func(t *testing.T, path string) {
			if err := os.Remove(path); err != nil {
				t.Fatal(err)
			}
		}},
		{"torn", func(t *testing.T, path string) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir, done, running, wantDone := crashedJournalDir(t)
			j := &journal{dir: dir}
			tc.corrupt(t, j.resultPath(done.Hash))

			rr := &slowRunner{}
			b, err := newWithRunner(Config{Workers: 1, JournalDir: dir}, rr.run)
			if err != nil {
				t.Fatal(err)
			}
			defer drainService(t, b)
			rec := *b.Recovery()
			if rec.MissingResults != 1 {
				t.Fatalf("recovery = %+v, want 1 missing result", rec)
			}
			if rec.Requeued != 2 {
				t.Fatalf("recovery = %+v, want both jobs requeued", rec)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			// The job must be re-executed and produce the same bytes.
			got, err := b.AwaitResult(ctx, done.ID)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, wantDone) {
				t.Fatalf("re-run after torn result differs: %q vs %q", got, wantDone)
			}
			if _, err := b.AwaitResult(ctx, running.ID); err != nil {
				t.Fatal(err)
			}
			if rr.callCount() == 0 {
				t.Fatal("torn result served without re-execution")
			}

			// The full history (both incarnations) stays conservation-
			// clean: the requeue record legitimizes the second terminal.
			drainService(t, b)
			recs, damage, err := ReadJournal(dir)
			if err != nil || damage != nil {
				t.Fatalf("read: %v / %s", err, damage)
			}
			if v := VerifyJournal(recs); len(v) != 0 {
				t.Fatalf("violations: %v", v)
			}
		})
	}
}

// TestJournalOrphanRecords covers records whose submit was lost to
// damage: they must be counted, not crash recovery.
func TestJournalOrphanRecords(t *testing.T) {
	dir := t.TempDir()
	writeJournal(t, dir,
		Record{Op: OpStart, Job: "j-00000009"},
		Record{Op: OpTerminal, Job: "j-00000009", State: StateFailed},
		Record{Op: OpRequeue, Job: "j-00000009"},
		Record{Op: "bogus", Job: "j-00000010"},
	)
	b, err := newWithRunner(Config{Workers: 1, JournalDir: dir}, (&slowRunner{}).run)
	if err != nil {
		t.Fatal(err)
	}
	defer drainService(t, b)
	rec := *b.Recovery()
	want := RecoveryReport{Records: 4, OrphanRecords: 4}
	if rec != want {
		t.Fatalf("recovery report:\n got %+v\nwant %+v", rec, want)
	}
}

// TestJournalSeqContinues pins that job numbering continues across the
// restart, so recovered and fresh IDs never collide.
func TestJournalSeqContinues(t *testing.T) {
	dir, done, running, _ := crashedJournalDir(t)
	b, err := newWithRunner(Config{Workers: 1, JournalDir: dir}, (&slowRunner{}).run)
	if err != nil {
		t.Fatal(err)
	}
	defer drainService(t, b)
	st, err := b.Submit(mustSpec(t, runSpec(99)))
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == done.ID || st.ID == running.ID {
		t.Fatalf("fresh job reused a recovered ID: %s", st.ID)
	}
	if jobSeq(st.ID) <= jobSeq(running.ID) {
		t.Fatalf("sequence did not continue: fresh %s after recovered %s", st.ID, running.ID)
	}
}

// TestDrainSubmitRace pins the Drain/Submit contract under the race
// detector: submissions concurrent with Drain either are accepted and
// then complete, or fail with exactly ErrDraining (never a panic on a
// closed queue, never a lost job); every submission after Drain
// returns is ErrDraining.
func TestDrainSubmitRace(t *testing.T) {
	for round := 0; round < 8; round++ {
		r := &slowRunner{}
		s, err := newWithRunner(Config{Workers: 2, QueueDepth: 256}, r.run)
		if err != nil {
			t.Fatal(err)
		}

		const submitters = 8
		var wg sync.WaitGroup
		var mu sync.Mutex
		accepted := make([]string, 0, submitters*32)
		stop := make(chan struct{})
		for g := 0; g < submitters; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					st, err := s.Submit(mustSpec(t, runSpec(g*1000+i)))
					if errors.Is(err, ErrQueueFull) {
						continue // backpressure, not drain
					}
					if err != nil {
						if !errors.Is(err, ErrDraining) {
							t.Errorf("submit during drain: %v", err)
						}
						return
					}
					mu.Lock()
					accepted = append(accepted, st.ID)
					mu.Unlock()
				}
			}(g)
		}

		time.Sleep(time.Duration(round) * time.Millisecond)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		if err := s.Drain(ctx); err != nil {
			t.Fatalf("drain: %v", err)
		}
		close(stop)
		wg.Wait()
		cancel()

		// After Drain has returned, submissions are deterministically
		// rejected.
		if _, err := s.Submit(mustSpec(t, runSpec(424242))); !errors.Is(err, ErrDraining) {
			t.Fatalf("post-drain submit: %v, want ErrDraining", err)
		}
		// Every accepted job reached a terminal state.
		for _, id := range accepted {
			st, err := s.Job(id)
			if err != nil {
				t.Fatalf("job %s lost: %v", id, err)
			}
			if !st.State.Terminal() {
				t.Fatalf("accepted job %s not terminal after drain: %s", id, st.State)
			}
		}
	}
}

// TestJournalAppendAfterKillIsNoop pins the crash simulation: once
// Kill has cut the journal, a lingering worker finishing its job must
// not leak a terminal record or result file to disk.
func TestJournalAppendAfterKillIsNoop(t *testing.T) {
	dir := t.TempDir()
	r := &slowRunner{release: make(chan struct{})}
	s, err := newWithRunner(Config{Workers: 1, JournalDir: dir}, r.run)
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Submit(mustSpec(t, runSpec(1)))
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, s, st.ID, StateRunning)
	before := journalBytes(t, dir)
	s.Kill()
	close(r.release)
	// Give the lingering worker time to (wrongly) finalize.
	time.Sleep(50 * time.Millisecond)
	after := journalBytes(t, dir)
	if !bytes.Equal(before, after) {
		t.Fatalf("journal grew %d bytes after Kill", len(after)-len(before))
	}
	j := &journal{dir: dir}
	if _, err := os.Stat(j.resultPath(st.Hash)); !os.IsNotExist(err) {
		t.Fatalf("result file leaked to disk after Kill: %v", err)
	}
}

func FuzzParseJournal(f *testing.F) {
	// Seed with a valid two-record log, a torn tail, and a CRC flip.
	frame := func(r Record) []byte {
		b, err := encodeRecord(r)
		if err != nil {
			f.Fatal(err)
		}
		return b
	}
	valid := append(
		frame(Record{Op: OpSubmit, Job: "j-00000001", Hash: "ab", Spec: []byte(`{"kind":"run"}`)}),
		frame(Record{Op: OpTerminal, Job: "j-00000001", State: StateDone, ResultLen: 3, ResultCRC: 9})...)
	f.Add(valid)
	f.Add(valid[:len(valid)-2])
	flipped := append([]byte(nil), valid...)
	flipped[9] ^= 0x40
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, damage := ParseJournal(data)
		// Total: never panics, and the parse is exact — re-encoding the
		// accepted records reproduces the prefix before the damage.
		var buf bytes.Buffer
		for _, r := range recs {
			b, err := encodeRecord(r)
			if err != nil {
				t.Fatalf("accepted record does not re-encode: %v", err)
			}
			buf.Write(b)
		}
		prefix := int64(len(data))
		if damage != nil {
			prefix = damage.Offset
			if damage.Offset+damage.Bytes != int64(len(data)) {
				t.Fatalf("damage accounting: offset %d + bytes %d != len %d",
					damage.Offset, damage.Bytes, len(data))
			}
		}
		if int64(buf.Len()) != prefix {
			// JSON re-encoding is canonical (struct-driven), but the
			// input payload may use different key order/whitespace, so
			// only require length bookkeeping when records were taken
			// verbatim. Check frame count instead.
			reparsed, d2 := ParseJournal(buf.Bytes())
			if d2 != nil {
				t.Fatalf("re-encoded journal is damaged: %s", d2)
			}
			if len(reparsed) != len(recs) {
				t.Fatalf("re-encode round trip lost records: %d vs %d", len(reparsed), len(recs))
			}
		}
		// VerifyJournal and FoldFinalStates are total too.
		_ = VerifyJournal(recs)
		_ = FoldFinalStates(recs)
	})
}

func TestReadJournalMissing(t *testing.T) {
	recs, damage, err := ReadJournal(t.TempDir())
	if err != nil || damage != nil || recs != nil {
		t.Fatalf("missing journal: recs=%v damage=%s err=%v", recs, damage, err)
	}
}

func TestRecoveryReportString(t *testing.T) {
	r := RecoveryReport{Records: 7, Jobs: 3, Completed: 2, Requeued: 1,
		DuplicateTerminals: 1, MissingResults: 1, OrphanRecords: 2,
		CorruptTruncated: 1, TruncatedBytes: 13, DamageReason: "CRC mismatch"}
	s := r.String()
	for _, want := range []string{"7 records", "3 jobs", "2 completed", "1 requeued",
		"duplicate terminals", "missing results", "orphan records", "13 bytes truncated"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

// TestJournalBadDir pins the error path: an unusable journal directory
// fails construction instead of running unjournaled.
func TestJournalBadDir(t *testing.T) {
	file := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := newWithRunner(Config{Workers: 1, JournalDir: file}, (&slowRunner{}).run); err == nil {
		t.Fatal("service started on a file as journal dir")
	}
}
