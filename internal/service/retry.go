package service

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// The client's resilience layer: jittered exponential backoff with a
// bounded retry budget, and a half-open circuit breaker that stops
// poll storms from hammering a dying daemon. Retries are only issued
// for calls that are safe to repeat — every GET, and Submit, which
// content addressing makes idempotent (re-posting an identical spec
// coalesces or cache-hits instead of re-executing).

// ErrCircuitOpen rejects a call immediately because the breaker has
// seen too many consecutive failures and its cooldown has not elapsed.
var ErrCircuitOpen = errors.New("service client: circuit breaker open")

// RetryPolicy bounds and paces the client's retries. The zero value
// retries nothing (one attempt, no backoff) so existing callers keep
// their semantics; DefaultRetryPolicy is the recommended production
// setting.
type RetryPolicy struct {
	// MaxAttempts is the total tries per call, first included
	// (<=1 means no retries).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (default 25ms when
	// retries are enabled).
	BaseDelay time.Duration
	// MaxDelay caps one backoff sleep (default 2s).
	MaxDelay time.Duration
	// Multiplier grows the delay per attempt (default 2).
	Multiplier float64
	// Jitter spreads each delay uniformly in ±Jitter fraction of
	// itself, de-synchronizing client herds (default 0.2; 0 disables
	// only if JitterSet... use a negative value to force none).
	Jitter float64
	// Seed seeds the deterministic jitter stream (0 means seed 1), so
	// a replayed test sees the same delays.
	Seed uint64
}

// DefaultRetryPolicy is the recommended client policy: five attempts,
// 25ms..2s exponential backoff with 20% jitter.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 5, BaseDelay: 25 * time.Millisecond, MaxDelay: 2 * time.Second, Multiplier: 2, Jitter: 0.2}
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 25 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Jitter == 0 {
		p.Jitter = 0.2
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
	return p
}

// delay computes the backoff before attempt (1-based: the sleep after
// the attempt-th failure), capped and jittered from rng.
func (p RetryPolicy) delay(attempt int, rng *rand.Rand) time.Duration {
	d := float64(p.BaseDelay)
	for i := 1; i < attempt; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			break
		}
	}
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.Jitter > 0 && rng != nil {
		// Uniform in [1-Jitter, 1+Jitter].
		d *= 1 + p.Jitter*(2*rng.Float64()-1)
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// retryable classifies an error as safe to retry: transport failures
// (the daemon may be restarting), backpressure (429), drain (503 — a
// supervisor is likely cycling the process) and server-side 5xx. Spec
// rejections, unknown jobs and job-level failures are permanent.
func retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrQueueFull) || errors.Is(err, ErrDraining) || errors.Is(err, ErrCircuitOpen) {
		return true
	}
	var he *httpStatusError
	if errors.As(err, &he) {
		return he.code >= 500
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	// Anything else that reached the transport and failed (connection
	// refused/reset, EOF mid-response) arrives as a *url.Error or
	// syscall error; treat transportErr-tagged failures as retryable.
	var te *transportError
	return errors.As(err, &te)
}

// Retryable reports whether a client error is transient — safe to
// retry against the same daemon, or (for a cluster router) reason to
// walk to the ring successor. Exported for the cluster layer, which
// must distinguish shard-availability failures from caller errors.
func Retryable(err error) bool { return retryable(err) }

// maxRetryAfterHonor caps how long the client will sleep on a
// server-supplied Retry-After hint, so a miscomputed or hostile header
// cannot park a client for minutes.
const maxRetryAfterHonor = 30 * time.Second

// retryAfterError wraps a 429/503 rejection that carried a Retry-After
// header. The retry loop uses the hint as a floor under its own
// backoff; errors.Is/As still see the wrapped sentinel through Unwrap.
type retryAfterError struct {
	err   error
	after time.Duration
}

func (e *retryAfterError) Error() string { return e.err.Error() }
func (e *retryAfterError) Unwrap() error { return e.err }

// transportError tags request-transport failures (conn refused, reset,
// dropped mid-response) so retryable() can tell them from decode-level
// or API-level errors.
type transportError struct{ err error }

func (e *transportError) Error() string { return e.err.Error() }
func (e *transportError) Unwrap() error { return e.err }

// httpStatusError carries a non-sentinel HTTP failure with its code so
// the retry layer can distinguish 5xx from 4xx.
type httpStatusError struct {
	code int
	msg  string
}

func (e *httpStatusError) Error() string {
	return fmt.Sprintf("service client: HTTP %d: %s", e.code, e.msg)
}

// Breaker is a half-open circuit breaker. Closed, it passes calls and
// counts consecutive failures; at FailureThreshold it opens and fails
// calls fast with ErrCircuitOpen; after Cooldown it half-opens and
// lets one probe through — success closes it, failure re-opens it.
// The zero value is usable (threshold 5, cooldown 1s). Safe for
// concurrent use; share one Breaker across the clients of one daemon.
type Breaker struct {
	// FailureThreshold is the consecutive-failure count that opens
	// the circuit (default 5).
	FailureThreshold int
	// Cooldown is how long the circuit stays open before allowing a
	// half-open probe (default 1s).
	Cooldown time.Duration

	mu       sync.Mutex
	fails    int
	openedAt time.Time
	probing  bool
	opens    uint64

	// now is the clock, swappable in tests.
	now func() time.Time
}

func (b *Breaker) clock() time.Time {
	if b.now != nil {
		return b.now()
	}
	return time.Now()
}

func (b *Breaker) threshold() int {
	if b.FailureThreshold > 0 {
		return b.FailureThreshold
	}
	return 5
}

func (b *Breaker) cooldown() time.Duration {
	if b.Cooldown > 0 {
		return b.Cooldown
	}
	return time.Second
}

// allow gates one call. It returns ErrCircuitOpen while the circuit
// is open (or a half-open probe is already in flight).
func (b *Breaker) allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.fails < b.threshold() {
		return nil
	}
	if b.clock().Sub(b.openedAt) < b.cooldown() {
		return ErrCircuitOpen
	}
	// Half-open: one probe at a time.
	if b.probing {
		return ErrCircuitOpen
	}
	b.probing = true
	return nil
}

// record reports one call's outcome. Only transport-level failures
// count against the circuit: API-level rejections (bad spec, unknown
// job, even 429) prove the daemon is alive.
func (b *Breaker) record(err error) {
	countable := err != nil && retryable(err) && !errors.Is(err, ErrQueueFull) && !errors.Is(err, ErrCircuitOpen)
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if !countable {
		b.fails = 0
		return
	}
	b.fails++
	if b.fails == b.threshold() {
		b.openedAt = b.clock()
		b.opens++
	} else if b.fails > b.threshold() {
		// A failed half-open probe re-arms the cooldown.
		b.fails = b.threshold()
		b.openedAt = b.clock()
		b.opens++
	}
}

// Opens returns how many times the circuit has opened (including
// failed half-open probes re-opening it).
func (b *Breaker) Opens() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}

// ClientStats counts the client's resilience activity.
type ClientStats struct {
	// Attempts is every HTTP attempt issued, retries included.
	Attempts uint64
	// Retries is how many attempts were re-issues after a retryable
	// failure.
	Retries uint64
	// BreakerRejects counts calls failed fast by the open circuit.
	BreakerRejects uint64
	// RetryAfterWaits counts backoff sleeps that were stretched to
	// honor a server-supplied Retry-After hint.
	RetryAfterWaits uint64
}
