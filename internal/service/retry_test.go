package service

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRetryPolicyDelayGrowthAndCap(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 10, BaseDelay: 10 * time.Millisecond,
		MaxDelay: 80 * time.Millisecond, Multiplier: 2, Jitter: -1}.withDefaults()
	want := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		80 * time.Millisecond, 80 * time.Millisecond, 80 * time.Millisecond,
	}
	for i, w := range want {
		if d := p.delay(i+1, nil); d != w {
			t.Fatalf("delay(%d) = %v, want %v", i+1, d, w)
		}
	}
}

func TestRetryPolicyJitterBoundsAndDeterminism(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: 100 * time.Millisecond,
		MaxDelay: time.Second, Multiplier: 2, Jitter: 0.2}.withDefaults()
	draw := func(seed int64) []time.Duration {
		rng := rand.New(rand.NewSource(seed))
		var out []time.Duration
		for i := 0; i < 32; i++ {
			out = append(out, p.delay(1, rng))
		}
		return out
	}
	a, b := draw(7), draw(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("jitter draw %d not deterministic: %v vs %v", i, a[i], b[i])
		}
		lo, hi := 80*time.Millisecond, 120*time.Millisecond
		if a[i] < lo || a[i] > hi {
			t.Fatalf("jittered delay %v outside [%v, %v]", a[i], lo, hi)
		}
	}
}

func TestRetryPolicyZeroValueMakesOneAttempt(t *testing.T) {
	if got := (RetryPolicy{}).withDefaults().MaxAttempts; got != 1 {
		t.Fatalf("zero policy MaxAttempts = %d, want 1", got)
	}
}

func TestRetryableClassification(t *testing.T) {
	for _, tc := range []struct {
		err  error
		want bool
	}{
		{nil, false},
		{ErrQueueFull, true},
		{ErrDraining, true},
		{ErrCircuitOpen, true},
		{fmt.Errorf("wrapped: %w", ErrDraining), true},
		{&httpStatusError{code: 500, msg: "boom"}, true},
		{&httpStatusError{code: 502, msg: "bad gateway"}, true},
		{&httpStatusError{code: 400, msg: "bad spec"}, false},
		{&transportError{errors.New("connection refused")}, true},
		{ErrUnknownJob, false},
		{ErrNotFinished, false},
		{errors.New("some decode error"), false},
	} {
		if got := retryable(tc.err); got != tc.want {
			t.Errorf("retryable(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

func TestBreakerOpensAtThresholdAndHalfOpens(t *testing.T) {
	now := time.Unix(0, 0)
	b := &Breaker{FailureThreshold: 3, Cooldown: time.Second,
		now: func() time.Time { return now }}
	fail := &transportError{errors.New("refused")}

	for i := 0; i < 3; i++ {
		if err := b.allow(); err != nil {
			t.Fatalf("allow before threshold (%d): %v", i, err)
		}
		b.record(fail)
	}
	if b.Opens() != 1 {
		t.Fatalf("Opens = %d, want 1", b.Opens())
	}
	if err := b.allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("allow while open: %v, want ErrCircuitOpen", err)
	}

	// After cooldown: exactly one half-open probe at a time.
	now = now.Add(2 * time.Second)
	if err := b.allow(); err != nil {
		t.Fatalf("half-open probe rejected: %v", err)
	}
	if err := b.allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("second concurrent probe allowed")
	}
	// Failed probe re-opens and re-arms the cooldown.
	b.record(fail)
	if b.Opens() != 2 {
		t.Fatalf("Opens after failed probe = %d, want 2", b.Opens())
	}
	if err := b.allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("allow right after failed probe: %v", err)
	}

	// Successful probe closes the circuit.
	now = now.Add(2 * time.Second)
	if err := b.allow(); err != nil {
		t.Fatalf("second probe rejected: %v", err)
	}
	b.record(nil)
	if err := b.allow(); err != nil {
		t.Fatalf("allow after recovery: %v", err)
	}
}

func TestBreakerIgnoresAPILevelErrors(t *testing.T) {
	b := &Breaker{FailureThreshold: 2, Cooldown: time.Hour}
	// 429s and spec rejections prove the daemon is alive; they must not
	// trip the breaker (and a non-countable outcome resets the streak).
	for i := 0; i < 10; i++ {
		b.record(ErrQueueFull)
		b.record(ErrUnknownJob)
		b.record(&httpStatusError{code: 400, msg: "bad"})
	}
	if err := b.allow(); err != nil {
		t.Fatalf("breaker tripped by API-level errors: %v", err)
	}
	// A success between transport failures resets the streak.
	fail := &transportError{errors.New("reset")}
	b.record(fail)
	b.record(nil)
	b.record(fail)
	if err := b.allow(); err != nil {
		t.Fatalf("breaker tripped without consecutive failures: %v", err)
	}
}

// flakyHandler fails the first n requests with the given status, then
// delegates.
type flakyHandler struct {
	mu     sync.Mutex
	fails  int
	status int
	next   http.Handler
	seen   int
}

func (h *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mu.Lock()
	h.seen++
	failing := h.seen <= h.fails
	h.mu.Unlock()
	if failing {
		http.Error(w, `{"error":"transient"}`, h.status)
		return
	}
	h.next.ServeHTTP(w, r)
}

func fastRetryClient(url string) *Client {
	return &Client{
		BaseURL:      url,
		PollInterval: time.Millisecond,
		Retry: RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond,
			MaxDelay: 5 * time.Millisecond, Multiplier: 2, Jitter: -1},
	}
}

func TestClientRetries5xxThenSucceeds(t *testing.T) {
	s := newTestService(t, Config{Workers: 1}, (&slowRunner{}).run)
	fh := &flakyHandler{fails: 3, status: http.StatusInternalServerError, next: Handler(s)}
	srv := httptest.NewServer(fh)
	defer srv.Close()

	c := fastRetryClient(srv.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, err := c.SubmitJSON(ctx, []byte(runSpec(1)))
	if err != nil {
		t.Fatalf("submit through 3 transient 500s: %v", err)
	}
	if _, err := c.AwaitResult(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	stats := c.Stats()
	if stats.Retries < 3 {
		t.Fatalf("stats = %+v, want >= 3 retries", stats)
	}
}

func TestClientDoesNotRetry4xx(t *testing.T) {
	s := newTestService(t, Config{Workers: 1}, (&slowRunner{}).run)
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()

	c := fastRetryClient(srv.URL)
	ctx := context.Background()
	if _, err := c.SubmitJSON(ctx, []byte(`{"kind":"nope"}`)); err == nil {
		t.Fatal("bad spec accepted")
	}
	if got := c.Stats(); got.Retries != 0 || got.Attempts != 1 {
		t.Fatalf("stats = %+v, want one attempt, zero retries", got)
	}
	if _, err := c.Job(ctx, "j-99999999"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("unknown job: %v", err)
	}
	if got := c.Stats(); got.Retries != 0 {
		t.Fatalf("stats = %+v after 404, want zero retries", got)
	}
}

func TestClientRetriesExhaustSurfaceLastError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"still dead"}`, http.StatusBadGateway)
	}))
	defer srv.Close()

	c := fastRetryClient(srv.URL)
	_, err := c.Job(context.Background(), "j-00000001")
	var he *httpStatusError
	if !errors.As(err, &he) || he.code != http.StatusBadGateway {
		t.Fatalf("err = %v, want httpStatusError 502", err)
	}
	if got := c.Stats(); got.Attempts != 5 || got.Retries != 4 {
		t.Fatalf("stats = %+v, want 5 attempts / 4 retries", got)
	}
}

func TestClientBreakerFailsFastAndRecovers(t *testing.T) {
	var dead atomic.Bool
	dead.Store(true)
	s := newTestService(t, Config{Workers: 1}, (&slowRunner{}).run)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if dead.Load() {
			http.Error(w, `{"error":"restarting"}`, http.StatusInternalServerError)
			return
		}
		Handler(s).ServeHTTP(w, r)
	}))
	defer srv.Close()

	c := fastRetryClient(srv.URL)
	c.Breaker = &Breaker{FailureThreshold: 3, Cooldown: 10 * time.Millisecond}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// Enough failing calls to trip the breaker.
	if _, err := c.Job(ctx, "j-00000001"); err == nil {
		t.Fatal("call against dead daemon succeeded")
	}
	if c.Breaker.Opens() == 0 {
		t.Fatal("breaker never opened")
	}
	if got := c.Stats(); got.BreakerRejects == 0 {
		t.Fatalf("stats = %+v, want breaker rejects", got)
	}

	// Daemon comes back; after the cooldown a probe closes the circuit.
	dead.Store(false)
	time.Sleep(20 * time.Millisecond)
	st, err := c.SubmitJSON(ctx, []byte(runSpec(2)))
	if err != nil {
		t.Fatalf("submit after recovery: %v", err)
	}
	if _, err := c.AwaitResult(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
}

// TestAwaitResultSurvivesOutage pins the restart-resilient wait: polls
// that fail with retryable errors keep waiting instead of aborting.
func TestAwaitResultSurvivesOutage(t *testing.T) {
	s := newTestService(t, Config{Workers: 1}, (&slowRunner{}).run)
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()

	c := fastRetryClient(srv.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, err := c.SubmitJSON(ctx, []byte(runSpec(1)))
	if err != nil {
		t.Fatal(err)
	}

	// An outage in front of the status endpoint: 500s for a while.
	var outage atomic.Bool
	outage.Store(true)
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if outage.Load() {
			http.Error(w, `{"error":"mid-restart"}`, http.StatusServiceUnavailable)
			return
		}
		Handler(s).ServeHTTP(w, r)
	}))
	defer proxy.Close()
	c2 := fastRetryClient(proxy.URL)

	done := make(chan error, 1)
	go func() {
		_, err := c2.AwaitResult(ctx, st.ID)
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("AwaitResult returned during outage: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	outage.Store(false)
	if err := <-done; err != nil {
		t.Fatalf("AwaitResult after outage ended: %v", err)
	}
}

// TestAwaitResultBacksOff pins that idle polling grows toward PollMax
// instead of hammering at a constant rate.
func TestAwaitResultBacksOff(t *testing.T) {
	r := &slowRunner{release: make(chan struct{})}
	s := newTestService(t, Config{Workers: 1}, r.run)
	var polls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method == http.MethodGet {
			polls.Add(1)
		}
		Handler(s).ServeHTTP(w, req)
	}))
	defer srv.Close()

	c := &Client{BaseURL: srv.URL,
		PollInterval: time.Millisecond, PollMax: 40 * time.Millisecond,
		Retry: RetryPolicy{MaxAttempts: 1, Jitter: -1}}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, err := c.SubmitJSON(ctx, []byte(runSpec(1)))
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(300 * time.Millisecond)
		close(r.release)
	}()
	if _, err := c.AwaitResult(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	// Constant 1ms polling over ~300ms would be ~300 polls; exponential
	// backoff to 40ms caps it far lower.
	if n := polls.Load(); n > 60 {
		t.Fatalf("%d polls over ~300ms: backoff not applied", n)
	}
}
