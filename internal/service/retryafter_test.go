package service

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestBreakerHalfOpenConcurrentProbes pins the half-open contract
// under contention: when the cooldown elapses, exactly one caller wins
// the probe slot, every concurrent loser fails fast with
// ErrCircuitOpen, and the state transitions exactly once whichever way
// the probe goes.
func TestBreakerHalfOpenConcurrentProbes(t *testing.T) {
	now := time.Unix(0, 0)
	var nowMu sync.Mutex
	clock := func() time.Time { nowMu.Lock(); defer nowMu.Unlock(); return now }
	advance := func(d time.Duration) { nowMu.Lock(); now = now.Add(d); nowMu.Unlock() }

	fail := &transportError{errors.New("refused")}
	open := func() *Breaker {
		b := &Breaker{FailureThreshold: 3, Cooldown: time.Second, now: clock}
		for i := 0; i < 3; i++ {
			if err := b.allow(); err != nil {
				t.Fatalf("allow %d while closed: %v", i, err)
			}
			b.record(fail)
		}
		if err := b.allow(); !errors.Is(err, ErrCircuitOpen) {
			t.Fatalf("breaker not open after threshold: %v", err)
		}
		return b
	}

	race := func(b *Breaker) (admitted int64, rejected int64) {
		const callers = 32
		var wg sync.WaitGroup
		start := make(chan struct{})
		var ok, no int64
		for i := 0; i < callers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				if err := b.allow(); err == nil {
					atomic.AddInt64(&ok, 1)
				} else if errors.Is(err, ErrCircuitOpen) {
					atomic.AddInt64(&no, 1)
				}
			}()
		}
		close(start)
		wg.Wait()
		return ok, no
	}

	// Probe succeeds: the circuit closes exactly once and Opens stays
	// where it was.
	b := open()
	advance(2 * time.Second)
	admitted, rejected := race(b)
	if admitted != 1 || rejected != 31 {
		t.Fatalf("half-open race: %d admitted, %d rejected; want exactly 1 and 31", admitted, rejected)
	}
	opensBefore := b.Opens()
	b.record(nil) // the winner's probe succeeds
	if b.Opens() != opensBefore {
		t.Fatalf("successful probe changed Opens: %d -> %d", opensBefore, b.Opens())
	}
	for i := 0; i < 4; i++ {
		if err := b.allow(); err != nil {
			t.Fatalf("allow %d after recovery: %v", i, err)
		}
		b.record(nil)
	}

	// Probe fails: the circuit re-opens exactly once (one Opens
	// increment), and the losers' ErrCircuitOpen results never count
	// as probe outcomes.
	b = open()
	advance(2 * time.Second)
	admitted, rejected = race(b)
	if admitted != 1 || rejected != 31 {
		t.Fatalf("half-open race: %d admitted, %d rejected; want exactly 1 and 31", admitted, rejected)
	}
	opensBefore = b.Opens()
	b.record(fail) // the winner's probe fails
	if b.Opens() != opensBefore+1 {
		t.Fatalf("failed probe moved Opens %d -> %d, want exactly one increment", opensBefore, b.Opens())
	}
	if err := b.allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("breaker not re-armed after failed probe: %v", err)
	}
	// And the next cooldown admits exactly one probe again.
	advance(2 * time.Second)
	admitted, rejected = race(b)
	if admitted != 1 || rejected != 31 {
		t.Fatalf("second half-open race: %d admitted, %d rejected", admitted, rejected)
	}
}

// TestHandlerServesRetryAfterOn429 pins the server half of the
// backpressure pacing: a queue-full rejection carries a queue-depth-
// aware Retry-After header.
func TestHandlerServesRetryAfterOn429(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	svc, err := newWithRunner(Config{Workers: 1, QueueDepth: 1}, func(Spec) ([]byte, error) {
		<-release
		return []byte(`{}`), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Kill()
	srv := httptest.NewServer(Handler(svc))
	defer srv.Close()

	// Saturate: one running, one queued, then rejections.
	var resp *http.Response
	for seed := 0; seed < 8; seed++ {
		spec := `{"kind":"run","run":{"workload":"sg","scale":"tiny","seed":` + strconv.Itoa(seed) + `}}`
		resp, err = http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(spec))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			break
		}
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queue never filled: last status %d", resp.StatusCode)
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 1 || secs > 60 {
		t.Fatalf("429 Retry-After = %q, want an integer in [1, 60]", resp.Header.Get("Retry-After"))
	}
}

// TestClientCarriesRetryAfterHint pins the decode half: a 429/503
// with Retry-After surfaces as a retryAfterError wrapping the mapped
// sentinel, so the retry loop can floor its backoff on the hint.
func TestClientCarriesRetryAfterHint(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":"full"}`))
	}))
	defer srv.Close()

	c := &Client{BaseURL: srv.URL} // one attempt: surface the error raw
	_, err := c.SubmitJSON(context.Background(), []byte(`{}`))
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("429 did not map to ErrQueueFull: %v", err)
	}
	var ra *retryAfterError
	if !errors.As(err, &ra) {
		t.Fatalf("429 with Retry-After did not carry the hint: %v", err)
	}
	if ra.after != 7*time.Second {
		t.Fatalf("hint = %v, want 7s", ra.after)
	}
}

// TestClientHonorsRetryAfterFloor pins the pacing half: when the
// server says Retry-After: 1, the retry loop waits at least that long
// even though its own backoff schedule would retry in milliseconds.
func TestClientHonorsRetryAfterFloor(t *testing.T) {
	var calls int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt32(&calls, 1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"full"}`))
			return
		}
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(`{"id":"j-1","hash":"h","kind":"run","state":"queued","submitted_at":"2026-01-01T00:00:00Z"}`))
	}))
	defer srv.Close()

	c := &Client{BaseURL: srv.URL, Retry: RetryPolicy{
		MaxAttempts: 3, BaseDelay: time.Millisecond,
		MaxDelay: 2 * time.Millisecond, Multiplier: 2, Jitter: -1, Seed: 1,
	}}
	start := time.Now()
	if _, err := c.SubmitJSON(context.Background(), []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 900*time.Millisecond {
		t.Fatalf("retry after 429 took %v, want >= ~1s (the server's hint)", elapsed)
	}
	if got := c.Stats().RetryAfterWaits; got != 1 {
		t.Fatalf("RetryAfterWaits = %d, want 1", got)
	}
}

// TestRetryAfterHonorCap keeps a hostile or miscomputed header from
// parking the client: the floor is bounded by maxRetryAfterHonor.
func TestRetryAfterHonorCap(t *testing.T) {
	err := &retryAfterError{err: ErrQueueFull, after: 9999 * time.Second}
	var ra *retryAfterError
	if !errors.As(error(err), &ra) {
		t.Fatal("errors.As failed on retryAfterError")
	}
	// The do() loop clamps to maxRetryAfterHonor; pin the constant so
	// a future edit cannot silently unbound it.
	if maxRetryAfterHonor > time.Minute {
		t.Fatalf("maxRetryAfterHonor = %v, want <= 1m", maxRetryAfterHonor)
	}
	if !errors.Is(err, ErrQueueFull) {
		t.Fatal("retryAfterError does not unwrap to its sentinel")
	}
}
